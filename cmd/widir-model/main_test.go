package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const fixtures = "../../internal/protomodel/testdata/"

func TestCheckConformantFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-check",
		"-pkg", fixtures + "conformant",
		"-spec", fixtures + "conformant/spec",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "conforms to spec") {
		t.Errorf("stdout = %q, want conformance message", out.String())
	}
}

func TestCheckMissingArmFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-check",
		"-pkg", fixtures + "missingarm",
		"-spec", fixtures + "missingarm/spec",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"unimplemented", "DO GetS -> DS", "unspecified", "DO GetS -> DO"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "conformance finding") {
		t.Errorf("stderr = %q, want finding count", errb.String())
	}
}

func TestCheckRepoAgainstEmbeddedSpec(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-check"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-format", "png"}, &out, &errb); code != 2 {
		t.Errorf("bad -format: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-machine", "l3"}, &out, &errb); code != 2 {
		t.Errorf("bad -machine: exit = %d, want 2", code)
	}
}

func TestDotOutput(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-format", "dot", "-machine", "dir"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "digraph \"dir\"") {
		t.Errorf("dot output does not start with the dir digraph: %.60q", got)
	}
	if strings.Contains(got, "digraph \"l1\"") {
		t.Error("-machine dir output includes the l1 digraph")
	}
}

func TestCheckJSONFindings(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-check", "-json",
		"-pkg", fixtures + "missingarm",
		"-spec", fixtures + "missingarm/spec",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("want at least one JSON finding")
	}
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f["rule"].(string)] = true
	}
	if !rules["unimplemented"] || !rules["unspecified"] {
		t.Errorf("rules = %v, want unimplemented and unspecified", rules)
	}
}

func TestCheckJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-check", "-json",
		"-pkg", fixtures + "conformant",
		"-spec", fixtures + "conformant/spec",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}
