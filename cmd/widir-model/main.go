// Command widir-model statically extracts the WiDir MESI+W protocol
// state machines (the directory FSM in internal/coherence/home.go and
// the private-cache FSM in l1.go) into a canonical transition table and
// checks the implementation against the checked-in specification under
// internal/protomodel/spec/ (DESIGN.md §13).
//
// Usage:
//
//	widir-model [-format text|dot] [-machine dir|l1] [-check] [-json] [-pkg dir] [-spec dir]
//
// With no flags it prints the extracted model as an aligned text table,
// every row carrying its file:line provenance. -format dot emits a
// Graphviz digraph per machine. -check diffs the extracted model
// against the spec and exits 1 when the implementation and the spec
// diverge (unspecified, unimplemented or uncovered entries); -check
// -json emits the divergences as the shared JSON findings array. `make
// check` and CI both gate on it. Exit codes follow the shared
// convention: 0 clean, 1 findings, 2 usage-or-load error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/protomodel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("widir-model", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text or dot")
	machine := fs.String("machine", "", "restrict output to one machine (dir or l1)")
	check := fs.Bool("check", false, "diff the implementation against the spec; exit 1 on divergence")
	jsonOut := fs.Bool("json", false, "with -check, emit findings as a JSON array instead of text")
	pkgDir := fs.String("pkg", "", "package directory to extract (default: internal/coherence of the enclosing module)")
	specDir := fs.String("spec", "", "spec directory (default: the embedded internal/protomodel/spec)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: widir-model [-format text|dot] [-machine dir|l1] [-check] [-pkg dir] [-spec dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "widir-model:", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "widir-model:", err)
		return 2
	}
	dir := *pkgDir
	if dir == "" {
		dir = filepath.Join(moduleDir, "internal", "coherence")
	} else if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}

	model, err := protomodel.Extract(moduleDir, dir, protomodel.WiDirConfig())
	if err != nil {
		fmt.Fprintln(stderr, "widir-model:", err)
		return 2
	}
	if *machine != "" {
		mc := model.Machine(*machine)
		if mc == nil {
			fmt.Fprintf(stderr, "widir-model: no machine %q\n", *machine)
			return 2
		}
		model = &protomodel.Model{Machines: []*protomodel.Machine{mc}}
	}

	if *check {
		spec, err := loadSpec(*specDir)
		if err != nil {
			fmt.Fprintln(stderr, "widir-model:", err)
			return 2
		}
		findings := protomodel.Check(model, spec)
		if *jsonOut {
			conv := make([]analysis.Finding, len(findings))
			for i, f := range findings {
				conv[i] = analysis.Finding{
					Rule:    f.Kind,
					Pos:     splitProv(f.Pos),
					Message: fmt.Sprintf("[%s] %s", f.Machine, f.Detail),
				}
			}
			analysis.Relativize(cwd, conv)
			if err := analysis.WriteFindings(stdout, conv, true); err != nil {
				fmt.Fprintln(stderr, "widir-model:", err)
				return 2
			}
		} else {
			for _, f := range findings {
				fmt.Fprintln(stdout, f)
			}
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "widir-model: %d conformance finding(s)\n", len(findings))
			return 1
		}
		if !*jsonOut {
			fmt.Fprintln(stdout, "widir-model: implementation conforms to spec")
		}
		return 0
	}

	switch *format {
	case "text":
		fmt.Fprint(stdout, model.Text())
	case "dot":
		fmt.Fprint(stdout, model.Dot())
	default:
		fmt.Fprintf(stderr, "widir-model: unknown format %q\n", *format)
		return 2
	}
	return 0
}

// splitProv parses a protomodel provenance string ("file:42", or
// opaque markers like "spec"/"impl") into a position; an opaque marker
// becomes a filename with line 0.
func splitProv(prov string) token.Position {
	if i := strings.LastIndexByte(prov, ':'); i > 0 {
		if line, err := strconv.Atoi(prov[i+1:]); err == nil {
			return token.Position{Filename: prov[:i], Line: line}
		}
	}
	return token.Position{Filename: prov}
}

func loadSpec(dir string) (*protomodel.Spec, error) {
	if dir == "" {
		return protomodel.EmbeddedSpec()
	}
	return protomodel.LoadSpecDir(dir)
}
