// Command widirsim runs one application on one simulated manycore
// configuration and prints the run's measurements.
//
// Usage:
//
//	widirsim -app radiosity -cores 64 -protocol widir -scale 1.0
//	widirsim -app all -cores 64 -protocol both
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "radiosity", "application name (see -list) or 'all'")
		cores     = flag.Int("cores", 64, "core count")
		protocol  = flag.String("protocol", "both", "baseline, widir, or both")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Uint64("seed", 1, "workload seed")
		threshold = flag.Int("maxwired", 3, "MaxWiredSharers threshold")
		list      = flag.Bool("list", false, "list applications and exit")
		trace     = flag.Uint64("trace-line", 0, "dump protocol events for this cache-line number to stderr")
		latency   = flag.Bool("latency", false, "print the per-miss latency distribution after each run")
		confPath  = flag.String("config", "", "load the machine configuration from a JSON file (overrides -cores/-maxwired)")
		dumpConf  = flag.Bool("dump-config", false, "print the default machine configuration as JSON and exit")

		faultBER   = flag.Float64("fault-ber", 0, "wireless fault injection: per-transmission corruption probability")
		faultSeed  = flag.Uint64("fault-seed", 0, "fault schedule seed (0 derives it from -seed)")
		faultLinks = flag.String("fault-links", "", "afflicted mesh links as 'src-dst,src-dst' (empty = all, when a link rate is set)")
		faultStall = flag.Float64("fault-stall", 0, "per-packet stall probability on afflicted links")
		faultDrop  = flag.Float64("fault-drop", 0, "per-packet drop+retransmit probability on afflicted links")
		checker    = flag.Bool("checker", false, "run the SWMR/value-coherence checker during the simulation")
	)
	flag.Parse()

	links, err := fault.ParseLinks(*faultLinks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "widirsim: %v\n", err)
		os.Exit(1)
	}
	if len(links) > 0 && *faultStall == 0 && *faultDrop == 0 {
		fmt.Fprintln(os.Stderr, "widirsim: -fault-links needs -fault-stall or -fault-drop to inject anything")
		os.Exit(1)
	}
	fcfg := fault.Config{
		Seed:         *faultSeed,
		WirelessBER:  *faultBER,
		LinkStallPct: *faultStall,
		LinkDropPct:  *faultDrop,
		Links:        links,
	}

	if *dumpConf {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(machine.DefaultConfig(*cores, coherence.WiDir)); err != nil {
			fmt.Fprintf(os.Stderr, "widirsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, p := range workload.Apps() {
			fmt.Printf("%-14s paper MPKI %.2f\n", p.Name, p.PaperMPKI)
		}
		return
	}

	var apps []workload.Profile
	if *appName == "all" {
		apps = workload.Apps()
	} else {
		p, ok := workload.ByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "widirsim: unknown application %q (try -list)\n", *appName)
			os.Exit(1)
		}
		apps = []workload.Profile{p}
	}

	var protos []coherence.Protocol
	switch *protocol {
	case "baseline":
		protos = []coherence.Protocol{coherence.Baseline}
	case "widir":
		protos = []coherence.Protocol{coherence.WiDir}
	case "both":
		protos = []coherence.Protocol{coherence.Baseline, coherence.WiDir}
	default:
		fmt.Fprintf(os.Stderr, "widirsim: unknown protocol %q\n", *protocol)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tprotocol\tcycles\tinstructions\tIPC/core\tMPKI\tmem-stall%\twireless writes\tS->W\tW->S\tcoll.prob\tenergy(uJ)")
	for _, app := range apps {
		app = app.Scale(*scale)
		for _, p := range protos {
			cfg := machine.DefaultConfig(*cores, p)
			cfg.MaxWiredSharers = *threshold
			if *threshold > cfg.MaxPointers {
				cfg.MaxPointers = *threshold
			}
			if *confPath != "" {
				raw, err := os.ReadFile(*confPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "widirsim: %v\n", err)
					os.Exit(1)
				}
				if err := json.Unmarshal(raw, &cfg); err != nil {
					fmt.Fprintf(os.Stderr, "widirsim: parsing %s: %v\n", *confPath, err)
					os.Exit(1)
				}
				cfg.Protocol = p // the -protocol flag still selects the protocol
			}
			if *trace != 0 {
				cfg.LineLog = &obs.LineLog{Line: addrspace.Line(*trace), W: os.Stderr}
			}
			cfg.Fault = fcfg
			cfg.EnableChecker = cfg.EnableChecker || *checker
			sys, err := machine.NewSystem(cfg, workload.Program(app, cfg.Nodes, *seed))
			if err != nil {
				fmt.Fprintf(os.Stderr, "widirsim: %v\n", err)
				os.Exit(1)
			}
			r, err := sys.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "widirsim: %s/%s: %v\n", app.Name, p, err)
				os.Exit(1)
			}
			ipc := float64(r.Retired) / float64(r.Cycles) / float64(cfg.Nodes)
			stall := 100 * float64(r.MemStallCycles) / float64(r.Cycles*uint64(cfg.Nodes))
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%.2f\t%.0f%%\t%d\t%d\t%d\t%.2f%%\t%.1f\n",
				app.Name, p, r.Cycles, r.Retired, ipc, r.MPKI(), stall,
				r.WirelessWrites, r.SToW, r.WToS, 100*r.CollisionProb, r.EnergyPJ/1e6)
			if inj := sys.Injector(); inj != nil {
				fmt.Fprintf(os.Stderr, "widirsim: %s/%s faults (%s): corrupted=%d tx-failures=%d W->S-demotions=%d link-delays=%d dir-delays=%d\n",
					app.Name, p, inj.Describe(), r.WirelessCorrupted, r.WirelessTxFailures,
					r.FaultDemotions, r.LinkFaultDelays, r.DirFaultDelays)
			}
			if *latency {
				tw.Flush()
				fmt.Printf("  miss latency (cycles): %s\n", r.MissLatency)
			}
		}
	}
	tw.Flush()
}
