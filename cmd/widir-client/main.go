// Command widir-client drives a sweep against one or more widir-serve
// farm nodes and renders the results as a CSV. It is the retrying,
// resumable counterpart to the farm's availability guarantees:
//
//   - every completed run is appended to a progress file (JSONL) the
//     moment it arrives, so a killed or disconnected client rerun picks
//     up where it left off instead of re-streaming a finished sweep;
//   - runs the cluster has already computed are pulled directly from
//     the replicated entry store with hedged reads — the same GET goes
//     to a second replica after a short hedge delay, and the first
//     valid answer wins — without submitting a job at all;
//   - submission honors the farm's backpressure: a 429/503 with
//     Retry-After is retried with jittered exponential backoff whose
//     floor is the server's advice, rotating across servers, so a
//     fleet of clients drains an overloaded farm instead of stampeding
//     it.
//
// Usage:
//
//	widir-client -spec sweep.json                                # one local node, CSV to stdout
//	widir-client -spec sweep.json -servers http://a:8344,http://b:8344 -o results.csv
//
// The spec file is a serve.SweepRequest JSON document:
//
//	{"client":"paper","protocols":["baseline","widir"],"apps":["water-spa"],
//	 "cores":16,"scale":0.1,"seeds":[1,2,3]}
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/serve"
)

func main() {
	var (
		specPath = flag.String("spec", "", "sweep spec file (serve.SweepRequest JSON; required)")
		servers  = flag.String("servers", "http://127.0.0.1:8344", "comma-separated farm node base URLs")
		outPath  = flag.String("o", "-", "output CSV path (- for stdout)")
		state    = flag.String("state", "", "progress file (JSONL; default <spec>.state.jsonl)")
		hedge    = flag.Duration("hedge", 75*time.Millisecond, "hedged-read delay before asking the next replica")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout (submit, entry reads, status)")
		attempts = flag.Int("attempts", 8, "max submit/stream attempts before giving up")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "widir-client: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	opts := options{
		specPath:  *specPath,
		servers:   splitServers(*servers),
		outPath:   *outPath,
		statePath: *state,
		hedge:     *hedge,
		timeout:   *timeout,
		attempts:  *attempts,
		logf:      func(string, ...any) {},
	}
	if *verbose {
		opts.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "widir-client: "+format+"\n", args...)
		}
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "widir-client: %v\n", err)
		os.Exit(1)
	}
}

func splitServers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

type options struct {
	specPath  string
	servers   []string
	outPath   string
	statePath string
	hedge     time.Duration
	timeout   time.Duration
	attempts  int
	logf      func(format string, args ...any)
}

// runRef is one expanded run of the sweep, in server submission order.
type runRef struct {
	spec serve.RunSpec
	rk   exp.RunKey
	key  serve.Key
}

// stateLine is one progress-file record: a completed run's result with
// its provenance. The progress file is the client's WAL — a rerun
// replays it and only fetches what is missing.
type stateLine struct {
	Hash   string          `json:"hash"`
	ID     string          `json:"id"`
	Source string          `json:"source"`
	Result json.RawMessage `json:"result"`
}

func run(opts options) error {
	if len(opts.servers) == 0 {
		return errors.New("no servers")
	}
	if opts.attempts <= 0 {
		opts.attempts = 1
	}
	if opts.statePath == "" {
		opts.statePath = opts.specPath + ".state.jsonl"
	}
	specData, err := os.ReadFile(opts.specPath)
	if err != nil {
		return err
	}
	var sweep serve.SweepRequest
	if err := json.Unmarshal(specData, &sweep); err != nil {
		return fmt.Errorf("spec %s: %w", opts.specPath, err)
	}
	refs, err := expand(sweep)
	if err != nil {
		return err
	}
	have, err := loadState(opts.statePath)
	if err != nil {
		return err
	}
	opts.logf("sweep: %d runs, %d already in %s", len(refs), len(have), opts.statePath)

	stateFile, err := os.OpenFile(opts.statePath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	defer stateFile.Close()
	record := func(ln stateLine) error {
		if _, dup := have[ln.Hash]; dup {
			return nil
		}
		data, err := json.Marshal(ln)
		if err != nil {
			return err
		}
		if _, err := stateFile.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("progress file: %w", err)
		}
		have[ln.Hash] = ln
		return nil
	}

	api := &http.Client{Timeout: opts.timeout}
	bo := cluster.NewBackoff(500*time.Millisecond, 15*time.Second,
		uint64(os.Getpid())*2654435761+uint64(time.Now().UnixNano()))

	// Phase 1: hedged entry reads for everything the cluster may
	// already hold. No job, no queue slot, no Retry-After dance.
	missing := 0
	for _, ref := range refs {
		if _, ok := have[ref.key.Hash]; ok {
			continue
		}
		if body, server, ok := hedgedEntry(api, opts.servers, ref.key.Hash, opts.hedge); ok {
			res, err := serve.EntryResult(body)
			if err == nil {
				opts.logf("entry %s from %s", ref.key.ID, server)
				if err := record(stateLine{Hash: ref.key.Hash, ID: ref.key.ID, Source: "entry", Result: res}); err != nil {
					return err
				}
				continue
			}
		}
		missing++
	}

	// Phase 2: anything still missing needs the farm to work. Submit
	// the whole sweep — runs already cached are free for the server and
	// keep the job's run indexing identical to the spec — and stream,
	// recording as results land so a dropped connection resumes.
	if missing > 0 {
		opts.logf("%d runs need the farm", missing)
		if err := submitAndStream(opts, api, bo, sweep, refs, have, record); err != nil {
			return err
		}
	}

	// Render: every run, in spec order.
	var out io.Writer = os.Stdout
	if opts.outPath != "-" && opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	fmt.Fprintln(w, serve.CSVHeader)
	for _, ref := range refs {
		ln, ok := have[ref.key.Hash]
		if !ok {
			return fmt.Errorf("run %s missing after sweep completed", ref.key.ID)
		}
		var res machine.Result
		if err := json.Unmarshal(ln.Result, &res); err != nil {
			return fmt.Errorf("run %s: bad result in progress file: %w", ref.key.ID, err)
		}
		w.WriteString(serve.CSVRow(ref.rk, &res))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	opts.logf("done: %d runs", len(refs))
	return nil
}

// expand mirrors the server's cross-product order exactly (protocol,
// then app, then seed), so job run indices and CSV rows line up with
// what the farm computes.
func expand(sweep serve.SweepRequest) ([]runRef, error) {
	if len(sweep.Protocols) == 0 || len(sweep.Apps) == 0 || len(sweep.Seeds) == 0 {
		return nil, errors.New("sweep needs at least one protocol, app and seed")
	}
	var refs []runRef
	for _, proto := range sweep.Protocols {
		for _, app := range sweep.Apps {
			for _, seed := range sweep.Seeds {
				spec := serve.RunSpec{
					Protocol:  proto,
					App:       app,
					Cores:     sweep.Cores,
					Scale:     sweep.Scale,
					Seed:      seed,
					Artifacts: sweep.Artifacts,
				}
				rk, err := spec.Resolve()
				if err != nil {
					return nil, fmt.Errorf("run %s/%s/seed=%d: %w", proto, app, seed, err)
				}
				key, err := serve.KeyForRun(rk)
				if err != nil {
					return nil, err
				}
				refs = append(refs, runRef{spec: spec, rk: rk, key: key})
			}
		}
	}
	return refs, nil
}

// loadState replays the progress file. Unparseable lines (a torn tail
// from a killed client) are skipped: the runs they would have covered
// are simply re-fetched.
func loadState(path string) (map[string]stateLine, error) {
	have := map[string]stateLine{}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return have, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ln stateLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil || ln.Hash == "" || len(ln.Result) == 0 {
			continue
		}
		have[ln.Hash] = ln
	}
	return have, sc.Err()
}

// hedgedEntry fetches a run's cache entry with hedged reads: the GET
// goes to the first server immediately and to each further server
// after an additional hedge delay; the first valid body wins and the
// stragglers are cancelled. A slow or dead replica costs one hedge
// interval, not a timeout.
func hedgedEntry(hc *http.Client, servers []string, hash string, hedge time.Duration) (body []byte, server string, ok bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type answer struct {
		body   []byte
		server string
	}
	results := make(chan answer, len(servers))
	for i, s := range servers {
		go func(delay time.Duration, server string) {
			if delay > 0 {
				t := time.NewTimer(delay)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
					results <- answer{}
					return
				}
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				server+"/api/v1/runs/"+hash+"/entry", nil)
			if err != nil {
				results <- answer{}
				return
			}
			resp, err := hc.Do(req)
			if err != nil {
				results <- answer{}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				results <- answer{}
				return
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			if err != nil || serve.ValidateEntry(hash, data) != nil {
				results <- answer{}
				return
			}
			results <- answer{body: data, server: server}
		}(time.Duration(i)*hedge, s)
	}
	for range servers {
		if a := <-results; a.body != nil {
			return a.body, a.server, true
		}
	}
	return nil, "", false
}

// submitAndStream submits the sweep with backoff and streams results,
// reconnecting and resuming (by hash) on a dropped stream.
func submitAndStream(opts options, api *http.Client, bo *cluster.Backoff, sweep serve.SweepRequest,
	refs []runRef, have map[string]stateLine, record func(stateLine) error) error {

	server, jobID, err := submitWithBackoff(opts, api, bo, sweep)
	if err != nil {
		return err
	}
	opts.logf("job %s on %s", jobID, server)

	// The stream is long-lived: no client timeout (the server flushes a
	// line per completion; a stall is handled by reconnecting).
	streamClient := &http.Client{}
	failed := map[string]string{}
	complete := func() bool {
		for _, ref := range refs {
			if _, ok := have[ref.key.Hash]; ok {
				continue
			}
			if _, ok := failed[ref.key.ID]; ok {
				continue
			}
			return false
		}
		return true
	}
	for attempt := 0; attempt < opts.attempts; attempt++ {
		err := readStream(streamClient, server, jobID, have, failed, record)
		if err == nil && complete() {
			break
		}
		if attempt == opts.attempts-1 {
			if err != nil {
				return fmt.Errorf("stream %s: %w", jobID, err)
			}
			return fmt.Errorf("stream %s ended with runs still missing", jobID)
		}
		delay := bo.Delay(attempt, 0)
		opts.logf("stream interrupted (%v); resuming in %v", err, delay)
		time.Sleep(delay)
	}
	if len(failed) > 0 {
		for id, msg := range failed {
			opts.logf("run %s FAILED: %s", id, msg)
		}
		return fmt.Errorf("%d runs failed on the farm", len(failed))
	}
	return nil
}

// submitWithBackoff posts the sweep, honoring 429/503 Retry-After with
// jittered exponential backoff and rotating across servers on network
// errors, until a node accepts it.
func submitWithBackoff(opts options, api *http.Client, bo *cluster.Backoff, sweep serve.SweepRequest) (server, jobID string, err error) {
	body, err := json.Marshal(sweep)
	if err != nil {
		return "", "", err
	}
	var lastErr error
	for attempt := 0; attempt < opts.attempts; attempt++ {
		server = opts.servers[attempt%len(opts.servers)]
		resp, err := api.Post(server+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			delay := bo.Delay(attempt, 0)
			opts.logf("submit to %s: %v; retrying in %v", server, err, delay)
			time.Sleep(delay)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var accepted struct {
				Job string `json:"job"`
			}
			err := json.NewDecoder(resp.Body).Decode(&accepted)
			resp.Body.Close()
			if err != nil {
				return "", "", err
			}
			return server, accepted.Job, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retryAfter := 0
			if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				retryAfter = v
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			delay := bo.Delay(attempt, time.Duration(retryAfter)*time.Second)
			lastErr = fmt.Errorf("%s: %s", server, resp.Status)
			opts.logf("farm busy (%s, Retry-After %ds); backing off %v", resp.Status, retryAfter, delay)
			time.Sleep(delay)
		default:
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			return "", "", fmt.Errorf("submit to %s: %s: %s", server, resp.Status, strings.TrimSpace(string(data)))
		}
	}
	return "", "", fmt.Errorf("submit failed after %d attempts: %w", opts.attempts, lastErr)
}

// readStream consumes one connection's worth of the job stream,
// recording completions (deduplicated by hash, so a reconnect that
// replays the whole stream is harmless).
func readStream(hc *http.Client, server, jobID string, have map[string]stateLine,
	failed map[string]string, record func(stateLine) error) error {

	resp, err := hc.Get(server + "/api/v1/jobs/" + jobID + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st serve.RunStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		switch st.State {
		case "done":
			if err := record(stateLine{Hash: st.Key.Hash, ID: st.Key.ID, Source: st.Source, Result: st.Result}); err != nil {
				return err
			}
		case "error":
			failed[st.Key.ID] = st.Error
		}
	}
	return sc.Err()
}
