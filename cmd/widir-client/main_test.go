package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func testFarm(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{CacheDir: t.TempDir(), Workers: 2, MaxQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := serve.SweepRequest{
		Client:    "client-test",
		Protocols: []string{"baseline", "widir"},
		Apps:      []string{"water-spa"},
		Cores:     4,
		Scale:     0.02,
		Seeds:     []uint64{1, 2},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func clientOpts(t *testing.T, dir, specPath string, servers ...string) options {
	t.Helper()
	return options{
		specPath:  specPath,
		servers:   servers,
		outPath:   filepath.Join(dir, "out.csv"),
		statePath: filepath.Join(dir, "state.jsonl"),
		hedge:     20 * time.Millisecond,
		timeout:   10 * time.Second,
		attempts:  8,
		logf:      t.Logf,
	}
}

func readCSV(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != serve.CSVHeader {
		t.Fatalf("CSV header %q", lines[0])
	}
	return lines
}

// TestClientSweepAndResume drives the full client path: a fresh sweep
// submits a job and renders the CSV; a rerun with the progress file
// intact touches the farm for nothing; a rerun with the progress file
// deleted recovers everything through hedged entry reads — still
// without submitting a job — and renders the identical CSV.
func TestClientSweepAndResume(t *testing.T) {
	s, ts := testFarm(t)
	dir := t.TempDir()
	specPath := writeSpec(t, dir)
	opts := clientOpts(t, dir, specPath, ts.URL)

	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	first := readCSV(t, opts.outPath)
	if len(first) != 5 { // header + 2 protocols x 2 seeds
		t.Fatalf("CSV has %d lines, want 5: %v", len(first), first)
	}
	if jobs := s.Stats().Jobs; jobs != 1 {
		t.Fatalf("first run created %d jobs, want 1", jobs)
	}

	// Rerun, state intact: fully offline.
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if jobs := s.Stats().Jobs; jobs != 1 {
		t.Fatalf("state-resumed rerun created a job (total %d)", jobs)
	}

	// Rerun after losing the progress file: the cluster's entry store
	// has every run, so hedged reads rebuild it — no job either.
	if err := os.Remove(opts.statePath); err != nil {
		t.Fatal(err)
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if jobs := s.Stats().Jobs; jobs != 1 {
		t.Fatalf("entry-read rerun created a job (total %d)", jobs)
	}
	second := readCSV(t, opts.outPath)
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatalf("entry-read CSV differs:\n%v\nvs\n%v", first, second)
	}
	// The rebuilt state lines carry entry provenance.
	state, err := os.ReadFile(opts.statePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(state), `"source":"entry"`) {
		t.Fatal("rebuilt progress file has no entry-sourced line")
	}
	if n := s.Runner().Stats().Sims; n != 4 {
		t.Fatalf("farm simulated %d times across three client runs, want 4", n)
	}
}

// TestClientBackoffHonorsRetryAfter: the client retries a 429 with the
// server's Retry-After as the backoff floor and eventually lands the
// sweep.
func TestClientBackoffHonorsRetryAfter(t *testing.T) {
	_, ts := testFarm(t)
	target, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	var rejected atomic.Int32
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/api/v1/sweeps" && rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(gate.Close)

	dir := t.TempDir()
	specPath := writeSpec(t, dir)
	opts := clientOpts(t, dir, specPath, gate.URL)

	start := time.Now()
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if got := rejected.Load(); got < 3 {
		t.Fatalf("gate saw %d submits, want the two rejects plus a success", got)
	}
	// Two rejects, each with a >=1s Retry-After floor.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("client retried in %v; Retry-After floor not honored", elapsed)
	}
	if lines := readCSV(t, opts.outPath); len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5", len(lines))
	}
}

// TestClientHedgedReadsSkipDeadServer: with the first server dead, the
// hedge to the second replica still recovers every cached entry and no
// job is submitted anywhere.
func TestClientHedgedReadsSkipDeadServer(t *testing.T) {
	s, ts := testFarm(t)
	dir := t.TempDir()
	specPath := writeSpec(t, dir)

	// Warm the farm with a first sweep.
	warm := clientOpts(t, dir, specPath, ts.URL)
	if err := run(warm); err != nil {
		t.Fatal(err)
	}
	jobsBefore := s.Stats().Jobs

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	dir2 := t.TempDir()
	opts := clientOpts(t, dir2, specPath, deadURL, ts.URL)
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if jobs := s.Stats().Jobs; jobs != jobsBefore {
		t.Fatalf("hedged rerun created a job (%d -> %d)", jobsBefore, jobs)
	}
	if lines := readCSV(t, opts.outPath); len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5", len(lines))
	}
}
