// Command widir-experiments regenerates the paper's evaluation: every
// table and figure of Section VI, printed in the same rows/series the
// paper reports (relative numbers — the reproduction targets the shape
// of the results, not absolute testbed numbers).
//
// Usage:
//
//	widir-experiments                    # everything, full scale
//	widir-experiments -exp fig8 -cores 64
//	widir-experiments -exp table6 -scale 0.5
//
// Experiments: motivation, table4, fig5, fig6, fig7, table5, fig8,
// fig9, fig10, table6, all. Beyond the paper: faultsweep (robustness
// under injected wireless faults; on demand only, like summary).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/fault"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment to run (summary,motivation,table4,fig5,fig6,fig7,table5,fig8,fig9,fig10,table6,faultsweep,all)")
		cores    = flag.Int("cores", 64, "core count for single-machine experiments")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Uint64("seed", 1, "workload seed")
		apps     = flag.String("apps", "", "comma-separated application subset (default: all 20)")
		csv      = flag.Bool("csv", false, "emit machine-readable CSV instead of tables (fig5, fig8, fig10, table6)")
		parallel = flag.Int("parallel", 0, "simulation worker-pool width (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "report runner memoization counters on stderr when done")
	)
	flag.Parse()

	// One runner for every experiment: simulations fan out across
	// *parallel workers, and the memo shares canonical runs between
	// tables (e.g. -exp all simulates each Baseline app once, not once
	// per table).
	o := exp.Options{Cores: *cores, Scale: *scale, Seed: *seed, Runner: exp.NewRunner(*parallel)}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	if *verbose {
		// How much the memo actually saved — e.g. -exp all simulates
		// each canonical run once and serves every other table from
		// the memo, which this line makes visible. Closure so the
		// stats are read after the experiments, not at defer time.
		defer func() {
			fmt.Fprintf(os.Stderr, "widir-experiments: runner %s\n", o.Runner.Stats())
		}()
	}

	run := func(name string, fn func() error) {
		// On-demand experiments: summary duplicates the pair runs and
		// faultsweep is not a paper figure, so "all" skips both.
		if (name == "summary" || name == "faultsweep") && *which != name {
			return
		}
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "widir-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("summary", func() error {
		rows, err := exp.Summary(o)
		if err != nil {
			return err
		}
		exp.PrintSummary(os.Stdout, rows)
		return nil
	})
	run("faultsweep", func() error {
		rows, err := exp.FaultSweep(o, []float64{0.01, 0.05, 0.1, 0.25, 0.5}, fault.Config{})
		if err != nil {
			return err
		}
		if *csv {
			exp.CSVFaultSweep(os.Stdout, rows)
			return nil
		}
		exp.PrintFaultSweep(os.Stdout, rows)
		return nil
	})
	run("motivation", func() error {
		m, err := exp.Motivation(o)
		if err != nil {
			return err
		}
		exp.PrintMotivation(os.Stdout, m)
		return nil
	})
	run("table4", func() error {
		rows, err := exp.Table4(o)
		if err != nil {
			return err
		}
		exp.PrintTable4(os.Stdout, rows)
		return nil
	})
	run("fig5", func() error {
		rows, err := exp.Fig5(o)
		if err != nil {
			return err
		}
		if *csv {
			exp.CSVFig5(os.Stdout, rows)
			return nil
		}
		exp.PrintFig5(os.Stdout, rows)
		return nil
	})

	// Figures 6, 7, 8(64) and 9 share one set of pair runs.
	if *which == "all" || *which == "fig6" || *which == "fig7" || *which == "fig9" {
		run("pairs", func() error { return nil }) // spacing only
		start := time.Now()
		rows, err := exp.RunPairs(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "widir-experiments: pairs: %v\n", err)
			os.Exit(1)
		}
		if *which == "all" || *which == "fig6" {
			exp.PrintFig6(os.Stdout, exp.Fig6(rows))
			fmt.Println()
		}
		if *which == "all" || *which == "fig7" {
			exp.PrintFig7(os.Stdout, exp.Fig7(rows))
			fmt.Println()
		}
		if *which == "all" || *which == "fig9" {
			exp.PrintFig9(os.Stdout, exp.Fig9(rows))
			fmt.Println()
		}
		fmt.Printf("[fig6/fig7/fig9 pair runs took %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	run("table5", func() error {
		t, err := exp.Table5(o)
		if err != nil {
			return err
		}
		exp.PrintTable5(os.Stdout, t)
		return nil
	})
	run("fig8", func() error {
		for _, n := range []int{64, 32, 16} {
			oo := o
			oo.Cores = n
			rows, err := exp.RunPairs(oo)
			if err != nil {
				return err
			}
			if *csv {
				exp.CSVFig8(os.Stdout, n, exp.Fig8(rows))
				continue
			}
			exp.PrintFig8(os.Stdout, n, exp.Fig8(rows))
			fmt.Println()
		}
		return nil
	})
	run("fig10", func() error {
		pts, err := exp.Fig10(o, nil)
		if err != nil {
			return err
		}
		if *csv {
			exp.CSVFig10(os.Stdout, pts)
			return nil
		}
		exp.PrintFig10(os.Stdout, pts)
		return nil
	})
	run("table6", func() error {
		rows, err := exp.Table6(o, nil)
		if err != nil {
			return err
		}
		if *csv {
			exp.CSVTable6(os.Stdout, rows)
			return nil
		}
		exp.PrintTable6(os.Stdout, rows)
		return nil
	})
}
