package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmallModelClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-l1", "2", "-op-budget", "4", "-check", "-stats"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{"explored ", "swmr       clean", "liveness   clean", "coverage "} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-l1", "9"}, &out, &errb); code != 2 {
		t.Errorf("invalid -l1: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &errb); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-spec", "/nonexistent"}, &out, &errb); code != 2 {
		t.Errorf("bad spec dir: exit %d, want 2", code)
	}
}

// TestMutatedSpecFails drives the seeded-violation path end to end: a
// spec directory missing the W->S commit row must produce exit 1 under
// -check, a printed counterexample, and replayable trace artifacts.
func TestMutatedSpecFails(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "internal", "protomodel", "spec", "dir.widirspec"))
	if err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	var kept []string
	dropped := false
	for _, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "busy:w-to-s WirDwgrAck") {
			dropped = true
			continue
		}
		kept = append(kept, line)
	}
	if !dropped {
		t.Fatal("spec row busy:w-to-s WirDwgrAck not found (spec layout changed?)")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "dir.widirspec"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	l1, err := os.ReadFile(filepath.Join("..", "..", "internal", "protomodel", "spec", "l1.widirspec"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "l1.widirspec"), l1, 0o644); err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(dir, "cex.jsonl")
	perfetto := filepath.Join(dir, "cex.perfetto.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-l1", "2", "-values", "1", "-op-budget", "5", "-check",
		"-spec", dir, "-trace", trace, "-perfetto", perfetto,
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	s := out.String()
	if !strings.Contains(s, "counterexample (") {
		t.Errorf("no counterexample printed:\n%s", s)
	}
	if !strings.Contains(s, "relation") {
		t.Errorf("violation family not reported:\n%s", s)
	}
	for _, p := range []string{trace, perfetto} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty (err=%v)", p, err)
		}
	}
}
