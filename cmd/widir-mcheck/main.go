// Command widir-mcheck exhaustively model-checks the WiDir coherence
// protocol (DESIGN.md §15). It explores every reachable state of a
// small configurable model — one directory, 2-4 L1s, 1-2 lines,
// symbolic values, a bounded wired network and the wireless broadcast
// plane — validating every transition against the protomodel spec FSMs
// and checking four invariant families: swmr, integrity, deadlock, and
// liveness (EF quiescence plus W->S completion).
//
// Usage:
//
//	widir-mcheck [-l1 n] [-lines n] [-values n] [-reorder n]
//	             [-op-budget n] [-fault] [-dir-evict=false]
//	             [-max-states n] [-check] [-stats]
//	             [-trace out.jsonl] [-perfetto out.json] [-spec dir]
//
// With no flags it explores the default model (3 L1s, one line, two
// values, operation budget 6 — about a million canonical states) and
// prints a per-family verdict. -check exits 1 when any family is
// violated; on a violation the action path is printed and, when -trace
// or -perfetto name a file, the counterexample is replayed through
// internal/obs into the same artifact formats the simulator emits.
// `make mcheck` and CI run it with -check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/mcheck"
	"repro/internal/obs"
	"repro/internal/protomodel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("widir-mcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := mcheck.DefaultConfig()
	l1s := fs.Int("l1", def.L1s, "number of L1 caches (2..4)")
	lines := fs.Int("lines", def.Lines, "number of cache lines (1..2)")
	values := fs.Int("values", def.Values, "distinct symbolic store values (1..3)")
	reorder := fs.Int("reorder", def.Reorder, "per-channel in-flight message bound")
	opBudget := fs.Int("op-budget", def.OpBudget, "spontaneous operation budget (1..16)")
	fault := fs.Bool("fault", false, "enable wireless-corruption fault injection")
	dirEvict := fs.Bool("dir-evict", def.DirEvict, "model directory/LLC capacity evictions")
	maxStates := fs.Int("max-states", 0, "abort beyond this many canonical states (0 = default)")
	check := fs.Bool("check", false, "exit 1 on any invariant violation")
	stats := fs.Bool("stats", false, "print coverage counters")
	trace := fs.String("trace", "", "on violation, write the counterexample as obs JSONL to this file")
	perfetto := fs.String("perfetto", "", "on violation, write the counterexample as a Perfetto trace to this file")
	specDir := fs.String("spec", "", "spec directory (default: the embedded internal/protomodel/spec)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: widir-mcheck [-l1 n] [-lines n] [-values n] [-reorder n] [-op-budget n] [-fault] [-dir-evict=false] [-max-states n] [-check] [-stats] [-trace f] [-perfetto f] [-spec dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	spec, err := loadSpec(*specDir)
	if err != nil {
		fmt.Fprintln(stderr, "widir-mcheck:", err)
		return 2
	}
	cfg := mcheck.Config{
		L1s: *l1s, Lines: *lines, Values: *values, Reorder: *reorder,
		OpBudget: *opBudget, MaxWiredSharers: def.MaxWiredSharers,
		UpdateCountMax: def.UpdateCountMax, FaultDemoteAfter: def.FaultDemoteAfter,
		Fault: *fault, DirEvict: *dirEvict, MaxStates: *maxStates,
	}
	ck, err := mcheck.New(cfg, protomodel.ModelFromSpec(spec))
	if err != nil {
		fmt.Fprintln(stderr, "widir-mcheck:", err)
		return 2
	}

	start := time.Now()
	res, err := ck.Explore()
	if err != nil {
		fmt.Fprintln(stderr, "widir-mcheck:", err)
		return 2
	}
	fmt.Fprintf(stdout, "explored %d states, %d edges (depth %d, %d quiescent) in %v\n",
		res.States, res.Edges, res.MaxDepth, res.Quiescent, time.Since(start).Round(time.Millisecond))
	for _, f := range mcheck.Families {
		fmt.Fprintf(stdout, "  %-10s %s\n", f, res.FamilyVerdicts()[f])
	}
	if *stats {
		for _, c := range res.SortedCoverage() {
			fmt.Fprintf(stdout, "  coverage %s\n", c)
		}
	}
	if res.Clean() {
		return 0
	}

	v := res.Violation
	fmt.Fprintf(stdout, "counterexample (%d steps):\n", len(v.Path))
	for _, step := range v.Path {
		fmt.Fprintf(stdout, "  %s\n", step)
	}
	events := ck.Counterexample(v)
	if *trace != "" {
		if err := writeArtifact(*trace, events, obs.WriteJSONL); err != nil {
			fmt.Fprintln(stderr, "widir-mcheck:", err)
			return 2
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *trace)
	}
	if *perfetto != "" {
		if err := writeArtifact(*perfetto, events, obs.WritePerfetto); err != nil {
			fmt.Fprintln(stderr, "widir-mcheck:", err)
			return 2
		}
		fmt.Fprintf(stdout, "perfetto trace written to %s\n", *perfetto)
	}
	if *check {
		return 1
	}
	return 0
}

func loadSpec(dir string) (*protomodel.Spec, error) {
	if dir == "" {
		return protomodel.EmbeddedSpec()
	}
	return protomodel.LoadSpecDir(dir)
}

func writeArtifact(path string, events []obs.Event, write func(io.Writer, []obs.Event) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
