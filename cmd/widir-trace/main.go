// Command widir-trace captures a cycle-stamped event trace from one
// simulated run and exports it for inspection: filtered JSONL for
// scripting, Chrome trace-event JSON for ui.perfetto.dev, and a
// wired-vs-wireless request-latency summary on stdout.
//
// Usage:
//
//	widir-trace -app fmm -cores 16 -scale 0.1 -protocol widir \
//	    -events trace.jsonl -perfetto trace.json
//	widir-trace -app fmm -protocol both -class wnoc,txn -events -
//
// With -protocol both, file outputs get a -baseline / -widir suffix
// before the extension so the two captures never clobber each other.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		appName  = flag.String("app", "fmm", "application name (see widirsim -list)")
		cores    = flag.Int("cores", 16, "core count")
		scale    = flag.Float64("scale", 0.1, "workload scale factor")
		seed     = flag.Uint64("seed", 1, "workload seed")
		protocol = flag.String("protocol", "widir", "baseline, widir, or both")
		bufCap   = flag.Int("buf", 1<<20, "ring-buffer capacity in events (oldest evicted when full)")
		events   = flag.String("events", "", "write filtered events as JSONL to this file ('-' = stdout)")
		perfetto = flag.String("perfetto", "", "write Chrome trace-event JSON to this file")
		core     = flag.Int("core", -1, "keep only events touching this core (-1 = all)")
		line     = flag.String("line", "", "keep only events for this cache line (hex or decimal; empty = all)")
		class    = flag.String("class", "", "comma-separated event classes/kinds to keep (empty = all): "+strings.Join(obs.GroupNames(), ", "))
	)
	flag.Parse()

	filter := obs.NewFilter()
	kinds, err := obs.ParseKinds(*class)
	if err != nil {
		fatal(err)
	}
	filter.Kinds = kinds
	if *core >= 0 {
		filter.Node = int32(*core)
	}
	if *line != "" {
		v, err := strconv.ParseUint(*line, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -line %q: %v", *line, err))
		}
		filter.Line = addrspace.Line(v)
	}

	var protos []coherence.Protocol
	switch *protocol {
	case "baseline":
		protos = []coherence.Protocol{coherence.Baseline}
	case "widir":
		protos = []coherence.Protocol{coherence.WiDir}
	case "both":
		protos = []coherence.Protocol{coherence.Baseline, coherence.WiDir}
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protocol))
	}

	opts := exp.Options{Cores: *cores, Scale: *scale, Seed: *seed, Apps: []string{*appName}}
	for _, p := range protos {
		run, err := exp.RunTraced(opts, p, *bufCap)
		if err != nil {
			fatal(err)
		}
		kept := filter.Apply(run.Events)

		fmt.Printf("%s/%s: %d cycles, %d events captured (%d dropped), %d after filter\n",
			run.App, run.Protocol, run.Result.Cycles, len(run.Events), run.Dropped, len(kept))
		spans := obs.BuildSpans(run.Events)
		obs.Summarize(spans).Print(os.Stdout)

		if *events != "" {
			if err := writeOut(suffixed(*events, *protocol, p), func(w io.Writer) error {
				return obs.WriteJSONL(w, kept)
			}); err != nil {
				fatal(err)
			}
		}
		if *perfetto != "" {
			if err := writeOut(suffixed(*perfetto, *protocol, p), func(w io.Writer) error {
				return obs.WritePerfetto(w, kept)
			}); err != nil {
				fatal(err)
			}
		}
	}
}

// suffixed inserts "-baseline"/"-widir" before the extension when both
// protocols run, so the exports stay distinct. Stdout is never suffixed.
func suffixed(path, mode string, p coherence.Protocol) string {
	if path == "-" || mode != "both" {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + strings.ToLower(p.String()) + ext
}

func writeOut(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "widir-trace: %v\n", err)
	os.Exit(1)
}
