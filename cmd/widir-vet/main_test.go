package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const seedmut = "../../internal/vet/testdata/seedmut"

// TestRepoCertificateIsClean is the certificate itself: the repository
// tick path matches the checked-in ledger.
func TestRepoCertificateIsClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-check"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "matches the shared-state ledger") {
		t.Errorf("stdout = %q, want certificate message", out.String())
	}
}

// TestSeededMutationFails drives the whole pipeline end to end: a
// module with an unregistered package-level write reachable from Tick
// must fail -check with vetunregistered findings.
func TestSeededMutationFails(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-module", seedmut, "-check"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"vetunregistered", "seedmut.hiddenPool", "seedmut.Sim.n"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr = %q, want finding count", errb.String())
	}
}

func TestSeededMutationJSON(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-module", seedmut, "-check", "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings, got %d", len(findings))
	}
	for _, f := range findings {
		if f["rule"] != "vetunregistered" {
			t.Errorf("rule = %v", f["rule"])
		}
		if f["file"] != "sim.go" || f["line"].(float64) == 0 {
			t.Errorf("finding position = %v:%v, want sim.go with a line", f["file"], f["line"])
		}
	}
}

func TestCertificateView(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"repro/internal/engine.Queue.wheel",
		"needs-partition",
		"domain-local",
		"barrier-mediated",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("certificate view missing %q", want)
		}
	}
	if strings.Contains(got, "UNREGISTERED") {
		t.Error("certificate view reports UNREGISTERED state on a clean tree")
	}
}

func TestEffectsOutput(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-effects", `Queue\)\.RunDue$`}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "tick-path") {
		t.Errorf("RunDue should be on the tick path:\n%s", got)
	}
	if !strings.Contains(got, "repro/internal/engine.Queue") {
		t.Errorf("RunDue effects should mention Queue state:\n%s", got)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-check", "-update"}, &out, &errb); code != 2 {
		t.Errorf("-check -update: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-effects", "(("}, &out, &errb); code != 2 {
		t.Errorf("bad regexp: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-module", "/does/not/exist"}, &out, &errb); code != 2 {
		t.Errorf("bad module: exit = %d, want 2", code)
	}
}
