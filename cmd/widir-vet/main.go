// Command widir-vet is the interprocedural shared-state auditor
// (DESIGN.md §18): it builds the call graph reachable from the
// simulator tick path, infers per-function read/write effect sets over
// package-level variables and named heap state, and checks the result
// against the checked-in shared-state ledger
// (internal/vet/ledger.widirvet) — the static certificate that the
// serial simulator is partitionable into mesh domains (ROADMAP item
// 2).
//
// Usage:
//
//	widir-vet [-check] [-update] [-json] [-effects regexp]
//	          [-ledger file] [-module dir] [-debug]
//
// With no flags it prints the certificate view: every shared-state key
// writable from the tick path with its ledger classification. -check
// diffs against the ledger and exits 1 on unregistered, stale or
// unexplained state, malformed //vet: annotations, or //vet:pure
// violations — `make check` and CI gate on it. -update rewrites the
// ledger preserving classifications and notes. -effects prints the
// inferred read/write sets of matching functions. Exit codes follow
// the shared convention: 0 clean, 1 findings, 2 usage-or-load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/analysis"
	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("widir-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "diff the analysis against the ledger; exit 1 on findings")
	update := fs.Bool("update", false, "rewrite the ledger, preserving classifications and notes")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	effects := fs.String("effects", "", "print effect sets of functions matching the regexp")
	ledgerPath := fs.String("ledger", "", "ledger file (default <module>/internal/vet/ledger.widirvet)")
	moduleDir := fs.String("module", "", "module to analyze (default: the enclosing module)")
	debug := fs.Bool("debug", false, "print per-package load notes to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: widir-vet [-check] [-update] [-json] [-effects regexp] [-ledger file] [-module dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *check && *update {
		fmt.Fprintln(stderr, "widir-vet: -check and -update are mutually exclusive")
		return 2
	}

	dir := *moduleDir
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "widir-vet:", err)
			return 2
		}
		root, err := analysis.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(stderr, "widir-vet:", err)
			return 2
		}
		dir = root
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(stderr, "widir-vet:", err)
		return 2
	}
	cfg := vet.DefaultConfig(abs)
	if *moduleDir != "" {
		// An explicit module (fixtures, other checkouts) may not have
		// the repository layout; fall back to whole-module scope when
		// the sim directories are absent.
		cfg = fixtureConfig(abs)
	}
	if *ledgerPath != "" {
		cfg.LedgerPath = *ledgerPath
	}

	a, err := vet.Analyze(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "widir-vet:", err)
		return 2
	}
	if *debug {
		for _, p := range a.Packages {
			fmt.Fprintf(stderr, "widir-vet: %s (%d files, %d type notes)\n", p.Path, len(p.Files), len(p.TypeErrors))
		}
		reach := 0
		for _, ok := range a.Reachable {
			if ok {
				reach++
			}
		}
		fmt.Fprintf(stderr, "widir-vet: %d functions, %d reachable from tick path\n", len(a.Funcs), reach)
	}

	if *effects != "" {
		re, err := regexp.Compile(*effects)
		if err != nil {
			fmt.Fprintln(stderr, "widir-vet:", err)
			return 2
		}
		printEffects(stdout, a, re)
		return 0
	}

	led, err := vet.ParseLedger(cfg.LedgerPath)
	if err != nil {
		fmt.Fprintln(stderr, "widir-vet:", err)
		return 2
	}

	if *update {
		dropped := led.Update(a)
		if err := os.WriteFile(cfg.LedgerPath, []byte(led.Format(abs)), 0o644); err != nil {
			fmt.Fprintln(stderr, "widir-vet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "widir-vet: wrote %s (%d entries, %d dropped)\n", cfg.LedgerPath, len(led.Entries), len(dropped))
		for _, e := range dropped {
			fmt.Fprintf(stdout, "  dropped: %s %s (%s)\n", e.Kind, e.Key, e.Class)
		}
		return 0
	}

	if *check {
		findings := vet.Check(a, led)
		analysis.Relativize(abs, findings)
		if err := analysis.WriteFindings(stdout, findings, *jsonOut); err != nil {
			fmt.Fprintln(stderr, "widir-vet:", err)
			return 2
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(stderr, "widir-vet: %d finding(s)\n", n)
			return 1
		}
		if !*jsonOut {
			fmt.Fprintln(stdout, "widir-vet: tick path matches the shared-state ledger")
		}
		return 0
	}

	printCertificate(stdout, a, led, *jsonOut, abs)
	return 0
}

// fixtureConfig analyzes an arbitrary module: whole-module scope with
// the default entry names.
func fixtureConfig(moduleDir string) vet.Config {
	cfg := vet.DefaultConfig(moduleDir)
	for _, s := range cfg.Scope {
		if st, err := os.Stat(filepath.Join(moduleDir, s)); err == nil && st.IsDir() {
			return cfg // repository layout present
		}
	}
	cfg.Scope = []string{"./..."}
	return cfg
}

// printCertificate renders the ledger-classified view of every shared
// write state.
func printCertificate(w io.Writer, a *vet.Analysis, led *vet.Ledger, jsonOut bool, moduleDir string) {
	type row struct {
		Kind    string   `json:"kind"`
		Key     string   `json:"key"`
		Class   string   `json:"class"`
		Decl    string   `json:"decl"`
		Writers []string `json:"writers"`
	}
	var rows []row
	for _, st := range a.WriteStates() {
		class := "UNREGISTERED"
		if st.Local {
			class = "vet:local"
		} else if e := led.Covering(st.Kind, st.Key); e != nil {
			class = e.Class
		}
		rows = append(rows, row{
			Kind: string(st.Kind), Key: st.Key, Class: class,
			Decl: vet.RelPos(moduleDir, st.DeclPos), Writers: st.Writers,
		})
	}
	if jsonOut {
		// Reuse the findings encoder's indentation style by hand; the
		// row shape is specific to the certificate view.
		fmt.Fprintln(w, "[")
		for i, r := range rows {
			sep := ","
			if i == len(rows)-1 {
				sep = ""
			}
			fmt.Fprintf(w, "  {\"kind\":%q,\"key\":%q,\"class\":%q,\"decl\":%q,\"writers\":%d}%s\n",
				r.Kind, r.Key, r.Class, r.Decl, len(r.Writers), sep)
		}
		fmt.Fprintln(w, "]")
		return
	}
	wKey, wClass := 0, 0
	for _, r := range rows {
		wKey = maxInt(wKey, len(r.Key))
		wClass = maxInt(wClass, len(r.Class))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-*s %-*s %s (%d writers)\n", r.Kind, wKey, r.Key, wClass, r.Class, r.Decl, len(r.Writers))
	}
}

// printEffects renders per-function read/write sets for functions
// matching the regexp, reachable ones first.
func printEffects(w io.Writer, a *vet.Analysis, re *regexp.Regexp) {
	var names []string
	for name := range a.Funcs {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n := a.Funcs[name]
		reach := "unreachable"
		if a.Reachable[name] {
			reach = "tick-path"
		}
		fmt.Fprintf(w, "%s (%s)\n", name, reach)
		for _, s := range dedupReads(n.Writes) {
			fmt.Fprintf(w, "  write %-6s %s\n", s.Kind, s.Key)
		}
		for _, s := range dedupReads(n.Reads) {
			fmt.Fprintf(w, "  read  %-6s %s\n", s.Kind, s.Key)
		}
	}
}

func dedupReads(sites []vet.Site) []vet.Site {
	seen := map[string]bool{}
	var out []vet.Site
	for _, s := range sites {
		id := string(s.Kind) + " " + s.Key
		if !seen[id] {
			seen[id] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
