package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/machine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMachineCycle-8          	 1278453	      1879 ns/op	     314 B/op	       3 allocs/op
BenchmarkMachineCycle-8          	 1231442	      2058 ns/op	     314 B/op	       3 allocs/op
BenchmarkSimFastForward-8        	     241	   9691280 ns/op	     26549 sim-cycles	  731714 B/op	    8852 allocs/op
PASS
ok  	repro/internal/machine	17.086s
`

func TestParseKeepsBestRepetition(t *testing.T) {
	rec, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rec.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", rec.CPU)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rec.Benchmarks))
	}
	mc := rec.Benchmarks[0]
	if mc.Name != "BenchmarkMachineCycle" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", mc.Name)
	}
	if mc.NsPerOp != 1879 {
		t.Errorf("kept ns/op %v, want the minimum 1879", mc.NsPerOp)
	}
	if mc.AllocsOp != 3 || mc.BytesPerOp != 314 {
		t.Errorf("allocs/B = %v/%v", mc.AllocsOp, mc.BytesPerOp)
	}
	ff := rec.Benchmarks[1]
	if ff.Metrics["sim-cycles"] != 26549 {
		t.Errorf("sim-cycles metric = %v", ff.Metrics["sim-cycles"])
	}
	if want := 9691280.0 / 26549; ff.NsPerSimCycle != want {
		t.Errorf("ns/sim-cycle = %v, want %v", ff.NsPerSimCycle, want)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty benchmark output did not error")
	}
}

func TestGate(t *testing.T) {
	base := &Record{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 3},
		{Name: "BenchmarkGone", NsPerOp: 50, AllocsOp: 0},
	}}
	for _, tc := range []struct {
		name string
		cur  Result
		pass bool
	}{
		{"within-tolerance", Result{Name: "BenchmarkA", NsPerOp: 1100, AllocsOp: 3}, true},
		{"faster", Result{Name: "BenchmarkA", NsPerOp: 500, AllocsOp: 3}, true},
		{"ns-regression", Result{Name: "BenchmarkA", NsPerOp: 1200, AllocsOp: 3}, false},
		{"alloc-regression", Result{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 4}, false},
		{"new-benchmark-skipped", Result{Name: "BenchmarkNew", NsPerOp: 9e9, AllocsOp: 99}, true},
	} {
		cur := &Record{Benchmarks: []Result{tc.cur}}
		var sb strings.Builder
		if got := gate(&sb, base, cur, 0.15); got != tc.pass {
			t.Errorf("%s: gate = %v, want %v\n%s", tc.name, got, tc.pass, sb.String())
		}
	}
}
