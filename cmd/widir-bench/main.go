// Command widir-bench turns `go test -bench` output into a committed,
// machine-readable performance record, and gates regressions against a
// checked-in baseline.
//
// It reads benchmark output on stdin and writes one JSON document:
//
//	go test ./internal/machine -run '^$' -bench . -benchmem -count 3 |
//	    go run ./cmd/widir-bench -date 2026-08-08 -out BENCH_2026-08-08.json
//
// With -count > 1 the best (minimum) ns/op line per benchmark is kept
// — the minimum is the least-noise estimate of the code's cost on the
// machine — while allocs/op and B/op come from the same line (they are
// deterministic and identical across repetitions anyway).
//
// With -compare the current run is checked against a baseline record:
// the tool exits nonzero if any benchmark present in both regressed by
// more than -max-ns-regress (default 15%) in ns/op, or allocated more
// objects per op than the baseline at all. New or removed benchmarks
// are reported but never fail the gate.
//
// The date is injected with -date rather than read from the clock so
// the tool passes the repository's walltime determinism lint; the
// Makefile supplies `date +%F`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// NsPerSimCycle is NsPerOp divided by the benchmark's sim-cycles
	// metric when it reports one: the effective cost of simulating one
	// machine cycle, the number the perf roadmap tracks.
	NsPerSimCycle float64 `json:"ns_per_sim_cycle,omitempty"`
}

// Record is the document written to the BENCH_<date>.json file.
type Record struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "date stamp for the record (YYYY-MM-DD, required; supplied by the Makefile)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to gate against (exit 1 on regression)")
	maxNs := flag.Float64("max-ns-regress", 0.15, "maximum tolerated fractional ns/op regression vs the baseline")
	flag.Parse()
	if *date == "" {
		fmt.Fprintln(os.Stderr, "widir-bench: -date is required (the tool never reads the clock)")
		os.Exit(2)
	}

	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "widir-bench:", err)
		os.Exit(2)
	}
	rec.Date = *date
	rec.GoVersion = runtime.Version()
	rec.GOARCH = runtime.GOARCH

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "widir-bench:", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "widir-bench:", err)
		os.Exit(2)
	}

	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "widir-bench:", err)
			os.Exit(2)
		}
		if !gate(os.Stderr, base, rec, *maxNs) {
			os.Exit(1)
		}
	}
}

// parse consumes `go test -bench` output and aggregates it into a
// Record, keeping the minimum-ns/op line per benchmark name.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	best := map[string]int{} // name -> index into rec.Benchmarks
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = cpu
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, seen := best[res.Name]; seen {
			if res.NsPerOp < rec.Benchmarks[i].NsPerOp {
				rec.Benchmarks[i] = res
			}
			continue
		}
		best[res.Name] = len(rec.Benchmarks)
		rec.Benchmarks = append(rec.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rec, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkMachineCycle-8  1278453  1879 ns/op  314 B/op  3 allocs/op  26549 sim-cycles
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so records compare across machines.
	for i := len(name) - 1; i > 0; i-- {
		if name[i] == '-' {
			if allDigits(name[i+1:]) {
				name = name[:i]
			}
			break
		}
	}
	res := Result{Name: name}
	if _, err := fmt.Sscanf(fields[1], "%d", &res.Iterations); err != nil {
		return Result{}, false
	}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	if !found {
		return Result{}, false
	}
	if cycles := res.Metrics["sim-cycles"]; cycles > 0 {
		res.NsPerSimCycle = res.NsPerOp / cycles
	}
	return res, true
}

func load(path string) (*Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	if err := json.Unmarshal(buf, rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// gate compares cur against base and reports whether the run passes:
// every benchmark present in both must hold ns/op within maxNs
// fractionally and must not allocate more objects per op.
func gate(w io.Writer, base, cur *Record, maxNs float64) bool {
	baseBy := map[string]Result{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	ok := true
	for _, c := range cur.Benchmarks {
		b, seen := baseBy[c.Name]
		if !seen {
			fmt.Fprintf(w, "widir-bench: %s: new benchmark (no baseline), skipping gate\n", c.Name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		fmt.Fprintf(w, "widir-bench: %-32s ns/op %10.1f -> %10.1f (%+.1f%%)  allocs/op %g -> %g\n",
			c.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, b.AllocsOp, c.AllocsOp)
		if ratio > 1+maxNs {
			fmt.Fprintf(w, "widir-bench: FAIL %s: ns/op regressed %.1f%% (limit %.0f%%)\n",
				c.Name, (ratio-1)*100, maxNs*100)
			ok = false
		}
		if c.AllocsOp > b.AllocsOp {
			fmt.Fprintf(w, "widir-bench: FAIL %s: allocs/op rose %g -> %g (any rise fails)\n",
				c.Name, b.AllocsOp, c.AllocsOp)
			ok = false
		}
	}
	if ok {
		fmt.Fprintln(w, "widir-bench: gate passed")
	}
	return ok
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func splitFields(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		if j > i {
			out = append(out, s[i:j])
		}
		i = j
	}
	return out
}
