// Command widir-sweep runs a cartesian parameter sweep — applications x
// core counts x protocols x MaxWiredSharers thresholds — and emits one
// CSV row per run, for plotting or regression tracking.
//
// Usage:
//
//	widir-sweep -apps radiosity,barnes -cores 16,32,64 -thresholds 2,3,4 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/workload"
)

// sweepJob is one point of the cartesian sweep, in output order.
type sweepJob struct {
	app workload.Profile
	p   coherence.Protocol
	n   int
	th  int
}

func main() {
	var (
		appsFlag   = flag.String("apps", "radiosity,barnes,ocean-nc", "comma-separated applications ('all' for every app)")
		coresFlag  = flag.String("cores", "64", "comma-separated core counts")
		thFlag     = flag.String("thresholds", "3", "comma-separated MaxWiredSharers values (WiDir runs)")
		protosFlag = flag.String("protocols", "baseline,widir", "comma-separated protocols")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		seed       = flag.Uint64("seed", 1, "workload seed")
		flitNoC    = flag.Bool("flit-noc", false, "use the flit-level wormhole NoC model")
		parallel   = flag.Int("parallel", 0, "simulation worker-pool width (0 = GOMAXPROCS)")
	)
	flag.Parse()

	apps, err := parseApps(*appsFlag)
	if err != nil {
		fatal(err)
	}
	cores, err := parseInts(*coresFlag)
	if err != nil {
		fatal(err)
	}
	thresholds, err := parseInts(*thFlag)
	if err != nil {
		fatal(err)
	}
	protos, err := parseProtocols(*protosFlag)
	if err != nil {
		fatal(err)
	}

	// Enumerate the full sweep up front so the worker pool can fan the
	// points out while the CSV rows still print in cartesian order.
	var jobs []sweepJob
	for _, app := range apps {
		scaled := app.Scale(*scale)
		for _, n := range cores {
			for _, p := range protos {
				ths := thresholds
				if p == coherence.Baseline {
					ths = thresholds[:1] // threshold is a WiDir knob
				}
				for _, th := range ths {
					jobs = append(jobs, sweepJob{app: scaled, p: p, n: n, th: th})
				}
			}
		}
	}

	r := exp.NewRunner(*parallel)
	results, err := exp.Map(r, len(jobs), func(i int) (*machine.Result, error) {
		j := jobs[i]
		cfg := machine.DefaultConfig(j.n, j.p)
		cfg.MaxWiredSharers = j.th
		if j.th > cfg.MaxPointers {
			cfg.MaxPointers = j.th
		}
		cfg.FlitLevelNoC = *flitNoC
		res, err := r.SimConfig(cfg, j.app, *seed)
		if err != nil {
			return nil, fmt.Errorf("%d cores, th=%d: %w", j.n, j.th, err)
		}
		return res, nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println("app,protocol,cores,maxwired,cycles,instructions,mpki,memstall_frac,wireless_writes,stow,wtos,collision_prob,energy_pj")
	for i, res := range results {
		j := jobs[i]
		stall := float64(res.MemStallCycles) / float64(res.Cycles*uint64(j.n))
		fmt.Printf("%s,%s,%d,%d,%d,%d,%.3f,%.3f,%d,%d,%d,%.4f,%.0f\n",
			j.app.Name, j.p, j.n, j.th, res.Cycles, res.Retired, res.MPKI(), stall,
			res.WirelessWrites, res.SToW, res.WToS, res.CollisionProb, res.EnergyPJ)
	}
}

func parseApps(s string) ([]workload.Profile, error) {
	if s == "all" {
		return workload.Apps(), nil
	}
	var out []workload.Profile
	for _, name := range strings.Split(s, ",") {
		p, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("widir-sweep: unknown application %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("widir-sweep: bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseProtocols(s string) ([]coherence.Protocol, error) {
	var out []coherence.Protocol
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "baseline":
			out = append(out, coherence.Baseline)
		case "widir":
			out = append(out, coherence.WiDir)
		default:
			return nil, fmt.Errorf("widir-sweep: unknown protocol %q", f)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
