package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/serve"
)

// runClusterSmoke is the fault-tolerance self-test `make
// serve-cluster-smoke` runs in CI. It exercises the two acceptance
// guarantees of the multi-node farm with real processes and a real
// SIGKILL:
//
//	phase A: boot a 3-node cluster (subprocesses of this binary),
//	         run a sweep on node 1 to completion;
//	phase B: submit a second sweep to node 3 and SIGKILL the process
//	         before it finishes; restart it over the same cache dir and
//	         verify the queue journal replays the accepted runs — the
//	         job completes under its ORIGINAL id, zero accepted work
//	         lost;
//	phase C: rerun both sweeps; every node's simulation counter must
//	         stay exactly flat (all keys cache- or peer-served) and the
//	         results must be byte-identical to the first pass.
func runClusterSmoke() error {
	root, err := os.MkdirTemp("", "widir-cluster-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	const n = 3
	addrs, err := reservePorts(n)
	if err != nil {
		return err
	}
	urls := make([]string, n)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peerFlag := strings.Join(urls, ",")

	nodes := make([]*exec.Cmd, n)
	spawn := func(i int) error {
		cmd := exec.Command(os.Args[0],
			"-addr", addrs[i],
			"-cache", filepath.Join(root, fmt.Sprintf("node%d", i)),
			"-workers", "1",
			"-self", urls[i],
			"-peers", peerFlag,
			"-replicas", "2",
			"-peer-timeout", "500ms",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		nodes[i] = cmd
		return nil
	}
	defer func() {
		for _, cmd := range nodes {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}()
	for i := 0; i < n; i++ {
		if err := spawn(i); err != nil {
			return err
		}
	}
	for _, u := range urls {
		if err := waitHealthy(u, 30*time.Second); err != nil {
			return err
		}
	}

	sweepA := serve.SweepRequest{
		Client: "cluster-smoke-a", Protocols: []string{"baseline", "widir"},
		Apps: []string{"water-spa"}, Cores: 4, Scale: 0.02, Seeds: []uint64{1},
	}
	sweepB := serve.SweepRequest{
		Client: "cluster-smoke-b", Protocols: []string{"baseline", "widir"},
		Apps: []string{"water-spa"}, Cores: 4, Scale: 0.02, Seeds: []uint64{2, 3, 4, 5},
	}

	// Phase A: a clean sweep on node 0.
	jobA, err := submitSweep(urls[0], sweepA)
	if err != nil {
		return fmt.Errorf("phase A: %w", err)
	}
	resultsA, err := streamResults(urls[0], jobA)
	if err != nil {
		return fmt.Errorf("phase A: %w", err)
	}
	fmt.Fprintf(os.Stderr, "cluster-smoke: phase A: %d runs done on node 0\n", len(resultsA))

	// Phase B: submit to node 2, then SIGKILL it before the sweep can
	// finish (1 worker, 8 runs — the 202 comes back long before the
	// queue drains). The accepted work must survive.
	jobB, err := submitSweep(urls[2], sweepB)
	if err != nil {
		return fmt.Errorf("phase B: %w", err)
	}
	if err := nodes[2].Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		return fmt.Errorf("phase B: kill: %w", err)
	}
	nodes[2].Wait()
	nodes[2] = nil
	fmt.Fprintf(os.Stderr, "cluster-smoke: phase B: node 2 SIGKILLed with job %s in flight\n", jobB)

	if err := spawn(2); err != nil {
		return fmt.Errorf("phase B: restart: %w", err)
	}
	if err := waitHealthy(urls[2], 30*time.Second); err != nil {
		return fmt.Errorf("phase B: restart: %w", err)
	}
	st, err := nodeStats(urls[2])
	if err != nil {
		return fmt.Errorf("phase B: %w", err)
	}
	if st.WAL.Replayed == 0 {
		return fmt.Errorf("phase B: restarted node replayed 0 runs from the journal")
	}
	fmt.Fprintf(os.Stderr, "cluster-smoke: phase B: journal replayed %d runs\n", st.WAL.Replayed)
	// The job must complete under its original id on the restarted node.
	resultsB, err := streamResults(urls[2], jobB)
	if err != nil {
		return fmt.Errorf("phase B: replayed job %s: %w", jobB, err)
	}
	if len(resultsB) == 0 {
		return fmt.Errorf("phase B: replayed job %s delivered no results", jobB)
	}
	fmt.Fprintf(os.Stderr, "cluster-smoke: phase B: job %s completed %d runs after restart\n", jobB, len(resultsB))

	// Phase C: rerun both sweeps. Simulation counters across the whole
	// cluster must not move — every key is already cached somewhere the
	// federation can reach — and the bytes must match the first pass.
	simsBefore, err := clusterSims(urls)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	jobA2, err := submitSweep(urls[0], sweepA)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	resultsA2, err := streamResults(urls[0], jobA2)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	jobB2, err := submitSweep(urls[2], sweepB)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	resultsB2, err := streamResults(urls[2], jobB2)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	simsAfter, err := clusterSims(urls)
	if err != nil {
		return fmt.Errorf("phase C: %w", err)
	}
	if simsAfter != simsBefore {
		return fmt.Errorf("phase C: rerun re-simulated cached keys: cluster sims %d -> %d", simsBefore, simsAfter)
	}
	if len(resultsA) != len(resultsA2) {
		return fmt.Errorf("phase C: sweep A result counts differ: %d vs %d", len(resultsA), len(resultsA2))
	}
	for hash, raw := range resultsA {
		if !bytes.Equal(raw, resultsA2[hash]) {
			return fmt.Errorf("phase C: sweep A run %s not byte-identical across reruns", hash[:12])
		}
	}
	// The replayed job held only the runs pending at the kill, so the
	// first pass of sweep B can be a subset of the rerun — but every
	// run both passes saw must match byte for byte, and the rerun must
	// cover the full sweep.
	want := len(sweepB.Protocols) * len(sweepB.Apps) * len(sweepB.Seeds)
	if len(resultsB2) != want {
		return fmt.Errorf("phase C: sweep B rerun returned %d runs, want %d", len(resultsB2), want)
	}
	for hash, raw := range resultsB {
		if !bytes.Equal(raw, resultsB2[hash]) {
			return fmt.Errorf("phase C: sweep B run %s not byte-identical across the crash", hash[:12])
		}
	}
	fmt.Fprintf(os.Stderr, "cluster-smoke: phase C: reruns served with zero simulations, byte-identical\n")

	// Graceful teardown so the deferred kill is a no-op on live nodes.
	for i, cmd := range nodes {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
		nodes[i] = nil
	}
	return nil
}

// reservePorts grabs n loopback ports and releases them for the
// children to bind. The tiny reuse race is acceptable in a self-test.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs, nil
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %s never became healthy: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func submitSweep(url string, sweep serve.SweepRequest) (string, error) {
	data, err := json.Marshal(sweep)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(url+"/api/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit to %s: %s", url, resp.Status)
	}
	var body struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.Job, nil
}

// streamResults reads a job's stream to the end, returning result
// bytes by run hash and failing on any non-done run.
func streamResults(url, jobID string) (map[string][]byte, error) {
	resp, err := http.Get(url + "/api/v1/jobs/" + jobID + "/stream")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream %s: %s", jobID, resp.Status)
	}
	out := map[string][]byte{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st serve.RunStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return nil, fmt.Errorf("bad stream line: %w", err)
		}
		if st.State != "done" {
			return nil, fmt.Errorf("run %s: state %s (%s)", st.Key.ID, st.State, st.Error)
		}
		out[st.Key.Hash] = st.Result
	}
	return out, sc.Err()
}

// smokeStats is the slice of /api/v1/stats the smoke needs.
type smokeStats struct {
	Runner struct {
		Sims uint64 `json:"sims"`
	} `json:"runner"`
	WAL serve.JournalStats `json:"wal"`
}

func nodeStats(url string) (smokeStats, error) {
	var st smokeStats
	resp, err := http.Get(url + "/api/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats %s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func clusterSims(urls []string) (uint64, error) {
	var total uint64
	for _, u := range urls {
		st, err := nodeStats(u)
		if err != nil {
			return 0, err
		}
		total += st.Runner.Sims
	}
	return total, nil
}
