// Command widir-serve runs the WiDir simulation farm: an HTTP/JSON
// service that executes canonical simulations on demand and persists
// every result in a content-addressed disk cache, so any sweep the
// farm has computed before — in this process or any earlier one — is
// served from disk without re-simulating.
//
// Usage:
//
//	widir-serve                          # listen on :8344, cache in ./widir-cache
//	widir-serve -addr :9000 -cache /var/lib/widir -workers 8 -queue 512
//	widir-serve -smoke                   # self-test: sim, restart, verify all-cached
//
// API (see DESIGN.md §16):
//
//	POST /api/v1/sweeps                        submit a sweep (202; 429+Retry-After when full)
//	GET  /api/v1/jobs/{id}                     job status
//	GET  /api/v1/jobs/{id}/stream              results as JSON lines, flushed as they complete
//	GET  /api/v1/runs/{hash}/artifacts/{name}  result.csv, trace.jsonl, trace.perfetto.json
//	GET  /api/v1/stats                         queue/runner/cache counters
//	GET  /healthz
//
// SIGINT/SIGTERM drain gracefully: admission stops (new sweeps get
// 503), queued runs finish, then the process exits.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8344", "listen address")
		cache   = flag.String("cache", "widir-cache", "content-addressed result cache directory")
		workers = flag.Int("workers", 4, "simulation workers")
		queue   = flag.Int("queue", 256, "max queued runs across all clients")
		smoke   = flag.Bool("smoke", false, "run the self-test (simulate, restart, verify the repeat sweep is fully cache-served) and exit")

		self        = flag.String("self", "", "this node's base URL as peers reach it (enables clustering with -peers)")
		peerList    = flag.String("peers", "", "comma-separated base URLs of every cluster node, including -self")
		replicas    = flag.Int("replicas", 2, "replication factor: rendezvous owners per run key")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "per-peer-request timeout")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "LRU cache budget in bytes (0 = unbounded)")

		clusterSmoke = flag.Bool("cluster-smoke", false, "run the 3-node kill-mid-sweep self-test (spawns subprocesses) and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "widir-serve: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("widir-serve: smoke ok")
		return
	}
	if *clusterSmoke {
		if err := runClusterSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "widir-serve: cluster-smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("widir-serve: cluster-smoke ok")
		return
	}

	var peers []string
	for _, p := range strings.Split(*peerList, ",") {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			peers = append(peers, p)
		}
	}
	s, err := serve.New(serve.Config{
		CacheDir:      *cache,
		Workers:       *workers,
		MaxQueue:      *queue,
		Self:          strings.TrimRight(*self, "/"),
		Peers:         peers,
		Replicas:      *replicas,
		PeerTimeout:   *peerTimeout,
		CacheMaxBytes: *cacheMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "widir-serve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "widir-serve: listening on %s, cache %s, %d workers, queue %d\n",
		*addr, *cache, *workers, *queue)
	if len(peers) > 0 {
		fmt.Fprintf(os.Stderr, "widir-serve: cluster: self %s, %d peers, replicas %d\n",
			*self, len(peers), *replicas)
	}

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "widir-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "widir-serve: draining (queued runs will finish; new sweeps get 503)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "widir-serve: %v\n", err)
		os.Exit(1)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "widir-serve: drained")
}

// runSmoke is the end-to-end self-test `make serve-smoke` runs in CI:
//
//	phase 1: fresh cache dir, submit a tiny sweep, stream it to
//	         completion — every run must be freshly simulated;
//	phase 2: a NEW server over the SAME cache dir (cold memo, warm
//	         disk), same sweep — every run must come from the cache,
//	         zero simulations, byte-identical results.
func runSmoke() error {
	dir, err := os.MkdirTemp("", "widir-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sweep := serve.SweepRequest{
		Client:    "smoke",
		Protocols: []string{"baseline", "widir"},
		Apps:      []string{"water-spa"},
		Cores:     4,
		Scale:     0.02,
		Seeds:     []uint64{1},
	}

	// Phase 1: cold cache — everything simulates.
	first, err := smokePhase(dir, sweep, func(s *serve.Server, results []serve.RunStatus) error {
		for _, r := range results {
			if r.Source != "sim" {
				return fmt.Errorf("cold-cache run %s served from %q, want sim", r.Key.ID, r.Source)
			}
		}
		if st := s.Runner().Stats(); st.Sims != uint64(len(results)) {
			return fmt.Errorf("cold-cache phase ran %d sims for %d runs", st.Sims, len(results))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}

	// Phase 2: new server, same cache dir — everything loads.
	second, err := smokePhase(dir, sweep, func(s *serve.Server, results []serve.RunStatus) error {
		for _, r := range results {
			if r.Source != "cache" {
				return fmt.Errorf("warm-cache run %s served from %q, want cache", r.Key.ID, r.Source)
			}
		}
		st := s.Runner().Stats()
		if st.Sims != 0 {
			return fmt.Errorf("warm-cache phase re-simulated %d runs", st.Sims)
		}
		if st.CacheHits != uint64(len(results)) {
			return fmt.Errorf("warm-cache phase: %d cache hits for %d runs", st.CacheHits, len(results))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}

	if len(first) != len(second) {
		return fmt.Errorf("phase result counts differ: %d vs %d", len(first), len(second))
	}
	for hash, raw := range first {
		if !bytes.Equal(raw, second[hash]) {
			return fmt.Errorf("run %s: cached result is not byte-identical to the fresh simulation", hash[:12])
		}
	}
	fmt.Fprintf(os.Stderr, "widir-serve: smoke: %d runs simulated once, repeat served entirely from disk, byte-identical\n", len(first))
	return nil
}

// smokePhase boots a farm on a loopback port, submits the sweep,
// streams it to completion, runs the check, drains, and returns the
// result bytes by run hash.
func smokePhase(cacheDir string, sweep serve.SweepRequest, check func(*serve.Server, []serve.RunStatus) error) (map[string][]byte, error) {
	s, err := serve.New(serve.Config{CacheDir: cacheDir, Workers: 2, MaxQueue: 64})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
		httpSrv.Shutdown(ctx)
	}()

	data, err := json.Marshal(sweep)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/api/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: %s", resp.Status)
	}
	var body struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}

	stream, err := http.Get(base + "/api/v1/jobs/" + body.Job + "/stream")
	if err != nil {
		return nil, err
	}
	defer stream.Body.Close()
	out := map[string][]byte{}
	var results []serve.RunStatus
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st serve.RunStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return nil, fmt.Errorf("bad stream line: %w", err)
		}
		if st.State != "done" {
			return nil, fmt.Errorf("run %s: state %s (%s)", st.Key.ID, st.State, st.Error)
		}
		results = append(results, st)
		out[st.Key.Hash] = st.Result
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("stream delivered no results")
	}
	if err := check(s, results); err != nil {
		return nil, err
	}
	return out, nil
}
