// Package dirty is the widir-lint CLI fixture: it trips the
// globalrand rule (testdata/ is invisible to the go tool, so this file
// never builds into the repository).
package dirty

import "math/rand"

// Roll uses the global math/rand source — banned everywhere.
func Roll() int { return rand.Int() }
