package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean text run should print nothing, got %q", out.String())
	}
}

func TestCleanJSONIsEmptyArray(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-json", "."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}

func TestDirtyFixtureExitsOne(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"testdata/dirty"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[globalrand]") {
		t.Errorf("stdout missing globalrand finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr = %q, want finding count", errb.String())
	}
}

func TestDirtyFixtureJSON(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "testdata/dirty"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0]["rule"] != "globalrand" {
		t.Fatalf("findings = %v, want one globalrand", findings)
	}
	if f := findings[0]["file"].(string); !strings.HasSuffix(f, "dirty.go") {
		t.Errorf("file = %q, want dirty.go", f)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"/does/not/exist"}, &out, &errb); code != 2 {
		t.Errorf("bad package dir: exit = %d, want 2", code)
	}
}
