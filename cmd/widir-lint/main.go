// Command widir-lint enforces the repository's determinism contract
// (DESIGN.md §10) statically: it type-checks the requested packages
// with the standard library's go/parser + go/types and runs the
// internal/analysis rule set — mapiter, walltime, globalrand,
// floatorder, gonosync, switchcases (an enum switch may not drop
// members silently: it needs every member or a default arm),
// protopanic (no bare panic in internal/coherence; protocol failures
// are typed coherence.ProtocolError values reported through
// Env.ReportProtocolError), globalmut (no unregistered mutable
// package-level state in sim packages) and tickpure (//vet:pure
// functions may not write non-receiver state) — printing one
// file:line:col finding per violation and exiting nonzero when any
// survive. `make check` and CI both gate on it.
//
// Usage:
//
//	widir-lint [-debug] [-json] [packages]
//
// Packages default to ./... and accept go-style patterns ("./...",
// "./internal/...", plain directories). Findings are suppressed by a
// `//lint:deterministic <why>` comment on the offending line or the
// line above it; a suppression that no longer suppresses anything is
// itself reported (staleignore), so the escape hatch cannot outlive
// its justification. Exit codes follow the shared convention: 0
// clean, 1 findings, 2 usage-or-load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("widir-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	debug := fs.Bool("debug", false, "print soft type-check errors and per-package progress")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: widir-lint [-debug] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "widir-lint:", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "widir-lint:", err)
		return 2
	}
	wireLedger(moduleDir)
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(stderr, "widir-lint:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "widir-lint:", err)
		return 2
	}

	var findings []analysis.Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "widir-lint:", err)
			return 2
		}
		if *debug {
			fmt.Fprintf(stderr, "widir-lint: %s (%d files, %d type notes)\n",
				pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "  note: %v\n", te)
			}
		}
		findings = append(findings, analysis.RunAll(pkg)...)
	}

	analysis.SortFindings(findings)
	analysis.Relativize(cwd, findings)
	if err := analysis.WriteFindings(stdout, findings, *jsonOut); err != nil {
		fmt.Fprintln(stderr, "widir-lint:", err)
		return 2
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stderr, "widir-lint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// wireLedger points the globalmut rule at the shared-state ledger so
// a registered global needs no //vet:local annotation. A missing or
// malformed ledger degrades to "nothing registered" — globalmut then
// demands annotations, it does not crash the lint run.
func wireLedger(moduleDir string) {
	led, err := vet.ParseLedger(filepath.Join(moduleDir, "internal", "vet", "ledger.widirvet"))
	if err != nil {
		return
	}
	keys := led.GlobalKeys()
	analysis.LedgerGlobals = func(key string) bool { return keys[key] }
}
