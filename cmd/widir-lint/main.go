// Command widir-lint enforces the repository's determinism contract
// (DESIGN.md §10) statically: it type-checks the requested packages
// with the standard library's go/parser + go/types and runs the
// internal/analysis rule set — mapiter, walltime, globalrand,
// floatorder, gonosync, switchcases (an enum switch may not drop
// members silently: it needs every member or a default arm), plus
// protopanic (no bare panic in internal/coherence; protocol failures
// are typed coherence.ProtocolError values reported through
// Env.ReportProtocolError) — printing one file:line:col finding per
// violation and exiting
// nonzero when any survive. `make check` and CI both gate on it.
//
// Usage:
//
//	widir-lint [-debug] [packages]
//
// Packages default to ./... and accept go-style patterns ("./...",
// "./internal/...", plain directories). Findings are suppressed by a
// `//lint:deterministic <why>` comment on the offending line or the
// line above it; a suppression that no longer suppresses anything is
// itself reported (staleignore), so the escape hatch cannot outlive
// its justification.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	debug := flag.Bool("debug", false, "print soft type-check errors and per-package progress")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: widir-lint [-debug] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	var findings []analysis.Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fatal(err)
		}
		if *debug {
			fmt.Fprintf(os.Stderr, "widir-lint: %s (%d files, %d type notes)\n",
				pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "  note: %v\n", te)
			}
		}
		findings = append(findings, analysis.RunAll(pkg)...)
	}

	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "widir-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "widir-lint:", err)
	os.Exit(2)
}
