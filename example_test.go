package widir_test

import (
	"fmt"

	widir "repro"
)

// ExampleRun shows the minimal path: pick a Table IV application, build
// the Table III machine, run it, and read the headline measurements.
func ExampleRun() {
	app, _ := widir.App("blackscholes")
	app = app.Scale(0.02) // tiny run so the example is instant

	cfg := widir.DefaultConfig(4, widir.WiDir)
	res, err := widir.Run(cfg, app, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finished:", res.Cycles > 0 && res.Retired > 0)
	fmt.Println("protocol:", res.Protocol)
	// Output:
	// finished: true
	// protocol: WiDir
}

// ExampleCompare runs one application under both protocols with an
// otherwise identical machine and seed.
func ExampleCompare() {
	app, _ := widir.App("radiosity")
	app = app.Scale(0.05)

	cfg := widir.DefaultConfig(8, widir.Baseline)
	cmp, err := widir.Compare(cfg, app, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("app:", cmp.App)
	fmt.Println("both ran:", cmp.Base.Cycles > 0 && cmp.WiDir.Cycles > 0)
	fmt.Println("ratio sane:", cmp.TimeRatio() > 0.2 && cmp.TimeRatio() < 5)
	// Output:
	// app: radiosity
	// both ran: true
	// ratio sane: true
}

// countdown is a trivial custom instruction source.
type countdown struct{ n int }

func (c *countdown) Next(prev uint64, prevValid bool) (widir.Instr, bool) {
	if c.n == 0 {
		return widir.Instr{}, false
	}
	c.n--
	return widir.Instr{Kind: widir.KStore, Addr: widir.Addr(c.n) * widir.LineSize, Value: uint64(c.n)}, true
}

// ExampleRunCustom drives the machine with a caller-defined instruction
// stream instead of the built-in application profiles.
func ExampleRunCustom() {
	cfg := widir.DefaultConfig(2, widir.Baseline)
	res, err := widir.RunCustom(cfg, []widir.InstrSource{
		&countdown{n: 32}, &countdown{n: 32},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("retired:", res.Retired)
	// Output:
	// retired: 64
}
