# Developer entry points for the WiDir reproduction. `make check` is
# the pre-commit gate: build + vet + determinism lint + protocol-model
# conformance + shared-state certificate + exhaustive model checking +
# full test suite + race on the concurrency-bearing packages.

GO ?= go

.PHONY: build test race vet lint model mcheck vet-model bench bench-json bench-gate serve-smoke serve-cluster-smoke clean-cache check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner fans simulations across goroutines, the
# machine package owns the results it publishes through it, the mesh,
# wireless and fault packages carry the shared state those parallel
# runs tick, the serve farm layers HTTP workers on top, and the
# cluster/client layers hedge requests across peers; these are the
# packages where a data race could hide.
race:
	$(GO) test -race ./internal/exp/ ./internal/machine/ ./internal/mesh/ ./internal/wireless/ ./internal/fault/ ./internal/serve/ ./internal/cluster/ ./cmd/widir-client/ ./cmd/widir-serve/

vet:
	$(GO) vet ./...

# Static determinism audit (DESIGN.md §10): mapiter, walltime,
# globalrand, floatorder, gonosync over the whole module.
lint:
	$(GO) run ./cmd/widir-lint ./...

# Protocol-model conformance (DESIGN.md §13): extract the dir and l1
# FSMs from internal/coherence and diff against the checked-in spec.
model:
	$(GO) run ./cmd/widir-model -check

# Exhaustive protocol model checking (DESIGN.md §15): explore every
# reachable state of the default model (3 L1s, ~1M canonical states,
# about a minute) and fail on any swmr / integrity / deadlock /
# liveness violation or spec-relation divergence. On failure the
# counterexample trace artifacts land in mcheck-cex.*.
mcheck:
	$(GO) run ./cmd/widir-mcheck -check \
	    -trace mcheck-cex.jsonl -perfetto mcheck-cex.perfetto.json

# Shared-state certificate (DESIGN.md §18): interprocedural effect
# analysis over the tick path, diffed against the checked-in ledger
# internal/vet/ledger.widirvet. Fails on unregistered, stale or
# unclassified state — rerun `go run ./cmd/widir-vet -update` after
# deliberate state changes and re-classify the TODO entries.
vet-model:
	$(GO) run ./cmd/widir-vet -check

# One pass over every evaluation benchmark (reduced workload scale by
# default; add WIDIR_BENCH_FLAGS="-widir.scale=1.0" for full runs).
# This is the quick smoke; bench-json below is the measured run.
bench:
	$(GO) test -bench=. -benchtime=1x $(WIDIR_BENCH_FLAGS)

# Measured perf record (DESIGN.md §14, EXPERIMENTS.md): run the
# simulator-performance benchmarks at a fixed -benchtime/-count and
# parse the output into BENCH_<date>.json via cmd/widir-bench. The
# date is injected here because the tool itself never reads the clock
# (walltime determinism lint).
PERF_BENCH = BenchmarkMachineCycle$$|BenchmarkMachineCycleTracingOff|BenchmarkSimFastForward
BENCH_DATE = $(shell date +%F)
bench-json:
	$(GO) test ./internal/machine -run '^$$' -bench '$(PERF_BENCH)' \
	    -benchtime 1s -count 3 -benchmem \
	    | $(GO) run ./cmd/widir-bench -date $(BENCH_DATE) -out BENCH_$(BENCH_DATE).json
	@echo wrote BENCH_$(BENCH_DATE).json

# Regression gate: rerun the measured benchmarks and compare against
# the checked-in baseline record. Fails on >15% ns/op regression or
# any allocs/op increase. CI runs this on every push.
BENCH_BASELINE = BENCH_2026-08-08.json
bench-gate:
	$(GO) test ./internal/machine -run '^$$' -bench '$(PERF_BENCH)' \
	    -benchtime 1s -count 3 -benchmem \
	    | $(GO) run ./cmd/widir-bench -date $(BENCH_DATE) -out bench-current.json \
	          -compare $(BENCH_BASELINE)

# Simulation-farm self-test (DESIGN.md §16): boot widir-serve against
# a throwaway cache dir, run a tiny sweep, restart over the same dir,
# and verify the repeat sweep is served entirely from the disk cache
# (zero re-simulations) with byte-identical results.
serve-smoke:
	$(GO) run ./cmd/widir-serve -smoke

# Multi-node fault-tolerance self-test (DESIGN.md §17): boot a 3-node
# cluster as real subprocesses, run a sweep, SIGKILL one node mid-sweep,
# restart it over the same cache dir, and require (a) the queue journal
# to replay the accepted runs so the job completes under its original
# id, and (b) reruns of both sweeps to finish with ZERO new simulations
# anywhere in the cluster, byte-identical to the first pass.
serve-cluster-smoke:
	$(GO) run ./cmd/widir-serve -cluster-smoke

# Drop the local farm cache (widir-serve's default -cache location).
clean-cache:
	rm -rf widir-cache

check: build vet lint model vet-model mcheck test race serve-smoke serve-cluster-smoke
