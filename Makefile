# Developer entry points for the WiDir reproduction. `make check` is
# the pre-commit gate: build + vet + full test suite + race on the
# concurrency-bearing packages.

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner fans simulations across goroutines and the
# machine package owns the results it publishes through it; these are
# the packages where a data race could hide.
race:
	$(GO) test -race ./internal/exp/ ./internal/machine/

vet:
	$(GO) vet ./...

# One pass over every evaluation benchmark (reduced workload scale by
# default; add WIDIR_BENCH_FLAGS="-widir.scale=1.0" for full runs).
bench:
	$(GO) test -bench=. -benchtime=1x $(WIDIR_BENCH_FLAGS)

check: build vet test race
