# Developer entry points for the WiDir reproduction. `make check` is
# the pre-commit gate: build + vet + determinism lint + protocol-model
# conformance + full test suite + race on the concurrency-bearing
# packages.

GO ?= go

.PHONY: build test race vet lint model bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner fans simulations across goroutines, the
# machine package owns the results it publishes through it, and the
# mesh, wireless and fault packages carry the shared state those
# parallel runs tick; these are the packages where a data race could
# hide.
race:
	$(GO) test -race ./internal/exp/ ./internal/machine/ ./internal/mesh/ ./internal/wireless/ ./internal/fault/

vet:
	$(GO) vet ./...

# Static determinism audit (DESIGN.md §10): mapiter, walltime,
# globalrand, floatorder, gonosync over the whole module.
lint:
	$(GO) run ./cmd/widir-lint ./...

# Protocol-model conformance (DESIGN.md §13): extract the dir and l1
# FSMs from internal/coherence and diff against the checked-in spec.
model:
	$(GO) run ./cmd/widir-model -check

# One pass over every evaluation benchmark (reduced workload scale by
# default; add WIDIR_BENCH_FLAGS="-widir.scale=1.0" for full runs).
bench:
	$(GO) test -bench=. -benchtime=1x $(WIDIR_BENCH_FLAGS)

check: build vet lint model test race
