package core

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/coherence"
)

func cacheConfig() cache.Config {
	return cache.Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2}
}

// The façade must stay aligned with the protocol package it re-exports.
func TestFacadeAliases(t *testing.T) {
	if Baseline != coherence.Baseline || WiDir != coherence.WiDir {
		t.Fatal("protocol constants diverged")
	}
	var p Protocol = WiDir
	if p.String() != "WiDir" {
		t.Fatal("alias lost methods")
	}
}

// The constructors must build working controllers (a nil Env is fine
// until a message is handled; construction validates configuration).
func TestFacadeConstructors(t *testing.T) {
	l1 := NewL1(3, L1Config{Cache: cacheConfig(), Protocol: WiDir}, nil)
	if l1.ID() != 3 {
		t.Fatal("L1 constructor broken")
	}
	h := NewHome(5, HomeConfig{Protocol: WiDir}, nil)
	if h.ID() != 5 {
		t.Fatal("Home constructor broken")
	}
}
