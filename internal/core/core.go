// Package core is the entry point to the paper's primary contribution:
// the WiDir cache coherence protocol. The protocol state machines live
// in repro/internal/coherence — one package shared by the private-cache
// (L1) controller and the home directory controller, because the two
// halves exchange a common message vocabulary — and this package
// re-exports the protocol-level API under the name the repository
// layout advertises.
//
// WiDir in one paragraph: a conventional invalidation-based MESI
// directory protocol (Dir_3B limited pointers + broadcast bit) is
// augmented with one additional stable state, Wireless Shared (W).
// When a line's sharer count exceeds MaxWiredSharers, the directory
// broadcasts BrWirUpgr on an on-chip wireless channel and the line's
// coherence moves to wireless operation: writes broadcast fine-grain
// word updates (WirUpd) that every sharer and the home LLC slice merge,
// and reads hit locally. Sharers that stop touching the line decay out
// via a per-line UpdateCount and notify the directory (PutW); when the
// count falls back to MaxWiredSharers the directory broadcasts WirDwgr,
// collects the survivors' identities over the wired mesh, and the line
// returns to the wired Shared state. Two wireless-protocol primitives
// make the transitions safe: Selective Data-Channel Jamming (the
// directory force-collides transmissions for a line it is operating on)
// and the Tone-Channel Acknowledgment (a global all-nodes-done barrier
// on a dedicated tone channel).
package core

import "repro/internal/coherence"

// Protocol selects Baseline (wired MESI Dir_3B) or WiDir.
type Protocol = coherence.Protocol

// The two protocols under evaluation.
const (
	Baseline = coherence.Baseline
	WiDir    = coherence.WiDir
)

// The two protocol controllers: one per node's private cache, one per
// node's LLC/directory slice.
type (
	L1Ctrl   = coherence.L1Ctrl
	HomeCtrl = coherence.HomeCtrl
)

// Configuration for the two controllers.
type (
	L1Config   = coherence.L1Config
	HomeConfig = coherence.HomeConfig
)

// Env is the machine environment the controllers act in (time, wired
// mesh, wireless channel, address mapping).
type Env = coherence.Env

// NewL1 builds a private-cache controller.
func NewL1(id int, cfg L1Config, env Env) *L1Ctrl { return coherence.NewL1(id, cfg, env) }

// NewHome builds a directory/LLC-slice controller.
func NewHome(id int, cfg HomeConfig, env Env) *HomeCtrl { return coherence.NewHome(id, cfg, env) }
