package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// SwitchCases flags a switch over a module-defined enum type whose case
// arms neither cover every member nor provide a default clause. The
// protocol state machines in internal/coherence dispatch on enums
// (DirState, MsgType, cache.State, transaction kinds); a member added
// without extending every dispatch site silently falls through to
// whatever code follows the switch, which for a coherence controller
// means a dropped message rather than a loud protocol error. Sites that
// deliberately handle a subset either add an explicit default (even an
// empty one documents the intent) or carry a //lint:deterministic
// justification.
var SwitchCases = &Analyzer{
	Name: "switchcases",
	Doc:  "switch over an enum type missing members and lacking a default",
	Run:  runSwitchCases,
}

func runSwitchCases(p *Package) []Finding {
	moduleRoot := p.Path
	if i := strings.Index(moduleRoot, "/"); i >= 0 {
		moduleRoot = moduleRoot[:i]
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := p.Info.TypeOf(sw.Tag)
			members := enumMembersOf(t, moduleRoot)
			if len(members) < 2 {
				return true
			}
			covered := map[string]bool{} // by constant value, aliases collapse
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause: the subset is deliberate
				}
				for _, e := range cc.List {
					tv, ok := p.Info.Types[e]
					if !ok || tv.Value == nil {
						return true // non-constant arm: cannot reason
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			var missing []string
			for _, m := range members {
				if !covered[m.val] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				out = append(out, Finding{
					Rule: "switchcases",
					Pos:  p.Fset.Position(sw.Pos()),
					Message: fmt.Sprintf(
						"switch over %s has no default and misses %s; add the arm, a default, or justify with %s",
						types.TypeString(t, func(p *types.Package) string { return p.Name() }),
						strings.Join(missing, ", "), Justification),
				})
			}
			return true
		})
	}
	return out
}

// enumMember is one named constant of an enum type, keyed for coverage
// by its exact constant value so aliases count once.
type enumMember struct {
	name  string
	val   string
	order int64
}

// enumMembersOf enumerates the package-scope constants declared with
// exactly the tag's named type, when that type is an integer type
// defined inside this module (stdlib and third-party enums are not
// ours to keep exhaustive). Members are returned in declaration value
// order with aliases deduplicated; fewer than two members means the
// type is not enum-like.
func enumMembersOf(t types.Type, moduleRoot string) []enumMember {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	if path != moduleRoot && !strings.HasPrefix(path, moduleRoot+"/") {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	seen := map[string]bool{}
	var members []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if seen[v] {
			continue
		}
		seen[v] = true
		ord, _ := constant.Int64Val(c.Val())
		members = append(members, enumMember{name: name, val: v, order: ord})
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].order != members[j].order {
			return members[i].order < members[j].order
		}
		return members[i].name < members[j].name
	})
	return members
}
