package analysis

import "testing"

func TestGlobalMutUnregistered(t *testing.T) {
	p := fixture(t, "repro/internal/wireless", `package wireless

var retries int

var _ interface{} = retries // blank assertions are ignored

func bump() { retries++ }
`)
	want(t, GlobalMut.Run(p), map[int][]string{
		3: {"globalmut"},
	})
}

func TestGlobalMutVetLocalAnnotation(t *testing.T) {
	p := fixture(t, "repro/internal/wireless", `package wireless

//vet:local scratch cleared per cycle
var scratch []int

var onLine int //vet:local also accepted on the declaration line
`)
	want(t, GlobalMut.Run(p), map[int][]string{})
}

func TestGlobalMutLedgerRegistration(t *testing.T) {
	old := LedgerGlobals
	defer func() { LedgerGlobals = old }()
	LedgerGlobals = func(key string) bool {
		return key == "repro/internal/wireless.registered"
	}
	p := fixture(t, "repro/internal/wireless", `package wireless

var registered int

var unregistered int
`)
	want(t, GlobalMut.Run(p), map[int][]string{
		5: {"globalmut"},
	})
}

func TestGlobalMutScope(t *testing.T) {
	// The service layer sits outside the shared-state contract.
	p := fixture(t, "repro/internal/serve", `package serve

var pool []byte
`)
	want(t, GlobalMut.Run(p), map[int][]string{})
	// xrand is vet-scoped even though it is not a deterministic package.
	p = fixture(t, "repro/internal/xrand", `package xrand

var defaultSeed uint64
`)
	want(t, GlobalMut.Run(p), map[int][]string{
		3: {"globalmut"},
	})
}

func TestTickPureGlobalWrite(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

var total int

//vet:pure
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	total = s
	return s
}
`)
	want(t, TickPure.Run(p), map[int][]string{
		11: {"tickpure"},
	})
}

func TestTickPureParamWrite(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

//vet:pure
func Fill(out []int, v int) {
	out[0] = v
	out = append(out, v)
}
`)
	want(t, TickPure.Run(p), map[int][]string{
		5: {"tickpure"},
		6: {"tickpure"},
	})
}

func TestTickPureReceiverWritesAllowed(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

type H struct {
	cache int
	bins  []int
}

//vet:pure
func (h *H) Total() int {
	h.cache++ // memoization on the receiver is allowed
	h.bins[0] = 1
	local := []int{}
	local = append(local, 1) // locals carry no effect
	_ = local
	return h.cache
}
`)
	want(t, TickPure.Run(p), map[int][]string{})
}

func TestTickPureIgnoresUnannotated(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

var total int

func Sum() { total++ }
`)
	want(t, TickPure.Run(p), map[int][]string{})
}
