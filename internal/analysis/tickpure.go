package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// TickPure: a function annotated `//vet:pure` asserts it writes no
// non-receiver state — the contract the quiescence fast-forward
// (DESIGN.md §14) needs from the stats/describe/fingerprint paths it
// calls while deciding how far to skip. This rule checks the function
// body directly: writes to package-level variables and writes through
// non-receiver parameters are findings. (Interprocedural leaks —
// an annotated function calling something impure — are caught by
// `widir-vet -check`, which verifies the same annotation over the
// whole call closure.)
var TickPure = &Analyzer{
	Name: "tickpure",
	Doc:  "//vet:pure functions may not write non-receiver state",
	Run: func(p *Package) []Finding {
		var out []Finding
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasPureMarker(fd) {
					continue
				}
				out = append(out, checkPureBody(p, fd)...)
			}
		}
		return out
	},
}

func hasPureMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//vet:pure" {
			return true
		}
	}
	return false
}

func checkPureBody(p *Package, fd *ast.FuncDecl) []Finding {
	var recv types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			for _, name := range fld.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	var out []Finding
	// container marks writes that go through a reference (append/copy/
	// delete on the argument, or any index/deref peel): rebinding a
	// parameter is fine, but writing through one is caller state.
	flagWrite := func(e ast.Expr, container bool) {
		peeled := container
	peel:
		for {
			switch t := e.(type) {
			case *ast.ParenExpr:
				e = t.X
			case *ast.IndexExpr:
				e, peeled = t.X, true
			case *ast.IndexListExpr:
				e, peeled = t.X, true
			case *ast.StarExpr:
				e, peeled = t.X, true
			default:
				break peel
			}
		}
		switch t := e.(type) {
		case *ast.SelectorExpr:
			if pkgOf(p.Info, t.X) != "" {
				if _, ok := p.Info.Uses[t.Sel].(*types.Var); ok {
					out = append(out, Finding{
						Rule: "tickpure", Pos: p.Fset.Position(t.Sel.Pos()),
						Message: fmt.Sprintf("%s is //vet:pure but writes package-level var %s", fd.Name.Name, t.Sel.Name),
					})
				}
				return
			}
			root := rootIdentObj(p, t.X)
			if root == nil || root == recv {
				return
			}
			if params[root] {
				out = append(out, Finding{
					Rule: "tickpure", Pos: p.Fset.Position(t.Sel.Pos()),
					Message: fmt.Sprintf("%s is //vet:pure but writes caller state through parameter %s", fd.Name.Name, root.Name()),
				})
			}
		case *ast.Ident:
			obj := p.Info.Uses[t]
			if obj == nil {
				obj = p.Info.Defs[t]
			}
			if obj == nil {
				return
			}
			if obj.Parent() == p.Types.Scope() {
				out = append(out, Finding{
					Rule: "tickpure", Pos: p.Fset.Position(t.Pos()),
					Message: fmt.Sprintf("%s is //vet:pure but writes package-level var %s", fd.Name.Name, t.Name),
				})
				return
			}
			if peeled && params[obj] && obj != recv {
				out = append(out, Finding{
					Rule: "tickpure", Pos: p.Fset.Position(t.Pos()),
					Message: fmt.Sprintf("%s is //vet:pure but writes caller state through parameter %s", fd.Name.Name, obj.Name()),
				})
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				flagWrite(lhs, false)
			}
		case *ast.IncDecStmt:
			flagWrite(t.X, false)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok {
				if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
					switch id.Name {
					case "append", "copy", "delete":
						if len(t.Args) > 0 {
							flagWrite(t.Args[0], true)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// rootIdentObj walks an access path to its base identifier's object.
func rootIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			if obj := p.Info.Uses[t]; obj != nil {
				return obj
			}
			return p.Info.Defs[t]
		default:
			return nil
		}
	}
}
