// Package analysis is the simulator's static determinism auditor. It
// implements a small, stdlib-only analysis engine (go/parser + go/types
// — no external dependencies) plus the five rules that make the
// repository's determinism contract machine-checkable:
//
//	mapiter     — no range over a map in the deterministic sim packages
//	walltime    — no time.Now/time.Since outside cmd/ progress reporting
//	globalrand  — no math/rand global-source functions anywhere
//	floatorder  — no float accumulation over map- or channel-ordered data
//	gonosync    — no go statements outside internal/exp's runner
//	switchcases — no enum switch missing members without a default
//	protopanic  — no bare panic in internal/coherence (use ProtocolError)
//	globalmut   — no unregistered mutable package-level state in sim
//	              packages (ledger.widirvet or //vet:local, DESIGN.md §18)
//	tickpure    — //vet:pure functions may not write non-receiver state
//
// The cmd/widir-lint driver runs every analyzer over ./... and exits
// nonzero on any finding, so `make check` and CI gate on the contract.
// A site that is deterministic for reasons the analyzers cannot prove
// (for example a map scan whose result is order-independent) carries a
// `//lint:deterministic <why>` comment on the flagged line or the line
// above it; DESIGN.md §10 documents when the escape hatch is
// acceptable. The engine keeps the hatch honest: a justification
// comment that suppresses nothing is reported as "staleignore", so an
// escape cannot silently outlive its reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string         // rule ID, e.g. "mapiter"
	Pos     token.Position // file:line:col of the offending node
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Package is one loaded, type-checked package ready for analysis.
// Type-check errors do not abort loading: Info is filled for whatever
// resolved, and analyzers degrade to skipping nodes they cannot type.
type Package struct {
	Path  string // import path, e.g. "repro/internal/wireless"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check problems (for -debug output).
	TypeErrors []error
}

// Analyzer is one named rule. Run inspects the package and returns raw
// findings; the engine applies //lint:deterministic suppression.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Analyzers is the full rule set in reporting order.
var Analyzers = []*Analyzer{
	MapIter,
	WallTime,
	GlobalRand,
	FloatOrder,
	GoNoSync,
	SwitchCases,
	ProtoPanic,
	GlobalMut,
	TickPure,
}

// Justification is the escape-hatch comment marker. A finding is
// suppressed when a comment beginning with this marker sits on the
// finding's line or the line immediately above it.
const Justification = "//lint:deterministic"

// RunAll applies every analyzer to the package and returns the
// surviving findings sorted by position. A //lint:deterministic
// comment that suppressed nothing is itself reported (rule
// "staleignore"): an escape hatch whose justification no longer
// applies must be deleted, not left to mask the next real finding on
// its line.
func RunAll(p *Package) []Finding {
	var out []Finding
	justified := justifiedLines(p)
	used := map[lineKey]bool{}
	for _, a := range Analyzers {
		for _, f := range a.Run(p) {
			same := lineKey{f.Pos.Filename, f.Pos.Line}
			above := lineKey{f.Pos.Filename, f.Pos.Line - 1}
			if _, ok := justified[same]; ok {
				used[same] = true
				continue
			}
			if _, ok := justified[above]; ok {
				used[above] = true
				continue
			}
			out = append(out, f)
		}
	}
	for k, pos := range justified {
		if !used[k] {
			out = append(out, Finding{
				Rule: "staleignore",
				Pos:  pos,
				Message: fmt.Sprintf(
					"stale %s comment: no analyzer flags this line or the one below; delete the suppression",
					Justification),
			})
		}
	}
	SortFindings(out)
	return out
}

type lineKey struct {
	file string
	line int
}

// justifiedLines collects the lines carrying a //lint:deterministic
// comment, per file, mapped to the comment's own position so stale
// suppressions can be reported where they sit.
func justifiedLines(p *Package) map[lineKey]token.Position {
	out := map[lineKey]token.Position{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, Justification) {
					pos := p.Fset.Position(c.Pos())
					out[lineKey{pos.Filename, pos.Line}] = pos
				}
			}
		}
	}
	return out
}

// deterministicPkgs are the sim packages under the full determinism
// contract: their cycle-by-cycle behaviour and emitted statistics must
// be bit-identical across runs of the same seed.
var deterministicPkgs = []string{
	"engine", "machine", "coherence", "mesh", "wireless",
	"cache", "stats", "energy", "workload", "obs", "fault", "cpu",
}

// IsDeterministicPackage reports whether the import path names one of
// the sim packages under the mapiter/floatorder contract.
func IsDeterministicPackage(path string) bool {
	for _, p := range deterministicPkgs {
		if strings.HasSuffix(path, "internal/"+p) {
			return true
		}
	}
	return false
}

// IsCmdPackage reports whether the import path is a command under
// cmd/ — the only place wall-clock progress reporting is allowed.
func IsCmdPackage(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// IsServicePackage reports whether the import path is the simulation
// farm's service layer: internal/serve, the inter-node federation
// client internal/cluster, and the command front-ends widir-serve and
// widir-client. The service sits OUTSIDE the determinism contract on
// purpose: it hosts HTTP handlers, worker pools and wall-clock
// concerns (Retry-After, circuit-breaker cooldowns, backoff timers)
// around the deterministic simulator, and never reaches into a running
// simulation. Simulations it launches still execute single-threaded
// through the exp runner, so results stay bit-identical — DESIGN.md
// §16 and §17 record the boundary.
func IsServicePackage(path string) bool {
	return strings.HasSuffix(path, "internal/serve") ||
		strings.HasSuffix(path, "internal/cluster") ||
		strings.HasSuffix(path, "cmd/widir-serve") ||
		strings.HasSuffix(path, "cmd/widir-client")
}

// IsGoroutineLicensed reports whether the package may spawn goroutines:
// internal/exp owns the one sanctioned simulation worker pool, and the
// service layer (internal/serve, internal/cluster and the serve/client
// commands) runs HTTP servers, job workers and hedged peer requests
// around it. Everything else — the simulator proper — is
// single-threaded by contract.
func IsGoroutineLicensed(path string) bool {
	return strings.HasSuffix(path, "internal/exp") || IsServicePackage(path)
}

// pkgOf resolves the package an identifier qualifies, for selector
// expressions like time.Now: it returns the imported package path when
// the expression's X is a package name, else "".
func pkgOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isFloat reports whether t is a floating-point type (or named type
// with a floating-point underlying type).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
