package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// LedgerGlobals reports whether a package-level variable (key
// "<pkgpath>.<name>") is registered in the shared-state ledger
// (internal/vet/ledger.widirvet). Drivers that know where the ledger
// lives (cmd/widir-lint, cmd/widir-vet) wire it before running the
// analyzers; nil means "no ledger available" and every unannotated
// global in a sim package is a finding.
var LedgerGlobals func(key string) bool

// GlobalMut: a sim package may not declare mutable package-level state
// the shared-state certificate does not know about. Every package-level
// var in a vet-scoped package must either be registered in the ledger
// or carry a `//vet:local <why>` annotation on its line or the line
// above — pools, counters and xrand streams hidden in globals are
// exactly the state that breaks mesh-domain partitioning (DESIGN.md
// §18). Blank assertions (`var _ Iface = ...`) are ignored.
var GlobalMut = &Analyzer{
	Name: "globalmut",
	Doc:  "no unregistered mutable package-level state in sim packages",
	Run: func(p *Package) []Finding {
		if !IsVetScoped(p.Path) {
			return nil
		}
		annotated := vetLocalLines(p)
		var out []Finding
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						obj := p.Info.Defs[name]
						if obj == nil || obj.Parent() != p.Types.Scope() {
							continue
						}
						pos := p.Fset.Position(name.Pos())
						if hasLineOrAbove(annotated, pos) {
							continue
						}
						key := p.Path + "." + name.Name
						if LedgerGlobals != nil && LedgerGlobals(key) {
							continue
						}
						out = append(out, Finding{
							Rule: "globalmut", Pos: pos,
							Message: fmt.Sprintf(
								"package-level var %s is unregistered shared state; register it in the shared-state ledger (widir-vet -update) or annotate the declaration `//vet:local <why>`",
								name.Name),
						})
					}
				}
			}
		}
		return out
	},
}

// vetScopedExtra are sim-adjacent packages outside the determinism
// list that still hold tick-path state: the seeded RNG streams, the
// address-space mapper, and the facade package re-exporting the
// controllers.
var vetScopedExtra = []string{"xrand", "addrspace", "core"}

// IsVetScoped reports whether the import path is under the
// shared-state (widir-vet) contract: the deterministic sim packages
// plus xrand/addrspace/core.
func IsVetScoped(path string) bool {
	if IsDeterministicPackage(path) {
		return true
	}
	for _, p := range vetScopedExtra {
		if strings.HasSuffix(path, "internal/"+p) {
			return true
		}
	}
	return false
}

// vetLocalLines collects the (file, line) positions of //vet:local
// comments.
func vetLocalLines(p *Package) map[lineKey]bool {
	out := map[lineKey]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//vet:local ") {
					pos := p.Fset.Position(c.Pos())
					out[lineKey{pos.Filename, pos.Line}] = true
				}
			}
		}
	}
	return out
}

func hasLineOrAbove(lines map[lineKey]bool, pos token.Position) bool {
	return lines[lineKey{pos.Filename, pos.Line}] || lines[lineKey{pos.Filename, pos.Line - 1}]
}
