// Shared findings output for the three static-analysis CLIs
// (widir-lint, widir-model, widir-vet): one text renderer and one JSON
// encoder, so tooling that consumes findings (CI problem matchers,
// editors, the artifact uploads) sees a single format regardless of
// which tool produced them.
//
// The CLIs also share one exit-code convention:
//
//	0 — clean
//	1 — findings reported
//	2 — usage or load error
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// JSONFinding is the stable wire form of one finding.
type JSONFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// SortFindings orders findings by file, line, column, then rule — the
// canonical reporting order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Relativize rewrites finding filenames relative to dir when they sit
// beneath it, for stable output independent of the checkout location.
func Relativize(dir string, fs []Finding) {
	for i := range fs {
		if rel, err := filepath.Rel(dir, fs[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) &&
			rel != "" && rel[0] != '.' {
			fs[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// WriteFindings renders findings to w: one "file:line:col: [rule]
// message" line each, or — with jsonOut — a JSON array of JSONFinding
// (an empty slice encodes as [], never null).
func WriteFindings(w io.Writer, fs []Finding, jsonOut bool) error {
	if !jsonOut {
		for _, f := range fs {
			if _, err := fmt.Fprintln(w, f); err != nil {
				return err
			}
		}
		return nil
	}
	out := make([]JSONFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, JSONFinding{
			Rule: f.Rule, File: f.Pos.Filename, Line: f.Pos.Line,
			Col: f.Pos.Column, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
