package analysis

import "testing"

// The service layer (internal/serve, cmd/widir-serve) legitimately
// hosts goroutines and reads the wall clock; the determinism lint must
// leave it alone WITHOUT loosening the contract anywhere else. These
// fixtures pin the boundary from both sides.

// TestGoNoSyncServeLicensed: the serve package may spawn its HTTP and
// worker goroutines.
func TestGoNoSyncServeLicensed(t *testing.T) {
	p := fixture(t, "repro/internal/serve", `package serve

func workers(n int, fn func()) {
	for i := 0; i < n; i++ {
		go fn()
	}
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestGoNoSyncServeCmdLicensed: the widir-serve front-end runs its
// http.Server on a goroutine while the main goroutine waits for
// signals.
func TestGoNoSyncServeCmdLicensed(t *testing.T) {
	p := fixture(t, "repro/cmd/widir-serve", `package main

func serveAsync(fn func()) {
	go fn()
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestGoNoSyncClusterLicensed: the federation layer runs hedged peer
// fetches and single-flight joins on goroutines.
func TestGoNoSyncClusterLicensed(t *testing.T) {
	p := fixture(t, "repro/internal/cluster", `package cluster

func fanout(peers []string, fn func(string)) {
	for _, p := range peers {
		go fn(p)
	}
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestGoNoSyncClientCmdLicensed: widir-client hedges entry reads
// across replicas on goroutines.
func TestGoNoSyncClientCmdLicensed(t *testing.T) {
	p := fixture(t, "repro/cmd/widir-client", `package main

func hedge(fn func()) {
	go fn()
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestGoNoSyncCoherenceStillFails: a goroutine smuggled into the
// protocol controllers — the classic "just parallelize the directory"
// mistake — must still be flagged. The serve exemption is a package
// boundary, not a loophole.
func TestGoNoSyncCoherenceStillFails(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

func handleAsync(fn func()) {
	go fn()
}
`)
	want(t, RunAll(p), map[int][]string{
		4: {"gonosync"},
	})
}

// TestWallTimeServeLicensed: Retry-After arithmetic and job
// timestamps in the service layer are fine.
func TestWallTimeServeLicensed(t *testing.T) {
	p := fixture(t, "repro/internal/serve", `package serve

import "time"

func stamp() time.Time { return time.Now() }
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestWallTimeClusterLicensed: circuit-breaker cooldowns and backoff
// timers in the federation layer are wall-clock by nature.
func TestWallTimeClusterLicensed(t *testing.T) {
	p := fixture(t, "repro/internal/cluster", `package cluster

import "time"

func cooldownOver(openedAt time.Time, d time.Duration) bool {
	return time.Since(openedAt) >= d
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestWallTimeExpStillCovered: the experiment layer computes results,
// so the wall clock must not reach it — the serve/cluster exemption
// does not extend to internal/exp.
func TestWallTimeExpStillCovered(t *testing.T) {
	p := fixture(t, "repro/internal/exp", `package exp

import "time"

func stamp() time.Time { return time.Now() }
`)
	want(t, RunAll(p), map[int][]string{
		5: {"walltime"},
	})
}

// TestWallTimeMachineStillCovered: the simulator proper stays under
// the walltime rule.
func TestWallTimeMachineStillCovered(t *testing.T) {
	p := fixture(t, "repro/internal/machine", `package machine

import "time"

func now() int64 { return time.Now().UnixNano() }
`)
	want(t, RunAll(p), map[int][]string{
		5: {"walltime"},
	})
}
