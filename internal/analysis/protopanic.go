package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ProtoPanic flags bare panic(...) calls inside internal/coherence.
// Protocol failures there must be reported as typed
// coherence.ProtocolError values via Env.ReportProtocolError (PR 4):
// the machine latches the error, fails the run with a full state dump,
// and keeps the process debuggable; a panic tears down the whole
// simulator — and in the exp worker pool, every concurrent run with
// it. The //lint:deterministic escape hatch applies as everywhere
// else, for the rare panic that cannot be a protocol error (invalid
// construction-time configuration, compiler-unreachable switch arms).
var ProtoPanic = &Analyzer{
	Name: "protopanic",
	Doc:  "bare panic in internal/coherence; report a typed ProtocolError via Env.ReportProtocolError",
	Run:  runProtoPanic,
}

// IsProtocolPackage reports whether the import path is the coherence
// protocol package under the typed-ProtocolError contract.
func IsProtocolPackage(path string) bool {
	return strings.HasSuffix(path, "internal/coherence")
}

func runProtoPanic(p *Package) []Finding {
	if !IsProtocolPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Only the predeclared builtin counts; a local function
			// named panic (however ill-advised) is not this rule's
			// business.
			if obj := p.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			out = append(out, Finding{
				Rule: "protopanic",
				Pos:  p.Fset.Position(call.Pos()),
				Message: "bare panic in internal/coherence: protocol failures must be typed " +
					"coherence.ProtocolError reported via Env.ReportProtocolError so the run fails debuggably",
			})
			return true
		})
	}
	return out
}
