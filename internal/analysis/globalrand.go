package analysis

import (
	"fmt"
	"go/ast"
)

// GlobalRand flags calls to math/rand's global-source functions (and
// their math/rand/v2 equivalents) anywhere in the module. The global
// source is shared process state: concurrent experiment workers would
// interleave draws nondeterministically, and a seed set in one place
// silently perturbs every other consumer. All simulator randomness
// flows through internal/xrand streams derived from the run's seed.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand global-source function",
	Run:  runGlobalRand,
}

// globalRandFuncs are the package-level functions that draw from (or
// mutate) the shared global source. Constructors like rand.New and
// rand.NewSource are not listed: they build explicit sources — still
// discouraged in favour of xrand, but not global state.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true, "N": true,
}

func runGlobalRand(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := pkgOf(p.Info, sel.X)
			if (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[sel.Sel.Name] {
				out = append(out, Finding{
					Rule: "globalrand",
					Pos:  p.Fset.Position(sel.Pos()),
					Message: fmt.Sprintf(
						"rand.%s draws from the shared global source; use a seeded internal/xrand stream",
						sel.Sel.Name),
				})
			}
			return true
		})
	}
	return out
}
