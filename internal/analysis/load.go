package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks module packages from source, using
// only the standard library: module-local imports resolve recursively
// inside the module directory, everything else (the standard library)
// goes through go/importer's source compiler. One Loader caches every
// package it touches, so a whole-module lint pays the stdlib
// type-checking cost once.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset  *token.FileSet
	std   types.ImporterFrom
	types map[string]*types.Package
	pkgs  map[string]*Package
}

// NewLoader returns a loader rooted at the module directory, reading
// the module path from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		types:      map[string]*types.Package{},
		pkgs:       map[string]*Package{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Fset exposes the loader's file set (positions in Findings refer to it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer over the module + standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.types[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(filepath.Join(l.ModuleDir, strings.TrimPrefix(path, l.ModulePath)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir (non-test files
// only). Soft type errors are collected on the Package rather than
// failing the load, so analysis degrades gracefully.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", abs)
	}
	return l.check(path, abs, files, true)
}

// LoadSource type-checks a single in-memory file as the package at the
// given import path; fixture tests use it to feed analyzers synthetic
// positive and negative cases.
func (l *Loader) LoadSource(path, filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check(path, "", []*ast.File{f}, false)
}

func (l *Loader) check(path, dir string, files []*ast.File, cache bool) (*Package, error) {
	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
			// Selections resolve x.f through embedded-struct promotion
			// (the selection's Index() spells out the embedding path)
			// and method-value receivers; Instances map each use of a
			// generic function or type to its concrete type arguments.
			// Both are required by interprocedural consumers
			// (internal/vet): without them a call through a
			// lineTable[V] instantiation or a promoted method resolves
			// only to the declaration site, not per-instantiation.
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Instances:  map[*ast.Ident]types.Instance{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, p.Info)
	p.Types = tpkg
	if cache {
		l.types[path] = tpkg
		l.pkgs[path] = p
	}
	return p, nil
}

// importPath maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPath(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// ExpandPatterns resolves go-style package patterns ("./...",
// "dir/...", plain directories) relative to base into the sorted list
// of directories that contain non-test Go source. Hidden directories,
// testdata, and vendor trees are skipped.
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			if hasGoSource(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("no Go source in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoSource(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
