package analysis

import (
	"strings"
	"testing"
)

// sharedLoader is reused across fixture tests so the standard-library
// source type-checking cost (time, math/rand, sort) is paid once.
var sharedLoader *Loader

func fixture(t *testing.T, path, src string) *Package {
	t.Helper()
	if sharedLoader == nil {
		root, err := FindModuleRoot(".")
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	p, err := sharedLoader.LoadSource(path, "fixture.go", src)
	if err != nil {
		t.Fatalf("fixture did not parse: %v", err)
	}
	return p
}

// want asserts the findings' rule IDs and line numbers, in order.
func want(t *testing.T, got []Finding, rules map[int][]string) {
	t.Helper()
	found := map[int][]string{}
	for _, f := range got {
		found[f.Pos.Line] = append(found[f.Pos.Line], f.Rule)
	}
	for line, rs := range rules {
		if len(found[line]) != len(rs) {
			t.Errorf("line %d: want rules %v, got %v", line, rs, found[line])
			continue
		}
		for i, r := range rs {
			if found[line][i] != r {
				t.Errorf("line %d: want rules %v, got %v", line, rs, found[line])
			}
		}
	}
	for line, rs := range found {
		if _, ok := rules[line]; !ok {
			t.Errorf("unexpected finding(s) at line %d: %v", line, rs)
		}
	}
}

// TestMapIterAndFloatOrderBreakdownBug reproduces the PR 1
// stats.Breakdown regression: Total summed float64 values in map
// iteration order, so EnergyPJ varied in the last ulp between runs of
// the same seed. Both mapiter and floatorder must fire on the range.
func TestMapIterAndFloatOrderBreakdownBug(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

type Breakdown struct {
	vals map[string]float64
}

func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b.vals {
		t += v
	}
	return t
}
`)
	want(t, RunAll(p), map[int][]string{
		9:  {"mapiter"},
		10: {"floatorder"},
	})
}

// TestMapIterCleanSortedKeys is the fixed shape of the same code: keys
// collected and sorted first, accumulation over the slice.
func TestMapIterCleanSortedKeys(t *testing.T) {
	p := fixture(t, "repro/internal/stats", `package stats

import "sort"

type Breakdown struct {
	vals map[string]float64
}

func (b *Breakdown) Total() float64 {
	keys := make([]string, 0, len(b.vals))
	for k := range b.vals { //lint:deterministic key collection feeds the sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += b.vals[k]
	}
	return t
}
`)
	want(t, RunAll(p), map[int][]string{})
}

func TestMapIterScopedToSimPackages(t *testing.T) {
	src := `package main

func keys(m map[int]bool) (out []int) {
	for k := range m {
		out = append(out, k)
	}
	return
}
`
	if got := RunAll(fixture(t, "repro/cmd/widir-sweep", src)); len(got) != 0 {
		t.Errorf("cmd package should be out of mapiter scope, got %v", got)
	}
	if got := RunAll(fixture(t, "repro/internal/mesh", src)); len(got) != 1 {
		t.Errorf("sim package should be flagged once, got %v", got)
	}
}

func TestMapIterJustificationSuppresses(t *testing.T) {
	p := fixture(t, "repro/internal/cache", `package cache

// anyBusy is order-independent: it only asks whether any value is set.
func anyBusy(m map[int]bool) bool {
	//lint:deterministic any-of scan; result independent of order
	for _, v := range m {
		if v {
			return true
		}
	}
	return false
}
`)
	want(t, RunAll(p), map[int][]string{})
}

func TestWallTime(t *testing.T) {
	dirty := `package mesh

import "time"

var epoch time.Time

func stamp() float64 {
	epoch = time.Now()
	return time.Since(epoch).Seconds()
}
`
	p := fixture(t, "repro/internal/mesh", dirty)
	want(t, RunAll(p), map[int][]string{
		5: {"globalmut"}, // the fixture's epoch var is itself unregistered shared state
		8: {"walltime"},
		9: {"walltime"},
	})
	// The same source is fine in a cmd/ package (progress reporting).
	if got := RunAll(fixture(t, "repro/cmd/widir-experiments", dirty)); len(got) != 0 {
		t.Errorf("cmd package may read the wall clock, got %v", got)
	}
}

func TestWallTimeCleanDurationArithmetic(t *testing.T) {
	p := fixture(t, "repro/internal/engine", `package engine

import "time"

// Durations as config values are fine; only clock reads are flagged.
const tick = 10 * time.Millisecond

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestWallTimeObsEventStamp pins the obs package into the determinism
// contract: an event stamped from the wall clock instead of the
// simulated cycle counter would make two serial captures of the same
// seed diverge, so walltime must reject it.
func TestWallTimeObsEventStamp(t *testing.T) {
	p := fixture(t, "repro/internal/obs", `package obs

import "time"

type event struct{ Cycle uint64 }

func stamp() event {
	return event{Cycle: uint64(time.Now().UnixNano())}
}
`)
	want(t, RunAll(p), map[int][]string{
		8: {"walltime"},
	})
	if !IsDeterministicPackage("repro/internal/obs") {
		t.Error("internal/obs must be under the determinism contract")
	}
}

func TestGlobalRand(t *testing.T) {
	p := fixture(t, "repro/internal/workload", `package workload

import "math/rand"

func pick(n int) int {
	rand.Seed(42)
	return rand.Intn(n)
}
`)
	want(t, RunAll(p), map[int][]string{
		6: {"globalrand"},
		7: {"globalrand"},
	})
}

func TestGlobalRandCleanExplicitSource(t *testing.T) {
	// Applies module-wide: even cmd/ must not touch the global source,
	// but an explicit seeded source is not global state.
	p := fixture(t, "repro/cmd/widirsim", `package main

import "math/rand"

func pick(n int) int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(n)
}
`)
	want(t, RunAll(p), map[int][]string{})
}

func TestFloatOrderChannelAndRewriteForms(t *testing.T) {
	p := fixture(t, "repro/internal/energy", `package energy

func sum(ch chan float64, m map[int]float64) (a, b float64) {
	for v := range ch {
		a = a + v
	}
	for _, v := range m {
		b -= v
	}
	return a, b
}
`)
	want(t, RunAll(p), map[int][]string{
		5: {"floatorder"},
		7: {"mapiter"},
		8: {"floatorder"},
	})
}

func TestFloatOrderCleanIntegerAndSliceAccumulation(t *testing.T) {
	p := fixture(t, "repro/internal/energy", `package energy

func sum(xs []float64, m map[int]int) (a float64, n int) {
	for _, x := range xs {
		a += x // slice order is deterministic
	}
	//lint:deterministic integer addition is associative; order cannot change the sum
	for _, v := range m {
		n += v
	}
	return a, n
}
`)
	want(t, RunAll(p), map[int][]string{})
}

func TestGoNoSync(t *testing.T) {
	dirty := `package mesh

func fanOut(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}
`
	p := fixture(t, "repro/internal/mesh", dirty)
	want(t, RunAll(p), map[int][]string{
		6: {"gonosync"},
	})
	// internal/exp owns the worker pool and is licensed.
	if got := RunAll(fixture(t, "repro/internal/exp", dirty)); len(got) != 0 {
		t.Errorf("internal/exp may spawn goroutines, got %v", got)
	}
}

func TestFindingString(t *testing.T) {
	p := fixture(t, "repro/internal/mesh", `package mesh

func leak(m map[int]int) {
	for range m {
	}
}
`)
	got := RunAll(p)
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	s := got[0].String()
	if !strings.Contains(s, "fixture.go:4:2") || !strings.Contains(s, "[mapiter]") {
		t.Errorf("finding rendering %q missing position or rule", s)
	}
}

// TestModuleIsClean runs the full rule set over every package of the
// module — the same gate `make lint` applies — locking in the fixes
// this suite's rules demanded (wireless collision bookkeeping,
// MemoryImage dump ordering, directory-eviction tie-breaks, ...).
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint type-checks the stdlib from source; slow")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 15 {
		t.Fatalf("pattern expansion found only %d package dirs: %v", len(dirs), dirs)
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range RunAll(pkg) {
			t.Errorf("%s", f)
		}
	}
}

func TestFaultPackageUnderDeterminismContract(t *testing.T) {
	// The fault injector feeds the machine's cycle loop; a global rand
	// draw there would silently break faulty-run replay.
	if !IsDeterministicPackage("repro/internal/fault") {
		t.Error("internal/fault must be under the determinism contract")
	}
	p := fixture(t, "repro/internal/fault", `package fault

import "math/rand"

func corrupt(ber float64) bool {
	return rand.Float64() < ber
}

func draws(m map[int]float64) (s float64) {
	for _, v := range m {
		s += v
	}
	return s
}
`)
	want(t, RunAll(p), map[int][]string{
		6:  {"globalrand"},
		10: {"mapiter"},
		11: {"floatorder"},
	})
}
