package analysis

import "testing"

// The fast-forward rewrite concentrated the simulator's determinism
// risk in a few hot-loop packages: the machine's horizon computation,
// the engine's timing wheel, the cores' analytic sleep/catch-up, and
// the coherence controllers' pooled, generation-stamped state. These
// tests pin that every one of them sits under the static determinism
// contract and that the two creep modes the rewrite makes tempting —
// wall-clock reads in scheduling code and map iteration over pooled
// protocol state — are still caught there.

func TestHotLoopPackagesUnderDeterminismContract(t *testing.T) {
	for _, p := range []string{
		"repro/internal/engine",    // timing wheel, (cycle, seq) order
		"repro/internal/machine",   // horizon + fastForward
		"repro/internal/cpu",       // sleep/wake, catchUp, computeJump
		"repro/internal/mesh",      // batched hops, NextEvent
		"repro/internal/wireless",  // NextWake/FastForward settlement
		"repro/internal/coherence", // lineTable, pooled gen-stamped entries
	} {
		if !IsDeterministicPackage(p) {
			t.Errorf("%s must be under the determinism contract", p)
		}
	}
}

// TestWallTimeCreepInSchedulingCode: a wall-clock read in the engine
// or the cpu package would couple horizon decisions to host timing —
// the exact failure mode the fast-forward equivalence tests exist to
// exclude. The walltime rule must flag both packages.
func TestWallTimeCreepInSchedulingCode(t *testing.T) {
	for _, path := range []string{"repro/internal/engine", "repro/internal/cpu"} {
		p := fixture(t, path, `package x

import "time"

func horizonSlack() uint64 {
	return uint64(time.Now().UnixNano() & 7)
}
`)
		want(t, RunAll(p), map[int][]string{6: {"walltime"}})
	}
}

// TestMapIterCreepOverPooledState: the struct-of-arrays rewrite
// replaced the controllers' line-keyed maps with deterministic flat
// tables. A map reintroduced next to the pooled state — say, an
// ad-hoc free-list index iterated for the next victim — must still be
// flagged when ranged without a sort.
func TestMapIterCreepOverPooledState(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

type entry struct{ gen uint64 }

func oldest(pool map[uint64]*entry) *entry {
	var best *entry
	for _, e := range pool {
		if best == nil || e.gen < best.gen {
			best = e
		}
	}
	return best
}
`)
	want(t, RunAll(p), map[int][]string{7: {"mapiter"}})
}
