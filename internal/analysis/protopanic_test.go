package analysis

import "testing"

// TestProtoPanic: a bare panic in internal/coherence is flagged; the
// same code outside the protocol package is not; a justified panic is
// suppressed.
func TestProtoPanic(t *testing.T) {
	dirty := `package coherence

type Env interface{ ReportProtocolError(err error) }

type homeCtrl struct{ env Env }

func (h *homeCtrl) process(state int) {
	switch state {
	case 0:
		return
	default:
		panic("unhandled state")
	}
}

func recoverShim() {
	defer func() { recover() }()
	//lint:deterministic construction-time validation with no Env in scope
	panic("config: bad pointer count")
}
`
	p := fixture(t, "repro/internal/coherence", dirty)
	want(t, RunAll(p), map[int][]string{
		12: {"protopanic"},
	})
	// Outside internal/coherence the rule stays silent (the fixture's
	// suppression comment then becomes stale and is reported as such).
	got := RunAll(fixture(t, "repro/internal/mesh", dirty))
	for _, f := range got {
		if f.Rule == "protopanic" {
			t.Errorf("protopanic fired outside internal/coherence: %v", f)
		}
	}
}

// TestProtoPanicIgnoresShadowingFunc: a local function named panic is
// not the builtin.
func TestProtoPanicIgnoresShadowingFunc(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

func panicCount(panic func(string)) {
	panic("not the builtin")
}
`)
	want(t, RunAll(p), map[int][]string{})
}
