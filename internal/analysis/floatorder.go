package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation inside a loop whose
// iteration order is not deterministic: a range over a map (randomized
// per statement) or over a channel (arrival order depends on goroutine
// scheduling). Float addition is non-associative, so the same multiset
// of addends summed in different orders produces totals differing in
// the last ulp — exactly the PR 1 stats.Breakdown.Total bug, where
// EnergyPJ varied between runs of the same seed. Accumulate over a
// sorted key slice (or a fixed reporting order) instead.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "float accumulation over map- or channel-ordered iteration",
	Run:  runFloatOrder,
}

func runFloatOrder(p *Package) []Finding {
	if !IsDeterministicPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Chan:
			default:
				return true
			}
			kind := "map"
			if _, ok := t.Underlying().(*types.Chan); ok {
				kind = "channel"
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 {
					return true
				}
				if !floatAccumulation(p, as) {
					return true
				}
				out = append(out, Finding{
					Rule: "floatorder",
					Pos:  p.Fset.Position(as.Pos()),
					Message: fmt.Sprintf(
						"float accumulation in %s-ordered iteration: addition is non-associative, so the total varies between runs; accumulate over sorted keys",
						kind),
				})
				return true
			})
			return true
		})
	}
	return out
}

// floatAccumulation reports whether the assignment accumulates into a
// floating-point location: `x op= v` with arithmetic op, or
// `x = x op v` / `x = v op x`.
func floatAccumulation(p *Package, as *ast.AssignStmt) bool {
	lhs := as.Lhs[0]
	if !isFloat(p.Info.TypeOf(lhs)) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return false
		}
		return sameExpr(p, lhs, bin.X) || sameExpr(p, lhs, bin.Y)
	}
	return false
}

// sameExpr reports whether two expressions refer to the same location.
// Identifiers compare by resolved object; other shapes (selectors,
// index expressions) fall back to comparing their printed form, which
// is good enough for the accumulator-on-both-sides pattern.
func sameExpr(p *Package, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if aok && bok {
		ao := p.Info.ObjectOf(ai)
		return ao != nil && ao == p.Info.ObjectOf(bi)
	}
	return exprString(p.Fset, a) == exprString(p.Fset, b)
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
