package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapIter flags `range` over a map in the deterministic sim packages.
// Go randomizes map iteration order per range statement, so any map
// walk whose effects can reach timing, statistics, or dumps makes runs
// of the same seed diverge. Sites must collect and sort the keys first
// (the remaining range is then over a slice and passes), or — when the
// loop's result is provably order-independent, like an any-of scan or a
// selection by a unique key — carry a //lint:deterministic
// justification.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over a map in a deterministic sim package",
	Run:  runMapIter,
}

func runMapIter(p *Package) []Finding {
	if !IsDeterministicPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				out = append(out, Finding{
					Rule: "mapiter",
					Pos:  p.Fset.Position(rs.Pos()),
					Message: fmt.Sprintf(
						"range over %s: map order is randomized; iterate sorted keys or justify with %s",
						types.TypeString(t, func(p *types.Package) string { return p.Name() }), Justification),
				})
			}
			return true
		})
	}
	return out
}
