package analysis

import (
	"strings"
	"testing"
)

// TestSwitchCasesMissingArm models the protocol-dispatch hazard: a new
// enum member added without extending a dispatch switch silently falls
// through. The switch lacking both the arm and a default must be
// flagged; the message names the missing members.
func TestSwitchCasesMissingArm(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

type DirState uint8

const (
	DirInvalid DirState = iota
	DirShared
	DirOwned
	DirWireless
)

func dispatch(s DirState) int {
	switch s {
	case DirInvalid:
		return 0
	case DirShared, DirOwned:
		return 1
	}
	return 2
}
`)
	got := RunAll(p)
	want(t, got, map[int][]string{13: {"switchcases"}})
	if len(got) == 1 && !strings.Contains(got[0].Message, "DirWireless") {
		t.Errorf("finding should name the missing member DirWireless: %s", got[0].Message)
	}
}

// TestSwitchCasesClean covers the three accepted shapes: full member
// coverage, an explicit default documenting a deliberate subset, and a
// switch over a non-module enum (stdlib enums are not ours to keep
// exhaustive).
func TestSwitchCasesClean(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

import "time"

type DirState uint8

const (
	DirInvalid DirState = iota
	DirShared
)

func full(s DirState) int {
	switch s {
	case DirInvalid:
		return 0
	case DirShared:
		return 1
	}
	return 2
}

func subset(s DirState) int {
	switch s {
	case DirShared:
		return 1
	default:
		return 0
	}
}

func stdlib(m time.Month) bool {
	switch m {
	case time.January:
		return true
	}
	return false
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestSwitchCasesAliasCoverage: a member that aliases another value
// (two names, one constant) is covered by either name; the rule keys
// coverage on values, not identifiers.
func TestSwitchCasesAliasCoverage(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindBAlias = KindB
)

func f(k Kind) int {
	switch k {
	case KindA:
		return 0
	case KindBAlias:
		return 1
	}
	return 2
}
`)
	want(t, RunAll(p), map[int][]string{})
}

// TestStaleIgnoreReported: a //lint:deterministic comment on a line no
// analyzer flags is itself a finding, at the comment's position — the
// escape hatch cannot outlive its justification.
func TestStaleIgnoreReported(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

func sum(xs []int) int {
	t := 0
	//lint:deterministic slice iteration was never nondeterministic
	for _, x := range xs {
		t += x
	}
	return t
}
`)
	want(t, RunAll(p), map[int][]string{5: {"staleignore"}})
}

// TestStaleIgnoreUsedSuppressionSurvives: the same comment above a map
// range (which mapiter flags in a deterministic package) is used, so
// neither the mapiter finding nor a staleignore finding appears —
// whether the comment sits on the offending line or the line above.
func TestStaleIgnoreUsedSuppressionSurvives(t *testing.T) {
	p := fixture(t, "repro/internal/coherence", `package coherence

func anyNeg(m map[int]int) bool {
	//lint:deterministic any-of scan is order-independent
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	for _, v := range m { //lint:deterministic any-of scan is order-independent
		if v > 10 {
			return true
		}
	}
	return false
}
`)
	want(t, RunAll(p), map[int][]string{})
}
