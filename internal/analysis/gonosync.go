package analysis

import (
	"go/ast"
)

// GoNoSync flags `go` statements outside the licensed packages. The
// simulator's cycle loop is single-threaded by contract — determinism
// comes from the (cycle, seq) event order, which a stray goroutine
// would race. internal/exp's runner is licensed to fan whole,
// independent simulations across goroutines (results reassembled in
// submission order), and the service layer (internal/serve,
// cmd/widir-serve) is licensed for its HTTP server and job workers,
// which never reach inside a running simulation. Everything else —
// in particular internal/coherence and the rest of the simulator —
// stays goroutine-free.
var GoNoSync = &Analyzer{
	Name: "gonosync",
	Doc:  "go statement outside internal/exp and the serve layer",
	Run:  runGoNoSync,
}

func runGoNoSync(p *Package) []Finding {
	if IsGoroutineLicensed(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				out = append(out, Finding{
					Rule:    "gonosync",
					Pos:     p.Fset.Position(gs.Pos()),
					Message: "go statement outside internal/exp and the serve layer: the sim cycle loop is single-threaded by contract; route parallelism through the exp runner",
				})
			}
			return true
		})
	}
	return out
}
