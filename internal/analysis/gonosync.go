package analysis

import (
	"go/ast"
)

// GoNoSync flags `go` statements outside internal/exp. The simulator's
// cycle loop is single-threaded by contract — determinism comes from
// the (cycle, seq) event order, which a stray goroutine would race.
// internal/exp's runner is the one package licensed to fan simulations
// across goroutines, and it only parallelizes whole, independent runs
// whose results are reassembled in submission order.
var GoNoSync = &Analyzer{
	Name: "gonosync",
	Doc:  "go statement outside internal/exp",
	Run:  runGoNoSync,
}

func runGoNoSync(p *Package) []Finding {
	if IsGoroutineLicensed(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				out = append(out, Finding{
					Rule: "gonosync",
					Pos:  p.Fset.Position(gs.Pos()),
					Message: "go statement outside internal/exp: the sim cycle loop is single-threaded by contract; route parallelism through the exp runner",
				})
			}
			return true
		})
	}
	return out
}
