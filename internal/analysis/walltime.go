package analysis

import (
	"fmt"
	"go/ast"
)

// WallTime flags reads of the wall clock outside cmd/ and the service
// layer. The simulator's notion of time is the cycle counter; a
// time.Now that leaks into sim state, statistics, or control flow
// makes results depend on host scheduling. Progress reporting in the
// cmd/ front-ends and the widir-serve service layer (job timestamps,
// Retry-After arithmetic — internal/serve never touches a running
// simulation) are the legitimate consumers. internal/exp stays
// covered: the experiment layer computes results, so wall time must
// not reach it.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock read (time.Now/time.Since) outside cmd/ and internal/serve",
	Run:  runWallTime,
}

// wallClockFuncs are the time package functions that observe the host
// clock. Duration arithmetic and formatting are fine.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(p *Package) []Finding {
	if IsCmdPackage(p.Path) || IsServicePackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgOf(p.Info, sel.X) == "time" && wallClockFuncs[sel.Sel.Name] {
				out = append(out, Finding{
					Rule: "walltime",
					Pos:  p.Fset.Position(sel.Pos()),
					Message: fmt.Sprintf(
						"time.%s outside cmd/: simulated time is the cycle counter; wall-clock reads belong in cmd/ progress reporting only",
						sel.Sel.Name),
				})
			}
			return true
		})
	}
	return out
}
