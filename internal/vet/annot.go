// Annotation grammar for the //vet: comment namespace.
//
//	//vet:local <why>   — on (or directly above) a package-level var
//	                      declaration or a struct field: the state is
//	                      domain-safe for the reason given and exempt
//	                      from ledger registration.
//	//vet:pure          — in a function's doc comment: the function
//	                      writes no non-receiver state (checked
//	                      interprocedurally here, intraprocedurally by
//	                      the tickpure lint rule).
//
// Anything else in the //vet: namespace — an unknown directive,
// vet:local without a reason, vet:pure with trailing arguments — is a
// grammar error reported with file:line provenance (rule vetannot),
// never silently ignored: a typo in an annotation must not quietly
// widen the certificate.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

const (
	localMarker = "//vet:local"
	pureMarker  = "//vet:pure"
)

// vetComment splits a comment into its //vet: directive and argument,
// reporting ok=false for comments outside the namespace.
func vetComment(text string) (directive, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, "//vet:")
	if !found {
		return "", "", false
	}
	directive, arg, _ = strings.Cut(rest, " ")
	return directive, strings.TrimSpace(arg), true
}

// validateVetComment checks one //vet: comment against the grammar.
func validateVetComment(text string) error {
	directive, arg, ok := vetComment(text)
	if !ok {
		return nil
	}
	switch directive {
	case "local":
		if arg == "" {
			return fmt.Errorf("vet:local needs a reason (want: //vet:local <why>)")
		}
	case "pure":
		if arg != "" {
			return fmt.Errorf("vet:pure takes no argument (got %q)", arg)
		}
	default:
		return fmt.Errorf("unknown //vet: directive %q (want local or pure)", directive)
	}
	return nil
}

// collectVetAnnots walks a package's comments, validating the //vet:
// grammar and recording the state keys that //vet:local declarations
// exempt. The returned findings are grammar errors only; the locals
// map is filled with "<var or field key>" -> annotation position.
func collectVetAnnots(p *analysis.Package, locals map[string]token.Position) []analysis.Finding {
	var out []analysis.Finding
	localLines := map[lineRef]token.Position{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				if err := validateVetComment(c.Text); err != nil {
					out = append(out, analysis.Finding{
						Rule: "vetannot", Pos: pos, Message: err.Error(),
					})
					continue
				}
				if strings.HasPrefix(c.Text, localMarker) {
					localLines[lineRef{pos.Filename, pos.Line}] = pos
				}
			}
		}
	}
	if len(localLines) == 0 {
		return out
	}
	// Bind each //vet:local to the declaration on its line or the line
	// below (i.e. the annotation sits on the decl line or directly
	// above it).
	bind := func(pos token.Pos, key string) {
		dp := p.Fset.Position(pos)
		for _, l := range []int{dp.Line, dp.Line - 1} {
			if ap, ok := localLines[lineRef{dp.Filename, l}]; ok {
				locals[key] = ap
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					for _, name := range s.Names {
						if obj := p.Info.Defs[name]; obj != nil && obj.Parent() == p.Types.Scope() {
							bind(name.Pos(), p.Path+"."+name.Name)
						}
					}
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					owner := p.Path + "." + s.Name.Name
					for _, fld := range st.Fields.List {
						for _, name := range fld.Names {
							bind(name.Pos(), owner+"."+name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

type lineRef struct {
	file string
	line int
}

// PureFunc reports whether a function declaration's doc comment
// carries //vet:pure.
func pureFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if d, arg, ok := vetComment(c.Text); ok && d == "pure" && arg == "" {
			return true
		}
	}
	return false
}
