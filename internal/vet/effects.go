// Per-function effect extraction: one AST walk per declared function
// (function literals get their own nodes) recording shared-state reads
// and writes, call sites, and escaping function values.
//
// Write attribution model (DESIGN.md §18): a write is attributed to
// the named type owning the written FIELD — the selector closest to
// the assignment — regardless of the alias path that reached it, so
// `s.l1s[i].stats.misses++` charges the type that owns `misses`, not
// System. Writes that never select a field are attributed to the
// written variable: package-level variables are "global" effects;
// writes through parameters of unnamed type are "param" effects the
// caller must account for; writes through plain locals are
// fresh-allocation writes and carry no shared effect.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

func walkPackage(a *Analysis, p *analysis.Package, modPath string) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := a.node(obj)
			n.Pos = p.Fset.Position(fd.Pos())
			n.Pure = pureFunc(fd)
			var recv *types.Var
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv, _ = p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			}
			w := &walker{a: a, p: p, n: n, recv: recv, mod: modPath, calls: map[ast.Node]bool{}}
			w.walkBody(fd.Body)
		}
	}
}

type walker struct {
	a    *Analysis
	p    *analysis.Package
	n    *FuncNode
	recv *types.Var
	mod  string
	lits int
	// calls marks expressions appearing in call position, so the
	// escape pass can tell `f()` from `schedule(f)`.
	calls map[ast.Node]bool
}

func (w *walker) walkBody(body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch t := node.(type) {
		case *ast.FuncLit:
			w.lits++
			lit := &FuncNode{
				Name:    fmt.Sprintf("%s$lit%d", w.n.Name, w.lits),
				Pos:     w.p.Fset.Position(t.Pos()),
				escapes: true, // anything a literal is handed to may fire it later
			}
			w.a.Funcs[lit.Name] = lit
			// The literal either runs inline or is scheduled; either
			// way its effects are reachable once the encloser is, so
			// record a call edge too.
			w.n.calls = append(w.n.calls, &callsite{pos: lit.Pos})
			cw := &walker{a: w.a, p: w.p, n: lit, mod: w.mod, calls: map[ast.Node]bool{}}
			cw.walkBody(t.Body)
			w.n.calls[len(w.n.calls)-1].lit = lit
			return false
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				w.writeTarget(lhs)
			}
		case *ast.IncDecStmt:
			w.writeTarget(t.X)
		case *ast.RangeStmt:
			if t.Tok == token.ASSIGN {
				if t.Key != nil {
					w.writeTarget(t.Key)
				}
				if t.Value != nil {
					w.writeTarget(t.Value)
				}
			}
		case *ast.CallExpr:
			w.call(t)
		case *ast.SelectorExpr:
			w.selector(t)
		case *ast.Ident:
			w.ident(t)
		}
		return true
	})
}

// addWrite / addRead record one effect site.
func (w *walker) addWrite(kind StateKind, key string, pos token.Pos, recv bool) {
	w.n.Writes = append(w.n.Writes, Site{Kind: kind, Key: key, Pos: w.p.Fset.Position(pos), Recv: recv})
}

func (w *walker) addRead(kind StateKind, key string, pos token.Pos, recv bool) {
	w.n.Reads = append(w.n.Reads, Site{Kind: kind, Key: key, Pos: w.p.Fset.Position(pos), Recv: recv})
}

// writeTarget classifies one assignment target. containerOp marks
// builtin append/copy/delete arguments, which write through the
// container even when the expression is a bare identifier.
func (w *walker) writeTarget(e ast.Expr) { w.writeTargetPeeled(e, false) }

func (w *walker) writeTargetPeeled(e ast.Expr, containerOp bool) {
	peeled := containerOp
peel:
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e, peeled = t.X, true
		case *ast.IndexListExpr:
			e, peeled = t.X, true
		case *ast.StarExpr:
			e, peeled = t.X, true
		default:
			break peel
		}
	}
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if pkgPath := qualifiedPkg(w.p.Info, t.X); pkgPath != "" {
			if v, ok := w.p.Info.Uses[t.Sel].(*types.Var); ok {
				w.globalEffect(v, t.Sel.Pos(), true)
			}
			return
		}
		if sel := w.p.Info.Selections[t]; sel != nil && sel.Kind() == types.FieldVal {
			if key, ok := w.fieldKey(sel); ok {
				w.addWrite(KindField, key, t.Sel.Pos(), w.rootIsRecv(t.X))
			}
		}
	case *ast.Ident:
		obj := w.varOf(t)
		if obj == nil {
			return
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			w.globalEffect(obj, t.Pos(), true)
			return
		}
		if !peeled {
			return // plain rebind of a local or parameter
		}
		typ := deref(obj.Type())
		if named, ok := typ.(*types.Named); ok && w.moduleNamed(named) {
			key := namedKey(named) + ".[]"
			w.recordDecl(key, named.Origin().Obj().Pos())
			w.addWrite(KindField, key, t.Pos(), obj == w.recv)
			return
		}
		if w.isParam(obj) && obj != w.recv {
			key := w.n.Name + "." + obj.Name()
			w.recordDecl(key, obj.Pos())
			w.addWrite(KindParam, key, t.Pos(), false)
		}
	}
}

// selector records field reads (writes re-read their target; that
// over-approximation is harmless) and method-value escapes.
func (w *walker) selector(t *ast.SelectorExpr) {
	sel := w.p.Info.Selections[t]
	if sel == nil {
		return
	}
	switch sel.Kind() {
	case types.FieldVal:
		if key, ok := w.fieldKey(sel); ok {
			w.addRead(KindField, key, t.Sel.Pos(), w.rootIsRecv(t.X))
		}
	case types.MethodVal:
		if w.calls[t] {
			return
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			// A method value like `s.deliverWired` handed to a
			// constructor or scheduler can fire during any tick.
			if iface, ok := deref(sel.Recv()).Underlying().(*types.Interface); ok {
				_ = iface // interface method value: implementers escape via their own decls
				return
			}
			w.a.node(m).escapes = true
		}
	}
}

// ident records package-level variable reads and named-function
// escapes (address-taken functions are reachability roots).
func (w *walker) ident(t *ast.Ident) {
	switch obj := w.p.Info.Uses[t].(type) {
	case *types.Var:
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			w.globalEffect(obj, t.Pos(), false)
		}
	case *types.Func:
		if !w.calls[t] && obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), w.mod) {
			w.a.node(obj).escapes = true
		}
	}
}

func (w *walker) globalEffect(v *types.Var, pos token.Pos, write bool) {
	if v.Pkg() == nil || !strings.HasPrefix(v.Pkg().Path(), w.mod) {
		return
	}
	key := v.Pkg().Path() + "." + v.Name()
	w.recordDecl(key, v.Pos())
	if write {
		w.addWrite(KindGlobal, key, pos, false)
	} else {
		w.addRead(KindGlobal, key, pos, false)
	}
}

// recordDecl remembers where a state key is declared, for ledger
// provenance.
func (w *walker) recordDecl(key string, pos token.Pos) {
	if _, ok := w.a.declPos[key]; !ok && pos.IsValid() {
		w.a.declPos[key] = w.p.Fset.Position(pos)
	}
}

// call resolves one call expression into a callsite (or a builtin
// container write).
func (w *walker) call(ce *ast.CallExpr) {
	fun := ast.Unparen(ce.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if inner, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			if _, isFn := w.p.Info.Uses[inner].(*types.Func); isFn {
				fun = inner
			}
		}
	case *ast.IndexListExpr:
		if inner, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			if _, isFn := w.p.Info.Uses[inner].(*types.Func); isFn {
				fun = inner
			}
		}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		w.calls[f] = true
		switch obj := w.p.Info.Uses[f].(type) {
		case *types.Func:
			w.addCall(&callsite{pos: w.p.Fset.Position(ce.Pos()), target: obj})
		case *types.Builtin:
			switch f.Name {
			case "append", "copy", "delete":
				if len(ce.Args) > 0 {
					w.writeTargetPeeled(ce.Args[0], true)
				}
			}
		}
	case *ast.SelectorExpr:
		w.calls[f] = true
		w.calls[f.Sel] = true
		if pkgPath := qualifiedPkg(w.p.Info, f.X); pkgPath != "" {
			if fn, ok := w.p.Info.Uses[f.Sel].(*types.Func); ok {
				w.addCall(&callsite{pos: w.p.Fset.Position(ce.Pos()), target: fn})
			}
			return
		}
		sel := w.p.Info.Selections[f]
		if sel == nil {
			if fn, ok := w.p.Info.Uses[f.Sel].(*types.Func); ok {
				w.addCall(&callsite{pos: w.p.Fset.Position(ce.Pos()), target: fn})
			}
			return
		}
		switch sel.Kind() {
		case types.MethodVal, types.MethodExpr:
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if iface, ok := deref(sel.Recv()).Underlying().(*types.Interface); ok {
				w.addCall(&callsite{
					pos: w.p.Fset.Position(ce.Pos()), ifaceT: iface,
					name: m.Name(), sig: m.Type().(*types.Signature),
				})
				return
			}
			w.addCall(&callsite{pos: w.p.Fset.Position(ce.Pos()), target: m})
		case types.FieldVal:
			// calling a func-typed field: dynamic — targets are
			// covered by the escape roots.
		}
	case *ast.FuncLit:
		// immediately-invoked literal: visited as its own node with a
		// call edge recorded there.
	}
}

func (w *walker) addCall(cs *callsite) {
	// Calls into other modules' packages (the standard library) carry
	// no module-state effects by the model; skip them to keep the
	// graph small.
	if cs.target != nil {
		if pkg := cs.target.Pkg(); pkg == nil || !strings.HasPrefix(pkg.Path(), w.mod) {
			return
		}
	}
	w.n.calls = append(w.n.calls, cs)
}

// fieldKey resolves the named type owning the selected field, walking
// the embedding path so promoted fields charge the embedded struct
// that declares them, and collapsing generic instantiations onto their
// origin.
func (w *walker) fieldKey(sel *types.Selection) (string, bool) {
	t := sel.Recv()
	idx := sel.Index()
	for _, i := range idx[:len(idx)-1] {
		t = deref(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return "", false
		}
		t = st.Field(i).Type()
	}
	named, ok := deref(t).(*types.Named)
	if !ok || !w.moduleNamed(named) {
		return "", false
	}
	key := namedKey(named) + "." + sel.Obj().Name()
	w.recordDecl(key, sel.Obj().Pos())
	return key, true
}

func (w *walker) moduleNamed(n *types.Named) bool {
	pkg := n.Obj().Pkg()
	return pkg != nil && strings.HasPrefix(pkg.Path(), w.mod)
}

// rootIsRecv walks an access path to its base identifier and reports
// whether it is the current function's receiver.
func (w *walker) rootIsRecv(e ast.Expr) bool {
	if w.recv == nil {
		return false
	}
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			return w.varOf(t) == w.recv
		default:
			return false
		}
	}
}

func (w *walker) varOf(id *ast.Ident) *types.Var {
	if v, ok := w.p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := w.p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (w *walker) isParam(v *types.Var) bool {
	if w.n.Obj == nil {
		return false
	}
	sig, ok := w.n.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

// namedKey is the canonical "<pkgpath>.<TypeName>" for a named type's
// origin declaration.
func namedKey(n *types.Named) string {
	o := n.Origin()
	return o.Obj().Pkg().Path() + "." + o.Obj().Name()
}

func deref(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		default:
			return t
		}
	}
}

// qualifiedPkg returns the imported package path when the expression
// is a package qualifier (e.g. the `stats` in stats.Foo), else "".
func qualifiedPkg(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
