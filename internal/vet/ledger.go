// The shared-state ledger: the checked-in certificate of every state
// site the tick path can write, each classified for the
// parallel-domain refactor (ROADMAP item 2, DESIGN.md §18).
//
// Format (line-oriented, like the .widirspec tables):
//
//	# comment
//	ledger widir-vet/v1
//	<kind> <key> <class> <decl-provenance> [# note]
//
// kind is global|field|param; key is the canonical state key (field
// keys may end in ".*" to cover every field of a type); class is one
// of:
//
//	domain-local      — owned by exactly one mesh domain (per-node
//	                    controller state, per-domain RNG streams);
//	                    safe to tick concurrently with no mediation.
//	barrier-mediated  — shared across domains but only read or
//	                    written at barrier edges (the per-pair FIFO
//	                    channels, merge-step aggregation); the
//	                    barrier protocol is the correctness argument.
//	needs-partition   — genuinely cross-domain today; each such entry
//	                    MUST carry a note naming the refactor that
//	                    will localize it. These entries are the
//	                    work-list for the parallel scheduler PR.
//
// decl-provenance is "<file>:<line>" relative to the module root (or
// "-" when unresolvable); it is refreshed by `widir-vet -update` and
// informational during -check (the key set, not line numbers, is the
// contract).
package vet

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// LedgerHeader is the required first directive line.
const LedgerHeader = "ledger widir-vet/v1"

// Classifications.
const (
	ClassDomainLocal     = "domain-local"
	ClassBarrierMediated = "barrier-mediated"
	ClassNeedsPartition  = "needs-partition"
)

func validClass(c string) bool {
	return c == ClassDomainLocal || c == ClassBarrierMediated || c == ClassNeedsPartition
}

// Entry is one ledger line.
type Entry struct {
	Kind  StateKind
	Key   string // may end in ".*" for field wildcards
	Class string
	Prov  string // decl provenance, informational
	Note  string // free text after '#'
	Line  int    // 1-based line in the ledger file (0 for new entries)
}

// Wildcard reports whether the entry covers every field of its type.
func (e *Entry) Wildcard() bool {
	return e.Kind == KindField && strings.HasSuffix(e.Key, ".*")
}

// Matches reports whether the entry covers the state key.
func (e *Entry) Matches(kind StateKind, key string) bool {
	if e.Kind != kind {
		return false
	}
	if e.Wildcard() {
		prefix := strings.TrimSuffix(e.Key, "*")
		return strings.HasPrefix(key, prefix)
	}
	return e.Key == key
}

// Ledger is a parsed ledger file.
type Ledger struct {
	Entries []*Entry
	Path    string
}

// ParseLedger reads a ledger from a file. A missing file is not an
// error: it parses as the empty ledger (everything unregistered).
func ParseLedger(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Ledger{Path: path}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	led := &Ledger{Path: path}
	sc := bufio.NewScanner(f)
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			if line != LedgerHeader {
				return nil, fmt.Errorf("%s:%d: first directive must be %q, got %q", path, lineno, LedgerHeader, line)
			}
			sawHeader = true
			continue
		}
		body, note, _ := strings.Cut(line, "#")
		fields := strings.Fields(body)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: malformed entry %q (want: <kind> <key> <class> <provenance> [# note])", path, lineno, line)
		}
		kind := StateKind(fields[0])
		if kind != KindGlobal && kind != KindField && kind != KindParam {
			return nil, fmt.Errorf("%s:%d: unknown kind %q (want global, field or param)", path, lineno, fields[0])
		}
		if !validClass(fields[2]) {
			return nil, fmt.Errorf("%s:%d: unknown class %q (want %s, %s or %s)", path, lineno,
				fields[2], ClassDomainLocal, ClassBarrierMediated, ClassNeedsPartition)
		}
		led.Entries = append(led.Entries, &Entry{
			Kind: kind, Key: fields[1], Class: fields[2], Prov: fields[3],
			Note: strings.TrimSpace(note), Line: lineno,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return led, nil
}

// Covering returns the most specific entry covering the key: an exact
// match wins over a wildcard.
func (l *Ledger) Covering(kind StateKind, key string) *Entry {
	var wild *Entry
	for _, e := range l.Entries {
		if !e.Matches(kind, key) {
			continue
		}
		if !e.Wildcard() {
			return e
		}
		if wild == nil {
			wild = e
		}
	}
	return wild
}

// GlobalKeys returns the set of registered global keys (used by the
// globalmut lint rule: a sim-package global must be here or carry
// //vet:local).
func (l *Ledger) GlobalKeys() map[string]bool {
	out := map[string]bool{}
	for _, e := range l.Entries {
		if e.Kind == KindGlobal {
			out[e.Key] = true
		}
	}
	return out
}

// Format renders the ledger deterministically: header comment block,
// directive, then entries sorted by kind then key, aligned.
func (l *Ledger) Format(moduleDir string) string {
	entries := append([]*Entry(nil), l.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Kind != entries[j].Kind {
			return entries[i].Kind < entries[j].Kind
		}
		return entries[i].Key < entries[j].Key
	})
	wKind, wKey, wClass, wProv := 0, 0, 0, 0
	for _, e := range entries {
		wKind = max(wKind, len(e.Kind))
		wKey = max(wKey, len(e.Key))
		wClass = max(wClass, len(e.Class))
		wProv = max(wProv, len(e.Prov))
	}
	var b strings.Builder
	b.WriteString("# widir-vet shared-state ledger (DESIGN.md §18).\n")
	b.WriteString("#\n")
	b.WriteString("# Every state site writable from the simulator tick path, classified\n")
	b.WriteString("# for the parallel-domain refactor (ROADMAP item 2):\n")
	b.WriteString("#   domain-local     owned by one mesh domain; ticks concurrently as is\n")
	b.WriteString("#   barrier-mediated crossed only at communication-barrier edges\n")
	b.WriteString("#   needs-partition  cross-domain today; the note names the refactor\n")
	b.WriteString("#\n")
	b.WriteString("# Regenerate with `widir-vet -update` (classifications and notes are\n")
	b.WriteString("# preserved; new sites arrive as needs-partition # TODO: classify).\n")
	b.WriteString("# `widir-vet -check` fails on unregistered, stale or unexplained state.\n")
	b.WriteString("\n")
	b.WriteString(LedgerHeader + "\n\n")
	for _, e := range entries {
		line := fmt.Sprintf("%-*s %-*s %-*s %-*s", wKind, string(e.Kind), wKey, e.Key, wClass, e.Class, wProv, e.Prov)
		if e.Note != "" {
			line = strings.TrimRight(line, " ") + "  # " + e.Note
		}
		b.WriteString(strings.TrimRight(line, " ") + "\n")
	}
	return b.String()
}

// Update merges the current analysis into the ledger: entries still
// covering at least one written state survive untouched (classes and
// notes preserved, provenance refreshed on exact entries), uncovered
// states are added as needs-partition with a TODO note, and entries
// covering nothing are dropped. It returns the dropped entries.
func (l *Ledger) Update(a *Analysis) (dropped []*Entry) {
	states := a.WriteStates()
	covered := map[*Entry]bool{}
	var missing []*State
	for _, st := range states {
		if st.Local {
			continue // //vet:local exempts the declaration
		}
		if e := l.Covering(st.Kind, st.Key); e != nil {
			covered[e] = true
			if !e.Wildcard() {
				e.Prov = provOf(a, st)
			}
		} else {
			missing = append(missing, st)
		}
	}
	var kept []*Entry
	for _, e := range l.Entries {
		if covered[e] {
			kept = append(kept, e)
		} else {
			dropped = append(dropped, e)
		}
	}
	for _, st := range missing {
		kept = append(kept, &Entry{
			Kind: st.Kind, Key: st.Key, Class: ClassNeedsPartition,
			Prov: provOf(a, st), Note: "TODO: classify",
		})
	}
	l.Entries = kept
	return dropped
}

func provOf(a *Analysis, st *State) string {
	pos := st.DeclPos
	if pos.Filename == "" && len(st.Sites) > 0 {
		pos = st.Sites[0]
	}
	return RelPos(a.Config.ModuleDir, pos)
}
