package vet

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// sharedLoader is reused across fixture tests so the stdlib source
// type-checking cost is paid once.
var sharedLoader *analysis.Loader

// fixtureAnalysis type-checks one in-memory package and runs the full
// vet pass over it with Tick as the only entry name.
func fixtureAnalysis(t *testing.T, path, src string) *Analysis {
	t.Helper()
	if sharedLoader == nil {
		root, err := analysis.FindModuleRoot(".")
		if err != nil {
			t.Fatal(err)
		}
		l, err := analysis.NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	p, err := sharedLoader.LoadSource(path, "fixture.go", src)
	if err != nil {
		t.Fatalf("fixture did not parse: %v", err)
	}
	cfg := Config{ModuleDir: "/fixture", Entries: []string{"Tick"}}
	a, err := analyzePackages(cfg, "repro", []*analysis.Package{p})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// writeKeys flattens the reachable write states into "kind key" lines.
func writeKeys(a *Analysis) []string {
	var out []string
	for _, st := range a.WriteStates() {
		out = append(out, string(st.Kind)+" "+st.Key)
	}
	return out
}

func wantKeys(t *testing.T, a *Analysis, want ...string) {
	t.Helper()
	got := writeKeys(a)
	if len(got) != len(want) {
		t.Fatalf("write states:\n got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("write states:\n got %v\nwant %v", got, want)
		}
	}
}

func TestEffectKinds(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

var hits int

type Router struct{ queue []int }

// Tick writes a global, a field of a named type, and a caller slice.
func (r *Router) Tick(buf []int) {
	hits++
	r.queue = append(r.queue, 1)
	buf[0] = 2
	local := 0
	local++ // plain local: no effect
	_ = local
}
`)
	wantKeys(t, a,
		"field repro/internal/mesh.Router.queue",
		"global repro/internal/mesh.hits",
		"param (*repro/internal/mesh.Router).Tick.buf",
	)
}

// TestFieldOwnerAttribution pins the attribution model: the write is
// charged to the named type owning the FIELD, not the alias path that
// reached it.
func TestFieldOwnerAttribution(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type Counter struct{ n int }

type System struct{ counters []*Counter }

func (s *System) Tick() {
	s.counters[0].n++ // charged to Counter.n, not System
}
`)
	wantKeys(t, a, "field repro/internal/mesh.Counter.n")
}

// TestGenericInstantiationEffects is the loader-fix fixture: a generic
// container instantiated at two element types must still be walked (the
// loader records types.Instances/Selections), and both instantiations
// collapse onto one origin state key.
func TestGenericInstantiationEffects(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/coherence", `package coherence

type table[V any] struct {
	vals []V
	used int
}

func (t *table[V]) put(v V) {
	t.vals = append(t.vals, v)
	t.used++
}

type Ctrl struct {
	ints table[int]
	strs table[string]
}

func (c *Ctrl) Tick() {
	c.ints.put(1)
	c.strs.put("x")
}
`)
	wantKeys(t, a,
		"field repro/internal/coherence.table.used",
		"field repro/internal/coherence.table.vals",
	)
	st := a.WriteStates()[0]
	if len(st.Writers) != 1 || !strings.Contains(st.Writers[0], "put") {
		t.Fatalf("table.used writers = %v, want the origin put method", st.Writers)
	}
}

// TestEmbeddedPromotionCall is the second loader-fix fixture: a call to
// a method promoted from an embedded struct must resolve to the
// embedded type's method (via types.Selection), making its effects
// reachable and charging the embedded type.
func TestEmbeddedPromotionCall(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/cpu", `package cpu

type stats struct{ retired int }

func (s *stats) bump() { s.retired++ }

type Core struct {
	stats
	pc int
}

func (c *Core) Tick() {
	c.bump() // promoted from the embedded stats
	c.pc++
}
`)
	wantKeys(t, a,
		"field repro/internal/cpu.Core.pc",
		"field repro/internal/cpu.stats.retired",
	)
}

// TestPromotedFieldWrite: writing a promoted FIELD through the outer
// type charges the embedded type that declares it.
func TestPromotedFieldWrite(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/cpu", `package cpu

type base struct{ n int }

type Core struct{ base }

func (c *Core) Tick() {
	c.n++ // selection path walks through the embedded base
}
`)
	wantKeys(t, a, "field repro/internal/cpu.base.n")
}

func TestInterfaceDispatchFanOut(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/engine", `package engine

type Runner interface{ Step() }

type fast struct{ n int }

func (f *fast) Step() { f.n++ }

type Wheel struct{ rs []Runner }

func (w *Wheel) Tick() {
	for _, r := range w.rs {
		r.Step()
	}
}
`)
	if !a.Reachable["(*repro/internal/engine.fast).Step"] {
		t.Fatalf("interface dispatch did not reach fast.Step; reachable = %v", a.Reachable)
	}
	wantKeys(t, a, "field repro/internal/engine.fast.n")
}

// TestEscapingLiteralIsRoot: a function literal stored at construction
// time (not called from any entry) can still fire during a tick, so its
// effects are on the tick path.
func TestEscapingLiteralIsRoot(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/engine", `package engine

type Q struct{ cbs []func() }

type counter struct{ n int }

// NewQ is NOT an entry point; the literal it schedules still escapes.
func NewQ(c *counter) *Q {
	q := &Q{}
	q.cbs = append(q.cbs, func() { c.n++ })
	return q
}
`)
	wantKeys(t, a, "field repro/internal/engine.counter.n")
}

// TestMethodValueEscape: a method value handed to a scheduler makes the
// method a reachability root.
func TestMethodValueEscape(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/wireless", `package wireless

type Chan struct{ q []int }

func (c *Chan) deliver() { c.q = append(c.q, 1) }

func schedule(f func()) { _ = f }

// NewChan is not an entry; c.deliver escapes into the scheduler.
func NewChan() *Chan {
	c := &Chan{}
	schedule(c.deliver)
	return c
}
`)
	wantKeys(t, a, "field repro/internal/wireless.Chan.q")
}

func TestVetLocalExemptsState(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

//vet:local scratch reset every cycle
var scratch []int

type R struct{}

func (r *R) Tick() {
	scratch = scratch[:0]
}
`)
	sts := a.WriteStates()
	if len(sts) != 1 || !sts[0].Local {
		t.Fatalf("want one Local write state, got %+v", sts)
	}
	led := &Ledger{}
	for _, f := range Check(a, led) {
		t.Errorf("vet:local state should not need registration: %v", f)
	}
}

func TestPureViolationTransitive(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/stats", `package stats

type H struct{ n int }

func (h *H) bump() { h.n++ }

//vet:pure
func (h *H) Total() int {
	h.bump() // callee writes: interprocedural purity violation
	return h.n
}
`)
	got := a.PureViolations()
	if len(got) != 1 || got[0].Rule != "vetpure" {
		t.Fatalf("want one vetpure finding, got %v", got)
	}
	if !strings.Contains(got[0].Message, "bump") {
		t.Fatalf("finding should name the impure callee: %v", got[0])
	}
}

func TestPureAllowsReceiverWrites(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/stats", `package stats

type H struct{ cache int }

//vet:pure
func (h *H) Total() int {
	h.cache = 1 // own receiver: allowed
	return h.cache
}
`)
	if got := a.PureViolations(); len(got) != 0 {
		t.Fatalf("receiver writes are allowed in pure functions, got %v", got)
	}
}

func TestAnnotGrammar(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings of the vetannot messages, in order
	}{
		{"local-without-reason", "//vet:local\nvar x int\n", []string{"needs a reason"}},
		{"pure-with-arg", "//vet:pure because\nfunc f() {}\n", []string{"takes no argument"}},
		{"unknown-directive", "//vet:frozen\nvar y int\n", []string{"unknown //vet: directive"}},
		{"clean", "//vet:local per-tick scratch\nvar z int\n\n//vet:pure\nfunc g() {}\n", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := fixtureAnalysis(t, "repro/internal/mesh", "package mesh\n\n"+tc.src)
			if len(a.Annots) != len(tc.want) {
				t.Fatalf("vetannot findings: got %v, want %d", a.Annots, len(tc.want))
			}
			for i, sub := range tc.want {
				if a.Annots[i].Rule != "vetannot" || !strings.Contains(a.Annots[i].Message, sub) {
					t.Errorf("finding %d = %v, want substring %q", i, a.Annots[i], sub)
				}
				if a.Annots[i].Pos.Line == 0 {
					t.Errorf("finding %d has no line: %v", i, a.Annots[i])
				}
			}
		})
	}
}

func TestEntryBaseNameMatching(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type R struct{ n int }

// Tick matches the entry set by base name.
func (r *R) Tick() { r.n++ }

// helper is not an entry and nothing reaches it.
type S struct{ m int }

func (s *S) helper() { s.m++ }
`)
	wantKeys(t, a, "field repro/internal/mesh.R.n")
	if a.Reachable["(*repro/internal/mesh.S).helper"] {
		t.Fatal("helper must not be reachable")
	}
}
