package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseString(t *testing.T, src string) (*Ledger, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.widirvet")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return ParseLedger(path)
}

func TestParseLedgerMissingFileIsEmpty(t *testing.T) {
	led, err := ParseLedger(filepath.Join(t.TempDir(), "nope.widirvet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Entries) != 0 {
		t.Fatalf("missing file should parse as empty, got %d entries", len(led.Entries))
	}
}

func TestParseLedgerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad-header", "not a ledger\n", "first directive"},
		{"bad-kind", LedgerHeader + "\nthing a.b domain-local f.go:1\n", "unknown kind"},
		{"bad-class", LedgerHeader + "\nfield a.B.c sort-of-fine f.go:1\n", "unknown class"},
		{"bad-arity", LedgerHeader + "\nfield a.B.c domain-local\n", "malformed entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseString(t, tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestParseLedgerNotesAndComments(t *testing.T) {
	led, err := parseString(t, `# leading comment

`+LedgerHeader+`

field  repro/internal/m.T.*   domain-local     internal/m/m.go:3  # one per tile
global repro/internal/m.seed  barrier-mediated internal/m/m.go:9
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(led.Entries))
	}
	if led.Entries[0].Note != "one per tile" {
		t.Fatalf("note = %q", led.Entries[0].Note)
	}
	if !led.Entries[0].Wildcard() || led.Entries[1].Wildcard() {
		t.Fatal("wildcard detection wrong")
	}
}

func TestCoveringExactBeatsWildcard(t *testing.T) {
	led := &Ledger{Entries: []*Entry{
		{Kind: KindField, Key: "p.T.*", Class: ClassDomainLocal},
		{Kind: KindField, Key: "p.T.x", Class: ClassNeedsPartition},
	}}
	if e := led.Covering(KindField, "p.T.x"); e == nil || e.Class != ClassNeedsPartition {
		t.Fatalf("exact entry must win, got %+v", e)
	}
	if e := led.Covering(KindField, "p.T.y"); e == nil || e.Class != ClassDomainLocal {
		t.Fatalf("wildcard must cover other fields, got %+v", e)
	}
	if e := led.Covering(KindField, "p.Tx.y"); e != nil {
		t.Fatalf("wildcard must not cover a different type, got %+v", e)
	}
	if e := led.Covering(KindGlobal, "p.T.x"); e != nil {
		t.Fatalf("kinds must not cross-match, got %+v", e)
	}
	// The ".[]" element key is a field of the type and must be covered.
	if e := led.Covering(KindField, "p.T.[]"); e == nil {
		t.Fatal("wildcard must cover the element key")
	}
}

func TestFormatRoundTrips(t *testing.T) {
	led := &Ledger{Entries: []*Entry{
		{Kind: KindField, Key: "p.B.*", Class: ClassBarrierMediated, Prov: "b.go:2", Note: "transport"},
		{Kind: KindGlobal, Key: "p.a", Class: ClassDomainLocal, Prov: "a.go:1"},
	}}
	text := led.Format("/mod")
	reparsed, err := parseString(t, text)
	if err != nil {
		t.Fatalf("Format output did not reparse: %v\n%s", err, text)
	}
	if len(reparsed.Entries) != 2 {
		t.Fatalf("round trip lost entries: %d", len(reparsed.Entries))
	}
	// Sorted by kind then key: field before global.
	if reparsed.Entries[0].Key != "p.B.*" || reparsed.Entries[0].Note != "transport" {
		t.Fatalf("entry 0 = %+v", reparsed.Entries[0])
	}
	if text != (&Ledger{Entries: reparsed.Entries}).Format("/mod") {
		t.Fatal("Format is not a fixed point")
	}
}

func TestUpdatePreservesClassificationsAndDropsStale(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type R struct {
	n int
	m int
}

func (r *R) Tick() {
	r.n++
	r.m++
}
`)
	led := &Ledger{Entries: []*Entry{
		{Kind: KindField, Key: "repro/internal/mesh.R.*", Class: ClassBarrierMediated, Note: "keep me"},
		{Kind: KindField, Key: "repro/internal/mesh.Gone.*", Class: ClassDomainLocal},
	}}
	dropped := led.Update(a)
	if len(dropped) != 1 || dropped[0].Key != "repro/internal/mesh.Gone.*" {
		t.Fatalf("dropped = %+v", dropped)
	}
	if len(led.Entries) != 1 || led.Entries[0].Class != ClassBarrierMediated || led.Entries[0].Note != "keep me" {
		t.Fatalf("entries = %+v", led.Entries)
	}
}

func TestUpdateAddsMissingAsNeedsPartition(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type R struct{ n int }

func (r *R) Tick() { r.n++ }
`)
	led := &Ledger{}
	led.Update(a)
	if len(led.Entries) != 1 {
		t.Fatalf("entries = %+v", led.Entries)
	}
	e := led.Entries[0]
	if e.Class != ClassNeedsPartition || !strings.Contains(e.Note, "TODO") {
		t.Fatalf("new entries must arrive unclassified, got %+v", e)
	}
	if e.Key != "repro/internal/mesh.R.n" {
		t.Fatalf("key = %q", e.Key)
	}
}

func TestCheckFindings(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type R struct{ n int }

func (r *R) Tick() { r.n++ }
`)
	led := &Ledger{Path: "test.widirvet", Entries: []*Entry{
		{Kind: KindField, Key: "repro/internal/mesh.Gone.*", Class: ClassDomainLocal, Line: 3},
		{Kind: KindGlobal, Key: "repro/internal/mesh.todo", Class: ClassNeedsPartition, Note: "TODO: classify", Line: 4},
	}}
	rules := map[string]int{}
	for _, f := range Check(a, led) {
		rules[f.Rule]++
	}
	// R.n is unregistered; both entries are stale; the needs-partition
	// entry is unexplained.
	if rules["vetunregistered"] != 1 || rules["vetstale"] != 2 || rules["vetunclassified"] != 1 {
		t.Fatalf("rule counts = %v", rules)
	}
}

func TestCheckCleanCertificate(t *testing.T) {
	a := fixtureAnalysis(t, "repro/internal/mesh", `package mesh

type R struct{ n int }

func (r *R) Tick() { r.n++ }
`)
	led := &Ledger{Entries: []*Entry{
		{Kind: KindField, Key: "repro/internal/mesh.R.*", Class: ClassDomainLocal, Note: "per tile"},
	}}
	if got := Check(a, led); len(got) != 0 {
		t.Fatalf("want clean certificate, got %v", got)
	}
}
