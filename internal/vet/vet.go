// Package vet is the simulator's interprocedural shared-state auditor:
// the static certificate behind ROADMAP item 2 (deterministic parallel
// in-sim execution). It answers, from source alone, the question the
// parallel-domain scheduler depends on: what state can the tick path
// actually touch, and through which objects?
//
// The analysis (stdlib go/ast + go/types only, on top of the
// internal/analysis module loader) proceeds in three steps:
//
//  1. Call graph. Every function and method declared in the simulator
//     scope packages is a node; edges come from static calls, method
//     calls (resolved through embedded-struct promotion and generic
//     instantiation via types.Selection/Instances), and interface
//     dispatch (an interface method call fans out to every in-scope
//     concrete implementation). Function literals are their own nodes.
//     Reachability starts from the tick-path entry points (machine
//     Run/Step, the engine timing-wheel RunDue dispatch, the
//     mesh/wireless/cpu Tick functions) plus every function value that
//     escapes — anything scheduled on the timing wheel or stored as a
//     callback can fire during a tick, so an address-taken function is
//     a root whether or not its creator is on the tick path.
//
//  2. Effect sets. Each node gets a read set and a write set over the
//     module's shared state: package-level variables ("global" keys),
//     fields of named heap objects ("field" keys, attributed to the
//     named type that owns the written field, with generic
//     instantiations collapsed onto their origin declaration), and
//     writes through unnamed-type parameters ("param" keys). Writes to
//     plain locals and to locals' fresh allocations are domain-private
//     by construction and carry no effect.
//
//  3. Ledger check. The union of write effects over the reachable set
//     is compared against the checked-in shared-state ledger
//     (ledger.widirvet, same checked-in-spec pattern as the protocol
//     spec tables). Every reachable write site must be registered and
//     classified — domain-local, barrier-mediated, or needs-partition —
//     so the ledger doubles as the work-list for the parallel-domain
//     refactor; unregistered state, stale entries, and unexplained
//     needs-partition entries all fail `widir-vet -check`.
//
// Two source annotations steer the analysis (grammar enforced, see
// annot.go): `//vet:local <why>` on a package-level var or struct
// field declares it domain-safe and exempts it from registration, and
// `//vet:pure` on a function asserts it writes no non-receiver state —
// checked interprocedurally here and intraprocedurally by the tickpure
// rule in internal/analysis.
//
// Known, documented approximations: writes through a local variable of
// unnamed reference type that aliases heap state are attributed only
// when a field selection appears in the expression (sim code style
// keeps containers behind named fields, so the gap is narrow), and
// calls into the standard library are assumed to not mutate module
// state (the determinism lint already bans the dangerous stdlib).
// DESIGN.md §18 records the model in full.
package vet

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config names the module, the packages in scope, and the entry-point
// function names for the reachability roots.
type Config struct {
	ModuleDir string
	// Scope is the list of package patterns (relative to ModuleDir,
	// go-style "./..." accepted) whose declarations are analyzed.
	Scope []string
	// Entries are unqualified function or method base names treated as
	// tick-path roots wherever they appear in scope.
	Entries []string
	// LedgerPath is the shared-state ledger location (default
	// internal/vet/ledger.widirvet under ModuleDir).
	LedgerPath string
}

// simScope is the simulator package set under the shared-state
// contract: the deterministic sim packages plus the seeded RNG and the
// address-space mapper they tick through.
var simScope = []string{
	"internal/addrspace", "internal/cache", "internal/coherence",
	"internal/core", "internal/cpu", "internal/energy",
	"internal/engine", "internal/fault", "internal/machine",
	"internal/mesh", "internal/obs", "internal/stats",
	"internal/wireless", "internal/workload", "internal/xrand",
}

// DefaultEntries are the tick-path roots: the machine cycle loop, the
// timing-wheel dispatch, and the per-component tick functions. "Run"
// also matches every engine.Runner implementation — pooled wheel
// callbacks — which is exactly the intent.
var DefaultEntries = []string{"Run", "Step", "Tick", "RunDue"}

// DefaultConfig returns the repository configuration rooted at
// moduleDir.
func DefaultConfig(moduleDir string) Config {
	scope := make([]string, len(simScope))
	for i, s := range simScope {
		scope[i] = "./" + s
	}
	return Config{
		ModuleDir:  moduleDir,
		Scope:      scope,
		Entries:    append([]string(nil), DefaultEntries...),
		LedgerPath: filepath.Join(moduleDir, "internal", "vet", "ledger.widirvet"),
	}
}

// StateKind distinguishes the classes of shared state a write can
// target.
type StateKind string

const (
	// KindGlobal is a package-level variable.
	KindGlobal StateKind = "global"
	// KindField is a field of a named type, reached through any alias.
	KindField StateKind = "field"
	// KindParam is a write through a parameter of unnamed type — state
	// whose owner the analysis cannot name and the caller must account
	// for.
	KindParam StateKind = "param"
)

// Site is one read or write of shared state at a source position.
type Site struct {
	Kind StateKind
	Key  string // canonical state key, e.g. "repro/internal/engine.Queue.wheel"
	Pos  token.Position
	Recv bool // the access is rooted at the function's own receiver
}

// FuncNode is one function, method, or function literal in scope.
type FuncNode struct {
	Name string      // canonical name; literals get <encloser>$litN
	Obj  *types.Func // nil for literals
	Pos  token.Position
	Pure bool // carries //vet:pure

	Reads  []Site
	Writes []Site

	calls   []*callsite
	escapes bool // the function's value escapes (address taken)
}

// callsite is one call expression: either statically resolved or an
// interface dispatch to be fanned out after all nodes exist.
type callsite struct {
	pos    token.Position
	target *types.Func      // static / method / instantiated-origin callee
	lit    *FuncNode        // immediately-invoked literal
	iface  *types.Named     // named interface type for dynamic dispatch, if known
	ifaceT *types.Interface // interface under dispatch
	name   string           // method name for interface dispatch
	sig    *types.Signature
}

// State is the aggregate view of one shared-state key across the
// reachable tick path.
type State struct {
	Kind    StateKind
	Key     string
	DeclPos token.Position // declaration of the var / field, when resolvable
	Writers []string       // canonical function names, sorted
	Readers []string
	Sites   []token.Position // write sites, sorted
	Local   bool             // declaration carries //vet:local
}

// Analysis is the result of one vet pass.
type Analysis struct {
	Config   Config
	ModPath  string // the analyzed module's import path
	Packages []*analysis.Package

	Funcs     map[string]*FuncNode // by canonical name
	byObj     map[*types.Func]*FuncNode
	Reachable map[string]bool // canonical name -> on tick path

	// States aggregates write effects over the reachable set, keyed by
	// "<kind> <key>".
	States map[string]*State

	// Annots are the malformed-annotation findings discovered during
	// the walk (rule vetannot) — reported even when the ledger is
	// clean.
	Annots []analysis.Finding

	locals  map[string]token.Position // //vet:local decl keys -> annotation pos
	declPos map[string]token.Position // state key -> declaration position
}

// Analyze loads the scope packages through the shared module loader
// and runs the full analysis.
func Analyze(cfg Config) (*Analysis, error) {
	loader, err := analysis.NewLoader(cfg.ModuleDir)
	if err != nil {
		return nil, err
	}
	return AnalyzeWith(loader, cfg)
}

// AnalyzeWith runs the analysis over an existing loader (tests share
// one loader to pay the stdlib type-checking cost once).
func AnalyzeWith(loader *analysis.Loader, cfg Config) (*Analysis, error) {
	dirs, err := analysis.ExpandPatterns(cfg.ModuleDir, cfg.Scope)
	if err != nil {
		return nil, fmt.Errorf("vet: %w", err)
	}
	var pkgs []*analysis.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			return nil, fmt.Errorf("vet: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return analyzePackages(cfg, loader.ModulePath, pkgs)
}

func analyzePackages(cfg Config, modPath string, pkgs []*analysis.Package) (*Analysis, error) {
	a := &Analysis{
		Config:    cfg,
		ModPath:   modPath,
		Packages:  pkgs,
		Funcs:     map[string]*FuncNode{},
		byObj:     map[*types.Func]*FuncNode{},
		Reachable: map[string]bool{},
		States:    map[string]*State{},
		locals:    map[string]token.Position{},
		declPos:   map[string]token.Position{},
	}
	for _, p := range pkgs {
		a.Annots = append(a.Annots, collectVetAnnots(p, a.locals)...)
		walkPackage(a, p, modPath)
	}
	a.resolveReachability()
	a.aggregate()
	return a, nil
}

// node returns (creating if needed) the FuncNode for a declared
// function object, keyed by its origin so every generic instantiation
// shares one node.
func (a *Analysis) node(fn *types.Func) *FuncNode {
	fn = origin(fn)
	if n, ok := a.byObj[fn]; ok {
		return n
	}
	n := &FuncNode{Name: fn.FullName(), Obj: fn}
	a.byObj[fn] = n
	a.Funcs[n.Name] = n
	return n
}

// origin maps an instantiated generic function or method back to its
// declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// resolveReachability seeds the roots (entry names + escaped function
// values) and runs the BFS, fanning interface callsites out to every
// in-scope implementation.
func (a *Analysis) resolveReachability() {
	entry := map[string]bool{}
	for _, e := range a.Config.Entries {
		entry[e] = true
	}
	var queue []*FuncNode
	push := func(n *FuncNode) {
		if n != nil && !a.Reachable[n.Name] {
			a.Reachable[n.Name] = true
			queue = append(queue, n)
		}
	}
	for _, n := range a.Funcs {
		base := n.Name
		if i := strings.LastIndex(base, "."); i >= 0 {
			base = base[i+1:]
		}
		if n.Obj != nil && entry[base] {
			push(n)
		}
		if n.escapes {
			push(n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, cs := range n.calls {
			switch {
			case cs.lit != nil:
				push(cs.lit)
			case cs.target != nil:
				if t := a.byObj[origin(cs.target)]; t != nil {
					push(t)
				}
			case cs.ifaceT != nil:
				for _, impl := range a.implementers(cs.ifaceT, cs.name) {
					push(impl)
				}
			}
		}
	}
}

// implementers returns the in-scope concrete methods that an interface
// method call can dispatch to.
func (a *Analysis) implementers(iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	for _, p := range a.Packages {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(ptr, true, p.Types, name)
			if fn, ok := m.(*types.Func); ok {
				if n := a.byObj[origin(fn)]; n != nil {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// aggregate folds the reachable nodes' write (and read) effects into
// the shared-state table.
func (a *Analysis) aggregate() {
	add := func(s Site, fn string, write bool) {
		id := string(s.Kind) + " " + s.Key
		st := a.States[id]
		if st == nil {
			st = &State{Kind: s.Kind, Key: s.Key}
			if pos, ok := a.declPos[s.Key]; ok {
				st.DeclPos = pos
			}
			if _, ok := a.locals[s.Key]; ok {
				st.Local = true
			}
			a.States[id] = st
		}
		if write {
			st.Writers = append(st.Writers, fn)
			st.Sites = append(st.Sites, s.Pos)
		} else {
			st.Readers = append(st.Readers, fn)
		}
	}
	for name, n := range a.Funcs {
		if !a.Reachable[name] {
			continue
		}
		for _, w := range n.Writes {
			add(w, name, true)
		}
		for _, r := range n.Reads {
			add(r, name, false)
		}
	}
	for _, st := range a.States {
		st.Writers = dedupSort(st.Writers)
		st.Readers = dedupSort(st.Readers)
		sort.Slice(st.Sites, func(i, j int) bool { return posLess(st.Sites[i], st.Sites[j]) })
	}
}

// WriteStates returns the shared-state entries with at least one
// reachable writer, sorted by kind then key — the set the ledger must
// cover.
func (a *Analysis) WriteStates() []*State {
	var out []*State
	for _, st := range a.States {
		if len(st.Writers) > 0 {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// PureViolations checks every //vet:pure function interprocedurally: a
// pure function may write its own receiver's state but nothing else,
// and nothing it calls (transitively, with interface fan-out) may
// write shared state at all.
func (a *Analysis) PureViolations() []analysis.Finding {
	var out []analysis.Finding
	for _, name := range sortedFuncNames(a.Funcs) {
		n := a.Funcs[name]
		if !n.Pure {
			continue
		}
		for _, w := range n.Writes {
			if w.Recv {
				continue
			}
			out = append(out, analysis.Finding{
				Rule: "vetpure", Pos: w.Pos,
				Message: fmt.Sprintf("%s is //vet:pure but writes non-receiver state %s %s", n.Name, w.Kind, w.Key),
			})
		}
		seen := map[string]bool{name: true}
		queue := a.calleeNodes(n)
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			for _, w := range c.Writes {
				out = append(out, analysis.Finding{
					Rule: "vetpure", Pos: w.Pos,
					Message: fmt.Sprintf("%s is //vet:pure but callee %s writes %s %s", n.Name, c.Name, w.Kind, w.Key),
				})
			}
			queue = append(queue, a.calleeNodes(c)...)
		}
	}
	return out
}

func (a *Analysis) calleeNodes(n *FuncNode) []*FuncNode {
	var out []*FuncNode
	for _, cs := range n.calls {
		switch {
		case cs.lit != nil:
			out = append(out, cs.lit)
		case cs.target != nil:
			if t := a.byObj[origin(cs.target)]; t != nil {
				out = append(out, t)
			}
		case cs.ifaceT != nil:
			out = append(out, a.implementers(cs.ifaceT, cs.name)...)
		}
	}
	return out
}

func dedupSort(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func sortedFuncNames(m map[string]*FuncNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RelPos renders a position relative to the module root for stable
// checked-in provenance.
func RelPos(moduleDir string, pos token.Position) string {
	if pos.Filename == "" {
		return "-"
	}
	rel, err := filepath.Rel(moduleDir, pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = pos.Filename
	}
	return fmt.Sprintf("%s:%d", filepath.ToSlash(rel), pos.Line)
}
