// Package seedmut is the widir-vet end-to-end fixture: a module with a
// package-level variable written from a tick-path entry and no ledger.
// `widir-vet -module <this dir> -check` must exit 1 with a
// vetunregistered finding — the seeded mutation the certificate exists
// to catch.
package seedmut

var hiddenPool []int

type Sim struct{ n int }

// Tick matches the default entry set.
func (s *Sim) Tick() {
	s.n++
	hiddenPool = append(hiddenPool, s.n)
}
