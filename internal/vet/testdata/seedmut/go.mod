module seedmut

go 1.22
