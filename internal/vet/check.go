// The -check pass: diff the analysis against the checked-in ledger
// and report every way the certificate no longer holds.
package vet

import (
	"fmt"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Check compares the analysis with the ledger and returns findings:
//
//	vetannot        — malformed //vet: annotation (grammar error)
//	vetunregistered — a reachable write to state the ledger does not cover
//	vetstale        — a ledger entry covering no reachable write
//	vetunclassified — a needs-partition entry with no explanatory note
//	vetpure         — a //vet:pure function that (transitively) writes
//	                  non-receiver state
//
// Findings are sorted by position; an empty slice is the certificate.
func Check(a *Analysis, led *Ledger) []analysis.Finding {
	var out []analysis.Finding
	out = append(out, a.Annots...)
	out = append(out, a.PureViolations()...)

	used := map[*Entry]bool{}
	for _, st := range a.WriteStates() {
		if st.Local {
			continue
		}
		e := led.Covering(st.Kind, st.Key)
		if e == nil {
			pos := st.DeclPos
			if len(st.Sites) > 0 {
				pos = st.Sites[0]
			}
			out = append(out, analysis.Finding{
				Rule: "vetunregistered", Pos: pos,
				Message: fmt.Sprintf(
					"tick path writes unregistered shared state %s %s (writers: %s); register it in %s or annotate the declaration //vet:local",
					st.Kind, st.Key, strings.Join(clip(st.Writers, 3), ", "), ledgerName(led)),
			})
			continue
		}
		used[e] = true
		// Exact entries shadowed by a wildcard still count as used
		// when they match (Covering prefers exact), but a wildcard
		// plus exact for the same field is fine either way.
	}
	for _, e := range led.Entries {
		if !used[e] {
			out = append(out, analysis.Finding{
				Rule: "vetstale",
				Pos:  ledgerPos(led, e),
				Message: fmt.Sprintf(
					"ledger entry %s %s covers no state written from the tick path; delete it or rerun `widir-vet -update`",
					e.Kind, e.Key),
			})
		}
		if e.Class == ClassNeedsPartition && (e.Note == "" || strings.Contains(e.Note, "TODO")) {
			out = append(out, analysis.Finding{
				Rule: "vetunclassified",
				Pos:  ledgerPos(led, e),
				Message: fmt.Sprintf(
					"needs-partition entry %s %s has no explanation; the note must name the refactor that will localize it",
					e.Kind, e.Key),
			})
		}
	}
	analysis.SortFindings(out)
	return out
}

func ledgerName(led *Ledger) string {
	if led.Path == "" {
		return "the ledger"
	}
	return led.Path
}

func ledgerPos(led *Ledger, e *Entry) (pos token.Position) {
	pos.Filename = led.Path
	pos.Line = e.Line
	if pos.Line == 0 {
		pos.Line = 1
	}
	pos.Column = 1
	return pos
}

// clip keeps at most n items, replacing the tail with an ellipsis.
func clip(xs []string, n int) []string {
	if len(xs) <= n {
		return xs
	}
	return append(append([]string(nil), xs[:n]...), fmt.Sprintf("… %d more", len(xs)-n))
}
