// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used throughout the simulator. All simulator
// randomness (backoff windows, workload synthesis, tie-breaking) flows
// through this package so that a run is fully reproducible from its
// seed, and so that components can carry independent streams derived
// from a master seed.
package xrand

import "math"

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use New to derive well-mixed streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new independent Source from s. The derived stream does
// not overlap with s's future output in practice (different mixing
// constants applied to a fresh draw).
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent alpha, using inverse-CDF over precomputed weights is too
// costly per draw; instead this uses rejection-free power-law mapping:
// floor(n * u^(1/(1-alpha))) clipped, which approximates a Zipf rank
// distribution for alpha in (0, 1). For alpha >= 1 callers should use
// ZipfTable.
func (s *Source) Zipf(n int, alpha float64) int {
	if n <= 1 {
		return 0
	}
	u := s.Float64()
	// Map uniform u to a rank skewed toward 0.
	x := powFrac(u, 1.0/(1.0-clampAlpha(alpha)))
	k := int(x * float64(n))
	if k >= n {
		k = n - 1
	}
	return k
}

func clampAlpha(a float64) float64 {
	if a < 0 {
		return 0
	}
	if a > 0.95 {
		return 0.95
	}
	return a
}

func powFrac(u, e float64) float64 {
	if u <= 0 {
		return 0
	}
	return math.Pow(u, e)
}
