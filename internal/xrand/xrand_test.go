package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must not simply mirror the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent (%d collisions)", same)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.24 || frac > 0.26 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(64)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(11)
	const n = 100
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		k := s.Zipf(n, 0.8)
		if k < 0 || k >= n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("Zipf not skewed toward low ranks: first=%d last=%d", counts[0], counts[n-1])
	}
}

func TestZipfDegenerate(t *testing.T) {
	s := New(1)
	if got := s.Zipf(1, 0.5); got != 0 {
		t.Fatalf("Zipf(1) = %d", got)
	}
	if got := s.Zipf(0, 0.5); got != 0 {
		t.Fatalf("Zipf(0) = %d", got)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(123)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
