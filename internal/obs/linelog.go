package obs

import (
	"fmt"
	"io"

	"repro/internal/addrspace"
)

// LineLog is the single-line protocol debugging dump: every protocol
// event touching Line is rendered as one human-readable text line to W.
// It replaces the old coherence.TraceLine package global with a
// per-machine configuration hook (machine.Config.LineLog) and keeps the
// legacy output format byte for byte, so existing trace-reading
// workflows (examples/protocoltrace, widirsim -trace-line) still
// compare clean.
//
// All methods are nil-receiver safe: an unconfigured controller calls
// Printf on a nil *LineLog and returns after one comparison.
type LineLog struct {
	Line addrspace.Line
	W    io.Writer
}

// Printf writes one record if line matches the traced line.
func (t *LineLog) Printf(now uint64, line addrspace.Line, format string, args ...any) {
	if t == nil || t.W == nil || line != t.Line {
		return
	}
	fmt.Fprintf(t.W, "[%8d] line %#x: %s\n", now, uint64(line), fmt.Sprintf(format, args...))
}
