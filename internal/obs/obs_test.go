package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/addrspace"
)

func ev(cycle uint64, k Kind, node int32) Event {
	return Event{Cycle: cycle, Kind: k, Node: node, Other: NoNode, Line: NoLine}
}

func TestKindAndClassNamesComplete(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if k.Group() == "" {
			t.Errorf("kind %s belongs to no filter group", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
	for c := Class(0); c < classCount; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if !ClassWirelessStore.Wireless() || !ClassWirelessRMW.Wireless() {
		t.Error("wireless classes must report Wireless")
	}
	if ClassWiredLoad.Wireless() || ClassWiredStore.Wireless() || ClassWiredRMW.Wireless() {
		t.Error("wired classes must not report Wireless")
	}
}

func TestRingSinkBelowCapacity(t *testing.T) {
	r := NewRingSink(8)
	for i := uint64(0); i < 5; i++ {
		r.Emit(ev(i, EvMsgSend, 0))
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 5/0", r.Len(), r.Dropped())
	}
	got := r.Events()
	for i, e := range got {
		if e.Cycle != uint64(i) {
			t.Fatalf("event %d has cycle %d", i, e.Cycle)
		}
	}
}

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(4)
	for i := uint64(0); i < 10; i++ {
		r.Emit(ev(i, EvMsgSend, 0))
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped=%d, want 6", r.Dropped())
	}
	got := r.Events()
	want := []uint64{6, 7, 8, 9}
	for i, w := range want {
		if got[i].Cycle != w {
			t.Fatalf("Events()[%d].Cycle=%d, want %d (oldest first)", i, got[i].Cycle, w)
		}
	}
}

func TestRingSinkMinimumCapacity(t *testing.T) {
	r := NewRingSink(0)
	r.Emit(ev(1, EvJam, 2))
	r.Emit(ev(2, EvJam, 3))
	if r.Len() != 1 || r.Events()[0].Cycle != 2 {
		t.Fatalf("cap-0 ring should clamp to 1 and keep the newest event")
	}
}

func TestRingSinkEmitDoesNotAllocate(t *testing.T) {
	r := NewRingSink(64)
	e := Event{Cycle: 1, Kind: EvMsgSend, Node: 3, Other: 4, Line: 0x80, A: 5, B: 6}
	if n := testing.AllocsPerRun(1000, func() { r.Emit(e) }); n != 0 {
		t.Fatalf("RingSink.Emit allocates %.1f per call, want 0", n)
	}
}

func TestAppendJSONExactBytes(t *testing.T) {
	e := Event{Cycle: 42, Kind: EvTxnBegin, Node: 3, Other: -1, Line: 0x80, A: 1, B: 2}
	got := string(AppendJSON(nil, e))
	want := `{"cycle":42,"kind":"txn-begin","node":3,"other":-1,"line":"0x80","a":1,"b":2}`
	if got != want {
		t.Fatalf("AppendJSON:\n got %s\nwant %s", got, want)
	}
	e.Line = NoLine
	got = string(AppendJSON(nil, e))
	want = `{"cycle":42,"kind":"txn-begin","node":3,"other":-1,"line":"-","a":1,"b":2}`
	if got != want {
		t.Fatalf("AppendJSON NoLine:\n got %s\nwant %s", got, want)
	}
	// Every encoding must also be valid JSON.
	var m map[string]any
	if err := json.Unmarshal(AppendJSON(nil, e), &m); err != nil {
		t.Fatalf("AppendJSON output is not valid JSON: %v", err)
	}
}

func TestJSONLSinkStreamsAndReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := uint64(0); i < 3; i++ {
		s.Emit(ev(i, EvNACK, int32(i)))
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, fmt.Sprintf(`{"cycle":%d,"kind":"nack"`, i)) {
			t.Fatalf("line %d = %s", i, ln)
		}
	}
	// Steady-state emission should not allocate (buffer reused).
	e := ev(9, EvNACK, 1)
	var sink bytes.Buffer
	sink.Grow(1 << 20)
	js := NewJSONLSink(&sink)
	js.Emit(e) // warm the buffer
	if n := testing.AllocsPerRun(100, func() { js.Emit(e) }); n > 0.1 {
		t.Fatalf("JSONLSink.Emit allocates %.1f per call at steady state", n)
	}
}

type errWriter struct{ failed bool }

func (w *errWriter) Write(p []byte) (int, error) {
	w.failed = true
	return 0, fmt.Errorf("disk full")
}

func TestJSONLSinkStickyError(t *testing.T) {
	w := &errWriter{}
	s := NewJSONLSink(w)
	s.Emit(ev(1, EvJam, 0))
	if s.Err() == nil {
		t.Fatal("expected write error")
	}
	w.failed = false
	s.Emit(ev(2, EvJam, 0))
	if w.failed {
		t.Fatal("sink must stop writing after the first error")
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("")
	if err != nil || all != AllKinds {
		t.Fatalf("empty spec: got %v, %v", all, err)
	}
	set, err := ParseKinds("wnoc, txn")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{EvSlotGrant, EvCollision, EvJam, EvToneRaise, EvTxnBegin, EvTxnEnd} {
		if !set.Has(k) {
			t.Errorf("wnoc,txn should include %s", k)
		}
	}
	if set.Has(EvL1Miss) {
		t.Error("wnoc,txn must not include l1-miss")
	}
	set, err = ParseKinds("l1-fill")
	if err != nil || !set.Has(EvL1Fill) || set.Has(EvL1Miss) {
		t.Fatalf("individual kind name: got %v, %v", set, err)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestFilterMatch(t *testing.T) {
	f := NewFilter()
	e := Event{Cycle: 1, Kind: EvMsgSend, Node: 2, Other: 5, Line: 0x40}
	if !f.Match(e) {
		t.Fatal("default filter must match everything")
	}
	f.Node = 5
	if !f.Match(e) {
		t.Fatal("filter must match on Other too")
	}
	f.Node = 3
	if f.Match(e) {
		t.Fatal("node 3 must not match")
	}
	f = NewFilter()
	f.Line = 0x41
	if f.Match(e) {
		t.Fatal("line mismatch must fail")
	}
	f.Line = 0x40
	f.Kinds = KindSet(0).With(EvJam)
	if f.Match(e) {
		t.Fatal("kind mismatch must fail")
	}
	f.Kinds = f.Kinds.With(EvMsgSend)
	if !f.Match(e) {
		t.Fatal("full match expected")
	}
	kept := Filter{Kinds: KindSet(0).With(EvMsgSend), Node: NoNode, Line: NoLine}.
		Apply([]Event{e, ev(2, EvJam, 0)})
	if len(kept) != 1 || kept[0].Kind != EvMsgSend {
		t.Fatalf("Apply kept %v", kept)
	}
}

func spanPair(node int32, id, start, end uint64, cl Class, line addrspace.Line) []Event {
	return []Event{
		{Cycle: start, Kind: EvTxnBegin, Node: node, Other: NoNode, Line: line, A: id, B: uint64(cl)},
		{Cycle: end, Kind: EvTxnEnd, Node: node, Other: NoNode, Line: line, A: id, B: uint64(cl)},
	}
}

func TestBuildSpans(t *testing.T) {
	var events []Event
	events = append(events, spanPair(1, 1, 10, 30, ClassWiredLoad, 0x80)...)
	events = append(events, spanPair(2, 1, 5, 50, ClassWirelessStore, 0x90)...)
	// Begin without end (in flight at capture stop): dropped.
	events = append(events, Event{Cycle: 40, Kind: EvTxnBegin, Node: 3, A: 7, B: uint64(ClassWiredRMW)})
	// End without begin (begin evicted from a wrapped ring): dropped.
	events = append(events, Event{Cycle: 41, Kind: EvTxnEnd, Node: 4, A: 9, B: uint64(ClassWiredStore)})

	spans := BuildSpans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ordered by start cycle.
	if spans[0].Node != 2 || spans[0].Start != 5 || spans[0].End != 50 ||
		spans[0].Class != ClassWirelessStore || spans[0].Line != 0x90 {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Node != 1 || spans[1].Latency() != 20 || spans[1].Class != ClassWiredLoad {
		t.Fatalf("span[1] = %+v", spans[1])
	}
}

func TestBuildSpansSameIDDifferentNodes(t *testing.T) {
	var events []Event
	events = append(events, spanPair(0, 1, 0, 10, ClassWiredLoad, 0x10)...)
	events = append(events, spanPair(1, 1, 0, 20, ClassWiredStore, 0x20)...)
	spans := BuildSpans(events)
	if len(spans) != 2 {
		t.Fatalf("span ids are per-node; got %d spans, want 2", len(spans))
	}
	if spans[0].Node != 0 || spans[1].Node != 1 {
		t.Fatalf("tie on Start must order by Node: %+v", spans)
	}
}

func TestSummarizeSplitsByClass(t *testing.T) {
	var events []Event
	for i := uint64(0); i < 10; i++ {
		events = append(events, spanPair(0, i+1, i*100, i*100+40, ClassWiredLoad, 0x10)...)
	}
	for i := uint64(0); i < 5; i++ {
		events = append(events, spanPair(1, i+1, i*100, i*100+8, ClassWirelessStore, 0x20)...)
	}
	s := Summarize(BuildSpans(events))
	if s.Wired.Total() != 10 || s.Wireless.Total() != 5 {
		t.Fatalf("totals %d/%d, want 10/5", s.Wired.Total(), s.Wireless.Total())
	}
	if p := s.Wired.P50(); p < 32 || p > 48 {
		t.Errorf("wired P50=%.0f, want ~40", p)
	}
	if p := s.Wireless.P50(); p < 8 || p > 12 {
		t.Errorf("wireless P50=%.0f, want ~8", p)
	}
	var out strings.Builder
	s.Print(&out)
	if !strings.Contains(out.String(), "wired") || !strings.Contains(out.String(), "wireless") ||
		!strings.Contains(out.String(), "p99") {
		t.Fatalf("summary table missing rows:\n%s", out.String())
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	var events []Event
	events = append(events, spanPair(1, 1, 10, 30, ClassWiredLoad, 0x80)...)
	events = append(events,
		Event{Cycle: 12, Kind: EvMsgSend, Node: 1, Other: 4, Line: 0x80, A: 1, B: 2},
		Event{Cycle: 15, Kind: EvToneRaise, Node: NoNode, Other: NoNode, Line: NoLine, A: 1},
	)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Name != "wired-load" || e.Ts != 10 || e.Dur != 20 || e.Tid != 2 {
				t.Errorf("span event %+v", e)
			}
		case "i":
			instants++
			if e.Name == "tone-raise" && e.Tid != 0 {
				t.Errorf("chip-global event must land on tid 0, got %+v", e)
			}
		case "M":
			meta++
		}
	}
	if spans != 1 || instants != 2 || meta < 3 {
		t.Fatalf("spans=%d instants=%d meta=%d, want 1/2/>=3", spans, instants, meta)
	}
}

func TestWritePerfettoDeterministic(t *testing.T) {
	var events []Event
	for i := uint64(0); i < 20; i++ {
		node := int32(i % 4)
		events = append(events, spanPair(node, i+1, i, i+7, Class(i%uint64(classCount)), addrspace.Line(i))...)
		events = append(events, Event{Cycle: i, Kind: EvMsgRecv, Node: node, Other: (node + 1) % 4, Line: addrspace.Line(i)})
	}
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WritePerfetto must be byte-deterministic for the same capture")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	Tee{a, b}.Emit(ev(1, EvJam, 0))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("Tee must forward to every sink")
	}
}

func TestLineLogFormatAndNilSafety(t *testing.T) {
	var nilLog *LineLog
	nilLog.Printf(1, 8, "boom %d", 1) // must not panic
	(&LineLog{Line: 8}).Printf(1, 8, "no writer")

	var buf bytes.Buffer
	lg := &LineLog{Line: 8, W: &buf}
	lg.Printf(17, 9, "other line") // filtered out
	lg.Printf(17, 8, "hit %s", "x")
	want := "[      17] line 0x8: hit x\n"
	if buf.String() != want {
		t.Fatalf("LineLog output %q, want %q", buf.String(), want)
	}
}

func TestLatencyBinsStrictlyIncreasing(t *testing.T) {
	edges := LatencyBins()
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing at %d: %d <= %d", i, edges[i], edges[i-1])
		}
	}
	NewLatencyHistogram() // must not panic
}
