package obs

import (
	"fmt"
	"strings"

	"repro/internal/addrspace"
)

// KindSet is a bitset over the event vocabulary (kindCount <= 64).
type KindSet uint64

// With returns the set including k.
func (s KindSet) With(k Kind) KindSet { return s | 1<<k }

// Has reports membership.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// AllKinds matches every event kind.
const AllKinds = KindSet(1<<kindCount - 1)

// kindGroups names coarse event families for CLI filtering. Order is
// the presentation order of GroupNames.
//
//vet:local constant grouping table, never written after initialization
var kindGroups = []struct {
	name  string
	kinds []Kind
}{
	{"txn", []Kind{EvTxnBegin, EvTxnEnd}},
	{"cache", []Kind{EvL1Miss, EvL1Fill}},
	{"wstate", []Kind{EvWUpgrade, EvWDowngrade, EvWDecay, EvWInv, EvWirUpd, EvWFaultDemote}},
	{"wnoc", []Kind{EvSlotGrant, EvCollision, EvJam, EvToneRaise, EvToneLower, EvToneQuiet, EvTxCorrupt}},
	{"mesh", []Kind{EvMsgSend, EvMsgRecv, EvMeshLeg}},
	{"dir", []Kind{EvNACK}},
	{"cpu", []Kind{EvROBStall}},
}

// GroupNames returns the known group names in presentation order.
func GroupNames() []string {
	out := make([]string, len(kindGroups))
	for i, g := range kindGroups {
		out[i] = g.name
	}
	return out
}

// Group returns the group name the kind belongs to ("" if none).
func (k Kind) Group() string {
	for _, g := range kindGroups {
		for _, gk := range g.kinds {
			if gk == k {
				return g.name
			}
		}
	}
	return ""
}

// ParseKinds resolves a comma-separated list of group names and/or
// individual kind names ("wnoc,txn,l1-fill") to a KindSet. An empty
// spec selects everything.
func ParseKinds(spec string) (KindSet, error) {
	if spec == "" {
		return AllKinds, nil
	}
	var set KindSet
next:
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		for _, g := range kindGroups {
			if g.name == tok {
				for _, k := range g.kinds {
					set = set.With(k)
				}
				continue next
			}
		}
		for k := Kind(0); k < kindCount; k++ {
			if k.String() == tok {
				set = set.With(k)
				continue next
			}
		}
		return 0, fmt.Errorf("obs: unknown event class %q (groups: %s)",
			tok, strings.Join(GroupNames(), ", "))
	}
	return set, nil
}

// Filter selects a subset of events. Zero value selects everything;
// set Kinds, Node and/or Line to narrow.
type Filter struct {
	Kinds KindSet        // 0 = all kinds
	Node  int32          // NoNode = any; otherwise match Node or Other
	Line  addrspace.Line // NoLine = any
}

// NewFilter returns a match-everything filter.
func NewFilter() Filter {
	return Filter{Kinds: AllKinds, Node: NoNode, Line: NoLine}
}

// Match reports whether e passes the filter.
func (f Filter) Match(e Event) bool {
	if f.Kinds != 0 && !f.Kinds.Has(e.Kind) {
		return false
	}
	if f.Node != NoNode && e.Node != f.Node && e.Other != f.Node {
		return false
	}
	if f.Line != NoLine && e.Line != f.Line {
		return false
	}
	return true
}

// Apply returns the events passing the filter, preserving order.
func (f Filter) Apply(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if f.Match(e) {
			out = append(out, e)
		}
	}
	return out
}
