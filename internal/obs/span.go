package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/addrspace"
	"repro/internal/stats"
)

// Span is one stitched request: the interval between a request's
// EvTxnBegin and its matching EvTxnEnd on the same node.
type Span struct {
	Node  int32
	ID    uint64 // per-node span sequence number
	Class Class
	Line  addrspace.Line
	Start uint64 // begin cycle
	End   uint64 // completion cycle
}

// Latency returns the span length in cycles.
func (s Span) Latency() uint64 { return s.End - s.Start }

type spanKey struct {
	node int32
	id   uint64
}

// BuildSpans stitches TxnBegin/TxnEnd pairs (matched on node and span
// id) into completed spans, ordered by (Start, Node, ID). Begins
// without a matching end — requests still in flight when capture
// stopped, or whose begin was overwritten in a wrapped ring — are
// dropped; ends without a begin likewise.
func BuildSpans(events []Event) []Span {
	open := make(map[spanKey]Event)
	var out []Span
	for _, e := range events {
		switch e.Kind {
		case EvTxnBegin:
			open[spanKey{e.Node, e.A}] = e
		case EvTxnEnd:
			k := spanKey{e.Node, e.A}
			b, ok := open[k]
			if !ok {
				continue
			}
			delete(open, k)
			out = append(out, Span{
				Node:  e.Node,
				ID:    e.A,
				Class: Class(e.B),
				Line:  b.Line,
				Start: b.Cycle,
				End:   e.Cycle,
			})
		default:
			// Span stitching consumes only the Txn pair; every other
			// event kind passes through untouched.
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})
	return out
}

// LatencyBins returns the histogram edges used for request-latency
// distributions: 0, 1, then 2^k and 1.5*2^k up to 2^20 cycles. The
// half-steps keep the relative interpolation error of percentile
// estimates bounded (~±17%) across five decades.
func LatencyBins() []int {
	edges := []int{0, 1}
	for v := 2; v <= 1<<20; v *= 2 {
		edges = append(edges, v)
		if v >= 4 {
			edges = append(edges, v+v/2)
		}
	}
	return edges
}

// NewLatencyHistogram builds an empty request-latency histogram.
func NewLatencyHistogram() *stats.Histogram {
	return stats.NewHistogram(LatencyBins()...)
}

// LatencySummary aggregates span latencies per protocol path.
type LatencySummary struct {
	Wired    *stats.Histogram
	Wireless *stats.Histogram
}

// Summarize bins the spans' latencies by wired/wireless class.
func Summarize(spans []Span) *LatencySummary {
	s := &LatencySummary{Wired: NewLatencyHistogram(), Wireless: NewLatencyHistogram()}
	for _, sp := range spans {
		h := s.Wired
		if sp.Class.Wireless() {
			h = s.Wireless
		}
		h.Observe(int(sp.Latency()))
	}
	return s
}

// Print renders the summary as a small table of per-class counts and
// P50/P95/P99 estimates.
func (s *LatencySummary) Print(w io.Writer) {
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "class", "spans", "p50", "p95", "p99")
	for _, row := range []struct {
		name string
		h    *stats.Histogram
	}{{"wired", s.Wired}, {"wireless", s.Wireless}} {
		fmt.Fprintf(w, "%-10s %10d %10.0f %10.0f %10.0f\n",
			row.name, row.h.Total(), row.h.P50(), row.h.P95(), row.h.P99())
	}
}
