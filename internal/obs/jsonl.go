package obs

import (
	"io"
	"strconv"
)

// AppendJSON appends the event's canonical JSONL encoding (one object,
// no trailing newline) to dst and returns the extended slice. The
// encoding is hand-rolled so it is byte-stable across runs and Go
// versions: fixed key order, base-10 integers, lines rendered as 0x-hex
// strings ("-" when the event has no line).
func AppendJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"cycle":`...)
	dst = strconv.AppendUint(dst, e.Cycle, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","node":`...)
	dst = strconv.AppendInt(dst, int64(e.Node), 10)
	dst = append(dst, `,"other":`...)
	dst = strconv.AppendInt(dst, int64(e.Other), 10)
	dst = append(dst, `,"line":`...)
	if e.Line == NoLine {
		dst = append(dst, `"-"`...)
	} else {
		dst = append(dst, `"0x`...)
		dst = strconv.AppendUint(dst, uint64(e.Line), 16)
		dst = append(dst, '"')
	}
	dst = append(dst, `,"a":`...)
	dst = strconv.AppendUint(dst, e.A, 10)
	dst = append(dst, `,"b":`...)
	dst = strconv.AppendUint(dst, e.B, 10)
	return append(dst, '}')
}

// JSONLSink streams events to W, one JSON object per line. The encode
// buffer is reused across events, so steady-state emission does not
// allocate; write errors are sticky and reported by Err (the cycle loop
// cannot unwind an error mid-simulation).
type JSONLSink struct {
	W   io.Writer
	buf []byte
	err error
}

// NewJSONLSink returns a streaming sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{W: w, buf: make([]byte, 0, 128)}
}

// Emit writes one line.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSON(s.buf[:0], e)
	s.buf = append(s.buf, '\n')
	if _, err := s.W.Write(s.buf); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// WriteJSONL writes a captured event slice as JSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	s := NewJSONLSink(w)
	for _, e := range events {
		s.Emit(e)
	}
	return s.Err()
}
