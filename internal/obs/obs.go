// Package obs is the simulator's structured observability layer: a
// typed, cycle-stamped event schema covering the coherence protocol,
// the wireless and wired NoCs, the private caches and the cores, plus
// the sinks that capture those events and the analyses (spans, latency
// summaries, Perfetto export) built on top of them.
//
// Design contract (DESIGN.md §11):
//
//   - Events carry engine cycles only, never the wall clock. The
//     package is part of the determinism lint set (widir-lint), so a
//     time.Now() anywhere in an event path fails `make check`.
//   - Emission is allocation-free. Event is a small pointer-free value
//     type; every instrumentation site is guarded by a nil check on the
//     configured Sink, so a machine built without tracing pays one
//     predictable branch per site and allocates nothing.
//   - Capture is deterministic: the same seed produces byte-identical
//     event streams, which the machine package's tests assert.
package obs

import "repro/internal/addrspace"

// Kind identifies one event type in the schema.
type Kind uint8

// The event vocabulary. TxnBegin/TxnEnd bracket one core memory request
// from its L1 miss (or wireless-store issue) to its completion; the
// remaining kinds are instants that explain where the cycles of those
// spans went.
const (
	// EvTxnBegin opens a request span. A = span id (per-node sequence),
	// B = protocol Class.
	EvTxnBegin Kind = iota
	// EvTxnEnd closes the span opened with the same (Node, A). B =
	// protocol Class (repeated so the pair is self-checking).
	EvTxnEnd
	// EvL1Miss marks a wired request leaving the L1 for the home
	// directory (Other). A = span id, B = request id.
	EvL1Miss
	// EvL1Fill marks a data grant installing in the L1. A = message
	// type, B = installed cache state.
	EvL1Fill
	// EvWUpgrade is the directory's S->W commit. A = wireless sharer
	// count after the transition.
	EvWUpgrade
	// EvWDowngrade is the directory's W->S commit. A = surviving sharer
	// count.
	EvWDowngrade
	// EvWDecay is an L1 self-invalidating a W line after UpdateCountMax
	// unread updates (Table I W->I decay).
	EvWDecay
	// EvWInv is the directory evicting a W entry and broadcasting
	// WirInv.
	EvWInv
	// EvWirUpd is a wireless store serializing (the writer's update is
	// guaranteed on the air). A = span id, B = written word index.
	EvWirUpd
	// EvNACK is the directory bouncing a request from node Other.
	EvNACK
	// EvSlotGrant is a clean wireless-channel acquisition by Node. A =
	// cycle the medium frees again.
	EvSlotGrant
	// EvCollision is one starter losing a same-cycle collision. A =
	// retry count so far.
	EvCollision
	// EvJam is a transmission rejected by a directory jamming the line.
	EvJam
	// EvToneRaise is a node raising the tone channel (ToneAck hold).
	// A = holders after the raise.
	EvToneRaise
	// EvToneLower releases one tone hold. A = holders remaining.
	EvToneLower
	// EvToneQuiet is the tone channel falling silent with waiters; the
	// pending ToneAck operations complete. A = waiters released.
	EvToneQuiet
	// EvMsgSend is a coherence message entering the wired NoC for node
	// Other. A = message type, B = request id.
	EvMsgSend
	// EvMsgRecv is a coherence message delivered by the wired NoC from
	// node Other. A = message type, B = request id.
	EvMsgRecv
	// EvMeshLeg is one packet routed by the packet-level mesh. A = hop
	// count, B = arrival cycle.
	EvMeshLeg
	// EvROBStall is one completed memory-stall episode on a core: Cycle
	// is the episode start, A its length in cycles.
	EvROBStall
	// EvTxCorrupt is a wireless transmission corrupted by injected
	// channel faults (modeled BER): the transfer is lost and the
	// sender retries with backoff, or gives up after bounded retries.
	// A = retry count so far, B = 1 when the sender exhausted its
	// retries (the transmission failed for good).
	EvTxCorrupt
	// EvWFaultDemote is the directory demoting a W line to wired S
	// after K consecutive failed broadcasts for the line (graceful
	// degradation under sustained channel faults). A = consecutive
	// failures observed.
	EvWFaultDemote

	kindCount // number of kinds; keep last
)

//vet:local constant name table, never written after initialization
var kindNames = [kindCount]string{
	EvTxnBegin:     "txn-begin",
	EvTxnEnd:       "txn-end",
	EvL1Miss:       "l1-miss",
	EvL1Fill:       "l1-fill",
	EvWUpgrade:     "w-upgrade",
	EvWDowngrade:   "w-downgrade",
	EvWDecay:       "w-decay",
	EvWInv:         "w-inv",
	EvWirUpd:       "wir-upd",
	EvNACK:         "nack",
	EvSlotGrant:    "slot-grant",
	EvCollision:    "collision",
	EvJam:          "jam",
	EvToneRaise:    "tone-raise",
	EvToneLower:    "tone-lower",
	EvToneQuiet:    "tone-quiet",
	EvMsgSend:      "msg-send",
	EvMsgRecv:      "msg-recv",
	EvMeshLeg:      "mesh-leg",
	EvROBStall:     "rob-stall",
	EvTxCorrupt:    "tx-corrupt",
	EvWFaultDemote: "w-fault-demote",
}

// String returns the kind's stable wire name (used in JSONL and
// Perfetto output and accepted by KindsByGroup filters).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Class labels the protocol path a request span took. It rides in the
// A/B payload of EvTxnBegin/EvTxnEnd.
type Class uint8

// The span classes. Wired classes complete through the directory over
// the mesh; wireless classes complete by broadcasting a WirUpd on the
// wireless data channel (W state).
const (
	ClassWiredLoad Class = iota
	ClassWiredStore
	ClassWiredRMW
	ClassWirelessStore
	ClassWirelessRMW
	classCount
)

//vet:local constant name table, never written after initialization
var classNames = [classCount]string{
	ClassWiredLoad:     "wired-load",
	ClassWiredStore:    "wired-store",
	ClassWiredRMW:      "wired-rmw",
	ClassWirelessStore: "wireless-store",
	ClassWirelessRMW:   "wireless-rmw",
}

// String returns the class's stable name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Wireless reports whether the class completed over the wireless
// channel.
func (c Class) Wireless() bool {
	return c == ClassWirelessStore || c == ClassWirelessRMW
}

// NoLine marks an event not tied to a cache line.
const NoLine = ^addrspace.Line(0)

// NoNode marks an absent node field (chip-global events, no peer).
const NoNode int32 = -1

// Event is one cycle-stamped record. It is a flat value type with no
// pointers: passing it to Sink.Emit never heap-allocates, which keeps
// enabled-path overhead bounded and the disabled path (nil sink, branch
// not taken) free.
type Event struct {
	Cycle uint64         // engine cycle, never wall-clock
	Kind  Kind           // event type
	Node  int32          // primary node (emitter), or NoNode
	Other int32          // peer node (dst/src/requester), or NoNode
	Line  addrspace.Line // cache line concerned, or NoLine
	A, B  uint64         // kind-specific payload (see Kind docs)
}

// Sink consumes events. Implementations must not retain pointers into
// the caller (Event is a value) and must be cheap: Emit runs inside the
// simulator's cycle loop. Sinks are not safe for concurrent use; the
// machine emits from its single-threaded event loop.
type Sink interface {
	Emit(e Event)
}

// RingSink keeps the most recent Cap events in a fixed ring. Emit is
// allocation-free after construction; when the ring wraps, the oldest
// events are dropped and counted.
type RingSink struct {
	buf []Event
	n   uint64 // total events ever emitted
}

// NewRingSink returns a ring holding the last cap events (cap >= 1).
func NewRingSink(cap int) *RingSink {
	if cap < 1 {
		cap = 1
	}
	return &RingSink{buf: make([]Event, cap)}
}

// Emit records the event, overwriting the oldest when full.
func (r *RingSink) Emit(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// Len returns the number of retained events.
func (r *RingSink) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten.
func (r *RingSink) Dropped() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the retained events in emission order (oldest first).
func (r *RingSink) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.n <= uint64(len(r.buf)) {
		return append(out, r.buf[:r.n]...)
	}
	start := r.n % uint64(len(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Tee fans one event out to several sinks in order.
type Tee []Sink

// Emit forwards to every sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
