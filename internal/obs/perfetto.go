package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"repro/internal/addrspace"
)

// WritePerfetto renders the capture as Chrome trace-event JSON (the
// format ui.perfetto.dev and chrome://tracing load). Cycles map to
// microseconds 1:1, so Perfetto's "µs" axis reads as cycles. Completed
// request spans become duration ("X") events on the owning node's
// track; every other kind becomes a thread-scoped instant ("i"). The
// output is byte-deterministic: fixed field order, tracks emitted in
// ascending tid order, events in capture order.
func WritePerfetto(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(buf []byte) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.Write(buf)
	}

	// Track metadata. tid 0 is the chip-global track (events with no
	// node); node n maps to tid n+1.
	seen := map[int32]bool{}
	var tids []int32
	note := func(n int32) {
		t := n + 1
		if n == NoNode {
			t = 0
		}
		if !seen[t] {
			seen[t] = true
			tids = append(tids, t)
		}
	}
	for _, e := range events {
		note(e.Node)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	var buf []byte
	emit([]byte(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"widir-sim"}}`))
	for _, t := range tids {
		buf = append(buf[:0], `{"name":"thread_name","ph":"M","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, int64(t), 10)
		buf = append(buf, `,"args":{"name":"`...)
		if t == 0 {
			buf = append(buf, `chip`...)
		} else {
			buf = append(buf, `node `...)
			buf = strconv.AppendInt(buf, int64(t-1), 10)
		}
		buf = append(buf, `"}}`...)
		emit(buf)
	}

	for _, sp := range BuildSpans(events) {
		buf = append(buf[:0], `{"name":"`...)
		buf = append(buf, sp.Class.String()...)
		buf = append(buf, `","cat":"txn","ph":"X","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, int64(sp.Node)+1, 10)
		buf = append(buf, `,"ts":`...)
		buf = strconv.AppendUint(buf, sp.Start, 10)
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendUint(buf, sp.Latency(), 10)
		buf = append(buf, `,"args":{"line":"`...)
		buf = appendLine(buf, sp.Line)
		buf = append(buf, `","span":`...)
		buf = strconv.AppendUint(buf, sp.ID, 10)
		buf = append(buf, `}}`...)
		emit(buf)
	}

	for _, e := range events {
		if e.Kind == EvTxnBegin || e.Kind == EvTxnEnd {
			continue // represented by the spans above
		}
		tid := int64(e.Node) + 1
		if e.Node == NoNode {
			tid = 0
		}
		buf = append(buf[:0], `{"name":"`...)
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, `","cat":"`...)
		buf = append(buf, e.Kind.Group()...)
		buf = append(buf, `","ph":"i","s":"t","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, tid, 10)
		buf = append(buf, `,"ts":`...)
		buf = strconv.AppendUint(buf, e.Cycle, 10)
		buf = append(buf, `,"args":{"line":"`...)
		buf = appendLine(buf, e.Line)
		buf = append(buf, `","other":`...)
		buf = strconv.AppendInt(buf, int64(e.Other), 10)
		buf = append(buf, `,"a":`...)
		buf = strconv.AppendUint(buf, e.A, 10)
		buf = append(buf, `,"b":`...)
		buf = strconv.AppendUint(buf, e.B, 10)
		buf = append(buf, `}}`...)
		emit(buf)
	}

	bw.WriteString(`],"displayTimeUnit":"ns"}`)
	bw.WriteByte('\n')
	return bw.Flush()
}

// appendLine renders a line as 0x-hex, "-" when absent (the same
// convention as the JSONL encoding).
func appendLine(dst []byte, l addrspace.Line) []byte {
	if l == NoLine {
		return append(dst, '-')
	}
	dst = append(dst, `0x`...)
	return strconv.AppendUint(dst, uint64(l), 16)
}
