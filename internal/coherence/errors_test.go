package coherence

import (
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// TestHomeProtocolErrorNamesStates is a regression test for
// protocol-error provenance: a home-side ProtocolError must render the
// directory state and the offending message by NAME (state=DO, InvAck),
// never as raw enum numbers, so a dump is readable without consulting
// the const blocks.
func TestHomeProtocolErrorNamesStates(t *testing.T) {
	e := newMockEnv(4)
	line := addrspace.Line(8)
	e.complete(t, 1, &MemRequest{Addr: line.Base()}) // entry now DO, owner 1, idle

	h := e.home(line)
	h.HandleWired(e.now, &Msg{Type: MsgInvAck, Line: line, Src: 2})
	pe := e.protoErr
	if pe == nil {
		t.Fatal("stray InvAck did not report a protocol error")
	}
	if pe.Ctrl != "home" {
		t.Fatalf("Ctrl = %q, want home", pe.Ctrl)
	}
	msg := pe.Error()
	if !strings.Contains(msg, "InvAck") {
		t.Errorf("error %q does not name the offending message InvAck", msg)
	}
	if !strings.Contains(pe.Dump, "state=DO") {
		t.Errorf("dump %q does not name the directory state DO", pe.Dump)
	}
	for _, raw := range []string{"MsgType(", "DirState(", "txn("} {
		if strings.Contains(msg, raw) {
			t.Errorf("error %q leaks a raw enum number (%s...)", msg, raw)
		}
	}
}

// TestL1ProtocolErrorNamesStates is the L1-side counterpart: an Inv
// delivered against an Exclusive line must report with the cache state
// and message named (E, Inv), not numbered.
func TestL1ProtocolErrorNamesStates(t *testing.T) {
	e := newMockEnv(4)
	line := addrspace.Line(8)
	e.complete(t, 1, &MemRequest{Addr: line.Base()})
	if ln := e.l1s[1].Cache().Lookup(line); ln == nil || ln.State != cache.Exclusive {
		t.Fatalf("setup: line not Exclusive at core 1: %+v", ln)
	}

	e.l1s[1].HandleWired(e.now, &Msg{Type: MsgInv, Line: line, Src: int(uint64(line) % uint64(e.nodes))})
	pe := e.protoErr
	if pe == nil {
		t.Fatal("Inv against an Exclusive line did not report a protocol error")
	}
	if pe.Ctrl != "l1" {
		t.Fatalf("Ctrl = %q, want l1", pe.Ctrl)
	}
	msg := pe.Error()
	if !strings.Contains(msg, "Inv") {
		t.Errorf("error %q does not name the offending message Inv", msg)
	}
	if !strings.Contains(msg, "held in E") {
		t.Errorf("error %q does not name the cache state E", msg)
	}
	if !strings.Contains(pe.Dump, "state=E") {
		t.Errorf("dump %q does not name the cache state", pe.Dump)
	}
	for _, raw := range []string{"MsgType(", "State("} {
		if strings.Contains(msg, raw) {
			t.Errorf("error %q leaks a raw enum number (%s...)", msg, raw)
		}
	}
}
