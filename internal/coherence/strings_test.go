package coherence

import (
	"strings"
	"testing"
)

// The one-past-last member of each enum. Adding a member without
// extending its String() (and these sentinels) fails the tests below.
const (
	endMsgType   = MsgMemWrite + 1
	endDirState  = DirWireless + 1
	endTxnKind   = txEvict + 1
	endProtocol  = WiDir + 1
	endDirScheme = DirCV + 1
)

// TestStringExhaustive requires every member of every protocol enum to
// render a real name — protocol-error dumps and traces embed these, and
// a raw "MsgType(17)" in a dump means a member was added without a
// name. One past the last member must hit the numeric fallback, which
// both checks the fallback path and pins the enum size the test
// believes in.
func TestStringExhaustive(t *testing.T) {
	cases := []struct {
		enum     string
		n        int // member count
		name     func(int) string
		fallback string // prefix of the out-of-range rendering
	}{
		{"MsgType", int(endMsgType), func(i int) string { return MsgType(i).String() }, "MsgType("},
		{"DirState", int(endDirState), func(i int) string { return DirState(i).String() }, "DirState("},
		{"txnKind", int(endTxnKind), func(i int) string { return txnKind(i).String() }, "txn("},
		{"Protocol", int(endProtocol), func(i int) string { return Protocol(i).String() }, ""},
		{"DirScheme", int(endDirScheme), func(i int) string { return DirScheme(i).String() }, ""},
	}
	for _, c := range cases {
		seen := make(map[string]int, c.n)
		for i := 0; i < c.n; i++ {
			got := c.name(i)
			if got == "" || (c.fallback != "" && strings.HasPrefix(got, c.fallback)) {
				t.Errorf("%s(%d).String() = %q: member has no name", c.enum, i, got)
			}
			if prev, dup := seen[got]; dup {
				t.Errorf("%s: members %d and %d share the name %q", c.enum, prev, i, got)
			}
			seen[got] = i
		}
		if c.fallback != "" {
			if got := c.name(c.n); !strings.HasPrefix(got, c.fallback) {
				t.Errorf("%s(%d).String() = %q, want the %q fallback — enum grew; extend String() and the end sentinel",
					c.enum, c.n, got, c.fallback)
			}
		}
	}
}

// TestMsgNamesTableDense requires the msgNames table to have an entry
// for every MsgType; a gap would surface as "" at the index.
func TestMsgNamesTableDense(t *testing.T) {
	if len(msgNames) != int(endMsgType) {
		t.Fatalf("msgNames has %d entries, want %d (one per MsgType member)", len(msgNames), endMsgType)
	}
	for i, name := range msgNames {
		if name == "" {
			t.Errorf("msgNames[%d] (%s) is empty", i, MsgType(i))
		}
	}
}
