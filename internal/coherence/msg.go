// Package coherence implements the cache coherence protocols: the
// Baseline invalidation-based MESI directory protocol with Dir_3B
// limited pointers + broadcast bit, and WiDir, which augments it with
// the Wireless Shared (W) state, the Jamming and ToneAck primitives,
// and the wireless transitions of the paper's Tables I and II.
//
// The package contains two controllers — the private-cache (L1)
// controller and the home directory controller embedded in each LLC
// slice — plus the message vocabulary they exchange over the wired mesh
// and the wireless channel.
package coherence

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/engine"
)

// Protocol selects which coherence protocol a machine runs.
type Protocol int

// The two protocols under evaluation.
const (
	// Baseline is the conventional Dir_3B MESI directory protocol over
	// the wired NoC only.
	Baseline Protocol = iota
	// WiDir augments Baseline with the Wireless (W) state.
	WiDir
)

// String names the protocol as in the paper.
func (p Protocol) String() string {
	if p == WiDir {
		return "WiDir"
	}
	return "Baseline"
}

// MsgType enumerates the wired and wireless protocol messages.
type MsgType uint8

// Wired request/response vocabulary (conventional MESI directory) plus
// the WiDir additions from Tables I and II.
const (
	// Core -> Home requests.
	MsgGetS MsgType = iota // read miss
	MsgGetX                // write miss / upgrade (IsSharer set when upgrading)

	// Home -> Core responses.
	MsgDataS   // data grant, Shared
	MsgDataE   // data grant, Exclusive (MESI clean-exclusive)
	MsgDataM   // data grant, Modified (ownership)
	MsgNACK    // bounce: directory entry busy, retry later
	MsgWirUpgr // WiDir: data + "this line is Wireless now" (NeedAck selects Table I case)

	// Home -> Core coherence actions.
	MsgInv     // invalidate your copy, ack home
	MsgFwdGetS // you own this line: send data to Requester and copy back to home
	MsgFwdGetX // you own this line: send data+ownership to Requester
	MsgRecall  // home is evicting the entry: invalidate, return data if dirty

	// Core -> Home responses and notifications.
	MsgInvAck
	MsgCopyBack   // owner's data copy-back after FwdGetS (also downgrades owner to S)
	MsgXferAck    // requester's ack after receiving ownership via FwdGetX
	MsgRecallAck  // response to Recall (HasData set when the line was dirty)
	MsgPutS       // eviction notice of a Shared line
	MsgPutE       // eviction notice of a clean-Exclusive line
	MsgPutM       // eviction writeback of a Modified line (carries data)
	MsgPutW       // WiDir: core left the wireless sharer group (Table I W->I)
	MsgWirUpgrAck // WiDir: ack of a WirUpgr that needed one (Table II W->W case 1)
	MsgWirDwgrAck // WiDir: wired ack of a wireless WirDwgr, carries core ID

	// Home -> Core put acknowledgment (releases the victim buffer entry).
	MsgPutAck

	// Home -> Core: the GetX was discarded per Table II W->W case 2 (a
	// stale upgrade against a W entry). The requester normally resolved
	// via the BrWirUpgr already; if not (it lost the line before the
	// broadcast), it re-requests as a non-sharer.
	MsgWDiscard

	// Core -> Core (owner-to-requester data transfers).
	MsgDataOwnerS // data from owner, install Shared
	MsgDataOwnerM // data+ownership from owner, install Modified

	// Memory controller traffic.
	MsgMemRead
	MsgMemData
	MsgMemWrite
)

//vet:local constant name table, never written after initialization
var msgNames = [...]string{
	MsgGetS: "GetS", MsgGetX: "GetX",
	MsgDataS: "DataS", MsgDataE: "DataE", MsgDataM: "DataM",
	MsgNACK: "NACK", MsgWirUpgr: "WirUpgr",
	MsgInv: "Inv", MsgFwdGetS: "FwdGetS", MsgFwdGetX: "FwdGetX", MsgRecall: "Recall",
	MsgInvAck: "InvAck", MsgCopyBack: "CopyBack", MsgXferAck: "XferAck",
	MsgRecallAck: "RecallAck",
	MsgPutS:      "PutS", MsgPutE: "PutE", MsgPutM: "PutM", MsgPutW: "PutW",
	MsgWirUpgrAck: "WirUpgrAck", MsgWirDwgrAck: "WirDwgrAck", MsgPutAck: "PutAck",
	MsgWDiscard:   "WDiscard",
	MsgDataOwnerS: "DataOwnerS", MsgDataOwnerM: "DataOwnerM",
	MsgMemRead: "MemRead", MsgMemData: "MemData", MsgMemWrite: "MemWrite",
}

// String returns the protocol name of the message type.
func (t MsgType) String() string {
	if int(t) < len(msgNames) && msgNames[t] != "" {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// CarriesData reports whether the wired message includes a full cache
// line (which sizes the mesh packet at data rather than control width).
func (t MsgType) CarriesData() bool {
	switch t {
	case MsgDataS, MsgDataE, MsgDataM, MsgWirUpgr, MsgCopyBack, MsgPutM,
		MsgDataOwnerS, MsgDataOwnerM, MsgMemData, MsgMemWrite, MsgRecallAck:
		return true
	default:
		return false // control-only messages: requests, acks, notices
	}
}

// Msg is one wired protocol message.
type Msg struct {
	Type      MsgType
	Line      addrspace.Line
	Src       int // sending node
	Requester int // original requester for forwarded transactions
	// Port is the sink the message is addressed to at the destination
	// node. The machine stamps it at send time and dispatches on it at
	// delivery, so a *Msg rides the mesh as the packet payload directly
	// (a pointer in an interface) instead of inside a boxed envelope.
	Port PortKind
	// ReqID matches responses to the request they answer. Every request
	// receives exactly one response (grant, NACK or WDiscard); a grant
	// whose ReqID does not match the requester's current outstanding
	// request answers an abandoned request and is applied idempotently
	// without completing anything.
	ReqID    uint64
	IsSharer bool
	NeedAck  bool // WirUpgr: requester must reply WirUpgrAck (Table II W->W case 1)
	HasData  bool
	Words    [addrspace.WordsPerLine]uint64
}

// Bytes returns the packet payload size used for mesh flit accounting:
// an 8-byte control header, plus the line for data-bearing messages.
func (m *Msg) Bytes() int {
	if m.Type.CarriesData() && m.HasData {
		return 8 + addrspace.LineSize
	}
	return 8
}

// Wireless payloads (broadcast on the data channel). Each carries the
// line it concerns so that jamming can filter transmissions.

// BrWirUpgr announces a directory's S->W transition (Table II S->W) and
// starts the global ToneAck operation.
type BrWirUpgr struct {
	Line addrspace.Line
	Home int
}

// WirUpd is a fine-grain wireless write: one word of one line.
type WirUpd struct {
	Line   addrspace.Line
	Word   int
	Value  uint64
	Writer int
}

// WirDwgr asks the remaining wireless sharers to downgrade to Shared
// and identify themselves (Table II W->S).
type WirDwgr struct {
	Line addrspace.Line
	Home int
}

// WirInv invalidates a wirelessly-shared line because its directory
// entry is being evicted (Table II W->I).
type WirInv struct {
	Line addrspace.Line
	Home int
}

// PortKind identifies which controller at a node receives a wired
// message.
type PortKind uint8

// The three wired message sinks at a node.
const (
	PortL1 PortKind = iota
	PortHome
	PortMC
)

// Env is the machine context the controllers run in: time, the two
// networks, address mapping, and delayed self-calls. The machine
// implements it.
type Env interface {
	// Now returns the current cycle.
	Now() uint64
	// SendWired injects a wired message; bytes sizes the packet.
	SendWired(src, dst int, port PortKind, m *Msg)
	// TransmitWireless queues a broadcast; done fires at the
	// serialization point, abort on a jam. Privileged transmissions (a
	// directory's own protocol broadcasts) pass through jamming.
	// Returns a cancel function that removes the request if it has not
	// yet serialized.
	TransmitWireless(sender int, line addrspace.Line, payload any, privileged bool, done func(now uint64), abort func(now uint64, jammed bool)) (cancel func() bool)
	// WirelessActive reports an in-flight (guaranteed) transmission
	// concerning the line; directories defer data snapshots past it.
	WirelessActive(l addrspace.Line) bool
	// Jam/Unjam drive the Selective Data-Channel Jamming primitive on
	// behalf of the owning directory's node.
	Jam(l addrspace.Line, owner int)
	Unjam(l addrspace.Line, owner int)
	// RaiseTone/LowerTone drive a node's tone antenna; WaitToneSilent
	// registers the initiator's completion callback.
	RaiseTone()
	LowerTone()
	WaitToneSilent(fn func(now uint64))
	// After schedules fn at Now()+delay.
	After(delay uint64, fn func(now uint64))
	// AfterRunner schedules r.Run at Now()+delay in the same ordering
	// domain as After; controllers use it with pooled runner structs to
	// keep steady-state completion paths allocation-free.
	AfterRunner(delay uint64, r engine.Runner)
	// HomeOf / MCOf map lines to their home slice and memory controller.
	HomeOf(l addrspace.Line) int
	MCOf(l addrspace.Line) int
	// Nodes returns the machine's node count.
	Nodes() int
	// ReportProtocolError surfaces a detected protocol violation. The
	// machine latches the first report and fails the run from its cycle
	// loop; the reporting controller returns without advancing, so state
	// after a report is undefined but the process survives to diagnose.
	ReportProtocolError(e *ProtocolError)
}
