package coherence

import (
	"fmt"

	"repro/internal/addrspace"
)

// ProtocolError is a detected coherence-protocol violation or a stuck
// transaction: an ack nobody expected, a state a handler cannot be in,
// or a transaction older than the machine's age limit. Controllers
// report it through Env.ReportProtocolError instead of panicking, so a
// bad run — typically provoked by injected faults or a protocol bug —
// surfaces as a diagnosable error from machine.Run rather than a
// process crash.
type ProtocolError struct {
	Cycle  uint64         // cycle the violation was detected
	Node   int            // controller's node id
	Ctrl   string         // "home" or "l1"
	Line   addrspace.Line // line concerned (NoLine-free: always set)
	Reason string         // what went wrong
	Dump   string         // controller state dump at detection time
}

// Error renders the violation with its state dump.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("coherence: protocol error at cycle %d, %s %d, line %#x: %s [%s]",
		e.Cycle, e.Ctrl, e.Node, e.Line, e.Reason, e.Dump)
}

// String names the transaction kind for diagnostics.
func (k txnKind) String() string {
	switch k {
	case txNone:
		return "none"
	case txFetchMem:
		return "fetch-mem"
	case txFwdGetS:
		return "fwd-gets"
	case txFwdGetX:
		return "fwd-getx"
	case txInvAll:
		return "inv-all"
	case txSToW:
		return "s-to-w"
	case txWAddSharer:
		return "w-add-sharer"
	case txWToS:
		return "w-to-s"
	case txEvict:
		return "evict"
	}
	return fmt.Sprintf("txn(%d)", uint8(k))
}

// TxnInfo describes one in-flight transaction for watchdog and
// Diagnose output.
type TxnInfo struct {
	Node     int
	Ctrl     string // "home" or "l1"
	Line     addrspace.Line
	State    string // directory state (home) or request kind (l1)
	Kind     string // transaction kind
	Started  uint64 // cycle the transaction began
	AcksLeft int
	Waiting  []int // nodes whose responses are outstanding (when tracked)
}

// Age returns how long the transaction has been in flight at now.
func (t TxnInfo) Age(now uint64) uint64 {
	if now < t.Started {
		return 0
	}
	return now - t.Started
}

// String renders the transaction for watchdog output.
func (t TxnInfo) String() string {
	return fmt.Sprintf("%s %d line=%#x state=%s kind=%s started=%d acksLeft=%d waiting=%v",
		t.Ctrl, t.Node, t.Line, t.State, t.Kind, t.Started, t.AcksLeft, t.Waiting)
}

// Older reports whether t began strictly before u, breaking start-cycle
// ties by (ctrl, node, line) so selection among equals is deterministic.
func (t TxnInfo) Older(u TxnInfo) bool {
	if t.Started != u.Started {
		return t.Started < u.Started
	}
	if t.Ctrl != u.Ctrl {
		return t.Ctrl < u.Ctrl
	}
	if t.Node != u.Node {
		return t.Node < u.Node
	}
	return t.Line < u.Line
}
