package coherence

import (
	"sort"

	"repro/internal/addrspace"
)

// lineTable is a flat, open-addressed hash table from line address to V:
// the struct-of-arrays replacement for the per-line Go maps that used to
// sit on the simulator's hottest paths (the directory's entry table and
// the L1's pending/victim/wireless-write tables). Keys, slot metadata
// and values live in three parallel arrays, so a probe scans only the
// compact key and metadata arrays — no map-runtime calls, no per-entry
// boxing, and the common miss resolves within one cache line of slots.
//
// Every operation is deterministic: slot layout is a pure function of
// the put/del call sequence, which the simulator's determinism contract
// already fixes. Unordered iteration (forEach) is therefore reproducible
// across runs — unlike Go map ranges — but ordered dumps still go
// through sortedKeys so they stay stable across table-sizing changes.
type lineTable[V any] struct {
	keys []addrspace.Line
	meta []uint8 // slotEmpty, slotLive or slotDead (tombstone)
	vals []V
	mask uint64
	live int // live slots
	used int // live + tombstones: probe-chain occupancy
}

const (
	slotEmpty uint8 = iota
	slotLive
	slotDead
)

const lineTableMinCap = 16

// hashLine mixes the line address. Lines are strided and low-entropy in
// the low bits, so a Fibonacci multiply spreads them; the table masks
// the high product bits down to a slot.
func hashLine(l addrspace.Line) uint64 {
	const phi = 0x9E3779B97F4A7C15
	h := uint64(l) * phi
	return h ^ (h >> 29)
}

func (t *lineTable[V]) grow(n int) {
	oldKeys, oldMeta, oldVals := t.keys, t.meta, t.vals
	t.keys = make([]addrspace.Line, n)
	t.meta = make([]uint8, n)
	t.vals = make([]V, n)
	t.mask = uint64(n - 1)
	t.used = t.live
	for i, m := range oldMeta {
		if m != slotLive {
			continue
		}
		j := hashLine(oldKeys[i]) & t.mask
		for t.meta[j] == slotLive {
			j = (j + 1) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.meta[j] = slotLive
		t.vals[j] = oldVals[i]
	}
}

// get returns the value stored for the line, or the zero V.
func (t *lineTable[V]) get(l addrspace.Line) (V, bool) {
	if t.meta != nil {
		for i := hashLine(l) & t.mask; t.meta[i] != slotEmpty; i = (i + 1) & t.mask {
			if t.meta[i] == slotLive && t.keys[i] == l {
				return t.vals[i], true
			}
		}
	}
	var zero V
	return zero, false
}

// put inserts or replaces the value for the line.
func (t *lineTable[V]) put(l addrspace.Line, v V) {
	if t.meta == nil {
		t.grow(lineTableMinCap)
	} else if (t.used+1)*4 >= len(t.meta)*3 {
		// Keep probe chains short: tombstones extend chains exactly like
		// live slots, so they count toward the load factor. Double only
		// when genuinely half full; otherwise rebuild at the same size
		// to purge tombstones.
		n := len(t.meta)
		if t.live*2 >= n {
			n <<= 1
		}
		t.grow(n)
	}
	free := -1
	for i := hashLine(l) & t.mask; ; i = (i + 1) & t.mask {
		switch t.meta[i] {
		case slotEmpty:
			if free < 0 {
				free = int(i)
				t.used++ // claiming a virgin slot; tombstones were already counted
			}
			t.keys[free] = l
			t.meta[free] = slotLive
			t.vals[free] = v
			t.live++
			return
		case slotDead:
			if free < 0 {
				free = int(i) // remember, but keep probing for a live match
			}
		case slotLive:
			if t.keys[i] == l {
				t.vals[i] = v
				return
			}
		}
	}
}

// del removes the line's entry, reporting whether it was present. The
// vacated slot becomes a tombstone so probe chains passing through it
// stay intact; rebuilds reclaim tombstones.
func (t *lineTable[V]) del(l addrspace.Line) bool {
	if t.meta == nil {
		return false
	}
	for i := hashLine(l) & t.mask; t.meta[i] != slotEmpty; i = (i + 1) & t.mask {
		if t.meta[i] == slotLive && t.keys[i] == l {
			t.meta[i] = slotDead
			var zero V
			t.vals[i] = zero // drop references so the GC can reclaim them
			t.live--
			return true
		}
	}
	return false
}

// length returns the number of live entries.
func (t *lineTable[V]) length() int { return t.live }

// forEach visits live entries in slot order. The order is deterministic
// (a pure function of the call history) but not sorted; callers that
// render output use sortedKeys instead, and order-independent scans
// (any-of, min-by-unique-key) may use forEach directly.
func (t *lineTable[V]) forEach(fn func(addrspace.Line, V) bool) {
	for i, m := range t.meta {
		if m == slotLive && !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// sortedKeys returns the live lines in ascending order, for dumps and
// diagnostics that must be byte-identical across runs and refactors.
func (t *lineTable[V]) sortedKeys() []addrspace.Line {
	lines := make([]addrspace.Line, 0, t.live)
	for i, m := range t.meta {
		if m == slotLive {
			lines = append(lines, t.keys[i])
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}
