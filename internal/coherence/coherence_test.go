package coherence

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wireless"
	"repro/internal/xrand"
)

// mockEnv wires a handful of L1 controllers and home controllers
// together with zero-latency-ish plumbing: wired messages deliver after
// one "pump" round, wireless transmissions go through a real
// wireless.Channel, and time advances manually. It exists to drive the
// controller state machines directly in unit tests.
type mockEnv struct {
	now    uint64
	events engine.Queue
	wchan  *wireless.Channel
	nodes  int

	l1s    []*L1Ctrl
	homes  []*HomeCtrl
	memory *MemoryImage

	wired []wiredMsg

	protoErr *ProtocolError // first reported protocol error
}

type wiredMsg struct {
	dst  int
	port PortKind
	m    *Msg
}

func newMockEnv(nodes int) *mockEnv {
	e := &mockEnv{nodes: nodes, memory: NewMemoryImage()}
	e.wchan = wireless.NewChannel(xrand.New(1))
	e.wchan.SetBroadcast(func(now uint64, msg wireless.Message) {
		for _, l1 := range e.l1s {
			l1.HandleWireless(now, msg.Sender, msg.Payload)
		}
		for _, h := range e.homes {
			h.HandleWireless(now, msg.Sender, msg.Payload)
		}
	})
	l1cfg := L1Config{
		Cache:      cache.Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2},
		Protocol:   WiDir,
		HitLatency: 1,
	}
	homecfg := HomeConfig{Protocol: WiDir, MaxPointers: 3, MaxWiredSharers: 3, Entries: 64, LLCLatency: 2}
	for i := 0; i < nodes; i++ {
		e.l1s = append(e.l1s, NewL1(i, l1cfg, e))
		h := NewHome(i, homecfg, e)
		h.Memory = e.memory
		e.homes = append(e.homes, h)
	}
	return e
}

func (e *mockEnv) Now() uint64 { return e.now }

func (e *mockEnv) SendWired(src, dst int, port PortKind, m *Msg) {
	e.wired = append(e.wired, wiredMsg{dst: dst, port: port, m: m})
}

func (e *mockEnv) TransmitWireless(sender int, line addrspace.Line, payload any, privileged bool, done func(uint64), abort func(uint64, bool)) func() bool {
	return e.wchan.Transmit(wireless.Message{Sender: sender, Line: line, Payload: payload, Privileged: privileged}, done, abort)
}

func (e *mockEnv) WirelessActive(l addrspace.Line) bool { return e.wchan.ActiveOn(l) }
func (e *mockEnv) Jam(l addrspace.Line, owner int)      { e.wchan.Jam(l, owner) }
func (e *mockEnv) Unjam(l addrspace.Line, owner int)    { e.wchan.Unjam(l, owner) }
func (e *mockEnv) RaiseTone()                           { e.wchan.RaiseTone() }
func (e *mockEnv) LowerTone()                           { e.wchan.LowerTone() }
func (e *mockEnv) WaitToneSilent(fn func(uint64))       { e.wchan.WaitToneSilent(fn) }
func (e *mockEnv) After(d uint64, fn func(uint64))      { e.events.At(e.now+d, fn) }
func (e *mockEnv) AfterRunner(d uint64, r engine.Runner) {
	e.events.AtRunner(e.now+d, r)
}
func (e *mockEnv) HomeOf(l addrspace.Line) int { return int(uint64(l) % uint64(e.nodes)) }
func (e *mockEnv) MCOf(l addrspace.Line) int   { return 0 }
func (e *mockEnv) Nodes() int                  { return e.nodes }

func (e *mockEnv) ReportProtocolError(pe *ProtocolError) {
	if e.protoErr == nil {
		e.protoErr = pe
	}
}

// pump advances time one cycle and delivers all queued wired messages.
func (e *mockEnv) pump() {
	e.now++
	batch := e.wired
	e.wired = nil
	for _, wm := range batch {
		switch wm.port {
		case PortL1:
			e.l1s[wm.dst].HandleWired(e.now, wm.m)
		case PortHome:
			e.homes[wm.dst].HandleWired(e.now, wm.m)
		case PortMC:
			// Immediate memory: respond with the line contents.
			resp := &Msg{Type: MsgMemData, Line: wm.m.Line, HasData: true, Words: e.memory.ReadLine(wm.m.Line)}
			if wm.m.Type == MsgMemRead {
				e.homes[wm.m.Requester].HandleWired(e.now, resp)
			}
		}
	}
	e.wchan.Tick(e.now)
	e.events.RunDue(e.now)
}

// home returns the controller that owns the line.
func (e *mockEnv) home(l addrspace.Line) *HomeCtrl { return e.homes[e.HomeOf(l)] }

func (e *mockEnv) pumpN(n int) {
	for i := 0; i < n; i++ {
		e.pump()
	}
}

// Simpler helper: issue and wait for completion, returning the value.
func (e *mockEnv) complete(t *testing.T, core int, r *MemRequest) uint64 {
	t.Helper()
	var got *uint64
	r.Done = func(now uint64, v uint64) { vv := v; got = &vv }
	e.l1s[core].Access(r)
	for i := 0; i < 10000 && got == nil; i++ {
		e.pump()
	}
	if got == nil {
		t.Fatalf("request %+v never completed", r)
	}
	return *got
}

func TestReadMissFillsExclusive(t *testing.T) {
	e := newMockEnv(4)
	e.memory.WriteLine(8, [addrspace.WordsPerLine]uint64{0: 77})
	v := e.complete(t, 1, &MemRequest{Addr: addrspace.Line(8).Base()})
	if v != 77 {
		t.Fatalf("load = %d, want 77", v)
	}
	ln := e.l1s[1].Cache().Lookup(8)
	if ln == nil || ln.State != cache.Exclusive {
		t.Fatalf("MESI clean-exclusive expected, got %v", ln)
	}
	entry := e.home(8).Entry(8)
	if entry == nil || entry.State != DirOwned || entry.Owner != 1 {
		t.Fatalf("directory: %+v", entry)
	}
}

func TestWriteMissFillsModified(t *testing.T) {
	e := newMockEnv(4)
	e.complete(t, 2, &MemRequest{IsWrite: true, Addr: addrspace.Line(8).Base(), Value: 5})
	ln := e.l1s[2].Cache().Lookup(8)
	if ln == nil || ln.State != cache.Modified || ln.Words[0] != 5 {
		t.Fatalf("modified fill: %+v", ln)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	e.complete(t, 1, &MemRequest{Addr: a})
	e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a, Value: 9})
	ln := e.l1s[1].Cache().Lookup(8)
	if ln.State != cache.Modified || !ln.Dirty {
		t.Fatalf("E->M upgrade: %+v", ln)
	}
	if v := e.complete(t, 1, &MemRequest{Addr: a}); v != 9 {
		t.Fatalf("read own write = %d", v)
	}
}

func TestReadAfterRemoteWrite(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a, Value: 31})
	if v := e.complete(t, 2, &MemRequest{Addr: a}); v != 31 {
		t.Fatalf("remote read = %d, want 31", v)
	}
	// Owner downgraded, requester shared.
	if st := e.l1s[1].Cache().Lookup(8).State; st != cache.Shared {
		t.Fatalf("old owner state %v", st)
	}
	if st := e.l1s[2].Cache().Lookup(8).State; st != cache.Shared {
		t.Fatalf("reader state %v", st)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	e.complete(t, 0, &MemRequest{Addr: a})
	e.complete(t, 1, &MemRequest{Addr: a})
	e.complete(t, 2, &MemRequest{IsWrite: true, Addr: a, Value: 1})
	if e.l1s[0].Cache().Lookup(8) != nil {
		t.Fatal("sharer 0 not invalidated")
	}
	if e.l1s[1].Cache().Lookup(8) != nil {
		t.Fatal("sharer 1 not invalidated")
	}
	if st := e.l1s[2].Cache().Lookup(8).State; st != cache.Modified {
		t.Fatalf("writer state %v", st)
	}
}

func TestSToWTransition(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	// Four readers exceed MaxWiredSharers=3: the fourth triggers S->W.
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	entry := e.home(8).Entry(8)
	if entry.State != DirWireless {
		t.Fatalf("directory state %v, want DW", entry.State)
	}
	if entry.SharerCount != 4 {
		t.Fatalf("SharerCount = %d, want 4", entry.SharerCount)
	}
	for core := 0; core < 4; core++ {
		ln := e.l1s[core].Cache().Lookup(8)
		if ln == nil || ln.State != cache.Wireless {
			t.Fatalf("core %d state %v, want W", core, ln)
		}
	}
}

func TestWirelessWriteUpdatesAllSharers(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	e.complete(t, 2, &MemRequest{IsWrite: true, Addr: a, Value: 1234})
	e.pumpN(20)
	for core := 0; core < 4; core++ {
		ln := e.l1s[core].Cache().Lookup(8)
		if ln == nil || ln.Words[0] != 1234 {
			t.Fatalf("core %d missed the wireless update: %+v", core, ln)
		}
	}
	// The home's LLC copy merged the update and is dirty.
	entry := e.home(8).Entry(8)
	if entry.Words[0] != 1234 || !entry.Dirty {
		t.Fatalf("home copy not merged: %+v", entry)
	}
	if e.l1s[2].Stats.WirelessWrites.Value() != 1 {
		t.Fatal("wireless write not counted")
	}
}

func TestWirelessReadIsLocal(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	misses := e.l1s[1].Stats.LoadMisses.Value()
	e.complete(t, 1, &MemRequest{Addr: a})
	if e.l1s[1].Stats.LoadMisses.Value() != misses {
		t.Fatal("W-state read missed")
	}
	if e.l1s[1].Stats.WirelessReads.Value() == 0 {
		t.Fatal("wireless read not counted")
	}
}

func TestUpdateCountDecay(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	// Core 1 writes repeatedly; core 3 never touches the line again and
	// must self-invalidate after UpdateCountMax updates.
	for i := 0; i < 4; i++ {
		e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a, Value: uint64(i)})
		e.pumpN(10)
	}
	e.pumpN(50)
	if e.l1s[3].Cache().Lookup(8) != nil {
		t.Fatal("idle sharer did not decay")
	}
	if e.l1s[3].Stats.SelfInvalidations.Value() == 0 {
		t.Fatal("self-invalidation not counted")
	}
}

func TestWToSDowngrade(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 5; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	entry := e.home(8).Entry(8)
	if entry.State != DirWireless || entry.SharerCount != 5 {
		t.Fatalf("setup failed: %v count=%d", entry.State, entry.SharerCount)
	}
	// Two sharers decay away (writes they don't consume), dropping the
	// count to MaxWiredSharers and triggering the downgrade.
	for i := 0; i < 8; i++ {
		e.complete(t, 0, &MemRequest{IsWrite: true, Addr: a, Value: uint64(i)})
		e.pumpN(10)
		// Keep cores 1 and 2 interested.
		e.complete(t, 1, &MemRequest{Addr: a})
		e.complete(t, 2, &MemRequest{Addr: a})
	}
	e.pumpN(200)
	entry = e.home(8).Entry(8)
	if entry.State != DirShared {
		t.Fatalf("directory state %v, want DS after downgrade", entry.State)
	}
	if len(entry.Sharers) == 0 || len(entry.Sharers) > 3 {
		t.Fatalf("pointer set %v", entry.Sharers)
	}
	for _, s := range entry.Sharers {
		ln := e.l1s[s].Cache().Lookup(8)
		if ln == nil || ln.State != cache.Shared {
			t.Fatalf("recorded sharer %d not in S: %+v", s, ln)
		}
	}
}

func TestWirelessRMWAtomicity(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	// Fetch-adds from every sharer must sum exactly.
	for round := 0; round < 3; round++ {
		for core := 0; core < 4; core++ {
			e.complete(t, core, &MemRequest{IsRMW: true, RMW: RMWFetchAdd, Addr: a, Value: 1})
			e.pumpN(5)
		}
	}
	e.pumpN(50)
	v := e.complete(t, 1, &MemRequest{Addr: a})
	if v != 12 {
		t.Fatalf("fetch-add sum = %d, want 12", v)
	}
}

func TestFailedCASDoesNotBroadcast(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	e.complete(t, 0, &MemRequest{IsWrite: true, Addr: a, Value: 1}) // lock held
	for core := 1; core < 5; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	if e.home(8).Entry(8).State != DirWireless {
		t.Skip("line did not reach W in this interleaving")
	}
	before := e.l1s[1].Stats.WirelessWrites.Value()
	old := e.complete(t, 1, &MemRequest{IsRMW: true, RMW: RMWCompareSwap, Addr: a, Expected: 0, Value: 1})
	if old != 1 {
		t.Fatalf("CAS old = %d, want 1 (failure)", old)
	}
	if e.l1s[1].Stats.WirelessWrites.Value() != before {
		t.Fatal("failed CAS consumed wireless bandwidth")
	}
}

func TestDirEntryEvictionWirInv(t *testing.T) {
	e := newMockEnv(4)
	// Shrink the directory so an eviction happens.
	e.homes[0] = NewHome(0, HomeConfig{Protocol: WiDir, MaxPointers: 3, MaxWiredSharers: 3, Entries: 1, LLCLatency: 1}, e)
	e.homes[0].Memory = e.memory
	a := addrspace.Line(4).Base() // home 0
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	if e.homes[0].Entry(4) == nil || e.homes[0].Entry(4).State != DirWireless {
		t.Skip("line did not reach W")
	}
	// A different line with the same home forces the entry out.
	b := addrspace.Line(8).Base()
	e.complete(t, 1, &MemRequest{Addr: b})
	e.pumpN(100)
	if e.homes[0].Entry(4) != nil {
		t.Fatal("W entry not evicted")
	}
	for core := 0; core < 4; core++ {
		if e.l1s[core].Cache().Lookup(4) != nil {
			t.Fatalf("core %d survived WirInv", core)
		}
	}
	if e.homes[0].Stats.WirInvs.Value() == 0 {
		t.Fatal("WirInv not counted")
	}
}

func TestBaselineBroadcastBit(t *testing.T) {
	e := newMockEnv(6)
	// Rebuild homes as Baseline so pointer overflow sets B.
	for i := range e.homes {
		e.homes[i] = NewHome(i, HomeConfig{Protocol: Baseline, MaxPointers: 3, Entries: 64, LLCLatency: 2}, e)
		e.homes[i].Memory = e.memory
	}
	l1cfg := L1Config{Cache: cache.Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2}, Protocol: Baseline, HitLatency: 1}
	for i := range e.l1s {
		e.l1s[i] = NewL1(i, l1cfg, e)
	}
	a := addrspace.Line(6).Base()
	for core := 0; core < 5; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	entry := e.home(6).Entry(6)
	if entry.State != DirShared || !entry.Broadcast {
		t.Fatalf("overflow did not set B: %+v", entry)
	}
	// A write now broadcasts invalidations to everyone and still works.
	e.complete(t, 5, &MemRequest{IsWrite: true, Addr: a, Value: 7})
	e.pumpN(20)
	for core := 0; core < 5; core++ {
		if e.l1s[core].Cache().Lookup(6) != nil {
			t.Fatalf("core %d survived broadcast invalidation", core)
		}
	}
	if e.home(6).Stats.BroadcastInvs.Value() == 0 {
		t.Fatal("broadcast invalidation not counted")
	}
	if v := e.complete(t, 1, &MemRequest{Addr: a}); v != 7 {
		t.Fatalf("value after broadcast write = %d", v)
	}
}

func TestEvictionNotifiesDirectory(t *testing.T) {
	e := newMockEnv(4)
	// The tiny 8-line, 2-way L1 evicts as we walk lines in one set.
	sets := e.l1s[1].Cache().Sets()
	a := addrspace.Line(4)
	b := a + addrspace.Line(sets)
	c := b + addrspace.Line(sets)
	for _, l := range []addrspace.Line{a, b, c} {
		e.complete(t, 1, &MemRequest{Addr: l.Base()})
	}
	e.pumpN(50)
	if e.l1s[1].Cache().Lookup(a) != nil {
		t.Fatal("LRU line survived")
	}
	// The home of line a must no longer list core 1.
	h := e.homes[e.HomeOf(a)]
	if entry := h.Entry(a); entry != nil && entry.State == DirOwned && entry.Owner == 1 && !e.l1s[1].VictimHolds(a) {
		t.Fatalf("directory still believes core 1 owns the evicted line: %+v", entry)
	}
}

func TestRMWKinds(t *testing.T) {
	cases := []struct {
		k                  RMWKind
		old, op, exp, want uint64
	}{
		{RMWTestAndSet, 0, 0, 0, 1},
		{RMWTestAndSet, 7, 0, 0, 1},
		{RMWExchange, 7, 3, 0, 3},
		{RMWFetchAdd, 7, 3, 0, 10},
		{RMWCompareSwap, 7, 3, 7, 3},
		{RMWCompareSwap, 7, 3, 8, 7},
	}
	for _, c := range cases {
		if got := c.k.Apply(c.old, c.op, c.exp); got != c.want {
			t.Errorf("%v.Apply(%d,%d,%d) = %d, want %d", c.k, c.old, c.op, c.exp, got, c.want)
		}
	}
}

func TestMsgBytes(t *testing.T) {
	m := &Msg{Type: MsgGetS}
	if m.Bytes() != 8 {
		t.Fatalf("control bytes = %d", m.Bytes())
	}
	d := &Msg{Type: MsgDataM, HasData: true}
	if d.Bytes() != 8+addrspace.LineSize {
		t.Fatalf("data bytes = %d", d.Bytes())
	}
}

func TestProtocolString(t *testing.T) {
	if Baseline.String() != "Baseline" || WiDir.String() != "WiDir" {
		t.Fatal("protocol names")
	}
	if MsgGetS.String() != "GetS" || MsgWirUpgr.String() != "WirUpgr" {
		t.Fatal("message names")
	}
}

func TestCoarseVectorScheme(t *testing.T) {
	e := newMockEnv(8)
	// Rebuild as Baseline Dir_iCV_2: regions of two nodes.
	for i := range e.homes {
		e.homes[i] = NewHome(i, HomeConfig{
			Protocol: Baseline, Scheme: DirCV, MaxPointers: 3,
			CoarseRegion: 2, Entries: 64, LLCLatency: 2,
		}, e)
		e.homes[i].Memory = e.memory
	}
	l1cfg := L1Config{Cache: cache.Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2}, Protocol: Baseline, HitLatency: 1}
	for i := range e.l1s {
		e.l1s[i] = NewL1(i, l1cfg, e)
	}
	a := addrspace.Line(6).Base()
	// Sharers 0..3 (regions 0 and 1) overflow the 3 pointers.
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	entry := e.home(6).Entry(6)
	if !entry.Broadcast || entry.CoarseVec != 0b11 {
		t.Fatalf("coarse vector wrong: %+v", entry)
	}
	// A write from core 7 (region 3) must invalidate regions 0 and 1
	// only: cores 0..3 plus region-mates, not core 5 (region 2).
	invsBefore := e.home(6).Stats.Invalidations.Value()
	e.complete(t, 7, &MemRequest{IsWrite: true, Addr: a, Value: 9})
	e.pumpN(20)
	sent := e.home(6).Stats.Invalidations.Value() - invsBefore
	if sent != 4 {
		t.Fatalf("Dir_iCV_2 sent %d invalidations, want 4 (two regions)", sent)
	}
	for core := 0; core < 4; core++ {
		if e.l1s[core].Cache().Lookup(6) != nil {
			t.Fatalf("sharer %d survived", core)
		}
	}
	if v := e.complete(t, 2, &MemRequest{Addr: a}); v != 9 {
		t.Fatalf("value after CV invalidation round = %d", v)
	}
}

func TestDirSchemeString(t *testing.T) {
	if DirB.String() != "Dir_iB" || DirCV.String() != "Dir_iCV_r" {
		t.Fatal("scheme names")
	}
}

// TestWirInvSquashesPendingWrite covers Table I W->I case 2 with §IV-C:
// a WirInv arriving while a wireless write waits for the channel
// squashes the write, which then retries over the wired path and still
// completes with the correct value.
func TestWirInvSquashesPendingWrite(t *testing.T) {
	e := newMockEnv(4)
	e.homes[0] = NewHome(0, HomeConfig{Protocol: WiDir, MaxPointers: 3, MaxWiredSharers: 3, Entries: 1, LLCLatency: 1}, e)
	e.homes[0].Memory = e.memory
	a := addrspace.Line(4).Base() // home 0
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	if ent := e.homes[0].Entry(4); ent == nil || ent.State != DirWireless {
		t.Skip("line did not reach W")
	}
	// Queue a wireless write but do NOT pump: it sits on the channel.
	var got *uint64
	e.l1s[2].Access(&MemRequest{
		IsWrite: true, Addr: a, Value: 777,
		Done: func(now uint64, v uint64) { vv := v; got = &vv },
	})
	// Force the home to evict the W entry (WirInv) before the write
	// can serialize, by touching another line with the same home.
	b := addrspace.Line(8).Base()
	e.l1s[1].Access(&MemRequest{Addr: b, Done: func(uint64, uint64) {}})
	for i := 0; i < 5000 && got == nil; i++ {
		e.pump()
	}
	if got == nil {
		t.Fatal("squashed write never completed")
	}
	// The value must be durable: read it back from scratch.
	if v := e.complete(t, 3, &MemRequest{Addr: a}); v != 777 {
		t.Fatalf("value after squash-and-retry = %d, want 777", v)
	}
}

// TestWEvictionSendsPutW covers Table I W->I case 1: a cache evicting a
// W line notifies the directory, which decrements SharerCount.
func TestWEvictionSendsPutW(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 5; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	ent := e.home(8).Entry(8)
	if ent.State != DirWireless || ent.SharerCount != 5 {
		t.Skipf("setup: %v count=%d", ent.State, ent.SharerCount)
	}
	// Fill core 4's set so line 8 gets evicted: same-set lines.
	sets := e.l1s[4].Cache().Sets()
	e.complete(t, 4, &MemRequest{Addr: (addrspace.Line(8) + addrspace.Line(sets)).Base()})
	e.complete(t, 4, &MemRequest{Addr: (addrspace.Line(8) + addrspace.Line(2*sets)).Base()})
	e.pumpN(100)
	if e.l1s[4].Cache().Lookup(8) != nil {
		t.Skip("eviction did not pick the W line")
	}
	if ent.SharerCount != 4 {
		t.Fatalf("SharerCount = %d after W eviction, want 4", ent.SharerCount)
	}
}

// TestToneHeldDuringSToW observes the ToneAck primitive: during the
// S->W transition a node with an in-flight wired request holds the
// tone, and the channel reports it.
func TestToneHeldDuringSToW(t *testing.T) {
	e := newMockEnv(6)
	a := addrspace.Line(8).Base()
	for core := 0; core < 3; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	// Two more requests in flight at once: one triggers S->W, the other
	// is mid-flight when BrWirUpgr broadcasts and must hold the tone.
	done := 0
	for core := 3; core < 5; core++ {
		e.l1s[core].Access(&MemRequest{Addr: a, Done: func(uint64, uint64) { done++ }})
	}
	sawTone := false
	for i := 0; i < 5000 && done < 2; i++ {
		e.pump()
		if e.wchan.ToneHolds() > 0 {
			sawTone = true
		}
	}
	if done < 2 {
		t.Fatal("requests never completed")
	}
	if !sawTone {
		t.Fatal("no tone hold observed during the S->W transition")
	}
	e.pumpN(100)
	if e.wchan.ToneHolds() != 0 {
		t.Fatalf("tone leaked: %d holders", e.wchan.ToneHolds())
	}
}

// TestWirUpgrNeedAckIncrementsCount covers Table II W->W case 1
// explicitly: a wired join of a W line increments SharerCount exactly
// once, after the WirUpgrAck round trip.
func TestWirUpgrNeedAckIncrementsCount(t *testing.T) {
	e := newMockEnv(8)
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	ent := e.home(8).Entry(8)
	before := ent.SharerCount
	e.complete(t, 6, &MemRequest{Addr: a})
	e.pumpN(50)
	if ent.SharerCount != before+1 {
		t.Fatalf("SharerCount %d -> %d, want +1", before, ent.SharerCount)
	}
	if ln := e.l1s[6].Cache().Lookup(8); ln == nil || ln.State != cache.Wireless {
		t.Fatalf("joiner state: %+v", ln)
	}
}

// Tests below drive the less-travelled controller paths directly:
// accessor methods, contended queuing, RMW hits, stale puts, recalls
// served from the victim buffer, and the diagnostic helpers.

func TestAccessQueuesBehindPending(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.l1s[1].Access(&MemRequest{Addr: a + addrspace.Addr(8*i), Done: func(uint64, uint64) { order = append(order, i) }})
	}
	if !e.l1s[1].HasPending() || !e.l1s[1].PendingLine(8) {
		t.Fatal("pending not tracked")
	}
	if e.l1s[1].Describe() == "" {
		t.Fatal("describe empty with pending work")
	}
	e.pumpN(500)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("queued accesses completed out of order: %v", order)
	}
	if e.l1s[1].ID() != 1 || e.homes[1].ID() != 1 {
		t.Fatal("IDs wrong")
	}
}

func TestRMWHitOnOwnedLine(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a, Value: 10})
	old := e.complete(t, 1, &MemRequest{IsRMW: true, RMW: RMWFetchAdd, Addr: a, Value: 5})
	if old != 10 {
		t.Fatalf("RMW hit old = %d", old)
	}
	if v := e.complete(t, 1, &MemRequest{Addr: a}); v != 15 {
		t.Fatalf("after RMW = %d", v)
	}
	// Exchange and TAS on the owned line.
	if old := e.complete(t, 1, &MemRequest{IsRMW: true, RMW: RMWExchange, Addr: a, Value: 3}); old != 15 {
		t.Fatalf("exchange old = %d", old)
	}
	if old := e.complete(t, 1, &MemRequest{IsRMW: true, RMW: RMWTestAndSet, Addr: a}); old != 3 {
		t.Fatalf("TAS old = %d", old)
	}
}

func TestStalePutFromFormerSharer(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	// 0 and 1 share; 2 takes ownership (invalidating both); then a
	// stale PutS from 0 must not disturb the new owner.
	e.complete(t, 0, &MemRequest{Addr: a})
	e.complete(t, 1, &MemRequest{Addr: a})
	e.complete(t, 2, &MemRequest{IsWrite: true, Addr: a, Value: 4})
	ent := e.home(8).Entry(8)
	e.homes[e.HomeOf(8)].HandleWired(e.now, &Msg{Type: MsgPutS, Line: 8, Src: 0})
	e.pumpN(10)
	if ent.State != DirOwned || ent.Owner != 2 {
		t.Fatalf("stale PutS disturbed the entry: %+v", ent)
	}
	// A stale PutM from a non-owner is also ignored.
	e.homes[e.HomeOf(8)].HandleWired(e.now, &Msg{Type: MsgPutM, Line: 8, Src: 1, HasData: true})
	e.pumpN(10)
	if ent.State != DirOwned || ent.Owner != 2 {
		t.Fatalf("stale PutM disturbed the entry: %+v", ent)
	}
}

func TestForwardServedFromVictimBuffer(t *testing.T) {
	e := newMockEnv(4)
	sets := e.l1s[1].Cache().Sets()
	a := addrspace.Line(8)
	// Core 1 owns line a dirty.
	e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a.Base(), Value: 42})
	// Evict it from core 1 by filling the set — but freeze the home so
	// the PutM stays unacknowledged (the victim buffer must serve).
	// We emulate the freeze by issuing the conflicting fills and the
	// remote read in the same pump window.
	e.l1s[1].Access(&MemRequest{Addr: (a + addrspace.Line(sets)).Base(), Done: func(uint64, uint64) {}})
	e.l1s[1].Access(&MemRequest{Addr: (a + addrspace.Line(2*sets)).Base(), Done: func(uint64, uint64) {}})
	if v := e.complete(t, 2, &MemRequest{Addr: a.Base()}); v != 42 {
		t.Fatalf("read after eviction race = %d, want 42", v)
	}
}

func TestRecallFromOwnerAndAbsent(t *testing.T) {
	e := newMockEnv(4)
	e.homes[0] = NewHome(0, HomeConfig{Protocol: WiDir, MaxPointers: 3, MaxWiredSharers: 3, Entries: 1, LLCLatency: 1}, e)
	e.homes[0].Memory = e.memory
	a := addrspace.Line(4).Base()
	e.complete(t, 1, &MemRequest{IsWrite: true, Addr: a, Value: 9})
	// Another line with the same home forces a recall of the first.
	b := addrspace.Line(8).Base()
	e.complete(t, 2, &MemRequest{Addr: b})
	e.pumpN(100)
	if e.homes[0].Entry(4) != nil {
		t.Fatal("owned entry not recalled")
	}
	if e.l1s[1].Cache().Lookup(4) != nil {
		t.Fatal("owner kept the recalled line")
	}
	// The dirty value survives through memory.
	if v := e.complete(t, 3, &MemRequest{Addr: a}); v != 9 {
		t.Fatalf("value after recall = %d", v)
	}
}

func TestHasBusyAndDescribe(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	e.l1s[1].Access(&MemRequest{Addr: a, Done: func(uint64, uint64) {}})
	// Memory fetch in flight: the home entry is busy at some point.
	sawBusy := false
	for i := 0; i < 200; i++ {
		e.pump()
		if e.home(8).HasBusy() {
			sawBusy = true
			if e.home(8).Describe() == "" {
				t.Fatal("describe empty while busy")
			}
		}
	}
	if !sawBusy {
		t.Skip("fetch resolved without observable busy window")
	}
}

func TestForEachEntry(t *testing.T) {
	e := newMockEnv(4)
	e.complete(t, 1, &MemRequest{Addr: addrspace.Line(8).Base()})
	n := 0
	e.home(8).ForEachEntry(func(*DirEntry) { n++ })
	if n != 1 {
		t.Fatalf("entries = %d", n)
	}
}

func TestBroadcastModeRemoveSharer(t *testing.T) {
	e := newMockEnv(6)
	for i := range e.homes {
		e.homes[i] = NewHome(i, HomeConfig{Protocol: Baseline, MaxPointers: 2, Entries: 64, LLCLatency: 2}, e)
		e.homes[i].Memory = e.memory
	}
	l1cfg := L1Config{Cache: cache.Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2}, Protocol: Baseline, HitLatency: 1}
	for i := range e.l1s {
		e.l1s[i] = NewL1(i, l1cfg, e)
	}
	a := addrspace.Line(6).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	ent := e.home(6).Entry(6)
	if !ent.Broadcast {
		t.Fatal("overflow did not set B")
	}
	approxBefore := ent.SharerApprox
	// Evictions in B mode decrement the approximate count.
	e.homes[e.HomeOf(6)].HandleWired(e.now, &Msg{Type: MsgPutS, Line: 6, Src: 0})
	e.pumpN(5)
	if ent.SharerApprox != approxBefore-1 {
		t.Fatalf("approx count %d -> %d", approxBefore, ent.SharerApprox)
	}
	// Draining every sharer resets the entry to DI.
	for core := 1; core < 4; core++ {
		e.homes[e.HomeOf(6)].HandleWired(e.now, &Msg{Type: MsgPutS, Line: 6, Src: core})
	}
	e.pumpN(5)
	if ent.State != DirInvalid || ent.Broadcast {
		t.Fatalf("B-mode entry not cleared: %+v", ent)
	}
}

func TestPutAgainstMissingEntry(t *testing.T) {
	e := newMockEnv(4)
	// A put for a line the home has no entry for is acked leniently.
	e.homes[0].HandleWired(e.now, &Msg{Type: MsgPutS, Line: 4, Src: 2})
	e.pumpN(5)
	// Nothing to assert beyond "no panic"; the PutAck went back.
}

func TestVictimHoldsAccessor(t *testing.T) {
	e := newMockEnv(4)
	if e.l1s[0].VictimHolds(99) {
		t.Fatal("phantom victim")
	}
}

// TestLineLogCapture drives one request with the per-machine line log
// configured and asserts the legacy single-line dump format survives
// the move off the old TraceLine package global.
func TestLineLogCapture(t *testing.T) {
	var buf bytes.Buffer
	e := newMockEnv(4)
	lg := &obs.LineLog{Line: 8, W: &buf}
	for _, l1 := range e.l1s {
		l1.cfg.Log = lg
	}
	for _, h := range e.homes {
		h.cfg.Log = lg
	}
	e.complete(t, 1, &MemRequest{Addr: addrspace.Line(8).Base()})
	out := buf.String()
	if out == "" {
		t.Fatal("line log captured nothing for the traced line")
	}
	for _, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.Contains(ln, "line 0x8: ") {
			t.Fatalf("line log record %q does not carry the legacy format", ln)
		}
	}
}

func TestDirStateStrings(t *testing.T) {
	for st, want := range map[DirState]string{
		DirInvalid: "DI", DirShared: "DS", DirOwned: "DO", DirWireless: "DW",
	} {
		if st.String() != want {
			t.Errorf("%d -> %q want %q", st, st.String(), want)
		}
	}
}

// TestStaleGrantThenNACKLocalSatisfy stages the abandoned-request race
// directly: a grant for an old request installs idempotently without
// completing the current one; the current request's NACK retry then
// discovers the line is locally satisfiable and completes without
// re-sending.
func TestStaleGrantThenNACKLocalSatisfy(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	var got *uint64
	e.l1s[1].Access(&MemRequest{
		IsWrite: true, Addr: a, Value: 5,
		Done: func(now uint64, v uint64) { vv := v; got = &vv },
	})
	// Intercept and drop the outgoing GetX so the home never replies.
	if len(e.wired) != 1 || e.wired[0].m.Type != MsgGetX {
		t.Fatalf("expected one GetX, have %+v", e.wired)
	}
	reqID := e.wired[0].m.ReqID
	e.wired = nil

	// A stale grant (different ReqID) installs M without completing.
	e.l1s[1].HandleWired(e.now, &Msg{Type: MsgDataM, Line: 8, ReqID: reqID + 100, HasData: true})
	if got != nil {
		t.Fatal("stale grant completed the pending request")
	}
	if ln := e.l1s[1].Cache().Lookup(8); ln == nil || ln.State != cache.Modified {
		t.Fatalf("stale grant not installed: %+v", ln)
	}

	// The matching NACK triggers a retry that resolves locally.
	e.l1s[1].HandleWired(e.now, &Msg{Type: MsgNACK, Line: 8, ReqID: reqID})
	e.pumpN(500)
	if got == nil {
		t.Fatal("NACK local-satisfy never completed the store")
	}
	if v := e.complete(t, 1, &MemRequest{Addr: a}); v != 5 {
		t.Fatalf("store lost: %d", v)
	}
}

// TestWDiscardResend stages Table II W->W case 2's fallback: a WDiscard
// matching the outstanding request forces a re-request as non-sharer
// (the normal case — local resolution via BrWirUpgr — is exercised by
// the integration tests; this covers the requester that lost its copy).
func TestWDiscardResend(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	var got *uint64
	e.l1s[1].Access(&MemRequest{
		IsWrite: true, Addr: a, Value: 9,
		Done: func(now uint64, v uint64) { vv := v; got = &vv },
	})
	if len(e.wired) != 1 {
		t.Fatalf("expected one request, have %d", len(e.wired))
	}
	reqID := e.wired[0].m.ReqID
	e.wired = nil // drop the original request

	// A mismatched WDiscard is ignored.
	e.l1s[1].HandleWired(e.now, &Msg{Type: MsgWDiscard, Line: 8, ReqID: reqID + 7})
	if len(e.wired) != 0 {
		t.Fatal("stale WDiscard triggered a resend")
	}
	// The matching WDiscard resends as non-sharer.
	e.l1s[1].HandleWired(e.now, &Msg{Type: MsgWDiscard, Line: 8, ReqID: reqID})
	if len(e.wired) != 1 || e.wired[0].m.Type != MsgGetX || e.wired[0].m.IsSharer {
		t.Fatalf("expected non-sharer GetX resend, have %+v", e.wired)
	}
	e.pumpN(500)
	if got == nil {
		t.Fatal("request never completed after WDiscard resend")
	}
}

// TestNACKRetryResends covers the ordinary bounce-retry loop against a
// busy entry.
func TestNACKRetryResends(t *testing.T) {
	e := newMockEnv(4)
	a := addrspace.Line(8).Base()
	// Keep the entry busy with a memory fetch that never resolves:
	// strip every MC-bound message before each pump round.
	e.l1s[2].Access(&MemRequest{Addr: a, Done: func(uint64, uint64) {}})
	var got *uint64
	e.l1s[1].Access(&MemRequest{Addr: a, Done: func(now uint64, v uint64) { vv := v; got = &vv }})
	for i := 0; i < 300 && e.l1s[1].Stats.NACKs.Value() == 0; i++ {
		var kept []wiredMsg
		for _, wm := range e.wired {
			if wm.port != PortMC {
				kept = append(kept, wm)
			}
		}
		e.wired = kept
		e.pump()
	}
	if e.l1s[1].Stats.NACKs.Value() == 0 {
		t.Fatal("no NACK observed against a busy entry")
	}
	_ = got
}
