package coherence

import (
	"fmt"
	"sort"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/stats"
)

// RMWKind selects the atomic operation of a read-modify-write request.
type RMWKind uint8

// The atomic operations the workloads use (locks, barriers, counters).
const (
	RMWTestAndSet  RMWKind = iota // old = *p; *p = 1
	RMWExchange                   // old = *p; *p = operand
	RMWFetchAdd                   // old = *p; *p = old + operand
	RMWCompareSwap                // old = *p; if old == expected { *p = operand }
)

// Apply computes the new value for the operation.
func (k RMWKind) Apply(old, operand, expected uint64) uint64 {
	switch k {
	case RMWTestAndSet:
		return 1
	case RMWExchange:
		return operand
	case RMWFetchAdd:
		return old + operand
	case RMWCompareSwap:
		if old == expected {
			return operand
		}
		return old
	}
	//lint:deterministic unreachable terminator of an exhaustive RMWKind switch (switchcases-enforced); not a protocol state
	panic("coherence: unknown RMW kind")
}

// MemRequest is one memory operation issued by a core to its L1.
type MemRequest struct {
	IsWrite  bool
	IsRMW    bool
	Addr     addrspace.Addr
	Value    uint64 // store value / RMW operand
	Expected uint64 // RMWCompareSwap comparand
	RMW      RMWKind
	// Done fires when the operation completes. Loads receive the value
	// read; RMWs receive the old value; stores receive the stored value.
	Done func(now uint64, value uint64)

	// obsSpan is the request's open observability span id (0 = none).
	// A request keeps one span across NACK retries, wireless aborts and
	// wired fallbacks, so a span's latency is the core's full wait.
	// obsClass records the protocol path the span was opened under.
	obsSpan  uint64
	obsClass obs.Class

	// missStarts records the cycle of each L1 miss this request took
	// (a requeued request can miss more than once); completion observes
	// one MissLatency sample per entry and clears the list. Kept as a
	// field rather than a Done-wrapping closure so request objects can
	// be pooled and reused without chaining wrappers across lifetimes.
	missStarts []uint64
}

type pendingKind uint8

const (
	pendLoad pendingKind = iota
	pendStore
	pendRMW
)

// pendingReq tracks the single outstanding wired transaction an L1 may
// have per line, plus accesses that arrived while it was in flight.
type pendingReq struct {
	line        addrspace.Line
	kind        pendingKind
	req         *MemRequest
	reqID       uint64 // id of the outstanding (latest) request message
	isSharer    bool   // we held the line in S when the request was sent
	toneHeld    bool   // BrWirUpgr arrived while this was pending (ToneAck)
	invalidated bool   // an Inv arrived while the fill was in flight
	waiters     []*MemRequest
	retries     int
	started     uint64 // cycle the transaction began (age watchdog)

	// gen is the entry's generation stamp. pendingReq objects are
	// pooled; reuse bumps the stamp, and the NACK retry timer checks it
	// so a stale timer cannot act on a recycled entry that happens to
	// sit at the same address (and even the same line) again.
	gen uint64
}

// wirelessWrite tracks a store or RMW waiting for the wireless data
// channel (§IV-C: the write sits in the write buffer until the
// transmission is guaranteed).
type wirelessWrite struct {
	line    addrspace.Line
	word    int
	req     *MemRequest
	oldVal  uint64 // RMW: value read at issue; aborted if line changes
	cancel  func() bool
	aborted bool
}

// MissLatencyBins are the histogram edges (cycles) for the per-miss
// completion-latency distribution: L1-adjacent, LLC-local, remote
// 2-hop, remote 3-hop/contended, and memory-bound misses.
//
//vet:local written only at init/config time, read-only during ticks
var MissLatencyBins = []int{0, 20, 40, 80, 160, 320}

// L1Stats aggregates the measurements the evaluation reports per core.
type L1Stats struct {
	LoadHits           stats.Counter
	LoadMisses         stats.Counter
	StoreHits          stats.Counter
	StoreMisses        stats.Counter
	WirelessWrites     stats.Counter // writes completed via WirUpd
	WirelessReads      stats.Counter // loads that hit a W line
	UpdatesReceived    stats.Counter // WirUpd merges from remote writers
	SelfInvalidations  stats.Counter // UpdateCount decay (W -> I + PutW)
	Evictions          stats.Counter
	NACKs              stats.Counter
	RMWRetries         stats.Counter // wireless RMW aborts (§IV-C)
	WirelessTxFailures stats.Counter // wireless sends abandoned after fault retries
	L1Accesses         stats.Counter // energy accounting
	// MissLatency is the distribution of load/RMW miss completion
	// latencies (Access -> Done), in cycles.
	MissLatency *stats.Histogram
}

// L1Config parameterizes a private cache controller.
type L1Config struct {
	Cache          cache.Config
	Protocol       Protocol
	HitLatency     uint64       // round-trip cycles (Table III: 2)
	RetryDelay     uint64       // NACK retry backoff base
	UpdateCountMax int          // WiDir decay threshold (2-bit counter)
	Trace          obs.Sink     // structured event sink (nil = off)
	Log            *obs.LineLog // single-line protocol dump (nil = off)
}

// L1Ctrl is the private cache controller of one node. It serves the
// core's loads, stores and RMWs, participates in the wired MESI
// protocol, and implements the private-cache side of WiDir (Table I).
type L1Ctrl struct {
	id   int
	cfg  L1Config
	env  Env
	data *cache.Cache

	pending lineTable[*pendingReq]
	wwrites lineTable[*wirelessWrite]
	victims lineTable[victimEntry]
	wwFails lineTable[int] // consecutive fault-aborted sends per line

	// compFree recycles completion events (see scheduleDone) and
	// pendFree recycles pending-transaction entries (see newPending).
	compFree []*completion
	pendFree []*pendingReq

	// Checker hooks (nil outside tests): see machine.Checker.
	OnSerializedWrite func(now uint64, a addrspace.Addr, v uint64)
	OnObservedRead    func(now uint64, core int, a addrspace.Addr, v uint64)

	Stats L1Stats

	retrySeed uint64
	reqSeq    uint64
	spanSeq   uint64 // observability span ids (separate from reqSeq so
	// enabling tracing cannot perturb message ReqIDs)
}

type victimEntry struct {
	words [addrspace.WordsPerLine]uint64
	state cache.State
	dirty bool
}

// NewL1 builds the controller for node id.
func NewL1(id int, cfg L1Config, env Env) *L1Ctrl {
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 2
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 16
	}
	if cfg.UpdateCountMax == 0 {
		cfg.UpdateCountMax = 3
	}
	l := &L1Ctrl{
		id:        id,
		cfg:       cfg,
		env:       env,
		data:      cache.New(cfg.Cache),
		retrySeed: uint64(id)*2654435761 + 1,
	}
	l.Stats.MissLatency = stats.NewHistogram(MissLatencyBins...)
	return l
}

// Cache exposes the underlying array for invariant checking.
func (l *L1Ctrl) Cache() *cache.Cache { return l.data }

// VictimHolds reports whether the line sits in the victim buffer (an
// eviction notice is in flight); used by the invariant checker, since a
// forwarded request can still be served from there.
func (l *L1Ctrl) VictimHolds(line addrspace.Line) bool {
	_, ok := l.victims.get(line)
	return ok
}

// PendingLine reports whether a wired transaction is outstanding for
// the line (a grant may be in flight); used by the invariant checker.
func (l *L1Ctrl) PendingLine(line addrspace.Line) bool {
	_, ok := l.pending.get(line)
	return ok
}

// ID returns the node id.
func (l *L1Ctrl) ID() int { return l.id }

// HasPending reports whether any transaction is outstanding; the
// machine uses it for drain/quiesce detection.
func (l *L1Ctrl) HasPending() bool {
	return l.pending.length() > 0 || l.wwrites.length() > 0
}

// Describe renders the outstanding transactions for diagnostics, in
// ascending line order so watchdog dumps are identical across runs.
func (l *L1Ctrl) Describe() string {
	s := ""
	for _, line := range l.pending.sortedKeys() {
		p, _ := l.pending.get(line)
		s += fmt.Sprintf("pending line=%#x kind=%d retries=%d tone=%v; ", line, p.kind, p.retries, p.toneHeld)
	}
	for _, line := range l.wwrites.sortedKeys() {
		s += fmt.Sprintf("wwrite line=%#x; ", line)
	}
	return s
}

// fail reports a protocol violation with this controller's state dump
// and returns; the machine latches the error and ends the run.
func (l *L1Ctrl) fail(line addrspace.Line, format string, args ...any) {
	dump := fmt.Sprintf("line %#x: ", line)
	if ln := l.data.Lookup(line); ln != nil {
		dump += fmt.Sprintf("state=%v dirty=%v pinned=%v updCount=%d", ln.State, ln.Dirty, ln.NonEvict, ln.UpdateCount)
	} else {
		dump += "not resident"
	}
	if _, ok := l.victims.get(line); ok {
		dump += " victim-buffered"
	}
	if out := l.Describe(); out != "" {
		dump += " | outstanding: " + out
	}
	l.env.ReportProtocolError(&ProtocolError{
		Cycle: l.env.Now(), Node: l.id, Ctrl: "l1", Line: line,
		Reason: fmt.Sprintf(format, args...), Dump: dump,
	})
}

// OldestPending returns the oldest outstanding wired transaction of
// this L1 for the age watchdog and Diagnose, or ok=false when quiet.
// Selection is min-by (started, line), which no map order can perturb.
func (l *L1Ctrl) OldestPending() (TxnInfo, bool) {
	var best *pendingReq
	// Min-by the unique (started, line) key; forEach order cannot
	// perturb the winner.
	l.pending.forEach(func(_ addrspace.Line, p *pendingReq) bool {
		if best == nil || p.started < best.started ||
			(p.started == best.started && p.line < best.line) {
			best = p
		}
		return true
	})
	if best == nil {
		return TxnInfo{}, false
	}
	kind := "shim"
	if best.req != nil {
		switch best.kind {
		case pendLoad:
			kind = "load"
		case pendStore:
			kind = "store"
		case pendRMW:
			kind = "rmw"
		}
	}
	state := "pending"
	if ln := l.data.Lookup(best.line); ln != nil {
		state = ln.State.String()
	}
	return TxnInfo{
		Node: l.id, Ctrl: "l1", Line: best.line,
		State: state, Kind: kind, Started: best.started,
		Waiting: []int{l.env.HomeOf(best.line)},
	}, true
}

// sortedLines returns the map's line keys in ascending order.
func sortedLines[V any](m map[addrspace.Line]V) []addrspace.Line {
	lines := make([]addrspace.Line, 0, len(m))
	//lint:deterministic key collection feeds the sort below
	for line := range m {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// Access is the core's entry point for one memory operation.
//
// The core-side columns of the protocol table (Table I/II) are
// declared here rather than extracted: the dispatch below threads
// through completion queues and retry shims that the static model
// walker does not follow (proto:stop), so each core event's
// state-effect is recorded as an explicit annotation.
//
//proto:stop
//proto:transition l1 I CoreLoad -> I
//proto:transition l1 S CoreLoad -> S
//proto:transition l1 E CoreLoad -> E
//proto:transition l1 M CoreLoad -> M
//proto:transition l1 W CoreLoad -> W
//proto:transition l1 I CoreStore -> I
//proto:transition l1 S CoreStore -> S
//proto:transition l1 E CoreStore -> M
//proto:transition l1 M CoreStore -> M
//proto:transition l1 W CoreStore -> W
//proto:transition l1 I CoreRMW -> I
//proto:transition l1 S CoreRMW -> S
//proto:transition l1 E CoreRMW -> M
//proto:transition l1 M CoreRMW -> M
//proto:transition l1 W CoreRMW -> W
func (l *L1Ctrl) Access(r *MemRequest) {
	line := addrspace.LineOf(r.Addr)
	l.Stats.L1Accesses.Inc()

	// A line with an in-flight transaction queues further accesses.
	if p, ok := l.pending.get(line); ok {
		p.waiters = append(p.waiters, r)
		return
	}
	if _, ok := l.wwrites.get(line); ok {
		// A wireless write is draining for this line; the line is
		// usually still resident in W and readable. Writes (and reads
		// of a line that was evicted under an in-flight transmission)
		// queue behind it via a shim entry.
		if ln := l.data.Touch(line); ln != nil && !r.IsWrite && !r.IsRMW {
			l.serveHit(ln, r)
			return
		}
		p := l.newPending(line, pendStore, nil, false)
		p.waiters = append(p.waiters, r)
		l.pending.put(line, p)
		return
	}

	ln := l.data.Touch(line)
	switch {
	case ln == nil:
		l.miss(line, r, false)
	case !r.IsWrite && !r.IsRMW: // load hit in any valid state
		l.serveHit(ln, r)
	case ln.State == cache.Modified || ln.State == cache.Exclusive:
		l.serveHit(ln, r)
	case ln.State == cache.Wireless:
		l.wirelessStore(ln, r)
	case ln.State == cache.Shared:
		l.miss(line, r, true) // upgrade
	default:
		l.fail(line, "access dispatch reached unreachable state %v", ln.State)
	}
}

// serveHit completes a request that hits in the local cache.
func (l *L1Ctrl) serveHit(ln *cache.Line, r *MemRequest) {
	w := addrspace.WordOf(r.Addr)
	switch {
	case !r.IsWrite && !r.IsRMW:
		l.Stats.LoadHits.Inc()
		if ln.State == cache.Wireless {
			l.Stats.WirelessReads.Inc()
			ln.UpdateCount = 0 // Table I W->W: core reads
		}
		v := ln.Words[w]
		l.observeRead(r.Addr, v)
		l.complete(r, v)
	case r.IsRMW:
		if ln.State == cache.Wireless {
			l.wirelessStore(ln, r)
			return
		}
		// Owner: atomic by ownership.
		if ln.State == cache.Exclusive {
			ln.State = cache.Modified
		}
		old := ln.Words[w]
		ln.Words[w] = r.RMW.Apply(old, r.Value, r.Expected)
		ln.Dirty = true
		l.Stats.StoreHits.Inc()
		l.serializeWrite(r.Addr, ln.Words[w])
		l.observeRead(r.Addr, old)
		l.complete(r, old)
	default: // plain store on E/M
		if ln.State == cache.Exclusive {
			ln.State = cache.Modified
		}
		ln.Words[w] = r.Value
		ln.Dirty = true
		l.Stats.StoreHits.Inc()
		l.serializeWrite(r.Addr, r.Value)
		l.complete(r, r.Value)
	}
}

// completion is the pooled event that fires a request's Done; the
// steady-state hit/fill path schedules millions of these, so they are
// recycled through a per-controller free list instead of allocating a
// fresh closure each time.
type completion struct {
	l *L1Ctrl
	r *MemRequest
	v uint64
}

// Run implements engine.Runner.
func (cp *completion) Run(now uint64) {
	l, r, v := cp.l, cp.r, cp.v
	cp.r = nil
	l.compFree = append(l.compFree, cp)
	l.finish(r, now, v)
}

func (l *L1Ctrl) scheduleDone(delay uint64, r *MemRequest, v uint64) {
	var cp *completion
	if n := len(l.compFree); n > 0 {
		cp = l.compFree[n-1]
		l.compFree[n-1] = nil
		l.compFree = l.compFree[:n-1]
	} else {
		cp = &completion{l: l}
	}
	cp.r, cp.v = r, v
	l.env.AfterRunner(delay, cp)
}

// complete schedules the request's Done after the L1 hit latency.
func (l *L1Ctrl) complete(r *MemRequest, v uint64) {
	if r == nil || r.Done == nil {
		return
	}
	l.scheduleDone(l.cfg.HitLatency, r, v)
}

// completeNow fires Done without additional latency (the transaction
// already paid its way through the network).
func (l *L1Ctrl) completeNow(r *MemRequest, v uint64) {
	if r == nil || r.Done == nil {
		return
	}
	l.scheduleDone(0, r, v)
}

// finish is the single completion point: it closes the observability
// span, records miss latency for every miss the request took, and
// fires Done. missStarts is drained most-recent-first, matching the
// nesting order of the Done-wrapping closures it replaces.
func (l *L1Ctrl) finish(r *MemRequest, now uint64, v uint64) {
	l.endSpan(r, now)
	for i := len(r.missStarts) - 1; i >= 0; i-- {
		l.Stats.MissLatency.Observe(int(now - r.missStarts[i]))
	}
	r.missStarts = r.missStarts[:0]
	r.Done(now, v)
}

// miss sends the wired request to the home directory.
func (l *L1Ctrl) miss(line addrspace.Line, r *MemRequest, isSharer bool) {
	kind := pendLoad
	t := MsgGetS
	if r.IsRMW {
		kind, t = pendRMW, MsgGetX
	} else if r.IsWrite {
		kind, t = pendStore, MsgGetX
	}
	if kind == pendLoad {
		l.Stats.LoadMisses.Inc()
	} else {
		l.Stats.StoreMisses.Inc()
	}
	// Record the miss completion latency (Access to Done).
	if r.Done != nil {
		r.missStarts = append(r.missStarts, l.env.Now())
	}
	switch kind {
	case pendLoad:
		l.beginSpan(r, line, obs.ClassWiredLoad)
	case pendStore:
		l.beginSpan(r, line, obs.ClassWiredStore)
	case pendRMW:
		l.beginSpan(r, line, obs.ClassWiredRMW)
	}
	p := l.newPending(line, kind, r, isSharer)
	l.pending.put(line, p)
	if isSharer {
		// Pin the resident Shared copy for the duration of the upgrade:
		// evicting it would send a PutS that trails the in-flight
		// request and reaches the home one membership epoch late, where
		// it would remove a live pointer (the MSHR holds the line).
		if ln := l.data.Lookup(line); ln != nil {
			ln.NonEvict = true
		}
	}
	l.sendRequest(p, t)
}

// newPending builds a pending-transaction entry, recycling a released
// one when available; reuse bumps the generation stamp and keeps the
// waiters scratch array.
func (l *L1Ctrl) newPending(line addrspace.Line, kind pendingKind, r *MemRequest, isSharer bool) *pendingReq {
	if n := len(l.pendFree); n > 0 {
		p := l.pendFree[n-1]
		l.pendFree[n-1] = nil
		l.pendFree = l.pendFree[:n-1]
		*p = pendingReq{line: line, kind: kind, req: r, isSharer: isSharer,
			started: l.env.Now(), gen: p.gen + 1, waiters: p.waiters[:0]}
		return p
	}
	return &pendingReq{line: line, kind: kind, req: r, isSharer: isSharer,
		started: l.env.Now(), gen: 1}
}

// releasePending returns a dissolved entry to the free list. Callers
// must have removed it from the pending table AND be done with its
// waiters slice (the backing array is reused); paths that hand the
// waiters slice onward simply skip the release and let the GC take the
// entry.
func (l *L1Ctrl) releasePending(p *pendingReq) {
	for i := range p.waiters {
		p.waiters[i] = nil // drop request references for the GC
	}
	p.waiters = p.waiters[:0]
	p.req = nil
	l.pendFree = append(l.pendFree, p)
}

func (l *L1Ctrl) sendRequest(p *pendingReq, t MsgType) {
	l.reqSeq++
	p.reqID = l.reqSeq
	if l.cfg.Trace != nil {
		var sp uint64
		if p.req != nil {
			sp = p.req.obsSpan
		}
		l.cfg.Trace.Emit(obs.Event{Cycle: l.env.Now(), Kind: obs.EvL1Miss,
			Node: int32(l.id), Other: int32(l.env.HomeOf(p.line)),
			Line: p.line, A: sp, B: p.reqID})
	}
	l.env.SendWired(l.id, l.env.HomeOf(p.line), PortHome, &Msg{
		Type: t, Line: p.line, Src: l.id, Requester: l.id, ReqID: p.reqID,
		IsSharer: p.isSharer,
	})
}

// beginSpan opens an observability span for the request unless it
// already carries one (NACK retries, wireless aborts and wired
// fallbacks continue the original span, so a span's latency is the
// core's full wait). The matching EvTxnEnd is emitted by endSpan from
// the completion path, which fires exactly once at final completion —
// the span state rides in the request itself, so tracing adds no
// closures and no allocations.
func (l *L1Ctrl) beginSpan(r *MemRequest, line addrspace.Line, cl obs.Class) {
	if l.cfg.Trace == nil || r == nil || r.obsSpan != 0 {
		return
	}
	l.spanSeq++
	r.obsSpan = l.spanSeq
	r.obsClass = cl
	l.cfg.Trace.Emit(obs.Event{Cycle: l.env.Now(), Kind: obs.EvTxnBegin,
		Node: int32(l.id), Other: obs.NoNode, Line: line, A: r.obsSpan, B: uint64(cl)})
}

// endSpan closes the request's open span, if any, at completion time.
func (l *L1Ctrl) endSpan(r *MemRequest, now uint64) {
	if l.cfg.Trace == nil || r.obsSpan == 0 {
		return
	}
	l.cfg.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvTxnEnd,
		Node: int32(l.id), Other: obs.NoNode, Line: addrspace.LineOf(r.Addr),
		A: r.obsSpan, B: uint64(r.obsClass)})
	r.obsSpan = 0
}

// wirelessStore performs a store or RMW on a line in W state: the
// update is broadcast on the wireless data channel, and local state
// changes only at the serialization point (§IV-C).
//
//proto:stop
func (l *L1Ctrl) wirelessStore(ln *cache.Line, r *MemRequest) {
	line := ln.Addr
	w := addrspace.WordOf(r.Addr)
	if r.IsRMW && r.RMW == RMWCompareSwap && ln.Words[w] != r.Expected {
		// A failed compare-and-swap performs no store: it is just an
		// atomic read of the W line and completes locally without
		// consuming wireless bandwidth.
		old := ln.Words[w]
		ln.UpdateCount = 0
		l.observeRead(r.Addr, old)
		l.complete(r, old)
		return
	}
	l.tracef(l.env.Now(), line, "l1 %d: wirelessStore queued rmw=%v write=%v val=%d", l.id, r.IsRMW, r.IsWrite, r.Value)
	if r.IsRMW {
		l.beginSpan(r, line, obs.ClassWirelessRMW)
	} else {
		l.beginSpan(r, line, obs.ClassWirelessStore)
	}
	ww := &wirelessWrite{line: line, word: w, req: r}
	if r.IsRMW {
		ww.oldVal = ln.Words[w]
		ln.NonEvict = true // pin between read and write (§IV-C)
	}
	l.wwrites.put(line, ww)
	value := r.Value
	if r.IsRMW {
		value = r.RMW.Apply(ww.oldVal, r.Value, r.Expected)
	}
	upd := WirUpd{Line: line, Word: w, Value: value, Writer: l.id}
	ww.cancel = l.env.TransmitWireless(l.id, line, upd, false,
		func(now uint64) { l.wirelessTxDone(ww, upd) },
		func(now uint64, jammed bool) { l.wirelessTxAborted(ww, jammed) },
	)
}

// wirelessTxDone runs at the serialization point of this node's WirUpd.
// The write is globally ordered here: all sharers and the home merge the
// value when the broadcast delivers, so the store completes even if our
// own copy of the line was evicted while the transmission was queued.
//
//proto:stop
func (l *L1Ctrl) wirelessTxDone(ww *wirelessWrite, upd WirUpd) {
	if ww.aborted {
		return
	}
	l.wwrites.del(ww.line)
	l.wwFails.del(ww.line) // the medium delivered; reset the backoff
	ln := l.data.Lookup(ww.line)
	if ww.req.IsRMW && (ln == nil || ln.State != cache.Wireless) {
		// RMW lines are pinned (NonEvict) and every invalidating path
		// cancels the queued transmission first.
		l.fail(ww.line, "wireless RMW serialized without its line")
		return
	}
	if ln != nil && ln.State == cache.Wireless {
		ln.NonEvict = false
		ln.Words[ww.word] = upd.Value
		ln.UpdateCount = 0
	}
	l.Stats.WirelessWrites.Inc()
	if l.cfg.Trace != nil {
		l.cfg.Trace.Emit(obs.Event{Cycle: l.env.Now(), Kind: obs.EvWirUpd,
			Node: int32(l.id), Other: obs.NoNode, Line: ww.line,
			A: ww.req.obsSpan, B: uint64(ww.word)})
	}
	l.tracef(l.env.Now(), ww.line, "l1 %d: WirUpd serialized word=%d val=%d rmw=%v", l.id, ww.word, upd.Value, ww.req.IsRMW)
	l.serializeWrite(ww.line.WordAddr(ww.word), upd.Value)
	if ww.req.IsRMW {
		l.tracef(l.env.Now(), ww.line, "l1 %d: RMW complete old=%d new=%d", l.id, ww.oldVal, upd.Value)
		l.observeRead(ww.line.WordAddr(ww.word), ww.oldVal)
		l.completeNow(ww.req, ww.oldVal)
	} else {
		l.completeNow(ww.req, upd.Value)
	}
	l.drainWaitersFor(ww.line)
}

// wirelessTxAborted runs when the transmission could not deliver:
// jammed by a directory protecting the line, or (jammed=false)
// abandoned after the channel's bounded fault retries. Either way the
// write stays pending and re-dispatches after a delay; if the line has
// left W by then, the retry falls back to the wired path. Fault aborts
// back off exponentially per line — the channel is evidently bad, and
// hammering it only burns energy while the directory's demotion
// countdown runs.
//
//proto:stop
func (l *L1Ctrl) wirelessTxAborted(ww *wirelessWrite, jammed bool) {
	if ww.aborted {
		return
	}
	l.wwrites.del(ww.line)
	ww.aborted = true
	ln := l.data.Lookup(ww.line)
	if ln != nil {
		ln.NonEvict = false
	}
	delay := l.retryJitter()
	if !jammed {
		l.Stats.WirelessTxFailures.Inc()
		fails, _ := l.wwFails.get(ww.line)
		fails++
		l.wwFails.put(ww.line, fails)
		delay <<= uint(min(fails, 5))
	}
	l.tracef(l.env.Now(), ww.line, "l1 %d: wireless tx aborted (jammed=%v), requeue after %d", l.id, jammed, delay)
	reqs := append([]*MemRequest{ww.req}, l.absorbShim(ww.line)...)
	l.env.After(delay, func(now uint64) {
		for _, r := range reqs {
			l.Access(r) // re-dispatch; state decides wired vs wireless
		}
	})
}

// drainWaitersFor re-dispatches accesses that queued behind a completed
// transaction on the line.
func (l *L1Ctrl) drainWaitersFor(line addrspace.Line) {
	p, ok := l.pending.get(line)
	if !ok || p.req != nil {
		return
	}
	// Shim entry created to queue behind a wireless write.
	l.pending.del(line)
	for _, r := range p.waiters {
		l.Access(r)
	}
	l.releasePending(p)
}

func (l *L1Ctrl) retryJitter() uint64 {
	l.retrySeed = l.retrySeed*6364136223846793005 + 1442695040888963407
	return l.cfg.RetryDelay + (l.retrySeed>>33)%l.cfg.RetryDelay
}

// serializeWrite and observeRead feed the optional value-coherence
// checker.
func (l *L1Ctrl) serializeWrite(a addrspace.Addr, v uint64) {
	if l.OnSerializedWrite != nil {
		l.OnSerializedWrite(l.env.Now(), a, v)
	}
}

func (l *L1Ctrl) observeRead(a addrspace.Addr, v uint64) {
	if l.OnObservedRead != nil {
		l.OnObservedRead(l.env.Now(), l.id, a, v)
	}
}

// HandleWired dispatches a wired message delivered to this L1.
func (l *L1Ctrl) HandleWired(now uint64, m *Msg) {
	switch m.Type {
	case MsgDataS, MsgDataE, MsgDataM, MsgDataOwnerS, MsgDataOwnerM, MsgWirUpgr:
		l.handleDataResponse(now, m)
	case MsgNACK:
		l.handleNACK(m)
	case MsgWDiscard:
		l.handleWDiscard(m)
	case MsgInv:
		l.handleInv(m)
	case MsgFwdGetS:
		l.handleFwdGetS(m)
	case MsgFwdGetX:
		l.handleFwdGetX(m)
	case MsgRecall:
		l.handleRecall(m)
	case MsgPutAck:
		l.victims.del(m.Line)
	default:
		l.fail(m.Line, "L1 cannot handle %v from %d", m.Type, m.Src)
	}
}

// handleDataResponse applies a data grant. A grant whose ReqID matches
// the line's outstanding request completes it; any other grant answers
// an abandoned request and is installed idempotently (the directory has
// already committed the state change), completing nothing.
func (l *L1Ctrl) handleDataResponse(now uint64, m *Msg) {
	// If the target set is entirely pinned (RMW windows, in-flight
	// upgrades), the fill waits at the network interface; pins clear
	// within a bounded number of cycles.
	if l.data.Lookup(m.Line) == nil {
		if _, ok := l.data.Victim(m.Line); !ok {
			mm := m
			l.env.After(1, func(now uint64) { l.handleDataResponse(now, mm) })
			return
		}
	}
	p, _ := l.pending.get(m.Line)
	matches := p != nil && p.req != nil && p.reqID == m.ReqID
	toneHeld := false
	if matches {
		l.pending.del(m.Line)
		toneHeld = p.toneHeld
		if p.toneHeld {
			l.env.LowerTone()
			p.toneHeld = false
		}
	}

	var st cache.State
	switch m.Type {
	case MsgDataS, MsgDataOwnerS:
		st = cache.Shared
	case MsgDataE:
		st = cache.Exclusive
	case MsgDataM, MsgDataOwnerM:
		st = cache.Modified
	case MsgWirUpgr:
		st = cache.Wireless
	default:
		l.fail(m.Line, "handleDataResponse dispatched a non-grant %v from %d", m.Type, m.Src)
		return
	}
	wirelessGrant := m.Type == MsgWirUpgr
	if toneHeld && st == cache.Shared && !p.invalidated {
		// ToneAck case (iii): a BrWirUpgr arrived while our request was
		// in flight and the directory has counted us into the wireless
		// sharer group — the line installs in W ("if it has received
		// the line, it has set its cache state for the line to W",
		// §III-B1). Not so for a grant an invalidation passed in
		// flight: the directory explicitly uncounted us, so installing
		// W here would create an uncounted wireless copy; the use-once
		// path below consumes it instead.
		st = cache.Wireless
		wirelessGrant = true
	}

	// A stale Shared grant is dropped rather than installed: the
	// directory may have invalidated the sharer set since, and an
	// untracked S copy breaks coherence. (Dropping is safe — directory
	// pointers may be a superset of holders.) Stale ownership grants
	// must install: the directory has committed us as owner.
	if !matches && st == cache.Shared {
		l.tracef(now, m.Line, "l1 %d: dropping stale %v", l.id, m.Type)
		return
	}
	// A matching Shared fill that an invalidation passed in flight is
	// consumed use-once: serve the load from the message data without
	// installing the line.
	if matches && st == cache.Shared && p.invalidated {
		l.tracef(now, m.Line, "l1 %d: use-once %v (invalidated in flight)", l.id, m.Type)
		w := addrspace.WordOf(p.req.Addr)
		v := m.Words[w]
		l.observeRead(p.req.Addr, v)
		l.completeNow(p.req, v)
		l.redispatch(p.waiters)
		l.releasePending(p)
		return
	}

	// A queued wireless write cannot survive a non-W install (the line
	// is leaving W); pull it back and re-dispatch it after the install.
	if st != cache.Wireless {
		if ww := l.cancelQueuedWrite(m.Line); ww != nil {
			l.requeue(append([]*MemRequest{ww.req}, l.absorbShim(m.Line)...))
		}
	}

	l.tracef(now, m.Line, "l1 %d: response %v -> install %v (matches=%v tone=%v)", l.id, m.Type, st, matches, toneHeld)
	ln := l.install(m.Line, st, m.Words)
	if ln == nil {
		return // install failed a protocol check; the error is latched
	}
	if l.cfg.Trace != nil {
		l.cfg.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvL1Fill,
			Node: int32(l.id), Other: int32(m.Src), Line: m.Line,
			A: uint64(m.Type), B: uint64(st)})
	}
	if _, stillPending := l.pending.get(m.Line); stillPending {
		// A different request of ours is still outstanding for this
		// line (this grant answered an abandoned one): keep the copy
		// pinned so its eviction notice cannot trail that request.
		ln.NonEvict = true
	}

	if m.Type == MsgDataOwnerM {
		// Ownership arrived from the old owner; tell the home so it can
		// record us and unblock the entry.
		l.env.SendWired(l.id, l.env.HomeOf(m.Line), PortHome, &Msg{
			Type: MsgXferAck, Line: m.Line, Src: l.id,
		})
	}
	if m.Type == MsgWirUpgr {
		ln.UpdateCount = 0
		if m.NeedAck {
			l.env.SendWired(l.id, l.env.HomeOf(m.Line), PortHome, &Msg{
				Type: MsgWirUpgrAck, Line: m.Line, Src: l.id,
			})
		}
	}
	if !matches {
		return
	}

	if wirelessGrant {
		ln.UpdateCount = 0
		// Table I I->W: a read completes locally; a write or RMW issues
		// its update wirelessly.
		switch p.kind {
		case pendLoad:
			w := addrspace.WordOf(p.req.Addr)
			v := ln.Words[w]
			l.observeRead(p.req.Addr, v)
			l.completeNow(p.req, v)
		default:
			l.wirelessStore(ln, p.req)
		}
		l.redispatch(p.waiters)
		l.releasePending(p)
		return
	}

	// Wired grant: complete the access.
	w := addrspace.WordOf(p.req.Addr)
	switch p.kind {
	case pendLoad:
		v := ln.Words[w]
		l.observeRead(p.req.Addr, v)
		l.completeNow(p.req, v)
	case pendStore:
		ln.State = cache.Modified
		ln.Words[w] = p.req.Value
		ln.Dirty = true
		l.serializeWrite(p.req.Addr, p.req.Value)
		l.completeNow(p.req, p.req.Value)
	case pendRMW:
		ln.State = cache.Modified
		old := ln.Words[w]
		ln.Words[w] = p.req.RMW.Apply(old, p.req.Value, p.req.Expected)
		ln.Dirty = true
		l.serializeWrite(p.req.Addr, ln.Words[w])
		l.observeRead(p.req.Addr, old)
		l.completeNow(p.req, old)
	}
	l.redispatch(p.waiters)
	l.releasePending(p)
}

// redispatch re-enters queued accesses now that the line is resident.
//
//proto:stop
func (l *L1Ctrl) redispatch(waiters []*MemRequest) {
	for _, r := range waiters {
		req := r
		l.env.After(0, func(now uint64) { l.Access(req) })
	}
}

// handleNACK retries the bounced request after a jittered delay. Stale
// NACKs (shim entries or superseded request ids) are ignored. At retry
// time the request may have become locally satisfiable — an abandoned
// grant may have installed the line meanwhile — in which case it is
// re-dispatched through Access instead of re-sent.
func (l *L1Ctrl) handleNACK(m *Msg) {
	p, ok := l.pending.get(m.Line)
	if !ok || p.req == nil || p.reqID != m.ReqID {
		return
	}
	l.Stats.NACKs.Inc()
	if p.toneHeld {
		// The node had a request in flight when a BrWirUpgr arrived;
		// receiving the bounce completes its part of the ToneAck.
		l.env.LowerTone()
		p.toneHeld = false
	}
	p.retries++
	delay := l.retryJitter() * uint64(min(p.retries, 4))
	gen := p.gen
	l.env.After(delay, func(now uint64) {
		// The generation check rejects a recycled entry that landed on
		// the same line again: same pointer, different transaction.
		if pp, ok := l.pending.get(m.Line); !ok || pp != p || p.gen != gen {
			return
		}
		if ln := l.data.Lookup(m.Line); ln != nil && l.satisfies(ln, p) {
			l.pending.del(m.Line)
			ln.NonEvict = false
			l.requeue(append([]*MemRequest{p.req}, p.waiters...))
			l.releasePending(p)
			return
		}
		t := MsgGetS
		if p.kind != pendLoad {
			t = MsgGetX
		}
		p.isSharer = false
		if ln := l.data.Lookup(m.Line); ln != nil && ln.State == cache.Shared {
			p.isSharer = true
			ln.NonEvict = true
		}
		l.sendRequest(p, t)
	})
}

// satisfies reports whether the resident line can serve the pending
// request without a directory transaction.
func (l *L1Ctrl) satisfies(ln *cache.Line, p *pendingReq) bool {
	if p.kind == pendLoad {
		return ln.State.Valid()
	}
	switch ln.State {
	case cache.Modified, cache.Exclusive, cache.Wireless:
		return true
	default:
		return false // Shared cannot absorb a write; Invalid holds nothing
	}
}

// handleWDiscard resolves a discarded stale upgrade (Table II W->W case
// 2) that could not resolve locally: the requester lost its copy before
// the BrWirUpgr, so it re-requests as a non-sharer.
func (l *L1Ctrl) handleWDiscard(m *Msg) {
	p, ok := l.pending.get(m.Line)
	if !ok || p.req == nil || p.reqID != m.ReqID {
		return // resolved locally via the BrWirUpgr, as Table II expects
	}
	if p.toneHeld {
		l.env.LowerTone()
		p.toneHeld = false
	}
	if ln := l.data.Lookup(m.Line); ln != nil && l.satisfies(ln, p) {
		l.pending.del(m.Line)
		ln.NonEvict = false
		l.requeue(append([]*MemRequest{p.req}, p.waiters...))
		l.releasePending(p)
		return
	}
	p.isSharer = false
	t := MsgGetS
	if p.kind != pendLoad {
		t = MsgGetX
	}
	l.sendRequest(p, t)
}

// requeue re-dispatches requests through Access on the next cycle, in
// order, so nothing is stranded behind a dissolved transaction.
//
//proto:stop
func (l *L1Ctrl) requeue(reqs []*MemRequest) {
	if len(reqs) == 0 {
		return
	}
	l.env.After(1, func(now uint64) {
		for _, r := range reqs {
			if r != nil {
				l.Access(r)
			}
		}
	})
}

// absorbShim removes the shim entry (accesses queued behind a wireless
// write) and returns its waiters for requeueing.
func (l *L1Ctrl) absorbShim(line addrspace.Line) []*MemRequest {
	p, ok := l.pending.get(line)
	if !ok || p.req != nil {
		return nil
	}
	l.pending.del(line)
	// The entry is not released: the returned slice aliases its waiters
	// array, so the caller keeps it and the GC reclaims the entry.
	return p.waiters
}

// handleInv invalidates a (possibly absent) Shared copy and always
// acks, so the home's ack accounting is exact even across races with
// in-flight evictions. An Inv that passes an in-flight owner-sourced
// fill (the owner sends data directly, on a different path than the
// home's Inv) marks the pending request so the fill is consumed
// use-once instead of leaving an untracked Shared copy behind.
func (l *L1Ctrl) handleInv(m *Msg) {
	if p, ok := l.pending.get(m.Line); ok && p.req != nil {
		p.invalidated = true
	}
	if ln := l.data.Lookup(m.Line); ln != nil {
		switch ln.State {
		case cache.Shared:
			l.data.Invalidate(m.Line)
		case cache.Exclusive, cache.Modified, cache.Wireless:
			l.fail(m.Line, "Inv from %d for a line held in %v", m.Src, ln.State)
			return
		default:
			// Lookup never returns an Invalid line; nothing to drop.
		}
	}
	l.env.SendWired(l.id, m.Src, PortHome, &Msg{Type: MsgInvAck, Line: m.Line, Src: l.id})
}

// ownerCopy fetches the line from the cache or the victim buffer for a
// forwarded request; the home's blocking discipline guarantees one of
// the two holds it. ok=false reports that guarantee broken (a protocol
// error has been filed and the forward must be dropped).
func (l *L1Ctrl) ownerCopy(line addrspace.Line) (words [addrspace.WordsPerLine]uint64, dirty bool, fromCache *cache.Line, ok bool) {
	if ln := l.data.Lookup(line); ln != nil {
		return ln.Words, ln.Dirty, ln, true
	}
	if v, ok := l.victims.get(line); ok {
		return v.words, v.dirty, nil, true
	}
	l.fail(line, "forwarded request for a line this L1 does not hold")
	return words, false, nil, false
}

// handleFwdGetS: we own the line; send data to the requester, copy back
// to home, downgrade to Shared (MESI).
func (l *L1Ctrl) handleFwdGetS(m *Msg) {
	words, dirty, ln, ok := l.ownerCopy(m.Line)
	if !ok {
		return
	}
	if ln != nil {
		ln.State = cache.Shared
		ln.Dirty = false
	}
	l.env.SendWired(l.id, m.Requester, PortL1, &Msg{
		Type: MsgDataOwnerS, Line: m.Line, Src: l.id, ReqID: m.ReqID, HasData: true, Words: words,
	})
	l.env.SendWired(l.id, m.Src, PortHome, &Msg{
		Type: MsgCopyBack, Line: m.Line, Src: l.id, Requester: m.Requester,
		HasData: true, NeedAck: dirty, Words: words,
	})
}

// handleFwdGetX: we own the line; transfer data+ownership to the
// requester and invalidate our copy.
func (l *L1Ctrl) handleFwdGetX(m *Msg) {
	words, _, ln, ok := l.ownerCopy(m.Line)
	if !ok {
		return
	}
	if ln != nil {
		l.data.Invalidate(m.Line)
	}
	l.env.SendWired(l.id, m.Requester, PortL1, &Msg{
		Type: MsgDataOwnerM, Line: m.Line, Src: l.id, ReqID: m.ReqID, HasData: true, Words: words,
	})
}

// handleRecall: home is evicting our owned line's directory entry.
func (l *L1Ctrl) handleRecall(m *Msg) {
	var resp *Msg
	if ln := l.data.Lookup(m.Line); ln != nil {
		resp = &Msg{Type: MsgRecallAck, Line: m.Line, Src: l.id, HasData: ln.Dirty, Words: ln.Words}
		l.data.Invalidate(m.Line)
	} else if v, ok := l.victims.get(m.Line); ok {
		resp = &Msg{Type: MsgRecallAck, Line: m.Line, Src: l.id, HasData: v.dirty, Words: v.words}
	} else {
		resp = &Msg{Type: MsgRecallAck, Line: m.Line, Src: l.id}
	}
	l.env.SendWired(l.id, m.Src, PortHome, resp)
}

// install places a granted line, evicting a victim first if needed.
func (l *L1Ctrl) install(line addrspace.Line, st cache.State, words [addrspace.WordsPerLine]uint64) *cache.Line {
	if l.data.Lookup(line) != nil {
		// Already resident (e.g. an upgrade grant): reuse the slot in
		// place; no victim is displaced.
		return l.data.Install(line, st, words)
	}
	victim, ok := l.data.Victim(line)
	if !ok {
		// Every way pinned by RMW windows; extremely short-lived.
		// Installing over a pinned line is unsafe, so fail loudly —
		// configs must keep ways > concurrent RMWs.
		l.fail(line, "install with the target set fully pinned")
		return nil
	}
	if victim != nil {
		l.evict(victim)
	}
	return l.data.Install(line, st, words)
}

// evict removes a resident line, notifying the home (the paper: a node
// always informs the directory when any line is evicted). Every valid
// stable state invalidates locally and sends the matching Put; the
// walker cannot see the Invalidate through the cache indirection, so
// the rows are annotated.
//
//proto:event Evict
//proto:transition l1 S Evict -> I
//proto:transition l1 E Evict -> I
//proto:transition l1 M Evict -> I
//proto:transition l1 W Evict -> I
func (l *L1Ctrl) evict(ln *cache.Line) {
	l.tracef(l.env.Now(), ln.Addr, "l1 %d: evict state=%v", l.id, ln.State)
	l.Stats.Evictions.Inc()
	line := ln.Addr
	// A queued (not yet serialized) wireless write to the victim is
	// pulled back and re-dispatched; it will re-acquire the line via the
	// wired path. If the transmission is already on the air it will
	// serialize coherently (everyone else merges it) and its completion
	// handler copes with the missing local line.
	if ww, ok := l.wwrites.get(line); ok && ww.cancel() {
		ww.aborted = true
		l.wwrites.del(line)
		l.requeue(append([]*MemRequest{ww.req}, l.absorbShim(line)...))
	}
	home := l.env.HomeOf(line)
	var t MsgType
	hasData := false
	switch ln.State {
	case cache.Shared:
		t = MsgPutS
	case cache.Exclusive:
		t = MsgPutE
		l.victims.put(line, victimEntry{words: ln.Words, state: ln.State, dirty: false})
	case cache.Modified:
		t = MsgPutM
		hasData = true
		l.victims.put(line, victimEntry{words: ln.Words, state: ln.State, dirty: true})
	case cache.Wireless:
		t = MsgPutW // Table I W->I: cache evicts W line
	default:
		l.fail(line, "evicting a line in state %v", ln.State)
		return
	}
	msg := &Msg{Type: t, Line: line, Src: l.id, HasData: hasData}
	if hasData {
		msg.Words = ln.Words
	}
	l.data.Invalidate(line)
	l.env.SendWired(l.id, home, PortHome, msg)
}

// HandleWireless processes a broadcast delivered to this node's
// transceiver. Every node receives every successful transmission.
func (l *L1Ctrl) HandleWireless(now uint64, sender int, payload any) {
	switch p := payload.(type) {
	case BrWirUpgr:
		l.handleBrWirUpgr(p)
	case WirUpd:
		if sender != l.id {
			l.handleRemoteUpdate(p)
		}
	case WirDwgr:
		l.handleWirDwgr(p)
	case WirInv:
		l.handleWirInv(p)
	}
}

// handleBrWirUpgr implements the cache side of the ToneAck operation
// and the S->W transition (Table I).
func (l *L1Ctrl) handleBrWirUpgr(p BrWirUpgr) {
	ln := l.data.Lookup(p.Line)
	st := cache.Invalid
	if ln != nil {
		st = ln.State
	}
	pend, _ := l.pending.get(p.Line)
	l.tracef(l.env.Now(), p.Line, "l1 %d: BrWirUpgr state=%v pending=%v", l.id, st, pend != nil)

	if ln != nil && ln.State == cache.Shared {
		ln.State = cache.Wireless
		ln.UpdateCount = 0
		if pend != nil && pend.req != nil {
			// Table I S->W case 2: our upgrade GetX raced the
			// transition; the home will discard it. Resolve locally:
			// the line is W now, issue the write wirelessly.
			l.pending.del(p.Line)
			ln.NonEvict = false
			req := pend.req
			waiters := pend.waiters
			l.wirelessStore(ln, req)
			l.redispatch(waiters)
			return
		}
		return
	}
	if pend != nil && pend.req != nil && !pend.toneHeld {
		// Case (iii) of the ToneAck: we have a wired request in flight
		// for this line; hold the tone until the line or a bounce
		// arrives.
		pend.toneHeld = true
		l.env.RaiseTone()
	}
	// Nodes without the line and without a pending request complete
	// their ToneAck check immediately (never raise the tone).
}

// handleRemoteUpdate merges a remote wireless write (Table I W->W) and
// applies the UpdateCount decay rule. A pending local RMW observes the
// update and aborts per §IV-C.
func (l *L1Ctrl) handleRemoteUpdate(p WirUpd) {
	ln := l.data.Lookup(p.Line)
	if ln == nil || ln.State != cache.Wireless {
		return
	}
	ln.Words[p.Word] = p.Value
	ln.UpdateCount++
	l.Stats.UpdatesReceived.Inc()

	if ww, busy := l.wwrites.get(p.Line); busy {
		if ww.req.IsRMW {
			// §IV-C: an incoming update to the line between the RMW's
			// read and the guaranteed transmission of its write fails
			// the write; the whole RMW retries.
			if !ww.cancel() {
				l.fail(p.Line, "remote update delivered while the local transmission is active")
				return
			}
			ww.aborted = true
			l.wwrites.del(p.Line)
			ln.NonEvict = false
			l.Stats.RMWRetries.Inc()
			reqs := append([]*MemRequest{ww.req}, l.absorbShim(p.Line)...)
			l.env.After(l.retryJitter(), func(now uint64) {
				for _, r := range reqs {
					l.Access(r)
				}
			})
		}
		return
	}
	if ln.UpdateCount < l.cfg.UpdateCountMax {
		return
	}
	// The local core is not using the line: self-invalidate and tell
	// the directory — unless a wired transaction is mid-flight on it.
	if _, busy := l.pending.get(p.Line); busy {
		return
	}
	l.tracef(l.env.Now(), p.Line, "l1 %d: self-invalidate (decay)", l.id)
	if l.cfg.Trace != nil {
		l.cfg.Trace.Emit(obs.Event{Cycle: l.env.Now(), Kind: obs.EvWDecay,
			Node: int32(l.id), Other: int32(p.Writer), Line: p.Line,
			A: uint64(ln.UpdateCount)})
	}
	l.Stats.SelfInvalidations.Inc()
	l.data.Invalidate(p.Line)
	l.env.SendWired(l.id, l.env.HomeOf(p.Line), PortHome, &Msg{Type: MsgPutW, Line: p.Line, Src: l.id})
}

// cancelQueuedWrite pulls back a queued (never active — a broadcast
// delivery implies the medium just freed) wireless write for the line
// and re-dispatches its request; it returns the canceled write, or nil
// when none was queued.
func (l *L1Ctrl) cancelQueuedWrite(line addrspace.Line) *wirelessWrite {
	ww, ok := l.wwrites.get(line)
	if !ok {
		return nil
	}
	if !ww.cancel() {
		l.fail(line, "wireless delivery overlaps an active local transmission")
		return nil
	}
	ww.aborted = true
	l.wwrites.del(line)
	if ln := l.data.Lookup(line); ln != nil {
		ln.NonEvict = false
	}
	return ww
}

// handleWirDwgr moves our W copy back to Shared and identifies
// ourselves to the home via the wired network (Table I W->S).
func (l *L1Ctrl) handleWirDwgr(p WirDwgr) {
	ln := l.data.Lookup(p.Line)
	st := cache.Invalid
	if ln != nil {
		st = ln.State
	}
	l.tracef(l.env.Now(), p.Line, "l1 %d: WirDwgr state=%v", l.id, st)
	// A queued wireless write can no longer serialize in W; convert it
	// to a wired access after the downgrade.
	if ww := l.cancelQueuedWrite(p.Line); ww != nil {
		l.requeue(append([]*MemRequest{ww.req}, l.absorbShim(p.Line)...))
	}
	if ln == nil || ln.State != cache.Wireless {
		return
	}
	ln.State = cache.Shared
	ln.Dirty = false
	l.env.SendWired(l.id, p.Home, PortHome, &Msg{Type: MsgWirDwgrAck, Line: p.Line, Src: l.id})
}

// handleWirInv drops the line because the home evicted its entry; a
// pending wireless write is squashed and retried on the wired path
// (Table I W->I, §IV-C).
func (l *L1Ctrl) handleWirInv(p WirInv) {
	if ww := l.cancelQueuedWrite(p.Line); ww != nil {
		l.data.Invalidate(p.Line)
		if ww.req.IsRMW {
			l.Stats.RMWRetries.Inc()
		}
		l.requeue(append([]*MemRequest{ww.req}, l.absorbShim(p.Line)...))
		return
	}
	ln := l.data.Lookup(p.Line)
	if ln != nil && ln.State == cache.Wireless {
		l.data.Invalidate(p.Line)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
