package coherence

import (
	"fmt"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/obs"
	"repro/internal/stats"
)

// DirState is the stable state of a directory entry.
type DirState uint8

// Directory entry states (Fig. 3/4b): the MESI directory states plus W.
const (
	DirInvalid  DirState = iota // no cache holds the line (data may be in LLC)
	DirShared                   // read-only copies tracked by pointers (or B bit)
	DirOwned                    // one cache in E or M
	DirWireless                 // WiDir W state: SharerCount replaces pointers
)

// String names the state.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "DI"
	case DirShared:
		return "DS"
	case DirOwned:
		return "DO"
	case DirWireless:
		return "DW"
	}
	return fmt.Sprintf("DirState(%d)", uint8(s))
}

// txnKind identifies the in-flight transaction a busy entry is running.
type txnKind uint8

const (
	txNone       txnKind = iota
	txFetchMem           // waiting for MemData
	txFwdGetS            // waiting for the owner's CopyBack
	txFwdGetX            // waiting for the requester's XferAck
	txInvAll             // collecting InvAcks before granting ownership
	txSToW               // waiting for the BrWirUpgr ToneAck (Table II S->W)
	txWAddSharer         // waiting for WirUpgrAck (Table II W->W case 1)
	txWToS               // collecting WirDwgrAcks (Table II W->S)
	txEvict              // recalling/invalidating to evict the entry
)

// txn carries a busy entry's transaction context.
type txn struct {
	kind      txnKind
	requester int
	reqType   MsgType // original GetS/GetX for deferred grants
	reqID     uint64  // echoed in the eventual grant
	acksLeft  int
	ackIDs    []int
	jammed    bool
	cancelTx  func() bool // withdraws a still-queued wireless broadcast
	started   uint64      // cycle the transaction began (age watchdog)
}

// DirEntry is one directory entry co-located with its LLC line. The
// WiDir additions (Fig. 3) are the Wireless state and the reuse of the
// sharer-pointer field as SharerCount.
type DirEntry struct {
	Line         addrspace.Line
	State        DirState
	Sharers      []int  // DirShared precise pointers (<= MaxPointers)
	Broadcast    bool   // overflow: Dir_iB broadcast bit / Dir_iCV_r coarse mode
	CoarseVec    uint64 // Dir_iCV_r: one bit per CoarseRegion-node region
	SharerApprox int    // sharer count while overflowed
	Owner        int    // DirOwned
	OwnerDirty   bool   // owner may hold a Modified copy
	SharerCount  int    // DirWireless
	Words        [addrspace.WordsPerLine]uint64
	HasData      bool // LLC copy valid
	Dirty        bool // LLC copy newer than memory
	busy         *txn
	deferred     []*Msg // puts/acks queued while busy
	lru          uint64
	faultFails   int // consecutive failed wireless broadcasts (W demotion)

	// staleWired snapshots the wired-era sharer pointers that were
	// collapsed into SharerCount at the S->W commit. A wired eviction
	// notice (PutS/PutE/PutM) reaching the count-only DW state may
	// only decrement SharerCount if its sender is in this snapshot:
	// per-source FIFO ordering guarantees any core that is part of the
	// wireless membership delivered its older puts before joining, so
	// a notice from outside the snapshot is provably stale (e.g. an
	// owner deposed by a forward served from its victim buffer) and
	// decrementing for it would undercount the W->S demotion.
	staleWired []int
	// staleWiredAll marks an imprecise snapshot: the sharer set had
	// overflowed to broadcast/coarse mode at the upgrade, so sender
	// identities are unknown and any wired notice is counted.
	staleWiredAll bool

	// gen is the entry's generation stamp. Entries are pooled: when one
	// is released and later reused for another line, the stamp is
	// bumped, so any code that stashed an entry pointer across an
	// asynchronous boundary can verify it still addresses the same
	// incarnation instead of silently reading a recycled entry.
	gen uint64
}

// Gen returns the entry's generation stamp (see the field comment).
func (e *DirEntry) Gen() uint64 { return e.gen }

// takeStaleWired reports whether a wired eviction notice from src may
// decrement SharerCount, consuming src's snapshot slot so a second
// notice from the same node cannot double-count.
func (e *DirEntry) takeStaleWired(src int) bool {
	if e.staleWiredAll {
		return true
	}
	for i, n := range e.staleWired {
		if n == src {
			e.staleWired = append(e.staleWired[:i], e.staleWired[i+1:]...)
			return true
		}
	}
	return false
}

// Busy reports whether a transaction is in flight for the entry.
func (e *DirEntry) Busy() bool { return e.busy != nil }

// HomeStats aggregates per-slice directory measurements.
type HomeStats struct {
	GetS            stats.Counter
	GetX            stats.Counter
	NACKs           stats.Counter
	Invalidations   stats.Counter // wired Inv messages sent
	BroadcastInvs   stats.Counter // Dir_3B overflow invalidation rounds
	SToW            stats.Counter // wireless upgrades (Table II S->W)
	WToS            stats.Counter // wireless downgrades (Table II W->S)
	WirInvs         stats.Counter // W entry evictions (Table II W->I)
	FaultDemotions  stats.Counter // W->S downgrades forced by channel faults
	DirEvictions    stats.Counter
	MemReads        stats.Counter
	MemWrites       stats.Counter
	LLCAccesses     stats.Counter    // energy accounting
	SharersAtUpd    *stats.Histogram // Fig. 5: sharers updated per wireless write
	UpdateSharerSum stats.Counter    // numerator for the mean sharers metric
}

// DirScheme selects how the directory handles pointer overflow.
type DirScheme uint8

// The two limited-pointer overflow schemes from the paper's Section II-C
// (Agarwal et al. / Gupta et al.): Dir_iB sets a broadcast bit, so a
// later write invalidates every node; Dir_iCV_r falls back to a coarse
// bit vector where each bit covers a region of CoarseRegion nodes, so a
// later write invalidates only the regions that held sharers. WiDir
// transitions lines to the Wireless state before overflow can occur, so
// the scheme only shapes Baseline behaviour.
const (
	DirB DirScheme = iota
	DirCV
)

// String names the scheme as in the literature.
func (s DirScheme) String() string {
	if s == DirCV {
		return "Dir_iCV_r"
	}
	return "Dir_iB"
}

// HomeConfig parameterizes one LLC slice + directory controller.
type HomeConfig struct {
	Protocol        Protocol
	Scheme          DirScheme
	MaxPointers     int          // Dir_iB pointer count (Table III: 3)
	MaxWiredSharers int          // WiDir threshold (Table III: 3; <= MaxPointers)
	CoarseRegion    int          // Dir_iCV_r: nodes per coarse-vector bit (default 4)
	Entries         int          // LLC slice capacity in lines
	LLCLatency      uint64       // local bank round-trip (Table III: 12)
	Trace           obs.Sink     // structured event sink (nil = off)
	Log             *obs.LineLog // single-line protocol dump (nil = off)

	// FaultDemoteAfter is how many consecutive failed wireless
	// broadcasts for a W line (NoteWirelessFault) the directory
	// tolerates before demoting the line to wired S — the graceful
	// degradation path under sustained channel faults. Default 4.
	FaultDemoteAfter int

	// FaultDirDelay, when non-nil, draws extra LLC latency per
	// GetS/GetX (fault injection: tag-bank contention). The request is
	// simply served later; the NACK discipline makes this safe.
	FaultDirDelay func() uint64
}

// HomeCtrl is the directory controller of one node's LLC slice. It runs
// the home side of the wired MESI protocol (Dir_3B) and of WiDir's
// Table II transitions.
type HomeCtrl struct {
	id      int
	cfg     HomeConfig
	env     Env
	entries lineTable[*DirEntry]
	// entryFree recycles dead directory entries (with their Sharers and
	// deferred scratch arrays), so steady-state allocate/evict churn
	// stops hitting the allocator.
	entryFree []*DirEntry
	lruTick   uint64

	// Memory backing store: the golden contents of lines not resident in
	// any LLC slice. Shared across slices via the machine (set once).
	Memory *MemoryImage

	Stats HomeStats
}

// NewHome builds the controller for node id.
func NewHome(id int, cfg HomeConfig, env Env) *HomeCtrl {
	if cfg.MaxPointers == 0 {
		cfg.MaxPointers = 3
	}
	if cfg.MaxWiredSharers == 0 {
		cfg.MaxWiredSharers = cfg.MaxPointers
	}
	if cfg.MaxWiredSharers > cfg.MaxPointers {
		//lint:deterministic construction-time config validation; no Env exists yet to report a ProtocolError through
		panic("coherence: MaxWiredSharers must not exceed the directory pointer count")
	}
	if cfg.Entries == 0 {
		cfg.Entries = 8192
	}
	if cfg.LLCLatency == 0 {
		cfg.LLCLatency = 12
	}
	if cfg.CoarseRegion == 0 {
		cfg.CoarseRegion = 4
	}
	if cfg.FaultDemoteAfter == 0 {
		cfg.FaultDemoteAfter = 4
	}
	return &HomeCtrl{
		id:  id,
		cfg: cfg,
		env: env,
		Stats: HomeStats{
			SharersAtUpd: stats.NewHistogram(0, 6, 11, 26, 50),
		},
	}
}

// ID returns the node id.
func (h *HomeCtrl) ID() int { return h.id }

// Entry returns the directory entry for a line, or nil (for checkers).
func (h *HomeCtrl) Entry(l addrspace.Line) *DirEntry {
	e, _ := h.entries.get(l)
	return e
}

// ForEachEntry iterates entries in ascending line order for invariant
// checking and dumps, so checker reports and diagnostics are identical
// across runs regardless of table layout.
func (h *HomeCtrl) ForEachEntry(fn func(*DirEntry)) {
	for _, line := range h.entries.sortedKeys() {
		e, _ := h.entries.get(line)
		fn(e)
	}
}

// HasBusy reports whether any entry has a transaction in flight.
func (h *HomeCtrl) HasBusy() bool {
	busy := false
	h.entries.forEach(func(_ addrspace.Line, e *DirEntry) bool {
		if e.Busy() {
			busy = true
			return false
		}
		return true
	})
	return busy
}

// Describe renders the busy entries for diagnostics, in line order.
func (h *HomeCtrl) Describe() string {
	s := ""
	h.ForEachEntry(func(e *DirEntry) {
		if e.Busy() {
			s += fmt.Sprintf("line=%#x state=%v txn=%v acksLeft=%d deferred=%d; ",
				e.Line, e.State, e.busy.kind, e.busy.acksLeft, len(e.deferred))
		}
	})
	return s
}

// dumpEntry renders one entry's full state for protocol-error dumps.
func (h *HomeCtrl) dumpEntry(e *DirEntry) string {
	s := fmt.Sprintf("entry line=%#x state=%v sharers=%v bcast=%v count=%d owner=%d ownerDirty=%v hasData=%v dirty=%v deferred=%d",
		e.Line, e.State, e.Sharers, e.Broadcast, e.SharerCount, e.Owner, e.OwnerDirty, e.HasData, e.Dirty, len(e.deferred))
	if e.busy != nil {
		s += fmt.Sprintf(" txn=%v requester=%d acksLeft=%d ackIDs=%v started=%d",
			e.busy.kind, e.busy.requester, e.busy.acksLeft, e.busy.ackIDs, e.busy.started)
	}
	return s
}

// fail reports a protocol violation with the line's state dump and
// returns; the machine latches the error and ends the run.
func (h *HomeCtrl) fail(line addrspace.Line, format string, args ...any) {
	dump := "no entry"
	if e := h.Entry(line); e != nil {
		dump = h.dumpEntry(e)
	}
	if busy := h.Describe(); busy != "" {
		dump += " | busy: " + busy
	}
	h.env.ReportProtocolError(&ProtocolError{
		Cycle: h.env.Now(), Node: h.id, Ctrl: "home", Line: line,
		Reason: fmt.Sprintf(format, args...), Dump: dump,
	})
}

// OldestTxn returns the oldest in-flight transaction of this slice for
// the age watchdog and Diagnose, or ok=false when quiet. Selection is
// min-by (started, line), which no map order can perturb.
func (h *HomeCtrl) OldestTxn() (TxnInfo, bool) {
	var best *DirEntry
	// Min-by the unique (started, line) key; forEach order cannot
	// perturb the winner.
	h.entries.forEach(func(_ addrspace.Line, e *DirEntry) bool {
		if !e.Busy() {
			return true
		}
		if best == nil || e.busy.started < best.busy.started ||
			(e.busy.started == best.busy.started && e.Line < best.Line) {
			best = e
		}
		return true
	})
	if best == nil {
		return TxnInfo{}, false
	}
	t := best.busy
	info := TxnInfo{
		Node: h.id, Ctrl: "home", Line: best.Line,
		State: best.State.String(), Kind: t.kind.String(),
		Started: t.started, AcksLeft: t.acksLeft,
	}
	switch t.kind {
	case txFwdGetS, txFwdGetX:
		info.Waiting = []int{best.Owner}
	case txInvAll:
		info.Waiting = append([]int(nil), best.Sharers...)
	case txEvict:
		if best.State == DirOwned {
			info.Waiting = []int{best.Owner}
		} else {
			info.Waiting = append([]int(nil), best.Sharers...)
		}
	case txFetchMem, txSToW, txWAddSharer:
		info.Waiting = []int{t.requester}
	default:
		// txWToS collects WirDwgrAcks from sharers whose identities the
		// downgrade is still discovering; there is no node set to report.
	}
	return info, true
}

// NoteWirelessFault records one failed wireless broadcast concerning a
// line this slice homes. After FaultDemoteAfter consecutive failures
// on a quiet W entry the directory gives up on the wireless medium for
// the line and demotes it to wired S (Table II W->S, fault-triggered):
// the sharers keep their copies, but updates go back to the
// invalidation protocol, which needs no wireless delivery to stay
// coherent.
func (h *HomeCtrl) NoteWirelessFault(now uint64, line addrspace.Line) {
	if h.cfg.Protocol != WiDir {
		return
	}
	e := h.Entry(line)
	if e == nil || e.State != DirWireless {
		return
	}
	e.faultFails++
	if e.Busy() || e.faultFails < h.cfg.FaultDemoteAfter {
		return
	}
	fails := e.faultFails
	e.faultFails = 0
	h.tracef(now, line, "home %d: W->S fault demotion after %d failures", h.id, fails)
	h.Stats.FaultDemotions.Inc()
	if h.cfg.Trace != nil {
		h.cfg.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvWFaultDemote,
			Node: int32(h.id), Other: obs.NoNode, Line: line,
			A: uint64(fails)})
	}
	h.startWToS(e)
}

// MemoryImage is the simulated off-chip memory contents, shared by all
// slices; access timing is modeled by the machine's memory controllers,
// while the data itself lives here.
type MemoryImage struct {
	words map[addrspace.Line]*[addrspace.WordsPerLine]uint64
}

// NewMemoryImage returns an empty (all-zero) memory.
func NewMemoryImage() *MemoryImage {
	return &MemoryImage{words: make(map[addrspace.Line]*[addrspace.WordsPerLine]uint64)}
}

// ReadLine returns the line contents (zeroes for untouched lines).
func (m *MemoryImage) ReadLine(l addrspace.Line) [addrspace.WordsPerLine]uint64 {
	if w := m.words[l]; w != nil {
		return *w
	}
	return [addrspace.WordsPerLine]uint64{}
}

// WriteLine stores the line contents.
func (m *MemoryImage) WriteLine(l addrspace.Line, words [addrspace.WordsPerLine]uint64) {
	w := m.words[l]
	if w == nil {
		w = new([addrspace.WordsPerLine]uint64)
		m.words[l] = w
	}
	*w = words
}

// Lines returns the touched lines in ascending order; Dump and any
// other walk over memory contents go through it so dumps compare
// byte-identical between runs of the same seed.
func (m *MemoryImage) Lines() []addrspace.Line {
	return sortedLines(m.words)
}

// ForEachLine visits the touched lines in ascending line order.
func (m *MemoryImage) ForEachLine(fn func(l addrspace.Line, words [addrspace.WordsPerLine]uint64)) {
	for _, l := range m.Lines() {
		fn(l, *m.words[l])
	}
}

// Dump renders the full memory contents, one touched line per row in
// ascending line order — a stable fingerprint for determinism tests.
func (m *MemoryImage) Dump() string {
	var b strings.Builder
	m.ForEachLine(func(l addrspace.Line, words [addrspace.WordsPerLine]uint64) {
		fmt.Fprintf(&b, "%#x:", l)
		for _, w := range words {
			fmt.Fprintf(&b, " %#x", w)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// HandleWired dispatches a wired message delivered to this home.
func (h *HomeCtrl) HandleWired(now uint64, m *Msg) {
	switch m.Type {
	case MsgGetS, MsgGetX:
		// The request pays the local LLC bank latency before the
		// directory acts on it (plus any injected slice contention).
		delay := h.cfg.LLCLatency / 2
		if h.cfg.FaultDirDelay != nil {
			delay += h.cfg.FaultDirDelay()
		}
		h.env.After(delay, func(now uint64) { h.processRequest(now, m) })
	case MsgPutS, MsgPutE, MsgPutM, MsgPutW:
		h.processOrDefer(m)
	case MsgInvAck, MsgCopyBack, MsgXferAck, MsgRecallAck, MsgWirUpgrAck, MsgWirDwgrAck:
		h.processAck(m)
	case MsgMemData:
		h.processMemData(m)
	default:
		h.fail(m.Line, "home cannot handle %v from %d", m.Type, m.Src)
	}
}

func (h *HomeCtrl) touch(e *DirEntry) {
	h.lruTick++
	e.lru = h.lruTick
}

func (h *HomeCtrl) send(dst int, port PortKind, m *Msg) {
	m.Src = h.id
	h.env.SendWired(h.id, dst, port, m)
}

func (h *HomeCtrl) nack(m *Msg) {
	h.tracef(h.env.Now(), m.Line, "home %d: NACK to %d", h.id, m.Src)
	if h.cfg.Trace != nil {
		h.cfg.Trace.Emit(obs.Event{Cycle: h.env.Now(), Kind: obs.EvNACK,
			Node: int32(h.id), Other: int32(m.Src), Line: m.Line, B: m.ReqID})
	}
	h.Stats.NACKs.Inc()
	h.send(m.Src, PortL1, &Msg{Type: MsgNACK, Line: m.Line, ReqID: m.ReqID})
}

// processRequest handles GetS/GetX after the LLC tag latency.
func (h *HomeCtrl) processRequest(now uint64, m *Msg) {
	if m.Type == MsgGetS {
		h.Stats.GetS.Inc()
	} else {
		h.Stats.GetX.Inc()
	}
	h.Stats.LLCAccesses.Inc()
	h.reprocess(now, m)
}

// reprocess re-dispatches a request without recounting it (used when a
// request defers past an in-flight wireless transmission).
func (h *HomeCtrl) reprocess(now uint64, m *Msg) {

	h.tracef(h.env.Now(), m.Line, "home %d: %v from %d (isSharer=%v)", h.id, m.Type, m.Src, m.IsSharer)
	e := h.Entry(m.Line)
	if e == nil {
		e = h.allocate(m)
		if e == nil {
			h.nack(m) // capacity eviction in progress; bounce
			return
		}
	}
	h.touch(e)
	if e.Busy() {
		h.nack(m)
		return
	}

	switch e.State {
	case DirInvalid:
		h.serveUncached(e, m)
	case DirShared:
		h.serveShared(e, m)
	case DirOwned:
		h.serveOwned(e, m)
	case DirWireless:
		h.serveWireless(e, m)
	}
}

// allocate creates a fresh entry, evicting a victim when the slice is
// full. Returns nil when an eviction transaction had to start first.
func (h *HomeCtrl) allocate(m *Msg) *DirEntry {
	if h.entries.length() >= h.cfg.Entries {
		if !h.evictVictim() {
			return nil
		}
		if h.entries.length() >= h.cfg.Entries {
			return nil // victim eviction is asynchronous; caller bounces
		}
	}
	var e *DirEntry
	if n := len(h.entryFree); n > 0 {
		e = h.entryFree[n-1]
		h.entryFree[n-1] = nil
		h.entryFree = h.entryFree[:n-1]
		*e = DirEntry{Line: m.Line, gen: e.gen + 1,
			Sharers: e.Sharers[:0], staleWired: e.staleWired[:0],
			deferred: e.deferred[:0]}
	} else {
		e = &DirEntry{Line: m.Line, gen: 1}
	}
	h.entries.put(m.Line, e)
	return e
}

// releaseEntry returns a dead entry to the free list. Callers must have
// removed it from the table first; reuse bumps the generation stamp.
func (h *HomeCtrl) releaseEntry(e *DirEntry) {
	for i := range e.deferred {
		e.deferred[i] = nil // drop message references for the GC
	}
	e.deferred = e.deferred[:0]
	e.busy = nil
	h.entryFree = append(h.entryFree, e)
}

// evictVictim starts (or completes, for quiet entries) the eviction of
// the LRU non-busy entry. Returns false when nothing could be evicted.
//
// The proto:event below: the victim is a different line than the one
// the caller was narrowed on, so the walker re-enters here with a
// fresh state set under the synthetic Evict event.
//
//proto:event Evict
func (h *HomeCtrl) evictVictim() bool {
	var victim *DirEntry
	// Tie-break equal lru stamps by line address: with a plain `<` the
	// winner among equals would depend on iteration order, making
	// eviction timing a property of table layout rather than history.
	h.entries.forEach(func(_ addrspace.Line, e *DirEntry) bool {
		if e.Busy() {
			return true
		}
		if victim == nil || e.lru < victim.lru || (e.lru == victim.lru && e.Line < victim.Line) {
			victim = e
		}
		return true
	})
	if victim == nil {
		return false
	}
	h.Stats.DirEvictions.Inc()
	switch victim.State {
	case DirInvalid:
		h.writebackIfDirty(victim)
		h.entries.del(victim.Line)
		h.releaseEntry(victim)
		return true
	case DirShared:
		// Invalidate all sharers, then drop.
		t := &txn{kind: txEvict, started: h.env.Now()}
		victim.busy = t
		t.acksLeft = h.sendInvalidations(victim, -1)
		if t.acksLeft == 0 {
			h.finishEvict(victim)
		}
		return true
	case DirOwned:
		t := &txn{kind: txEvict, acksLeft: 1, started: h.env.Now()}
		victim.busy = t
		h.send(victim.Owner, PortL1, &Msg{Type: MsgRecall, Line: victim.Line})
		return true
	case DirWireless:
		// Table II W->I: broadcast WirInv; write back if dirty.
		t := &txn{kind: txEvict, started: h.env.Now()}
		victim.busy = t
		h.Stats.WirInvs.Inc()
		if h.cfg.Trace != nil {
			h.cfg.Trace.Emit(obs.Event{Cycle: h.env.Now(), Kind: obs.EvWInv,
				Node: int32(h.id), Other: obs.NoNode, Line: victim.Line,
				A: uint64(victim.SharerCount)})
		}
		h.env.TransmitWireless(h.id, victim.Line, WirInv{Line: victim.Line, Home: h.id}, true,
			func(now uint64) { h.finishEvict(victim) }, nil)
		return true
	}
	return false
}

func (h *HomeCtrl) finishEvict(e *DirEntry) {
	h.writebackIfDirty(e)
	h.entries.del(e.Line)
	// Deferred puts for a dropped entry are acked leniently.
	for _, m := range e.deferred {
		h.ackPut(m)
	}
	h.releaseEntry(e)
}

func (h *HomeCtrl) writebackIfDirty(e *DirEntry) {
	if !e.Dirty || !e.HasData {
		return
	}
	h.Stats.MemWrites.Inc()
	if h.Memory != nil {
		h.Memory.WriteLine(e.Line, e.Words)
	}
	h.send(h.env.MCOf(e.Line), PortMC, &Msg{
		Type: MsgMemWrite, Line: e.Line, HasData: true, Words: e.Words,
	})
	e.Dirty = false
}

// serveUncached grants a line no cache holds. MESI grants Exclusive on
// a read with no other sharers.
func (h *HomeCtrl) serveUncached(e *DirEntry, m *Msg) {
	if !e.HasData {
		e.busy = &txn{kind: txFetchMem, requester: m.Src, reqType: m.Type, reqID: m.ReqID, started: h.env.Now()}
		h.Stats.MemReads.Inc()
		h.send(h.env.MCOf(e.Line), PortMC, &Msg{Type: MsgMemRead, Line: e.Line, Requester: h.id})
		return
	}
	h.grantFromLLC(e, m.Src, m.Type, m.ReqID)
}

func (h *HomeCtrl) grantFromLLC(e *DirEntry, requester int, reqType MsgType, reqID uint64) {
	if reqType == MsgGetS {
		e.State = DirOwned // MESI: clean-exclusive grant
		e.Owner = requester
		e.OwnerDirty = false
		h.send(requester, PortL1, &Msg{Type: MsgDataE, Line: e.Line, ReqID: reqID, HasData: true, Words: e.Words})
	} else {
		e.State = DirOwned
		e.Owner = requester
		e.OwnerDirty = true
		h.send(requester, PortL1, &Msg{Type: MsgDataM, Line: e.Line, ReqID: reqID, HasData: true, Words: e.Words})
	}
}

// serveShared handles requests against a read-shared line, including
// the WiDir S->W trigger and the Dir_3B overflow behaviour.
func (h *HomeCtrl) serveShared(e *DirEntry, m *Msg) {
	isSharer := e.sharerListed(m.Src)
	if m.Type == MsgGetS {
		newCount := e.sharerCountNow()
		if !isSharer {
			newCount++
		}
		if h.cfg.Protocol == WiDir && newCount > h.cfg.MaxWiredSharers && !isSharer {
			h.startSToW(e, m)
			return
		}
		h.addSharer(e, m.Src)
		h.tracef(h.env.Now(), e.Line, "home %d: DataS to %d, sharers=%v", h.id, m.Src, e.Sharers)
		h.send(m.Src, PortL1, &Msg{Type: MsgDataS, Line: e.Line, ReqID: m.ReqID, HasData: true, Words: e.Words})
		return
	}

	// GetX.
	if h.cfg.Protocol == WiDir && m.IsSharer && !isSharer {
		// The upgrade's Shared copy is not in this entry's sharer set:
		// the request was issued against an epoch the line has since
		// left (a directory eviction, or a W->S round), so the claim
		// is provably stale — tracked-S plus per-source FIFO rule out
		// a live unlisted sharer. Discard with an explicit
		// notification: a still-live requester re-requests as a
		// non-sharer, one that resolved its store locally under a
		// BrWirUpgr ignores it. Serving it instead would count a core
		// into a fresh S->W upgrade that never joins the group.
		h.send(m.Src, PortL1, &Msg{Type: MsgWDiscard, Line: e.Line, ReqID: m.ReqID})
		return
	}
	if h.cfg.Protocol == WiDir && !isSharer && e.sharerCountNow()+1 > h.cfg.MaxWiredSharers {
		h.startSToW(e, m)
		return
	}
	t := &txn{kind: txInvAll, requester: m.Src, reqType: m.Type, reqID: m.ReqID, started: h.env.Now()}
	e.busy = t
	t.acksLeft = h.sendInvalidations(e, m.Src)
	if t.acksLeft == 0 {
		h.finishInvAll(e)
	}
}

// sendInvalidations sends wired Invs to every sharer except skip
// (skip=-1 invalidates everyone) and returns the expected ack count.
// With the Dir_3B broadcast bit set, the invalidation goes to every
// node in the machine — the overflow cost the paper motivates against.
func (h *HomeCtrl) sendInvalidations(e *DirEntry, skip int) int {
	n := 0
	if e.Broadcast {
		h.Stats.BroadcastInvs.Inc()
		for node := 0; node < h.env.Nodes(); node++ {
			if node == skip {
				continue
			}
			if h.cfg.Scheme == DirCV && e.CoarseVec&(1<<uint(node/h.cfg.CoarseRegion)) == 0 {
				continue // Dir_iCV_r: the node's region held no sharer
			}
			h.Stats.Invalidations.Inc()
			h.send(node, PortL1, &Msg{Type: MsgInv, Line: e.Line})
			n++
		}
		return n
	}
	for _, s := range e.Sharers {
		if s == skip {
			continue
		}
		h.Stats.Invalidations.Inc()
		h.send(s, PortL1, &Msg{Type: MsgInv, Line: e.Line})
		n++
	}
	return n
}

func (h *HomeCtrl) finishInvAll(e *DirEntry) {
	t := e.busy
	e.busy = nil
	e.State = DirOwned
	e.Owner = t.requester
	e.OwnerDirty = true
	e.Sharers = e.Sharers[:0] // keep the scratch array for the next sharer set
	e.Broadcast = false
	e.CoarseVec = 0
	e.SharerApprox = 0
	h.send(t.requester, PortL1, &Msg{Type: MsgDataM, Line: e.Line, ReqID: t.reqID, HasData: true, Words: e.Words})
	h.drainDeferred(e)
}

// sharerListed reports whether the node is a tracked sharer. With the
// broadcast bit set, membership is unknown and reported false.
func (e *DirEntry) sharerListed(node int) bool {
	for _, s := range e.Sharers {
		if s == node {
			return true
		}
	}
	return false
}

func (e *DirEntry) sharerCountNow() int {
	if e.Broadcast {
		return e.SharerApprox
	}
	return len(e.Sharers)
}

// addSharer records a reader, overflowing into the broadcast bit when
// the pointers run out (Dir_3B, Baseline only — WiDir transitions to W
// before this can happen).
func (h *HomeCtrl) addSharer(e *DirEntry, node int) {
	if e.Broadcast {
		e.SharerApprox++
		if h.cfg.Scheme == DirCV {
			e.CoarseVec |= 1 << uint(node/h.cfg.CoarseRegion)
		}
		return
	}
	if e.sharerListed(node) {
		return
	}
	if len(e.Sharers) < h.cfg.MaxPointers {
		e.Sharers = append(e.Sharers, node)
		return
	}
	// Pointer overflow: collapse to the scheme's imprecise encoding.
	e.Broadcast = true
	e.SharerApprox = len(e.Sharers) + 1
	if h.cfg.Scheme == DirCV {
		e.CoarseVec = 1 << uint(node/h.cfg.CoarseRegion)
		for _, s := range e.Sharers {
			e.CoarseVec |= 1 << uint(s/h.cfg.CoarseRegion)
		}
	}
	e.Sharers = e.Sharers[:0]
}

func (h *HomeCtrl) removeSharer(e *DirEntry, node int) {
	if e.Broadcast {
		if e.SharerApprox > 0 {
			e.SharerApprox--
		}
		if e.SharerApprox == 0 {
			e.Broadcast = false
			e.CoarseVec = 0
			e.State = DirInvalid
		}
		return
	}
	for i, s := range e.Sharers {
		if s == node {
			e.Sharers = append(e.Sharers[:i], e.Sharers[i+1:]...)
			break
		}
	}
	if len(e.Sharers) == 0 {
		e.State = DirInvalid
	}
}

// serveOwned forwards the request to the current owner.
func (h *HomeCtrl) serveOwned(e *DirEntry, m *Msg) {
	if m.Src == e.Owner {
		// The owner re-requesting means its eviction notice is still in
		// flight ahead of this request; bounce until the put arrives.
		h.nack(m)
		return
	}
	if m.Type == MsgGetS {
		e.busy = &txn{kind: txFwdGetS, requester: m.Src, reqID: m.ReqID, started: h.env.Now()}
		h.send(e.Owner, PortL1, &Msg{Type: MsgFwdGetS, Line: e.Line, Requester: m.Src, ReqID: m.ReqID})
		return
	}
	e.busy = &txn{kind: txFwdGetX, requester: m.Src, reqID: m.ReqID, started: h.env.Now()}
	h.send(e.Owner, PortL1, &Msg{Type: MsgFwdGetX, Line: e.Line, Requester: m.Src, ReqID: m.ReqID})
}

// serveWireless handles wired requests against a W line (Table II W->W
// cases 1 and 2).
func (h *HomeCtrl) serveWireless(e *DirEntry, m *Msg) {
	// An update for this line may be on the air right now; its merge is
	// imminent and the WirUpgr data snapshot must include it. The
	// directory's transceiver observes the channel, so defer the
	// request past the in-flight transmission.
	if h.env.WirelessActive(e.Line) {
		mm := m
		h.env.After(1, func(now uint64) { h.reprocess(now, mm) })
		return
	}
	if m.Type == MsgGetX && m.IsSharer {
		// Table II W->W case 2: a stale upgrade from a cache that did
		// not yet know the directory moved to W; the BrWirUpgr already
		// informed it. Discard — with an explicit notification so a
		// requester that lost its copy before the broadcast (and so
		// could not resolve locally) re-requests as a non-sharer.
		h.send(m.Src, PortL1, &Msg{Type: MsgWDiscard, Line: e.Line, ReqID: m.ReqID})
		return
	}
	// Table II W->W case 1: add the sharer over the wired network while
	// jamming wireless transactions on the line.
	h.tracef(h.env.Now(), e.Line, "home %d: W add-sharer %d (count=%d)", h.id, m.Src, e.SharerCount)
	t := &txn{kind: txWAddSharer, requester: m.Src, jammed: true, started: h.env.Now()}
	e.busy = t
	h.env.Jam(e.Line, h.id)
	h.send(m.Src, PortL1, &Msg{
		Type: MsgWirUpgr, Line: e.Line, ReqID: m.ReqID, NeedAck: true, HasData: true, Words: e.Words,
	})
}

// startSToW runs Table II's S->W transition: broadcast BrWirUpgr, jam
// the line, send the line to the requester over the wired NoC, and wait
// for the ToneAck to complete.
func (h *HomeCtrl) startSToW(e *DirEntry, m *Msg) {
	h.tracef(h.env.Now(), e.Line, "home %d: S->W trigger by %d, sharers=%v", h.id, m.Src, e.Sharers)
	h.Stats.SToW.Inc()
	t := &txn{kind: txSToW, requester: m.Src, reqType: m.Type, jammed: true, started: h.env.Now()}
	e.busy = t
	h.env.Jam(e.Line, h.id)
	newCount := e.sharerCountNow() + 1

	h.env.TransmitWireless(h.id, e.Line, BrWirUpgr{Line: e.Line, Home: h.id}, true,
		func(now uint64) {
			// Serialization point of the broadcast: every tone antenna
			// (raised during delivery fan-out) is now active; wait for
			// silence, then commit the transition.
			h.env.WaitToneSilent(func(now uint64) {
				if e.busy != t {
					h.fail(e.Line, "S->W transaction displaced")
					return
				}
				e.faultFails = 0
				h.tracef(now, e.Line, "home %d: S->W commit count=%d", h.id, newCount)
				if h.cfg.Trace != nil {
					h.cfg.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvWUpgrade,
						Node: int32(h.id), Other: obs.NoNode, Line: e.Line,
						A: uint64(newCount)})
				}
				e.busy = nil
				e.State = DirWireless
				e.SharerCount = newCount
				// Swap rather than copy: the snapshot takes over the
				// sharer list's backing array (it is being cleared
				// anyway), keeping the commit allocation-free.
				e.staleWired, e.Sharers = e.Sharers, e.staleWired[:0]
				e.staleWiredAll = e.Broadcast || e.CoarseVec != 0
				e.Broadcast = false
				e.CoarseVec = 0
				e.SharerApprox = 0
				h.env.Unjam(e.Line, h.id)
				h.drainDeferred(e)
			})
		}, nil)

	// Concurrently, the requester gets the line over the wired NoC; no
	// WirUpgrAck is needed — its tone drop completes the handshake.
	h.send(m.Src, PortL1, &Msg{
		Type: MsgWirUpgr, Line: e.Line, ReqID: m.ReqID, NeedAck: false, HasData: true, Words: e.Words,
	})
}

// HandleWireless processes broadcasts observed by the home's own
// transceiver. The home merges WirUpd payloads into the LLC copy so the
// slice always holds the current data for W lines.
func (h *HomeCtrl) HandleWireless(now uint64, sender int, payload any) {
	upd, ok := payload.(WirUpd)
	if !ok {
		return
	}
	e := h.Entry(upd.Line)
	if e == nil || h.env.HomeOf(upd.Line) != h.id {
		return
	}
	if e.State != DirWireless {
		// A stray update can only appear if serialization broke.
		h.fail(upd.Line, "WirUpd from %d in state %v", sender, e.State)
		return
	}
	e.Words[upd.Word] = upd.Value
	e.Dirty = true
	e.faultFails = 0 // the wireless medium delivered; reset demotion count
	// Fig. 5 metric: sharers updated by this write (the other caches
	// holding the line, i.e. SharerCount-1 excluding the writer).
	updated := e.SharerCount - 1
	if updated < 0 {
		updated = 0
	}
	h.Stats.SharersAtUpd.Observe(updated)
	h.Stats.UpdateSharerSum.Add(uint64(updated))
}

// processOrDefer queues puts while the entry is busy (except the PutW
// cases a W->S downgrade must see immediately).
func (h *HomeCtrl) processOrDefer(m *Msg) {
	e := h.Entry(m.Line)
	if e == nil {
		h.ackPut(m)
		return
	}
	if e.Busy() {
		if !h.consumeBusyPut(e, m) {
			e.deferred = append(e.deferred, m)
		}
		return
	}
	h.processPut(e, m)
}

// consumeBusyPut handles the put notices a busy entry must see
// immediately: during a W->S downgrade, a PutW (concurrent decay or
// eviction) or a counted pre-W-epoch notice from a node that has not
// acked means one fewer WirDwgrAck will come. Uncounted stale notices
// (sender outside the staleWired snapshot) are acknowledged and
// swallowed without touching the ack arithmetic. Reports whether the
// message was consumed. (A PutS from a node that already acked is a
// genuine eviction of its fresh Shared copy and defers normally.)
func (h *HomeCtrl) consumeBusyPut(e *DirEntry, m *Msg) bool {
	if e.busy.kind != txWToS {
		return false
	}
	if m.Type != MsgPutW && m.Type != MsgPutS && m.Type != MsgPutE && m.Type != MsgPutM {
		return false
	}
	if containsID(e.busy.ackIDs, m.Src) {
		return false
	}
	h.Stats.LLCAccesses.Inc()
	h.ackPut(m)
	if m.Type != MsgPutW && !e.takeStaleWired(m.Src) {
		// A wired-era notice from a node that was never part of the
		// wireless membership: swallow it without touching the ack
		// arithmetic, exactly as the stable-DW path would.
		return true
	}
	e.busy.acksLeft--
	h.maybeFinishWToS(e)
	return true
}

// processPut applies an eviction notice against the current state,
// leniently: stale notices (from states the line has since left) are
// acknowledged and ignored.
func (h *HomeCtrl) processPut(e *DirEntry, m *Msg) {
	h.tracef(h.env.Now(), m.Line, "home %d: put %v from %d in state %v sharers=%v count=%d", h.id, m.Type, m.Src, e.State, e.Sharers, e.SharerCount)
	h.Stats.LLCAccesses.Inc()
	defer h.ackPut(m)
	switch e.State {
	case DirInvalid:
		// Stale put; nothing to do.
	case DirShared:
		switch m.Type {
		case MsgPutS, MsgPutE, MsgPutM:
			// PutE/PutM here are not necessarily stale: the evicting
			// owner may have been downgraded to a listed sharer by a
			// forwarded request served from its victim buffer while the
			// eviction notice was in flight. Remove the pointer either
			// way (removeSharer is a no-op for unlisted nodes). The
			// data of a PutM is already at the home via the CopyBack
			// that performed the downgrade.
			h.removeSharer(e, m.Src)
		default:
			// PutW against DS is stale: the line left W before the
			// notice arrived.
		}
	case DirOwned:
		if m.Src != e.Owner {
			return // stale put from a former sharer
		}
		switch m.Type {
		case MsgPutE:
			e.State = DirInvalid
		case MsgPutM:
			e.State = DirInvalid
			e.Words = m.Words
			e.HasData = true
			e.Dirty = true
		default:
			// A PutS here is stale: sent when the line was S at the
			// node, before it re-acquired ownership; membership math
			// already handled. PutW against DO likewise.
		}
	case DirWireless:
		// Table II W->W case 4 / W->S: a wireless sharer left. A PutW
		// is always a genuine departure. A wired-era notice
		// (PutS/PutE/PutM) counts only if its sender was one of the
		// pointers collapsed into SharerCount at the upgrade; anything
		// else is a stale notice from a node deposed before the
		// wireless epoch began, and decrementing for it would
		// undercount the eventual W->S demotion.
		switch m.Type {
		case MsgPutW:
		case MsgPutS, MsgPutE, MsgPutM:
			if !e.takeStaleWired(m.Src) {
				return
			}
		default:
			return
		}
		if e.SharerCount == 0 {
			h.fail(e.Line, "put %v from %d would make the wireless sharer count negative", m.Type, m.Src)
			return
		}
		e.SharerCount--
		if e.SharerCount <= h.cfg.MaxWiredSharers {
			h.startWToS(e)
		}
	}
}

func (h *HomeCtrl) ackPut(m *Msg) {
	h.send(m.Src, PortL1, &Msg{Type: MsgPutAck, Line: m.Line})
}

// startWToS runs Table II's W->S transition: broadcast WirDwgr and
// collect the remaining sharers' identities over the wired NoC. The
// line is jammed for the duration so no update can serialize between
// the downgrade decision and its commit.
func (h *HomeCtrl) startWToS(e *DirEntry) {
	h.tracef(h.env.Now(), e.Line, "home %d: W->S start acksLeft=%d", h.id, e.SharerCount)
	h.Stats.WToS.Inc()
	t := &txn{kind: txWToS, acksLeft: e.SharerCount, jammed: true, started: h.env.Now()}
	e.busy = t
	h.env.Jam(e.Line, h.id)
	t.cancelTx = h.env.TransmitWireless(h.id, e.Line, WirDwgr{Line: e.Line, Home: h.id}, true, nil, nil)
	if t.acksLeft == 0 {
		h.maybeFinishWToS(e)
	}
}

func (h *HomeCtrl) maybeFinishWToS(e *DirEntry) {
	t := e.busy
	if len(t.ackIDs) < t.acksLeft {
		return
	}
	// If every counted sharer left via eviction notices before the
	// WirDwgr even transmitted, withdraw the broadcast: letting it air
	// later would downgrade (and collect acks from) a future wireless
	// generation of the line.
	if t.cancelTx != nil {
		t.cancelTx()
	}
	h.tracef(h.env.Now(), e.Line, "home %d: W->S commit ackIDs=%v", h.id, t.ackIDs)
	if h.cfg.Trace != nil {
		h.cfg.Trace.Emit(obs.Event{Cycle: h.env.Now(), Kind: obs.EvWDowngrade,
			Node: int32(h.id), Other: obs.NoNode, Line: e.Line,
			A: uint64(len(t.ackIDs))})
	}
	e.busy = nil
	e.State = DirShared
	e.Sharers = append(e.Sharers[:0], t.ackIDs...)
	e.SharerCount = 0
	e.staleWired = e.staleWired[:0]
	e.staleWiredAll = false
	if len(e.Sharers) == 0 {
		e.State = DirInvalid
	}
	// Paper: write the line to memory if the LLC copy is dirty.
	h.writebackIfDirty(e)
	h.env.Unjam(e.Line, h.id)
	h.drainDeferred(e)
}

// processAck advances the busy transaction expecting it.
func (h *HomeCtrl) processAck(m *Msg) {
	e := h.Entry(m.Line)
	if e == nil || !e.Busy() {
		h.fail(m.Line, "ack %v from %d with no transaction", m.Type, m.Src)
		return
	}
	h.tracef(h.env.Now(), m.Line, "home %d: ack %v from %d (txn=%v)", h.id, m.Type, m.Src, e.busy.kind)
	t := e.busy
	switch m.Type {
	case MsgInvAck:
		if t.kind != txInvAll && t.kind != txEvict {
			h.fail(m.Line, "unexpected InvAck from %d during %v", m.Src, t.kind)
			return
		}
		t.acksLeft--
		if t.acksLeft == 0 {
			if t.kind == txEvict {
				h.finishEvict(e)
			} else {
				h.finishInvAll(e)
			}
		}
	case MsgCopyBack:
		if t.kind != txFwdGetS {
			h.fail(m.Line, "unexpected CopyBack from %d during %v", m.Src, t.kind)
			return
		}
		e.busy = nil
		e.Words = m.Words
		e.HasData = true
		if m.NeedAck { // owner's copy was dirty
			e.Dirty = true
		}
		oldOwner := e.Owner
		e.State = DirShared
		e.Sharers = append(e.Sharers[:0], oldOwner, t.requester)
		e.Owner = 0
		e.OwnerDirty = false
		h.drainDeferred(e)
	case MsgXferAck:
		if t.kind != txFwdGetX {
			h.fail(m.Line, "unexpected XferAck from %d during %v", m.Src, t.kind)
			return
		}
		// e.State stayed DirOwned throughout the transfer; clearing
		// busy lands back on it with only the owner changed.
		//proto:transition dir busy:fwd-getx XferAck -> DO
		e.busy = nil
		e.Owner = t.requester
		e.OwnerDirty = true
		h.drainDeferred(e)
	case MsgRecallAck:
		if t.kind != txEvict {
			h.fail(m.Line, "unexpected RecallAck from %d during %v", m.Src, t.kind)
			return
		}
		if m.HasData {
			e.Words = m.Words
			e.HasData = true
			e.Dirty = true
		}
		h.finishEvict(e)
	case MsgWirUpgrAck:
		if t.kind != txWAddSharer {
			h.fail(m.Line, "unexpected WirUpgrAck from %d during %v", m.Src, t.kind)
			return
		}
		// e.State stayed DirWireless; the new sharer joined the
		// broadcast group and the entry returns to stable DW.
		//proto:transition dir busy:w-add-sharer WirUpgrAck -> DW
		e.busy = nil
		e.SharerCount++
		h.env.Unjam(e.Line, h.id)
		h.drainDeferred(e)
	case MsgWirDwgrAck:
		if t.kind != txWToS {
			h.fail(m.Line, "unexpected WirDwgrAck from %d during %v", m.Src, t.kind)
			return
		}
		t.ackIDs = append(t.ackIDs, m.Src)
		h.maybeFinishWToS(e)
	default:
		h.fail(m.Line, "processAck dispatched a non-ack %v from %d", m.Type, m.Src)
	}
}

// processMemData completes a memory fetch and grants the line.
func (h *HomeCtrl) processMemData(m *Msg) {
	e := h.Entry(m.Line)
	if e == nil || !e.Busy() || e.busy.kind != txFetchMem {
		h.fail(m.Line, "MemData without a fetch transaction")
		return
	}
	t := e.busy
	e.busy = nil
	e.Words = m.Words
	e.HasData = true
	e.Dirty = false
	h.grantFromLLC(e, t.requester, t.reqType, t.reqID)
	h.drainDeferred(e)
}

// drainDeferred replays puts that arrived during the transaction.
// Processing a put can itself start a new transaction (e.g. a PutW that
// triggers the W->S downgrade); the remaining deferred puts are then
// fed through the busy-aware path, so a stale eviction notice the new
// transaction is waiting out is consumed rather than re-deferred.
//
// The proto:stop below: the drained puts replay under their own
// (deferred) events; attributing their effects to the ack that
// triggered the drain would mislabel the rows.
//
//proto:stop
func (h *HomeCtrl) drainDeferred(e *DirEntry) {
	pending := e.deferred
	e.deferred = nil
	for i, m := range pending {
		if e.Busy() {
			if h.consumeBusyPut(e, m) {
				continue
			}
			// Keep m and everything after it deferred, in order.
			e.deferred = append(e.deferred, pending[i:]...)
			return
		}
		h.processPut(e, m)
	}
}

func containsID(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
