package coherence

import "repro/internal/addrspace"

// tracef forwards one protocol debug record to the obs.LineLog
// configured on the controller (L1Config.Log / HomeConfig.Log). The
// log replaces the old package-global TraceLine: line tracing is
// per-machine configuration now, so parallel experiment runs cannot
// race on a shared global and a traced run needs no teardown. The
// output format is unchanged (obs.LineLog reproduces the legacy
// "[%8d] line %#x: ..." lines byte for byte), and both methods are
// no-ops after one nil comparison when no log is configured.
func (l *L1Ctrl) tracef(now uint64, line addrspace.Line, format string, args ...any) {
	l.cfg.Log.Printf(now, line, format, args...)
}

func (h *HomeCtrl) tracef(now uint64, line addrspace.Line, format string, args ...any) {
	h.cfg.Log.Printf(now, line, format, args...)
}
