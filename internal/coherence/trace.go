package coherence

import (
	"fmt"
	"os"

	"repro/internal/addrspace"
)

// TraceLine, when set to a specific line, dumps every protocol event
// touching that line to stderr. Debugging aid; defaults to "none".
var TraceLine addrspace.Line = ^addrspace.Line(0)

func tracef(now uint64, line addrspace.Line, format string, args ...any) {
	if line != TraceLine {
		return
	}
	fmt.Fprintf(os.Stderr, "[%8d] line %#x: %s\n", now, uint64(line), fmt.Sprintf(format, args...))
}
