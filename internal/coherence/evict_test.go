package coherence

import (
	"testing"

	"repro/internal/addrspace"
)

// TestEvictVictimTieBreakByLine locks in the deterministic directory
// eviction fix: among idle entries with equal lru stamps, the victim
// is the lowest line address. Before the fix the winner was whichever
// entry Go's randomized map iteration visited first, so eviction
// timing (and everything downstream of it) varied between runs of the
// same seed.
func TestEvictVictimTieBreakByLine(t *testing.T) {
	e := newMockEnv(2)
	h := e.homes[0]
	for _, l := range []addrspace.Line{0x30, 0x10, 0x20} {
		h.entries.put(l, &DirEntry{Line: l, State: DirInvalid, lru: 7})
	}
	for want := addrspace.Line(0x10); want <= 0x30; want += 0x10 {
		if !h.evictVictim() {
			t.Fatalf("no victim with %d idle entries", h.entries.length())
		}
		if _, alive := h.entries.get(want); alive {
			t.Fatalf("line %#x should have been evicted first among equal-lru entries", want)
		}
	}
	// An entry with an older stamp still wins over a lower address.
	h.entries.put(0x50, &DirEntry{Line: 0x50, State: DirInvalid, lru: 3})
	h.entries.put(0x40, &DirEntry{Line: 0x40, State: DirInvalid, lru: 9})
	if !h.evictVictim() {
		t.Fatal("no victim")
	}
	if _, alive := h.entries.get(0x50); alive {
		t.Fatal("older lru stamp must out-rank lower line address")
	}
}
