package coherence

import (
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
)

// wirelessLine drives four readers through the S->W transition and
// returns the (W-state) line.
func wirelessLine(t *testing.T, e *mockEnv) addrspace.Line {
	t.Helper()
	a := addrspace.Line(8).Base()
	for core := 0; core < 4; core++ {
		e.complete(t, core, &MemRequest{Addr: a})
	}
	e.pumpN(50)
	if st := e.home(8).Entry(8).State; st != DirWireless {
		t.Fatalf("setup: directory state %v, want DW", st)
	}
	return 8
}

func TestFaultDemotionWToS(t *testing.T) {
	e := newMockEnv(6)
	line := wirelessLine(t, e)
	h := e.home(line)

	// Three consecutive failures: below the default threshold of 4.
	for i := 0; i < 3; i++ {
		h.NoteWirelessFault(e.now, line)
	}
	if got := h.Stats.FaultDemotions.Value(); got != 0 {
		t.Fatalf("demoted after 3 failures (threshold 4): %d", got)
	}
	if st := h.Entry(line).State; st != DirWireless {
		t.Fatalf("state %v after 3 failures, want DW", st)
	}

	// The fourth gives up on the wireless medium for the line.
	h.NoteWirelessFault(e.now, line)
	if got := h.Stats.FaultDemotions.Value(); got != 1 {
		t.Fatalf("FaultDemotions = %d, want 1", got)
	}
	e.pumpN(100)
	entry := h.Entry(line)
	if entry.State != DirShared {
		t.Fatalf("directory state %v, want DS after fault demotion", entry.State)
	}
	if got := h.Stats.WToS.Value(); got != 1 {
		t.Fatalf("WToS = %d, want 1", got)
	}
	for _, s := range entry.Sharers {
		ln := e.l1s[s].Cache().Lookup(line)
		if ln == nil || ln.State != cache.Shared {
			t.Fatalf("recorded sharer %d not in S: %+v", s, ln)
		}
	}
	if e.protoErr != nil {
		t.Fatalf("unexpected protocol error: %v", e.protoErr)
	}
}

func TestFaultCounterResetsOnDelivery(t *testing.T) {
	e := newMockEnv(6)
	line := wirelessLine(t, e)
	h := e.home(line)
	a := line.Base()

	for i := 0; i < 3; i++ {
		h.NoteWirelessFault(e.now, line)
	}
	// A wireless write that does get through proves the medium works
	// again; the consecutive-failure count restarts.
	e.complete(t, 0, &MemRequest{IsWrite: true, Addr: a, Value: 42})
	e.pumpN(20)
	for i := 0; i < 3; i++ {
		h.NoteWirelessFault(e.now, line)
	}
	if got := h.Stats.FaultDemotions.Value(); got != 0 {
		t.Fatalf("demoted despite successful delivery in between: %d", got)
	}
	if st := h.Entry(line).State; st != DirWireless {
		t.Fatalf("state %v, want DW (no demotion)", st)
	}
}

func TestFaultDemotionDeferredWhileBusy(t *testing.T) {
	e := newMockEnv(6)
	line := wirelessLine(t, e)
	h := e.home(line)

	// Force the entry busy by hand: a demotion must not start under a
	// live transaction (the W->S machinery assumes a quiet entry).
	entry := h.Entry(line)
	entry.busy = &txn{kind: txSToW, started: e.now}
	for i := 0; i < 6; i++ {
		h.NoteWirelessFault(e.now, line)
	}
	if got := h.Stats.FaultDemotions.Value(); got != 0 {
		t.Fatalf("demoted while busy: %d", got)
	}
	entry.busy = nil
	h.NoteWirelessFault(e.now, line)
	if got := h.Stats.FaultDemotions.Value(); got != 1 {
		t.Fatalf("FaultDemotions = %d after entry went quiet, want 1", got)
	}
}

func TestStrayAckReportsProtocolError(t *testing.T) {
	e := newMockEnv(4)
	// Line 12 homes at node 0; no transaction is open for it.
	e.homes[0].HandleWired(1, &Msg{Type: MsgInvAck, Line: 12, Src: 1})
	pe := e.protoErr
	if pe == nil {
		t.Fatal("stray InvAck did not report a protocol error")
	}
	if pe.Ctrl != "home" || pe.Node != 0 || pe.Line != 12 {
		t.Fatalf("error names %s %d line=%#x, want home 0 line=0xc", pe.Ctrl, pe.Node, pe.Line)
	}
	if !strings.Contains(pe.Error(), "no transaction") {
		t.Fatalf("error text %q lacks the reason", pe.Error())
	}
}

func TestUnexpectedAckKindReportsProtocolError(t *testing.T) {
	e := newMockEnv(4)
	line := addrspace.Line(12) // homes at node 0
	h := e.homes[0]
	e.complete(t, 1, &MemRequest{Addr: line.Base()})
	// Open a real transaction, then feed it the wrong ack kind.
	h.Entry(line).busy = &txn{kind: txFetchMem, started: e.now}
	h.HandleWired(e.now, &Msg{Type: MsgXferAck, Line: line, Src: 2})
	pe := e.protoErr
	if pe == nil {
		t.Fatal("XferAck during fetch-mem did not report a protocol error")
	}
	if !strings.Contains(pe.Reason, "unexpected XferAck") || !strings.Contains(pe.Reason, "fetch-mem") {
		t.Fatalf("reason %q should name the ack and the transaction kind", pe.Reason)
	}
	if !strings.Contains(pe.Dump, "entry line=") {
		t.Fatalf("dump %q lacks the entry state", pe.Dump)
	}
}

func TestOldestPendingNamesStuckRequest(t *testing.T) {
	e := newMockEnv(4)
	if _, ok := e.l1s[1].OldestPending(); ok {
		t.Fatal("quiet L1 reported a pending transaction")
	}
	e.now = 7
	e.l1s[1].Access(&MemRequest{Addr: addrspace.Line(8).Base(), Done: func(uint64, uint64) {}})
	info, ok := e.l1s[1].OldestPending()
	if !ok {
		t.Fatal("outstanding miss not reported")
	}
	if info.Ctrl != "l1" || info.Node != 1 || info.Line != 8 || info.Kind != "load" {
		t.Fatalf("info = %+v", info)
	}
	if info.Started != 7 || info.Age(107) != 100 {
		t.Fatalf("started=%d age=%d, want 7 and 100", info.Started, info.Age(107))
	}
	if len(info.Waiting) != 1 || info.Waiting[0] != e.HomeOf(8) {
		t.Fatalf("waiting on %v, want the home slice", info.Waiting)
	}
}

func TestTxnInfoOlder(t *testing.T) {
	a := TxnInfo{Started: 5, Ctrl: "home", Node: 1, Line: 8}
	b := TxnInfo{Started: 9, Ctrl: "home", Node: 1, Line: 8}
	if !a.Older(b) || b.Older(a) {
		t.Fatal("lower Started must win")
	}
	// Ties break on (ctrl, node, line) so the watchdog's pick is stable.
	c := TxnInfo{Started: 5, Ctrl: "l1", Node: 0, Line: 4}
	if !a.Older(c) || c.Older(a) {
		t.Fatal("home must order before l1 on equal age")
	}
	d := a
	if a.Older(d) || d.Older(a) {
		t.Fatal("identical infos must not order")
	}
}
