package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestSerialParallelDeterminism is the regression gate for the worker
// pool: the same seed must produce identical machine.Result values
// whether the simulations run serially or across 8 workers. Each
// simulation is single-threaded and deterministic; the pool only
// changes which goroutine hosts it, so any divergence means shared
// mutable state leaked between simulations.
func TestSerialParallelDeterminism(t *testing.T) {
	o := tinyOpts()

	serial := o
	serial.Runner = NewRunner(1)
	sRows, err := RunPairs(serial)
	if err != nil {
		t.Fatal(err)
	}

	parallel := o
	parallel.Runner = NewRunner(8)
	pRows, err := RunPairs(parallel)
	if err != nil {
		t.Fatal(err)
	}

	if len(sRows) != len(pRows) {
		t.Fatalf("row counts differ: %d vs %d", len(sRows), len(pRows))
	}
	for i := range sRows {
		if sRows[i].App != pRows[i].App {
			t.Fatalf("row %d app order differs: %q vs %q", i, sRows[i].App, pRows[i].App)
		}
		if !reflect.DeepEqual(sRows[i].Base, pRows[i].Base) {
			t.Fatalf("%s Baseline result differs between serial and parallel runs", sRows[i].App)
		}
		if !reflect.DeepEqual(sRows[i].WiDir, pRows[i].WiDir) {
			t.Fatalf("%s WiDir result differs between serial and parallel runs", sRows[i].App)
		}
	}
}

// TestRunnerMemoization verifies identical configurations are simulated
// once: the memo returns the same *machine.Result pointer.
func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(2)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)

	a, err := r.Sim(coherence.Baseline, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sim(coherence.Baseline, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configuration simulated twice (memo miss)")
	}

	// A different scale must not collide: the profile participates in
	// the key, not just the app name.
	c, err := r.Sim(coherence.Baseline, 16, app.Scale(0.5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("scaled variant hit the unscaled memo entry")
	}
}

// TestRunnerMemoSharedAcrossExperiments checks the cross-table dedup
// the runner exists for: Table IV and Table V both need the Baseline
// runs, so a shared runner simulates them once.
func TestRunnerMemoSharedAcrossExperiments(t *testing.T) {
	o := tinyOpts()
	o.Runner = NewRunner(4)
	if _, err := Table4(o); err != nil {
		t.Fatal(err)
	}
	entries := len(o.Runner.memo)
	if _, err := Table5(o); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Runner.memo); got != entries {
		t.Fatalf("Table5 added %d memo entries after Table4; Baseline runs were not shared", got-entries)
	}
}

// TestMapOrderingAndErrors verifies Map returns results in submission
// order regardless of completion order and aggregates every failure.
func TestMapOrderingAndErrors(t *testing.T) {
	r := NewRunner(4)
	out, err := Map(r, 16, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	sentinel := errors.New("boom")
	_, err = Map(r, 8, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("job %d: %w", i, sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("aggregate err = %v, want wrapped sentinel", err)
	}
}

// TestWatchdogSurfacesThroughAggregate drives a deliberately starved
// simulation through the pool and checks errors.Is sees the machine
// watchdog through the app-context wrapping and errors.Join.
func TestWatchdogSurfacesThroughAggregate(t *testing.T) {
	r := NewRunner(2)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)

	_, err := Map(r, 2, func(i int) (*machine.Result, error) {
		cfg := machine.DefaultConfig(16, coherence.WiDir)
		cfg.MaxCycles = 10 // far too few: the watchdog must trip
		return r.SimConfig(cfg, app, 1)
	})
	if err == nil {
		t.Fatal("starved run did not fail")
	}
	if !errors.Is(err, machine.ErrWatchdog) {
		t.Fatalf("err = %v, want machine.ErrWatchdog in chain", err)
	}
}

// TestRunnerReset drops the memo.
func TestRunnerReset(t *testing.T) {
	r := NewRunner(1)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)
	if _, err := r.Sim(coherence.WiDir, 16, app, 1); err != nil {
		t.Fatal(err)
	}
	if len(r.memo) == 0 {
		t.Fatal("memo empty after Sim")
	}
	r.Reset()
	if len(r.memo) != 0 {
		t.Fatal("memo survived Reset")
	}
}

// memCache is an in-memory ResultCache for hook tests.
type memCache struct {
	mu   sync.Mutex
	m    map[RunKey]*machine.Result
	gets int
	puts int
}

func newMemCache() *memCache { return &memCache{m: map[RunKey]*machine.Result{}} }

func (c *memCache) Get(k RunKey) (*machine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	res, ok := c.m[k]
	return res, ok
}

func (c *memCache) Put(k RunKey, res *machine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[k] = res
}

// TestRunnerStatsRepeatedSweep pins the memoization counters on a
// repeated sweep: the first pass simulates every (protocol, app) pair,
// the second is served entirely from the memo — the hit/miss counters
// the /stats endpoint and -v output surface must say exactly that.
func TestRunnerStatsRepeatedSweep(t *testing.T) {
	o := tinyOpts()
	o.Runner = NewRunner(4)

	rows, err := RunPairs(o)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(2 * len(rows)) // baseline + widir per app
	st := o.Runner.Stats()
	if st.Sims != n || st.MemoHits != 0 || st.CacheHits != 0 {
		t.Fatalf("first pass stats = %v, want sims=%d and no hits", st, n)
	}

	if _, err := RunPairs(o); err != nil {
		t.Fatal(err)
	}
	st = o.Runner.Stats()
	if st.Sims != n {
		t.Fatalf("repeated sweep re-simulated: sims=%d, want %d", st.Sims, n)
	}
	if st.MemoHits != n {
		t.Fatalf("repeated sweep memo hits = %d, want %d", st.MemoHits, n)
	}
}

// TestRunnerCacheHook verifies the persistent-cache hook: a second
// runner sharing the first's cache serves every run from it — zero
// simulations — and returns results DeepEqual to the originals, with
// SimSource reporting the provenance.
func TestRunnerCacheHook(t *testing.T) {
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)
	cache := newMemCache()

	r1 := NewRunner(1)
	r1.SetCache(cache)
	orig, src, err := r1.SimSource(coherence.WiDir, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceSim {
		t.Fatalf("first run source = %v, want sim", src)
	}
	st := r1.Stats()
	if st.Sims != 1 || st.CacheFills != 1 {
		t.Fatalf("first runner stats = %v, want 1 sim / 1 fill", st)
	}

	// Same runner again: memo, not cache.
	_, src, err = r1.SimSource(coherence.WiDir, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceMemo {
		t.Fatalf("repeat source = %v, want memo", src)
	}

	// Fresh runner (a restarted process): served from the cache.
	r2 := NewRunner(1)
	r2.SetCache(cache)
	res, src, err := r2.SimSource(coherence.WiDir, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceCache {
		t.Fatalf("restarted source = %v, want cache", src)
	}
	if !reflect.DeepEqual(res, orig) {
		t.Fatal("cached result differs from the original simulation")
	}
	st = r2.Stats()
	if st.Sims != 0 || st.CacheHits != 1 {
		t.Fatalf("restarted runner stats = %v, want 0 sims / 1 cache hit", st)
	}
}

// peerCache wraps memCache as a SourcedResultCache whose hits claim to
// come from a peer farm node.
type peerCache struct{ *memCache }

func (c peerCache) GetSource(k RunKey) (*machine.Result, Source, bool) {
	res, ok := c.Get(k)
	return res, SourcePeer, ok
}

// TestRunnerPeerSource: a SourcedResultCache hit surfaces as
// SourcePeer with the peer-hit counter (not cache-hits) incremented —
// the provenance the multi-node farm reports per run.
func TestRunnerPeerSource(t *testing.T) {
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)
	cache := newMemCache()

	r1 := NewRunner(1)
	r1.SetCache(cache)
	orig, _, err := r1.SimSource(coherence.WiDir, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(1)
	r2.SetCache(peerCache{cache})
	res, src, err := r2.SimSource(coherence.WiDir, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourcePeer {
		t.Fatalf("source = %v, want peer", src)
	}
	if src.String() != "peer" {
		t.Fatalf("SourcePeer.String() = %q", src.String())
	}
	if !reflect.DeepEqual(res, orig) {
		t.Fatal("peer-fetched result differs from the original simulation")
	}
	st := r2.Stats()
	if st.Sims != 0 || st.PeerHits != 1 || st.CacheHits != 0 {
		t.Fatalf("stats = %v, want 0 sims / 1 peer hit / 0 cache hits", st)
	}
}
