package exp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestSerialParallelDeterminism is the regression gate for the worker
// pool: the same seed must produce identical machine.Result values
// whether the simulations run serially or across 8 workers. Each
// simulation is single-threaded and deterministic; the pool only
// changes which goroutine hosts it, so any divergence means shared
// mutable state leaked between simulations.
func TestSerialParallelDeterminism(t *testing.T) {
	o := tinyOpts()

	serial := o
	serial.Runner = NewRunner(1)
	sRows, err := RunPairs(serial)
	if err != nil {
		t.Fatal(err)
	}

	parallel := o
	parallel.Runner = NewRunner(8)
	pRows, err := RunPairs(parallel)
	if err != nil {
		t.Fatal(err)
	}

	if len(sRows) != len(pRows) {
		t.Fatalf("row counts differ: %d vs %d", len(sRows), len(pRows))
	}
	for i := range sRows {
		if sRows[i].App != pRows[i].App {
			t.Fatalf("row %d app order differs: %q vs %q", i, sRows[i].App, pRows[i].App)
		}
		if !reflect.DeepEqual(sRows[i].Base, pRows[i].Base) {
			t.Fatalf("%s Baseline result differs between serial and parallel runs", sRows[i].App)
		}
		if !reflect.DeepEqual(sRows[i].WiDir, pRows[i].WiDir) {
			t.Fatalf("%s WiDir result differs between serial and parallel runs", sRows[i].App)
		}
	}
}

// TestRunnerMemoization verifies identical configurations are simulated
// once: the memo returns the same *machine.Result pointer.
func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(2)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)

	a, err := r.Sim(coherence.Baseline, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sim(coherence.Baseline, 16, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configuration simulated twice (memo miss)")
	}

	// A different scale must not collide: the profile participates in
	// the key, not just the app name.
	c, err := r.Sim(coherence.Baseline, 16, app.Scale(0.5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("scaled variant hit the unscaled memo entry")
	}
}

// TestRunnerMemoSharedAcrossExperiments checks the cross-table dedup
// the runner exists for: Table IV and Table V both need the Baseline
// runs, so a shared runner simulates them once.
func TestRunnerMemoSharedAcrossExperiments(t *testing.T) {
	o := tinyOpts()
	o.Runner = NewRunner(4)
	if _, err := Table4(o); err != nil {
		t.Fatal(err)
	}
	entries := len(o.Runner.memo)
	if _, err := Table5(o); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Runner.memo); got != entries {
		t.Fatalf("Table5 added %d memo entries after Table4; Baseline runs were not shared", got-entries)
	}
}

// TestMapOrderingAndErrors verifies Map returns results in submission
// order regardless of completion order and aggregates every failure.
func TestMapOrderingAndErrors(t *testing.T) {
	r := NewRunner(4)
	out, err := Map(r, 16, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	sentinel := errors.New("boom")
	_, err = Map(r, 8, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("job %d: %w", i, sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("aggregate err = %v, want wrapped sentinel", err)
	}
}

// TestWatchdogSurfacesThroughAggregate drives a deliberately starved
// simulation through the pool and checks errors.Is sees the machine
// watchdog through the app-context wrapping and errors.Join.
func TestWatchdogSurfacesThroughAggregate(t *testing.T) {
	r := NewRunner(2)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)

	_, err := Map(r, 2, func(i int) (*machine.Result, error) {
		cfg := machine.DefaultConfig(16, coherence.WiDir)
		cfg.MaxCycles = 10 // far too few: the watchdog must trip
		return r.SimConfig(cfg, app, 1)
	})
	if err == nil {
		t.Fatal("starved run did not fail")
	}
	if !errors.Is(err, machine.ErrWatchdog) {
		t.Fatalf("err = %v, want machine.ErrWatchdog in chain", err)
	}
}

// TestRunnerReset drops the memo.
func TestRunnerReset(t *testing.T) {
	r := NewRunner(1)
	app, _ := workload.ByName("radiosity")
	app = app.Scale(0.05)
	if _, err := r.Sim(coherence.WiDir, 16, app, 1); err != nil {
		t.Fatal(err)
	}
	if len(r.memo) == 0 {
		t.Fatal("memo empty after Sim")
	}
	r.Reset()
	if len(r.memo) != 0 {
		t.Fatal("memo survived Reset")
	}
}
