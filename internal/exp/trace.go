package exp

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TraceRun is the outcome of one traced simulation: the usual result
// plus the captured event stream.
type TraceRun struct {
	Protocol coherence.Protocol
	App      string
	Result   *machine.Result
	Events   []obs.Event // oldest first, capture order
	Dropped  uint64      // events evicted by the bounded ring
}

// RunTraced runs one application under one protocol with the obs
// subsystem attached to a bounded ring buffer of bufCap events
// (bufCap <= 0 selects a 1M-event default). Exactly one application
// must be selected in Options.Apps.
//
// Traced runs are always executed serially on the calling goroutine
// and never consult the runner memo: a memoized *machine.Result has no
// event stream, and a traced result must not poison the cache for
// untraced callers.
func RunTraced(o Options, p coherence.Protocol, bufCap int) (*TraceRun, error) {
	o.fill()
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	if len(apps) != 1 {
		return nil, fmt.Errorf("exp: RunTraced needs exactly one app, got %d", len(apps))
	}
	if bufCap <= 0 {
		bufCap = 1 << 20
	}
	app := apps[0]
	ring := obs.NewRingSink(bufCap)
	cfg := machine.DefaultConfig(o.Cores, p)
	cfg.Trace = ring
	sys, err := machine.NewSystem(cfg, workload.Program(app, cfg.Nodes, o.Seed))
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app.Name, p, err)
	}
	res, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app.Name, p, err)
	}
	return &TraceRun{
		Protocol: p,
		App:      app.Name,
		Result:   res,
		Events:   ring.Events(),
		Dropped:  ring.Dropped(),
	}, nil
}
