// Fault sweep: robustness evaluation under injected wireless faults.
// Not part of the paper's figures — the paper assumes the WNoC's
// negligible BER (§III) — but the natural experiment once the
// simulator can model a hostile channel: how gracefully does WiDir
// degrade as the wireless medium fails underneath it?

package exp

import (
	"fmt"
	"io"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/machine"
)

// FaultSweepRow is one (application, BER) point of the sweep. The
// fault-free WiDir run of the same application is the slowdown
// reference.
type FaultSweepRow struct {
	App string
	BER float64

	Cycles   uint64
	Slowdown float64 // cycles / fault-free cycles

	Corrupted  uint64 // wireless transmissions lost to faults
	TxFailures uint64 // senders that exhausted their retries
	Demotions  uint64 // W lines demoted to wired S
	WToS       uint64 // all W->S downgrades (demotions included)
}

// FaultSweep runs WiDir with the coherence checker enabled across the
// BER grid (plus the fault-free reference per app). Every run must
// stay coherent — a checker violation fails the sweep — so the sweep
// doubles as the protocol's robustness acceptance test.
func FaultSweep(o Options, bers []float64, fcfg fault.Config) ([]FaultSweepRow, error) {
	o.fill()
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	r := o.runner()
	grid := append([]float64{0}, bers...)
	res, err := Map(r, len(apps)*len(grid), func(i int) (*machine.Result, error) {
		app, ber := apps[i/len(grid)], grid[i%len(grid)]
		cfg := machine.DefaultConfig(o.Cores, coherence.WiDir)
		cfg.EnableChecker = true
		cfg.Fault = fcfg
		cfg.Fault.WirelessBER = ber
		res, err := r.SimConfig(cfg, app, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("BER %g: %w", ber, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []FaultSweepRow
	for ai, app := range apps {
		ref := res[ai*len(grid)] // BER 0
		for bi, ber := range grid {
			if bi == 0 {
				continue
			}
			rr := res[ai*len(grid)+bi]
			rows = append(rows, FaultSweepRow{
				App: app.Name, BER: ber,
				Cycles:    rr.Cycles,
				Slowdown:  float64(rr.Cycles) / float64(ref.Cycles),
				Corrupted: rr.WirelessCorrupted, TxFailures: rr.WirelessTxFailures,
				Demotions: rr.FaultDemotions, WToS: rr.WToS,
			})
		}
	}
	return rows, nil
}

// PrintFaultSweep renders the sweep as a table.
func PrintFaultSweep(w io.Writer, rows []FaultSweepRow) {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "app\tBER\tcycles\tslowdown\tcorrupted\ttx-failures\tW->S demotions\tW->S total")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%g\t%d\t%.2fx\t%d\t%d\t%d\t%d\n",
			r.App, r.BER, r.Cycles, r.Slowdown, r.Corrupted, r.TxFailures, r.Demotions, r.WToS)
	}
	tw.Flush()
}

// CSVFaultSweep emits the sweep as CSV for plotting.
func CSVFaultSweep(w io.Writer, rows []FaultSweepRow) {
	fmt.Fprintln(w, "app,ber,cycles,slowdown,corrupted,tx_failures,demotions,wtos")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%g,%d,%.4f,%d,%d,%d,%d\n",
			r.App, r.BER, r.Cycles, r.Slowdown, r.Corrupted, r.TxFailures, r.Demotions, r.WToS)
	}
}
