package exp

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// SummaryRow is one line of the headline paper-vs-measured table.
type SummaryRow struct {
	Name     string
	Paper    string
	Measured string
}

// Summary computes the paper-vs-measured headline table from a single
// set of Baseline/WiDir pair runs (64 cores unless overridden) — every
// quantity except the core-count and threshold sweeps can be derived
// from one pass over the applications.
func Summary(o Options) ([]SummaryRow, error) {
	o.fill()
	rows, err := RunPairs(o)
	if err != nil {
		return nil, err
	}

	var mpkiN, latN, timeN, energyN, wnoc []float64
	var updates, selfInv, updSum, updCnt float64
	hops := stats.NewHistogram(0, 3, 6, 9, 12)
	shr := stats.NewHistogram(0, 6, 11, 26, 50)
	for _, ar := range rows {
		mpkiN = append(mpkiN, stats.Ratio(ar.WiDir.MPKI(), ar.Base.MPKI()))
		bTot := ar.Base.LoadROBLat + ar.Base.StoreROBLat
		wTot := ar.WiDir.LoadROBLat + ar.WiDir.StoreROBLat
		latN = append(latN, stats.Ratio(float64(wTot), float64(bTot)))
		timeN = append(timeN, stats.Ratio(float64(ar.WiDir.Cycles), float64(ar.Base.Cycles)))
		energyN = append(energyN, stats.Ratio(ar.WiDir.EnergyPJ, ar.Base.EnergyPJ))
		wnoc = append(wnoc, ar.WiDir.Energy.Share("WNoC"))
		hops.Merge(ar.Base.HopsPerLeg)
		shr.Merge(ar.WiDir.SharersPerUpdate)
		updates += float64(ar.WiDir.UpdatesReceived)
		selfInv += float64(ar.WiDir.SelfInvalidations)
		if ar.WiDir.MeanSharersPerUpdate > 0 {
			updSum += ar.WiDir.MeanSharersPerUpdate
			updCnt++
		}
	}
	reread := 0.0
	if updates > 0 {
		reread = (updates - 3*selfInv) / updates
	}
	sixPlus := hops.Fraction(2) + hops.Fraction(3) + hops.Fraction(4)

	return []SummaryRow{
		{"sharers updated per write (mean)", "~21", fmt.Sprintf("%.1f", updSum/max1(updCnt))},
		{"updates re-read before next write", "~56%", fmt.Sprintf("%.0f%%", 100*reread)},
		{"wireless writes updating 50+ sharers", "37%", fmt.Sprintf("%.0f%%", 100*shr.Fraction(4))},
		{"normalized L1 MPKI (avg)", "~0.85", fmt.Sprintf("%.3f", stats.ArithMean(mpkiN))},
		{"normalized memory latency (avg)", "~0.65", fmt.Sprintf("%.3f", stats.ArithMean(latN))},
		{"wired legs needing 6+ hops", "61%", fmt.Sprintf("%.0f%%", 100*sixPlus)},
		{fmt.Sprintf("normalized execution time (%d cores)", o.Cores), "~0.78 @64", fmt.Sprintf("%.3f", stats.ArithMean(timeN))},
		{"normalized energy (avg)", "~0.79", fmt.Sprintf("%.3f", stats.ArithMean(energyN))},
		{"WNoC share of WiDir energy", "5.9%", fmt.Sprintf("%.1f%%", 100*stats.ArithMean(wnoc))},
	}, nil
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

// PrintSummary renders the headline table.
func PrintSummary(w io.Writer, rows []SummaryRow) {
	fmt.Fprintln(w, "Headline summary: paper vs. measured (shape reproduction)")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Quantity\tPaper\tMeasured")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Name, r.Paper, r.Measured)
	}
	tw.Flush()
}
