package exp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// tinyOpts keeps the experiment tests quick: a few applications at a
// small scale on a small machine.
func tinyOpts() Options {
	return Options{
		Cores: 16,
		Scale: 0.05,
		Seed:  1,
		Apps:  []string{"radiosity", "blackscholes"},
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].App != "radiosity" || rows[0].MPKI <= 0 {
		t.Fatalf("row: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "radiosity") {
		t.Fatal("print missing app")
	}
}

func TestFig5(t *testing.T) {
	rows, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	avg := Fig5Average(rows)
	var sum float64
	for _, f := range rows[0].Fractions {
		sum += f
	}
	if sum > 1.0001 {
		t.Fatalf("fractions exceed 1: %v", rows[0].Fractions)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "average") {
		t.Fatal("print missing average")
	}
	_ = avg
}

func TestPairDerivedFigures(t *testing.T) {
	rows, err := RunPairs(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	f6 := Fig6(rows)
	f7 := Fig7(rows)
	f8 := Fig8(rows)
	f9 := Fig9(rows)
	if len(f6) != 2 || len(f7) != 2 || len(f8) != 2 || len(f9) != 2 {
		t.Fatal("derived row counts wrong")
	}
	if f6[0].Normalized <= 0 || f8[0].TimeRatio <= 0 || f9[0].Normalized <= 0 {
		t.Fatal("non-positive normalized metrics")
	}
	if f8[0].BaseStallFrac <= 0 || f8[0].BaseStallFrac >= 1 {
		t.Fatalf("stall fraction %v", f8[0].BaseStallFrac)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, f6)
	PrintFig7(&buf, f7)
	PrintFig8(&buf, 16, f8)
	PrintFig9(&buf, f9)
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Figure 9", "average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printout missing %q", want)
		}
	}
}

// TestSerialRepeatRenderingByteIdentical runs the same experiment
// twice with fresh serial runners — no shared memo, so both repeats
// really simulate — and asserts the rendered tables are byte-identical.
// Fig9 is included deliberately: its normalized energy column consumes
// EnergyPJ, whose total once varied between runs when stats.Breakdown
// summed its categories in map order.
func TestSerialRepeatRenderingByteIdentical(t *testing.T) {
	render := func() string {
		o := tinyOpts()
		o.Runner = NewRunner(1)
		rows, err := RunPairs(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintFig6(&buf, Fig6(rows))
		PrintFig9(&buf, Fig9(rows))
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("serial repeats rendered differently:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
}

func TestTable5(t *testing.T) {
	res, err := Table5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range res.Fractions {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("hop fractions sum to %v", sum)
	}
	var buf bytes.Buffer
	PrintTable5(&buf, res)
	if !strings.Contains(buf.String(), "Hops per leg") {
		t.Fatal("print malformed")
	}
}

func TestFig10(t *testing.T) {
	o := tinyOpts()
	o.Apps = []string{"radiosity"}
	pts, err := Fig10(o, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Cores != 4 || pts[1].Cores != 8 {
		t.Fatalf("points: %+v", pts)
	}
	// The 4-core Baseline speedup over itself is 1 by construction.
	if pts[0].BaseSpeedup < 0.99 || pts[0].BaseSpeedup > 1.01 {
		t.Fatalf("self speedup = %v", pts[0].BaseSpeedup)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("print malformed")
	}
}

func TestTable6(t *testing.T) {
	o := tinyOpts()
	o.Apps = []string{"radiosity"}
	rows, err := Table6(o, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].MaxWiredSharers != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Fatalf("speedup %v", r.Speedup)
		}
		if r.CollisionProb < 0 || r.CollisionProb > 1 {
			t.Fatalf("collision prob %v", r.CollisionProb)
		}
	}
	var buf bytes.Buffer
	PrintTable6(&buf, rows)
	if !strings.Contains(buf.String(), "MaxWiredSharers") {
		t.Fatal("print malformed")
	}
}

func TestMotivation(t *testing.T) {
	o := tinyOpts()
	o.Apps = []string{"radiosity"}
	m, err := Motivation(o)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanSharersPerWrite <= 0 {
		t.Fatalf("mean sharers %v", m.MeanSharersPerWrite)
	}
	if m.ReReadFraction < 0 || m.ReReadFraction > 1 {
		t.Fatalf("re-read fraction %v", m.ReReadFraction)
	}
	var buf bytes.Buffer
	PrintMotivation(&buf, m)
	if !strings.Contains(buf.String(), "sharers") {
		t.Fatal("print malformed")
	}
}

func TestUnknownAppError(t *testing.T) {
	o := Options{Apps: []string{"no-such-app"}}
	o.fill()
	if _, err := o.apps(); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("apps() err = %v, want ErrUnknownApp", err)
	}
	// Every experiment entry point surfaces it.
	if _, err := Table4(o); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("Table4 err = %v, want ErrUnknownApp", err)
	}
	if _, err := RunPairs(o); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("RunPairs err = %v, want ErrUnknownApp", err)
	}
	if _, err := Fig10(o, []int{4}); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("Fig10 err = %v, want ErrUnknownApp", err)
	}
	if _, err := Table6(o, []int{3}); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("Table6 err = %v, want ErrUnknownApp", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Cores != 64 || o.Scale != 1.0 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	apps, err := o.apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 20 {
		t.Fatal("default app set incomplete")
	}
}

func TestSummary(t *testing.T) {
	o := tinyOpts()
	rows, err := Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("summary rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintSummary(&buf, rows)
	if !strings.Contains(buf.String(), "paper vs. measured") {
		t.Fatal("print malformed")
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	CSVFig8(&buf, 16, []Fig8Row{{App: "a", TimeRatio: 0.5, BaseStallFrac: 0.4, WiDirStallFrac: 0.3}})
	CSVFig5(&buf, []Fig5Row{{App: "a", Fractions: [5]float64{1, 0, 0, 0, 0}, Mean: 2}})
	CSVFig10(&buf, []Fig10Point{{Cores: 4, BaseSpeedup: 1, WiDirSpeedup: 1}})
	CSVTable6(&buf, []Table6Row{{MaxWiredSharers: 3, Speedup: 1.4, CollisionProb: 0.03}})
	out := buf.String()
	for _, want := range []string{"time_ratio", "b50p", "widir_speedup", "collision_prob", "a,0.5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
