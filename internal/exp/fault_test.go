package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestFaultSweep(t *testing.T) {
	o := Options{Cores: 16, Scale: 0.05, Seed: 1, Apps: []string{"radiosity"}}
	rows, err := FaultSweep(o, []float64{0.1, 0.3}, fault.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Corrupted == 0 {
			t.Errorf("BER %g: no corrupted transmissions", r.BER)
		}
		if r.Slowdown <= 0 {
			t.Errorf("BER %g: slowdown %g", r.BER, r.Slowdown)
		}
	}
	var buf bytes.Buffer
	PrintFaultSweep(&buf, rows)
	if !strings.Contains(buf.String(), "radiosity") {
		t.Fatal("print missing app")
	}
	buf.Reset()
	CSVFaultSweep(&buf, rows)
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", lines)
	}
}
