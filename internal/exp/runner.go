package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Runner executes independent machine simulations through a bounded
// worker pool and memoizes canonical results by configuration.
//
// Every simulation the evaluation runs is a deterministic function of
// (protocol, cores, application profile, seed) — an embarrassingly
// parallel shape — so the runner fans submissions out to
// Parallelism() workers while Map preserves deterministic output
// ordering by submission index. Results for the canonical machine
// configuration (machine.DefaultConfig) are memoized: the Baseline
// runs behind Table IV, Table V, Fig. 6 and Fig. 7, and the WiDir runs
// behind Fig. 5 and the motivation measurements, are each simulated
// once per Runner no matter how many tables ask for them.
//
// Memoized *machine.Result values are shared between callers and must
// be treated as immutable.
type Runner struct {
	parallel int
	sem      chan struct{}

	mu   sync.Mutex
	memo map[simKey]*memoCell
}

// simKey identifies one canonical simulation. The full workload
// profile participates (not just the application name) so scaled
// variants — o.Scale, Fig. 10's strong-scaling division — never
// collide.
type simKey struct {
	protocol coherence.Protocol
	cores    int
	app      workload.Profile
	seed     uint64
}

// memoCell is a singleflight slot: the first goroutine to claim the
// key simulates, concurrent duplicates wait on the sync.Once.
type memoCell struct {
	once sync.Once
	res  *machine.Result
	err  error
}

// NewRunner builds a runner with the given worker-pool width.
// parallel <= 0 selects runtime.GOMAXPROCS(0); parallel == 1 runs
// every simulation serially on the submitting goroutine's schedule.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		parallel: parallel,
		sem:      make(chan struct{}, parallel),
		memo:     make(map[simKey]*memoCell),
	}
}

// Parallelism returns the worker-pool width.
func (r *Runner) Parallelism() int { return r.parallel }

// Reset drops every memoized result (for long-lived processes that
// want to bound the cache between invocations).
func (r *Runner) Reset() {
	r.mu.Lock()
	r.memo = make(map[simKey]*memoCell)
	r.mu.Unlock()
}

// Sim runs (or recalls) the canonical simulation for an application
// profile: machine.DefaultConfig(cores, p) driving
// workload.Program(app, cores, seed). Errors carry the app/protocol
// context and wrap the underlying cause, so errors.Is sees through
// them (e.g. to machine.ErrWatchdog).
func (r *Runner) Sim(p coherence.Protocol, cores int, app workload.Profile, seed uint64) (*machine.Result, error) {
	key := simKey{protocol: p, cores: cores, app: app, seed: seed}
	r.mu.Lock()
	cell := r.memo[key]
	if cell == nil {
		cell = &memoCell{}
		r.memo[key] = cell
	}
	r.mu.Unlock()
	cell.once.Do(func() {
		cfg := machine.DefaultConfig(cores, p)
		cell.res, cell.err = simulate(cfg, app, seed)
	})
	if cell.err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app.Name, p, cell.err)
	}
	return cell.res, nil
}

// SimConfig runs an uncached simulation with a custom machine
// configuration (threshold sweeps, alternate NoC models). The config's
// node count sizes the program; errors carry app/protocol context.
func (r *Runner) SimConfig(cfg machine.Config, app workload.Profile, seed uint64) (*machine.Result, error) {
	res, err := simulate(cfg, app, seed)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app.Name, cfg.Protocol, err)
	}
	return res, nil
}

func simulate(cfg machine.Config, app workload.Profile, seed uint64) (*machine.Result, error) {
	sys, err := machine.NewSystem(cfg, workload.Program(app, cfg.Nodes, seed))
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// Map runs fn(0..n-1) across the runner's worker pool and returns the
// results in submission-index order — worker interleaving never
// reorders output. All failures are aggregated into one error
// (errors.Join), each retaining its wrapped chain for errors.Is.
func Map[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if r.parallel == 1 {
		// Serial fast path: no goroutines, deterministic submission order.
		var errs []error
		for i := 0; i < n; i++ {
			var err error
			out[i], err = fn(i)
			if err != nil {
				errs = append(errs, err)
			}
		}
		return out, errors.Join(errs...)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// defaultRunner backs Options values that name neither a Runner nor a
// Parallel width, so plain library calls still get pooled, memoized
// execution process-wide.
var (
	defaultRunnerOnce sync.Once
	defaultRunner     *Runner
)

func sharedRunner() *Runner {
	defaultRunnerOnce.Do(func() { defaultRunner = NewRunner(0) })
	return defaultRunner
}
