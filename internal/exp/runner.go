package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Runner executes independent machine simulations through a bounded
// worker pool and memoizes canonical results by configuration.
//
// Every simulation the evaluation runs is a deterministic function of
// (protocol, cores, application profile, seed) — an embarrassingly
// parallel shape — so the runner fans submissions out to
// Parallelism() workers while Map preserves deterministic output
// ordering by submission index. Results for the canonical machine
// configuration (machine.DefaultConfig) are memoized: the Baseline
// runs behind Table IV, Table V, Fig. 6 and Fig. 7, and the WiDir runs
// behind Fig. 5 and the motivation measurements, are each simulated
// once per Runner no matter how many tables ask for them.
//
// The in-process memo can be backed by a persistent ResultCache
// (SetCache): on a memo miss the cache is consulted before simulating,
// and fresh results are written through, so a long-lived process — the
// widir-serve simulation farm — never re-simulates a canonical run any
// prior process already paid for.
//
// Memoized *machine.Result values are shared between callers and must
// be treated as immutable.
type Runner struct {
	parallel int
	sem      chan struct{}

	cache ResultCache

	mu   sync.Mutex
	memo map[RunKey]*memoCell

	sims          atomic.Uint64
	memoHits      atomic.Uint64
	inflightJoins atomic.Uint64
	cacheHits     atomic.Uint64
	cacheFills    atomic.Uint64
	peerHits      atomic.Uint64
}

// RunKey identifies one canonical simulation: machine.DefaultConfig
// (Cores, Protocol) driving workload.Program(App, Cores, Seed). The
// full workload profile participates (not just the application name)
// so scaled variants — Options.Scale, Fig. 10's strong-scaling
// division — never collide. It is exported so persistent caches
// (internal/serve) can key storage by the same identity the memo uses.
type RunKey struct {
	Protocol coherence.Protocol
	Cores    int
	App      workload.Profile
	Seed     uint64
}

// ResultCache is a persistent result store consulted on memo misses
// and written through after fresh simulations. Implementations must be
// safe for concurrent use; Get must only return results that were
// stored for exactly the same key (the serve cache guarantees this by
// content-addressing entries with the canonical config+profile hash).
// Returned results are shared and must be treated as immutable.
type ResultCache interface {
	Get(k RunKey) (*machine.Result, bool)
	Put(k RunKey, res *machine.Result)
}

// SourcedResultCache is an optional ResultCache extension for caches
// with more than one tier behind them. GetSource distinguishes a local
// hit (SourceCache) from one satisfied by fetching the entry off a
// peer farm node (SourcePeer); the runner then reports the true
// provenance per run and counts peer hits separately. A plain
// ResultCache is treated as all-local.
type SourcedResultCache interface {
	ResultCache
	GetSource(k RunKey) (*machine.Result, Source, bool)
}

// Source says where a simulation result came from.
type Source uint8

const (
	// SourceSim is a freshly executed simulation.
	SourceSim Source = iota
	// SourceMemo is a hit in the runner's in-process memo (including
	// joining a duplicate already in flight).
	SourceMemo
	// SourceCache is a hit in the persistent ResultCache.
	SourceCache
	// SourcePeer is a hit satisfied by fetching the entry from a peer
	// farm node (a SourcedResultCache distinguishes it from a local
	// disk hit).
	SourcePeer
)

// String names the source for stats output and job reports.
func (s Source) String() string {
	switch s {
	case SourceMemo:
		return "memo"
	case SourceCache:
		return "cache"
	case SourcePeer:
		return "peer"
	default:
		return "sim"
	}
}

// RunnerStats is a snapshot of the runner's memoization counters.
type RunnerStats struct {
	Sims          uint64 `json:"sims"`           // simulations actually executed
	MemoHits      uint64 `json:"memo_hits"`      // served from a completed memo cell
	InflightJoins uint64 `json:"inflight_joins"` // waited on a duplicate in flight
	CacheHits     uint64 `json:"cache_hits"`     // served from the persistent cache
	CacheFills    uint64 `json:"cache_fills"`    // fresh results written through
	PeerHits      uint64 `json:"peer_hits"`      // served by fetching from a peer farm node
}

// String renders the counters in the verbose-output form.
func (s RunnerStats) String() string {
	return fmt.Sprintf("sims=%d memo-hits=%d inflight-joins=%d cache-hits=%d cache-fills=%d peer-hits=%d",
		s.Sims, s.MemoHits, s.InflightJoins, s.CacheHits, s.CacheFills, s.PeerHits)
}

// memoCell is a singleflight slot: the first goroutine to claim the
// key simulates, concurrent duplicates wait on the sync.Once.
type memoCell struct {
	once    sync.Once
	settled atomic.Bool // set after once.Do completes (hit/join split)
	res     *machine.Result
	err     error
	src     Source // how the cell was filled: SourceSim or SourceCache
}

// NewRunner builds a runner with the given worker-pool width.
// parallel <= 0 selects runtime.GOMAXPROCS(0); parallel == 1 runs
// every simulation serially on the submitting goroutine's schedule.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		parallel: parallel,
		sem:      make(chan struct{}, parallel),
		memo:     make(map[RunKey]*memoCell),
	}
}

// Parallelism returns the worker-pool width.
func (r *Runner) Parallelism() int { return r.parallel }

// SetCache attaches a persistent result cache. Call before submitting
// work; the cache is consulted on every memo miss and filled after
// every fresh simulation.
func (r *Runner) SetCache(c ResultCache) { r.cache = c }

// Stats snapshots the memoization counters.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Sims:          r.sims.Load(),
		MemoHits:      r.memoHits.Load(),
		InflightJoins: r.inflightJoins.Load(),
		CacheHits:     r.cacheHits.Load(),
		CacheFills:    r.cacheFills.Load(),
		PeerHits:      r.peerHits.Load(),
	}
}

// Reset drops every memoized result (for long-lived processes that
// want to bound the cache between invocations). Counters persist; they
// describe the runner's lifetime, not the current memo population.
func (r *Runner) Reset() {
	r.mu.Lock()
	r.memo = make(map[RunKey]*memoCell)
	r.mu.Unlock()
}

// Sim runs (or recalls) the canonical simulation for an application
// profile: machine.DefaultConfig(cores, p) driving
// workload.Program(app, cores, seed). Errors carry the app/protocol
// context and wrap the underlying cause, so errors.Is sees through
// them (e.g. to machine.ErrWatchdog).
func (r *Runner) Sim(p coherence.Protocol, cores int, app workload.Profile, seed uint64) (*machine.Result, error) {
	res, _, err := r.SimSource(p, cores, app, seed)
	return res, err
}

// SimSource is Sim plus provenance: whether the result came from a
// fresh simulation, the in-process memo, or the persistent cache. The
// simulation farm reports this per run so a cached sweep is visibly
// cached.
func (r *Runner) SimSource(p coherence.Protocol, cores int, app workload.Profile, seed uint64) (*machine.Result, Source, error) {
	key := RunKey{Protocol: p, Cores: cores, App: app, Seed: seed}
	r.mu.Lock()
	cell := r.memo[key]
	created := cell == nil
	if created {
		cell = &memoCell{}
		r.memo[key] = cell
	}
	r.mu.Unlock()
	if !created {
		if cell.settled.Load() {
			r.memoHits.Add(1)
		} else {
			r.inflightJoins.Add(1)
		}
	}
	cell.once.Do(func() {
		defer cell.settled.Store(true)
		if r.cache != nil {
			res, src, ok := cacheGetSource(r.cache, key)
			if ok {
				cell.res, cell.src = res, src
				if src == SourcePeer {
					r.peerHits.Add(1)
				} else {
					r.cacheHits.Add(1)
				}
				return
			}
		}
		r.sims.Add(1)
		cfg := machine.DefaultConfig(cores, p)
		cell.res, cell.err = simulate(cfg, app, seed)
		cell.src = SourceSim
		if r.cache != nil && cell.err == nil {
			r.cache.Put(key, cell.res)
			r.cacheFills.Add(1)
		}
	})
	if cell.err != nil {
		return nil, cell.src, fmt.Errorf("%s/%s: %w", app.Name, p, cell.err)
	}
	src := cell.src
	if !created {
		src = SourceMemo
	}
	return cell.res, src, nil
}

// SimConfig runs an uncached simulation with a custom machine
// configuration (threshold sweeps, alternate NoC models). The config's
// node count sizes the program; errors carry app/protocol context.
func (r *Runner) SimConfig(cfg machine.Config, app workload.Profile, seed uint64) (*machine.Result, error) {
	res, err := simulate(cfg, app, seed)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app.Name, cfg.Protocol, err)
	}
	return res, nil
}

// cacheGetSource consults a ResultCache, using the richer GetSource
// when the implementation can tell local from peer-fetched hits.
func cacheGetSource(c ResultCache, key RunKey) (*machine.Result, Source, bool) {
	if sc, ok := c.(SourcedResultCache); ok {
		return sc.GetSource(key)
	}
	res, ok := c.Get(key)
	return res, SourceCache, ok
}

func simulate(cfg machine.Config, app workload.Profile, seed uint64) (*machine.Result, error) {
	sys, err := machine.NewSystem(cfg, workload.Program(app, cfg.Nodes, seed))
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// Map runs fn(0..n-1) across the runner's worker pool and returns the
// results in submission-index order — worker interleaving never
// reorders output. All failures are aggregated into one error
// (errors.Join), each retaining its wrapped chain for errors.Is.
func Map[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if r.parallel == 1 {
		// Serial fast path: no goroutines, deterministic submission order.
		var errs []error
		for i := 0; i < n; i++ {
			var err error
			out[i], err = fn(i)
			if err != nil {
				errs = append(errs, err)
			}
		}
		return out, errors.Join(errs...)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// defaultRunner backs Options values that name neither a Runner nor a
// Parallel width, so plain library calls still get pooled, memoized
// execution process-wide.
var (
	defaultRunnerOnce sync.Once
	defaultRunner     *Runner
)

func sharedRunner() *Runner {
	defaultRunnerOnce.Do(func() { defaultRunner = NewRunner(0) })
	return defaultRunner
}
