// Package exp implements the paper's evaluation: one function per
// table and figure, each running the required simulations and
// formatting the same rows or series the paper reports. The
// cmd/widir-experiments tool and the repository's benchmarks both call
// into this package, so printed results and benchmark results always
// agree.
package exp

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scope an experiment run.
type Options struct {
	Cores int      // default 64
	Scale float64  // workload scale factor, default 1.0
	Seed  uint64   // default 1
	Apps  []string // subset; empty = all 20

	// Parallel is the simulation worker-pool width: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces serial execution. Ignored when
	// Runner is set.
	Parallel int
	// Runner, when non-nil, executes (and memoizes) this experiment's
	// simulations. Sharing one Runner across experiments deduplicates
	// the Baseline/WiDir runs that several tables and figures repeat.
	Runner *Runner
}

func (o *Options) fill() {
	if o.Cores == 0 {
		o.Cores = 64
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// runner resolves the executing Runner: an explicit one, else an
// ephemeral pool of the requested width, else the shared process-wide
// runner (whose memo persists across calls).
func (o *Options) runner() *Runner {
	if o.Runner != nil {
		return o.Runner
	}
	if o.Parallel != 0 {
		return NewRunner(o.Parallel)
	}
	return sharedRunner()
}

// ErrUnknownApp is wrapped into the error returned when Options.Apps
// names an application that is not in the Table IV set.
var ErrUnknownApp = errors.New("unknown application")

func (o *Options) apps() ([]workload.Profile, error) {
	var out []workload.Profile
	if len(o.Apps) == 0 {
		for _, p := range workload.Apps() {
			out = append(out, p.Scale(o.Scale))
		}
		return out, nil
	}
	for _, name := range o.Apps {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: %w %q", ErrUnknownApp, name)
		}
		out = append(out, p.Scale(o.Scale))
	}
	return out, nil
}

// AppRow is one application's pair of results.
type AppRow struct {
	App   string
	Base  *machine.Result
	WiDir *machine.Result
}

// RunPairs executes baseline+WiDir for every selected app, fanning the
// 2×len(apps) independent simulations across the runner's pool.
func RunPairs(o Options) ([]AppRow, error) {
	o.fill()
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	r := o.runner()
	res, err := Map(r, 2*len(apps), func(i int) (*machine.Result, error) {
		p := coherence.Baseline
		if i%2 == 1 {
			p = coherence.WiDir
		}
		return r.Sim(p, o.Cores, apps[i/2], o.Seed)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AppRow, len(apps))
	for i, app := range apps {
		rows[i] = AppRow{App: app.Name, Base: res[2*i], WiDir: res[2*i+1]}
	}
	return rows, nil
}

// runEach runs one simulation per selected app under the given
// protocol, in app order.
func runEach(o Options, p coherence.Protocol) ([]workload.Profile, []*machine.Result, error) {
	apps, err := o.apps()
	if err != nil {
		return nil, nil, err
	}
	r := o.runner()
	res, err := Map(r, len(apps), func(i int) (*machine.Result, error) {
		return r.Sim(p, o.Cores, apps[i], o.Seed)
	})
	if err != nil {
		return nil, nil, err
	}
	return apps, res, nil
}

// newTabWriter standardizes table formatting.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// ---------------------------------------------------------------------
// Table IV: Baseline L1 MPKI per application.

// Table4Row pairs the paper's MPKI with the measured one.
type Table4Row struct {
	App       string
	PaperMPKI float64
	MPKI      float64
}

// Table4 measures Baseline L1 MPKI for every application.
func Table4(o Options) ([]Table4Row, error) {
	o.fill()
	apps, res, err := runEach(o, coherence.Baseline)
	if err != nil {
		return nil, err
	}
	rows := make([]Table4Row, len(apps))
	for i, app := range apps {
		rows[i] = Table4Row{App: app.Name, PaperMPKI: app.PaperMPKI, MPKI: res[i].MPKI()}
	}
	return rows, nil
}

// PrintTable4 renders the rows.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table IV: evaluated applications characterized by L1 MPKI in Baseline")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "App\tPaper MPKI\tMeasured MPKI")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.App, r.PaperMPKI, r.MPKI)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------
// Figure 5: histogram of sharers updated per wireless write.

// Fig5Row is one application's sharer-count distribution.
type Fig5Row struct {
	App       string
	Fractions [5]float64 // bins: 0-5, 6-10, 11-25, 26-49, 50+
	Mean      float64
}

// Fig5Bins labels the histogram bins as in the paper.
var Fig5Bins = [5]string{"<=5", "6-10", "11-25", "26-49", "50+"}

// Fig5 runs WiDir and collects the per-write sharer histogram.
func Fig5(o Options) ([]Fig5Row, error) {
	o.fill()
	apps, res, err := runEach(o, coherence.WiDir)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, len(apps))
	for i, app := range apps {
		row := Fig5Row{App: app.Name, Mean: res[i].MeanSharersPerUpdate}
		for b := 0; b < 5; b++ {
			row.Fractions[b] = res[i].SharersPerUpdate.Fraction(b)
		}
		rows[i] = row
	}
	return rows, nil
}

// Fig5Average aggregates the distribution across applications.
func Fig5Average(rows []Fig5Row) Fig5Row {
	avg := Fig5Row{App: "average"}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		for i := range avg.Fractions {
			avg.Fractions[i] += r.Fractions[i]
		}
		avg.Mean += r.Mean
	}
	for i := range avg.Fractions {
		avg.Fractions[i] /= float64(len(rows))
	}
	avg.Mean /= float64(len(rows))
	return avg
}

// PrintFig5 renders the rows.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: number of sharers updated upon a wireless write in WiDir")
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "App\t%s\t%s\t%s\t%s\t%s\tmean\n",
		Fig5Bins[0], Fig5Bins[1], Fig5Bins[2], Fig5Bins[3], Fig5Bins[4])
	all := append(append([]Fig5Row(nil), rows...), Fig5Average(rows))
	for _, r := range all {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.1f\n", r.App,
			100*r.Fractions[0], 100*r.Fractions[1], 100*r.Fractions[2],
			100*r.Fractions[3], 100*r.Fractions[4], r.Mean)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------
// Figure 6: normalized MPKI (read/write split).

// Fig6Row is one application's normalized MPKI.
type Fig6Row struct {
	App                   string
	BaseRead, BaseWrite   float64
	WiDirRead, WiDirWrite float64
	Normalized            float64 // WiDir total / Baseline total
}

// Fig6 computes the normalized MPKI comparison.
func Fig6(rows []AppRow) []Fig6Row {
	var out []Fig6Row
	for _, ar := range rows {
		f := Fig6Row{
			App:        ar.App,
			BaseRead:   ar.Base.ReadMPKI(),
			BaseWrite:  ar.Base.WriteMPKI(),
			WiDirRead:  ar.WiDir.ReadMPKI(),
			WiDirWrite: ar.WiDir.WriteMPKI(),
		}
		f.Normalized = stats.Ratio(ar.WiDir.MPKI(), ar.Base.MPKI())
		out = append(out, f)
	}
	return out
}

// PrintFig6 renders the rows plus the average.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: L1 MPKI in WiDir and Baseline, normalized to Baseline")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "App\tBase rd\tBase wr\tWiDir rd\tWiDir wr\tnormalized")
	var norms []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			r.App, r.BaseRead, r.BaseWrite, r.WiDirRead, r.WiDirWrite, r.Normalized)
		norms = append(norms, r.Normalized)
	}
	fmt.Fprintf(tw, "average\t\t\t\t\t%.3f\n", stats.ArithMean(norms))
	tw.Flush()
}

// ---------------------------------------------------------------------
// Figure 7: normalized memory-operation latency (loads/stores split).

// Fig7Row is one application's normalized memory latency.
type Fig7Row struct {
	App        string
	Normalized float64 // WiDir total mem-op ROB latency / Baseline
	LoadRatio  float64
	StoreRatio float64
}

// Fig7 computes the overall-latency-of-memory-operations comparison.
func Fig7(rows []AppRow) []Fig7Row {
	var out []Fig7Row
	for _, ar := range rows {
		bTot := ar.Base.LoadROBLat + ar.Base.StoreROBLat
		wTot := ar.WiDir.LoadROBLat + ar.WiDir.StoreROBLat
		out = append(out, Fig7Row{
			App:        ar.App,
			Normalized: stats.Ratio(float64(wTot), float64(bTot)),
			LoadRatio:  stats.Ratio(float64(ar.WiDir.LoadROBLat), float64(ar.Base.LoadROBLat)),
			StoreRatio: stats.Ratio(float64(ar.WiDir.StoreROBLat), float64(ar.Base.StoreROBLat)),
		})
	}
	return out
}

// PrintFig7 renders the rows plus the average.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: overall latency of memory operations, normalized to Baseline")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "App\tloads\tstores\ttotal")
	var norms []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", r.App, r.LoadRatio, r.StoreRatio, r.Normalized)
		norms = append(norms, r.Normalized)
	}
	fmt.Fprintf(tw, "average\t\t\t%.3f\n", stats.ArithMean(norms))
	tw.Flush()
}

// ---------------------------------------------------------------------
// Table V: wired-mesh hops per message leg in Baseline.

// Table5Result is the aggregate hop distribution.
type Table5Result struct {
	Fractions [5]float64 // bins 0-2, 3-5, 6-8, 9-11, 12+
}

// Table5Bins labels the bins as in the paper.
var Table5Bins = [5]string{"0-2", "3-5", "6-8", "9-11", "12-16"}

// Table5 aggregates hop counts across Baseline runs of all apps.
func Table5(o Options) (*Table5Result, error) {
	o.fill()
	_, res, err := runEach(o, coherence.Baseline)
	if err != nil {
		return nil, err
	}
	agg := stats.NewHistogram(0, 3, 6, 9, 12)
	for _, r := range res {
		agg.Merge(r.HopsPerLeg)
	}
	var out Table5Result
	for i := 0; i < 5; i++ {
		out.Fractions[i] = agg.Fraction(i)
	}
	return &out, nil
}

// PrintTable5 renders the distribution.
func PrintTable5(w io.Writer, t *Table5Result) {
	fmt.Fprintln(w, "Table V: distribution of network hops per leg (Baseline, 64 cores)")
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "Hops per leg\t%s\t%s\t%s\t%s\t%s\n",
		Table5Bins[0], Table5Bins[1], Table5Bins[2], Table5Bins[3], Table5Bins[4])
	fmt.Fprintf(tw, "%% of messages\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\n",
		100*t.Fractions[0], 100*t.Fractions[1], 100*t.Fractions[2],
		100*t.Fractions[3], 100*t.Fractions[4])
	tw.Flush()
}

// ---------------------------------------------------------------------
// Figure 8: normalized execution time with memory-stall split.

// Fig8Row is one application at one core count.
type Fig8Row struct {
	App            string
	TimeRatio      float64 // WiDir cycles / Baseline cycles
	BaseStallFrac  float64 // Baseline memory-stall share of cycles
	WiDirStallFrac float64
}

// Fig8 computes the execution-time comparison from pair results.
func Fig8(rows []AppRow) []Fig8Row {
	var out []Fig8Row
	for _, ar := range rows {
		out = append(out, Fig8Row{
			App:            ar.App,
			TimeRatio:      stats.Ratio(float64(ar.WiDir.Cycles), float64(ar.Base.Cycles)),
			BaseStallFrac:  stallFrac(ar.Base),
			WiDirStallFrac: stallFrac(ar.WiDir),
		})
	}
	return out
}

func stallFrac(r *machine.Result) float64 {
	return stats.Ratio(float64(r.MemStallCycles), float64(r.Cycles*uint64(r.Nodes)))
}

// PrintFig8 renders one core count's panel.
func PrintFig8(w io.Writer, cores int, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8 (%d cores): execution time normalized to Baseline\n", cores)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "App\ttime ratio\tBase stall%\tWiDir stall%")
	var ratios []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.0f%%\t%.0f%%\n", r.App, r.TimeRatio,
			100*r.BaseStallFrac, 100*r.WiDirStallFrac)
		ratios = append(ratios, r.TimeRatio)
	}
	fmt.Fprintf(tw, "average\t%.3f\t\t\n", stats.ArithMean(ratios))
	tw.Flush()
}

// ---------------------------------------------------------------------
// Figure 9: normalized energy with component breakdown.

// Fig9Row is one application's energy comparison.
type Fig9Row struct {
	App        string
	Normalized float64            // WiDir energy / Baseline energy
	WNoCShare  float64            // WNoC share of WiDir energy
	BaseShares map[string]float64 // Baseline category shares
}

// Fig9 computes the energy comparison from pair results.
func Fig9(rows []AppRow) []Fig9Row {
	var out []Fig9Row
	for _, ar := range rows {
		r := Fig9Row{
			App:        ar.App,
			Normalized: stats.Ratio(ar.WiDir.EnergyPJ, ar.Base.EnergyPJ),
			WNoCShare:  ar.WiDir.Energy.Share("WNoC"),
			BaseShares: map[string]float64{},
		}
		for _, c := range ar.Base.Energy.Categories() {
			r.BaseShares[c] = ar.Base.Energy.Share(c)
		}
		out = append(out, r)
	}
	return out
}

// PrintFig9 renders the rows plus averages.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: energy consumed by WiDir and Baseline, normalized to Baseline")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "App\tnormalized\tWNoC share")
	var norms, wnoc []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f%%\n", r.App, r.Normalized, 100*r.WNoCShare)
		norms = append(norms, r.Normalized)
		wnoc = append(wnoc, r.WNoCShare)
	}
	fmt.Fprintf(tw, "average\t%.3f\t%.1f%%\n", stats.ArithMean(norms), 100*stats.ArithMean(wnoc))
	tw.Flush()
	if len(rows) > 0 {
		var cats []string
		for c := range rows[0].BaseShares {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		fmt.Fprint(w, "Baseline energy shares (first app):")
		for _, c := range cats {
			fmt.Fprintf(w, " %s=%.0f%%", c, 100*rows[0].BaseShares[c])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Figure 10: speedup over the 4-core Baseline as cores scale.

// Fig10Point is the mean speedup at one core count.
type Fig10Point struct {
	Cores        int
	BaseSpeedup  float64 // Baseline(4) time / Baseline(n) time, mean across apps
	WiDirSpeedup float64
}

// Fig10 sweeps core counts under strong scaling: the application's
// total work is fixed (the per-core step budget shrinks as cores grow),
// and speedups are relative to the 4-core Baseline, averaged (geomean)
// over the selected applications.
func Fig10(o Options, coreCounts []int) ([]Fig10Point, error) {
	o.fill()
	if len(coreCounts) == 0 {
		coreCounts = []int{4, 16, 32, 64}
	}
	const refCores = 4
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	// One flat batch: the 4-core Baseline references plus every
	// (core count, app, protocol) combination, all independent.
	type simJob struct {
		protocol coherence.Protocol
		cores    int
		app      workload.Profile
	}
	jobs := make([]simJob, 0, len(apps)*(1+2*len(coreCounts)))
	for _, app := range apps {
		jobs = append(jobs, simJob{coherence.Baseline, refCores, app})
	}
	for _, n := range coreCounts {
		for _, app := range apps {
			scaled := app.Scale(float64(refCores) / float64(n))
			jobs = append(jobs, simJob{coherence.Baseline, n, scaled})
			jobs = append(jobs, simJob{coherence.WiDir, n, scaled})
		}
	}
	r := o.runner()
	res, err := Map(r, len(jobs), func(i int) (*machine.Result, error) {
		return r.Sim(jobs[i].protocol, jobs[i].cores, jobs[i].app, o.Seed)
	})
	if err != nil {
		return nil, err
	}
	ref := make(map[string]uint64)
	for i, app := range apps {
		ref[app.Name] = res[i].Cycles
	}
	var out []Fig10Point
	idx := len(apps)
	for _, n := range coreCounts {
		var bs, ws []float64
		for _, app := range apps {
			b, wd := res[idx], res[idx+1]
			idx += 2
			bs = append(bs, float64(ref[app.Name])/float64(b.Cycles))
			ws = append(ws, float64(ref[app.Name])/float64(wd.Cycles))
		}
		out = append(out, Fig10Point{
			Cores:        n,
			BaseSpeedup:  stats.GeoMean(bs),
			WiDirSpeedup: stats.GeoMean(ws),
		})
	}
	return out, nil
}

// PrintFig10 renders the series.
func PrintFig10(w io.Writer, pts []Fig10Point) {
	fmt.Fprintln(w, "Figure 10: average speedup over the 4-core Baseline")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Cores\tBaseline\tWiDir")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2fx\n", p.Cores, p.BaseSpeedup, p.WiDirSpeedup)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------
// Table VI: MaxWiredSharers sensitivity.

// Table6Row is one threshold's mean speedup and collision probability.
type Table6Row struct {
	MaxWiredSharers int
	Speedup         float64 // mean Baseline/WiDir execution-time ratio
	CollisionProb   float64
}

// Table6 sweeps the MaxWiredSharers threshold. The Baseline references
// (memoized, shared with Table IV) and every threshold's WiDir runs go
// through the pool as one flat batch.
func Table6(o Options, thresholds []int) ([]Table6Row, error) {
	o.fill()
	if len(thresholds) == 0 {
		thresholds = []int{2, 3, 4, 5}
	}
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	r := o.runner()
	n := len(apps)
	res, err := Map(r, n*(1+len(thresholds)), func(i int) (*machine.Result, error) {
		if i < n {
			// Baseline reference per app (threshold-independent).
			return r.Sim(coherence.Baseline, o.Cores, apps[i], o.Seed)
		}
		th := thresholds[(i-n)/n]
		app := apps[(i-n)%n]
		cfg := machine.DefaultConfig(o.Cores, coherence.WiDir)
		cfg.MaxWiredSharers = th
		if th > cfg.MaxPointers {
			cfg.MaxPointers = th // the scheme requires i >= MaxWiredSharers
		}
		res, err := r.SimConfig(cfg, app, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("th=%d: %w", th, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	base := make(map[string]uint64)
	for i, app := range apps {
		base[app.Name] = res[i].Cycles
	}
	var out []Table6Row
	for ti, th := range thresholds {
		var sp, cp []float64
		for ai, app := range apps {
			r := res[n+ti*n+ai]
			sp = append(sp, float64(base[app.Name])/float64(r.Cycles))
			cp = append(cp, r.CollisionProb)
		}
		out = append(out, Table6Row{
			MaxWiredSharers: th,
			Speedup:         stats.GeoMean(sp),
			CollisionProb:   stats.ArithMean(cp),
		})
	}
	return out, nil
}

// PrintTable6 renders the rows.
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "Table VI: sensitivity to MaxWiredSharers")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "MaxWiredSharers\tSpeedup\tColl. prob.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2f%%\n", r.MaxWiredSharers, r.Speedup, 100*r.CollisionProb)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------
// §II-C motivation: sharers accumulated under update-writes and the
// re-read fraction after a write.

// MotivationResult reports the two §II-C statistics measured under
// WiDir (whose W state realizes the "writes update rather than
// invalidate" model the paper instrumented).
type MotivationResult struct {
	MeanSharersPerWrite float64 // paper: ~21
	ReReadFraction      float64 // paper: ~56%
}

// Motivation measures the update-mode sharing statistics.
func Motivation(o Options) (*MotivationResult, error) {
	o.fill()
	_, res, err := runEach(o, coherence.WiDir)
	if err != nil {
		return nil, err
	}
	var sharers []float64
	var consumed, updates float64
	for _, r := range res {
		if r.MeanSharersPerUpdate > 0 {
			sharers = append(sharers, r.MeanSharersPerUpdate)
		}
		// Re-read fraction: updates that were read by the receiving
		// core before the next update arrived, i.e. updates that did
		// not contribute to decay. Receivers that self-invalidate lost
		// UpdateCountMax updates unread.
		updates += float64(r.UpdatesReceived)
		consumed += float64(r.UpdatesReceived) - 3*float64(r.SelfInvalidations)
	}
	m := &MotivationResult{MeanSharersPerWrite: stats.ArithMean(sharers)}
	if updates > 0 {
		m.ReReadFraction = consumed / updates
	}
	return m, nil
}

// PrintMotivation renders the result.
func PrintMotivation(w io.Writer, m *MotivationResult) {
	fmt.Fprintln(w, "Section II-C motivation: update-mode sharing statistics")
	fmt.Fprintf(w, "mean sharers updated per write: %.1f (paper: ~21)\n", m.MeanSharersPerWrite)
	fmt.Fprintf(w, "fraction of updates re-read before the next write: %.0f%% (paper: ~56%%)\n", 100*m.ReReadFraction)
}

// ---------------------------------------------------------------------
// CSV output: machine-readable versions of the main series, for
// plotting. One function per figure-like experiment.

// CSVFig8 writes "app,time_ratio,base_stall,widir_stall" rows.
func CSVFig8(w io.Writer, cores int, rows []Fig8Row) {
	fmt.Fprintf(w, "# fig8 cores=%d\n", cores)
	fmt.Fprintln(w, "app,time_ratio,base_stall_frac,widir_stall_frac")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f\n", r.App, r.TimeRatio, r.BaseStallFrac, r.WiDirStallFrac)
	}
}

// CSVFig5 writes one row per app with the five bin fractions.
func CSVFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "app,le5,b6_10,b11_25,b26_49,b50p,mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f\n", r.App,
			r.Fractions[0], r.Fractions[1], r.Fractions[2], r.Fractions[3], r.Fractions[4], r.Mean)
	}
}

// CSVFig10 writes the speedup series.
func CSVFig10(w io.Writer, pts []Fig10Point) {
	fmt.Fprintln(w, "cores,baseline_speedup,widir_speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%.4f,%.4f\n", p.Cores, p.BaseSpeedup, p.WiDirSpeedup)
	}
}

// CSVTable6 writes the threshold sweep.
func CSVTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "max_wired_sharers,speedup,collision_prob")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f\n", r.MaxWiredSharers, r.Speedup, r.CollisionProb)
	}
}
