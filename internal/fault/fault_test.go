package fault

import (
	"strings"
	"testing"
)

// drawAll consumes a fixed draw schedule and fingerprints it.
func drawAll(in *Injector) string {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		if in.CorruptTx() {
			b.WriteByte('C')
		}
		d := in.LinkDelay(i%4, (i+1)%4)
		b.WriteByte(byte('0' + d%10))
		if in.DirDelay() > 0 {
			b.WriteByte('D')
		}
	}
	return b.String()
}

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if in := New(Config{}); in != nil {
		t.Fatalf("New(zero) = %v, want nil", in)
	}
	// Rates without cycle budgets still enable (cycles take defaults
	// in New).
	if !(Config{WirelessBER: 0.5}).Enabled() {
		t.Fatal("BER-only Config should be enabled")
	}
	if in := New(Config{LinkStallPct: 0.5}); in == nil || in.Config().LinkStallCycles == 0 {
		t.Fatal("stall-rate-only Config should enable with default cycles")
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{
		Seed: 7, WirelessBER: 0.2,
		LinkStallPct: 0.1, LinkDropPct: 0.05,
		DirDelayPct: 0.15,
	}
	a, b := drawAll(New(cfg)), drawAll(New(cfg))
	if a != b {
		t.Fatal("same (Config, seed) produced different fault schedules")
	}
	other := cfg
	other.Seed = 8
	if drawAll(New(other)) == a {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestStreamsIndependent asserts the per-class stream split: enabling
// the directory-delay class must not shift the wireless draws.
func TestStreamsIndependent(t *testing.T) {
	base := Config{Seed: 11, WirelessBER: 0.3}
	with := base
	with.DirDelayPct = 0.5

	a, b := New(base), New(with)
	for i := 0; i < 2000; i++ {
		if a.CorruptTx() != b.CorruptTx() {
			t.Fatalf("wireless draw %d diverged when the dir class was enabled", i)
		}
		b.DirDelay() // consume the other stream in between
	}
}

func TestLinkSetFiltersDraws(t *testing.T) {
	cfg := Config{Seed: 3, LinkStallPct: 1.0, Links: []Link{{Src: 0, Dst: 1}}}
	in := New(cfg)
	if d := in.LinkDelay(2, 3); d != 0 {
		t.Fatalf("unafflicted link delayed by %d", d)
	}
	if d := in.LinkDelay(0, 1); d == 0 {
		t.Fatal("afflicted link with 100% stall rate not delayed")
	}
	if got := in.Stats.LinkStalls.Value(); got != 1 {
		t.Fatalf("LinkStalls = %d, want 1", got)
	}

	// Unafflicted traffic must not consume draws: interleaving it
	// cannot change the afflicted link's schedule.
	x, y := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		y.LinkDelay(5, 6) // no draw consumed
		if x.LinkDelay(0, 1) != y.LinkDelay(0, 1) {
			t.Fatalf("draw %d: unafflicted traffic shifted the afflicted schedule", i)
		}
	}
}

func TestCorruptionRateRoughlyBER(t *testing.T) {
	in := New(Config{Seed: 5, WirelessBER: 0.25})
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.CorruptTx() {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("corruption rate %.3f, want ~0.25", got)
	}
	if in.Stats.WirelessCorruptions.Value() != uint64(hits) {
		t.Fatal("corruption counter disagrees with draws")
	}
}

func TestParseLinks(t *testing.T) {
	ls, err := ParseLinks(" 0-1, 12-3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 || ls[0] != (Link{0, 1}) || ls[1] != (Link{12, 3}) {
		t.Fatalf("ParseLinks = %v", ls)
	}
	if ls, err := ParseLinks(""); err != nil || ls != nil {
		t.Fatalf("empty spec = %v, %v", ls, err)
	}
	for _, bad := range []string{"x", "1:2", "1-", "-1-2"} {
		if _, err := ParseLinks(bad); err == nil {
			t.Errorf("ParseLinks(%q) accepted", bad)
		}
	}
}

func TestDescribe(t *testing.T) {
	in := New(Config{WirelessBER: 1e-3, LinkStallPct: 0.1, Links: []Link{{1, 0}}})
	d := in.Describe()
	for _, want := range []string{"BER 0.001", "link stall", "links 1-0"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q missing %q", d, want)
		}
	}
}
