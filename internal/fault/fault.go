// Package fault is the simulator's deterministic fault-injection
// layer. The paper's WNoC is viable because collisions are detected
// and retried and the channel bit-error rate is negligible (§III,
// Table III); this package lets a run relax those assumptions on
// purpose — corrupting wireless transfers with a modeled BER, stalling
// or dropping flits on selected wired-mesh links, and delaying
// directory responses — so the protocol's recovery paths (wireless
// retry with backoff, W→S degradation, typed protocol errors) can be
// exercised systematically.
//
// Determinism contract (DESIGN.md §12): every fault decision is drawn
// from seeded internal/xrand streams, one independent stream per fault
// class, consumed in the simulator's single-threaded cycle order. Two
// runs with the same (machine config, workload, fault Config) are
// bit-identical, faults included, so any faulty run can be replayed
// exactly from its seeds. Enabling one fault class never perturbs the
// draws of another.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// Link names one directed wired-mesh link by its endpoint nodes. Fault
// configuration uses route endpoints (packet src/dst), which is how
// the experiment recipes describe an afflicted path.
type Link struct {
	Src int
	Dst int
}

// String renders the link as "src-dst" (the -fault-links syntax).
func (l Link) String() string { return fmt.Sprintf("%d-%d", l.Src, l.Dst) }

// Config declares the faults to inject. The zero value injects
// nothing. All probabilities are per-event (per wireless transmission,
// per routed packet, per directory request).
type Config struct {
	// Seed seeds the fault streams. Zero derives a default from a
	// fixed constant so that a Config carrying only a BER is already
	// fully specified; machines mix their own seed in via New's caller
	// contract (machine.Config passes Seed explicitly).
	Seed uint64

	// WirelessBER is the probability that one wireless data-channel
	// transmission is corrupted in flight (CRC failure at every
	// receiver: the packet is lost, nobody merges it, and the sender's
	// collision/ack logic observes the failure and retries).
	WirelessBER float64

	// LinkStallPct is the probability that a packet routed over an
	// afflicted link (see Links) is stalled by LinkStallCycles —
	// modeling transient congestion or a link-level CRC retry.
	LinkStallPct    float64
	LinkStallCycles uint64

	// LinkDropPct is the probability that a packet routed over an
	// afflicted link is dropped and recovered by link-level
	// retransmission, costing LinkDropCycles. Coherence messages are
	// never lost end-to-end (the wired protocol has no retransmit
	// layer); a drop is a long, bounded delay.
	LinkDropPct    float64
	LinkDropCycles uint64

	// Links selects the afflicted links by route endpoints. Empty
	// means every link is afflicted (when a stall/drop rate is set).
	Links []Link

	// DirDelayPct is the probability that one directory request
	// (GetS/GetX) pays DirDelayCycles of extra LLC access latency —
	// modeling tag-bank contention or a busy slice.
	DirDelayPct    float64
	DirDelayCycles uint64
}

// Enabled reports whether the configuration injects any fault at all.
// A positive rate is sufficient: the cycle budgets take their defaults
// in New when left zero.
func (c Config) Enabled() bool {
	return c.WirelessBER > 0 || c.LinkStallPct > 0 || c.LinkDropPct > 0 || c.DirDelayPct > 0
}

// fill applies the defaults for secondary knobs so a Config that only
// names a rate is usable as-is.
func (c Config) fill() Config {
	if c.Seed == 0 {
		c.Seed = 0x5DEECE66D // any fixed nonzero constant
	}
	if c.LinkStallCycles == 0 {
		c.LinkStallCycles = 16
	}
	if c.LinkDropCycles == 0 {
		c.LinkDropCycles = 64
	}
	if c.DirDelayCycles == 0 {
		c.DirDelayCycles = 24
	}
	return c
}

// ParseLinks parses a comma-separated "src-dst,src-dst" list (the
// -fault-links flag syntax) into Links.
func ParseLinks(s string) ([]Link, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Link
	for _, part := range strings.Split(s, ",") {
		var l Link
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d-%d", &l.Src, &l.Dst); err != nil {
			return nil, fmt.Errorf("fault: bad link %q (want \"src-dst\")", part)
		}
		if l.Src < 0 || l.Dst < 0 {
			return nil, fmt.Errorf("fault: negative node in link %q", part)
		}
		out = append(out, l)
	}
	return out, nil
}

// Stats counts the faults an Injector actually injected.
type Stats struct {
	WirelessCorruptions stats.Counter // transmissions corrupted
	LinkStalls          stats.Counter // packets stalled
	LinkDrops           stats.Counter // packets dropped+retransmitted
	DirDelays           stats.Counter // directory requests delayed
}

// Injector draws fault decisions for one machine. It is not safe for
// concurrent use; the machine calls it from its single-threaded cycle
// loop, which is also what makes the draw order — and therefore the
// whole faulty run — deterministic.
type Injector struct {
	cfg Config

	// One independent stream per fault class: enabling or re-rating
	// one class never shifts another's draw sequence.
	wireless *xrand.Source
	mesh     *xrand.Source
	dir      *xrand.Source

	// linkSet holds the afflicted links; nil means all links.
	linkSet map[Link]bool

	Stats Stats
}

// New builds an injector for the configuration, or nil when the
// configuration injects nothing — callers can test and skip the whole
// layer with one nil check.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.fill()
	in := &Injector{
		cfg: cfg,
		// Distinct mixing constants per class; derived from the one
		// seed so (Config, seed) fully keys the fault schedule.
		wireless: xrand.New(cfg.Seed ^ 0x77697265).Split(), // "wire"
		mesh:     xrand.New(cfg.Seed ^ 0x6d657368).Split(), // "mesh"
		dir:      xrand.New(cfg.Seed ^ 0x00646972).Split(), // "dir"
	}
	if len(cfg.Links) > 0 {
		in.linkSet = make(map[Link]bool, len(cfg.Links))
		for _, l := range cfg.Links {
			in.linkSet[l] = true
		}
	}
	return in
}

// Config returns the (filled) configuration the injector runs.
func (in *Injector) Config() Config { return in.cfg }

// CorruptTx draws whether one wireless transmission is corrupted. One
// draw per completed transmission, in channel completion order.
func (in *Injector) CorruptTx() bool {
	if in.cfg.WirelessBER <= 0 {
		return false
	}
	if !in.wireless.Bool(in.cfg.WirelessBER) {
		return false
	}
	in.Stats.WirelessCorruptions.Inc()
	return true
}

// LinkDelay draws the extra delay for one packet routed from src to
// dst: 0 for a clean traversal, LinkStallCycles for a stall, or
// LinkDropCycles for a drop recovered by link-level retransmission.
// Only afflicted links consume draws, so narrowing Links never shifts
// the schedule of the links that remain.
func (in *Injector) LinkDelay(src, dst int) uint64 {
	if in.cfg.LinkStallPct <= 0 && in.cfg.LinkDropPct <= 0 {
		return 0
	}
	if in.linkSet != nil && !in.linkSet[Link{Src: src, Dst: dst}] {
		return 0
	}
	u := in.mesh.Float64()
	if u < in.cfg.LinkDropPct {
		in.Stats.LinkDrops.Inc()
		return in.cfg.LinkDropCycles
	}
	if u < in.cfg.LinkDropPct+in.cfg.LinkStallPct {
		in.Stats.LinkStalls.Inc()
		return in.cfg.LinkStallCycles
	}
	return 0
}

// DirDelay draws the extra LLC latency for one directory request.
func (in *Injector) DirDelay() uint64 {
	if in.cfg.DirDelayPct <= 0 {
		return 0
	}
	if !in.dir.Bool(in.cfg.DirDelayPct) {
		return 0
	}
	in.Stats.DirDelays.Inc()
	return in.cfg.DirDelayCycles
}

// Describe renders the active fault classes for logs and experiment
// headers, in a fixed order.
func (in *Injector) Describe() string {
	var parts []string
	c := in.cfg
	if c.WirelessBER > 0 {
		parts = append(parts, fmt.Sprintf("wireless BER %g", c.WirelessBER))
	}
	if c.LinkStallPct > 0 {
		parts = append(parts, fmt.Sprintf("link stall %g%%/%dcy", 100*c.LinkStallPct, c.LinkStallCycles))
	}
	if c.LinkDropPct > 0 {
		parts = append(parts, fmt.Sprintf("link drop %g%%/%dcy", 100*c.LinkDropPct, c.LinkDropCycles))
	}
	if c.DirDelayPct > 0 {
		parts = append(parts, fmt.Sprintf("dir delay %g%%/%dcy", 100*c.DirDelayPct, c.DirDelayCycles))
	}
	if len(c.Links) > 0 {
		ls := make([]string, len(c.Links))
		for i, l := range c.Links {
			ls[i] = l.String()
		}
		sort.Strings(ls)
		parts = append(parts, "links "+strings.Join(ls, ","))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "; ")
}
