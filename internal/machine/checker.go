package machine

import (
	"fmt"
	"sort"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/coherence"
)

// Checker validates the protocol invariants of DESIGN.md §5.5 during a
// run: the single-writer/multiple-reader property, W-state consistency
// between directory and caches, and per-word value coherence (every
// load observes a serialized write, per-core observations of a word are
// version-monotonic, and a writer reads its own writes).
//
// The value checker records the full serialized write history per word,
// so it is intended for test-sized workloads.
type Checker struct {
	sys *System

	// history[word] is the serialized sequence of values written.
	history map[addrspace.Addr][]uint64
	// observed[coreWord] is the highest version the core has seen.
	observed map[coreWord]int

	err error
}

type coreWord struct {
	core int
	addr addrspace.Addr
}

// NewChecker attaches a checker to the system.
func NewChecker(sys *System) *Checker {
	return &Checker{
		sys:      sys,
		history:  make(map[addrspace.Addr][]uint64),
		observed: make(map[coreWord]int),
	}
}

// Err returns the first violation found by the value hooks, if any.
func (c *Checker) Err() error { return c.err }

// SerializedWrite records a write at its serialization point.
func (c *Checker) SerializedWrite(now uint64, a addrspace.Addr, v uint64) {
	c.history[a] = append(c.history[a], v)
}

// ObservedRead validates a load's value against the write history.
func (c *Checker) ObservedRead(now uint64, core int, a addrspace.Addr, v uint64) {
	if c.err != nil {
		return
	}
	h := c.history[a]
	key := coreWord{core, a}
	last := c.observed[key] // 0 = initial value (version 0 = pre-write zero)
	// Version numbering: version 0 is the initial (zero) value; version
	// i>0 is h[i-1]. Find the newest version with the observed value at
	// or after the core's last observation.
	for ver := len(h); ver >= last; ver-- {
		var val uint64
		if ver > 0 {
			val = h[ver-1]
		}
		if val == v {
			c.observed[key] = ver
			return
		}
	}
	c.err = fmt.Errorf("machine: value coherence violated at cycle %d: core %d read %#x=%d, not any version >= %d (history %v)",
		now, core, a, v, last, trim(h))
}

func trim(h []uint64) []uint64 {
	if len(h) > 16 {
		return h[len(h)-16:]
	}
	return h
}

// CheckStructural validates SWMR and the directory/cache agreement for
// every line currently tracked by any directory slice. It is safe to
// call mid-run: busy (transient) entries are skipped, since their
// caches and directory are mid-handshake by design.
func (c *Checker) CheckStructural() error {
	s := c.sys
	// Gather cache states per line.
	type holders struct {
		owners   []int // E or M
		shared   []int
		wireless []int
	}
	lines := make(map[addrspace.Line]*holders)
	for i, l1 := range s.l1s {
		l1.Cache().ForEach(func(ln *cache.Line) {
			h := lines[ln.Addr]
			if h == nil {
				h = &holders{}
				lines[ln.Addr] = h
			}
			switch ln.State {
			case cache.Exclusive, cache.Modified:
				h.owners = append(h.owners, i)
			case cache.Shared:
				h.shared = append(h.shared, i)
			case cache.Wireless:
				h.wireless = append(h.wireless, i)
			default:
				// ForEach visits valid lines only; Invalid never appears.
			}
		})
	}
	// Check lines in ascending order so that when several lines violate
	// an invariant at once, every run reports the same one first.
	sorted := make([]addrspace.Line, 0, len(lines))
	//lint:deterministic key collection feeds the sort below
	for line := range lines {
		sorted = append(sorted, line)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, line := range sorted {
		h := lines[line]
		if len(h.owners) > 1 {
			return fmt.Errorf("machine: SWMR violated: line %#x owned by cores %v", line, h.owners)
		}
		if len(h.owners) == 1 && (len(h.shared) > 0 || len(h.wireless) > 0) {
			return fmt.Errorf("machine: SWMR violated: line %#x owned by %d with copies S=%v W=%v",
				line, h.owners[0], h.shared, h.wireless)
		}
		if len(h.wireless) > 0 && len(h.shared) > 0 {
			// Transient during S->W/W->S handshakes; only flag when the
			// home is stable.
			home := s.homes[s.HomeOf(line)]
			if e := home.Entry(line); e != nil && !e.Busy() {
				return fmt.Errorf("machine: line %#x mixes W=%v and S=%v copies while home is stable (%v)",
					line, h.wireless, h.shared, e.State)
			}
		}
	}
	// Directory agreement.
	for _, home := range s.homes {
		var err error
		home.ForEachEntry(func(e *coherence.DirEntry) {
			if err != nil || e.Busy() {
				return
			}
			h := lines[e.Line]
			if h == nil {
				h = &holders{}
			}
			switch e.State {
			case coherence.DirOwned:
				// Two benign transients: the grant is still in flight
				// to the owner (it has a pending request), or the owner
				// just evicted (line in its victim buffer until PutAck).
				if s.l1s[e.Owner].PendingLine(e.Line) {
					return
				}
				if s.l1s[e.Owner].VictimHolds(e.Line) {
					if len(h.owners) != 0 {
						err = fmt.Errorf("machine: line %#x in victim buffer of owner %d but also cached by %v",
							e.Line, e.Owner, h.owners)
					}
					return
				}
				if len(h.owners) != 1 || h.owners[0] != e.Owner {
					err = fmt.Errorf("machine: dir %v owner=%d but caches hold owners=%v (line %#x)",
						e.State, e.Owner, h.owners, e.Line)
				}
			case coherence.DirInvalid:
				// Put notifications may still be in flight; a cache may
				// transiently hold a line the directory thinks is idle
				// only if its eviction notice is travelling. We cannot
				// distinguish that cheaply, so only owners are checked:
				// an owner with a DirInvalid entry and no in-flight
				// transaction is a real bug, but owners always notify,
				// so flag any owner at all only when the mesh is idle.
				if len(h.owners)+len(h.wireless) > 0 && s.net.Pending() == 0 && s.wchan.Idle() {
					err = fmt.Errorf("machine: dir DI but caches hold line %#x (owners=%v wireless=%v)",
						e.Line, h.owners, h.wireless)
				}
			case coherence.DirWireless:
				if len(h.owners) > 0 {
					err = fmt.Errorf("machine: dir DW but line %#x has owner %v", e.Line, h.owners)
				}
				if s.net.Pending() == 0 && s.wchan.Idle() && len(h.wireless) != e.SharerCount {
					err = fmt.Errorf("machine: dir DW SharerCount=%d but %d caches hold line %#x in W (quiescent)",
						e.SharerCount, len(h.wireless), e.Line)
				}
			case coherence.DirShared:
				if len(h.owners) > 0 {
					err = fmt.Errorf("machine: dir DS but line %#x has owner %v", e.Line, h.owners)
				}
				if !e.Broadcast && s.net.Pending() == 0 && s.wchan.Idle() {
					// Pointers must be a superset of actual S holders.
					for _, sh := range h.shared {
						if !containsInt(e.Sharers, sh) {
							err = fmt.Errorf("machine: dir DS pointers %v miss sharer %d of line %#x (quiescent)",
								e.Sharers, sh, e.Line)
							return
						}
					}
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
