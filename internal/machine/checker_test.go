package machine

import (
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/workload"
)

// newCheckedSystem builds an idle 16-core machine with the checker
// attached; tests then inject invalid states directly into the caches
// (the test hook) and assert the checker reports them.
func newCheckedSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig(16, coherence.WiDir)
	cfg.EnableChecker = true
	prof, ok := workload.ByName("fmm")
	if !ok {
		t.Fatal("unknown app fmm")
	}
	sys, err := NewSystem(cfg, workload.Program(prof.Scale(0.01), cfg.Nodes, 1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCheckerReportsDualOwners injects the canonical SWMR violation —
// two caches holding the same line in Modified — and asserts the
// structural checker reports it with the offending line and cores.
func TestCheckerReportsDualOwners(t *testing.T) {
	sys := newCheckedSystem(t)
	line := addrspace.Line(0x4b)
	var words [addrspace.WordsPerLine]uint64
	sys.L1(2).Cache().Install(line, cache.Modified, words)
	sys.L1(7).Cache().Install(line, cache.Modified, words)
	err := sys.checker.CheckStructural()
	if err == nil {
		t.Fatal("checker accepted two Modified owners of one line")
	}
	for _, want := range []string{"SWMR violated", "0x4b", "2", "7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

// TestCheckerReportsOwnerPlusSharer covers the second SWMR branch: an
// exclusive owner coexisting with a read-only copy.
func TestCheckerReportsOwnerPlusSharer(t *testing.T) {
	sys := newCheckedSystem(t)
	line := addrspace.Line(0x80)
	var words [addrspace.WordsPerLine]uint64
	sys.L1(0).Cache().Install(line, cache.Exclusive, words)
	sys.L1(5).Cache().Install(line, cache.Shared, words)
	err := sys.checker.CheckStructural()
	if err == nil {
		t.Fatal("checker accepted an owner coexisting with a sharer")
	}
	for _, want := range []string{"SWMR violated", "0x80", "owned by 0", "[5]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

// TestCheckerReportsVersionRegression drives the value-coherence hooks
// directly: after a core observes version 2 of a word, re-observing
// version 1 must be flagged as a monotonicity violation naming the
// core and address.
func TestCheckerReportsVersionRegression(t *testing.T) {
	sys := newCheckedSystem(t)
	ch := sys.checker
	addr := addrspace.Addr(0x1238)
	ch.SerializedWrite(10, addr, 111)
	ch.SerializedWrite(20, addr, 222)
	ch.ObservedRead(30, 3, addr, 222) // core 3 advances to version 2
	if err := ch.Err(); err != nil {
		t.Fatalf("valid observation flagged: %v", err)
	}
	ch.ObservedRead(40, 3, addr, 111) // stale re-read: version went backward
	err := ch.Err()
	if err == nil {
		t.Fatal("checker accepted a backward version observation")
	}
	for _, want := range []string{"value coherence violated", "core 3", "0x1238", "cycle 40"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	// The checker latches the first violation; later valid reads must
	// not clear it.
	ch.ObservedRead(50, 3, addr, 222)
	if ch.Err() == nil || !strings.Contains(ch.Err().Error(), "cycle 40") {
		t.Error("first violation was not latched")
	}
}

// TestCheckerReportsUnserializedValue asserts a load of a value that
// was never written is rejected (the other failure mode of the value
// checker: a phantom write).
func TestCheckerReportsUnserializedValue(t *testing.T) {
	sys := newCheckedSystem(t)
	ch := sys.checker
	addr := addrspace.Addr(0x2000)
	ch.SerializedWrite(10, addr, 7)
	ch.ObservedRead(20, 1, addr, 99)
	if err := ch.Err(); err == nil {
		t.Fatal("checker accepted a value with no serialized write")
	} else if !strings.Contains(err.Error(), "core 1") {
		t.Errorf("error %q does not name the offending core", err)
	}
}

// TestCheckerAcceptsLegalStates is the negative control: a line shared
// by several caches in S, and another solely owned in M, are legal.
func TestCheckerAcceptsLegalStates(t *testing.T) {
	sys := newCheckedSystem(t)
	var words [addrspace.WordsPerLine]uint64
	sys.L1(1).Cache().Install(addrspace.Line(0x10), cache.Shared, words)
	sys.L1(2).Cache().Install(addrspace.Line(0x10), cache.Shared, words)
	sys.L1(3).Cache().Install(addrspace.Line(0x11), cache.Modified, words)
	if err := sys.checker.CheckStructural(); err != nil {
		t.Fatalf("legal cache states rejected: %v", err)
	}
}
