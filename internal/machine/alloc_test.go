package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// TestSteadyStateCycleAllocBudget pins the per-cycle allocation
// budget of the warm cycle loop. The hot path pools every
// steady-state object — event-queue nodes, mesh packets, MemRequests,
// L1 completions and pending entries, directory entries — so the only
// remaining allocations are the coherence Msg constructions in the
// protocol controllers (a handful per cycle on a busy machine, and
// deliberately not pooled: a NACKed response can be retained across
// an asynchronous NIC-wait retry, so recycling them would need
// reference counting for a ~1 alloc/cycle return). The budget is the
// benchmark-measured steady state plus slack for step-to-step
// variance; it exists to catch the hot path regressing to per-cycle
// map/closure/envelope churn, which shows up as tens of allocations
// per cycle.
func TestSteadyStateCycleAllocBudget(t *testing.T) {
	prof, ok := workload.ByName("barnes")
	if !ok {
		t.Fatal("unknown app barnes")
	}
	sys, err := NewSystem(DefaultConfig(16, coherence.WiDir), workload.Program(prof, 16, 11))
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(20_000) // warm every pool past its high-water mark
	const steps = 2_000
	avg := testing.AllocsPerRun(steps, func() { sys.Step(1) })
	if avg > 3.5 {
		t.Errorf("steady-state cycle loop allocates %.2f objects/cycle, budget 3.5", avg)
	}
}
