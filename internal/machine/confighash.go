// Canonical configuration hashing. The simulation-farm service
// (internal/serve) keys its persistent run cache by a deterministic
// hash of the machine configuration; two processes — or two releases —
// that build the same Config must derive the same key, and any change
// to a semantically meaningful field must change it. That rules out
// reflection- or JSON-based hashing (field tags, float formatting and
// struct evolution would all shift bytes silently), so the encoder
// below names every field explicitly. TestConfigCanonicalCoversAllFields
// walks the Config type with reflection and fails the build when a new
// field is added without either a canon.field call or an entry in
// canonicalExcludedFields — a cache key can never silently alias two
// configurations that differ in a field the encoder forgot.
package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// canonicalExcludedFields are the Config field paths deliberately NOT
// part of the canonical encoding: runtime observability hooks that are
// proven (internal/obs golden-fingerprint tests) not to perturb
// results, so two runs differing only in attached sinks are the same
// cached run. Everything else must be encoded.
//
//vet:local constant exclusion table, never written after initialization
var canonicalExcludedFields = map[string]string{
	"Trace":      "observer sink; tracing does not perturb results (DESIGN.md §11)",
	"LineLog":    "observer sink; line logging does not perturb results",
	"Core.Trace": "observer sink on the core config",
}

// canon accumulates "path=value" lines and remembers which field paths
// were consumed, for the coverage guard test.
type canon struct {
	b     strings.Builder
	paths []string
}

func (c *canon) field(path, value string) {
	c.paths = append(c.paths, path)
	c.b.WriteString(path)
	c.b.WriteByte('=')
	c.b.WriteString(value)
	c.b.WriteByte('\n')
}

func itoa(v int) string     { return strconv.Itoa(v) }
func utoa(v uint64) string  { return strconv.FormatUint(v, 10) }
func btoa(v bool) string    { return strconv.FormatBool(v) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendCanonical writes every hashed field of the (already filled)
// config. Field paths mirror the Go field names so the guard test can
// match them against reflection.
func appendCanonical(e *canon, c *Config) {
	e.field("Nodes", itoa(c.Nodes))
	e.field("MeshW", itoa(c.MeshW))
	e.field("MeshH", itoa(c.MeshH))
	e.field("Protocol", itoa(int(c.Protocol)))

	e.field("Core.IssueWidth", itoa(c.Core.IssueWidth))
	e.field("Core.ROBSize", itoa(c.Core.ROBSize))
	e.field("Core.LoadQueue", itoa(c.Core.LoadQueue))
	e.field("Core.WriteBuffer", itoa(c.Core.WriteBuffer))

	e.field("L1SizeBytes", itoa(c.L1SizeBytes))
	e.field("L1Ways", itoa(c.L1Ways))
	e.field("L1Latency", utoa(c.L1Latency))
	e.field("UpdateCountMax", itoa(c.UpdateCountMax))

	e.field("LLCEntriesPerSlice", itoa(c.LLCEntriesPerSlice))
	e.field("LLCLatency", utoa(c.LLCLatency))
	e.field("MaxPointers", itoa(c.MaxPointers))
	e.field("MaxWiredSharers", itoa(c.MaxWiredSharers))
	e.field("DirScheme", itoa(int(c.DirScheme)))
	e.field("CoarseRegion", itoa(c.CoarseRegion))
	e.field("MAC", itoa(int(c.MAC)))
	e.field("FlitLevelNoC", btoa(c.FlitLevelNoC))
	e.field("NoCBufDepth", itoa(c.NoCBufDepth))
	e.field("MessageJitter", itoa(c.MessageJitter))

	e.field("MemControllers", itoa(c.MemControllers))
	e.field("MemLatency", utoa(c.MemLatency))
	e.field("MemServiceInterval", utoa(c.MemServiceInterval))

	e.field("RetryDelay", utoa(c.RetryDelay))
	e.field("Seed", utoa(c.Seed))
	e.field("MaxCycles", utoa(c.MaxCycles))

	e.field("Fault.Seed", utoa(c.Fault.Seed))
	e.field("Fault.WirelessBER", ftoa(c.Fault.WirelessBER))
	e.field("Fault.LinkStallPct", ftoa(c.Fault.LinkStallPct))
	e.field("Fault.LinkStallCycles", utoa(c.Fault.LinkStallCycles))
	e.field("Fault.LinkDropPct", ftoa(c.Fault.LinkDropPct))
	e.field("Fault.LinkDropCycles", utoa(c.Fault.LinkDropCycles))
	links := make([]string, len(c.Fault.Links))
	for i, l := range c.Fault.Links {
		links[i] = l.String()
	}
	e.field("Fault.Links", strings.Join(links, ","))
	e.field("Fault.DirDelayPct", ftoa(c.Fault.DirDelayPct))
	e.field("Fault.DirDelayCycles", utoa(c.Fault.DirDelayCycles))

	e.field("TxnAgeLimit", utoa(c.TxnAgeLimit))
	e.field("NoFastForward", btoa(c.NoFastForward))
	e.field("EnableChecker", btoa(c.EnableChecker))
}

// Normalized returns the configuration with every defaulted field
// filled in, exactly as NewSystem would resolve it. Hashing always
// operates on the normalized form, so DefaultConfig(64, p) and its
// filled equivalent are the same cached machine.
func (c Config) Normalized() (Config, error) {
	if err := c.fill(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// CanonicalString renders the normalized configuration as one
// "field=value" line per hashed field, in fixed order. It is the hash
// preimage and a human-readable description of what keys a cache
// entry.
func (c Config) CanonicalString() (string, error) {
	n, err := c.Normalized()
	if err != nil {
		return "", err
	}
	var e canon
	appendCanonical(&e, &n)
	return e.b.String(), nil
}

// ConfigHash returns the canonical configuration hash: the hex SHA-256
// of CanonicalString. It is the machine component of the simulation
// farm's content-addressed cache key.
func (c Config) ConfigHash() (string, error) {
	s, err := c.CanonicalString()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// canonicalFieldPaths returns every field path the canonical encoder
// consumes, for the reflection coverage guard.
func canonicalFieldPaths() []string {
	var e canon
	var c Config
	appendCanonical(&e, &c)
	return e.paths
}

// MustConfigHash is ConfigHash for configurations already known valid
// (panics otherwise); a convenience for callers holding a config that
// built a System.
func (c Config) MustConfigHash() string {
	h, err := c.ConfigHash()
	if err != nil {
		panic(fmt.Sprintf("machine: MustConfigHash on invalid config: %v", err))
	}
	return h
}
