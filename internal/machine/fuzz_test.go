package machine

import (
	"os"
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/xrand"
)

// randSource emits a random mix of loads, stores and RMWs over a tiny,
// highly contended line set — an adversarial workload for the protocol.
// Every run executes with the value-coherence and structural checkers
// armed, so any serialization or invalidation bug fails loudly.
type randSource struct {
	rng      *xrand.Source
	core     int
	lines    int
	left     int
	spinWait bool
}

func (r *randSource) Next(prev uint64, prevValid bool) (cpu.Instr, bool) {
	if r.left <= 0 {
		return cpu.Instr{}, false
	}
	r.left--
	line := addrspace.Line(4 + r.rng.Intn(r.lines))
	a := line.Base() + addrspace.Addr(r.rng.Intn(addrspace.WordsPerLine))*addrspace.WordSize
	switch r.rng.Intn(10) {
	case 0, 1, 2:
		return cpu.Instr{Kind: cpu.KStore, Addr: a, Value: r.rng.Uint64()}, true
	case 3:
		return cpu.Instr{Kind: cpu.KRMW, RMW: coherence.RMWFetchAdd, Addr: a, Value: 1, WantResult: true}, true
	case 4:
		return cpu.Instr{Kind: cpu.KRMW, RMW: coherence.RMWCompareSwap, Addr: a, Expected: 0, Value: r.rng.Uint64() | 1, WantResult: true}, true
	case 5:
		return cpu.Instr{Kind: cpu.KCompute, N: 1 + r.rng.Intn(8)}, true
	default:
		return cpu.Instr{Kind: cpu.KLoad, Addr: a, WantResult: r.rng.Bool(0.3)}, true
	}
}

func runFuzz(t *testing.T, seed uint64, nodes, lines, ops int, p coherence.Protocol) {
	t.Helper()
	cfg := DefaultConfig(nodes, p)
	cfg.EnableChecker = true
	cfg.MaxCycles = 20_000_000
	// A small LLC keeps directory evictions (W->I, recalls) in play.
	cfg.LLCEntriesPerSlice = 8
	master := xrand.New(seed)
	srcs := make([]cpu.InstrSource, nodes)
	for i := range srcs {
		srcs[i] = &randSource{rng: master.Split(), core: i, lines: lines, left: ops}
	}
	sys, err := NewSystem(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("seed %d, %d nodes, %d lines, %v: %v", seed, nodes, lines, p, err)
	}
}

// TestFuzzContendedLines is the quick-check driver: random seeds and
// shapes, both protocols, checkers armed.
func TestFuzzContendedLines(t *testing.T) {
	cfgs := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfgs.MaxCount = 3
	}
	if err := quick.Check(func(seed uint64, shape uint8) bool {
		nodes := []int{4, 8, 16}[shape%3]
		lines := 1 + int(shape/3)%4
		runFuzz(t, seed, nodes, lines, 150, coherence.WiDir)
		runFuzz(t, seed, nodes, lines, 150, coherence.Baseline)
		return true
	}, cfgs); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSingleLine hammers one line from every core — the maximum
// contention case where every WiDir transition (S->W, W->W add-sharer,
// decay, W->S, W->I via tiny LLC) fires constantly.
func TestFuzzSingleLine(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		runFuzz(t, seed, 16, 1, 250, coherence.WiDir)
	}
}

// TestFuzzLongRun is one extended adversarial run per protocol.
func TestFuzzLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	runFuzz(t, 99, 16, 3, 1500, coherence.WiDir)
	runFuzz(t, 99, 16, 3, 1500, coherence.Baseline)
}

// TestFuzzWithMessageJitter re-runs the contended fuzz under randomized
// wired-message delays: protocol correctness must hold for any delivery
// schedule that preserves the per-pair FIFO property.
func TestFuzzWithMessageJitter(t *testing.T) {
	count := 10
	if testing.Short() {
		count = 3
	}
	for i := 0; i < count; i++ {
		seed := uint64(1000 + i*17)
		cfg := DefaultConfig(8, coherence.WiDir)
		cfg.EnableChecker = true
		cfg.MaxCycles = 20_000_000
		cfg.LLCEntriesPerSlice = 8
		cfg.MessageJitter = 5 + i*7
		master := xrand.New(seed)
		srcs := make([]cpu.InstrSource, 8)
		for j := range srcs {
			srcs[j] = &randSource{rng: master.Split(), core: j, lines: 2, left: 200}
		}
		sys, err := NewSystem(cfg, srcs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("jitter=%d seed=%d: %v", cfg.MessageJitter, seed, err)
		}
	}
}

// TestFuzzSoak is a deep randomized soak (hundreds of checked runs
// across shapes, jitters and protocols). It only runs when WIDIR_SOAK
// is set, since it takes minutes.
func TestFuzzSoak(t *testing.T) {
	if os.Getenv("WIDIR_SOAK") == "" {
		t.Skip("set WIDIR_SOAK=1 to run the deep soak")
	}
	master := xrand.New(0x50AC)
	for i := 0; i < 150; i++ {
		seed := master.Uint64()
		nodes := []int{4, 8, 16}[master.Intn(3)]
		lines := 1 + master.Intn(4)
		jitter := master.Intn(12)
		for _, p := range []coherence.Protocol{coherence.WiDir, coherence.Baseline} {
			cfg := DefaultConfig(nodes, p)
			cfg.EnableChecker = true
			cfg.MaxCycles = 20_000_000
			cfg.LLCEntriesPerSlice = 4 + master.Intn(8)
			cfg.MessageJitter = jitter
			rng := xrand.New(seed)
			srcs := make([]cpu.InstrSource, nodes)
			for j := range srcs {
				srcs[j] = &randSource{rng: rng.Split(), core: j, lines: lines, left: 250}
			}
			sys, err := NewSystem(cfg, srcs)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatalf("soak %d: seed=%d nodes=%d lines=%d jitter=%d %v: %v",
					i, seed, nodes, lines, jitter, p, err)
			}
		}
	}
}
