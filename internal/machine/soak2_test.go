package machine

import (
	"os"
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// TestDeepCheckedApps runs every application with the full checkers at
// moderate scale under both protocols — the heaviest end-to-end
// validation. Opt-in via WIDIR_SOAK.
func TestDeepCheckedApps(t *testing.T) {
	if os.Getenv("WIDIR_SOAK") == "" {
		t.Skip("set WIDIR_SOAK=1")
	}
	for _, prof := range workload.Apps() {
		for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
			for _, seed := range []uint64{1, 5} {
				cfg := DefaultConfig(16, p)
				cfg.EnableChecker = true
				cfg.MaxCycles = 100_000_000
				sys, err := NewSystem(cfg, workload.Program(prof.Scale(0.25), 16, seed))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(); err != nil {
					t.Fatalf("%s/%v/seed%d: %v", prof.Name, p, seed, err)
				}
			}
		}
	}
}
