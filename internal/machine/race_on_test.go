//go:build race

package machine

// raceEnabled reports whether the race detector instruments this
// build; the allocation-census test skips under it because the race
// runtime's own bookkeeping allocates nondeterministically.
const raceEnabled = true
