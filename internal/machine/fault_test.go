package machine

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/workload"
)

// faultyConfig is the reference fault schedule the determinism and
// sweep tests share: every fault class active at a rate high enough to
// fire many times in a short run.
func faultyConfig() fault.Config {
	return fault.Config{
		Seed:         11,
		WirelessBER:  0.10,
		LinkStallPct: 0.02,
		DirDelayPct:  0.02,
	}
}

func runFaulty(t *testing.T, fcfg fault.Config, seed uint64) (*Result, string) {
	t.Helper()
	prof, ok := workload.ByName("fmm")
	if !ok {
		t.Fatal("unknown app fmm")
	}
	prof = prof.Scale(0.08)
	cfg := DefaultConfig(16, coherence.WiDir)
	cfg.MaxCycles = 100_000_000
	cfg.LLCEntriesPerSlice = 8
	cfg.EnableChecker = true
	cfg.Fault = fcfg
	sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, sys.Memory().Dump()
}

// TestFaultRunsByteIdentical extends the determinism contract to
// faulty runs: the same (machine config, workload, fault config) must
// replay the same faults and produce byte-identical stats and memory.
func TestFaultRunsByteIdentical(t *testing.T) {
	r1, m1 := runFaulty(t, faultyConfig(), 5)
	r2, m2 := runFaulty(t, faultyConfig(), 5)
	s1, s2 := fmt.Sprintf("%+v", r1), fmt.Sprintf("%+v", r2)
	if s1 != s2 {
		t.Errorf("stats differ between identical faulty runs:\nrun1: %.400s\nrun2: %.400s", s1, s2)
	}
	if m1 != m2 {
		t.Error("memory image dumps differ between identical faulty runs")
	}
	if r1.WirelessCorrupted == 0 || r1.LinkFaultDelays == 0 || r1.DirFaultDelays == 0 {
		t.Errorf("fault classes did not all fire: corrupted=%d link=%d dir=%d",
			r1.WirelessCorrupted, r1.LinkFaultDelays, r1.DirFaultDelays)
	}
}

// TestFaultSweepStaysCoherent is the robustness acceptance test: under
// escalating wireless corruption the protocol must stay coherent (the
// value/SWMR checker runs throughout and Run fails on any violation)
// and visibly exercise its recovery paths.
func TestFaultSweepStaysCoherent(t *testing.T) {
	for _, ber := range []float64{0.05, 0.25, 0.5} {
		r, _ := runFaulty(t, fault.Config{Seed: 3, WirelessBER: ber}, 7)
		if r.WirelessCorrupted == 0 {
			t.Errorf("BER %g: no corrupted transmissions", ber)
		}
		if r.Retired == 0 {
			t.Errorf("BER %g: no instructions retired", ber)
		}
		if ber >= 0.5 && r.FaultDemotions == 0 {
			t.Errorf("BER %g: hostile channel never forced a W->S demotion", ber)
		}
		t.Logf("BER %g: corrupted=%d txFailures=%d demotions=%d",
			ber, r.WirelessCorrupted, r.WirelessTxFailures, r.FaultDemotions)
	}
}

// stuckSystem builds a machine whose very first miss outlives the
// transaction age limit: memory is slower than the watchdog threshold.
func stuckSystem(t *testing.T) *System {
	t.Helper()
	prof, ok := workload.ByName("fmm")
	if !ok {
		t.Fatal("unknown app fmm")
	}
	prof = prof.Scale(0.05)
	cfg := DefaultConfig(4, coherence.WiDir)
	cfg.MemLatency = 300_000
	cfg.TxnAgeLimit = 100
	sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, 1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestStuckTxnSurfacesProtocolError: a transaction stuck past
// TxnAgeLimit must end the run with a typed *coherence.ProtocolError
// naming the line — not a panic, and not the blunt MaxCycles watchdog.
func TestStuckTxnSurfacesProtocolError(t *testing.T) {
	sys := stuckSystem(t)
	_, err := sys.Run()
	if err == nil {
		t.Fatal("run with a stuck transaction succeeded")
	}
	var pe *coherence.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a ProtocolError: %v", err)
	}
	if !strings.Contains(pe.Reason, "stuck") {
		t.Fatalf("reason %q does not say the transaction is stuck", pe.Reason)
	}
	if pe.Dump == "" {
		t.Fatal("protocol error carries no transaction dump")
	}
	if errors.Is(err, ErrWatchdog) {
		t.Fatal("stuck transaction fell through to the MaxCycles watchdog")
	}
}

// diagnoseOldestRE parses the Diagnose line the age watchdog and
// humans rely on; this is the format regression test.
var diagnoseOldestRE = regexp.MustCompile(
	`(?m)^oldest txn: (l1|home) (\d+) line=0x[0-9a-f]+ state=\S+ kind=\S+ started=(\d+) acksLeft=-?\d+ waiting=\[[^\]]*\] age=(\d+)$`)

func TestDiagnoseNamesOldestTxn(t *testing.T) {
	sys := stuckSystem(t)
	sys.Step(5_000)
	d := sys.Diagnose()
	m := diagnoseOldestRE.FindStringSubmatch(d)
	if m == nil {
		t.Fatalf("Diagnose output lacks a parsable oldest-txn line:\n%s", d)
	}
	var started, age uint64
	fmt.Sscan(m[3], &started)
	fmt.Sscan(m[4], &age)
	if started+age != sys.Cycle() {
		t.Errorf("started=%d + age=%d != now=%d", started, age, sys.Cycle())
	}
}
