package machine

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/workload"
)

// obsFingerprint condenses a Result into the byte-stable summary the
// pre-obs goldens below were captured from. It deliberately covers
// every counter family the instrumentation touches (cycle loop, L1,
// directory, wireless, mesh, memory, energy, miss latency): if adding
// a trace sink perturbed any of them, the hash moves.
func obsFingerprint(r *Result) string {
	return fmt.Sprintf("cycles=%d retired=%d l1miss=%d/%d wwr=%d stow=%d wtos=%d nacks=%d invs=%d mesh=%d mem=%d energy=%.6f misslat=%s",
		r.Cycles, r.Retired, r.L1LoadMisses, r.L1StoreMisses, r.WirelessWrites,
		r.SToW, r.WToS, r.NACKs, r.Invalidations, r.MeshPackets, r.MemAccesses,
		r.EnergyPJ, r.MissLatency)
}

// obsRun executes the determinism-suite workload (fmm at scale 0.08 on
// 16 cores, seed 5, small directory) with the given sink attached.
func obsRun(t testing.TB, p coherence.Protocol, sink obs.Sink) (*Result, string) {
	prof, ok := workload.ByName("fmm")
	if !ok {
		t.Fatal("unknown app fmm")
	}
	prof = prof.Scale(0.08)
	cfg := DefaultConfig(16, p)
	cfg.MaxCycles = 100_000_000
	cfg.LLCEntriesPerSlice = 8
	cfg.Trace = sink
	sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, 5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, sys.Memory().Dump()
}

// Golden hashes captured on the commit immediately before the obs
// subsystem landed (same workload, no Trace field in the config).
// They pin two properties at once: the simulator still computes
// exactly what it did before instrumentation, and a run with tracing
// enabled computes the same thing as a run without.
const (
	goldenBaseStats  = "fc67910302ac83a2e4fdad7aedab9e9ba22e979663481ec06d354ca499660ba8"
	goldenBaseMem    = "ef5597bcbf9999a41c1c7751a3c6887f6d23460f4fcbfdf950e4a0205dc45f7f"
	goldenWiDirStats = "d99e04cf88d03b684bca25b5128a6d827a3f75a0cdb5c709416456e387bc869c"
	goldenWiDirMem   = "d5c45f9d5512e88d4a0e07e5179d2cadef5804d1564fb7315db41d2d87724483"
)

func TestTracingOffMatchesPreObsGolden(t *testing.T) {
	for _, tc := range []struct {
		p          coherence.Protocol
		stats, mem string
	}{
		{coherence.Baseline, goldenBaseStats, goldenBaseMem},
		{coherence.WiDir, goldenWiDirStats, goldenWiDirMem},
	} {
		r, mem := obsRun(t, tc.p, nil)
		if got := fmt.Sprintf("%x", sha256.Sum256([]byte(obsFingerprint(r)))); got != tc.stats {
			t.Errorf("%v: stats fingerprint drifted from pre-obs golden:\n got  %s\n want %s\n fp: %s",
				tc.p, got, tc.stats, obsFingerprint(r))
		}
		if got := fmt.Sprintf("%x", sha256.Sum256([]byte(mem))); got != tc.mem {
			t.Errorf("%v: memory image drifted from pre-obs golden: %s != %s", tc.p, got, tc.mem)
		}
	}
}

func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
		plain, memPlain := obsRun(t, p, nil)
		ring := obs.NewRingSink(1 << 20)
		traced, memTraced := obsRun(t, p, ring)
		if obsFingerprint(plain) != obsFingerprint(traced) {
			t.Errorf("%v: attaching a sink changed the simulation:\n off: %s\n on:  %s",
				p, obsFingerprint(plain), obsFingerprint(traced))
		}
		if memPlain != memTraced {
			t.Errorf("%v: attaching a sink changed the memory image", p)
		}
		if ring.Len() == 0 {
			t.Errorf("%v: traced run captured no events", p)
		}
	}
}

// TestTracingAddsNoAllocations runs the same deterministic simulation
// with and without a (preconstructed) ring sink and compares total
// allocation counts: equal counts prove the enabled emit path
// allocates nothing, and a fortiori that the disabled (nil-sink)
// branch does not either. The comparison carries a few allocations of
// slack: the sim's maps pick random hash seeds per instance, so the
// number of overflow buckets they allocate while growing jitters
// between otherwise identical runs. The traced run emits ~10^5
// events, so a real per-event allocation overshoots the slack by four
// orders of magnitude.
func TestTracingAddsNoAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation census runs the sim four times")
	}
	if raceEnabled {
		t.Skip("race-runtime bookkeeping allocates nondeterministically")
	}
	ring := obs.NewRingSink(1 << 20)
	off := testing.AllocsPerRun(1, func() { obsRun(t, coherence.WiDir, nil) })
	on := testing.AllocsPerRun(1, func() { obsRun(t, coherence.WiDir, ring) })
	const slack = 8 // map overflow-bucket jitter between runs
	if on > off+slack {
		t.Errorf("tracing added %.0f allocations per run (off=%.0f on=%.0f)", on-off, off, on)
	}
}

func TestTracedRunsByteIdenticalJSONL(t *testing.T) {
	encode := func() []byte {
		ring := obs.NewRingSink(1 << 20)
		obsRun(t, coherence.WiDir, ring)
		if ring.Dropped() != 0 {
			t.Fatalf("ring wrapped (%d dropped); enlarge the buffer", ring.Dropped())
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, ring.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if len(a) == 0 {
		t.Fatal("traced run produced no JSONL")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two serial traced runs of the same seed must produce byte-identical JSONL")
	}
}

// TestTraceCoversSchema sanity-checks that a WiDir run exercises the
// main event families and that its spans split across both protocol
// paths.
func TestTraceCoversSchema(t *testing.T) {
	ring := obs.NewRingSink(1 << 20)
	obsRun(t, coherence.WiDir, ring)
	events := ring.Events()
	var seen [1 << 8]bool
	for _, e := range events {
		seen[e.Kind] = true
	}
	for _, k := range []obs.Kind{
		obs.EvTxnBegin, obs.EvTxnEnd, obs.EvL1Miss, obs.EvL1Fill,
		obs.EvWUpgrade, obs.EvWirUpd, obs.EvSlotGrant,
		obs.EvMsgSend, obs.EvMsgRecv, obs.EvMeshLeg, obs.EvROBStall,
	} {
		if !seen[k] {
			t.Errorf("WiDir trace never emitted %s", k)
		}
	}
	sum := obs.Summarize(obs.BuildSpans(events))
	if sum.Wired.Total() == 0 {
		t.Error("no wired request spans stitched")
	}
	if sum.Wireless.Total() == 0 {
		t.Error("no wireless request spans stitched")
	}
}

// BenchmarkMachineCycleTracingOff is BenchmarkMachineCycle's guard
// twin: the identical Step(1) loop on a system whose Trace is nil.
// Compare its ns/op and allocs/op against BenchmarkMachineCycle to
// measure what the disabled instrumentation branches cost (the
// contract is: nothing beyond the nil checks).
func BenchmarkMachineCycleTracingOff(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	prof = prof.Scale(0.1)
	build := func() *System {
		cfg := DefaultConfig(16, coherence.WiDir)
		cfg.Trace = nil // explicit: the disabled path under test
		sys, err := NewSystem(cfg, workload.Program(prof, 16, 11))
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	sys := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.running == 0 {
			b.StopTimer()
			sys = build()
			b.StartTimer()
		}
		sys.Step(1)
		sys.running = 0
		for _, c := range sys.cores {
			if !c.Done() {
				sys.running++
			}
		}
	}
}
