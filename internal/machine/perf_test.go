package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// BenchmarkSimThroughput measures simulator performance itself: one
// full-scale 64-core WiDir run of barnes per iteration. Useful for
// tracking regressions in the cycle loop, not for paper results.
func BenchmarkSimThroughput(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(64, coherence.WiDir)
		sys, err := NewSystem(cfg, workload.Program(prof, 64, 11))
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Cycles), "sim-cycles")
	}
}

// BenchmarkMachineCycle measures the per-cycle cost of the machine
// loop in isolation — one Step(1) per iteration on a live 16-core
// WiDir system. With -benchmem this is the per-cycle allocation
// budget; the event queue, mesh and directory hot paths are expected
// to keep it near zero allocations once warm.
func BenchmarkMachineCycle(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	prof = prof.Scale(0.1)
	build := func() *System {
		sys, err := NewSystem(DefaultConfig(16, coherence.WiDir), workload.Program(prof, 16, 11))
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	sys := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.running == 0 {
			// The workload drained; rebuild off the clock so the metric
			// stays a pure cycle-loop cost.
			b.StopTimer()
			sys = build()
			b.StartTimer()
		}
		sys.Step(1)
		// Step doesn't maintain the running count (Run does); recompute
		// so the drain check above stays accurate.
		sys.running = 0
		for _, c := range sys.cores {
			if !c.Done() {
				sys.running++
			}
		}
	}
}

// BenchmarkSimThroughputFlitNoC is the same run over the flit-level
// wormhole NoC, quantifying the fidelity/speed trade-off.
func BenchmarkSimThroughputFlitNoC(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(64, coherence.WiDir)
		cfg.FlitLevelNoC = true
		sys, err := NewSystem(cfg, workload.Program(prof, 64, 11))
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Cycles), "sim-cycles")
	}
}

// BenchmarkSimFastForward measures the quiescence fast-forward on the
// schedule it targets: a compute-dominant mix (512 compute per memory
// op) where cores drain long compute runs analytically and the
// machine jumps the resulting quiescent stretches. One full 16-core
// WiDir run per iteration, construction off the clock; divide ns/op
// by sim-cycles for the effective per-simulated-cycle cost.
func BenchmarkSimFastForward(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	prof = prof.Scale(0.05)
	prof.ComputePerMem = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig(16, coherence.WiDir)
		sys, err := NewSystem(cfg, workload.Program(prof, 16, 11))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Cycles), "sim-cycles")
	}
}
