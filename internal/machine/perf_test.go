package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// BenchmarkSimThroughput measures simulator performance itself: one
// full-scale 64-core WiDir run of barnes per iteration. Useful for
// tracking regressions in the cycle loop, not for paper results.
func BenchmarkSimThroughput(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(64, coherence.WiDir)
		sys, err := NewSystem(cfg, workload.Program(prof, 64, 11))
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Cycles), "sim-cycles")
	}
}

// BenchmarkSimThroughputFlitNoC is the same run over the flit-level
// wormhole NoC, quantifying the fidelity/speed trade-off.
func BenchmarkSimThroughputFlitNoC(b *testing.B) {
	prof, _ := workload.ByName("barnes")
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(64, coherence.WiDir)
		cfg.FlitLevelNoC = true
		sys, err := NewSystem(cfg, workload.Program(prof, 64, 11))
		if err != nil {
			b.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Cycles), "sim-cycles")
	}
}
