//go:build !race

package machine

const raceEnabled = false
