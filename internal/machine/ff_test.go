package machine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ffProfile returns the workload the fast-forward equivalence suite
// runs. compute=false is the determinism-suite reference (fmm 0.08,
// a communication-heavy mix where machine-level quiescence is rare);
// compute=true inflates the compute:memory ratio so the analytic
// compute drain and long horizon jumps dominate — the schedule the
// fast-forward path actually accelerates.
func ffProfile(t *testing.T, compute bool) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName("fmm")
	if !ok {
		t.Fatal("unknown app fmm")
	}
	prof = prof.Scale(0.08)
	if compute {
		prof.ComputePerMem = 512
	}
	return prof
}

// ffRun executes one run under the given schedule and returns the
// full byte-stable observable output: the formatted Result (every
// counter and histogram), the off-chip memory image, and the raw
// JSONL trace stream.
func ffRun(t *testing.T, prof workload.Profile, p coherence.Protocol, noFF bool, fcfg fault.Config) (stats, mem, trace string) {
	t.Helper()
	cfg := DefaultConfig(16, p)
	cfg.MaxCycles = 100_000_000
	cfg.LLCEntriesPerSlice = 8
	cfg.NoFastForward = noFF
	cfg.Fault = fcfg
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	cfg.Trace = sink
	sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, 5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", r), sys.Memory().Dump(), buf.String()
}

// TestFastForwardByteIdentical is the fast-forward half of the
// determinism contract: a run that jumps quiescent stretches
// (Config.NoFastForward=false, the default) must be byte-identical —
// stats, memory image, and full JSONL trace — to the cycle-by-cycle
// schedule that ticks every cycle. Both the communication-heavy
// reference mix and a compute-dominant mix are checked; the latter is
// where the horizon jumps span hundreds of cycles.
func TestFastForwardByteIdentical(t *testing.T) {
	for _, compute := range []bool{false, true} {
		prof := ffProfile(t, compute)
		for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
			s1, m1, tr1 := ffRun(t, prof, p, true, fault.Config{})
			s2, m2, tr2 := ffRun(t, prof, p, false, fault.Config{})
			if s1 != s2 {
				t.Errorf("%v compute=%v: fast-forward changed the stats:\nserial: %.400s\nff:     %.400s", p, compute, s1, s2)
			}
			if m1 != m2 {
				t.Errorf("%v compute=%v: fast-forward changed the memory image", p, compute)
			}
			if tr1 != tr2 {
				t.Errorf("%v compute=%v: fast-forward changed the trace (%d vs %d bytes)", p, compute, len(tr1), len(tr2))
			}
			if tr1 == "" {
				t.Errorf("%v compute=%v: empty trace; equivalence is vacuous", p, compute)
			}
		}
	}
}

// TestFastForwardFaultRunByteIdentical extends the equivalence to
// fault-injected schedules: the fault PRNGs draw per protocol event,
// not per cycle, so a fast-forwarded run must replay the exact same
// fault sequence as the serial one.
func TestFastForwardFaultRunByteIdentical(t *testing.T) {
	prof := ffProfile(t, false)
	s1, m1, tr1 := ffRun(t, prof, coherence.WiDir, true, faultyConfig())
	s2, m2, tr2 := ffRun(t, prof, coherence.WiDir, false, faultyConfig())
	if s1 != s2 {
		t.Errorf("fault run: fast-forward changed the stats:\nserial: %.400s\nff:     %.400s", s1, s2)
	}
	if m1 != m2 {
		t.Error("fault run: fast-forward changed the memory image")
	}
	if tr1 != tr2 {
		t.Error("fault run: fast-forward changed the trace")
	}
}

// TestStepFastForwardMatchesRun pins the windowed path: driving the
// machine with Step(n) (which fast-forwards inside each window but
// must land exactly on its boundary) reaches the same state as Run.
func TestStepFastForwardMatchesRun(t *testing.T) {
	prof := ffProfile(t, true)
	build := func(noFF bool) *System {
		cfg := DefaultConfig(16, coherence.WiDir)
		cfg.MaxCycles = 100_000_000
		cfg.LLCEntriesPerSlice = 8
		cfg.NoFastForward = noFF
		sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, 5))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	ref := build(true)
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	sys := build(false)
	for step := uint64(1); ; step = step*2 + 1 { // ragged windows
		done := true
		for i := 0; i < 16; i++ {
			if !sys.Core(i).Done() {
				done = false
				break
			}
		}
		if done || sys.Cycle() > ref.Cycle()+10_000 {
			break
		}
		sys.Step(step)
	}
	if got, want := sys.Memory().Dump(), ref.Memory().Dump(); got != want {
		t.Error("Step-driven fast-forward run diverged from Run in memory image")
	}
	for i := 0; i < 16; i++ {
		if g, w := sys.Core(i).Stats.Retired, ref.Core(i).Stats.Retired; g != w {
			t.Errorf("core %d retired %d, want %d", i, g, w)
		}
	}
}
