package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/fault"
)

// leafPaths walks a struct type and returns the dotted path of every
// leaf field: basic kinds recurse through nested structs, while
// slices, maps, interfaces, pointers and funcs stop at the field (the
// encoder must handle them as one unit or exclude them).
func leafPaths(t reflect.Type, prefix string) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			out = append(out, leafPaths(f.Type, path)...)
			continue
		}
		out = append(out, path)
	}
	return out
}

// TestConfigCanonicalCoversAllFields is the cache-key aliasing guard:
// every field of machine.Config (recursively, including cpu.Config and
// fault.Config) must either be consumed by the canonical encoder or be
// named in canonicalExcludedFields with a justification. Adding a
// Config field without updating appendCanonical fails here — the
// persistent run cache can never silently treat two different machines
// as the same entry.
func TestConfigCanonicalCoversAllFields(t *testing.T) {
	want := leafPaths(reflect.TypeOf(Config{}), "")
	covered := map[string]bool{}
	for _, p := range canonicalFieldPaths() {
		covered[p] = true
	}
	for _, p := range want {
		if covered[p] {
			delete(covered, p)
			continue
		}
		if _, ok := canonicalExcludedFields[p]; ok {
			continue
		}
		t.Errorf("Config field %q is neither canonically hashed nor excluded: add it to appendCanonical (or, for a proven-inert observer hook, to canonicalExcludedFields)", p)
	}
	// The reverse direction: the encoder and exclusion list must not
	// name fields that no longer exist.
	wantSet := map[string]bool{}
	for _, p := range want {
		wantSet[p] = true
	}
	for p := range covered {
		if !wantSet[p] {
			t.Errorf("canonical encoder hashes %q, which is not a Config field", p)
		}
	}
	for p := range canonicalExcludedFields {
		if !wantSet[p] {
			t.Errorf("canonicalExcludedFields names %q, which is not a Config field", p)
		}
	}
}

func TestConfigHashNormalizes(t *testing.T) {
	// A sparse config and its filled form are the same machine, so
	// they must share a hash.
	sparse := Config{Nodes: 16, Protocol: coherence.WiDir}
	filled, err := sparse.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := sparse.ConfigHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := filled.ConfigHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("sparse hash %s != normalized hash %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}
}

func TestConfigHashSeparates(t *testing.T) {
	base := DefaultConfig(64, coherence.WiDir)
	h0 := base.MustConfigHash()

	mutations := []func(*Config){
		func(c *Config) { c.Protocol = coherence.Baseline },
		func(c *Config) { c.Nodes = 16 },
		func(c *Config) { c.MaxWiredSharers = 5; c.MaxPointers = 5 },
		func(c *Config) { c.UpdateCountMax = 7 },
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.Fault.WirelessBER = 0.25 },
		func(c *Config) { c.Fault.Links = []fault.Link{{Src: 0, Dst: 1}} },
		func(c *Config) { c.FlitLevelNoC = true },
		func(c *Config) { c.EnableChecker = true },
	}
	for i, mut := range mutations {
		c := DefaultConfig(64, coherence.WiDir)
		mut(&c)
		if h := c.MustConfigHash(); h == h0 {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestConfigHashIgnoresObserverHooks(t *testing.T) {
	a := DefaultConfig(16, coherence.WiDir)
	b := a
	b.LineLog = nil // observers excluded; attach nothing distinguishable
	if a.MustConfigHash() != b.MustConfigHash() {
		t.Fatal("identical configs hash differently")
	}
}

func TestCanonicalStringIsLinePerField(t *testing.T) {
	s, err := DefaultConfig(16, coherence.Baseline).CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if len(lines) != len(canonicalFieldPaths()) {
		t.Fatalf("%d lines for %d fields", len(lines), len(canonicalFieldPaths()))
	}
	for _, l := range lines {
		if !strings.Contains(l, "=") {
			t.Fatalf("malformed canonical line %q", l)
		}
	}
	if !strings.Contains(s, "Nodes=16\n") || !strings.Contains(s, "Protocol=0\n") {
		t.Fatalf("canonical string missing expected lines:\n%s", s)
	}
}
