package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/wireless"
	"repro/internal/workload"
)

func runApp(t *testing.T, name string, nodes int, p coherence.Protocol, scale float64, seed uint64, check bool) *Result {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	prof = prof.Scale(scale)
	cfg := DefaultConfig(nodes, p)
	cfg.EnableChecker = check
	cfg.MaxCycles = 100_000_000
	sys, err := NewSystem(cfg, workload.Program(prof, nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("%s/%v/%d cores/seed %d: %v", name, p, nodes, seed, err)
	}
	return r
}

func TestCheckedBaseline16(t *testing.T) {
	r := runApp(t, "barnes", 16, coherence.Baseline, 0.1, 7, true)
	if r.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestCheckedWiDir16(t *testing.T) {
	r := runApp(t, "barnes", 16, coherence.WiDir, 0.1, 7, true)
	if r.SToW == 0 {
		t.Error("expected S->W transitions under WiDir")
	}
	if r.WirelessWrites == 0 {
		t.Error("expected wireless writes under WiDir")
	}
}

// TestCheckedMatrix sweeps protocol x app x seed with the value and
// structural checkers enabled — the main correctness stress.
func TestCheckedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("checked matrix is slow")
	}
	apps := []string{"radiosity", "ocean-nc", "fft", "water-spa", "canneal"}
	for _, app := range apps {
		for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
			for _, seed := range []uint64{1, 2} {
				runApp(t, app, 16, p, 0.08, seed, true)
			}
		}
	}
}

// TestCheckedWiDir64 exercises the full 64-core machine with checking.
func TestCheckedWiDir64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core checked run is slow")
	}
	runApp(t, "radiosity", 64, coherence.WiDir, 0.05, 3, true)
	runApp(t, "barnes", 64, coherence.WiDir, 0.05, 3, true)
}

// TestRegressionDeadlocks re-runs the configurations that exposed
// protocol deadlocks during development (stale eviction notices across
// S->W transitions, early W->S commits, lock churn at 32 cores).
func TestRegressionDeadlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("regression sweep is slow")
	}
	runApp(t, "barnes", 32, coherence.WiDir, 0.0625, 1, false)
	runApp(t, "ocean-nc", 64, coherence.WiDir, 1.0, 13, false)
	runApp(t, "barnes", 64, coherence.WiDir, 0.1, 11, false)
	runApp(t, "radiosity", 64, coherence.WiDir, 0.05, 11, false)
}

func TestDeterminism(t *testing.T) {
	a := runApp(t, "fmm", 16, coherence.WiDir, 0.08, 5, false)
	b := runApp(t, "fmm", 16, coherence.WiDir, 0.08, 5, false)
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.WirelessWrites != b.WirelessWrites {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.Retired, b.Cycles, b.Retired)
	}
}

func TestSeedChangesRun(t *testing.T) {
	a := runApp(t, "fmm", 16, coherence.WiDir, 0.08, 5, false)
	b := runApp(t, "fmm", 16, coherence.WiDir, 0.08, 6, false)
	if a.Cycles == b.Cycles && a.Retired == b.Retired {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestBaselineNeverUsesWireless(t *testing.T) {
	r := runApp(t, "radiosity", 16, coherence.Baseline, 0.08, 1, false)
	if r.WirelessWrites != 0 || r.SToW != 0 || r.WirelessAttempts != 0 {
		t.Fatalf("baseline used the wireless network: %+v", r)
	}
}

func TestResultMetrics(t *testing.T) {
	r := runApp(t, "barnes", 16, coherence.WiDir, 0.08, 1, false)
	if r.MPKI() <= 0 {
		t.Fatal("MPKI not positive")
	}
	if r.ReadMPKI()+r.WriteMPKI() != r.MPKI() {
		t.Fatal("MPKI split does not sum")
	}
	if r.EnergyPJ <= 0 {
		t.Fatal("energy not positive")
	}
	if r.Energy.Share("Core") <= 0 {
		t.Fatal("core energy share missing")
	}
	if r.Energy.Share("WNoC") <= 0 {
		t.Fatal("WiDir run has no WNoC energy")
	}
	if r.MemStallCycles == 0 {
		t.Fatal("no memory stalls attributed")
	}
	if r.HopsPerLeg.Total() == 0 {
		t.Fatal("no hop samples")
	}
}

func TestBaselineEnergyHasNoWNoC(t *testing.T) {
	r := runApp(t, "barnes", 16, coherence.Baseline, 0.08, 1, false)
	if r.Energy.Share("WNoC") != 0 {
		t.Fatal("baseline charged for the wireless network")
	}
}

func TestFig5HistogramPopulated(t *testing.T) {
	r := runApp(t, "radiosity", 64, coherence.WiDir, 0.05, 1, false)
	if r.SharersPerUpdate.Total() == 0 {
		t.Fatal("no wireless updates sampled")
	}
	if r.MeanSharersPerUpdate <= 0 {
		t.Fatal("mean sharers not computed")
	}
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{
		64: {8, 8}, 32: {8, 4}, 16: {4, 4}, 4: {2, 2}, 12: {4, 3}, 7: {7, 1},
	}
	for n, want := range cases {
		w, h := meshDims(n)
		if w*h != n {
			t.Fatalf("meshDims(%d) = %dx%d", n, w, h)
		}
		if w != want[0] || h != want[1] {
			t.Fatalf("meshDims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(16, coherence.WiDir)
	if _, err := NewSystem(cfg, nil); err == nil {
		t.Fatal("mismatched source count accepted")
	}
	bad := cfg
	bad.Nodes = 0
	if _, err := NewSystem(bad, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = cfg
	bad.MeshW, bad.MeshH = 3, 3 // 9 != 16
	if _, err := NewSystem(bad, make([]cpu.InstrSource, 16)); err == nil {
		t.Fatal("inconsistent mesh accepted")
	}
}

func TestWatchdog(t *testing.T) {
	prof, _ := workload.ByName("barnes")
	prof = prof.Scale(0.5)
	cfg := DefaultConfig(16, coherence.WiDir)
	cfg.MaxCycles = 100 // far too few
	sys, err := NewSystem(cfg, workload.Program(prof, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("watchdog did not trip")
	}
}

func TestMemoryDataIntegrity(t *testing.T) {
	// A value written by one core, after enough churn to evict it
	// everywhere, must still be readable by another core: exercises the
	// writeback path through the LLC and memory controllers.
	cfg := DefaultConfig(4, coherence.WiDir)
	cfg.LLCEntriesPerSlice = 4 // force directory evictions
	cfg.EnableChecker = true
	prof, _ := workload.ByName("canneal")
	prof = prof.Scale(0.05)
	sys, err := NewSystem(cfg, workload.Program(prof, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Home(0).Stats.DirEvictions.Value() == 0 &&
		sys.Home(1).Stats.DirEvictions.Value() == 0 &&
		sys.Home(2).Stats.DirEvictions.Value() == 0 &&
		sys.Home(3).Stats.DirEvictions.Value() == 0 {
		t.Fatal("test did not exercise directory evictions")
	}
}

func TestMaxWiredSharersThreshold(t *testing.T) {
	// With a higher threshold, fewer lines transition to wireless.
	prof, _ := workload.ByName("radiosity")
	prof = prof.Scale(0.1)
	var stow [2]uint64
	for i, th := range []int{2, 5} {
		cfg := DefaultConfig(16, coherence.WiDir)
		cfg.MaxWiredSharers = th
		cfg.MaxPointers = th
		sys, err := NewSystem(cfg, workload.Program(prof, 16, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		stow[i] = r.SToW
	}
	if stow[0] <= stow[1] {
		t.Fatalf("threshold 2 produced %d transitions, threshold 5 produced %d", stow[0], stow[1])
	}
}

func TestStepAndAccessors(t *testing.T) {
	prof, _ := workload.ByName("fmm")
	prof = prof.Scale(0.05)
	cfg := DefaultConfig(4, coherence.WiDir)
	sys, err := NewSystem(cfg, workload.Program(prof, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(100)
	if sys.Cycle() != 100 {
		t.Fatalf("cycle = %d", sys.Cycle())
	}
	if sys.L1(0) == nil || sys.Home(0) == nil || sys.Core(0) == nil || sys.Mesh() == nil || sys.Wireless() == nil {
		t.Fatal("accessors returned nil")
	}
	if sys.Config().Nodes != 4 {
		t.Fatal("config not filled")
	}
}

// TestProtocolComparisonShape asserts the headline result's direction
// on a high-sharing application: WiDir must cut coherence misses.
func TestProtocolComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs are slow")
	}
	base := runApp(t, "radiosity", 64, coherence.Baseline, 0.25, 1, false)
	wd := runApp(t, "radiosity", 64, coherence.WiDir, 0.25, 1, false)
	if wd.MPKI() >= base.MPKI() {
		t.Fatalf("WiDir MPKI %.2f did not improve on Baseline %.2f", wd.MPKI(), base.MPKI())
	}
	if wd.Cycles >= base.Cycles {
		t.Fatalf("WiDir %d cycles did not improve on Baseline %d", wd.Cycles, base.Cycles)
	}
}

// TestFlitLevelNoC runs a checked machine over the flit-level wormhole
// mesh: protocol correctness must be independent of the NoC model.
func TestFlitLevelNoC(t *testing.T) {
	prof, _ := workload.ByName("barnes")
	prof = prof.Scale(0.05)
	for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
		cfg := DefaultConfig(16, p)
		cfg.FlitLevelNoC = true
		cfg.EnableChecker = true
		cfg.MaxCycles = 100_000_000
		sys, err := NewSystem(cfg, workload.Program(prof, 16, 7))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatalf("%v over flit mesh: %v", p, err)
		}
		if r.Retired == 0 || r.HopsPerLeg.Total() == 0 {
			t.Fatalf("%v over flit mesh produced no traffic", p)
		}
	}
}

// TestNoCModelAgreement compares the packet-level and flit-level NoC
// models on one run: cycle counts must agree within a small factor.
func TestNoCModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-model run is slow")
	}
	prof, _ := workload.ByName("fmm")
	prof = prof.Scale(0.1)
	var cycles [2]uint64
	for i, flit := range []bool{false, true} {
		cfg := DefaultConfig(16, coherence.Baseline)
		cfg.FlitLevelNoC = flit
		sys, err := NewSystem(cfg, workload.Program(prof, 16, 3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = r.Cycles
	}
	ratio := float64(cycles[1]) / float64(cycles[0])
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("NoC models diverge: packet=%d flit=%d (ratio %.2f)", cycles[0], cycles[1], ratio)
	}
}

// TestMigratoryStaysWired: migratory data (one writer at a time,
// ownership handed around) is the classic pattern update protocols lose
// on. WiDir's design keeps it on the wired protocol automatically —
// frequent writes invalidate readers before MaxWiredSharers concurrent
// sharers can accumulate, so the lines (almost) never transition to W,
// and any that do must decay back out rather than staying pinned.
func TestMigratoryStaysWired(t *testing.T) {
	prof := workload.Profile{
		Name: "migratory", PaperMPKI: 1, Steps: 3000, ComputePerMem: 6,
		MigLines: 4, MigAccessFrac: 0.25,
		StreamFrac: 0.01, ReuseLines: 32, PrivateWriteFrac: 0.3,
	}
	cfg := DefaultConfig(16, coherence.WiDir)
	cfg.EnableChecker = true
	sys, err := NewSystem(cfg, workload.Program(prof, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Migratory lines may enter W episodically (reader bursts between
	// ownership hops), but the decay machinery must keep pushing them
	// back to the wired protocol: exits track entries.
	if r.SToW > 0 {
		exits := r.WToS + r.WirInvs
		if exits*2 < r.SToW {
			t.Fatalf("migratory lines entered W %d times but left only %d times", r.SToW, exits)
		}
		if r.SelfInvalidations == 0 {
			t.Fatal("no UpdateCount decay on migratory data")
		}
	}
}

// TestExtensionsUnderChecker runs the Dir_iCV_r directory and the token
// MAC through full checked machines: the extensions must preserve
// coherence, not just compile.
func TestExtensionsUnderChecker(t *testing.T) {
	prof, _ := workload.ByName("radiosity")
	prof = prof.Scale(0.08)

	cfg := DefaultConfig(16, coherence.Baseline)
	cfg.DirScheme = coherence.DirCV
	cfg.CoarseRegion = 4
	cfg.EnableChecker = true
	sys, err := NewSystem(cfg, workload.Program(prof, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("Dir_iCV_r: %v", err)
	}

	cfg = DefaultConfig(16, coherence.WiDir)
	cfg.MAC = wireless.MACToken
	cfg.EnableChecker = true
	sys, err = NewSystem(cfg, workload.Program(prof, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("token MAC: %v", err)
	}
	if r.WirelessCollisions != 0 {
		t.Fatalf("token MAC collided %d times", r.WirelessCollisions)
	}
	if r.WirelessWrites == 0 {
		t.Fatal("token MAC carried no updates")
	}
}
