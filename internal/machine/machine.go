// Package machine assembles the full manycore: cores, private caches,
// LLC/directory slices, the wired 2D mesh, the wireless channel, and
// the memory controllers, and runs the global cycle loop. It implements
// coherence.Env — the environment the protocol controllers act in —
// and collects the run's measurements into a Result.
package machine

import (
	"errors"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/wireless"
	"repro/internal/xrand"
)

// Config describes one machine (Table III defaults via DefaultConfig).
type Config struct {
	Nodes    int // core count; MeshW×MeshH when both set, else squarest fit
	MeshW    int
	MeshH    int
	Protocol coherence.Protocol

	Core cpu.Config

	L1SizeBytes    int
	L1Ways         int
	L1Latency      uint64
	UpdateCountMax int // WiDir decay threshold

	LLCEntriesPerSlice int
	LLCLatency         uint64
	MaxPointers        int                 // Dir_iB i
	MaxWiredSharers    int                 // WiDir threshold
	DirScheme          coherence.DirScheme // Dir_iB (default) or Dir_iCV_r
	CoarseRegion       int                 // Dir_iCV_r region size (default 4)
	MAC                wireless.MAC        // BRS (default) or Token
	FlitLevelNoC       bool                // flit-level wormhole routers instead of the packet model
	NoCBufDepth        int                 // flit-level input buffer depth (default 4)
	MessageJitter      int                 // testing: random extra wired delay (preserves FIFO)

	MemControllers     int
	MemLatency         uint64 // off-chip round trip (80)
	MemServiceInterval uint64 // MC bandwidth: cycles between accepts

	RetryDelay uint64 // NACK retry base
	Seed       uint64
	MaxCycles  uint64 // watchdog; 0 = default

	// Fault declares the deterministic fault-injection schedule
	// (internal/fault). The zero value injects nothing. When
	// Fault.Seed is zero the machine derives it from Seed, so two runs
	// with the same (Config, workload) replay the same faults.
	Fault fault.Config

	// TxnAgeLimit is the per-transaction age watchdog: a coherence
	// transaction older than this many cycles is reported as a typed
	// *coherence.ProtocolError (with the oldest transaction's state)
	// instead of running into the blunt MaxCycles watchdog. 0 = default.
	TxnAgeLimit uint64

	// NoFastForward disables the quiescence fast-forward in Run/Step,
	// forcing strictly cycle-by-cycle execution. The run result is
	// byte-identical either way (the equivalence tests prove it); the
	// flag exists for those tests and for debugging the horizon logic.
	NoFastForward bool

	EnableChecker bool // value-coherence + SWMR invariant checking

	// Trace receives the run's structured observability events
	// (internal/obs) from every layer: protocol spans from the L1s and
	// homes, MAC events from the wireless channel, per-leg mesh events,
	// and ROB-stall episodes from the cores. nil (the default) disables
	// all emission — every site is behind a nil check, so the disabled
	// path costs one branch and zero allocations. Sinks are driven from
	// the single-threaded cycle loop and need no locking.
	Trace obs.Sink `json:"-"`
	// LineLog, when set, dumps every protocol event touching one cache
	// line as human-readable text (the legacy TraceLine format).
	LineLog *obs.LineLog `json:"-"`
}

// DefaultConfig returns the paper's Table III machine with the given
// core count and protocol.
func DefaultConfig(nodes int, p coherence.Protocol) Config {
	return Config{
		Nodes:              nodes,
		Protocol:           p,
		Core:               cpu.DefaultConfig(),
		L1SizeBytes:        64 << 10,
		L1Ways:             2,
		L1Latency:          2,
		UpdateCountMax:     3,
		LLCEntriesPerSlice: (512 << 10) / addrspace.LineSize,
		LLCLatency:         12,
		MaxPointers:        3,
		MaxWiredSharers:    3,
		MemControllers:     4,
		MemLatency:         80,
		MemServiceInterval: 4,
		RetryDelay:         16,
		Seed:               1,
	}
}

func (c *Config) fill() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("machine: node count %d must be positive", c.Nodes)
	}
	if c.MeshW == 0 || c.MeshH == 0 {
		c.MeshW, c.MeshH = meshDims(c.Nodes)
	}
	if c.MeshW*c.MeshH != c.Nodes {
		return fmt.Errorf("machine: mesh %dx%d does not hold %d nodes", c.MeshW, c.MeshH, c.Nodes)
	}
	if c.L1SizeBytes == 0 {
		c.L1SizeBytes = 64 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = 2
	}
	if c.L1Latency == 0 {
		c.L1Latency = 2
	}
	if c.UpdateCountMax == 0 {
		c.UpdateCountMax = 3
	}
	if c.LLCEntriesPerSlice == 0 {
		c.LLCEntriesPerSlice = (512 << 10) / addrspace.LineSize
	}
	if c.LLCLatency == 0 {
		c.LLCLatency = 12
	}
	if c.MaxPointers == 0 {
		c.MaxPointers = 3
	}
	if c.MaxWiredSharers == 0 {
		c.MaxWiredSharers = c.MaxPointers
	}
	if c.MemControllers == 0 {
		c.MemControllers = 4
	}
	if c.MemControllers > c.Nodes {
		c.MemControllers = c.Nodes
	}
	if c.MemLatency == 0 {
		c.MemLatency = 80
	}
	if c.MemServiceInterval == 0 {
		c.MemServiceInterval = 4
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 16
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.TxnAgeLimit == 0 {
		c.TxnAgeLimit = 2_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// meshDims picks the squarest factorization of n.
func meshDims(n int) (w, h int) {
	w = 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			w = f
		}
	}
	return n / w, w
}

// System is one assembled machine ready to run.
type System struct {
	cfg    Config
	space  *addrspace.Space
	mesh   *mesh.Mesh     // packet-level NoC (default)
	fmesh  *mesh.FlitMesh // flit-level NoC (Config.FlitLevelNoC)
	net    mesh.Network   // whichever is active
	wchan  *wireless.Channel
	events engine.Queue
	cycle  uint64

	l1s   []*coherence.L1Ctrl
	homes []*coherence.HomeCtrl
	cores []*cpu.Core

	memory      *coherence.MemoryImage
	mcNodes     []int
	mcFree      []uint64
	memAccesses stats.Counter

	checker  *Checker
	injector *fault.Injector

	// protoErr latches the first protocol error any controller reports;
	// the cycle loop checks it once per iteration and fails the run.
	protoErr *coherence.ProtocolError

	running int // cores not yet finished
}

// NewSystem builds a machine. Sources supplies each core's instruction
// stream (len must equal cfg.Nodes).
func NewSystem(cfg Config, sources []cpu.InstrSource) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Nodes {
		return nil, fmt.Errorf("machine: %d instruction sources for %d nodes", len(sources), cfg.Nodes)
	}
	s := &System{
		cfg:    cfg,
		space:  addrspace.NewSpace(cfg.Nodes, cfg.MemControllers),
		memory: coherence.NewMemoryImage(),
	}
	if cfg.FlitLevelNoC {
		s.fmesh = mesh.NewFlitMesh(cfg.MeshW, cfg.MeshH, cfg.NoCBufDepth, s.deliverWired)
		s.net = s.fmesh
	} else {
		s.mesh = mesh.New(cfg.MeshW, cfg.MeshH, s.deliverWired)
		s.mesh.Jitter = cfg.MessageJitter
		s.mesh.Trace = cfg.Trace
		s.net = s.mesh
	}
	s.wchan = wireless.NewChannel(xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15))
	s.wchan.Trace = cfg.Trace
	s.wchan.Mac = cfg.MAC
	s.wchan.Nodes = cfg.Nodes
	s.wchan.SetBroadcast(s.deliverWireless)

	fcfg := cfg.Fault
	if fcfg.Seed == 0 {
		// Derive the fault schedule from the machine seed so that the
		// pair (Config, workload) fully keys a faulty run; an explicit
		// Fault.Seed replays one schedule across machine seeds.
		fcfg.Seed = cfg.Seed ^ 0x6661756c74 // "fault"
	}
	if inj := fault.New(fcfg); inj != nil {
		s.injector = inj
		if fcfg.WirelessBER > 0 {
			s.wchan.FaultCorrupt = func(wireless.Message) bool { return inj.CorruptTx() }
			s.wchan.OnTxFault = func(now uint64, msg wireless.Message, exhausted bool) {
				// Tell the home so it can count consecutive wireless
				// faults on the line and demote W->S past the threshold.
				s.homes[s.space.HomeOf(msg.Line)].NoteWirelessFault(now, msg.Line)
			}
		}
		if fcfg.LinkStallPct > 0 || fcfg.LinkDropPct > 0 {
			if s.mesh == nil {
				return nil, fmt.Errorf("machine: link fault injection requires the packet-level NoC (FlitLevelNoC unsupported)")
			}
			s.mesh.FaultDelay = inj.LinkDelay
		}
	}

	l1cfg := coherence.L1Config{
		Cache:          cache.Config{SizeBytes: cfg.L1SizeBytes, Ways: cfg.L1Ways},
		Protocol:       cfg.Protocol,
		HitLatency:     cfg.L1Latency,
		RetryDelay:     cfg.RetryDelay,
		UpdateCountMax: cfg.UpdateCountMax,
		Trace:          cfg.Trace,
		Log:            cfg.LineLog,
	}
	homecfg := coherence.HomeConfig{
		Protocol:        cfg.Protocol,
		Scheme:          cfg.DirScheme,
		MaxPointers:     cfg.MaxPointers,
		MaxWiredSharers: cfg.MaxWiredSharers,
		CoarseRegion:    cfg.CoarseRegion,
		Entries:         cfg.LLCEntriesPerSlice,
		LLCLatency:      cfg.LLCLatency,
		Trace:           cfg.Trace,
		Log:             cfg.LineLog,
	}
	if s.injector != nil && s.injector.Config().DirDelayPct > 0 {
		homecfg.FaultDirDelay = s.injector.DirDelay
	}
	corecfg := cfg.Core
	corecfg.Trace = cfg.Trace
	for i := 0; i < cfg.Nodes; i++ {
		l1 := coherence.NewL1(i, l1cfg, s)
		home := coherence.NewHome(i, homecfg, s)
		home.Memory = s.memory
		s.l1s = append(s.l1s, l1)
		s.homes = append(s.homes, home)
		s.cores = append(s.cores, cpu.New(i, corecfg, sources[i], l1))
	}
	s.running = cfg.Nodes

	// Memory controllers sit spread across the mesh edge.
	for i := 0; i < cfg.MemControllers; i++ {
		s.mcNodes = append(s.mcNodes, i*cfg.Nodes/cfg.MemControllers)
	}
	s.mcFree = make([]uint64, cfg.MemControllers)

	if cfg.EnableChecker {
		s.checker = NewChecker(s)
		for _, l1 := range s.l1s {
			l1.OnSerializedWrite = s.checker.SerializedWrite
			l1.OnObservedRead = s.checker.ObservedRead
		}
	}
	return s, nil
}

// --- coherence.Env implementation ---

// Now returns the current cycle.
func (s *System) Now() uint64 { return s.cycle }

// SendWired injects a coherence message into the mesh.
func (s *System) SendWired(src, dst int, port coherence.PortKind, m *coherence.Msg) {
	if port == coherence.PortMC {
		// Messages to a memory controller are addressed by MC index.
		dst = s.mcNodes[s.space.MCOf(m.Line)]
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(obs.Event{Cycle: s.cycle, Kind: obs.EvMsgSend,
			Node: int32(src), Other: int32(dst), Line: m.Line,
			A: uint64(m.Type), B: m.ReqID})
	}
	m.Port = port
	s.net.Send(s.cycle, mesh.Packet{
		Src: src, Dst: dst,
		Flits:   mesh.FlitsFor(m.Bytes()),
		Payload: m,
	})
}

// TransmitWireless queues a broadcast on the data channel.
func (s *System) TransmitWireless(sender int, line addrspace.Line, payload any, privileged bool, done func(uint64), abort func(uint64, bool)) func() bool {
	return s.wchan.Transmit(wireless.Message{Sender: sender, Line: line, Payload: payload, Privileged: privileged}, done, abort)
}

// WirelessActive reports an in-flight transmission for the line.
func (s *System) WirelessActive(l addrspace.Line) bool { return s.wchan.ActiveOn(l) }

// Jam starts protecting a line on the data channel.
func (s *System) Jam(l addrspace.Line, owner int) { s.wchan.Jam(l, owner) }

// Unjam releases the protection.
func (s *System) Unjam(l addrspace.Line, owner int) { s.wchan.Unjam(l, owner) }

// RaiseTone adds a tone-channel hold.
func (s *System) RaiseTone() {
	s.wchan.RaiseTone()
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(obs.Event{Cycle: s.cycle, Kind: obs.EvToneRaise,
			Node: obs.NoNode, Other: obs.NoNode, Line: obs.NoLine,
			A: uint64(s.wchan.ToneHolds())})
	}
}

// LowerTone releases a tone-channel hold.
func (s *System) LowerTone() {
	s.wchan.LowerTone()
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(obs.Event{Cycle: s.cycle, Kind: obs.EvToneLower,
			Node: obs.NoNode, Other: obs.NoNode, Line: obs.NoLine,
			A: uint64(s.wchan.ToneHolds())})
	}
}

// WaitToneSilent registers a ToneAck completion callback.
func (s *System) WaitToneSilent(fn func(uint64)) { s.wchan.WaitToneSilent(fn) }

// After schedules fn at Now()+delay.
func (s *System) After(delay uint64, fn func(uint64)) { s.events.At(s.cycle+delay, fn) }

// AfterRunner schedules a pooled runner at Now()+delay.
func (s *System) AfterRunner(delay uint64, r engine.Runner) { s.events.AtRunner(s.cycle+delay, r) }

// HomeOf maps a line to its home slice.
func (s *System) HomeOf(l addrspace.Line) int { return s.space.HomeOf(l) }

// MCOf maps a line to its memory controller index.
func (s *System) MCOf(l addrspace.Line) int { return s.space.MCOf(l) }

// Nodes returns the machine's node count.
func (s *System) Nodes() int { return s.cfg.Nodes }

// ReportProtocolError latches the first protocol error a controller
// reports; Run fails with it at the top of the next cycle.
func (s *System) ReportProtocolError(e *coherence.ProtocolError) {
	if s.protoErr == nil {
		s.protoErr = e
	}
}

// --- delivery plumbing ---

func (s *System) deliverWired(now uint64, pkt mesh.Packet) {
	m := pkt.Payload.(*coherence.Msg)
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvMsgRecv,
			Node: int32(pkt.Dst), Other: int32(pkt.Src), Line: m.Line,
			A: uint64(m.Type), B: m.ReqID})
	}
	switch m.Port {
	case coherence.PortL1:
		s.l1s[pkt.Dst].HandleWired(now, m)
	case coherence.PortHome:
		s.homes[pkt.Dst].HandleWired(now, m)
	case coherence.PortMC:
		s.handleMC(now, pkt.Src, m)
	}
}

func (s *System) deliverWireless(now uint64, msg wireless.Message) {
	for i := range s.l1s {
		s.l1s[i].HandleWireless(now, msg.Sender, msg.Payload)
	}
	for i := range s.homes {
		s.homes[i].HandleWireless(now, msg.Sender, msg.Payload)
	}
}

// handleMC models the off-chip memory: a service queue per controller
// with the Table III round-trip latency.
func (s *System) handleMC(now uint64, src int, m *coherence.Msg) {
	mc := s.space.MCOf(m.Line)
	s.memAccesses.Inc()
	start := s.mcFree[mc]
	if start < now {
		start = now
	}
	s.mcFree[mc] = start + s.cfg.MemServiceInterval
	switch m.Type {
	case coherence.MsgMemRead:
		line := m.Line
		dst := m.Requester
		s.events.At(start+s.cfg.MemLatency, func(at uint64) {
			resp := &coherence.Msg{
				Type: coherence.MsgMemData, Line: line, HasData: true,
				Words: s.memory.ReadLine(line),
			}
			s.SendWired(s.mcNodes[mc], dst, coherence.PortHome, resp)
		})
	case coherence.MsgMemWrite:
		// Data already committed to the MemoryImage by the home (so a
		// racing read can never see stale contents); the message models
		// timing and bandwidth only.
	default:
		panic(fmt.Sprintf("machine: MC port received non-memory message %v", m.Type))
	}
}

// --- run loop ---

// Result summarizes one run.
type Result struct {
	Protocol coherence.Protocol
	Nodes    int
	Cycles   uint64

	Retired        uint64
	MemStallCycles uint64 // summed over cores

	Loads, Stores, RMWs     uint64
	LoadROBLat, StoreROBLat uint64

	L1LoadMisses, L1StoreMisses uint64
	L1Hits                      uint64
	L1Accesses                  uint64

	WirelessWrites    uint64
	UpdatesReceived   uint64
	SelfInvalidations uint64
	NACKs             uint64

	SToW, WToS, WirInvs uint64
	BroadcastInvs       uint64
	Invalidations       uint64

	SharersPerUpdate     *stats.Histogram // Fig. 5
	HopsPerLeg           *stats.Histogram // Table V
	MissLatency          *stats.Histogram // per-miss completion latency
	MeanSharersPerUpdate float64

	WirelessAttempts   uint64
	WirelessCollisions uint64
	CollisionProb      float64

	// Fault-injection outcomes (zero when no faults are configured).
	WirelessCorrupted  uint64 // transmissions lost to injected faults
	WirelessTxFailures uint64 // senders that exhausted their retries
	FaultDemotions     uint64 // W lines demoted to wired S after faults
	LinkFaultDelays    uint64 // packets stalled or dropped on the mesh
	DirFaultDelays     uint64 // directory requests served late

	Energy      *stats.Breakdown // Fig. 9
	EnergyPJ    float64
	MemAccesses uint64
	MeshPackets uint64

	PerCore []cpu.Stats
}

// MPKI returns L1 misses per kilo-instruction.
func (r *Result) MPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.L1LoadMisses+r.L1StoreMisses) * 1000 / float64(r.Retired)
}

// ReadMPKI returns the load-miss component of MPKI (Fig. 6 split).
func (r *Result) ReadMPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.L1LoadMisses) * 1000 / float64(r.Retired)
}

// WriteMPKI returns the store-miss component of MPKI (Fig. 6 split).
func (r *Result) WriteMPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.L1StoreMisses) * 1000 / float64(r.Retired)
}

// ErrWatchdog is wrapped into the error Run returns when a simulation
// exceeds Config.MaxCycles — a protocol deadlock or runaway workload.
// Callers (including the exp package's parallel aggregate errors) can
// detect it with errors.Is.
//
//vet:local sentinel error value, never reassigned
var ErrWatchdog = errors.New("machine: watchdog timeout")

// never is the horizon sentinel for "no scheduled work".
const never = ^uint64(0)

// tick runs one cycle of component work in the canonical order —
// mesh, wireless, events, cores — and reports whether anything
// happened: packets delivered, events executed, or cores ticked.
// Cores sleep through cycles where they can make no progress
// (cpu.Core.NeedsTick); their per-cycle statistics are settled
// analytically when they wake.
func (s *System) tick() bool {
	delivered := s.net.Tick(s.cycle)
	if !s.wchan.Idle() {
		s.wchan.Tick(s.cycle)
	}
	ran := s.events.RunDue(s.cycle)
	active := 0
	for _, c := range s.cores {
		if c.Done() || !c.NeedsTick(s.cycle) {
			continue
		}
		c.Tick(s.cycle)
		active++
		if c.Done() {
			s.running--
		}
	}
	return delivered > 0 || ran > 0 || active > 0
}

// horizon returns the earliest future cycle at which any component is
// scheduled to make progress: the next event, packet arrival, wireless
// wake, or core wake-up. It is capped by the watchdog cadences (the
// %1024 transaction-age check, the %512 checker sweep, MaxCycles+1) so
// a fast-forwarded run performs those checks on exactly the same
// cycles a serial run does — error reports stay byte-identical.
//
//vet:pure
func (s *System) horizon() uint64 {
	h := s.cycle + 1024 - s.cycle%1024 // txn-age watchdog cadence
	if s.checker != nil {
		if c := s.cycle + 512 - s.cycle%512; c < h {
			h = c
		}
	}
	if w := s.cfg.MaxCycles + 1; w > s.cycle && w < h {
		h = w
	}
	if at, ok := s.events.Next(); ok && at < h {
		h = at
	}
	if at := s.net.NextEvent(s.cycle); at < h {
		h = at
	}
	if at := s.wchan.NextWake(s.cycle); at < h {
		h = at
	}
	for _, c := range s.cores {
		if at := c.NextWake(); at < h {
			h = at
		}
	}
	return h
}

// fastForward jumps the cycle counter to just before the horizon
// (bounded by bound, exclusive), settling the wireless channel's
// per-cycle statistics for the skipped stretch. The caller has just
// run a fully quiescent cycle, so nothing observable happens in
// between: the next loop iteration lands exactly on the horizon.
func (s *System) fastForward(bound uint64) {
	h := s.horizon()
	if h > bound {
		h = bound
	}
	if h <= s.cycle+1 {
		return
	}
	if !s.wchan.Idle() {
		s.wchan.FastForward(s.cycle, h)
	}
	s.cycle = h - 1
}

// Run executes the machine until every core finishes (or the watchdog
// trips, which reports a protocol deadlock or runaway workload).
func (s *System) Run() (*Result, error) {
	ff := !s.cfg.NoFastForward
	for s.running > 0 {
		s.cycle++
		if s.protoErr != nil {
			return nil, fmt.Errorf("machine: run failed: %w\n%s", s.protoErr, s.Diagnose())
		}
		if s.cycle > s.cfg.MaxCycles {
			return nil, fmt.Errorf("%w at cycle %d with %d cores unfinished\n%s", ErrWatchdog, s.cycle, s.running, s.Diagnose())
		}
		if s.cycle%1024 == 0 {
			s.checkTxnAges()
		}
		busy := s.tick()
		if s.checker != nil && s.cycle%512 == 0 {
			if err := s.checker.CheckStructural(); err != nil {
				return nil, err
			}
		}
		if !busy && ff && s.protoErr == nil {
			s.fastForward(never)
		}
	}
	if s.protoErr != nil {
		return nil, fmt.Errorf("machine: run failed: %w\n%s", s.protoErr, s.Diagnose())
	}
	if s.checker != nil {
		if err := s.checker.CheckStructural(); err != nil {
			return nil, err
		}
		if err := s.checker.Err(); err != nil {
			return nil, err
		}
	}
	return s.result(), nil
}

// checkTxnAges is the per-transaction age watchdog: it finds the
// oldest in-flight coherence transaction across every directory and L1
// and latches a ProtocolError when it has been stuck longer than
// Config.TxnAgeLimit. Unlike the MaxCycles watchdog it names the
// culprit line and its full transaction state.
func (s *System) checkTxnAges() {
	info, ok := s.oldestTxn()
	if !ok || info.Age(s.cycle) <= s.cfg.TxnAgeLimit {
		return
	}
	s.ReportProtocolError(&coherence.ProtocolError{
		Cycle: s.cycle,
		Node:  info.Node,
		Ctrl:  info.Ctrl,
		Line:  info.Line,
		Reason: fmt.Sprintf("transaction stuck for %d cycles (limit %d)",
			info.Age(s.cycle), s.cfg.TxnAgeLimit),
		Dump: info.String(),
	})
}

// oldestTxn returns the oldest in-flight coherence transaction across
// all directories and L1s, if any.
func (s *System) oldestTxn() (coherence.TxnInfo, bool) {
	var best coherence.TxnInfo
	found := false
	for _, h := range s.homes {
		if info, ok := h.OldestTxn(); ok && (!found || info.Older(best)) {
			best, found = info, true
		}
	}
	for _, l1 := range s.l1s {
		if info, ok := l1.OldestPending(); ok && (!found || info.Older(best)) {
			best, found = info, true
		}
	}
	return best, found
}

// Diagnose renders a snapshot of stuck state for watchdog reports.
func (s *System) Diagnose() string {
	out := fmt.Sprintf("mesh pending=%d, wireless idle=%v tone=%d, events=%d\n",
		s.net.Pending(), s.wchan.Idle(), s.wchan.ToneHolds(), s.events.Len())
	if info, ok := s.oldestTxn(); ok {
		out += fmt.Sprintf("oldest txn: %s age=%d\n", info.String(), info.Age(s.cycle))
	}
	for i, c := range s.cores {
		if c.Done() {
			continue
		}
		c.CatchUp(s.cycle) // settle a sleeping core's stats before dumping
		out += fmt.Sprintf("core %d: %s\n", i, c.Describe())
		if s.l1s[i].HasPending() {
			out += fmt.Sprintf("  l1 %d: %s\n", i, s.l1s[i].Describe())
		}
	}
	for i, h := range s.homes {
		if h.HasBusy() {
			out += fmt.Sprintf("home %d: %s\n", i, h.Describe())
		}
	}
	return out
}

// Cycle returns the current cycle (for tests driving the loop manually).
func (s *System) Cycle() uint64 { return s.cycle }

// Step advances the machine n cycles regardless of completion (tests).
// Quiescent stretches inside the window fast-forward like Run does;
// the horizon is recomputed fresh each call because tests drive
// component state directly between Steps.
func (s *System) Step(n uint64) {
	ff := !s.cfg.NoFastForward
	target := s.cycle + n
	for s.cycle < target {
		s.cycle++
		busy := s.tick()
		if !busy && ff && s.protoErr == nil {
			s.fastForward(target + 1)
		}
	}
}

// L1 exposes a node's private cache controller (tests, checkers).
func (s *System) L1(i int) *coherence.L1Ctrl { return s.l1s[i] }

// Home exposes a node's directory controller (tests, checkers).
func (s *System) Home(i int) *coherence.HomeCtrl { return s.homes[i] }

// Core exposes a node's core (tests).
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// Mesh exposes the packet-level wired NoC (nil under FlitLevelNoC).
func (s *System) Mesh() *mesh.Mesh { return s.mesh }

// Net exposes the active wired NoC.
func (s *System) Net() mesh.Network { return s.net }

// meshStats reads the active NoC's measurement counters.
func (s *System) meshStats() (hops *stats.Histogram, flitHops, routerXings, packets uint64) {
	if s.fmesh != nil {
		return s.fmesh.HopsPerLeg, s.fmesh.FlitHops.Value(), s.fmesh.RouterXings.Value(), s.fmesh.Packets.Value()
	}
	return s.mesh.HopsPerLeg, s.mesh.FlitHops.Value(), s.mesh.RouterXings.Value(), s.mesh.Packets.Value()
}

// Wireless exposes the wireless channel (tests, stats).
func (s *System) Wireless() *wireless.Channel { return s.wchan }

// Injector exposes the fault injector (nil when no faults are
// configured).
func (s *System) Injector() *fault.Injector { return s.injector }

// Memory exposes the simulated off-chip memory image (tests,
// determinism fingerprinting via MemoryImage.Dump).
func (s *System) Memory() *coherence.MemoryImage { return s.memory }

// Config returns the (filled) configuration.
func (s *System) Config() Config { return s.cfg }

func (s *System) result() *Result {
	hops, flitHops, routerXings, packets := s.meshStats()
	r := &Result{
		Protocol:         s.cfg.Protocol,
		Nodes:            s.cfg.Nodes,
		Cycles:           s.cycle,
		SharersPerUpdate: stats.NewHistogram(0, 6, 11, 26, 50),
		MissLatency:      stats.NewHistogram(coherence.MissLatencyBins...),
		HopsPerLeg:       hops,
		MeshPackets:      packets,
		MemAccesses:      s.memAccesses.Value(),
	}
	var updSum, updCount uint64
	var llcAccesses, dirReqs uint64
	for i := range s.cores {
		cs := s.cores[i].Stats
		r.PerCore = append(r.PerCore, cs)
		r.Retired += cs.Retired
		r.MemStallCycles += cs.MemStallCycles
		r.Loads += cs.Loads
		r.Stores += cs.Stores
		r.RMWs += cs.RMWs
		r.LoadROBLat += cs.LoadROBLatency
		r.StoreROBLat += cs.StoreROBLatency

		ls := &s.l1s[i].Stats
		r.L1LoadMisses += ls.LoadMisses.Value()
		r.L1StoreMisses += ls.StoreMisses.Value()
		r.L1Hits += ls.LoadHits.Value() + ls.StoreHits.Value()
		r.L1Accesses += ls.L1Accesses.Value()
		r.WirelessWrites += ls.WirelessWrites.Value()
		r.UpdatesReceived += ls.UpdatesReceived.Value()
		r.SelfInvalidations += ls.SelfInvalidations.Value()
		r.NACKs += ls.NACKs.Value()
		r.MissLatency.Merge(ls.MissLatency)

		hs := &s.homes[i].Stats
		r.SToW += hs.SToW.Value()
		r.WToS += hs.WToS.Value()
		r.FaultDemotions += hs.FaultDemotions.Value()
		r.WirInvs += hs.WirInvs.Value()
		r.BroadcastInvs += hs.BroadcastInvs.Value()
		r.Invalidations += hs.Invalidations.Value()
		r.SharersPerUpdate.Merge(hs.SharersAtUpd)
		updSum += hs.UpdateSharerSum.Value()
		updCount += hs.SharersAtUpd.Total()
		llcAccesses += hs.LLCAccesses.Value()
		dirReqs += hs.GetS.Value() + hs.GetX.Value()
	}
	if updCount > 0 {
		r.MeanSharersPerUpdate = float64(updSum) / float64(updCount)
	}
	r.WirelessAttempts = s.wchan.Attempts.Value()
	r.WirelessCollisions = s.wchan.Collisions.Value()
	r.CollisionProb = s.wchan.CollisionProbability()
	r.WirelessCorrupted = s.wchan.Corrupted.Value()
	r.WirelessTxFailures = s.wchan.TxFailures.Value()
	if s.injector != nil {
		fs := &s.injector.Stats
		r.LinkFaultDelays = fs.LinkStalls.Value() + fs.LinkDrops.Value()
		r.DirFaultDelays = fs.DirDelays.Value()
	}

	r.Energy = energy.Compute(energy.Counts{
		Nodes:        s.cfg.Nodes,
		Cycles:       s.cycle,
		Retired:      r.Retired,
		L1Accesses:   r.L1Accesses,
		LLCAccesses:  llcAccesses,
		DirRequests:  dirReqs,
		FlitHops:     flitHops,
		RouterXings:  routerXings,
		MemAccesses:  s.memAccesses.Value(),
		WirelessBusy: s.wchan.BusyCycles.Value(),
		WirelessTxns: s.wchan.Successes.Value(),
		WirelessOn:   s.cfg.Protocol == coherence.WiDir,
	}, energy.Default())
	r.EnergyPJ = r.Energy.Total()
	return r
}
