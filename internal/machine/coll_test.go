package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// TestCollisionScalesWithUtilization pins the wireless-channel behaviour
// the Table VI sensitivity depends on: halving the shared-write traffic
// must cut both channel utilization and the collision probability.
func TestCollisionScalesWithUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("utilization sweep is slow")
	}
	probe := func(hotFrac float64) (coll, util float64) {
		p := workload.Profile{
			Name: "probe", PaperMPKI: 1, Steps: 2000, ComputePerMem: 8,
			HotLines: 12, HotAccessFrac: hotFrac, HotWriteFrac: 0.05,
			StreamFrac: 0.012, ReuseLines: 64, PrivateWriteFrac: 0.3,
		}
		cfg := DefaultConfig(64, coherence.WiDir)
		sys, err := NewSystem(cfg, workload.Program(p, 64, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.CollisionProb, float64(sys.Wireless().BusyCycles.Value()) / float64(r.Cycles)
	}
	cHigh, uHigh := probe(0.08)
	cLow, uLow := probe(0.02)
	if uLow >= uHigh {
		t.Fatalf("utilization did not drop with traffic: %.3f vs %.3f", uLow, uHigh)
	}
	if cLow >= cHigh {
		t.Fatalf("collision probability did not drop with traffic: %.3f vs %.3f", cLow, cHigh)
	}
	if cLow > 0.25 {
		t.Fatalf("light traffic collision probability %.3f unexpectedly high", cLow)
	}
}
