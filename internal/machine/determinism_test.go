package machine

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// runForFingerprint runs one simulation and returns byte-stable
// fingerprints of everything the run emits: the full Result (every
// counter, histogram, and energy figure) and the final off-chip memory
// image in ascending line order.
func runForFingerprint(t *testing.T, app string, p coherence.Protocol, seed uint64) (stats, mem string) {
	t.Helper()
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	prof = prof.Scale(0.08)
	cfg := DefaultConfig(16, p)
	cfg.MaxCycles = 100_000_000
	// A small directory forces LLC entry evictions, so the run
	// exercises the eviction victim selection (whose equal-lru
	// tie-break was once map-order dependent) and writes lines back to
	// the memory image, making the memory fingerprint non-vacuous.
	cfg.LLCEntriesPerSlice = 8
	sys, err := NewSystem(cfg, workload.Program(prof, cfg.Nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", r), sys.Memory().Dump()
}

// TestSerialRepeatByteIdentical is the determinism contract end to
// end: the same seed run twice serially must produce byte-identical
// stats and a byte-identical memory image. This is the dynamic
// counterpart of widir-lint's static rules — a map-ordered float sum,
// an unsorted dump, or an order-dependent eviction tie-break all fail
// here.
func TestSerialRepeatByteIdentical(t *testing.T) {
	for _, p := range []coherence.Protocol{coherence.Baseline, coherence.WiDir} {
		s1, m1 := runForFingerprint(t, "fmm", p, 5)
		s2, m2 := runForFingerprint(t, "fmm", p, 5)
		if s1 != s2 {
			t.Errorf("%v: stats differ between identical serial runs:\nrun1: %.400s\nrun2: %.400s", p, s1, s2)
		}
		if m1 != m2 {
			t.Errorf("%v: memory image dumps differ between identical serial runs", p)
		}
		if m1 == "" {
			t.Errorf("%v: memory image dump is empty; fingerprint is vacuous", p)
		}
	}
}
