package mesh

import (
	"fmt"

	"repro/internal/stats"
)

// FlitMesh is a flit-level wormhole-routed 2D mesh: input-buffered
// routers, XY dimension-order routing, round-robin switch arbitration,
// and credit-based flow control. It trades simulation speed for
// fidelity relative to Mesh's packet-level reservation model — head-of-
// line blocking, switch contention and backpressure emerge rather than
// being approximated. Both implement the Network interface, and the
// fidelity ablation benchmark compares them.
type FlitMesh struct {
	w, h    int
	deliver DeliverFunc
	bufCap  int

	routers []flitRouter
	seq     uint64

	// Free lists: flits and packet descriptors are recycled at ejection
	// rather than reallocated per Send — the flit loop is the hottest
	// allocation site of the fidelity model.
	flitFree []*flit
	pktFree  []*flitPacket
	// moves is the per-Tick staging buffer, reused across cycles.
	moves []flitMove

	// Measurements (same meaning as Mesh's).
	HopsPerLeg  *stats.Histogram
	FlitHops    stats.Counter
	RouterXings stats.Counter
	Packets     stats.Counter
	TotalLat    stats.Counter

	inflight int
}

// Network is the wired-NoC abstraction the machine drives: inject
// packets, advance a cycle (reporting how many packets were
// delivered), predict the next cycle Tick would do work (never when
// drained — used by the fast-forward horizon), and report drain state.
type Network interface {
	Send(now uint64, pkt Packet)
	Tick(now uint64) int
	NextEvent(now uint64) uint64
	Pending() int
}

var (
	_ Network = (*Mesh)(nil)
	_ Network = (*FlitMesh)(nil)
)

const flitPorts = 5 // N, S, E, W, Local

const (
	portE = iota
	portW
	portN
	portS
	portL
)

type flit struct {
	head, tail bool
	dstX, dstY int
	pkt        *flitPacket
}

type flitPacket struct {
	pkt      Packet
	injected uint64
	hops     int
	seq      uint64
}

// flitFIFO is a slice-backed input buffer. Popping advances a head
// index instead of shifting, and the backing array is reused once the
// queue drains, so steady-state traffic allocates nothing.
type flitFIFO struct {
	q    []*flit
	head int
}

func (f *flitFIFO) push(fl *flit) { f.q = append(f.q, fl) }

func (f *flitFIFO) front() *flit {
	if f.head == len(f.q) {
		return nil
	}
	return f.q[f.head]
}

func (f *flitFIFO) pop() *flit {
	fl := f.q[f.head]
	f.q[f.head] = nil // release for the free list's sake
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return fl
}

type flitRouter struct {
	in [flitPorts]flitFIFO // input FIFO buffers
	// buffered counts flits across all input FIFOs, letting Tick skip
	// routers with nothing to arbitrate.
	buffered int
	// grant[out] is the input port currently holding output port out
	// (wormhole: a packet owns the output until its tail passes), or -1.
	grant [flitPorts]int
	// rr[out] is the round-robin pointer for arbitration fairness.
	rr [flitPorts]int
	// credits[out] counts free downstream buffer slots.
	credits [flitPorts]int
}

// NewFlitMesh builds a w×h flit-level mesh delivering packets through
// fn. bufCap is the per-input-port buffer depth in flits (default 4).
func NewFlitMesh(w, h, bufCap int, fn DeliverFunc) *FlitMesh {
	if w <= 0 || h <= 0 {
		panic("mesh: dimensions must be positive")
	}
	if bufCap <= 0 {
		bufCap = 4
	}
	m := &FlitMesh{
		w: w, h: h, deliver: fn, bufCap: bufCap,
		routers:    make([]flitRouter, w*h),
		HopsPerLeg: stats.NewHistogram(0, 3, 6, 9, 12),
	}
	for i := range m.routers {
		r := &m.routers[i]
		for p := 0; p < flitPorts; p++ {
			r.grant[p] = -1
			r.credits[p] = bufCap
		}
		// The local ejection port has effectively unbounded drain.
		r.credits[portL] = 1 << 30
	}
	return m
}

// Nodes returns the node count.
func (m *FlitMesh) Nodes() int { return m.w * m.h }

func (m *FlitMesh) coord(n int) (x, y int) { return n % m.w, n / m.w }

// HopDistance returns the XY hop count (same as Mesh).
func (m *FlitMesh) HopDistance(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// newFlit takes a flit from the free list (or allocates one) and
// initializes it.
func (m *FlitMesh) newFlit(head, tail bool, dstX, dstY int, fp *flitPacket) *flit {
	var f *flit
	if n := len(m.flitFree); n > 0 {
		f = m.flitFree[n-1]
		m.flitFree[n-1] = nil
		m.flitFree = m.flitFree[:n-1]
	} else {
		f = new(flit)
	}
	f.head, f.tail, f.dstX, f.dstY, f.pkt = head, tail, dstX, dstY, fp
	return f
}

func (m *FlitMesh) freeFlit(f *flit) {
	f.pkt = nil
	m.flitFree = append(m.flitFree, f)
}

func (m *FlitMesh) newPacket(pkt Packet, now uint64) *flitPacket {
	var fp *flitPacket
	if n := len(m.pktFree); n > 0 {
		fp = m.pktFree[n-1]
		m.pktFree[n-1] = nil
		m.pktFree = m.pktFree[:n-1]
	} else {
		fp = new(flitPacket)
	}
	*fp = flitPacket{pkt: pkt, injected: now, seq: m.seq}
	return fp
}

// Send injects a packet. Injection is not backpressured at the source
// NIC (the NIC queue is modeled as unbounded); flits enter the local
// input port of the source router as buffer space allows.
func (m *FlitMesh) Send(now uint64, pkt Packet) {
	if pkt.Dst < 0 || pkt.Dst >= m.Nodes() || pkt.Src < 0 || pkt.Src >= m.Nodes() {
		panic(fmt.Sprintf("mesh: bad endpoints src=%d dst=%d", pkt.Src, pkt.Dst))
	}
	if pkt.Flits < 1 {
		pkt.Flits = 1
	}
	m.Packets.Inc()
	m.seq++
	m.HopsPerLeg.Observe(m.HopDistance(pkt.Src, pkt.Dst))
	fp := m.newPacket(pkt, now)
	dx, dy := m.coord(pkt.Dst)
	r := &m.routers[pkt.Src]
	for i := 0; i < pkt.Flits; i++ {
		r.in[portL].push(m.newFlit(i == 0, i == pkt.Flits-1, dx, dy, fp))
	}
	r.buffered += pkt.Flits
	m.inflight++
}

// route picks the output port for a flit at node n (XY routing).
func (m *FlitMesh) route(n int, f *flit) int {
	x, y := m.coord(n)
	switch {
	case f.dstX > x:
		return portE
	case f.dstX < x:
		return portW
	case f.dstY > y:
		return portN
	case f.dstY < y:
		return portS
	default:
		return portL
	}
}

// neighbor returns the node reached through out, and the input port the
// flit arrives on there.
func (m *FlitMesh) neighbor(n, out int) (next, inPort int) {
	switch out {
	case portE:
		return n + 1, portW
	case portW:
		return n - 1, portE
	case portN:
		return n + m.w, portS
	case portS:
		return n - m.w, portN
	}
	panic("mesh: neighbor of local port")
}

// Tick advances the mesh one cycle: every router moves at most one flit
// per output port, honoring wormhole grants and downstream credits.
// Movements are staged so a flit advances one hop per cycle.
type flitMove struct {
	fromNode, fromPort int
	out                int
}

// Tick implements Network. It returns the number of packets ejected
// at their destination this cycle.
func (m *FlitMesh) Tick(now uint64) int {
	if m.inflight == 0 {
		return 0
	}
	moves := m.moves[:0]
	// Stage: decide movements based on the state at cycle start.
	// Routers with no buffered flits have nothing to arbitrate; the
	// skip walks in ascending index order so staging stays
	// deterministic.
	for n := range m.routers {
		r := &m.routers[n]
		if r.buffered == 0 {
			continue
		}
		for out := 0; out < flitPorts; out++ {
			in := m.pickInput(n, out)
			if in < 0 {
				continue
			}
			if out != portL && r.credits[out] == 0 {
				continue
			}
			moves = append(moves, flitMove{fromNode: n, fromPort: in, out: out})
		}
	}
	m.moves = moves
	delivered := 0
	// Commit.
	for _, mv := range moves {
		r := &m.routers[mv.fromNode]
		f := r.in[mv.fromPort].pop()
		r.buffered--
		if f.head {
			r.grant[mv.out] = mv.fromPort
		}
		if f.tail {
			r.grant[mv.out] = -1
		}
		// Return a credit upstream for the buffer slot we freed.
		m.creditUpstream(mv.fromNode, mv.fromPort)

		if mv.out == portL {
			if f.tail {
				m.finish(now, f.pkt, mv.fromNode)
				delivered++
			}
			m.freeFlit(f)
			continue
		}
		next, inPort := m.neighbor(mv.fromNode, mv.out)
		r.credits[mv.out]--
		nr := &m.routers[next]
		nr.in[inPort].push(f)
		nr.buffered++
		m.FlitHops.Inc()
		if f.head {
			f.pkt.hops++
			m.RouterXings.Inc()
		}
	}
	return delivered
}

// NextEvent implements Network: the flit model makes progress every
// cycle while anything is in flight, so it never fast-forwards past
// live traffic.
//
//vet:pure
func (m *FlitMesh) NextEvent(now uint64) uint64 {
	if m.inflight == 0 {
		return never
	}
	return now + 1
}

// pickInput chooses which input port feeds the output this cycle:
// the current wormhole owner if one exists, else round-robin among
// inputs whose head flit routes to this output.
func (m *FlitMesh) pickInput(n, out int) int {
	r := &m.routers[n]
	if g := r.grant[out]; g >= 0 {
		if f := r.in[g].front(); f != nil {
			if !f.head && m.route(n, f) == out {
				return g
			}
			// A head flit here means the previous packet's tail passed
			// and a new packet won arbitration below.
			if f.head && m.route(n, f) == out {
				return g
			}
		}
		return -1 // owner has no flit buffered yet; hold the output
	}
	for i := 0; i < flitPorts; i++ {
		p := (r.rr[out] + i) % flitPorts
		f := r.in[p].front()
		if f == nil {
			continue
		}
		if !f.head {
			continue // mid-packet flit must follow its own grant
		}
		if m.route(n, f) != out {
			continue
		}
		r.rr[out] = (p + 1) % flitPorts
		return p
	}
	return -1
}

// creditUpstream returns one credit to the router that feeds the given
// input port (no-op for local injection ports).
func (m *FlitMesh) creditUpstream(node, inPort int) {
	if inPort == portL {
		return
	}
	up, upOut := m.upstream(node, inPort)
	m.routers[up].credits[upOut]++
}

func (m *FlitMesh) upstream(node, inPort int) (up, upOut int) {
	switch inPort {
	case portW:
		return node - 1, portE
	case portE:
		return node + 1, portW
	case portS:
		return node - m.w, portN
	case portN:
		return node + m.w, portS
	}
	panic("mesh: upstream of local port")
}

func (m *FlitMesh) finish(now uint64, fp *flitPacket, at int) {
	m.inflight--
	m.TotalLat.Add(now - fp.injected)
	pkt := fp.pkt
	*fp = flitPacket{}
	m.pktFree = append(m.pktFree, fp)
	m.deliver(now, pkt)
}

// Pending returns the number of packets still in flight.
//
//vet:pure
func (m *FlitMesh) Pending() int { return m.inflight }
