package mesh

import (
	"testing"
	"testing/quick"
)

func pumpFlit(m *FlitMesh, until uint64) {
	for c := uint64(1); c <= until; c++ {
		m.Tick(c)
	}
}

func TestFlitDelivery(t *testing.T) {
	ds, fn := collect()
	m := NewFlitMesh(4, 4, 4, fn)
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 1, Payload: "x"})
	pumpFlit(m, 50)
	if len(*ds) != 1 {
		t.Fatalf("deliveries = %d", len(*ds))
	}
	if (*ds)[0].pkt.Payload != "x" {
		t.Fatal("payload lost")
	}
	if m.Pending() != 0 {
		t.Fatal("packet still pending")
	}
}

func TestFlitSelfDelivery(t *testing.T) {
	ds, fn := collect()
	m := NewFlitMesh(2, 2, 4, fn)
	m.Send(0, Packet{Src: 1, Dst: 1, Flits: 3})
	pumpFlit(m, 20)
	if len(*ds) != 1 {
		t.Fatalf("self delivery = %d", len(*ds))
	}
}

func TestFlitMultiFlitWormhole(t *testing.T) {
	ds, fn := collect()
	m := NewFlitMesh(4, 1, 2, fn)
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 5})
	pumpFlit(m, 60)
	if len(*ds) != 1 {
		t.Fatalf("deliveries = %d", len(*ds))
	}
	// 5 flits x 3 hops of link traversals.
	if m.FlitHops.Value() != 15 {
		t.Fatalf("flit-hops = %d, want 15", m.FlitHops.Value())
	}
	if m.RouterXings.Value() != 3 {
		t.Fatalf("router crossings = %d, want 3", m.RouterXings.Value())
	}
}

func TestFlitAllDeliverUnderLoad(t *testing.T) {
	if err := quick.Check(func(seeds []uint16) bool {
		if len(seeds) > 30 {
			seeds = seeds[:30]
		}
		ds, fn := collect()
		m := NewFlitMesh(4, 4, 2, fn)
		for i, s := range seeds {
			src := int(s) % 16
			dst := int(s>>4) % 16
			m.Send(uint64(i/4), Packet{Src: src, Dst: dst, Flits: int(s%5) + 1, Payload: i})
		}
		pumpFlit(m, 5000)
		if len(*ds) != len(seeds) {
			return false
		}
		seen := map[int]bool{}
		for _, d := range *ds {
			if seen[d.pkt.Payload.(int)] {
				return false
			}
			seen[d.pkt.Payload.(int)] = true
		}
		return m.Pending() == 0
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlitFIFOPerPair(t *testing.T) {
	// Same-pair packets must deliver in order (the protocol needs it).
	ds, fn := collect()
	m := NewFlitMesh(4, 4, 2, fn)
	for i := 0; i < 10; i++ {
		m.Send(uint64(i), Packet{Src: 2, Dst: 13, Flits: i%4 + 1, Payload: i})
	}
	pumpFlit(m, 2000)
	if len(*ds) != 10 {
		t.Fatalf("deliveries = %d", len(*ds))
	}
	for i, d := range *ds {
		if d.pkt.Payload.(int) != i {
			t.Fatalf("out of order: %v", d.pkt.Payload)
		}
	}
}

func TestFlitContentionSlowsDelivery(t *testing.T) {
	// Two long packets crossing one link must serialize.
	free, fn := collect()
	m := NewFlitMesh(4, 1, 2, fn)
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 8, Payload: "a"})
	pumpFlit(m, 100)
	soloAt := (*free)[0].at

	busy, fn2 := collect()
	m2 := NewFlitMesh(4, 1, 2, fn2)
	m2.Send(0, Packet{Src: 0, Dst: 3, Flits: 8, Payload: "a"})
	m2.Send(0, Packet{Src: 1, Dst: 3, Flits: 8, Payload: "b"})
	pumpFlit(m2, 300)
	if len(*busy) != 2 {
		t.Fatalf("deliveries = %d", len(*busy))
	}
	last := (*busy)[1].at
	if last <= soloAt {
		t.Fatalf("contended delivery (%d) not slower than solo (%d)", last, soloAt)
	}
}

func TestFlitHopsHistogram(t *testing.T) {
	_, fn := collect()
	m := NewFlitMesh(8, 8, 4, fn)
	m.Send(0, Packet{Src: 0, Dst: 63, Flits: 1})
	pumpFlit(m, 100)
	if m.HopsPerLeg.Count(4) != 1 {
		t.Fatalf("hop histogram: %s", m.HopsPerLeg)
	}
}

func TestFlitBadEndpointsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad endpoints did not panic")
		}
	}()
	m := NewFlitMesh(2, 2, 2, func(uint64, Packet) {})
	m.Send(0, Packet{Src: 0, Dst: 99, Flits: 1})
}

func TestFlitLatencyVsPacketModel(t *testing.T) {
	// The two mesh models should agree within a small factor on an
	// uncontended transfer — they model the same network.
	dsP, fnP := collect()
	p := New(8, 8, fnP)
	p.Send(0, Packet{Src: 0, Dst: 63, Flits: 5})
	pump(p, 200)

	dsF, fnF := collect()
	f := NewFlitMesh(8, 8, 4, fnF)
	f.Send(0, Packet{Src: 0, Dst: 63, Flits: 5})
	pumpFlit(f, 200)

	lp := (*dsP)[0].at
	lf := (*dsF)[0].at
	if lf < lp/2 || lf > lp*3 {
		t.Fatalf("model divergence: packet=%d flit=%d", lp, lf)
	}
}
