// Package mesh implements the wired 2D-mesh packet-switched NoC
// (Table III: 1 cycle/hop, 128-bit links). Packets route XY with
// per-link serialization: a link is occupied for one cycle per flit, so
// concurrent traffic queues behind earlier packets. Delivery times are
// computed at injection by walking the route and reserving link slots,
// which models store-and-forward contention deterministically and
// cheaply; the machine drains arrivals every cycle.
package mesh

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// LinkBits is the link width in bits (Table III).
const LinkBits = 128

// FlitsFor returns the number of flits for a payload of the given size
// in bytes (at least 1).
func FlitsFor(bytes int) int {
	bits := bytes * 8
	f := (bits + LinkBits - 1) / LinkBits
	if f < 1 {
		f = 1
	}
	return f
}

// Packet is one message in flight on the mesh.
type Packet struct {
	Src, Dst int
	Flits    int
	Payload  any
}

// DeliverFunc receives a packet when it arrives at its destination.
type DeliverFunc func(now uint64, pkt Packet)

// Mesh is the wired network. Node i sits at (i%W, i/W).
type Mesh struct {
	w, h    int
	deliver DeliverFunc

	// Jitter, when non-zero, adds a pseudo-random 0..Jitter-1 cycle
	// delay to every packet while preserving per-(src,dst) FIFO order.
	// It exists for schedule-exploration testing: protocol correctness
	// must not depend on the exact delivery timing the contention model
	// produces, only on the FIFO property.
	Jitter     int
	jitterSeed uint64
	lastPair   map[uint32]uint64 // per-(src,dst) last arrival, FIFO floor

	// FaultDelay, when non-nil, draws extra delay cycles for one packet
	// routed from src to dst (fault injection: link stalls and
	// link-level retransmissions; internal/fault supplies the drawer).
	// While set, every packet — delayed or not — goes through the
	// per-(src,dst) FIFO floor, so an undelayed packet can never
	// overtake a delayed one and the wired protocol's ordering
	// assumptions survive the faults.
	FaultDelay func(src, dst int) uint64

	// linkFree[d] is the first cycle at which link d is free. Links are
	// indexed directionally: for each node, 4 outgoing links (E,W,N,S).
	linkFree []uint64

	inflight pktHeap

	// Trace receives one EvMeshLeg per routed packet; nil disables
	// emission. (The flit-level mesh reports no per-leg events; the
	// machine-level msg-send/msg-recv pair covers both NoC models.)
	Trace obs.Sink

	// Measurements.
	HopsPerLeg  *stats.Histogram // Table V bins
	FlitHops    stats.Counter    // energy: flit×hop traversals
	RouterXings stats.Counter    // energy: packet×router traversals
	Packets     stats.Counter
	TotalLat    stats.Counter // sum of injection→delivery latencies
}

const (
	dirE = iota
	dirW
	dirN
	dirS
	dirCount
)

// New builds a w×h mesh delivering packets through fn.
func New(w, h int, fn DeliverFunc) *Mesh {
	if w <= 0 || h <= 0 {
		panic("mesh: dimensions must be positive")
	}
	return &Mesh{
		w:          w,
		h:          h,
		deliver:    fn,
		linkFree:   make([]uint64, w*h*dirCount),
		HopsPerLeg: stats.NewHistogram(0, 3, 6, 9, 12),
	}
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.w * m.h }

func (m *Mesh) coord(n int) (x, y int) { return n % m.w, n / m.w }

// HopDistance returns the XY-route hop count between two nodes.
func (m *Mesh) HopDistance(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Send injects a packet at cycle now. The delivery callback fires at the
// computed arrival cycle (during a subsequent Tick). Sending to self
// delivers next cycle without touching any link.
func (m *Mesh) Send(now uint64, pkt Packet) {
	if pkt.Dst < 0 || pkt.Dst >= m.Nodes() || pkt.Src < 0 || pkt.Src >= m.Nodes() {
		panic(fmt.Sprintf("mesh: bad endpoints src=%d dst=%d", pkt.Src, pkt.Dst))
	}
	if pkt.Flits < 1 {
		pkt.Flits = 1
	}
	m.Packets.Inc()
	hops := m.HopDistance(pkt.Src, pkt.Dst)
	m.HopsPerLeg.Observe(hops)

	t := now
	if hops == 0 {
		t = now + 1 // local NIC turnaround
	} else {
		x, y := m.coord(pkt.Src)
		dx, dy := m.coord(pkt.Dst)
		flits := uint64(pkt.Flits)
		for x != dx || y != dy {
			// Links are owned by the node a hop leaves from.
			var d int
			owner := y*m.w + x
			switch {
			case x < dx:
				d, x = dirE, x+1
			case x > dx:
				d, x = dirW, x-1
			case y < dy:
				d, y = dirN, y+1
			default:
				d, y = dirS, y-1
			}
			li := owner*dirCount + d
			if m.linkFree[li] > t {
				t = m.linkFree[li]
			}
			m.linkFree[li] = t + flits
			t++ // hop latency
		}
		m.FlitHops.Add(uint64(hops) * flits)
		m.RouterXings.Add(uint64(hops))
	}
	if m.Jitter > 0 {
		m.jitterSeed = m.jitterSeed*6364136223846793005 + 1442695040888963407
		t += (m.jitterSeed >> 33) % uint64(m.Jitter)
	}
	if m.FaultDelay != nil {
		t += m.FaultDelay(pkt.Src, pkt.Dst)
	}
	if m.Jitter > 0 || m.FaultDelay != nil {
		key := uint32(pkt.Src)<<16 | uint32(pkt.Dst)
		if m.lastPair == nil {
			m.lastPair = make(map[uint32]uint64)
		}
		if last := m.lastPair[key]; t <= last {
			t = last + 1 // FIFO per pair survives the jitter and faults
		}
		m.lastPair[key] = t
	}
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvMeshLeg,
			Node: int32(pkt.Src), Other: int32(pkt.Dst), Line: obs.NoLine,
			A: uint64(hops), B: t})
	}
	m.TotalLat.Add(t - now)
	m.inflight.push(inflightPkt{at: t, seq: m.Packets.Value(), pkt: pkt})
}

// Tick delivers every packet whose arrival cycle is <= now, returning
// the number delivered. The machine calls this once per cycle before
// controllers run.
func (m *Mesh) Tick(now uint64) int {
	delivered := 0
	for len(m.inflight) > 0 && m.inflight[0].at <= now {
		ip := m.inflight.pop()
		m.deliver(now, ip.pkt)
		delivered++
	}
	return delivered
}

// Pending returns the number of packets still in flight.
//
//vet:pure
func (m *Mesh) Pending() int { return len(m.inflight) }

// NextArrival returns the earliest in-flight arrival cycle and whether
// any packet is in flight; used by the machine to skip idle cycles.
func (m *Mesh) NextArrival() (uint64, bool) {
	if len(m.inflight) == 0 {
		return 0, false
	}
	return m.inflight[0].at, true
}

// NextEvent returns the earliest cycle > now at which Tick would
// deliver a packet, or never if nothing is in flight. Arrival
// reservations are computed at Send time, so the heap top is exact.
//
//vet:pure
func (m *Mesh) NextEvent(now uint64) uint64 {
	if len(m.inflight) == 0 {
		return never
	}
	if at := m.inflight[0].at; at > now {
		return at
	}
	return now + 1
}

// never is the NextEvent sentinel for "no scheduled work".
const never = ^uint64(0)

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

type inflightPkt struct {
	at  uint64
	seq uint64 // FIFO tie-break for determinism
	pkt Packet
}

// pktHeap is a hand-rolled min-heap: container/heap's any-typed API
// would box every injected packet, and Send is on the simulator's
// hottest path. The backing array is reused across push/pop cycles.
type pktHeap []inflightPkt

func (h pktHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *pktHeap) push(p inflightPkt) {
	*h = append(*h, p)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *pktHeap) pop() inflightPkt {
	q := *h
	it := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = inflightPkt{} // release the payload reference
	*h = q[:n]
	q = q[:n]
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return it
}
