package mesh

import (
	"testing"
	"testing/quick"
)

type delivery struct {
	at  uint64
	pkt Packet
}

func collect() (*[]delivery, DeliverFunc) {
	var ds []delivery
	return &ds, func(now uint64, pkt Packet) {
		ds = append(ds, delivery{now, pkt})
	}
}

func pump(m *Mesh, until uint64) {
	for c := uint64(1); c <= until; c++ {
		m.Tick(c)
	}
}

func TestFlitsFor(t *testing.T) {
	if FlitsFor(8) != 1 {
		t.Fatalf("control packet flits = %d", FlitsFor(8))
	}
	if FlitsFor(72) != 5 {
		t.Fatalf("data packet flits = %d", FlitsFor(72))
	}
	if FlitsFor(0) != 1 {
		t.Fatal("zero-byte packet must still be one flit")
	}
}

func TestHopDistance(t *testing.T) {
	m := New(4, 4, func(uint64, Packet) {})
	if m.HopDistance(0, 0) != 0 {
		t.Fatal("self distance")
	}
	if m.HopDistance(0, 3) != 3 {
		t.Fatal("row distance")
	}
	if m.HopDistance(0, 15) != 6 {
		t.Fatal("corner distance")
	}
	if m.HopDistance(5, 6) != 1 {
		t.Fatal("neighbor distance")
	}
}

func TestDeliveryLatency(t *testing.T) {
	ds, fn := collect()
	m := New(4, 4, fn)
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 1})
	pump(m, 10)
	if len(*ds) != 1 {
		t.Fatalf("deliveries = %d", len(*ds))
	}
	// 3 hops at 1 cycle/hop, uncontended.
	if (*ds)[0].at != 3 {
		t.Fatalf("arrival at %d, want 3", (*ds)[0].at)
	}
}

func TestSelfDelivery(t *testing.T) {
	ds, fn := collect()
	m := New(2, 2, fn)
	m.Send(5, Packet{Src: 1, Dst: 1, Flits: 1})
	pump(m, 10)
	if len(*ds) != 1 || (*ds)[0].at != 6 {
		t.Fatalf("self delivery: %+v", *ds)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	ds, fn := collect()
	m := New(4, 1, fn)
	// Two 5-flit packets over the same first link, injected together.
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 5})
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 5})
	pump(m, 50)
	if len(*ds) != 2 {
		t.Fatalf("deliveries = %d", len(*ds))
	}
	if (*ds)[1].at <= (*ds)[0].at {
		t.Fatal("contended packets arrived together")
	}
	// The second must wait ~5 cycles of serialization per shared link.
	if (*ds)[1].at < (*ds)[0].at+5 {
		t.Fatalf("insufficient serialization: %d then %d", (*ds)[0].at, (*ds)[1].at)
	}
}

func TestFIFOPerSourceDest(t *testing.T) {
	// Messages between one src/dst pair must deliver in injection
	// order regardless of size — the coherence protocol depends on it.
	if err := quick.Check(func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		ds, fn := collect()
		m := New(4, 4, fn)
		for i, s := range sizes {
			m.Send(uint64(i/3), Packet{Src: 1, Dst: 14, Flits: int(s%5) + 1, Payload: i})
		}
		pump(m, 1000)
		if len(*ds) != len(sizes) {
			return false
		}
		for i, d := range *ds {
			if d.pkt.Payload.(int) != i {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsHistogram(t *testing.T) {
	_, fn := collect()
	m := New(8, 8, fn)
	m.Send(0, Packet{Src: 0, Dst: 63, Flits: 1}) // 14 hops -> 12+ bin
	m.Send(0, Packet{Src: 0, Dst: 1, Flits: 1})  // 1 hop -> 0-2 bin
	pump(m, 50)
	if m.HopsPerLeg.Count(4) != 1 || m.HopsPerLeg.Count(0) != 1 {
		t.Fatalf("hop histogram: %s", m.HopsPerLeg)
	}
}

func TestEnergyCounters(t *testing.T) {
	_, fn := collect()
	m := New(4, 1, fn)
	m.Send(0, Packet{Src: 0, Dst: 2, Flits: 3})
	pump(m, 20)
	if m.FlitHops.Value() != 6 { // 2 hops x 3 flits
		t.Fatalf("flit-hops = %d", m.FlitHops.Value())
	}
	if m.RouterXings.Value() != 2 {
		t.Fatalf("router crossings = %d", m.RouterXings.Value())
	}
	if m.Packets.Value() != 1 {
		t.Fatalf("packets = %d", m.Packets.Value())
	}
}

func TestPendingAndNextArrival(t *testing.T) {
	_, fn := collect()
	m := New(4, 4, fn)
	if _, ok := m.NextArrival(); ok {
		t.Fatal("idle mesh reported an arrival")
	}
	m.Send(0, Packet{Src: 0, Dst: 3, Flits: 1})
	if m.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	at, ok := m.NextArrival()
	if !ok || at != 3 {
		t.Fatalf("next arrival = %d", at)
	}
	pump(m, 5)
	if m.Pending() != 0 {
		t.Fatal("packet not drained")
	}
}

func TestBadEndpointsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad destination did not panic")
		}
	}()
	m := New(2, 2, func(uint64, Packet) {})
	m.Send(0, Packet{Src: 0, Dst: 9, Flits: 1})
}

func TestZeroFlitsClamped(t *testing.T) {
	ds, fn := collect()
	m := New(2, 2, fn)
	m.Send(0, Packet{Src: 0, Dst: 1})
	pump(m, 10)
	if len(*ds) != 1 {
		t.Fatal("zero-flit packet lost")
	}
}

func TestJitterPreservesFIFO(t *testing.T) {
	if err := quick.Check(func(seed uint16, sizes []uint8) bool {
		if len(sizes) > 15 {
			sizes = sizes[:15]
		}
		ds, fn := collect()
		m := New(4, 4, fn)
		m.Jitter = int(seed%37) + 2
		for i, s := range sizes {
			m.Send(uint64(i), Packet{Src: 1, Dst: 14, Flits: int(s%5) + 1, Payload: i})
		}
		pump(m, 5000)
		if len(*ds) != len(sizes) {
			return false
		}
		for i, d := range *ds {
			if d.pkt.Payload.(int) != i {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
