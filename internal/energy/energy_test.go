package energy

import "testing"

func baseCounts() Counts {
	// Event rates measured from a real 64-core Baseline run (barnes).
	return Counts{
		Nodes:       64,
		Cycles:      46_000,
		Retired:     2_270_000,
		L1Accesses:  482_000,
		LLCAccesses: 41_000,
		DirRequests: 40_000,
		FlitHops:    2_480_000,
		RouterXings: 1_570_000,
		MemAccesses: 10_500,
	}
}

func TestBaselineHasNoWNoC(t *testing.T) {
	b := Compute(baseCounts(), Default())
	if b.Get(CatWNoC) != 0 {
		t.Fatal("wired-only machine charged for WNoC")
	}
	if b.Total() <= 0 {
		t.Fatal("zero total energy")
	}
}

func TestWirelessAddsWNoC(t *testing.T) {
	c := baseCounts()
	c.WirelessOn = true
	c.WirelessBusy = 10_000
	c.WirelessTxns = 2_000
	b := Compute(c, Default())
	if b.Get(CatWNoC) <= 0 {
		t.Fatal("no WNoC energy")
	}
	share := b.Share(CatWNoC)
	if share <= 0 || share > 0.25 {
		t.Fatalf("WNoC share %.3f outside the modest range the paper reports", share)
	}
}

func TestBaselineShares(t *testing.T) {
	// The coefficient calibration should land near the paper's Baseline
	// breakdown: ~60% core, ~5% L1, ~20% L2+Dir, ~15% NoC.
	b := Compute(baseCounts(), Default())
	checks := []struct {
		cat    string
		lo, hi float64
	}{
		{CatCore, 0.40, 0.75},
		{CatL1, 0.005, 0.12},
		{CatL2, 0.08, 0.35},
		{CatNoC, 0.05, 0.30},
	}
	for _, c := range checks {
		s := b.Share(c.cat)
		if s < c.lo || s > c.hi {
			t.Errorf("%s share %.3f outside [%.2f, %.2f]", c.cat, s, c.lo, c.hi)
		}
	}
}

func TestEnergyScalesWithEvents(t *testing.T) {
	a := Compute(baseCounts(), Default())
	c := baseCounts()
	c.FlitHops *= 2
	c.RouterXings *= 2
	b := Compute(c, Default())
	if b.Get(CatNoC) <= a.Get(CatNoC) {
		t.Fatal("NoC energy did not grow with traffic")
	}
	if b.Get(CatCore) != a.Get(CatCore) {
		t.Fatal("core energy changed without core events")
	}
}

func TestCategoriesOrdered(t *testing.T) {
	b := Compute(baseCounts(), Default())
	cats := b.Categories()
	want := []string{CatCore, CatL1, CatL2, CatNoC, CatWNoC}
	for i, c := range want {
		if cats[i] != c {
			t.Fatalf("category order %v", cats)
		}
	}
}
