// Package energy computes the Figure 9 energy breakdown from event
// counts. Coefficients are calibrated per-event energies (pJ) derived
// from the McPAT/CACTI/DSENT modeling the paper describes and the
// Table III wireless figures (TX/RX 39.4 mW, idle 26.9 mW at 1 GHz,
// i.e. 39.4 pJ and 26.9 pJ per cycle per active/idle transceiver). The
// evaluation reports energy *relative to Baseline* and its breakdown,
// so what matters is the ratio structure: the defaults reproduce the
// paper's Baseline shares (≈60% core, 5% L1, 20% L2+directory, 15%
// wired NoC).
package energy

import "repro/internal/stats"

// Coefficients are per-event energies in picojoules.
type Coefficients struct {
	CoreCyclePJ    float64 // static + clock per core cycle
	CoreInstrPJ    float64 // dynamic per retired instruction
	L1AccessPJ     float64
	LLCAccessPJ    float64
	LLCStaticPJ    float64 // LLC slice leakage per cycle per node
	DirLookupPJ    float64 // directory access per home request
	FlitHopPJ      float64 // wired link traversal per flit
	RouterPJ       float64 // router traversal per packet
	MemAccessPJ    float64 // off-chip access per line
	WirelessTxPJ   float64 // per busy channel cycle at the transmitter
	WirelessRxPJ   float64 // per busy channel cycle per receiving node
	WirelessIdlePJ float64 // per cycle per node, amplifiers gated
	WirelessWakePJ float64 // transient energy per gating event (1.14 pJ)
}

// Default returns the calibrated coefficient set.
func Default() Coefficients {
	return Coefficients{
		CoreCyclePJ:    10.0,
		CoreInstrPJ:    14.0,
		L1AccessPJ:     10.6,
		LLCAccessPJ:    60.0,
		LLCStaticPJ:    5.2,
		DirLookupPJ:    10.0,
		FlitHopPJ:      4.0,
		RouterPJ:       3.4,
		MemAccessPJ:    200.0,
		WirelessTxPJ:   39.4,
		WirelessRxPJ:   2.0, // per receiving node; the paper power-gates receive amplifiers
		WirelessIdlePJ: 0.9, // residual after power gating, amortized
		WirelessWakePJ: 1.14,
	}
}

// Counts are the event totals of one run.
type Counts struct {
	Nodes        int
	Cycles       uint64
	Retired      uint64
	L1Accesses   uint64
	LLCAccesses  uint64
	DirRequests  uint64
	FlitHops     uint64
	RouterXings  uint64
	MemAccesses  uint64
	WirelessBusy uint64 // channel-busy cycles
	WirelessTxns uint64 // successful transmissions (for wake transients)
	WirelessOn   bool   // WiDir has transceivers; Baseline does not
}

// Categories of the Figure 9 breakdown.
const (
	CatCore = "Core"
	CatL1   = "L1"
	CatL2   = "L2+Dir"
	CatNoC  = "NoC"
	CatWNoC = "WNoC"
)

// Compute tallies the run's energy into the Figure 9 categories
// (picojoules).
func Compute(c Counts, k Coefficients) *stats.Breakdown {
	b := stats.NewBreakdown(CatCore, CatL1, CatL2, CatNoC, CatWNoC)
	b.Add(CatCore, float64(c.Cycles)*float64(c.Nodes)*k.CoreCyclePJ+float64(c.Retired)*k.CoreInstrPJ)
	b.Add(CatL1, float64(c.L1Accesses)*k.L1AccessPJ)
	b.Add(CatL2, float64(c.LLCAccesses)*k.LLCAccessPJ+
		float64(c.DirRequests)*k.DirLookupPJ+
		float64(c.MemAccesses)*k.MemAccessPJ+
		float64(c.Cycles)*float64(c.Nodes)*k.LLCStaticPJ)
	b.Add(CatNoC, float64(c.FlitHops)*k.FlitHopPJ+float64(c.RouterXings)*k.RouterPJ)
	if c.WirelessOn {
		w := float64(c.WirelessBusy) * (k.WirelessTxPJ + k.WirelessRxPJ*float64(c.Nodes-1))
		w += float64(c.Cycles) * float64(c.Nodes) * k.WirelessIdlePJ
		w += float64(c.WirelessTxns) * 2 * k.WirelessWakePJ
		b.Add(CatWNoC, w)
	}
	return b
}
