package serve

import (
	"bytes"
	"fmt"

	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/obs"
)

// resultCSV renders one run's headline metrics as a two-line CSV —
// the machine-readable artifact stored with every cache entry. Figure
// series CSVs (exp.CSVFig8 etc.) aggregate across runs; this is the
// per-run row those series are built from.
func resultCSV(k exp.RunKey, res *machine.Result) []byte {
	var b bytes.Buffer
	stallFrac := 0.0
	if res.Cycles > 0 && res.Nodes > 0 {
		stallFrac = float64(res.MemStallCycles) / float64(res.Cycles*uint64(res.Nodes))
	}
	fmt.Fprintln(&b, "protocol,app,cores,seed,cycles,retired,mpki,mem_stall_frac,mean_sharers_per_update,collision_prob,energy_pj")
	fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%.4f,%.4f,%.2f,%.4f,%.1f\n",
		k.Protocol, k.App.Name, k.Cores, k.Seed,
		res.Cycles, res.Retired, res.MPKI(), stallFrac,
		res.MeanSharersPerUpdate, res.CollisionProb, res.EnergyPJ)
	return b.Bytes()
}

// traceArtifacts renders the full artifact set for a traced run:
// the per-run CSV plus the JSONL event log and Perfetto trace.
func traceArtifacts(k exp.RunKey, tr *exp.TraceRun) (map[string][]byte, error) {
	var jsonl, perfetto bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, tr.Events); err != nil {
		return nil, fmt.Errorf("serve: render jsonl: %w", err)
	}
	if err := obs.WritePerfetto(&perfetto, tr.Events); err != nil {
		return nil, fmt.Errorf("serve: render perfetto: %w", err)
	}
	return map[string][]byte{
		ArtifactCSV:      resultCSV(k, tr.Result),
		ArtifactJSONL:    jsonl.Bytes(),
		ArtifactPerfetto: perfetto.Bytes(),
	}, nil
}
