package serve

import (
	"bytes"
	"fmt"

	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/obs"
)

// CSVHeader is the header row of the per-run metrics CSV — shared by
// the per-entry result.csv artifact and widir-client's rendered sweep
// output, so the two are row-compatible.
const CSVHeader = "protocol,app,cores,seed,cycles,retired,mpki,mem_stall_frac,mean_sharers_per_update,collision_prob,energy_pj"

// CSVRow renders one run's headline metrics as a CSV row (newline
// terminated) matching CSVHeader.
func CSVRow(k exp.RunKey, res *machine.Result) string {
	stallFrac := 0.0
	if res.Cycles > 0 && res.Nodes > 0 {
		stallFrac = float64(res.MemStallCycles) / float64(res.Cycles*uint64(res.Nodes))
	}
	return fmt.Sprintf("%s,%s,%d,%d,%d,%d,%.4f,%.4f,%.2f,%.4f,%.1f\n",
		k.Protocol, k.App.Name, k.Cores, k.Seed,
		res.Cycles, res.Retired, res.MPKI(), stallFrac,
		res.MeanSharersPerUpdate, res.CollisionProb, res.EnergyPJ)
}

// resultCSV renders one run's headline metrics as a two-line CSV —
// the machine-readable artifact stored with every cache entry. Figure
// series CSVs (exp.CSVFig8 etc.) aggregate across runs; this is the
// per-run row those series are built from.
func resultCSV(k exp.RunKey, res *machine.Result) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, CSVHeader)
	b.WriteString(CSVRow(k, res))
	return b.Bytes()
}

// traceArtifacts renders the full artifact set for a traced run:
// the per-run CSV plus the JSONL event log and Perfetto trace.
func traceArtifacts(k exp.RunKey, tr *exp.TraceRun) (map[string][]byte, error) {
	var jsonl, perfetto bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, tr.Events); err != nil {
		return nil, fmt.Errorf("serve: render jsonl: %w", err)
	}
	if err := obs.WritePerfetto(&perfetto, tr.Events); err != nil {
		return nil, fmt.Errorf("serve: render perfetto: %w", err)
	}
	return map[string][]byte{
		ArtifactCSV:      resultCSV(k, tr.Result),
		ArtifactJSONL:    jsonl.Bytes(),
		ArtifactPerfetto: perfetto.Bytes(),
	}, nil
}
