package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
)

// TestServeSoak floods a small farm with hundreds of overlapping
// sweeps from several clients and checks the service contract under
// overload:
//
//   - the queue never exceeds its bound (observed via /stats polling);
//   - overload surfaces as 429 + Retry-After, not as queuing beyond
//     the bound or dropped accepted work;
//   - every accepted job runs to completion with no failed runs;
//   - results stay byte-identical to a direct serial exp.Runner.
//
// The sweep shape is chosen so saturation is structural, not a timing
// accident: each sweep carries 8 fresh-seed runs against an 8-run
// queue drained by a single worker, so an offer only fits while the
// queue is completely empty — any overlap at all is a 429.
func TestServeSoak(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir(), Workers: 1, MaxQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients         = 6
		sweepsPerClient = 30
		runsPerSweep    = 8
	)
	var (
		rejected  atomic.Uint64
		accepted  = make([][]string, clients) // job IDs per client
		seedSeq   atomic.Uint64
		wg        sync.WaitGroup
		stopPoll  = make(chan struct{})
		pollErrCh = make(chan string, 1)
	)

	// Depth poller: the queue bound must hold at every observation.
	var polls atomic.Uint64
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/api/v1/stats")
			if err != nil {
				continue
			}
			var st StatsSnapshot
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			polls.Add(1)
			if st.Queue.Depth > st.Queue.Max {
				select {
				case pollErrCh <- fmt.Sprintf("queue depth %d exceeds bound %d", st.Queue.Depth, st.Queue.Max):
				default:
				}
				return
			}
		}
	}()

	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			for i := 0; i < sweepsPerClient; i++ {
				// Fresh seeds per sweep: every accepted run is real
				// work, so the queue actually fills.
				base := seedSeq.Add(runsPerSweep)
				seeds := make([]uint64, runsPerSweep)
				for j := range seeds {
					seeds[j] = base + uint64(j)
				}
				sr := SweepRequest{
					Client:    client,
					Protocols: []string{"widir"},
					Apps:      []string{"water-spa"},
					Cores:     4,
					Scale:     0.1,
					Seeds:     seeds,
				}
				data, _ := json.Marshal(sr)
				resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Errorf("%s sweep %d: %v", client, i, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					var body struct {
						Job string `json:"job"`
					}
					json.NewDecoder(resp.Body).Decode(&body)
					accepted[c] = append(accepted[c], body.Job)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("429 without Retry-After")
					}
					rejected.Add(1)
				default:
					t.Errorf("%s sweep %d: unexpected %s", client, i, resp.Status)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	totalAccepted := 0
	acceptedByClient := make([]int, clients)
	for c, jobs := range accepted {
		totalAccepted += len(jobs)
		acceptedByClient[c] = len(jobs)
	}
	if totalAccepted == 0 {
		t.Fatal("no sweep was accepted")
	}
	if rejected.Load() == 0 {
		t.Fatalf("%d clients x %d sweeps of %d runs against an 8-run queue produced zero 429s; backpressure is not engaging",
			clients, sweepsPerClient, runsPerSweep)
	}
	t.Logf("accepted %d sweeps %v, rejected %d, depth polls %d", totalAccepted, acceptedByClient, rejected.Load(), polls.Load())

	// Every accepted job must run to completion, every run done.
	var sample []RunStatus
	for c, jobs := range accepted {
		for _, jobID := range jobs {
			results := stream(t, ts, jobID)
			if len(results) != runsPerSweep {
				t.Fatalf("client-%d job %s: %d results, want %d", c, jobID, len(results), runsPerSweep)
			}
			for _, r := range results {
				if r.State != "done" {
					t.Fatalf("client-%d job %s run %s: state %q (%s)", c, jobID, r.Key.ID, r.State, r.Error)
				}
				if r.Seq == 0 {
					t.Fatalf("completed run %s missing its completion seq", r.Key.ID)
				}
			}
			if len(sample) < 4 {
				sample = append(sample, results...)
			}
		}
	}
	close(stopPoll)
	select {
	case msg := <-pollErrCh:
		t.Fatal(msg)
	default:
	}

	// Spot-check byte-identity against a farm-free serial runner.
	direct := exp.NewRunner(1)
	for _, r := range sample {
		rk, err := r.Spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		res, err := direct.Sim(rk.Protocol, rk.Cores, rk.App, rk.Seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Result, want) {
			t.Fatalf("run %s: soak result not byte-identical to direct run", r.Key.ID)
		}
	}
}

// TestServeFairInterleaving: a 2-run job submitted behind a 100-run
// bulk sweep from another client completes early in the farm's global
// completion order — round-robin at run granularity, not job FIFO.
// The per-run completion seq makes this exact: under job FIFO the
// small job's seqs would be 101 and 102.
func TestServeFairInterleaving(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir(), Workers: 1, MaxQueue: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const bulkRuns = 200
	bigSeeds := make([]uint64, bulkRuns)
	for i := range bigSeeds {
		bigSeeds[i] = uint64(1000 + i)
	}
	bigID, _ := submit(t, ts, SweepRequest{
		Client: "bulk", Protocols: []string{"widir"}, Apps: []string{"water-spa"},
		Cores: 4, Scale: 0.05, Seeds: bigSeeds,
	})
	smallID, _ := submit(t, ts, SweepRequest{
		Client: "interactive", Protocols: []string{"widir"}, Apps: []string{"water-spa"},
		Cores: 4, Scale: 0.05, Seeds: []uint64{2000, 2001},
	})

	results := stream(t, ts, smallID)
	var maxSeq uint64
	for _, r := range results {
		if r.State != "done" {
			t.Fatalf("small run %s: %q (%s)", r.Key.ID, r.State, r.Error)
		}
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	// The small job's runs enter the rotation as soon as its offer
	// lands — only the runs the single worker finished before that
	// (submit latency, a handful) plus one alternation round can
	// precede them. Half the bulk job is a generous ceiling even on a
	// slow single-core host; job FIFO would put them at 201-202.
	if maxSeq > bulkRuns/2 {
		t.Fatalf("small job finished at completion seq %d of a %d-run backlog; scheduling is not interleaving fairly", maxSeq, bulkRuns+2)
	}
	t.Logf("small job completed at global seqs <= %d with a %d-run bulk job queued first", maxSeq, bulkRuns)

	// The bulk job still finishes, uninjured by the preemption.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + bigID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State     string `json:"state"`
			Completed int    `json:"completed"`
			Failed    int    `json:"failed"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == "done" {
			if st.Failed != 0 {
				t.Fatalf("bulk job failed %d runs", st.Failed)
			}
			break
		}
		if st.State == "failed" {
			t.Fatal("bulk job failed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("bulk job stuck at %d/%d", st.Completed, bulkRuns)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = s
}
