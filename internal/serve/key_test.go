package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/workload"
)

// TestProfileCanonicalCoversAllFields is the drift guard for the
// profile half of the cache key: every field of workload.Profile must
// be consumed by the canonical encoder. Add a field to Profile without
// teaching profileCanonical about it and this test names the omission
// — otherwise two workloads differing only in the new field would
// silently share a cache entry.
func TestProfileCanonicalCoversAllFields(t *testing.T) {
	covered := map[string]bool{}
	for _, p := range profileCanonicalPaths() {
		if covered[p] {
			t.Errorf("profileCanonical encodes %s twice", p)
		}
		covered[p] = true
	}
	typ := reflect.TypeOf(workload.Profile{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !covered[name] {
			t.Errorf("workload.Profile.%s is not in the canonical profile encoding; add it to appendProfileCanonical (internal/serve/key.go) so it participates in the cache key", name)
		}
		delete(covered, name)
	}
	for p := range covered {
		t.Errorf("profileCanonical encodes %q which is not a workload.Profile field", p)
	}
}

func testRunKey(t *testing.T) exp.RunKey {
	t.Helper()
	prof, ok := workload.ByName("water-spa")
	if !ok {
		t.Fatal("water-spa profile missing")
	}
	return exp.RunKey{Protocol: coherence.WiDir, Cores: 16, App: prof.Scale(0.05), Seed: 7}
}

// TestKeyDeterministic: the same run always hashes to the same key.
func TestKeyDeterministic(t *testing.T) {
	k := testRunKey(t)
	a, err := KeyForRun(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyForRun(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same run, different keys: %+v vs %+v", a, b)
	}
	if len(a.Hash) != 64 {
		t.Fatalf("hash %q is not 64 hex chars", a.Hash)
	}
	if !strings.Contains(a.ID, "widir") || !strings.Contains(a.ID, "water-spa") {
		t.Fatalf("ID %q should name the protocol and app", a.ID)
	}
}

// TestKeySeparates: every component of the run identity must move the
// hash.
func TestKeySeparates(t *testing.T) {
	base := testRunKey(t)
	baseKey, err := KeyForRun(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(k exp.RunKey) exp.RunKey{
		"protocol": func(k exp.RunKey) exp.RunKey { k.Protocol = coherence.Baseline; return k },
		"cores":    func(k exp.RunKey) exp.RunKey { k.Cores = 32; return k },
		"seed":     func(k exp.RunKey) exp.RunKey { k.Seed++; return k },
		"profile-scale": func(k exp.RunKey) exp.RunKey {
			prof, _ := workload.ByName("water-spa")
			k.App = prof.Scale(0.1)
			return k
		},
		"app": func(k exp.RunKey) exp.RunKey {
			prof, ok := workload.ByName("radiosity")
			if !ok {
				t.Fatal("radiosity profile missing")
			}
			k.App = prof.Scale(0.05)
			return k
		},
	}
	for name, mut := range mutations {
		k, err := KeyForRun(mut(base))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.Hash == baseKey.Hash {
			t.Errorf("changing %s did not change the key hash", name)
		}
	}
}

// TestRunSpecResolveMatchesSweep: a spec resolves to exactly the
// RunKey the exp layer builds for the same sweep parameters, so the
// HTTP path and the library path share cache entries.
func TestRunSpecResolveMatchesSweep(t *testing.T) {
	spec := RunSpec{Protocol: "widir", App: "water-spa", Cores: 16, Scale: 0.05, Seed: 7}
	got, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := testRunKey(t)
	if got != want {
		t.Fatalf("Resolve() = %+v, want %+v", got, want)
	}
}

// TestRunSpecResolveRejects: malformed specs fail with a useful error
// instead of producing a bogus cache key.
func TestRunSpecResolveRejects(t *testing.T) {
	bad := []RunSpec{
		{Protocol: "token-ring", App: "water-spa", Cores: 16, Scale: 0.05, Seed: 1},
		{Protocol: "widir", App: "no-such-app", Cores: 16, Scale: 0.05, Seed: 1},
		{Protocol: "widir", App: "water-spa", Cores: 0, Scale: 0.05, Seed: 1},
		{Protocol: "widir", App: "water-spa", Cores: 16, Scale: 0, Seed: 1},
		{Protocol: "widir", App: "water-spa", Cores: 16, Scale: 0.05, Seed: 0},
	}
	for _, spec := range bad {
		if _, err := spec.Resolve(); err == nil {
			t.Errorf("spec %+v resolved without error", spec)
		}
	}
}
