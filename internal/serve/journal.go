package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The queue journal makes accepted work crash-safe: every sweep the
// farm 202s is appended to a write-ahead log under the cache root
// before its runs enter the scheduler, and every run completion is
// appended as it happens. A node that dies mid-sweep — SIGKILL, OOM,
// power loss — replays the journal on restart and re-enqueues exactly
// the accepted-but-unfinished runs. Re-executing a run that actually
// finished but whose `done` record was lost is harmless: runs are
// content-addressed and idempotent, so the redo is a cache hit.
//
// Record format (little-endian):
//
//	[4B payload length][4B CRC32-IEEE of payload][payload JSON]
//
// The journal is torn-tail tolerant: replay stops at the first short,
// oversized, or checksum-failing record — exactly what a crash mid-
// append leaves behind — and the rewrite-on-replay discards the torn
// bytes. On a clean drain (no accepted run outstanding) the file is
// truncated, so a healthy farm's journal stays tiny.
//
// JournalStats reports the counters at /api/v1/stats.

// walOp discriminates journal payloads.
const (
	walOpAccept = "accept" // a job's runs were admitted
	walOpDone   = "done"   // one run finished (any outcome)
	walOpCancel = "cancel" // an appended job was never admitted (queue full)
)

// walRecord is the journal payload. Accept records carry the full run
// specs so a restarted process can rebuild the job without any other
// state; done records name (job, run index).
type walRecord struct {
	Op     string    `json:"op"`
	Job    string    `json:"job"`
	Client string    `json:"client,omitempty"`
	Specs  []RunSpec `json:"specs,omitempty"` // accept only
	Idx    int       `json:"idx,omitempty"`   // done only
}

// walJob is one replayed job: the accepted specs that have no done
// record.
type walJob struct {
	Job     string
	Client  string
	Pending []RunSpec
}

// JournalStats counts journal activity.
type JournalStats struct {
	Replayed    uint64 `json:"replayed"`    // runs re-enqueued by startup replay
	Appends     uint64 `json:"appends"`     // records appended this process
	Compactions uint64 `json:"compactions"` // clean-drain truncations
	TornBytes   uint64 `json:"torn_bytes"`  // bytes discarded from a torn tail at open
	Errors      uint64 `json:"errors"`      // append/sync failures (work continues)
}

// journal is the crash-safe queue WAL. All methods are safe for
// concurrent use.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	stats JournalStats

	// outstanding tracks, per journaled job, how many accepted runs
	// have no done record yet. When the map empties the whole file is
	// compacted away.
	outstanding map[string]int
}

const walMaxRecord = 64 << 20 // corrupt-length guard

// openJournal opens (creating if needed) the WAL at path, replays it,
// rewrites it to hold only the still-pending accepts, and returns the
// jobs to re-enqueue.
func openJournal(path string) (*journal, []walJob, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("serve: read journal: %w", err)
	}
	jobs, torn := replayWAL(data)

	j := &journal{path: path, outstanding: map[string]int{}}
	j.stats.TornBytes = torn
	for _, wj := range jobs {
		j.stats.Replayed += uint64(len(wj.Pending))
	}

	// Rewrite: pending accepts only. This drops completed jobs, done
	// records and any torn tail in one stroke.
	f, err := os.OpenFile(path+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: rewrite journal: %w", err)
	}
	for _, wj := range jobs {
		rec := walRecord{Op: walOpAccept, Job: wj.Job, Client: wj.Client, Specs: wj.Pending}
		if err := writeWALRecord(f, rec); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: rewrite journal: %w", err)
		}
		j.outstanding[wj.Job] = len(wj.Pending)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: sync journal: %w", err)
	}
	f.Close()
	if err := os.Rename(path+".tmp", path); err != nil {
		return nil, nil, fmt.Errorf("serve: publish journal: %w", err)
	}
	j.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	syncDir(path)
	return j, jobs, nil
}

// replayWAL decodes records until the data ends or a record is torn,
// returning accepted-but-unfinished jobs (specs in submission order)
// and the count of discarded tail bytes.
func replayWAL(data []byte) ([]walJob, uint64) {
	type acc struct {
		client string
		specs  []RunSpec
		done   map[int]bool
	}
	byJob := map[string]*acc{}
	var order []string

	off := 0
	for {
		if off+8 > len(data) {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > walMaxRecord || off+8+int(n) > len(data) {
			break // torn or corrupt tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		off += 8 + int(n)

		switch rec.Op {
		case walOpAccept:
			if _, ok := byJob[rec.Job]; !ok {
				byJob[rec.Job] = &acc{client: rec.Client, specs: rec.Specs, done: map[int]bool{}}
				order = append(order, rec.Job)
			}
		case walOpDone:
			if a := byJob[rec.Job]; a != nil {
				a.done[rec.Idx] = true
			}
		case walOpCancel:
			delete(byJob, rec.Job)
		}
	}
	torn := uint64(len(data) - off)

	var jobs []walJob
	for _, id := range order {
		a := byJob[id]
		if a == nil {
			continue // cancelled
		}
		var pending []RunSpec
		for i, sp := range a.specs {
			if !a.done[i] {
				pending = append(pending, sp)
			}
		}
		if len(pending) > 0 {
			jobs = append(jobs, walJob{Job: id, Client: a.client, Pending: pending})
		}
	}
	return jobs, torn
}

// writeWALRecord appends one length+CRC framed record.
func writeWALRecord(w io.Writer, rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// appendAccept journals a job's admission. It syncs before returning:
// once the client sees 202 the work survives any crash.
func (j *journal) appendAccept(job, client string, specs []RunSpec) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := walRecord{Op: walOpAccept, Job: job, Client: client, Specs: specs}
	if err := writeWALRecord(j.f, rec); err != nil {
		j.stats.Errors++
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.stats.Errors++
		return err
	}
	j.stats.Appends++
	j.outstanding[job] = len(specs)
	return nil
}

// appendCancel retracts a job journaled by appendAccept that the
// scheduler then refused (queue full): it must not replay.
func (j *journal) appendCancel(job string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := writeWALRecord(j.f, walRecord{Op: walOpCancel, Job: job}); err != nil {
		j.stats.Errors++
		return
	}
	j.stats.Appends++
	delete(j.outstanding, job)
	j.compactLocked()
}

// appendDone journals one run completion. No sync: losing a done
// record costs at most one idempotent, cache-served redo. When the
// last outstanding run of the last outstanding job completes the
// journal compacts to empty.
func (j *journal) appendDone(job string, idx int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := writeWALRecord(j.f, walRecord{Op: walOpDone, Job: job, Idx: idx}); err != nil {
		j.stats.Errors++
		return
	}
	j.stats.Appends++
	if n, ok := j.outstanding[job]; ok {
		if n <= 1 {
			delete(j.outstanding, job)
		} else {
			j.outstanding[job] = n - 1
		}
	}
	j.compactLocked()
}

// compactLocked truncates the journal when nothing is outstanding
// (caller holds j.mu).
func (j *journal) compactLocked() {
	if len(j.outstanding) != 0 {
		return
	}
	if err := j.f.Truncate(0); err != nil {
		j.stats.Errors++
		return
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		j.stats.Errors++
		return
	}
	j.f.Sync()
	j.stats.Compactions++
}

// Stats snapshots the journal counters.
func (j *journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close releases the journal file (the contents stay for the next
// process).
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// syncDir fsyncs the directory containing path, making a just-renamed
// file durable against power loss. Best-effort: not every filesystem
// supports directory fsync.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
