package serve

import (
	"sync"

	"repro/internal/xrand"
)

// scheduler is the farm's bounded, client-fair run queue.
//
// Fairness model: each client gets its own FIFO; workers draw from
// clients in round-robin order at run granularity. A client that
// submits a 500-run sweep cannot starve a client that submits 2 runs —
// the small sweep's runs interleave at one-per-round and finish early.
// Within one client, runs execute in submission order.
//
// Backpressure: the total queued-run count is capped. offer() is
// all-or-nothing — a sweep that would push the queue past max is
// rejected whole (the server turns that into 429 + Retry-After), so a
// sweep is never half-admitted.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	max    int
	queued int
	closed bool

	// ring is the round-robin order of clients with pending runs;
	// next indexes the client to serve next. byClient holds each
	// client's FIFO. A client leaves the ring when its FIFO drains
	// and rejoins at the back on its next offer.
	ring     []string
	next     int
	byClient map[string][]*run
}

func newScheduler(max int) *scheduler {
	s := &scheduler{max: max, byClient: map[string][]*run{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// offer enqueues a batch of runs for one client. It returns false —
// admitting nothing — when the batch would exceed the queue bound or
// the scheduler is draining.
func (s *scheduler) offer(client string, runs []*run) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.queued+len(runs) > s.max {
		return false
	}
	if len(runs) == 0 {
		return true
	}
	if _, ok := s.byClient[client]; !ok {
		s.ring = append(s.ring, client)
	}
	s.byClient[client] = append(s.byClient[client], runs...)
	s.queued += len(runs)
	s.cond.Broadcast()
	return true
}

// offerForce enqueues a batch regardless of the queue bound (it still
// respects close). It exists for journal replay: the runs were already
// admitted — and 202'd — by a previous process, so bouncing them off
// the cap would turn a crash into lost work. New submissions keep
// seeing the bound, so the queue converges back under max as the
// replayed backlog drains.
func (s *scheduler) offerForce(client string, runs []*run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(runs) == 0 {
		return
	}
	if _, ok := s.byClient[client]; !ok {
		s.ring = append(s.ring, client)
	}
	s.byClient[client] = append(s.byClient[client], runs...)
	s.queued += len(runs)
	s.cond.Broadcast()
}

// take blocks until a run is available and returns the next one in
// round-robin order, or ok=false once the scheduler is closed and
// drained.
func (s *scheduler) take() (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued == 0 {
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
	if s.next >= len(s.ring) {
		s.next = 0
	}
	client := s.ring[s.next]
	q := s.byClient[client]
	r := q[0]
	if len(q) == 1 {
		delete(s.byClient, client)
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
		// next now points at the following client already.
	} else {
		s.byClient[client] = q[1:]
		s.next++
	}
	s.queued--
	return r, true
}

// close stops admission; blocked take() calls return once the queue
// drains.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// depth reports the queued-run count and the bound.
func (s *scheduler) depth() (queued, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.max
}

// Retry-After bounds: the base advice scales linearly with how full
// the queue is, from retryAfterMin at empty to retryAfterMaxBase at
// the cap, and the jitter adds up to half the base on top. A rejected
// fleet of identical clients therefore spreads its retries over a
// window that widens as the farm falls behind, instead of stampeding
// back on one synchronized second.
const (
	retryAfterMin     = 1  // seconds, empty queue
	retryAfterMaxBase = 10 // seconds, full queue (15 with max jitter)
)

// retryAfterSeconds computes the Retry-After advice for a rejected
// sweep given the current queue depth. rng supplies the jitter; it is
// an explicit stream (never global math/rand state) so the bound is
// unit-testable with a pinned seed.
func retryAfterSeconds(depth, max int, rng *xrand.Source) int {
	if max <= 0 {
		max = 1
	}
	if depth < 0 {
		depth = 0
	}
	if depth > max {
		depth = max
	}
	base := retryAfterMin + (retryAfterMaxBase-retryAfterMin)*depth/max
	return base + rng.Intn(base/2+1)
}
