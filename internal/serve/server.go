package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/xrand"
)

// Config configures a farm server.
type Config struct {
	CacheDir string // content-addressed result cache root
	Workers  int    // simulation workers (<=0: 1)
	MaxQueue int    // max queued runs across all clients (<=0: 256)

	// Cluster federation (DESIGN.md §17). Leaving Peers empty runs a
	// classic single-node farm; with peers, run-key ownership is
	// rendezvous-hashed across the set with replication factor
	// Replicas, non-owned keys are peer-fetched before being simulated
	// locally as a fallback, and locally produced entries are repaired
	// onto their owners.
	Self             string        // this node's base URL as peers reach it
	Peers            []string      // full static peer set, including Self
	Replicas         int           // replication factor R (<=0: 2)
	PeerTimeout      time.Duration // per-peer-request timeout (<=0: 2s)
	BreakerThreshold int           // consecutive peer failures to open (<=0: 3)
	BreakerCooldown  time.Duration // open interval before a half-open probe (<=0: 5s)

	// CacheMaxBytes bounds the disk cache; every fill triggers an LRU
	// sweep that evicts least-recently-accessed entries past the
	// budget. 0 = unbounded.
	CacheMaxBytes int64
}

// Server is the simulation farm: a bounded worker pool draining the
// fair scheduler, an exp.Runner whose memo is backed by the disk
// cache, and the HTTP API over both. Create with New, serve its
// Handler, stop with Drain.
type Server struct {
	cfg    Config
	runner *exp.Runner
	cache  *Cache
	sched  *scheduler
	wal    *journal

	// Cluster federation; both nil on a single-node farm.
	ring    *cluster.Ring
	fetcher *cluster.Fetcher

	mu   sync.Mutex
	jobs map[string]*job

	rngMu sync.Mutex
	rng   *xrand.Source // Retry-After jitter

	repaired sync.Map // hash -> struct{}: repair-once-per-process dedup

	jobSeq       atomic.Uint64
	compSeq      atomic.Uint64 // global completion order (fairness witness)
	tracedSims   atomic.Uint64 // artifact runs simulated outside the runner
	fallbackSims atomic.Uint64 // non-owned keys simulated because peers had nothing
	repairs      atomic.Uint64 // entries re-pushed onto their owners
	draining     atomic.Bool
	workers      sync.WaitGroup
}

// New builds a farm server and starts its workers. The runner's memo
// layer is wired to the disk cache — and, when peers are configured,
// through the cluster fetcher — so every fresh simulation is persisted
// and every later identical run, on this node or any peer, is served
// without re-simulating. The queue journal is replayed before workers
// start: accepted-but-unfinished runs from a crashed predecessor
// re-enter the scheduler ahead of new traffic.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	cache, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	cache.SetMaxBytes(cfg.CacheMaxBytes)
	cache.maybeGC()
	// Runner parallelism 1: the farm's own workers provide the
	// concurrency; SimSource executes on the calling goroutine.
	runner := exp.NewRunner(1)
	s := &Server{
		cfg:    cfg,
		runner: runner,
		cache:  cache,
		sched:  newScheduler(cfg.MaxQueue),
		jobs:   map[string]*job{},
		rng:    xrand.New(uint64(time.Now().UnixNano())),
	}
	runner.SetCache(runnerCache{s: s})
	if len(cfg.Peers) > 0 {
		s.ring = cluster.NewRing(cfg.Self, cfg.Peers, defaultReplicas(cfg.Replicas))
		s.fetcher = cluster.NewFetcher(s.ring, cluster.FetcherConfig{
			Timeout:          cfg.PeerTimeout,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Validate:         ValidateEntry,
		})
	}

	wal, replayed, err := openJournal(filepath.Join(cache.Dir(), "queue.wal"))
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.replay(replayed)

	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

func defaultReplicas(r int) int {
	if r <= 0 {
		return 2
	}
	return r
}

// replay re-enqueues accepted-but-unfinished runs from the journal.
// The jobs keep their old IDs (a client polling across the restart
// finds its job again, holding just the runs that still owed work) and
// bypass the queue bound — they were admitted once already. Specs that
// no longer resolve (a workload renamed between versions) are dropped
// with an error state rather than wedging the queue.
func (s *Server) replay(jobs []walJob) {
	maxSeq := uint64(0)
	for _, wj := range jobs {
		var n uint64
		if _, err := fmt.Sscanf(wj.Job, "job-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		j := &job{id: wj.Job, client: wj.Client}
		j.cond = sync.NewCond(&j.mu)
		var runs []*run
		for _, spec := range wj.Pending {
			r := &run{job: j, idx: len(j.runs), spec: spec}
			rk, err := spec.Resolve()
			if err == nil {
				r.rk = rk
				r.key, err = KeyForRun(rk)
			}
			if err != nil {
				r.state = runFailed
				r.errMsg = fmt.Sprintf("journal replay: %v", err)
			}
			j.runs = append(j.runs, r)
			if r.state == runFailed {
				j.order = append(j.order, r.idx)
				s.wal.appendDone(j.id, r.idx)
			} else {
				runs = append(runs, r)
			}
		}
		if len(j.runs) == 0 {
			continue
		}
		s.jobs[j.id] = j
		s.sched.offerForce(j.client, runs)
	}
	if maxSeq > s.jobSeq.Load() {
		s.jobSeq.Store(maxSeq)
	}
}

// Runner exposes the farm's runner (stats and tests).
func (s *Server) Runner() *exp.Runner { return s.runner }

// Cache exposes the farm's result cache (stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// ---------------------------------------------------------------------
// Jobs and runs

type runState int32

const (
	runPending runState = iota
	runRunning
	runDone
	runFailed
)

func (st runState) String() string {
	switch st {
	case runRunning:
		return "running"
	case runDone:
		return "done"
	case runFailed:
		return "error"
	default:
		return "pending"
	}
}

// run is one unit of work: a single canonical simulation within a job.
type run struct {
	job  *job
	idx  int
	spec RunSpec
	rk   exp.RunKey
	key  Key

	// Written by the executing worker, then published via job.complete
	// before any reader sees the index in job.order.
	state  runState
	seq    uint64 // global completion sequence number (1-based)
	source string
	errMsg string
	result json.RawMessage // canonical result encoding
}

// job is one accepted sweep submission.
type job struct {
	id     string
	client string

	mu    sync.Mutex
	cond  *sync.Cond
	runs  []*run
	order []int // run indices in completion order
}

func (j *job) complete(r *run) {
	j.mu.Lock()
	j.order = append(j.order, r.idx)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// snapshot returns (completion order copy, done).
func (j *job) snapshot() ([]int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	order := append([]int(nil), j.order...)
	return order, len(j.order) == len(j.runs)
}

// waitMore blocks until the completion order grows past n or the job
// finishes; it returns the fresh order copy.
func (j *job) waitMore(n int) []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.order) <= n && len(j.order) < len(j.runs) {
		j.cond.Wait()
	}
	return append([]int(nil), j.order...)
}

// ---------------------------------------------------------------------
// Workers

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		r, ok := s.sched.take()
		if !ok {
			return
		}
		s.execute(r)
		r.seq = s.compSeq.Add(1)
		// Journal the completion before publishing it: a crash after
		// the publish but before the append merely redoes a cached,
		// idempotent run on restart.
		s.wal.appendDone(r.job.id, r.idx)
		r.job.complete(r)
	}
}

// execute runs one simulation and records its outcome on the run.
// Runs are published to readers only through job.complete, so the
// field writes here need no lock.
func (s *Server) execute(r *run) {
	r.state = runRunning
	var err error
	if r.spec.Artifacts {
		err = s.executeTraced(r)
	} else {
		err = s.executePlain(r)
	}
	if err != nil {
		r.state = runFailed
		r.errMsg = err.Error()
		return
	}
	r.state = runDone
}

// executePlain serves the run through the runner: memo, then disk
// cache, then a fresh simulation (persisted on the way out).
func (s *Server) executePlain(r *run) error {
	res, src, err := s.runner.SimSource(r.rk.Protocol, r.rk.Cores, r.rk.App, r.rk.Seed)
	if err != nil {
		return err
	}
	raw, err := EncodeResult(res)
	if err != nil {
		return err
	}
	r.source = src.String()
	r.result = raw
	return nil
}

// executeTraced serves an artifact run. The disk entry satisfies it
// only if it already carries trace artifacts; otherwise the run is
// re-simulated with the obs subsystem attached (outside the runner —
// tracing changes nothing about the result, but the event log is not
// memoizable) and the full artifact set replaces the plain entry.
func (s *Server) executeTraced(r *run) error {
	if _, raw, ok := s.cache.GetRaw(r.key); ok && s.cache.HasArtifacts(r.key) {
		r.source = "cache"
		r.result = raw
		return nil
	}
	s.tracedSims.Add(1)
	tr, err := exp.RunTraced(exp.Options{
		Cores:    r.spec.Cores,
		Scale:    r.spec.Scale,
		Seed:     r.spec.Seed,
		Apps:     []string{r.spec.App},
		Parallel: 1,
	}, r.rk.Protocol, 0)
	if err != nil {
		return err
	}
	arts, err := traceArtifacts(r.rk, tr)
	if err != nil {
		return err
	}
	if err := s.cache.Put(r.key, tr.Result, arts); err != nil {
		return err
	}
	raw, err := EncodeResult(tr.Result)
	if err != nil {
		return err
	}
	r.source = "sim"
	r.result = raw
	return nil
}

// repair re-pushes the entry for hash onto owner peers that do not
// hold it yet — replication repair, triggered on reads and fills. It
// runs at most once per hash per process (later reads are free), is
// breaker-gated per peer, and failures simply leave the repair for a
// future read to retry. On a single-node farm it is a no-op.
func (s *Server) repair(hash string) {
	if s.fetcher == nil {
		return
	}
	targets := s.ring.OtherOwners(hash)
	if len(targets) == 0 {
		return
	}
	if _, dup := s.repaired.LoadOrStore(hash, struct{}{}); dup {
		return
	}
	body, ok := s.cache.RawEntry(hash)
	if !ok {
		s.repaired.Delete(hash)
		return
	}
	allOK := true
	for _, peer := range targets {
		if err := s.fetcher.Push(peer, hash, body); err != nil {
			allOK = false
		}
	}
	if allOK {
		s.repairs.Add(1)
	} else {
		// Retry on a later read once the peer recovers.
		s.repaired.Delete(hash)
	}
}

// Drain stops admission, lets already-queued work finish, and waits
// for the workers (bounded by ctx). Every admitted run still executes
// — close() only stops new offers — so streams of accepted jobs run to
// completion. After Drain the server answers status and artifact reads
// but rejects new sweeps with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Clean drain: no worker is appending anymore, so the journal
		// can be released (a compaction already truncated it when the
		// last outstanding run completed).
		s.wal.Close()
		return nil
	case <-ctx.Done():
		return errors.New("serve: drain cancelled with work in flight")
	}
}

// ---------------------------------------------------------------------
// HTTP API

// SweepRequest is the submit-sweep body. The cross product
// protocols × apps × seeds becomes the job's runs.
type SweepRequest struct {
	Client    string   `json:"client"`
	Protocols []string `json:"protocols"`
	Apps      []string `json:"apps"`
	Cores     int      `json:"cores"`
	Scale     float64  `json:"scale"`
	Seeds     []uint64 `json:"seeds"`
	Artifacts bool     `json:"artifacts,omitempty"`
}

// RunStatus is one run's public state.
type RunStatus struct {
	Spec  RunSpec `json:"spec"`
	Key   Key     `json:"key"`
	State string  `json:"state"`
	// Seq is the farm-wide completion sequence number (1-based): run
	// N was the Nth run the farm finished since it started. It makes
	// scheduling fairness observable — a small job's runs carry low
	// seqs even when submitted behind a bulk sweep.
	Seq    uint64          `json:"seq,omitempty"`
	Source string          `json:"source,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Handler returns the farm's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/runs/{hash}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /api/v1/runs/{hash}/entry", s.handleEntryGet)
	mux.HandleFunc("PUT /api/v1/runs/{hash}/entry", s.handleEntryPut)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /api/v1/cluster/stats", s.handleClusterStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var sr SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	if sr.Client == "" {
		sr.Client = "anonymous"
	}
	if len(sr.Protocols) == 0 || len(sr.Apps) == 0 || len(sr.Seeds) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs at least one protocol, app and seed")
		return
	}

	j := &job{
		id:     fmt.Sprintf("job-%06d", s.jobSeq.Add(1)),
		client: sr.Client,
	}
	j.cond = sync.NewCond(&j.mu)
	for _, proto := range sr.Protocols {
		for _, app := range sr.Apps {
			for _, seed := range sr.Seeds {
				spec := RunSpec{
					Protocol:  proto,
					App:       app,
					Cores:     sr.Cores,
					Scale:     sr.Scale,
					Seed:      seed,
					Artifacts: sr.Artifacts,
				}
				rk, err := spec.Resolve()
				if err != nil {
					httpError(w, http.StatusBadRequest, "run %s/%s/seed=%d: %v", proto, app, seed, err)
					return
				}
				key, err := KeyForRun(rk)
				if err != nil {
					httpError(w, http.StatusInternalServerError, "key derivation: %v", err)
					return
				}
				j.runs = append(j.runs, &run{
					job:  j,
					idx:  len(j.runs),
					spec: spec,
					rk:   rk,
					key:  key,
				})
			}
		}
	}

	// Journal the admission BEFORE the scheduler sees it: once the
	// client reads 202 the work must survive a crash, and the append
	// fsyncs. If the scheduler then refuses (queue full) the cancel
	// record retracts the job so it never replays. A journal error is
	// counted and the job admitted anyway — availability over
	// durability for that one sweep.
	specs := make([]RunSpec, len(j.runs))
	for i, r := range j.runs {
		specs[i] = r.spec
	}
	s.wal.appendAccept(j.id, j.client, specs)

	if !s.sched.offer(j.client, j.runs) {
		s.wal.appendCancel(j.id)
		if s.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		// Queue full: the retry advice scales with how deep the
		// backlog is and carries jitter, so a fleet of synchronized
		// clients spreads its retries instead of stampeding back at
		// once (see retryAfterSeconds).
		depth, max := s.sched.depth()
		s.rngMu.Lock()
		retry := retryAfterSeconds(depth, max, s.rng)
		s.rngMu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		httpError(w, http.StatusTooManyRequests, "queue full (%d runs max); retry later", s.cfg.MaxQueue)
		return
	}

	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()

	keys := make([]Key, len(j.runs))
	for i, r := range j.runs {
		keys[i] = r.key
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":    j.id,
		"client": j.client,
		"runs":   len(j.runs),
		"keys":   keys,
	})
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runStatus renders a run. Completed runs (published via job.order)
// may include the result body.
func runStatus(r *run, completed, withResult bool) RunStatus {
	st := RunStatus{Spec: r.spec, Key: r.key}
	if !completed {
		st.State = runPending.String()
		return st
	}
	st.State = r.state.String()
	st.Seq = r.seq
	st.Source = r.source
	st.Error = r.errMsg
	if withResult {
		st.Result = r.result
	}
	return st
}

func (s *Server) handleJob(w http.ResponseWriter, req *http.Request) {
	j := s.lookupJob(req.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	order, done := j.snapshot()
	completed := make(map[int]bool, len(order))
	failed := 0
	for _, idx := range order {
		completed[idx] = true
		if j.runs[idx].state == runFailed {
			failed++
		}
	}
	statuses := make([]RunStatus, len(j.runs))
	for i, r := range j.runs {
		statuses[i] = runStatus(r, completed[i], false)
	}
	state := "running"
	if done {
		state = "done"
		if failed > 0 {
			state = "failed"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":       j.id,
		"client":    j.client,
		"state":     state,
		"total":     len(j.runs),
		"completed": len(order),
		"failed":    failed,
		"runs":      statuses,
	})
}

// handleStream writes one JSON line per completed run, in completion
// order, flushing after each so a watching client sees results as the
// farm produces them. The stream ends when the job does; connecting to
// a finished job replays every completion immediately.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	j := s.lookupJob(req.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	order, _ := j.snapshot()
	for {
		for sent < len(order) {
			r := j.runs[order[sent]]
			if err := enc.Encode(runStatus(r, true, true)); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
		}
		if sent == len(j.runs) {
			return
		}
		select {
		case <-req.Context().Done():
			return
		default:
		}
		order = j.waitMore(sent)
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	if len(hash) != 64 {
		httpError(w, http.StatusBadRequest, "artifact key must be the 64-hex run hash")
		return
	}
	if _, err := hex.DecodeString(hash); err != nil {
		httpError(w, http.StatusBadRequest, "artifact key must be hex: %v", err)
		return
	}
	name := req.PathValue("name")
	data, err := s.cache.Artifact(Key{Hash: hash}, name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			httpError(w, http.StatusNotFound, "no artifact %s for run %s", name, hash[:12])
			return
		}
		httpError(w, http.StatusInternalServerError, "read artifact: %v", err)
		return
	}
	switch name {
	case ArtifactCSV:
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// runHashParam extracts and validates the {hash} path value.
func runHashParam(req *http.Request) (string, error) {
	hash := req.PathValue("hash")
	if len(hash) != 64 {
		return "", errors.New("run key must be the 64-hex run hash")
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return "", fmt.Errorf("run key must be hex: %v", err)
	}
	return hash, nil
}

// handleEntryGet is the read side of the inter-node entry protocol:
// the verbatim entry.json bytes for a run hash, strictly from the
// LOCAL cache. A peer asking us must never trigger our own peer fetch
// — that would bounce requests around the ring forever; a local miss
// is a 404 and the asker moves on to the next owner or simulates.
func (s *Server) handleEntryGet(w http.ResponseWriter, req *http.Request) {
	hash, err := runHashParam(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, ok := s.cache.RawEntry(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "no entry for run %s", hash[:12])
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleEntryPut is the write side: a replication-repair push from a
// peer that computed (or holds) an entry this node owns. The body is
// validated before it touches disk; an existing entry makes the push
// an idempotent no-op.
func (s *Server) handleEntryPut(w http.ResponseWriter, req *http.Request) {
	hash, err := runHashParam(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read entry: %v", err)
		return
	}
	if err := s.cache.PutRawEntry(hash, body); err != nil {
		httpError(w, http.StatusBadRequest, "bad entry: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ClusterSnapshot is the /api/v1/cluster/stats body.
type ClusterSnapshot struct {
	Enabled      bool                 `json:"enabled"`
	Self         string               `json:"self,omitempty"`
	Peers        []string             `json:"peers,omitempty"`
	Replicas     int                  `json:"replicas,omitempty"`
	Fetch        cluster.FetcherStats `json:"fetch"`
	PeerStatus   []cluster.PeerStatus `json:"peer_status,omitempty"`
	FallbackSims uint64               `json:"fallback_sims"`
	Repairs      uint64               `json:"repairs"`
}

// ClusterStats snapshots the federation counters.
func (s *Server) ClusterStats() ClusterSnapshot {
	out := ClusterSnapshot{
		FallbackSims: s.fallbackSims.Load(),
		Repairs:      s.repairs.Load(),
	}
	if s.fetcher == nil {
		return out
	}
	out.Enabled = true
	out.Self = s.ring.Self()
	out.Peers = s.ring.Peers()
	out.Replicas = s.ring.Replicas()
	out.Fetch = s.fetcher.Stats()
	out.PeerStatus = s.fetcher.PeerStatuses()
	return out
}

func (s *Server) handleClusterStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterStats())
}

// StatsSnapshot is the /stats body.
type StatsSnapshot struct {
	Queue struct {
		Depth int `json:"depth"`
		Max   int `json:"max"`
	} `json:"queue"`
	Jobs       int             `json:"jobs"`
	Runner     exp.RunnerStats `json:"runner"`
	TracedSims uint64          `json:"traced_sims"`
	Cache      CacheStats      `json:"cache"`
	WAL        JournalStats    `json:"wal"`
	Cluster    ClusterSnapshot `json:"cluster"`
	Draining   bool            `json:"draining"`
}

// Stats snapshots the farm counters (also served at /api/v1/stats).
func (s *Server) Stats() StatsSnapshot {
	var out StatsSnapshot
	out.Queue.Depth, out.Queue.Max = s.sched.depth()
	s.mu.Lock()
	out.Jobs = len(s.jobs)
	s.mu.Unlock()
	out.Runner = s.runner.Stats()
	out.TracedSims = s.tracedSims.Load()
	out.Cache = s.cache.Stats()
	out.WAL = s.wal.Stats()
	out.Cluster = s.ClusterStats()
	out.Draining = s.draining.Load()
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
