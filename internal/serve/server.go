package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/exp"
)

// Config configures a farm server.
type Config struct {
	CacheDir string // content-addressed result cache root
	Workers  int    // simulation workers (<=0: 1)
	MaxQueue int    // max queued runs across all clients (<=0: 256)
}

// Server is the simulation farm: a bounded worker pool draining the
// fair scheduler, an exp.Runner whose memo is backed by the disk
// cache, and the HTTP API over both. Create with New, serve its
// Handler, stop with Drain.
type Server struct {
	cfg    Config
	runner *exp.Runner
	cache  *Cache
	sched  *scheduler

	mu   sync.Mutex
	jobs map[string]*job

	jobSeq     atomic.Uint64
	compSeq    atomic.Uint64 // global completion order (fairness witness)
	tracedSims atomic.Uint64 // artifact runs simulated outside the runner
	draining   atomic.Bool
	workers    sync.WaitGroup
}

// New builds a farm server and starts its workers. The runner's memo
// layer is wired to the disk cache, so every fresh simulation is
// persisted and every later identical run — in this process or the
// next — is served from disk.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	cache, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	// Runner parallelism 1: the farm's own workers provide the
	// concurrency; SimSource executes on the calling goroutine.
	runner := exp.NewRunner(1)
	runner.SetCache(runnerCache{c: cache})
	s := &Server{
		cfg:    cfg,
		runner: runner,
		cache:  cache,
		sched:  newScheduler(cfg.MaxQueue),
		jobs:   map[string]*job{},
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Runner exposes the farm's runner (stats and tests).
func (s *Server) Runner() *exp.Runner { return s.runner }

// Cache exposes the farm's result cache (stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// ---------------------------------------------------------------------
// Jobs and runs

type runState int32

const (
	runPending runState = iota
	runRunning
	runDone
	runFailed
)

func (st runState) String() string {
	switch st {
	case runRunning:
		return "running"
	case runDone:
		return "done"
	case runFailed:
		return "error"
	default:
		return "pending"
	}
}

// run is one unit of work: a single canonical simulation within a job.
type run struct {
	job  *job
	idx  int
	spec RunSpec
	rk   exp.RunKey
	key  Key

	// Written by the executing worker, then published via job.complete
	// before any reader sees the index in job.order.
	state  runState
	seq    uint64 // global completion sequence number (1-based)
	source string
	errMsg string
	result json.RawMessage // canonical result encoding
}

// job is one accepted sweep submission.
type job struct {
	id     string
	client string

	mu    sync.Mutex
	cond  *sync.Cond
	runs  []*run
	order []int // run indices in completion order
}

func (j *job) complete(r *run) {
	j.mu.Lock()
	j.order = append(j.order, r.idx)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// snapshot returns (completion order copy, done).
func (j *job) snapshot() ([]int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	order := append([]int(nil), j.order...)
	return order, len(j.order) == len(j.runs)
}

// waitMore blocks until the completion order grows past n or the job
// finishes; it returns the fresh order copy.
func (j *job) waitMore(n int) []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.order) <= n && len(j.order) < len(j.runs) {
		j.cond.Wait()
	}
	return append([]int(nil), j.order...)
}

// ---------------------------------------------------------------------
// Workers

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		r, ok := s.sched.take()
		if !ok {
			return
		}
		s.execute(r)
		r.seq = s.compSeq.Add(1)
		r.job.complete(r)
	}
}

// execute runs one simulation and records its outcome on the run.
// Runs are published to readers only through job.complete, so the
// field writes here need no lock.
func (s *Server) execute(r *run) {
	r.state = runRunning
	var err error
	if r.spec.Artifacts {
		err = s.executeTraced(r)
	} else {
		err = s.executePlain(r)
	}
	if err != nil {
		r.state = runFailed
		r.errMsg = err.Error()
		return
	}
	r.state = runDone
}

// executePlain serves the run through the runner: memo, then disk
// cache, then a fresh simulation (persisted on the way out).
func (s *Server) executePlain(r *run) error {
	res, src, err := s.runner.SimSource(r.rk.Protocol, r.rk.Cores, r.rk.App, r.rk.Seed)
	if err != nil {
		return err
	}
	raw, err := EncodeResult(res)
	if err != nil {
		return err
	}
	r.source = src.String()
	r.result = raw
	return nil
}

// executeTraced serves an artifact run. The disk entry satisfies it
// only if it already carries trace artifacts; otherwise the run is
// re-simulated with the obs subsystem attached (outside the runner —
// tracing changes nothing about the result, but the event log is not
// memoizable) and the full artifact set replaces the plain entry.
func (s *Server) executeTraced(r *run) error {
	if _, raw, ok := s.cache.GetRaw(r.key); ok && s.cache.HasArtifacts(r.key) {
		r.source = "cache"
		r.result = raw
		return nil
	}
	s.tracedSims.Add(1)
	tr, err := exp.RunTraced(exp.Options{
		Cores:    r.spec.Cores,
		Scale:    r.spec.Scale,
		Seed:     r.spec.Seed,
		Apps:     []string{r.spec.App},
		Parallel: 1,
	}, r.rk.Protocol, 0)
	if err != nil {
		return err
	}
	arts, err := traceArtifacts(r.rk, tr)
	if err != nil {
		return err
	}
	if err := s.cache.Put(r.key, tr.Result, arts); err != nil {
		return err
	}
	raw, err := EncodeResult(tr.Result)
	if err != nil {
		return err
	}
	r.source = "sim"
	r.result = raw
	return nil
}

// Drain stops admission, lets already-queued work finish, and waits
// for the workers (bounded by ctx). Every admitted run still executes
// — close() only stops new offers — so streams of accepted jobs run to
// completion. After Drain the server answers status and artifact reads
// but rejects new sweeps with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return errors.New("serve: drain cancelled with work in flight")
	}
}

// ---------------------------------------------------------------------
// HTTP API

// SweepRequest is the submit-sweep body. The cross product
// protocols × apps × seeds becomes the job's runs.
type SweepRequest struct {
	Client    string   `json:"client"`
	Protocols []string `json:"protocols"`
	Apps      []string `json:"apps"`
	Cores     int      `json:"cores"`
	Scale     float64  `json:"scale"`
	Seeds     []uint64 `json:"seeds"`
	Artifacts bool     `json:"artifacts,omitempty"`
}

// RunStatus is one run's public state.
type RunStatus struct {
	Spec  RunSpec `json:"spec"`
	Key   Key     `json:"key"`
	State string  `json:"state"`
	// Seq is the farm-wide completion sequence number (1-based): run
	// N was the Nth run the farm finished since it started. It makes
	// scheduling fairness observable — a small job's runs carry low
	// seqs even when submitted behind a bulk sweep.
	Seq    uint64          `json:"seq,omitempty"`
	Source string          `json:"source,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Handler returns the farm's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/runs/{hash}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var sr SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	if sr.Client == "" {
		sr.Client = "anonymous"
	}
	if len(sr.Protocols) == 0 || len(sr.Apps) == 0 || len(sr.Seeds) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs at least one protocol, app and seed")
		return
	}

	j := &job{
		id:     fmt.Sprintf("job-%06d", s.jobSeq.Add(1)),
		client: sr.Client,
	}
	j.cond = sync.NewCond(&j.mu)
	for _, proto := range sr.Protocols {
		for _, app := range sr.Apps {
			for _, seed := range sr.Seeds {
				spec := RunSpec{
					Protocol:  proto,
					App:       app,
					Cores:     sr.Cores,
					Scale:     sr.Scale,
					Seed:      seed,
					Artifacts: sr.Artifacts,
				}
				rk, err := spec.Resolve()
				if err != nil {
					httpError(w, http.StatusBadRequest, "run %s/%s/seed=%d: %v", proto, app, seed, err)
					return
				}
				key, err := KeyForRun(rk)
				if err != nil {
					httpError(w, http.StatusInternalServerError, "key derivation: %v", err)
					return
				}
				j.runs = append(j.runs, &run{
					job:  j,
					idx:  len(j.runs),
					spec: spec,
					rk:   rk,
					key:  key,
				})
			}
		}
	}

	if !s.sched.offer(j.client, j.runs) {
		if s.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		// Queue full: the client should retry once some of the ~queue
		// has drained. One second per outstanding worker-batch is a
		// deliberately crude bound — the point is the signal, not the
		// estimate.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full (%d runs max); retry later", s.cfg.MaxQueue)
		return
	}

	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()

	keys := make([]Key, len(j.runs))
	for i, r := range j.runs {
		keys[i] = r.key
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":    j.id,
		"client": j.client,
		"runs":   len(j.runs),
		"keys":   keys,
	})
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runStatus renders a run. Completed runs (published via job.order)
// may include the result body.
func runStatus(r *run, completed, withResult bool) RunStatus {
	st := RunStatus{Spec: r.spec, Key: r.key}
	if !completed {
		st.State = runPending.String()
		return st
	}
	st.State = r.state.String()
	st.Seq = r.seq
	st.Source = r.source
	st.Error = r.errMsg
	if withResult {
		st.Result = r.result
	}
	return st
}

func (s *Server) handleJob(w http.ResponseWriter, req *http.Request) {
	j := s.lookupJob(req.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	order, done := j.snapshot()
	completed := make(map[int]bool, len(order))
	failed := 0
	for _, idx := range order {
		completed[idx] = true
		if j.runs[idx].state == runFailed {
			failed++
		}
	}
	statuses := make([]RunStatus, len(j.runs))
	for i, r := range j.runs {
		statuses[i] = runStatus(r, completed[i], false)
	}
	state := "running"
	if done {
		state = "done"
		if failed > 0 {
			state = "failed"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":       j.id,
		"client":    j.client,
		"state":     state,
		"total":     len(j.runs),
		"completed": len(order),
		"failed":    failed,
		"runs":      statuses,
	})
}

// handleStream writes one JSON line per completed run, in completion
// order, flushing after each so a watching client sees results as the
// farm produces them. The stream ends when the job does; connecting to
// a finished job replays every completion immediately.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	j := s.lookupJob(req.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	order, _ := j.snapshot()
	for {
		for sent < len(order) {
			r := j.runs[order[sent]]
			if err := enc.Encode(runStatus(r, true, true)); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
		}
		if sent == len(j.runs) {
			return
		}
		select {
		case <-req.Context().Done():
			return
		default:
		}
		order = j.waitMore(sent)
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	if len(hash) != 64 {
		httpError(w, http.StatusBadRequest, "artifact key must be the 64-hex run hash")
		return
	}
	if _, err := hex.DecodeString(hash); err != nil {
		httpError(w, http.StatusBadRequest, "artifact key must be hex: %v", err)
		return
	}
	name := req.PathValue("name")
	data, err := s.cache.Artifact(Key{Hash: hash}, name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			httpError(w, http.StatusNotFound, "no artifact %s for run %s", name, hash[:12])
			return
		}
		httpError(w, http.StatusInternalServerError, "read artifact: %v", err)
		return
	}
	switch name {
	case ArtifactCSV:
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// StatsSnapshot is the /stats body.
type StatsSnapshot struct {
	Queue struct {
		Depth int `json:"depth"`
		Max   int `json:"max"`
	} `json:"queue"`
	Jobs       int             `json:"jobs"`
	Runner     exp.RunnerStats `json:"runner"`
	TracedSims uint64          `json:"traced_sims"`
	Cache      CacheStats      `json:"cache"`
	Draining   bool            `json:"draining"`
}

// Stats snapshots the farm counters (also served at /api/v1/stats).
func (s *Server) Stats() StatsSnapshot {
	var out StatsSnapshot
	out.Queue.Depth, out.Queue.Max = s.sched.depth()
	s.mu.Lock()
	out.Jobs = len(s.jobs)
	s.mu.Unlock()
	out.Runner = s.runner.Stats()
	out.TracedSims = s.tracedSims.Load()
	out.Cache = s.cache.Stats()
	out.Draining = s.draining.Load()
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
