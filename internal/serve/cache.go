package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/machine"
)

// SchemaVersion is the on-disk cache schema. It participates in both
// the key derivation and the directory layout (<root>/v<N>/...), so a
// schema bump orphans old entries instead of misreading them: a new
// binary simply never looks inside v<N-1>.
const SchemaVersion = 1

// entryFile is the manifest inside each entry directory. Result holds
// the canonical result encoding verbatim (see EncodeResult); keeping
// it as raw bytes means a cache read can return byte-identical output
// without a re-encode round-trip.
type entryFile struct {
	Schema int             `json:"schema"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result"`
}

// Artifact names stored alongside entry.json. The whitelist doubles as
// path-traversal protection on the artifact endpoint.
const (
	ArtifactCSV      = "result.csv"
	ArtifactJSONL    = "trace.jsonl"
	ArtifactPerfetto = "trace.perfetto.json"
)

var artifactNames = map[string]bool{
	ArtifactCSV:      true,
	ArtifactJSONL:    true,
	ArtifactPerfetto: true,
}

// CacheStats counts cache traffic. Corrupt counts entries that failed
// to decode and were evicted; each such read falls back to
// re-simulation, so Corrupt > 0 is survivable but worth alerting on.
// TmpReaped counts crash-orphaned staging directories removed at open;
// GCEvictions counts entries the size-budgeted LRU sweep removed.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Fills       uint64 `json:"fills"`
	Corrupt     uint64 `json:"corrupt"`
	TmpReaped   uint64 `json:"tmp_reaped"`
	GCEvictions uint64 `json:"gc_evictions"`
}

// Cache is a content-addressed, disk-backed store of simulation
// results. Entries are immutable once written: a Put stages the whole
// entry in a temp directory and publishes it with a single rename, so
// readers never observe a partial entry and concurrent writers of the
// same key converge on exactly one copy (the rename loser discards its
// staging directory — both wrote identical content anyway, since the
// key is a content address over everything that determines the run).
type Cache struct {
	root     string // <dir>/v<SchemaVersion>
	maxBytes int64  // LRU GC budget; 0 = unbounded

	gcMu sync.Mutex // serializes GC sweeps

	hits        atomic.Uint64
	misses      atomic.Uint64
	fills       atomic.Uint64
	corrupt     atomic.Uint64
	tmpReaped   atomic.Uint64
	gcEvictions atomic.Uint64
}

// OpenCache opens (creating if needed) a result cache rooted at dir.
// Staging directories orphaned by a crash between write and rename
// (".tmp-*") are reaped here: they were never published, so nothing
// ever read them, and leaving them would leak disk forever.
func OpenCache(dir string) (*Cache, error) {
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	c := &Cache{root: root}
	entries, _ := os.ReadDir(root)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if os.RemoveAll(filepath.Join(root, e.Name())) == nil {
				c.tmpReaped.Add(1)
			}
		}
	}
	return c, nil
}

// SetMaxBytes sets the LRU GC budget (0 disables). Call before traffic;
// each fill then triggers a sweep that evicts least-recently-accessed
// entries until the cache fits.
func (c *Cache) SetMaxBytes(n int64) { c.maxBytes = n }

// Dir returns the versioned cache root.
func (c *Cache) Dir() string { return c.root }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Fills:       c.fills.Load(),
		Corrupt:     c.corrupt.Load(),
		TmpReaped:   c.tmpReaped.Load(),
		GCEvictions: c.gcEvictions.Load(),
	}
}

// dirFor shards entries by the first hash byte to keep directory
// fan-out sane on large farms.
func (c *Cache) dirFor(hash string) string {
	return filepath.Join(c.root, hash[:2], hash)
}

func (c *Cache) entryDir(k Key) string { return c.dirFor(k.Hash) }

// Get loads the cached result for k. A missing entry is a plain miss.
// An entry that exists but cannot be decoded — truncated write from a
// crash predating the rename discipline, bit rot, a hand-edited file —
// is counted as Corrupt, evicted, and reported as a miss so the caller
// falls back to re-simulation and the next Put heals the entry.
func (c *Cache) Get(k Key) (*machine.Result, bool) {
	res, _, ok := c.get(k)
	return res, ok
}

// GetRaw is Get but also returns the canonical result encoding
// verbatim as stored, for byte-identical responses.
func (c *Cache) GetRaw(k Key) (*machine.Result, []byte, bool) {
	return c.get(k)
}

func (c *Cache) get(k Key) (*machine.Result, []byte, bool) {
	dir := c.entryDir(k)
	data, err := os.ReadFile(filepath.Join(dir, "entry.json"))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Directory exists but the manifest is unreadable:
			// treat as corruption, not a plain miss.
			c.evict(dir)
		}
		c.misses.Add(1)
		return nil, nil, false
	}
	var e entryFile
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != SchemaVersion || len(e.Result) == 0 {
		c.evict(dir)
		c.misses.Add(1)
		return nil, nil, false
	}
	var res machine.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		c.evict(dir)
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	c.touch(dir)
	return &res, []byte(e.Result), true
}

// touch stamps the entry's last access (the mtime of entry.json) so
// the LRU GC sweep evicts cold entries first. Best-effort: a failed
// stamp only makes the entry look older than it is.
func (c *Cache) touch(dir string) {
	now := time.Now()
	os.Chtimes(filepath.Join(dir, "entry.json"), now, now)
}

// evict removes a corrupt entry so the next Put can heal it.
func (c *Cache) evict(dir string) {
	c.corrupt.Add(1)
	os.RemoveAll(dir)
}

// Put stores the result for k, along with any extra artifacts
// (name -> content; names must be from the artifact whitelist). The
// entry is staged in a temp dir under the cache root (same filesystem,
// so the final rename is atomic) and published with one rename.
func (c *Cache) Put(k Key, res *machine.Result, artifacts map[string][]byte) error {
	raw, err := EncodeResult(res)
	if err != nil {
		return fmt.Errorf("serve: encode result: %w", err)
	}
	// Compact on purpose: MarshalIndent would re-indent the embedded
	// RawMessage and break byte-identity with EncodeResult.
	entry, err := json.Marshal(entryFile{Schema: SchemaVersion, ID: k.ID, Result: raw})
	if err != nil {
		return fmt.Errorf("serve: encode entry: %w", err)
	}
	files := map[string][]byte{"entry.json": append(entry, '\n')}
	for name, data := range artifacts {
		if !artifactNames[name] {
			return fmt.Errorf("serve: artifact name %q not in whitelist", name)
		}
		files[name] = data
	}
	return c.publish(k.Hash, files)
}

// publish stages files in a temp dir and swaps them in as the entry
// for hash with one rename, then fsyncs so the publish survives power
// loss (a rename alone is only atomic, not durable — the metadata can
// still be sitting in the page cache when the power goes).
func (c *Cache) publish(hash string, files map[string][]byte) error {
	tmp, err := os.MkdirTemp(c.root, ".tmp-"+hash[:8]+"-")
	if err != nil {
		return fmt.Errorf("serve: stage entry: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for name, data := range files {
		if err := writeFileSync(filepath.Join(tmp, name), data); err != nil {
			return fmt.Errorf("serve: stage %s: %w", name, err)
		}
	}

	dir := c.dirFor(hash)
	if err := os.MkdirAll(filepath.Dir(dir), 0o777); err != nil {
		return fmt.Errorf("serve: shard dir: %w", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		// The entry already exists: either a concurrent writer of the
		// same key (identical content — the key is a content address)
		// or an artifact upgrade replacing a plain entry. Retire the
		// old directory and swap ours in; any winner is valid. A
		// reader racing the swap can observe a miss, which safely
		// degrades to re-simulation.
		old := tmp + ".old"
		yanked := os.Rename(dir, old) == nil
		if err := os.Rename(tmp, dir); err != nil {
			if yanked && os.Rename(old, dir) != nil {
				// Restore lost too: a concurrent writer re-published
				// while we held the yank. Its content is identical
				// (content address), so the yanked copy is junk.
				os.RemoveAll(old)
			}
			if _, statErr := os.Stat(filepath.Join(dir, "entry.json")); statErr == nil {
				return nil // a concurrent writer won; same content
			}
			return fmt.Errorf("serve: publish entry: %w", err)
		}
		if yanked {
			os.RemoveAll(old)
		}
	}
	// Make the rename itself durable: fsync the shard directory that
	// now references the entry (and the entry dir for its file links).
	syncDir(dir)
	syncDir(filepath.Join(dir, "entry.json"))
	c.fills.Add(1)
	c.maybeGC()
	return nil
}

// writeFileSync writes data and fsyncs before closing, so a published
// entry's content is on stable storage, not just in the page cache.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeEntry validates raw entry.json bytes — schema, manifest shape,
// and that the embedded result decodes — returning the result. It is
// the gate both for entries fetched from peers and for entries pushed
// at us by replication repair: garbage from the network must never
// reach disk or a client.
func decodeEntry(data []byte) (*machine.Result, error) {
	var e entryFile
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("serve: entry manifest: %w", err)
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("serve: entry schema %d, want %d", e.Schema, SchemaVersion)
	}
	if len(e.Result) == 0 {
		return nil, errors.New("serve: entry has no result")
	}
	var res machine.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return nil, fmt.Errorf("serve: entry result: %w", err)
	}
	return &res, nil
}

// EntryResult validates raw entry.json bytes and returns the embedded
// canonical result encoding verbatim — the client-side decode of the
// GET /api/v1/runs/{hash}/entry protocol.
func EntryResult(data []byte) (json.RawMessage, error) {
	if _, err := decodeEntry(data); err != nil {
		return nil, err
	}
	var e entryFile
	json.Unmarshal(data, &e) // cannot fail: decodeEntry just did it
	return e.Result, nil
}

// ValidateEntry checks that body is a well-formed cache entry for the
// peer-fetch protocol (hash names the run; the body cannot prove the
// binding — peers are trusted for that — but malformed bodies are
// rejected before they touch disk).
func ValidateEntry(hash string, body []byte) error {
	_, err := decodeEntry(body)
	return err
}

// RawEntry returns the verbatim entry.json bytes for a run hash — the
// body of the inter-node GET /api/v1/runs/{hash}/entry protocol. The
// bytes are validated before they are served; a corrupt entry is
// evicted and reported as missing, exactly as in get().
func (c *Cache) RawEntry(hash string) ([]byte, bool) {
	dir := c.dirFor(hash)
	data, err := os.ReadFile(filepath.Join(dir, "entry.json"))
	if err != nil {
		return nil, false
	}
	if _, err := decodeEntry(data); err != nil {
		c.evict(dir)
		return nil, false
	}
	c.touch(dir)
	return data, true
}

// PutRawEntry stores verbatim entry.json bytes under hash — the write
// side of the peer protocol (peer fetch landing locally, or a repair
// push arriving). Byte-identity across the cluster follows: every
// replica holds the same bytes the owner's simulation produced. An
// already-present entry is left untouched (same content by content
// addressing; skipping the write keeps repair pushes idempotent and
// cheap).
func (c *Cache) PutRawEntry(hash string, data []byte) error {
	if _, err := decodeEntry(data); err != nil {
		return err
	}
	if c.HasEntry(hash) {
		return nil
	}
	return c.publish(hash, map[string][]byte{"entry.json": data})
}

// HasEntry reports whether a published entry exists for hash.
func (c *Cache) HasEntry(hash string) bool {
	_, err := os.Stat(filepath.Join(c.dirFor(hash), "entry.json"))
	return err == nil
}

// maybeGC runs a sweep when a budget is configured.
func (c *Cache) maybeGC() {
	if c.maxBytes > 0 {
		c.GC(c.maxBytes)
	}
}

// GC evicts least-recently-accessed entries until the cache's total
// size fits maxBytes. Access time is the entry.json mtime maintained
// by touch(); ties and missing stamps degrade to eviction-by-path,
// which is deterministic if arbitrary. Returns entries evicted and
// bytes freed.
func (c *Cache) GC(maxBytes int64) (evicted int, freed int64) {
	c.gcMu.Lock()
	defer c.gcMu.Unlock()

	type entryInfo struct {
		dir   string
		size  int64
		atime time.Time
	}
	var entries []entryInfo
	var total int64
	shards, _ := os.ReadDir(c.root)
	for _, sh := range shards {
		if !sh.IsDir() || strings.HasPrefix(sh.Name(), ".tmp-") {
			continue
		}
		shardDir := filepath.Join(c.root, sh.Name())
		dirs, _ := os.ReadDir(shardDir)
		for _, e := range dirs {
			if !e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			dir := filepath.Join(shardDir, e.Name())
			info := entryInfo{dir: dir}
			files, _ := os.ReadDir(dir)
			for _, f := range files {
				if fi, err := f.Info(); err == nil {
					info.size += fi.Size()
					if f.Name() == "entry.json" {
						info.atime = fi.ModTime()
					}
				}
			}
			entries = append(entries, info)
			total += info.size
		}
	}
	if total <= maxBytes {
		return 0, 0
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].atime.Equal(entries[j].atime) {
			return entries[i].atime.Before(entries[j].atime)
		}
		return entries[i].dir < entries[j].dir
	})
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.RemoveAll(e.dir); err != nil {
			continue
		}
		total -= e.size
		freed += e.size
		evicted++
		c.gcEvictions.Add(1)
	}
	return evicted, freed
}

// SizeBytes sums the on-disk size of all published entries.
func (c *Cache) SizeBytes() int64 {
	var total int64
	shards, _ := os.ReadDir(c.root)
	for _, sh := range shards {
		if !sh.IsDir() || strings.HasPrefix(sh.Name(), ".tmp-") {
			continue
		}
		filepath.WalkDir(filepath.Join(c.root, sh.Name()), func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				if fi, err := d.Info(); err == nil {
					total += fi.Size()
				}
			}
			return nil
		})
	}
	return total
}

// Artifact returns the named artifact for k, or fs.ErrNotExist.
func (c *Cache) Artifact(k Key, name string) ([]byte, error) {
	if !artifactNames[name] || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("serve: artifact name %q not in whitelist: %w", name, fs.ErrNotExist)
	}
	return os.ReadFile(filepath.Join(c.entryDir(k), name))
}

// HasArtifacts reports whether the entry for k carries trace
// artifacts. Entries written by plain (non-artifact) runs only hold
// entry.json + result.csv; an artifact request must re-run traced even
// on a result hit.
func (c *Cache) HasArtifacts(k Key) bool {
	_, err := os.Stat(filepath.Join(c.entryDir(k), ArtifactJSONL))
	return err == nil
}

// Len counts the entries currently on disk (test and stats helper).
func (c *Cache) Len() int {
	n := 0
	shards, _ := os.ReadDir(c.root)
	for _, sh := range shards {
		if !sh.IsDir() || strings.HasPrefix(sh.Name(), ".tmp-") {
			continue
		}
		entries, _ := os.ReadDir(filepath.Join(c.root, sh.Name()))
		for _, e := range entries {
			if e.IsDir() && !strings.HasPrefix(e.Name(), ".tmp-") {
				n++
			}
		}
	}
	return n
}

// EncodeResult is the canonical JSON encoding of a simulation result —
// the single encoding used for cache entries, stream lines and
// byte-identity checks. machine.Result's marshalers avoid map
// iteration, so encoding is deterministic: encode(decode(encode(x)))
// == encode(x), byte for byte.
func EncodeResult(res *machine.Result) ([]byte, error) {
	return json.Marshal(res)
}

// runnerCache adapts the server's cache tiers to exp.SourcedResultCache
// so the runner's memo layer consults them on a memo miss and writes
// back after each fresh simulation. The read chain is: local disk,
// then — for keys this node does not own — the owning peers, then a
// miss (the runner simulates locally as the degraded fallback, never
// failing the request). Plain runs store result.csv alongside the
// manifest so every cached run has at least one fetchable artifact.
type runnerCache struct {
	s *Server
}

func (rc runnerCache) Get(k exp.RunKey) (*machine.Result, bool) {
	res, _, ok := rc.GetSource(k)
	return res, ok
}

func (rc runnerCache) GetSource(k exp.RunKey) (*machine.Result, exp.Source, bool) {
	key, err := KeyForRun(k)
	if err != nil {
		return nil, exp.SourceSim, false
	}
	s := rc.s
	if res, ok := s.cache.Get(key); ok {
		s.repair(key.Hash)
		return res, exp.SourceCache, true
	}
	if s.fetcher != nil && !s.ring.Owns(key.Hash) {
		if body, _, ok := s.fetcher.Fetch(key.Hash); ok {
			if res, err := decodeEntry(body); err == nil {
				// Keep the replica: the bytes are the owner's
				// canonical encoding, so every later read here is
				// byte-identical to the owner's.
				s.cache.PutRawEntry(key.Hash, body)
				return res, exp.SourcePeer, true
			}
		}
		// Every owner is down, open-circuited, or cold: degrade to a
		// local simulation rather than fail the run.
		s.fallbackSims.Add(1)
	}
	return nil, exp.SourceSim, false
}

func (rc runnerCache) Put(k exp.RunKey, res *machine.Result) {
	key, err := KeyForRun(k)
	if err != nil {
		return
	}
	// Best effort: a failed fill degrades to re-simulation later.
	_ = rc.s.cache.Put(key, res, map[string][]byte{
		ArtifactCSV: resultCSV(k, res),
	})
	rc.s.repair(key.Hash)
}
