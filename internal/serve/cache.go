package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/machine"
)

// SchemaVersion is the on-disk cache schema. It participates in both
// the key derivation and the directory layout (<root>/v<N>/...), so a
// schema bump orphans old entries instead of misreading them: a new
// binary simply never looks inside v<N-1>.
const SchemaVersion = 1

// entryFile is the manifest inside each entry directory. Result holds
// the canonical result encoding verbatim (see EncodeResult); keeping
// it as raw bytes means a cache read can return byte-identical output
// without a re-encode round-trip.
type entryFile struct {
	Schema int             `json:"schema"`
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result"`
}

// Artifact names stored alongside entry.json. The whitelist doubles as
// path-traversal protection on the artifact endpoint.
const (
	ArtifactCSV      = "result.csv"
	ArtifactJSONL    = "trace.jsonl"
	ArtifactPerfetto = "trace.perfetto.json"
)

var artifactNames = map[string]bool{
	ArtifactCSV:      true,
	ArtifactJSONL:    true,
	ArtifactPerfetto: true,
}

// CacheStats counts cache traffic. Corrupt counts entries that failed
// to decode and were evicted; each such read falls back to
// re-simulation, so Corrupt > 0 is survivable but worth alerting on.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Fills   uint64 `json:"fills"`
	Corrupt uint64 `json:"corrupt"`
}

// Cache is a content-addressed, disk-backed store of simulation
// results. Entries are immutable once written: a Put stages the whole
// entry in a temp directory and publishes it with a single rename, so
// readers never observe a partial entry and concurrent writers of the
// same key converge on exactly one copy (the rename loser discards its
// staging directory — both wrote identical content anyway, since the
// key is a content address over everything that determines the run).
type Cache struct {
	root string // <dir>/v<SchemaVersion>

	hits    atomic.Uint64
	misses  atomic.Uint64
	fills   atomic.Uint64
	corrupt atomic.Uint64
}

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	return &Cache{root: root}, nil
}

// Dir returns the versioned cache root.
func (c *Cache) Dir() string { return c.root }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Fills:   c.fills.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// entryDir shards entries by the first hash byte to keep directory
// fan-out sane on large farms.
func (c *Cache) entryDir(k Key) string {
	return filepath.Join(c.root, k.Hash[:2], k.Hash)
}

// Get loads the cached result for k. A missing entry is a plain miss.
// An entry that exists but cannot be decoded — truncated write from a
// crash predating the rename discipline, bit rot, a hand-edited file —
// is counted as Corrupt, evicted, and reported as a miss so the caller
// falls back to re-simulation and the next Put heals the entry.
func (c *Cache) Get(k Key) (*machine.Result, bool) {
	res, _, ok := c.get(k)
	return res, ok
}

// GetRaw is Get but also returns the canonical result encoding
// verbatim as stored, for byte-identical responses.
func (c *Cache) GetRaw(k Key) (*machine.Result, []byte, bool) {
	return c.get(k)
}

func (c *Cache) get(k Key) (*machine.Result, []byte, bool) {
	dir := c.entryDir(k)
	data, err := os.ReadFile(filepath.Join(dir, "entry.json"))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Directory exists but the manifest is unreadable:
			// treat as corruption, not a plain miss.
			c.evict(dir)
		}
		c.misses.Add(1)
		return nil, nil, false
	}
	var e entryFile
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != SchemaVersion || len(e.Result) == 0 {
		c.evict(dir)
		c.misses.Add(1)
		return nil, nil, false
	}
	var res machine.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		c.evict(dir)
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	return &res, []byte(e.Result), true
}

// evict removes a corrupt entry so the next Put can heal it.
func (c *Cache) evict(dir string) {
	c.corrupt.Add(1)
	os.RemoveAll(dir)
}

// Put stores the result for k, along with any extra artifacts
// (name -> content; names must be from the artifact whitelist). The
// entry is staged in a temp dir under the cache root (same filesystem,
// so the final rename is atomic) and published with one rename.
func (c *Cache) Put(k Key, res *machine.Result, artifacts map[string][]byte) error {
	raw, err := EncodeResult(res)
	if err != nil {
		return fmt.Errorf("serve: encode result: %w", err)
	}
	// Compact on purpose: MarshalIndent would re-indent the embedded
	// RawMessage and break byte-identity with EncodeResult.
	entry, err := json.Marshal(entryFile{Schema: SchemaVersion, ID: k.ID, Result: raw})
	if err != nil {
		return fmt.Errorf("serve: encode entry: %w", err)
	}
	files := map[string][]byte{"entry.json": append(entry, '\n')}
	for name, data := range artifacts {
		if !artifactNames[name] {
			return fmt.Errorf("serve: artifact name %q not in whitelist", name)
		}
		files[name] = data
	}

	tmp, err := os.MkdirTemp(c.root, ".tmp-"+k.Hash[:8]+"-")
	if err != nil {
		return fmt.Errorf("serve: stage entry: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o666); err != nil {
			return fmt.Errorf("serve: stage %s: %w", name, err)
		}
	}

	dir := c.entryDir(k)
	if err := os.MkdirAll(filepath.Dir(dir), 0o777); err != nil {
		return fmt.Errorf("serve: shard dir: %w", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		// The entry already exists: either a concurrent writer of the
		// same key (identical content — the key is a content address)
		// or an artifact upgrade replacing a plain entry. Retire the
		// old directory and swap ours in; any winner is valid. A
		// reader racing the swap can observe a miss, which safely
		// degrades to re-simulation.
		old := tmp + ".old"
		yanked := os.Rename(dir, old) == nil
		if err := os.Rename(tmp, dir); err != nil {
			if yanked {
				os.Rename(old, dir) // best-effort restore
			}
			if _, statErr := os.Stat(filepath.Join(dir, "entry.json")); statErr == nil {
				return nil // a concurrent writer won; same content
			}
			return fmt.Errorf("serve: publish entry: %w", err)
		}
		if yanked {
			os.RemoveAll(old)
		}
	}
	c.fills.Add(1)
	return nil
}

// Artifact returns the named artifact for k, or fs.ErrNotExist.
func (c *Cache) Artifact(k Key, name string) ([]byte, error) {
	if !artifactNames[name] || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("serve: artifact name %q not in whitelist: %w", name, fs.ErrNotExist)
	}
	return os.ReadFile(filepath.Join(c.entryDir(k), name))
}

// HasArtifacts reports whether the entry for k carries trace
// artifacts. Entries written by plain (non-artifact) runs only hold
// entry.json + result.csv; an artifact request must re-run traced even
// on a result hit.
func (c *Cache) HasArtifacts(k Key) bool {
	_, err := os.Stat(filepath.Join(c.entryDir(k), ArtifactJSONL))
	return err == nil
}

// Len counts the entries currently on disk (test and stats helper).
func (c *Cache) Len() int {
	n := 0
	shards, _ := os.ReadDir(c.root)
	for _, sh := range shards {
		if !sh.IsDir() || strings.HasPrefix(sh.Name(), ".tmp-") {
			continue
		}
		entries, _ := os.ReadDir(filepath.Join(c.root, sh.Name()))
		for _, e := range entries {
			if e.IsDir() && !strings.HasPrefix(e.Name(), ".tmp-") {
				n++
			}
		}
	}
	return n
}

// EncodeResult is the canonical JSON encoding of a simulation result —
// the single encoding used for cache entries, stream lines and
// byte-identity checks. machine.Result's marshalers avoid map
// iteration, so encoding is deterministic: encode(decode(encode(x)))
// == encode(x), byte for byte.
func EncodeResult(res *machine.Result) ([]byte, error) {
	return json.Marshal(res)
}

// runnerCache adapts Cache to exp.ResultCache so the runner's memo
// layer consults disk on a memo miss and writes back after each fresh
// simulation. Plain runs store result.csv alongside the manifest so
// every cached run has at least one fetchable artifact.
type runnerCache struct {
	c *Cache
}

func (rc runnerCache) Get(k exp.RunKey) (*machine.Result, bool) {
	key, err := KeyForRun(k)
	if err != nil {
		return nil, false
	}
	return rc.c.Get(key)
}

func (rc runnerCache) Put(k exp.RunKey, res *machine.Result) {
	key, err := KeyForRun(k)
	if err != nil {
		return
	}
	// Best effort: a failed fill degrades to re-simulation later.
	_ = rc.c.Put(key, res, map[string][]byte{
		ArtifactCSV: resultCSV(k, res),
	})
}
