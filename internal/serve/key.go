// Package serve is the WiDir simulation farm: a long-running HTTP/JSON
// service that executes canonical simulations through exp.Runner and
// persists every result in a content-addressed disk cache, so
// identical sweeps — from any client, any process, any day — are
// served without re-simulating.
//
// The package sits deliberately OUTSIDE the simulator's determinism
// contract (it hosts HTTP handlers, worker goroutines and wall-clock
// concerns; widir-lint's walltime/gonosync rules exempt it), but
// everything it runs goes through the single-threaded deterministic
// simulator, so cached results are byte-identical to fresh serial
// runs. DESIGN.md §16 describes the architecture.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/workload"
)

// RunSpec names one canonical simulation in client terms. Scale is
// applied to the named application's profile exactly as
// exp.Options.Scale would, so a spec resolves to the same exp.RunKey a
// CLI sweep produces.
type RunSpec struct {
	Protocol  string  `json:"protocol"` // "baseline" or "widir"
	App       string  `json:"app"`
	Cores     int     `json:"cores"`
	Scale     float64 `json:"scale"`
	Seed      uint64  `json:"seed"`
	Artifacts bool    `json:"artifacts,omitempty"` // capture trace artifacts
}

// ParseProtocol maps the wire name to the protocol enum.
func ParseProtocol(s string) (coherence.Protocol, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return coherence.Baseline, nil
	case "widir":
		return coherence.WiDir, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want baseline or widir)", s)
	}
}

// Resolve validates the spec and returns the exp.RunKey it denotes.
func (s RunSpec) Resolve() (exp.RunKey, error) {
	p, err := ParseProtocol(s.Protocol)
	if err != nil {
		return exp.RunKey{}, err
	}
	prof, ok := workload.ByName(s.App)
	if !ok {
		return exp.RunKey{}, fmt.Errorf("unknown application %q", s.App)
	}
	if s.Cores <= 0 {
		return exp.RunKey{}, fmt.Errorf("cores %d must be positive", s.Cores)
	}
	if s.Scale <= 0 {
		return exp.RunKey{}, fmt.Errorf("scale %g must be positive", s.Scale)
	}
	if s.Seed == 0 {
		return exp.RunKey{}, fmt.Errorf("seed must be nonzero")
	}
	return exp.RunKey{
		Protocol: p,
		Cores:    s.Cores,
		App:      prof.Scale(s.Scale),
		Seed:     s.Seed,
	}, nil
}

// Key is the content address of one canonical run: a SHA-256 over the
// canonical machine-config encoding (machine.Config.CanonicalString),
// the canonical workload-profile encoding (profileCanonical) and the
// workload seed. ID is a human-readable prefix used in URLs and
// logging; Hash alone addresses storage.
type Key struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
}

// KeyForRun derives the content-addressed cache key for a canonical
// run. The config component is the normalized DefaultConfig for the
// run's (cores, protocol) — exactly the machine exp.Runner.Sim builds.
func KeyForRun(k exp.RunKey) (Key, error) {
	cfg := machine.DefaultConfig(k.Cores, k.Protocol)
	confStr, err := cfg.CanonicalString()
	if err != nil {
		return Key{}, fmt.Errorf("serve: config canonical encoding: %w", err)
	}
	var b strings.Builder
	b.WriteString("schema=")
	b.WriteString(strconv.Itoa(SchemaVersion))
	b.WriteString("\n[config]\n")
	b.WriteString(confStr)
	b.WriteString("[profile]\n")
	b.WriteString(profileCanonical(k.App))
	b.WriteString("[run]\nWorkloadSeed=")
	b.WriteString(strconv.FormatUint(k.Seed, 10))
	b.WriteByte('\n')
	sum := sha256.Sum256([]byte(b.String()))
	hash := hex.EncodeToString(sum[:])
	return Key{
		ID:   fmt.Sprintf("%s-%s-c%d-s%d-%s", strings.ToLower(k.Protocol.String()), k.App.Name, k.Cores, k.Seed, hash[:12]),
		Hash: hash,
	}, nil
}

// profileCanonical renders a workload profile as one "field=value"
// line per field, in fixed order — the profile component of the cache
// key. Like machine.Config's canonical encoder it names every field
// explicitly; TestProfileCanonicalCoversAllFields fails when
// workload.Profile grows a field this encoder does not consume, so
// two different workloads can never share a cache entry.
func profileCanonical(p workload.Profile) string {
	var e profCanon
	appendProfileCanonical(&e, &p)
	return e.b.String()
}

type profCanon struct {
	b     strings.Builder
	paths []string
}

func (e *profCanon) field(path, value string) {
	e.paths = append(e.paths, path)
	e.b.WriteString(path)
	e.b.WriteByte('=')
	e.b.WriteString(value)
	e.b.WriteByte('\n')
}

func pitoa(v int) string     { return strconv.Itoa(v) }
func pftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func appendProfileCanonical(e *profCanon, p *workload.Profile) {
	e.field("Name", p.Name)
	e.field("PaperMPKI", pftoa(p.PaperMPKI))
	e.field("Steps", pitoa(p.Steps))
	e.field("ComputePerMem", pitoa(p.ComputePerMem))
	e.field("HotLines", pitoa(p.HotLines))
	e.field("HotAccessFrac", pftoa(p.HotAccessFrac))
	e.field("HotWriteFrac", pftoa(p.HotWriteFrac))
	e.field("MidLines", pitoa(p.MidLines))
	e.field("MidSharers", pitoa(p.MidSharers))
	e.field("MidAccessFrac", pftoa(p.MidAccessFrac))
	e.field("MidWriteFrac", pftoa(p.MidWriteFrac))
	e.field("PrivateWriteFrac", pftoa(p.PrivateWriteFrac))
	e.field("StreamFrac", pftoa(p.StreamFrac))
	e.field("ReuseLines", pitoa(p.ReuseLines))
	e.field("MigLines", pitoa(p.MigLines))
	e.field("MigAccessFrac", pftoa(p.MigAccessFrac))
	e.field("PipeDepth", pitoa(p.PipeDepth))
	e.field("PipeAccessFrac", pftoa(p.PipeAccessFrac))
	e.field("PhaseEvery", pitoa(p.PhaseEvery))
	e.field("LockEvery", pitoa(p.LockEvery))
	e.field("Locks", pitoa(p.Locks))
	e.field("CritAccesses", pitoa(p.CritAccesses))
	e.field("BarrierEvery", pitoa(p.BarrierEvery))
}

// profileCanonicalPaths returns the encoder's field coverage for the
// reflection guard test.
func profileCanonicalPaths() []string {
	var e profCanon
	var p workload.Profile
	appendProfileCanonical(&e, &p)
	return e.paths
}
