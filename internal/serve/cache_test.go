package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/workload"
)

// simOnce runs one tiny canonical simulation (shared across cache
// tests — the cache layer only needs a real Result to round-trip).
var simOnce struct {
	sync.Once
	key exp.RunKey
	res *machine.Result
}

func tinyRun(t *testing.T) (exp.RunKey, *machine.Result) {
	t.Helper()
	simOnce.Do(func() {
		prof, ok := workload.ByName("water-spa")
		if !ok {
			t.Fatal("water-spa profile missing")
		}
		simOnce.key = exp.RunKey{Protocol: coherence.WiDir, Cores: 4, App: prof.Scale(0.02), Seed: 1}
		res, err := exp.NewRunner(1).Sim(simOnce.key.Protocol, simOnce.key.Cores, simOnce.key.App, simOnce.key.Seed)
		if err != nil {
			t.Fatalf("tiny sim: %v", err)
		}
		simOnce.res = res
	})
	if simOnce.res == nil {
		t.Fatal("tiny sim failed in an earlier test")
	}
	return simOnce.key, simOnce.res
}

// TestCacheRestartRoundTrip: a result put by one Cache instance is
// read back — bit-identical — by a fresh instance over the same
// directory, i.e. the cache survives process death.
func TestCacheRestartRoundTrip(t *testing.T) {
	rk, res := tinyRun(t)
	key, err := KeyForRun(rk)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key, res, map[string][]byte{ArtifactCSV: resultCSV(rk, res)}); err != nil {
		t.Fatal(err)
	}
	wantRaw, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new Cache over the same directory.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, raw, ok := c2.GetRaw(key)
	if !ok {
		t.Fatal("entry lost across restart")
	}
	if !bytes.Equal(raw, wantRaw) {
		t.Fatal("stored raw encoding differs from the canonical encoding")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("decoded result differs from the original")
	}
	reRaw, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reRaw, wantRaw) {
		t.Fatal("re-encoding the decoded result is not byte-identical: canonical encoding is unstable")
	}
	if csv, err := c2.Artifact(key, ArtifactCSV); err != nil || len(csv) == 0 {
		t.Fatalf("csv artifact lost across restart: %v", err)
	}
	if c2.Stats().Hits != 1 {
		t.Fatalf("restart read should count one hit, stats = %+v", c2.Stats())
	}
}

// TestCacheCorruptEntryFallsBack: truncated and garbage entries are
// detected, counted, evicted, and reported as misses — the caller
// re-simulates instead of serving junk — and a subsequent Put heals
// the entry.
func TestCacheCorruptEntryFallsBack(t *testing.T) {
	rk, res := tinyRun(t)
	key, err := KeyForRun(rk)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o666)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("not json at all"), 0o666)
		},
		"wrong-schema": func(path string) error {
			return os.WriteFile(path, []byte(`{"schema": 999, "id": "x", "result": {}}`), 0o666)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c, err := OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(key, res, nil); err != nil {
				t.Fatal(err)
			}
			entry := filepath.Join(c.Dir(), key.Hash[:2], key.Hash, "entry.json")
			if err := corrupt(entry); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := c.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("corrupt read should count corrupt=1 miss=1, stats = %+v", st)
			}
			if _, err := os.Stat(filepath.Join(c.Dir(), key.Hash[:2], key.Hash)); !os.IsNotExist(err) {
				t.Fatal("corrupt entry was not evicted")
			}
			// The re-simulation path heals the entry.
			if err := c.Put(key, res, nil); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); !ok {
				t.Fatal("healed entry still missing")
			}
		})
	}
}

// TestCacheConcurrentWriters: many goroutines putting the same key
// leave exactly one entry, no temp-dir litter, and a readable result.
func TestCacheConcurrentWriters(t *testing.T) {
	rk, res := tinyRun(t)
	key, err := KeyForRun(rk)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	wg.Add(writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Put(key, res, map[string][]byte{ArtifactCSV: resultCSV(rk, res)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("%d entries after %d same-key writers, want exactly 1", n, writers)
	}
	// No staging litter left behind by rename losers.
	matches, err := filepath.Glob(filepath.Join(c.Dir(), ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("staging dirs leaked: %v", matches)
	}
	if got, ok := c.Get(key); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("entry unreadable after concurrent writes")
	}
}

// TestCacheMissingIsPlainMiss: an absent entry is a miss, not
// corruption.
func TestCacheMissingIsPlainMiss(t *testing.T) {
	rk, _ := tinyRun(t)
	key, err := KeyForRun(rk)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("want misses=1 corrupt=0, got %+v", st)
	}
}

// TestCacheRejectsUnknownArtifact: artifact names outside the
// whitelist are refused at Put and at read.
func TestCacheRejectsUnknownArtifact(t *testing.T) {
	rk, res := tinyRun(t)
	key, err := KeyForRun(rk)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, res, map[string][]byte{"../escape": []byte("x")}); err == nil {
		t.Fatal("Put accepted a non-whitelisted artifact name")
	}
	if err := c.Put(key, res, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Artifact(key, "../../etc/passwd"); err == nil {
		t.Fatal("Artifact accepted a traversal path")
	}
}
