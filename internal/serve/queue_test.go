package serve

import (
	"strings"
	"testing"
)

func tagged(tag string, n int) []*run {
	out := make([]*run, n)
	for i := range out {
		out[i] = &run{idx: i, spec: RunSpec{App: tag}}
	}
	return out
}

// TestSchedulerRoundRobin: the take order interleaves clients at run
// granularity — the deterministic core of the farm's fairness claim,
// checked without any wall-clock or HTTP in the way.
func TestSchedulerRoundRobin(t *testing.T) {
	s := newScheduler(100)
	s.offer("A", tagged("a", 6))
	s.offer("B", tagged("b", 2))
	var order strings.Builder
	for i := 0; i < 8; i++ {
		r, ok := s.take()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		order.WriteString(r.spec.App)
	}
	if got := order.String(); got != "ababaaaa" {
		t.Fatalf("take order %q; want run-granularity alternation \"ababaaaa\", not job FIFO \"aaaaaabb\"", got)
	}
}

// TestSchedulerLateArrivalStillInterleaves: a client that shows up
// mid-drain joins the rotation immediately instead of waiting for the
// earlier client's queue to empty.
func TestSchedulerLateArrivalStillInterleaves(t *testing.T) {
	s := newScheduler(100)
	s.offer("A", tagged("a", 6))
	r, _ := s.take() // A is already being served...
	order := r.spec.App
	s.offer("B", tagged("b", 2)) // ...when B arrives
	for i := 0; i < 7; i++ {
		r, _ := s.take()
		order += r.spec.App
	}
	// B's two runs must land within the next four takes, not after
	// A's remaining five.
	bDone := strings.LastIndex(order, "b")
	if bDone < 0 || bDone > 4 {
		t.Fatalf("take order %q: late B finished at position %d, want <= 4", order, bDone)
	}
}

// TestSchedulerBackpressure: offers are all-or-nothing against the
// bound; rejected batches leave the queue untouched.
func TestSchedulerBackpressure(t *testing.T) {
	s := newScheduler(4)
	if !s.offer("A", tagged("a", 3)) {
		t.Fatal("3 runs into an empty 4-run queue rejected")
	}
	if s.offer("B", tagged("b", 2)) {
		t.Fatal("overflow batch accepted (3+2 > 4)")
	}
	if q, _ := s.depth(); q != 3 {
		t.Fatalf("rejected batch changed the depth: %d", q)
	}
	if !s.offer("B", tagged("b", 1)) {
		t.Fatal("fitting batch rejected")
	}
	s.take()
	if !s.offer("B", tagged("b", 1)) {
		t.Fatal("drained capacity not reusable")
	}
}

// TestSchedulerCloseDrains: close stops admission but take still
// hands out everything already queued before reporting closed.
func TestSchedulerCloseDrains(t *testing.T) {
	s := newScheduler(10)
	s.offer("A", tagged("a", 3))
	s.close()
	if s.offer("A", tagged("a", 1)) {
		t.Fatal("offer accepted after close")
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.take(); !ok {
			t.Fatalf("queued run %d lost at close", i)
		}
	}
	if _, ok := s.take(); ok {
		t.Fatal("take returned a run from an empty closed queue")
	}
}
