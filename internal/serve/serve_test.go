package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/exp"
)

// farm spins up a Server plus an httptest front-end over a cache dir.
func farm(t *testing.T, dir string, workers, maxQueue int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{CacheDir: dir, Workers: workers, MaxQueue: maxQueue})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// submit posts a sweep and decodes the 202 body.
func submit(t *testing.T, ts *httptest.Server, sr SweepRequest) (jobID string, keys []Key) {
	t.Helper()
	resp := post(t, ts, sr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: %s (%s)", resp.Status, e["error"])
	}
	var body struct {
		Job  string `json:"job"`
		Keys []Key  `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Job, body.Keys
}

func post(t *testing.T, ts *httptest.Server, sr SweepRequest) *http.Response {
	t.Helper()
	data, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// stream reads a job's result stream to completion.
func stream(t *testing.T, ts *httptest.Server, jobID string) []RunStatus {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/stream", ts.URL, jobID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	var out []RunStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st RunStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		out = append(out, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func tinySweep(client string) SweepRequest {
	return SweepRequest{
		Client:    client,
		Protocols: []string{"baseline", "widir"},
		Apps:      []string{"water-spa"},
		Cores:     4,
		Scale:     0.02,
		Seeds:     []uint64{1, 2},
	}
}

// TestServeEndToEnd drives the full farm surface: submit, stream,
// status, byte-identity against a direct exp.Runner, then a second
// identical submission served without a single new simulation, then a
// fresh server over the same cache dir serving everything from disk.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts := farm(t, dir, 2, 64)

	jobID, keys := submit(t, ts, tinySweep("e2e"))
	if len(keys) != 4 {
		t.Fatalf("2 protocols x 1 app x 2 seeds should be 4 runs, got %d", len(keys))
	}
	results := stream(t, ts, jobID)
	if len(results) != 4 {
		t.Fatalf("stream delivered %d results, want 4", len(results))
	}
	byHash := map[string]RunStatus{}
	for _, r := range results {
		if r.State != "done" {
			t.Fatalf("run %s state %q (err %q)", r.Key.ID, r.State, r.Error)
		}
		if r.Source != "sim" {
			t.Fatalf("first-ever run %s came from %q, want sim", r.Key.ID, r.Source)
		}
		if len(r.Result) == 0 {
			t.Fatalf("run %s has no result body", r.Key.ID)
		}
		byHash[r.Key.Hash] = r
	}

	// Byte-identity: a fresh, serial, farm-free runner must produce
	// exactly the bytes the farm streamed.
	direct := exp.NewRunner(1)
	for _, r := range results {
		rk, err := r.Spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		res, err := direct.Sim(rk.Protocol, rk.Cores, rk.App, rk.Seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Result, want) {
			t.Fatalf("run %s: farm result is not byte-identical to a direct serial run", r.Key.ID)
		}
	}

	// Job status after completion.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
		Failed    int    `json:"failed"`
	}
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if status.State != "done" || status.Completed != 4 || status.Failed != 0 {
		t.Fatalf("job status %+v", status)
	}

	// Second identical submission: zero new simulations (memo or disk),
	// same bytes.
	simsBefore := s.Runner().Stats().Sims
	jobID2, _ := submit(t, ts, tinySweep("e2e"))
	for _, r := range stream(t, ts, jobID2) {
		if r.Source == "sim" {
			t.Fatalf("repeat run %s re-simulated", r.Key.ID)
		}
		if !bytes.Equal(r.Result, byHash[r.Key.Hash].Result) {
			t.Fatalf("repeat run %s returned different bytes", r.Key.ID)
		}
	}
	if sims := s.Runner().Stats().Sims; sims != simsBefore {
		t.Fatalf("repeat sweep executed %d new simulations", sims-simsBefore)
	}

	// "Restart": a brand-new server over the same cache dir has a cold
	// memo, so every run must come from the disk cache — and still zero
	// simulations.
	s2, ts2 := farm(t, dir, 2, 64)
	jobID3, _ := submit(t, ts2, tinySweep("e2e-restarted"))
	for _, r := range stream(t, ts2, jobID3) {
		if r.Source != "cache" {
			t.Fatalf("post-restart run %s came from %q, want cache", r.Key.ID, r.Source)
		}
		if !bytes.Equal(r.Result, byHash[r.Key.Hash].Result) {
			t.Fatalf("post-restart run %s returned different bytes", r.Key.ID)
		}
	}
	st := s2.Stats()
	if st.Runner.Sims != 0 || st.Runner.CacheHits != 4 {
		t.Fatalf("post-restart farm should be all cache hits, runner stats %+v", st.Runner)
	}
}

// TestServeArtifacts: an artifact run stores and serves the trace
// JSONL, Perfetto and CSV artifacts; the CSV is also fetchable for
// plain runs.
func TestServeArtifacts(t *testing.T) {
	_, ts := farm(t, t.TempDir(), 1, 64)
	jobID, keys := submit(t, ts, SweepRequest{
		Client:    "tracer",
		Protocols: []string{"widir"},
		Apps:      []string{"water-spa"},
		Cores:     4,
		Scale:     0.02,
		Seeds:     []uint64{1},
		Artifacts: true,
	})
	results := stream(t, ts, jobID)
	if len(results) != 1 || results[0].State != "done" {
		t.Fatalf("artifact run failed: %+v", results)
	}
	for _, name := range []string{ArtifactCSV, ArtifactJSONL, ArtifactPerfetto} {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/runs/%s/artifacts/%s", ts.URL, keys[0].Hash, name))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: %s", name, resp.Status)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if buf.Len() == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
	}
	// Unknown artifact name and bogus hash 404/400 cleanly.
	resp, _ := http.Get(fmt.Sprintf("%s/api/v1/runs/%s/artifacts/secrets.txt", ts.URL, keys[0].Hash))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-whitelisted artifact: %s", resp.Status)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/v1/runs/nothex/artifacts/" + ArtifactCSV)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hash: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestServeArtifactUpgradesPlainEntry: a plain run caches only the
// result; a later artifact request for the same run re-simulates
// traced and upgrades the entry rather than serving a trace-less hit.
func TestServeArtifactUpgradesPlainEntry(t *testing.T) {
	s, ts := farm(t, t.TempDir(), 1, 64)
	plain := SweepRequest{
		Client: "up", Protocols: []string{"widir"}, Apps: []string{"water-spa"},
		Cores: 4, Scale: 0.02, Seeds: []uint64{1},
	}
	jobID, keys := submit(t, ts, plain)
	first := stream(t, ts, jobID)

	traced := plain
	traced.Artifacts = true
	jobID2, _ := submit(t, ts, traced)
	results := stream(t, ts, jobID2)
	if results[0].Source != "sim" {
		t.Fatalf("artifact request over a plain entry must re-simulate traced, got %q", results[0].Source)
	}
	if !bytes.Equal(results[0].Result, first[0].Result) {
		t.Fatal("traced re-simulation changed the result bytes: tracing is not inert")
	}
	if !s.Cache().HasArtifacts(keys[0]) {
		t.Fatal("entry was not upgraded with trace artifacts")
	}
	// Third request: now served from the upgraded entry.
	jobID3, _ := submit(t, ts, traced)
	if r := stream(t, ts, jobID3); r[0].Source != "cache" {
		t.Fatalf("upgraded entry not served from cache, got %q", r[0].Source)
	}
}

// TestServeRejectsBadSweeps: validation surfaces as 400s.
func TestServeRejectsBadSweeps(t *testing.T) {
	_, ts := farm(t, t.TempDir(), 1, 64)
	bad := []SweepRequest{
		{Protocols: []string{"widir"}, Apps: []string{"no-such-app"}, Cores: 4, Scale: 0.02, Seeds: []uint64{1}},
		{Protocols: []string{"token-ring"}, Apps: []string{"water-spa"}, Cores: 4, Scale: 0.02, Seeds: []uint64{1}},
		{Protocols: []string{"widir"}, Apps: []string{"water-spa"}, Cores: 4, Scale: 0.02},
		{},
	}
	for i, sr := range bad {
		resp := post(t, ts, sr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad sweep %d accepted: %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestServeDrainRejectsNewWork: after Drain starts, new sweeps get
// 503 while health and stats stay readable.
func TestServeDrainRejectsNewWork(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir(), Workers: 1, MaxQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts, tinySweep("late"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %s, want 503", resp.Status)
	}
	resp.Body.Close()
	for _, path := range []string{"/healthz", "/api/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during drain: %s", path, resp.Status)
		}
		resp.Body.Close()
	}
}
