package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// delegator lets an httptest server come up before the serve.Server it
// fronts exists — the cluster Config needs every peer URL up front.
type delegator struct {
	mu sync.Mutex
	h  http.Handler
}

func (d *delegator) set(h http.Handler) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

func (d *delegator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	h := d.h
	d.mu.Unlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// startCluster brings up n federated farm nodes, each with its own
// cache dir, all sharing one static peer set.
func startCluster(t *testing.T, n, replicas int) (nodes []*Server, fronts []*httptest.Server) {
	t.Helper()
	delegators := make([]*delegator, n)
	urls := make([]string, n)
	for i := range delegators {
		delegators[i] = &delegator{}
		ts := httptest.NewServer(delegators[i])
		fronts = append(fronts, ts)
		urls[i] = ts.URL
		t.Cleanup(ts.Close)
	}
	for i := 0; i < n; i++ {
		s, err := New(Config{
			CacheDir:         t.TempDir(),
			Workers:          2,
			MaxQueue:         64,
			Self:             urls[i],
			Peers:            urls,
			Replicas:         replicas,
			PeerTimeout:      2 * time.Second,
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		delegators[i].set(s.Handler())
		nodes = append(nodes, s)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Drain(ctx)
		})
	}
	return nodes, fronts
}

// resultsByHash indexes a completed stream by run hash, failing the
// test on any non-done run.
func resultsByHash(t *testing.T, results []RunStatus) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, st := range results {
		if st.State != "done" {
			t.Fatalf("run %s state %q (%s)", st.Key.ID, st.State, st.Error)
		}
		out[st.Key.Hash] = string(st.Result)
	}
	return out
}

// TestClusterFederation is the happy-path multi-node contract: a sweep
// on one cold node simulates everything once, replication repair pushes
// each entry onto its rendezvous owners, and the same sweep on a second
// node is then served entirely without simulation — owned keys from the
// repaired local cache, non-owned keys by peer fetch — byte-identical
// to a single-node run.
func TestClusterFederation(t *testing.T) {
	nodes, fronts := startCluster(t, 3, 2)

	// Reference: the same sweep on an isolated single-node farm.
	_, refTS := farm(t, t.TempDir(), 2, 64)
	refJob, _ := submit(t, refTS, tinySweep("ref"))
	ref := resultsByHash(t, stream(t, refTS, refJob))

	jobID, keys := submit(t, fronts[0], tinySweep("alice"))
	got := resultsByHash(t, stream(t, fronts[0], jobID))
	if len(got) != len(ref) {
		t.Fatalf("cluster run returned %d results, reference %d", len(got), len(ref))
	}
	for hash, body := range ref {
		if got[hash] != body {
			t.Fatalf("run %s: cluster result differs from single-node reference", hash[:12])
		}
	}

	// Node 0 was cold and so were its peers: every run simulated here,
	// and every non-owned key's failed peer consult became a fallback.
	ring0 := cluster.NewRing(fronts[0].URL, urlsOf(fronts), 2)
	notOwned0 := 0
	for _, k := range keys {
		if !ring0.Owns(k.Hash) {
			notOwned0++
		}
	}
	if st := nodes[0].Runner().Stats(); st.Sims != uint64(len(keys)) {
		t.Fatalf("node0 sims = %d, want %d (cold cluster)", st.Sims, len(keys))
	}
	if got := nodes[0].ClusterStats().FallbackSims; got != uint64(notOwned0) {
		t.Fatalf("node0 fallback sims = %d, want %d", got, notOwned0)
	}

	// Replication repair: every key's owner set now holds the entry.
	for _, k := range keys {
		for i, front := range fronts {
			ring := cluster.NewRing(front.URL, urlsOf(fronts), 2)
			if ring.Owns(k.Hash) && !nodes[i].Cache().HasEntry(k.Hash) {
				t.Fatalf("owner node%d missing repaired entry %s", i, k.Hash[:12])
			}
		}
	}

	// The same sweep on node 1: zero simulations. Keys node 1 owns were
	// repaired into its cache; the rest come from peers.
	ring1 := cluster.NewRing(fronts[1].URL, urlsOf(fronts), 2)
	owned1, peered1 := 0, 0
	for _, k := range keys {
		if ring1.Owns(k.Hash) {
			owned1++
		} else {
			peered1++
		}
	}
	jobID, _ = submit(t, fronts[1], tinySweep("bob"))
	results := stream(t, fronts[1], jobID)
	got1 := resultsByHash(t, results)
	for hash, body := range ref {
		if got1[hash] != body {
			t.Fatalf("run %s: node1 result differs from reference", hash[:12])
		}
	}
	bySource := map[string]int{}
	for _, st := range results {
		bySource[st.Source]++
	}
	if st := nodes[1].Runner().Stats(); st.Sims != 0 {
		t.Fatalf("node1 re-simulated %d runs; want 0 (sources: %v)", st.Sims, bySource)
	}
	if bySource["cache"] != owned1 || bySource["peer"] != peered1 {
		t.Fatalf("node1 sources = %v, want %d cache / %d peer", bySource, owned1, peered1)
	}
	cst := nodes[1].ClusterStats()
	if cst.Fetch.Hits != uint64(peered1) {
		t.Fatalf("node1 peer-fetch hits = %d, want %d", cst.Fetch.Hits, peered1)
	}
	if cst.FallbackSims != 0 {
		t.Fatalf("node1 fallback sims = %d, want 0", cst.FallbackSims)
	}
	// The runner-level provenance counter agrees with the wire count.
	if st := nodes[1].Runner().Stats(); st.PeerHits != uint64(peered1) {
		t.Fatalf("node1 runner peer hits = %d, want %d", st.PeerHits, peered1)
	}
}

func urlsOf(fronts []*httptest.Server) []string {
	urls := make([]string, len(fronts))
	for i, ts := range fronts {
		urls[i] = ts.URL
	}
	return urls
}

// badPeer is a peer that misbehaves in a configurable way, then can be
// healed for breaker-reclose checks.
type badPeer struct {
	mu   sync.Mutex
	mode string // "garbage", "hang", "healthy"
}

func (p *badPeer) set(mode string) {
	p.mu.Lock()
	p.mode = mode
	p.mu.Unlock()
}

func (p *badPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	mode := p.mode
	p.mu.Unlock()
	switch mode {
	case "hang":
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	case "healthy":
		http.NotFound(w, r)
	default: // garbage: 200 with a body that fails entry validation
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"schema":999,"junk":true`)
	}
}

// TestClusterDegradation is the availability contract: with every peer
// bad — one down, one serving garbage, one hanging past the timeout —
// a sweep still completes entirely via local fallback simulation, with
// results byte-identical to a healthy single-node run and no 5xx on the
// client surface. The garbage/hanging peers' breakers open during the
// sweep and re-close after cooldown once the peer heals.
func TestClusterDegradation(t *testing.T) {
	// Dead peer: a server that is already gone — connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	garbage := &badPeer{}
	garbageTS := httptest.NewServer(garbage)
	t.Cleanup(garbageTS.Close)

	hanging := &badPeer{}
	hanging.set("hang")
	hangingTS := httptest.NewServer(hanging)
	t.Cleanup(hangingTS.Close)

	front := &delegator{}
	selfTS := httptest.NewServer(front)
	t.Cleanup(selfTS.Close)

	peers := []string{selfTS.URL, deadURL, garbageTS.URL, hangingTS.URL}
	s, err := New(Config{
		CacheDir:         t.TempDir(),
		Workers:          2,
		MaxQueue:         64,
		Self:             selfTS.URL,
		Peers:            peers,
		Replicas:         2,
		PeerTimeout:      100 * time.Millisecond,
		BreakerThreshold: 1, // first failure opens: cheap, observable
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.set(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	// Pick the sweep seeds by ownership so the test is deterministic for
	// whatever ports httptest handed out: at least two seeds whose widir
	// key this node does NOT own, guaranteeing the peer-fetch (and its
	// failure fallback) path actually runs.
	ring := cluster.NewRing(selfTS.URL, peers, 2)
	sr := tinySweep("degraded")
	sr.Seeds = nil
	for seed := uint64(1); seed <= 128 && len(sr.Seeds) < 2; seed++ {
		spec := RunSpec{Protocol: "widir", App: "water-spa", Cores: sr.Cores, Scale: sr.Scale, Seed: seed}
		rk, err := spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		key, err := KeyForRun(rk)
		if err != nil {
			t.Fatal(err)
		}
		if !ring.Owns(key.Hash) {
			sr.Seeds = append(sr.Seeds, seed)
		}
	}
	if len(sr.Seeds) < 2 {
		t.Fatal("no non-owned widir key in 128 seeds; rendezvous hashing is broken")
	}

	// Reference run on a healthy single node, same seeds.
	_, refTS := farm(t, t.TempDir(), 2, 64)
	refSweep := sr
	refSweep.Client = "ref"
	refJob, _ := submit(t, refTS, refSweep)
	ref := resultsByHash(t, stream(t, refTS, refJob))

	jobID, keys := submit(t, selfTS, sr)
	got := resultsByHash(t, stream(t, selfTS, jobID))
	for hash, body := range ref {
		if got[hash] != body {
			t.Fatalf("run %s: degraded result differs from healthy reference", hash[:12])
		}
	}

	// Every run completed locally: the ones this node does not own each
	// count one fallback simulation.
	notOwned := 0
	for _, k := range keys {
		if !ring.Owns(k.Hash) {
			notOwned++
		}
	}
	if notOwned < 2 {
		t.Fatalf("seed selection should force >=2 non-owned keys, got %d", notOwned)
	}
	cst := s.ClusterStats()
	if cst.FallbackSims != uint64(notOwned) {
		t.Fatalf("fallback sims = %d, want %d", cst.FallbackSims, notOwned)
	}
	if cst.Fetch.Hits != 0 {
		t.Fatalf("fetch hits = %d from all-bad peers", cst.Fetch.Hits)
	}
	if cst.Fetch.BreakerOpens == 0 {
		t.Fatal("no breaker opened against all-bad peers")
	}

	// Every bad peer that was actually consulted (owns a key, or was a
	// repair target) must have an open breaker by now; with threshold 1
	// a single failure is enough.
	status := map[string]cluster.PeerStatus{}
	for _, ps := range cst.PeerStatus {
		status[ps.Peer] = ps
	}
	consulted := map[string]bool{}
	for _, k := range keys {
		for _, p := range ring.OtherOwners(k.Hash) {
			consulted[p] = true
		}
	}
	for peer := range consulted {
		if status[peer].Opens == 0 {
			t.Fatalf("consulted bad peer %s breaker never opened: %+v", peer, status[peer])
		}
	}

	// Heal the garbage peer, force its breaker open if the sweep never
	// consulted it, and let the cooldown lapse: the next fetch that
	// consults it is the half-open probe, and its clean 404 re-closes
	// the breaker.
	probe := ""
	for i := 0; probe == ""; i++ {
		h := fmt.Sprintf("%064x", i)
		for _, p := range ring.OtherOwners(h) {
			if p == garbageTS.URL {
				probe = h
			}
		}
	}
	if !consulted[garbageTS.URL] {
		s.fetcher.Fetch(probe) // still garbage: trips the breaker open
	}
	garbage.set("healthy")
	time.Sleep(100 * time.Millisecond) // > cooldown
	s.fetcher.Fetch(probe)
	for _, ps := range s.fetcher.PeerStatuses() {
		if ps.Peer == garbageTS.URL && ps.Breaker != "closed" {
			t.Fatalf("healed peer breaker = %s, want closed", ps.Breaker)
		}
	}
}
