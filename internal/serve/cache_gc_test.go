package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/xrand"
)

// TestCacheReapsCrashStaging simulates a node killed between staging an
// entry and the publishing rename: the orphaned .tmp-* directory must
// be reaped on the next open, or every crash leaks disk forever.
func TestCacheReapsCrashStaging(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The moment of death: files written into the staging dir, rename
	// never issued. This is byte-for-byte what publish() leaves behind
	// when SIGKILLed between writeFileSync and os.Rename.
	stage := filepath.Join(c.Dir(), ".tmp-deadbeef-12345")
	if err := os.MkdirAll(stage, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "entry.json"), []byte(`{"schema":1}`), 0o666); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Fatal("crash-orphaned staging dir survived restart")
	}
	if got := c2.Stats().TmpReaped; got != 1 {
		t.Fatalf("TmpReaped = %d, want 1", got)
	}
}

// fakeHash builds a distinct 64-hex run hash for GC tests.
func fakeHash(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

// TestCacheGCEvictsLRU: with a byte budget, the sweep evicts the
// least-recently-accessed entries first and leaves the hot ones.
func TestCacheGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"x":"` + strings.Repeat("y", 1000) + `"}`)
	const n = 6
	for i := 0; i < n; i++ {
		if err := c.publish(fakeHash(i), map[string][]byte{"entry.json": body}); err != nil {
			t.Fatal(err)
		}
		// Stamp strictly increasing access times: entry 0 is coldest.
		ts := time.Now().Add(time.Duration(i-n) * time.Hour)
		if err := os.Chtimes(filepath.Join(c.dirFor(fakeHash(i)), "entry.json"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	total := c.SizeBytes()
	per := total / n

	// Budget for three entries: the three coldest must go.
	evicted, freed := c.GC(3 * per)
	if evicted != 3 {
		t.Fatalf("evicted %d entries, want 3", evicted)
	}
	if freed != 3*per {
		t.Fatalf("freed %d bytes, want %d", freed, 3*per)
	}
	for i := 0; i < n; i++ {
		has := c.HasEntry(fakeHash(i))
		if i < 3 && has {
			t.Fatalf("cold entry %d survived the sweep", i)
		}
		if i >= 3 && !has {
			t.Fatalf("hot entry %d was evicted", i)
		}
	}
	if got := c.Stats().GCEvictions; got != 3 {
		t.Fatalf("GCEvictions = %d, want 3", got)
	}
	if c.SizeBytes() > 3*per {
		t.Fatalf("cache still %d bytes over a %d budget", c.SizeBytes(), 3*per)
	}
}

// TestCacheGCUnderBudgetIsNoop: a cache that fits is left alone.
func TestCacheGCUnderBudgetIsNoop(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.publish(fakeHash(0), map[string][]byte{"entry.json": []byte(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	if evicted, _ := c.GC(1 << 20); evicted != 0 {
		t.Fatalf("under-budget sweep evicted %d entries", evicted)
	}
	if !c.HasEntry(fakeHash(0)) {
		t.Fatal("entry lost to a no-op sweep")
	}
}

// TestRetryAfterBounds pins the Retry-After contract from the ISSUE:
// advice scales with queue depth and stays within [retryAfterMin,
// retryAfterMaxBase + retryAfterMaxBase/2] whatever the jitter draws.
func TestRetryAfterBounds(t *testing.T) {
	rng := xrand.New(7)
	const max = 256
	for depth := 0; depth <= max; depth += 16 {
		base := retryAfterMin + (retryAfterMaxBase-retryAfterMin)*depth/max
		for trial := 0; trial < 200; trial++ {
			got := retryAfterSeconds(depth, max, rng)
			if got < base || got > base+base/2 {
				t.Fatalf("depth %d: advice %d outside [%d, %d]", depth, got, base, base+base/2)
			}
			if got < retryAfterMin || got > retryAfterMaxBase+retryAfterMaxBase/2 {
				t.Fatalf("depth %d: advice %d outside global bound [1, 15]", depth, got)
			}
		}
	}
	// Scaling: a full queue must advise strictly longer waits than an
	// empty one (base 10 vs base 1 — jitter cannot bridge the gap
	// because empty-queue jitter is capped at base/2 = 0).
	if empty := retryAfterSeconds(0, max, rng); empty != retryAfterMin {
		t.Fatalf("empty-queue advice = %d, want %d", empty, retryAfterMin)
	}
	if full := retryAfterSeconds(max, max, rng); full < retryAfterMaxBase {
		t.Fatalf("full-queue advice = %d, below base %d", full, retryAfterMaxBase)
	}
	// Jitter actually spreads: across many draws at full depth the
	// advice is not constant.
	seen := map[int]bool{}
	for trial := 0; trial < 200; trial++ {
		seen[retryAfterSeconds(max, max, rng)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("full-depth advice took only %d distinct values; jitter missing", len(seen))
	}
	// Degenerate inputs clamp instead of panicking.
	if got := retryAfterSeconds(-5, 0, rng); got < retryAfterMin {
		t.Fatalf("clamped advice = %d", got)
	}
	if got := retryAfterSeconds(99, 10, rng); got < retryAfterMaxBase {
		t.Fatalf("over-depth advice = %d, want >= %d", got, retryAfterMaxBase)
	}
}
