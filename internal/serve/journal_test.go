package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testSpecs(n int) []RunSpec {
	specs := make([]RunSpec, n)
	for i := range specs {
		specs[i] = RunSpec{Protocol: "widir", App: "water-spa", Cores: 4, Scale: 0.02, Seed: uint64(i + 1)}
	}
	return specs
}

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "queue.wal")
}

// TestWALRoundTrip: accepted runs without done records replay; done
// records subtract; the replay rewrite compacts completed jobs away.
func TestWALRoundTrip(t *testing.T) {
	path := walPath(t)
	j, replayed, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	specs := testSpecs(3)
	if err := j.appendAccept("job-000007", "alice", specs); err != nil {
		t.Fatal(err)
	}
	j.appendDone("job-000007", 1)
	if err := j.appendAccept("job-000008", "bob", testSpecs(1)); err != nil {
		t.Fatal(err)
	}
	j.appendDone("job-000008", 0) // bob's job fully drains...
	j.Close()

	j2, replayed, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 1 {
		t.Fatalf("replayed %d jobs, want 1 (bob's drained)", len(replayed))
	}
	wj := replayed[0]
	if wj.Job != "job-000007" || wj.Client != "alice" {
		t.Fatalf("replayed %s/%s", wj.Job, wj.Client)
	}
	if len(wj.Pending) != 2 || wj.Pending[0].Seed != specs[0].Seed || wj.Pending[1].Seed != specs[2].Seed {
		t.Fatalf("pending %v; want seeds 1 and 3 (run 1 was done)", wj.Pending)
	}
	if st := j2.Stats(); st.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2", st.Replayed)
	}
}

// TestWALCleanDrainCompacts: when the last outstanding run finishes the
// journal truncates to zero bytes — a healthy farm's WAL stays empty.
func TestWALCleanDrainCompacts(t *testing.T) {
	path := walPath(t)
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.appendAccept("job-000001", "c", testSpecs(2)); err != nil {
		t.Fatal(err)
	}
	j.appendDone("job-000001", 0)
	if fi, _ := os.Stat(path); fi.Size() == 0 {
		t.Fatal("journal compacted with a run still outstanding")
	}
	j.appendDone("job-000001", 1)
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("journal holds %d bytes after clean drain; want 0", fi.Size())
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatal("no compaction counted")
	}
	j.Close()

	_, replayed, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("drained journal replayed %d jobs", len(replayed))
	}
}

// TestWALTornTail: a crash mid-append leaves a short or corrupt final
// record; replay keeps everything before it and discards the tail.
func TestWALTornTail(t *testing.T) {
	for name, tail := range map[string][]byte{
		"short-header":  {0x10, 0x00},
		"short-payload": {0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'},
		"bad-crc":       {0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, '{', '}'},
	} {
		t.Run(name, func(t *testing.T) {
			path := walPath(t)
			j, _, err := openJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.appendAccept("job-000003", "c", testSpecs(2)); err != nil {
				t.Fatal(err)
			}
			j.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(tail)
			f.Close()

			j2, replayed, err := openJournal(path)
			if err != nil {
				t.Fatalf("torn tail broke open: %v", err)
			}
			defer j2.Close()
			if len(replayed) != 1 || len(replayed[0].Pending) != 2 {
				t.Fatalf("replay lost the intact prefix: %+v", replayed)
			}
			if st := j2.Stats(); st.TornBytes != uint64(len(tail)) {
				t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(tail))
			}
		})
	}
}

// TestWALCancelRetracts: a job journaled then refused by the queue
// bound must not replay.
func TestWALCancelRetracts(t *testing.T) {
	path := walPath(t)
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.appendAccept("job-000004", "c", testSpecs(2)); err != nil {
		t.Fatal(err)
	}
	j.appendCancel("job-000004")
	j.Close()
	_, replayed, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("cancelled job replayed: %+v", replayed)
	}
}

// TestServerReplaysAcceptedWork is the kill-mid-sweep contract at the
// server level: a journal holding accepted-but-unfinished runs (what a
// SIGKILLed farm leaves behind) is replayed on New — the job reappears
// under its original ID, its runs execute, and the completion is
// observable through the normal status path. Zero accepted work lost.
func TestServerReplaysAcceptedWork(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the dead process: an fsynced accept with no done
	// records, exactly what SIGKILL between 202 and completion leaves.
	j, _, err := openJournal(filepath.Join(cache.Dir(), "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs(2)
	if err := j.appendAccept("job-000005", "crashed-client", specs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, err := New(Config{CacheDir: dir, Workers: 2, MaxQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
	}()

	if got := s.Stats().WAL.Replayed; got != 2 {
		t.Fatalf("WAL.Replayed = %d, want 2", got)
	}
	jb := s.lookupJob("job-000005")
	if jb == nil {
		t.Fatal("replayed job not registered under its original ID")
	}
	if jb.client != "crashed-client" {
		t.Fatalf("replayed client %q", jb.client)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		order, done := jb.snapshot()
		if done {
			if len(order) != 2 {
				t.Fatalf("completed %d runs, want 2", len(order))
			}
			for _, idx := range order {
				if jb.runs[idx].state != runDone {
					t.Fatalf("replayed run %d state %v (%s)", idx, jb.runs[idx].state, jb.runs[idx].errMsg)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed runs never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// New jobs must not collide with the replayed ID space.
	if next := s.jobSeq.Add(1); next <= 5 {
		t.Fatalf("jobSeq %d not advanced past replayed job-000005", next)
	}
	// The drained journal compacts back to empty.
	deadline = time.Now().Add(10 * time.Second)
	for {
		fi, err := os.Stat(filepath.Join(cache.Dir(), "queue.wal"))
		if err == nil && fi.Size() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never compacted after the replayed work drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
