// Package stats provides the counters, histograms and breakdown tables
// used to collect and report simulation measurements. All types have a
// useful zero value except Histogram, which needs its bin edges.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
//
//vet:pure
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Mean is a streaming arithmetic mean over observed samples.
type Mean struct {
	sum   float64
	count uint64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.count++
}

// Value returns the mean of all samples, or 0 if none were observed.
//
//vet:pure
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Sum returns the total of all samples.
//
//vet:pure
func (m *Mean) Sum() float64 { return m.sum }

// Count returns the number of samples.
//
//vet:pure
func (m *Mean) Count() uint64 { return m.count }

// Histogram counts samples into caller-defined integer bins. A sample v
// falls into bin i where i is the largest index with edges[i] <= v; a
// sample below the first edge is counted in bin 0.
type Histogram struct {
	edges  []int
	counts []uint64
	labels []string
}

// NewHistogram builds a histogram whose bin i covers [edges[i],
// edges[i+1]); the final bin is unbounded above. Edges must be strictly
// increasing and non-empty.
func NewHistogram(edges ...int) *Histogram {
	if len(edges) == 0 {
		panic("stats: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	h := &Histogram{
		edges:  append([]int(nil), edges...),
		counts: make([]uint64, len(edges)),
		labels: make([]string, len(edges)),
	}
	for i := range edges {
		if i == len(edges)-1 {
			h.labels[i] = fmt.Sprintf("%d+", edges[i])
		} else if edges[i+1]-edges[i] == 1 {
			h.labels[i] = fmt.Sprintf("%d", edges[i])
		} else {
			h.labels[i] = fmt.Sprintf("%d-%d", edges[i], edges[i+1]-1)
		}
	}
	return h
}

// Observe adds one sample with the given value.
func (h *Histogram) Observe(v int) {
	i := sort.SearchInts(h.edges, v+1) - 1
	if i < 0 {
		i = 0
	}
	h.counts[i]++
}

// Bins returns the number of bins.
//
//vet:pure
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count in bin i.
//
//vet:pure
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Label returns the human-readable range label for bin i.
//
//vet:pure
func (h *Histogram) Label(i int) string { return h.labels[i] }

// Total returns the total number of observed samples.
//
//vet:pure
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Fraction returns bin i's share of all samples, or 0 when empty.
//
//vet:pure
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(t)
}

// Percentile estimates the p-quantile (p in [0,1], clamped) of the
// observed samples: it walks the cumulative bin counts to the bin
// containing the quantile and interpolates linearly inside it. The
// final bin is unbounded above, so samples landing there report the
// bin's lower edge — a deliberate underestimate that keeps the result
// finite. An empty histogram reports 0.
//
//vet:pure
func (h *Histogram) Percentile(p float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := float64(h.edges[i])
			if i == len(h.edges)-1 {
				return lo // unbounded overflow bin
			}
			hi := float64(h.edges[i+1])
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(h.edges[len(h.edges)-1])
}

// P50 returns the median estimate.
//
//vet:pure
func (h *Histogram) P50() float64 { return h.Percentile(0.50) }

// P95 returns the 95th-percentile estimate.
//
//vet:pure
func (h *Histogram) P95() float64 { return h.Percentile(0.95) }

// P99 returns the 99th-percentile estimate.
//
//vet:pure
func (h *Histogram) P99() float64 { return h.Percentile(0.99) }

// Merge adds the counts of other (which must have identical edges).
func (h *Histogram) Merge(other *Histogram) {
	if len(h.edges) != len(other.edges) {
		panic("stats: merging histograms with different shapes")
	}
	for i, e := range h.edges {
		if other.edges[i] != e {
			panic("stats: merging histograms with different edges")
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// String renders the histogram as "label:percent%" fields.
//
//vet:pure
func (h *Histogram) String() string {
	var b strings.Builder
	for i := range h.counts {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s:%.1f%%", h.labels[i], 100*h.Fraction(i))
	}
	return b.String()
}

// Breakdown accumulates named quantities (e.g. energy by component or
// cycles by category) and reports shares and totals.
type Breakdown struct {
	order []string
	vals  map[string]float64
}

// NewBreakdown creates a breakdown with a fixed category order for
// reporting. Categories not listed can still be added and will follow
// in insertion order.
func NewBreakdown(categories ...string) *Breakdown {
	b := &Breakdown{vals: make(map[string]float64)}
	for _, c := range categories {
		b.order = append(b.order, c)
		b.vals[c] = 0
	}
	return b
}

// Add accumulates v into the named category.
func (b *Breakdown) Add(category string, v float64) {
	if _, ok := b.vals[category]; !ok {
		b.order = append(b.order, category)
	}
	b.vals[category] += v
}

// Get returns the accumulated value for a category.
//
//vet:pure
func (b *Breakdown) Get(category string) float64 { return b.vals[category] }

// Total returns the sum across all categories. The sum walks the
// reporting order, not the map: float addition is non-associative, so
// summing in randomized map order would make the last ulp of the total
// vary between runs of the same simulation.
//
//vet:pure
func (b *Breakdown) Total() float64 {
	var t float64
	for _, c := range b.order {
		t += b.vals[c]
	}
	return t
}

// Categories returns the category names in reporting order.
//
//vet:pure
func (b *Breakdown) Categories() []string {
	return append([]string(nil), b.order...)
}

// Share returns the category's fraction of the total, or 0 when empty.
//
//vet:pure
func (b *Breakdown) Share(category string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.vals[category] / t
}

// String renders "name=value(share%)" fields in order.
func (b *Breakdown) String() string {
	var s strings.Builder
	for i, c := range b.order {
		if i > 0 {
			s.WriteString("  ")
		}
		fmt.Fprintf(&s, "%s=%.3g(%.1f%%)", c, b.vals[c], 100*b.Share(c))
	}
	return s.String()
}

// Ratio returns a/b, or 0 when b is 0; a convenience for normalized
// reporting (WiDir / Baseline).
//
//vet:pure
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of xs, ignoring non-positive
// entries; it returns 0 if no positive entries exist. Used for averaging
// normalized ratios across applications, matching common practice in
// architecture papers.
//
//vet:pure
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of xs (0 for empty input).
//
//vet:pure
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
