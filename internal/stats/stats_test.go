package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 6 {
		t.Fatalf("got %d, want 6", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not zero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Observe(v)
	}
	if m.Value() != 2.5 {
		t.Fatalf("mean = %v", m.Value())
	}
	if m.Sum() != 10 || m.Count() != 4 {
		t.Fatalf("sum=%v count=%v", m.Sum(), m.Count())
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 3, 6, 9, 12)
	cases := map[int]int{
		0: 0, 2: 0, 3: 1, 5: 1, 6: 2, 8: 2, 9: 3, 11: 3, 12: 4, 100: 4,
		-1: 0, // below the first edge clamps to bin 0
	}
	for v, bin := range cases {
		h2 := NewHistogram(0, 3, 6, 9, 12)
		h2.Observe(v)
		if h2.Count(bin) != 1 {
			t.Errorf("Observe(%d): expected bin %d", v, bin)
		}
	}
	_ = h
}

func TestHistogramLabels(t *testing.T) {
	h := NewHistogram(0, 3, 6, 9, 12)
	want := []string{"0-2", "3-5", "6-8", "9-11", "12+"}
	for i, w := range want {
		if h.Label(i) != w {
			t.Errorf("label %d = %q, want %q", i, h.Label(i), w)
		}
	}
	h2 := NewHistogram(1, 2, 3)
	if h2.Label(0) != "1" || h2.Label(1) != "2" || h2.Label(2) != "3+" {
		t.Errorf("unit labels: %q %q %q", h2.Label(0), h2.Label(1), h2.Label(2))
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	if err := quick.Check(func(vals []uint8) bool {
		h := NewHistogram(0, 10, 20, 40)
		for _, v := range vals {
			h.Observe(int(v))
		}
		if h.Total() != uint64(len(vals)) {
			return false
		}
		var sum float64
		for i := 0; i < h.Bins(); i++ {
			sum += h.Fraction(i)
		}
		return len(vals) == 0 || math.Abs(sum-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 5)
	b := NewHistogram(0, 5)
	a.Observe(1)
	b.Observe(7)
	b.Observe(2)
	a.Merge(b)
	if a.Count(0) != 2 || a.Count(1) != 1 {
		t.Fatalf("merge: %d %d", a.Count(0), a.Count(1))
	}
}

func TestHistogramMergeShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	NewHistogram(0, 5).Merge(NewHistogram(0, 6))
}

func TestHistogramBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing edges did not panic")
		}
	}()
	NewHistogram(3, 3)
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("a", "b")
	b.Add("a", 30)
	b.Add("b", 60)
	b.Add("c", 10) // late category appends
	if b.Total() != 100 {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Share("a") != 0.3 || b.Share("c") != 0.1 {
		t.Fatalf("shares: %v %v", b.Share("a"), b.Share("c"))
	}
	cats := b.Categories()
	if len(cats) != 3 || cats[0] != "a" || cats[2] != "c" {
		t.Fatalf("categories: %v", cats)
	}
	if !strings.Contains(b.String(), "a=30") {
		t.Fatalf("String: %s", b.String())
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown("x")
	if b.Share("x") != 0 {
		t.Fatal("empty share not zero")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("divide by zero not guarded")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("ratio wrong")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean not zero")
	}
	// Non-positive entries are ignored.
	got = GeoMean([]float64{0, -1, 9})
	if math.Abs(got-9) > 1e-9 {
		t.Fatalf("geomean with junk = %v", got)
	}
}

func TestGeoMeanOrderInvariant(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		x := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		y := []float64{x[2], x[0], x[1]}
		return math.Abs(GeoMean(x)-GeoMean(y)) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArithMean(t *testing.T) {
	if ArithMean(nil) != 0 {
		t.Fatal("empty mean not zero")
	}
	if ArithMean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10)
	h.Observe(5)
	if !strings.Contains(h.String(), "0-9:100.0%") {
		t.Fatalf("String: %s", h.String())
	}
}

func TestPercentileEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 20)
	if p := h.Percentile(0.5); p != 0 {
		t.Fatalf("empty histogram P50=%v, want 0", p)
	}
}

func TestPercentileSingleBin(t *testing.T) {
	h := NewHistogram(0, 10, 20)
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	// All samples sit in [0,10): every quantile interpolates inside it.
	if p := h.P50(); p != 5 {
		t.Fatalf("P50=%v, want 5 (midpoint of the only occupied bin)", p)
	}
	if p := h.Percentile(1); p != 10 {
		t.Fatalf("P100=%v, want the bin's upper edge", p)
	}
	if p := h.Percentile(0); p != 0 {
		t.Fatalf("P0=%v, want the bin's lower edge", p)
	}
}

func TestPercentileOverflowBin(t *testing.T) {
	h := NewHistogram(0, 10, 20)
	for i := 0; i < 10; i++ {
		h.Observe(1000) // unbounded final bin
	}
	// The overflow bin has no upper edge: the estimate clamps to its
	// lower edge rather than inventing a bound.
	if p := h.P99(); p != 20 {
		t.Fatalf("P99=%v, want 20 (overflow bin lower edge)", p)
	}
}

func TestPercentileInterpolatesAndClamps(t *testing.T) {
	h := NewHistogram(0, 100)
	for i := 0; i < 50; i++ {
		h.Observe(1)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("P50=%v, want 50 (midpoint of [0,100) under uniform interpolation)", p)
	}
	if p := h.Percentile(-1); p != h.Percentile(0) {
		t.Fatal("p<0 must clamp to 0")
	}
	if p := h.Percentile(2); p != h.Percentile(1) {
		t.Fatal("p>1 must clamp to 1")
	}
}

func TestPercentileSkipsEmptyBins(t *testing.T) {
	h := NewHistogram(0, 10, 20, 30, 40)
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(35)
	}
	// P95 falls in the [30,40) bin even though [10,30) is empty.
	if p := h.P95(); p < 30 || p > 40 {
		t.Fatalf("P95=%v, want within [30,40]", p)
	}
	if p := h.Percentile(0.25); p > 10 {
		t.Fatalf("P25=%v, want within the first bin", p)
	}
}
