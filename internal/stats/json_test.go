package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0, 3, 6, 9, 12)
	for _, v := range []int{0, 2, 3, 7, 100, 100, 11} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() {
		t.Fatalf("total %d != %d", back.Total(), h.Total())
	}
	for i := 0; i < h.Bins(); i++ {
		if back.Count(i) != h.Count(i) || back.Label(i) != h.Label(i) {
			t.Fatalf("bin %d: got (%d,%q) want (%d,%q)",
				i, back.Count(i), back.Label(i), h.Count(i), h.Label(i))
		}
	}
	// Canonical: re-encoding the decoded value is byte-identical.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode differs:\n%s\n%s", data, again)
	}
}

func TestHistogramJSONRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"edges":[],"counts":[]}`,
		`{"edges":[0,0],"counts":[1,2]}`,
		`{"edges":[0,3],"counts":[1]}`,
		`{"edges":[0,3]`,
	} {
		var h Histogram
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("%s: want error, got none", bad)
		}
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	b := NewBreakdown("L1", "LLC", "WNoC")
	b.Add("L1", 1.5)
	b.Add("WNoC", 0.25)
	b.Add("extra", 3.125) // appended after the fixed categories
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Breakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"L1", "LLC", "WNoC", "extra"}
	gotOrder := back.Categories()
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("categories %v want %v", gotOrder, wantOrder)
	}
	for i, c := range wantOrder {
		if gotOrder[i] != c {
			t.Fatalf("categories %v want %v", gotOrder, wantOrder)
		}
		if back.Get(c) != b.Get(c) {
			t.Fatalf("%s: %g != %g", c, back.Get(c), b.Get(c))
		}
	}
	if back.Total() != b.Total() {
		t.Fatalf("total %g != %g", back.Total(), b.Total())
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode differs:\n%s\n%s", data, again)
	}
}

func TestBreakdownJSONRejectsMismatchedArrays(t *testing.T) {
	var b Breakdown
	if err := json.Unmarshal([]byte(`{"categories":["a"],"values":[1,2]}`), &b); err == nil {
		t.Fatal("want error on mismatched arrays")
	}
}
