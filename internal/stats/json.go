// JSON round-trips for the measurement types. The simulation-farm
// service (internal/serve) persists machine.Result values in its
// content-addressed run cache, and a cached result must re-encode to
// the exact bytes of a fresh run's encoding — so both marshalers emit
// a canonical form with no map iteration: ordered parallel arrays,
// fixed field order, and encoding/json's shortest-round-trip float
// formatting.
package stats

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the canonical wire form: bin edges plus counts.
// Labels are derived from the edges and rebuilt on decode.
type histogramJSON struct {
	Edges  []int    `json:"edges"`
	Counts []uint64 `json:"counts"`
}

// MarshalJSON encodes the histogram as {"edges":[...],"counts":[...]}.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Edges: h.edges, Counts: h.counts})
}

// UnmarshalJSON rebuilds the histogram (including its labels) from the
// canonical wire form. The edges must satisfy the NewHistogram
// contract; counts must match the edge count.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Edges) == 0 {
		return fmt.Errorf("stats: histogram JSON has no edges")
	}
	for i := 1; i < len(w.Edges); i++ {
		if w.Edges[i] <= w.Edges[i-1] {
			return fmt.Errorf("stats: histogram JSON edges not strictly increasing")
		}
	}
	if len(w.Counts) != len(w.Edges) {
		return fmt.Errorf("stats: histogram JSON has %d counts for %d edges", len(w.Counts), len(w.Edges))
	}
	*h = *NewHistogram(w.Edges...)
	copy(h.counts, w.Counts)
	return nil
}

// breakdownJSON is the canonical wire form: category names in
// reporting order with a parallel value array (no map, so encoding is
// byte-stable and decoding restores the reporting order exactly).
type breakdownJSON struct {
	Categories []string  `json:"categories"`
	Values     []float64 `json:"values"`
}

// MarshalJSON encodes the breakdown as ordered parallel arrays.
func (b *Breakdown) MarshalJSON() ([]byte, error) {
	w := breakdownJSON{
		Categories: b.order,
		Values:     make([]float64, len(b.order)),
	}
	for i, c := range b.order {
		w.Values[i] = b.vals[c]
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the breakdown, preserving category order.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var w breakdownJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Values) != len(w.Categories) {
		return fmt.Errorf("stats: breakdown JSON has %d values for %d categories", len(w.Values), len(w.Categories))
	}
	nb := NewBreakdown(w.Categories...)
	for i, c := range w.Categories {
		nb.vals[c] = w.Values[i]
	}
	*b = *nb
	return nil
}
