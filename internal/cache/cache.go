// Package cache implements the set-associative cache array used for the
// private L1s and the shared LLC slices. The array tracks, per line, the
// coherence state, per-word data values (used by the correctness
// checkers), a dirty bit, WiDir's UpdateCount, and true-LRU replacement
// order.
package cache

import (
	"fmt"

	"repro/internal/addrspace"
)

// State is a cache-line coherence state as seen by the holding cache.
type State uint8

// Cache line states. W is WiDir's Wireless Shared state.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	Wireless
)

// String returns the one-letter MESI/W name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Wireless:
		return "W"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds readable data.
func (s State) Valid() bool { return s != Invalid }

// Line is one resident cache line.
type Line struct {
	Addr        addrspace.Line
	State       State
	Dirty       bool
	UpdateCount int  // WiDir: wireless updates since last local access
	NonEvict    bool // pinned during an RMW window (§IV-C)
	Words       [addrspace.WordsPerLine]uint64

	lru uint64 // last-touch stamp for replacement
}

// Config sizes a cache array.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	lines := c.SizeBytes / addrspace.LineSize
	if c.Ways <= 0 || lines <= 0 || lines%c.Ways != 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", c))
	}
	return lines / c.Ways
}

// Cache is a set-associative array with true-LRU replacement. It is a
// passive structure: the coherence controllers decide what to do on
// misses and evictions; Cache only stores lines and picks victims.
type Cache struct {
	sets  int
	ways  int
	lines []Line // sets*ways, set-major
	clock uint64 // LRU stamp source

	// Stats maintained by callers via Touch/Install; exposed for
	// convenience because every controller needs them.
	Hits   uint64
	Misses uint64
}

// New builds an empty cache from the configuration.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	return &Cache{
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]Line, sets*cfg.Ways),
	}
}

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setIndex(l addrspace.Line) int {
	return int(uint64(l) % uint64(c.sets))
}

// Lookup returns the resident line or nil. It does not update LRU; use
// Touch for an access.
func (c *Cache) Lookup(l addrspace.Line) *Line {
	base := c.setIndex(l) * c.ways
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.State.Valid() && ln.Addr == l {
			return ln
		}
	}
	return nil
}

// Touch looks up the line and, if present, marks it most recently used.
func (c *Cache) Touch(l addrspace.Line) *Line {
	ln := c.Lookup(l)
	if ln != nil {
		c.clock++
		ln.lru = c.clock
	}
	return ln
}

// Victim returns the line that would be evicted to make room for l: nil
// if the set has a free way. Lines marked NonEvict are skipped; if every
// way is pinned, Victim returns nil and ok=false, meaning the install
// must be retried later (RMW windows are a few cycles, so this resolves
// quickly).
func (c *Cache) Victim(l addrspace.Line) (victim *Line, ok bool) {
	base := c.setIndex(l) * c.ways
	var oldest *Line
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if !ln.State.Valid() {
			return nil, true // free way available
		}
		if ln.NonEvict {
			continue
		}
		if oldest == nil || ln.lru < oldest.lru {
			oldest = ln
		}
	}
	if oldest == nil {
		return nil, false
	}
	return oldest, true
}

// Install places a line into the cache, returning the slot. If the line
// is already resident its slot is reused in place (state and data are
// overwritten). Otherwise the caller must have already handled the
// victim returned by Victim (the slot reused is the same line Victim
// reported, or a free way). Install panics if the set is fully pinned;
// callers must check Victim first.
func (c *Cache) Install(l addrspace.Line, st State, words [addrspace.WordsPerLine]uint64) *Line {
	base := c.setIndex(l) * c.ways
	var slot *Line
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if ln.State.Valid() && ln.Addr == l {
			c.clock++
			*ln = Line{Addr: l, State: st, Words: words, lru: c.clock}
			return ln
		}
	}
	for i := 0; i < c.ways; i++ {
		ln := &c.lines[base+i]
		if !ln.State.Valid() {
			slot = ln
			break
		}
	}
	if slot == nil {
		var oldest *Line
		for i := 0; i < c.ways; i++ {
			ln := &c.lines[base+i]
			if ln.NonEvict {
				continue
			}
			if oldest == nil || ln.lru < oldest.lru {
				oldest = ln
			}
		}
		if oldest == nil {
			panic("cache: install into fully pinned set")
		}
		slot = oldest
	}
	c.clock++
	*slot = Line{Addr: l, State: st, Words: words, lru: c.clock}
	return slot
}

// Invalidate drops the line if resident, returning its former contents
// by value for writeback decisions (ok=false if absent). Returning the
// copy rather than a pointer keeps the per-invalidation cost a stack
// copy: a returned pointer would force the snapshot onto the heap, and
// invalidations run on the coherence hot path.
func (c *Cache) Invalidate(l addrspace.Line) (old Line, ok bool) {
	ln := c.Lookup(l)
	if ln == nil {
		return Line{}, false
	}
	old = *ln
	*ln = Line{}
	return old, true
}

// ForEach calls fn for every valid resident line. Iteration order is
// set-major and deterministic.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			fn(&c.lines[i])
		}
	}
}

// CountValid returns the number of resident lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			n++
		}
	}
	return n
}
