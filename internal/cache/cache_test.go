package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
)

func smallCache() *Cache {
	// 4 sets x 2 ways.
	return New(Config{SizeBytes: 8 * addrspace.LineSize, Ways: 2})
}

// lineInSet returns the i-th line that maps to the given set.
func lineInSet(c *Cache, set, i int) addrspace.Line {
	return addrspace.Line(set + i*c.Sets())
}

func TestConfigSets(t *testing.T) {
	cfg := Config{SizeBytes: 64 << 10, Ways: 2}
	if cfg.Sets() != 512 {
		t.Fatalf("sets = %d", cfg.Sets())
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	Config{SizeBytes: 100, Ways: 3}.Sets()
}

func TestInstallLookup(t *testing.T) {
	c := smallCache()
	var words [addrspace.WordsPerLine]uint64
	words[3] = 42
	c.Install(5, Shared, words)
	ln := c.Lookup(5)
	if ln == nil || ln.State != Shared || ln.Words[3] != 42 {
		t.Fatal("install/lookup failed")
	}
	if c.Lookup(6) != nil {
		t.Fatal("phantom line")
	}
}

func TestInstallReusesResidentSlot(t *testing.T) {
	c := smallCache()
	c.Install(5, Shared, [addrspace.WordsPerLine]uint64{1})
	before := c.CountValid()
	c.Install(5, Modified, [addrspace.WordsPerLine]uint64{2})
	if c.CountValid() != before {
		t.Fatal("reinstall grew the cache")
	}
	ln := c.Lookup(5)
	if ln.State != Modified || ln.Words[0] != 2 {
		t.Fatal("reinstall did not update in place")
	}
}

func TestLRUVictim(t *testing.T) {
	c := smallCache()
	a, b, d := lineInSet(c, 0, 0), lineInSet(c, 0, 1), lineInSet(c, 0, 2)
	c.Install(a, Shared, [addrspace.WordsPerLine]uint64{})
	c.Install(b, Shared, [addrspace.WordsPerLine]uint64{})
	// Touch a so b becomes LRU.
	c.Touch(a)
	v, ok := c.Victim(d)
	if !ok || v == nil || v.Addr != b {
		t.Fatalf("victim = %+v, want line %d", v, b)
	}
}

func TestVictimFreeWay(t *testing.T) {
	c := smallCache()
	c.Install(lineInSet(c, 1, 0), Shared, [addrspace.WordsPerLine]uint64{})
	v, ok := c.Victim(lineInSet(c, 1, 1))
	if !ok || v != nil {
		t.Fatal("expected free way")
	}
}

func TestVictimSkipsPinned(t *testing.T) {
	c := smallCache()
	a, b, d := lineInSet(c, 2, 0), lineInSet(c, 2, 1), lineInSet(c, 2, 2)
	la := c.Install(a, Modified, [addrspace.WordsPerLine]uint64{})
	c.Install(b, Shared, [addrspace.WordsPerLine]uint64{})
	c.Touch(b)
	la.NonEvict = true // a is LRU but pinned
	v, ok := c.Victim(d)
	if !ok || v == nil || v.Addr != b {
		t.Fatalf("pinned line not skipped: %+v", v)
	}
}

func TestVictimAllPinned(t *testing.T) {
	c := smallCache()
	la := c.Install(lineInSet(c, 3, 0), Modified, [addrspace.WordsPerLine]uint64{})
	lb := c.Install(lineInSet(c, 3, 1), Modified, [addrspace.WordsPerLine]uint64{})
	la.NonEvict = true
	lb.NonEvict = true
	if _, ok := c.Victim(lineInSet(c, 3, 2)); ok {
		t.Fatal("fully pinned set reported a victim")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Install(9, Exclusive, [addrspace.WordsPerLine]uint64{7})
	old, ok := c.Invalidate(9)
	if !ok || old.Words[0] != 7 {
		t.Fatal("invalidate did not return contents")
	}
	if c.Lookup(9) != nil {
		t.Fatal("line survived invalidation")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double invalidate returned a line")
	}
}

func TestTouchUpdatesLRU(t *testing.T) {
	c := smallCache()
	a, b := lineInSet(c, 0, 0), lineInSet(c, 0, 1)
	c.Install(a, Shared, [addrspace.WordsPerLine]uint64{})
	c.Install(b, Shared, [addrspace.WordsPerLine]uint64{})
	c.Touch(a) // now b is oldest
	v, _ := c.Victim(lineInSet(c, 0, 2))
	if v.Addr != b {
		t.Fatal("touch did not refresh LRU")
	}
	if c.Touch(lineInSet(c, 0, 3)) != nil {
		t.Fatal("touch of absent line returned a slot")
	}
}

func TestForEachAndCount(t *testing.T) {
	c := smallCache()
	c.Install(1, Shared, [addrspace.WordsPerLine]uint64{})
	c.Install(2, Modified, [addrspace.WordsPerLine]uint64{})
	n := 0
	c.ForEach(func(ln *Line) { n++ })
	if n != 2 || c.CountValid() != 2 {
		t.Fatalf("count = %d/%d", n, c.CountValid())
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Wireless: "W",
	} {
		if st.String() != want {
			t.Errorf("%v != %s", st, want)
		}
	}
	if Invalid.Valid() || !Wireless.Valid() {
		t.Fatal("Valid() wrong")
	}
}

// TestResidencyProperty: after any sequence of installs and
// invalidations, Lookup agrees with the shadow model for the touched
// lines, and the per-set way count never exceeds associativity.
func TestResidencyProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		c := smallCache()
		shadow := map[addrspace.Line]bool{}
		for _, op := range ops {
			line := addrspace.Line(op % 32)
			if op&0x8000 != 0 {
				c.Invalidate(line)
				shadow[line] = false
			} else {
				c.Install(line, Shared, [addrspace.WordsPerLine]uint64{})
				shadow[line] = true
				// Installing may evict others in the same set.
				for l, res := range shadow {
					if res && l != line && c.Lookup(l) == nil {
						shadow[l] = false
					}
				}
			}
		}
		for l, res := range shadow {
			got := c.Lookup(l) != nil
			if got != res {
				return false
			}
		}
		// Way-count invariant.
		per := map[int]int{}
		c.ForEach(func(ln *Line) { per[int(uint64(ln.Addr)%uint64(c.Sets()))]++ })
		for _, n := range per {
			if n > c.Ways() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
