package cache

import (
	"strings"
	"testing"
)

// endState is one past the last State member; adding a state without
// extending String() (and this sentinel) fails TestStateStringExhaustive.
const endState = Wireless + 1

// TestStateStringExhaustive requires every cache state to render its
// one-letter MESI/W name, with the numeric fallback reserved for
// out-of-range values.
func TestStateStringExhaustive(t *testing.T) {
	seen := make(map[string]State, endState)
	for s := State(0); s < endState; s++ {
		got := s.String()
		if got == "" || strings.HasPrefix(got, "State(") {
			t.Errorf("State(%d).String() = %q: member has no name", s, got)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("states %d and %d share the name %q", prev, s, got)
		}
		seen[got] = s
	}
	if got := endState.String(); !strings.HasPrefix(got, "State(") {
		t.Errorf("State(%d).String() = %q, want the State( fallback — enum grew; extend String() and endState", endState, got)
	}
}
