// Package engine provides the simulator's event queue: a deterministic
// (cycle, sequence) ordered collection of callbacks. Components use it
// for anything that happens "later" — cache access latencies, memory
// controller service times, request retry timers.
package engine

// Runner is the pooled alternative to a closure callback: callers that
// fire the same kind of event repeatedly implement Run on a recycled
// struct, so scheduling allocates nothing. An interface holding a
// pointer does not escape-allocate the way a fresh closure does.
type Runner interface {
	Run(now uint64)
}

// Event is a scheduled callback: either a closure or a Runner.
type event struct {
	at  uint64
	seq uint64
	fn  func(now uint64)
	r   Runner
}

// The timing wheel covers wheelSize cycles from the queue's current
// floor. Nearly every event the simulator schedules is a small fixed
// latency ahead (L1 hits, LLC banks, link hops, memory service), so
// almost all traffic takes the O(1) wheel path; only long timers (NACK
// retry backoff, watchdog sweeps) fall through to the far heap.
const (
	wheelBits = 8
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Queue is the event queue. The zero value is ready to use.
//
// Layout: a timing wheel of per-cycle FIFO slots for events within
// wheelSize cycles of the current floor, plus a hand-maintained
// min-heap for events beyond it. Execution order is exactly the
// (cycle, seq) order a single heap would give:
//
//   - within one wheel slot, append order is seq order;
//   - for one cycle, every far-heap event precedes every wheel event,
//     because an event lands in the heap only while the cycle is at
//     least wheelSize away and in the wheel only once it is closer —
//     and the floor advances monotonically, so all heap placements for
//     a cycle happen (seq-wise) before all wheel placements.
//
// The heap is maintained by hand on a plain []event slice rather than
// through container/heap: the interface-based API boxes every event on
// Push (one allocation per scheduled callback), whereas the open-coded
// sift keeps events in a single backing array reused across cycles.
type Queue struct {
	wheel  [wheelSize][]event
	wcount int     // events resident in the wheel
	cur    uint64  // floor: every cycle < cur has been drained
	far    []event // min-heap of events >= cur+wheelSize at insert time
	seq    uint64
}

// At schedules fn to run at the given cycle. Events scheduled for the
// same cycle run in scheduling order.
func (q *Queue) At(cycle uint64, fn func(now uint64)) {
	q.seq++
	q.insert(event{at: cycle, seq: q.seq, fn: fn})
}

// AtRunner schedules r.Run at the given cycle, sharing the same
// (cycle, seq) ordering domain as At — a Runner and a closure
// scheduled back-to-back for one cycle run in scheduling order.
func (q *Queue) AtRunner(cycle uint64, r Runner) {
	q.seq++
	q.insert(event{at: cycle, seq: q.seq, r: r})
}

func (q *Queue) insert(e event) {
	c := e.at
	if c < q.cur {
		// A late event runs in the next drained slot; it keeps its
		// original cycle for ordering against the far heap.
		c = q.cur
	}
	if c-q.cur < wheelSize {
		q.wheel[c&wheelMask] = append(q.wheel[c&wheelMask], e)
		q.wcount++
		return
	}
	q.far = append(q.far, e)
	q.siftUp(len(q.far) - 1)
}

// RunDue runs every event with at <= now, in (cycle, seq) order. Events
// scheduled during execution for cycles <= now also run. It returns
// the number of events executed so the driving loop can tell a
// quiescent cycle from a busy one.
func (q *Queue) RunDue(now uint64) int {
	ran := 0
	for c := q.cur; c <= now; c++ {
		if q.wcount == 0 {
			// Empty wheel: jump straight to the next far event (the
			// common case after a quiescence fast-forward).
			if len(q.far) == 0 || q.far[0].at > now {
				break
			}
			c = q.far[0].at
		}
		q.cur = c
		for len(q.far) > 0 && q.far[0].at <= c {
			e := q.popFar()
			if e.r != nil {
				e.r.Run(now)
			} else {
				e.fn(now)
			}
			ran++
		}
		slot := &q.wheel[c&wheelMask]
		// Callbacks may append to this very slot (zero-delay
		// reschedules); re-reading len each iteration drains them in
		// order within the same call.
		for i := 0; i < len(*slot); i++ {
			e := (*slot)[i]
			(*slot)[i] = event{} // drop the callback reference for the GC
			q.wcount--
			if e.r != nil {
				e.r.Run(now)
			} else {
				e.fn(now)
			}
			ran++
		}
		*slot = (*slot)[:0]
	}
	q.cur = now
	return ran
}

// popFar removes and returns the minimum far event, keeping the
// backing array.
func (q *Queue) popFar() event {
	e := q.far[0]
	n := len(q.far) - 1
	q.far[0] = q.far[n]
	q.far[n] = event{}
	q.far = q.far[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return e
}

func (q *Queue) less(i, j int) bool {
	if q.far[i].at != q.far[j].at {
		return q.far[i].at < q.far[j].at
	}
	return q.far[i].seq < q.far[j].seq
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.far[i], q.far[parent] = q.far[parent], q.far[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.far)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.far[i], q.far[min] = q.far[min], q.far[i]
		i = min
	}
}

// Next returns the cycle of the earliest pending event.
//
//vet:pure
func (q *Queue) Next() (uint64, bool) {
	if q.wcount > 0 {
		for c := q.cur; c < q.cur+wheelSize; c++ {
			if len(q.wheel[c&wheelMask]) == 0 {
				continue
			}
			if len(q.far) > 0 && q.far[0].at < c {
				return q.far[0].at, true
			}
			return c, true
		}
	}
	if len(q.far) == 0 {
		return 0, false
	}
	return q.far[0].at, true
}

// Len returns the number of pending events.
//
//vet:pure
func (q *Queue) Len() int { return q.wcount + len(q.far) }
