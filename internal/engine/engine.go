// Package engine provides the simulator's event queue: a deterministic
// min-heap of (cycle, sequence) ordered callbacks. Components use it for
// anything that happens "later" — cache access latencies, memory
// controller service times, request retry timers.
package engine

// Event is a scheduled callback.
type event struct {
	at  uint64
	seq uint64
	fn  func(now uint64)
}

// Queue is the event queue. The zero value is ready to use.
//
// The heap is maintained by hand on a plain []event slice rather than
// through container/heap: the interface-based API boxes every event on
// Push (one allocation per scheduled callback, on the simulator's
// hottest path), whereas the open-coded sift keeps events in a single
// backing array that is reused across Pop/Push cycles.
type Queue struct {
	h   []event
	seq uint64
}

// At schedules fn to run at the given cycle. Events scheduled for the
// same cycle run in scheduling order.
func (q *Queue) At(cycle uint64, fn func(now uint64)) {
	q.seq++
	q.h = append(q.h, event{at: cycle, seq: q.seq, fn: fn})
	q.siftUp(len(q.h) - 1)
}

// RunDue runs every event with at <= now, in (cycle, seq) order. Events
// scheduled during execution for cycles <= now also run.
func (q *Queue) RunDue(now uint64) {
	for len(q.h) > 0 && q.h[0].at <= now {
		e := q.pop()
		e.fn(now)
	}
}

// pop removes and returns the minimum event, keeping the backing array.
func (q *Queue) pop() event {
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = event{} // drop the callback reference so the GC can reclaim it
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return e
}

func (q *Queue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Next returns the cycle of the earliest pending event.
func (q *Queue) Next() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }
