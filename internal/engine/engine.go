// Package engine provides the simulator's event queue: a deterministic
// min-heap of (cycle, sequence) ordered callbacks. Components use it for
// anything that happens "later" — cache access latencies, memory
// controller service times, request retry timers.
package engine

import "container/heap"

// Event is a scheduled callback.
type event struct {
	at  uint64
	seq uint64
	fn  func(now uint64)
}

// Queue is the event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// At schedules fn to run at the given cycle. Events scheduled for the
// same cycle run in scheduling order.
func (q *Queue) At(cycle uint64, fn func(now uint64)) {
	q.seq++
	heap.Push(&q.h, event{at: cycle, seq: q.seq, fn: fn})
}

// RunDue runs every event with at <= now, in (cycle, seq) order. Events
// scheduled during execution for cycles <= now also run.
func (q *Queue) RunDue(now uint64) {
	for len(q.h) > 0 && q.h[0].at <= now {
		e := heap.Pop(&q.h).(event)
		e.fn(now)
	}
}

// Next returns the cycle of the earliest pending event.
func (q *Queue) Next() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
