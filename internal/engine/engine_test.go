package engine

import "testing"

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(5, func(uint64) { got = append(got, 5) })
	q.At(3, func(uint64) { got = append(got, 3) })
	q.At(4, func(uint64) { got = append(got, 4) })
	q.RunDue(10)
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("order = %v", got)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(7, func(uint64) { got = append(got, i) })
	}
	q.RunDue(7)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", got)
		}
	}
}

func TestRunDueBoundary(t *testing.T) {
	var q Queue
	ran := false
	q.At(5, func(uint64) { ran = true })
	q.RunDue(4)
	if ran {
		t.Fatal("future event ran early")
	}
	q.RunDue(5)
	if !ran {
		t.Fatal("due event did not run")
	}
}

func TestScheduleDuringRun(t *testing.T) {
	var q Queue
	var got []string
	q.At(1, func(now uint64) {
		got = append(got, "a")
		q.At(now, func(uint64) { got = append(got, "b") }) // same cycle
		q.At(now+5, func(uint64) { got = append(got, "c") })
	})
	q.RunDue(1)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("nested same-cycle scheduling: %v", got)
	}
	q.RunDue(6)
	if len(got) != 3 || got[2] != "c" {
		t.Fatalf("future nested event: %v", got)
	}
}

func TestNextAndLen(t *testing.T) {
	var q Queue
	if _, ok := q.Next(); ok {
		t.Fatal("empty queue reported an event")
	}
	q.At(9, func(uint64) {})
	q.At(4, func(uint64) {})
	if at, ok := q.Next(); !ok || at != 4 {
		t.Fatalf("Next = %d,%v", at, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.RunDue(100)
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestNowArgument(t *testing.T) {
	var q Queue
	var at uint64
	q.At(3, func(now uint64) { at = now })
	q.RunDue(8) // runs late, but receives the caller's now
	if at != 8 {
		t.Fatalf("now = %d", at)
	}
}
