package cluster

import (
	"time"

	"repro/internal/xrand"
)

// Backoff computes jittered exponential retry delays for farm clients.
// The shape is "full jitter": attempt k draws uniformly from
// (0, min(Max, Base<<k)], so a thousand clients rejected by the same
// 429 spread their retries across the whole window instead of
// stampeding back in lockstep. When the server names a Retry-After,
// that value is the floor — the jitter only ever adds to it.
//
// The jitter stream is an explicit xrand source (never the global
// math/rand state), so tests can pin it with a seed.
type Backoff struct {
	Base time.Duration // first-attempt ceiling (<=0: 500ms)
	Max  time.Duration // overall ceiling (<=0: 30s)
	rng  *xrand.Source
}

// NewBackoff builds a backoff policy with a jitter stream seeded by
// seed.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	return &Backoff{Base: base, Max: max, rng: xrand.New(seed)}
}

// Delay returns the wait before retry number attempt (0-based).
// retryAfter carries the server's Retry-After when one was given; zero
// means none.
func (b *Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	ceil := base << uint(attempt)
	if ceil > max || ceil <= 0 { // <<= overflow guard
		ceil = max
	}
	d := time.Duration(b.rng.Int63() % int64(ceil))
	if d <= 0 {
		d = time.Millisecond
	}
	if retryAfter > 0 {
		d += retryAfter
	}
	return d
}
