// Package cluster federates widir-serve farm nodes. It owns the three
// mechanisms that let several nodes cooperate over one logical result
// cache without any central directory:
//
//   - Ring: a static peer set with rendezvous (highest-random-weight)
//     hashing over the content-addressed run hash. Ownership is a pure
//     function of (peer set, hash, replication factor) — every node
//     computes the same owners with no coordination, the same way a
//     directoryless shared LLC locates lines purely by address.
//
//   - Breaker: a per-peer circuit breaker. Repeated fetch failures
//     open the breaker so a dead or hanging peer costs one timeout per
//     cooldown, not one per request; a half-open probe re-closes it
//     when the peer comes back.
//
//   - Fetcher: the HTTP client for the inter-node entry protocol
//     (GET/PUT /api/v1/runs/{hash}/entry) with bounded timeouts,
//     single-flight dedup per hash, and breaker gating. A fetch that
//     fails everywhere reports a miss — the calling node degrades to
//     local simulation, it never becomes unavailable.
//
// The package sits with internal/serve OUTSIDE the simulator's
// determinism contract (widir-lint's walltime/gonosync rules exempt
// it): breakers and timeouts are wall-clock concerns. Nothing in here
// touches a running simulation. DESIGN.md §17 describes the topology.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a static peer set with rendezvous-hash key ownership. The
// zero value is an empty ring that owns nothing; build one with
// NewRing. Rings are immutable after construction and safe for
// concurrent use.
type Ring struct {
	self     string
	peers    []string // deduplicated, sorted for deterministic iteration
	replicas int
}

// NewRing builds a ring. self names this node's own base URL (it may
// or may not appear in peers; ownership checks compare against it),
// peers is the full static peer set including self, and replicas is
// the replication factor R clamped to [1, len(peers)].
func NewRing(self string, peers []string, replicas int) *Ring {
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(uniq) && len(uniq) > 0 {
		replicas = len(uniq)
	}
	return &Ring{self: self, peers: uniq, replicas: replicas}
}

// Self returns this node's own base URL.
func (r *Ring) Self() string { return r.self }

// Peers returns the full peer set (sorted copy).
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Replicas returns the effective replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// score is the rendezvous weight of (peer, hash): the first 8 bytes of
// SHA-256(peer || '\n' || hash). Using a cryptographic hash keeps the
// placement uniform regardless of how peer URLs are spelled.
func score(peer, hash string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{'\n'})
	h.Write([]byte(hash))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Owners returns the top-R peers for hash in rank order (highest
// rendezvous score first, ties broken by peer name so every node
// agrees). An empty ring returns nil.
func (r *Ring) Owners(hash string) []string {
	if len(r.peers) == 0 {
		return nil
	}
	type ranked struct {
		peer string
		s    uint64
	}
	rs := make([]ranked, len(r.peers))
	for i, p := range r.peers {
		rs[i] = ranked{peer: p, s: score(p, hash)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].peer < rs[j].peer
	})
	n := r.replicas
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rs[i].peer
	}
	return out
}

// Owns reports whether this node is one of the owners of hash. A node
// with no peer set (single-node farm) owns everything.
func (r *Ring) Owns(hash string) bool {
	if len(r.peers) == 0 {
		return true
	}
	for _, p := range r.Owners(hash) {
		if p == r.self {
			return true
		}
	}
	return false
}

// OtherOwners returns the owners of hash excluding this node, in rank
// order — the peers worth asking for the entry.
func (r *Ring) OtherOwners(hash string) []string {
	var out []string
	for _, p := range r.Owners(hash) {
		if p != r.self {
			out = append(out, p)
		}
	}
	return out
}
