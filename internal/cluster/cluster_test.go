package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func hashN(i int) string { return fmt.Sprintf("%064x", i) }

// TestRingOwnersDeterministicAndSpread: every node computes the same
// owner list for a hash (pure function of the peer set), the list has
// exactly R distinct members, and placement spreads across the set.
func TestRingOwnersDeterministicAndSpread(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	rings := []*Ring{
		NewRing(peers[0], peers, 2),
		NewRing(peers[1], []string{peers[2], peers[0], peers[1]}, 2), // shuffled input
		NewRing(peers[2], peers, 2),
	}
	first := map[string]int{}
	for i := 0; i < 200; i++ {
		h := hashN(i)
		want := rings[0].Owners(h)
		if len(want) != 2 || want[0] == want[1] {
			t.Fatalf("owners(%s) = %v; want 2 distinct", h[:8], want)
		}
		for _, r := range rings[1:] {
			got := r.Owners(h)
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("owner disagreement for %s: %v vs %v", h[:8], got, want)
			}
		}
		first[want[0]]++
	}
	for _, p := range peers {
		if first[p] == 0 {
			t.Fatalf("peer %s never ranked first in 200 hashes: placement not spreading (%v)", p, first)
		}
	}
}

// TestRingOwns: replication factor R means exactly R peers own each
// hash; a ring with no peers owns everything (single-node farm).
func TestRingOwns(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	for i := 0; i < 100; i++ {
		h := hashN(1000 + i)
		owners := 0
		for _, self := range peers {
			if NewRing(self, peers, 2).Owns(h) {
				owners++
			}
		}
		if owners != 2 {
			t.Fatalf("hash %s owned by %d nodes, want 2", h[:8], owners)
		}
	}
	if !NewRing("http://solo:1", nil, 1).Owns(hashN(7)) {
		t.Fatal("peerless ring must own every hash")
	}
}

// TestRingMinimalReshuffle: removing one peer only moves the keys that
// peer owned — rendezvous hashing's point. Keys owned by survivors
// stay put.
func TestRingMinimalReshuffle(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := NewRing(peers[0], peers, 1)
	reduced := NewRing(peers[0], peers[:2], 1)
	for i := 0; i < 200; i++ {
		h := hashN(i)
		before := full.Owners(h)[0]
		after := reduced.Owners(h)[0]
		if before != peers[2] && after != before {
			t.Fatalf("hash %s moved %s -> %s though its owner survived", h[:8], before, after)
		}
	}
}

// TestBreakerLifecycle: threshold failures open, cooldown admits one
// half-open probe, probe success re-closes, probe failure re-opens.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 50*time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state %v opens %d after threshold failures; want open/1", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the half-open probe is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success did not re-close the breaker")
	}

	// Re-open via a failed probe.
	b.Failure()
	b.Failure()
	b.Failure()
	time.Sleep(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown probe refused")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Opens() != 3 {
		t.Fatalf("failed probe left state %v opens %d; want open/3", b.State(), b.Opens())
	}
}

// TestFetcherSingleFlight: concurrent fetches of one hash produce one
// wire request; everyone gets the same body.
func TestFetcherSingleFlight(t *testing.T) {
	var requests atomic.Int64
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		<-release
		w.Write([]byte(`{"entry":true}`))
	}))
	defer peer.Close()

	ring := NewRing("http://self:1", []string{"http://self:1", peer.URL}, 2)
	f := NewFetcher(ring, FetcherConfig{Timeout: 5 * time.Second})

	h := hashN(42)
	if len(ring.OtherOwners(h)) != 1 {
		t.Fatalf("test setup: expected the peer to co-own %s", h[:8])
	}
	var wg sync.WaitGroup
	bodies := make([][]byte, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, _ = f.Fetch(h)
		}(i)
	}
	// Let the callers pile onto the flight, then release the handler.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := requests.Load(); got != 1 {
		t.Fatalf("8 concurrent fetches made %d wire requests; want 1 (single-flight)", got)
	}
	for i, b := range bodies {
		if string(b) != `{"entry":true}` {
			t.Fatalf("caller %d got body %q", i, b)
		}
	}
	if st := f.Stats(); st.SingleFlight != 7 || st.Hits != 1 {
		t.Fatalf("stats %+v; want 7 joins, 1 hit", st)
	}
}

// TestFetcherMissVsFailure: a 404 is a healthy miss and never trips
// the breaker; a 500 does.
func TestFetcherMissVsFailure(t *testing.T) {
	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()

	self := "http://self:1"
	ring := NewRing(self, []string{self, notFound.URL, broken.URL}, 3)
	f := NewFetcher(ring, FetcherConfig{Timeout: time.Second, BreakerThreshold: 2})

	for i := 0; i < 5; i++ {
		if _, _, ok := f.Fetch(hashN(i)); ok {
			t.Fatal("fetch succeeded against miss+broken peers")
		}
	}
	st := f.Stats()
	if st.Misses != 5 {
		t.Fatalf("misses %d; want 5 (404 per fetch)", st.Misses)
	}
	if st.BreakerOpens == 0 {
		t.Fatal("broken peer never opened its breaker")
	}
	if f.breaker(notFound.URL).Opens() != 0 {
		t.Fatal("404 peer's breaker opened: misses must not count as failures")
	}
	if st.Refusals == 0 {
		t.Fatal("open breaker produced no refusals on later fetches")
	}
}

// TestFetcherValidateRejectsGarbage: a peer answering 200 with garbage
// is treated as a failed peer (breaker counts it), not as a hit.
func TestFetcherValidateRejectsGarbage(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json at all"))
	}))
	defer garbage.Close()

	self := "http://self:1"
	ring := NewRing(self, []string{self, garbage.URL}, 2)
	f := NewFetcher(ring, FetcherConfig{
		Timeout:          time.Second,
		BreakerThreshold: 2,
		Validate: func(hash string, body []byte) error {
			return fmt.Errorf("reject %d bytes", len(body))
		},
	})
	for i := 0; i < 3; i++ {
		if _, _, ok := f.Fetch(hashN(i)); ok {
			t.Fatal("garbage entry accepted")
		}
	}
	st := f.Stats()
	if st.Hits != 0 || st.Errors == 0 || st.BreakerOpens == 0 {
		t.Fatalf("stats %+v; want 0 hits, >0 errors, breaker open", st)
	}
}

// TestBackoffBoundsAndRetryAfter: delays stay inside (0, Max] per
// attempt ceiling, grow with the attempt number, honor Retry-After as
// a floor, and actually jitter.
func TestBackoffBoundsAndRetryAfter(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 1)
	seen := map[time.Duration]bool{}
	for attempt := 0; attempt < 20; attempt++ {
		ceil := 100 * time.Millisecond << uint(attempt)
		if ceil > time.Second || ceil <= 0 {
			ceil = time.Second
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt, 0)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
			seen[d] = true
		}
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct delays over 1000 draws: jitter is not jittering", len(seen))
	}
	ra := 7 * time.Second
	if d := b.Delay(0, ra); d < ra || d > ra+100*time.Millisecond {
		t.Fatalf("Retry-After 7s produced delay %v; want [7s, 7.1s]", d)
	}
}
