package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused without touching the peer
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// re-closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state for stats output.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-peer circuit breaker. Threshold consecutive
// failures open it; after Cooldown one probe is admitted (half-open)
// and its outcome decides between closed and another open interval.
// The mold is the same as PR 4's protocol-level fault demotion —
// bounded retries, then stop paying for a faulty component — applied
// at the service tier.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	opens    uint64    // lifetime closed->open transitions
}

// NewBreaker builds a breaker. threshold <= 0 defaults to 3 consecutive
// failures; cooldown <= 0 defaults to 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed. An open breaker whose
// cooldown has elapsed admits exactly one caller as the half-open
// probe; everyone else is refused until the probe settles.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a successful request: the breaker closes and the
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// Failure records a failed request. A half-open probe failure re-opens
// immediately; in the closed state the threshold applies.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	default:
		// Already open: a straggler failure from a request admitted
		// before the breaker tripped changes nothing.
	}
}

// open transitions to BreakerOpen (caller holds b.mu).
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.opens++
	b.failures = 0
}

// State returns the current position, resolving an elapsed cooldown to
// half-open for observability (the transition itself happens in Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the lifetime count of closed->open transitions.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
