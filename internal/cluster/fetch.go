package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// entryPath is the inter-node entry protocol path for a run hash.
func entryPath(peer, hash string) string {
	return peer + "/api/v1/runs/" + hash + "/entry"
}

// maxEntryBytes bounds one fetched entry (a manifest plus one compact
// machine.Result — far below this). A peer streaming garbage forever
// cannot exhaust memory on the fetching node.
const maxEntryBytes = 16 << 20

// FetcherConfig tunes the inter-node fetch client.
type FetcherConfig struct {
	Timeout          time.Duration // per-request timeout (<=0: 2s)
	BreakerThreshold int           // consecutive failures to open (<=0: 3)
	BreakerCooldown  time.Duration // open interval before a probe (<=0: 5s)
	// Validate inspects a fetched entry body before it is accepted.
	// A validation failure counts against the peer's breaker — a node
	// serving garbage is as broken as a node serving 500s.
	Validate func(hash string, body []byte) error
}

// FetcherStats is a snapshot of the fetch counters.
type FetcherStats struct {
	Fetches      uint64 `json:"fetches"`       // fetch attempts that consulted >=1 peer
	Hits         uint64 `json:"hits"`          // entries obtained from a peer
	Misses       uint64 `json:"misses"`        // every reachable owner answered 404
	Errors       uint64 `json:"errors"`        // per-peer request failures (net/5xx/garbage)
	Refusals     uint64 `json:"refusals"`      // per-peer requests skipped on an open breaker
	SingleFlight uint64 `json:"single_flight"` // callers that joined an in-flight fetch
	Pushes       uint64 `json:"pushes"`        // repair pushes delivered
	PushErrors   uint64 `json:"push_errors"`   // repair pushes that failed
	BreakerOpens uint64 `json:"breaker_opens"` // closed->open transitions, all peers
}

// PeerStatus is one peer's breaker position for /cluster/stats.
type PeerStatus struct {
	Peer    string `json:"peer"`
	Breaker string `json:"breaker"`
	Opens   uint64 `json:"opens"`
}

// Fetcher retrieves cache entries from peer farm nodes. Concurrent
// fetches of the same hash are deduplicated (single-flight): one
// request goes to the wire, everyone gets the answer. Each peer is
// gated by its own circuit breaker so a dead node degrades to a cheap
// refusal instead of a timeout per request.
type Fetcher struct {
	ring *Ring
	cfg  FetcherConfig
	http *http.Client

	mu       sync.Mutex
	breakers map[string]*Breaker
	flight   map[string]*flightCall

	fetches      atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	errors       atomic.Uint64
	refusals     atomic.Uint64
	singleFlight atomic.Uint64
	pushes       atomic.Uint64
	pushErrors   atomic.Uint64
}

// flightCall is one in-flight fetch other callers can join.
type flightCall struct {
	done chan struct{}
	body []byte
	peer string
	ok   bool
}

// NewFetcher builds a fetcher over the ring.
func NewFetcher(ring *Ring, cfg FetcherConfig) *Fetcher {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Fetcher{
		ring:     ring,
		cfg:      cfg,
		http:     &http.Client{Timeout: cfg.Timeout},
		breakers: map[string]*Breaker{},
		flight:   map[string]*flightCall{},
	}
}

// breaker returns (creating if needed) the breaker for peer.
func (f *Fetcher) breaker(peer string) *Breaker {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[peer]
	if b == nil {
		b = NewBreaker(f.cfg.BreakerThreshold, f.cfg.BreakerCooldown)
		f.breakers[peer] = b
	}
	return b
}

// Fetch asks the other owners of hash, in rank order, for its cache
// entry. It returns the validated entry body and the peer that served
// it, or ok=false when every owner is down, open-circuited, or
// missing the entry — the caller then simulates locally. Concurrent
// calls for one hash share a single wire request.
func (f *Fetcher) Fetch(hash string) (body []byte, peer string, ok bool) {
	owners := f.ring.OtherOwners(hash)
	if len(owners) == 0 {
		return nil, "", false
	}

	f.mu.Lock()
	if c := f.flight[hash]; c != nil {
		f.mu.Unlock()
		f.singleFlight.Add(1)
		<-c.done
		return c.body, c.peer, c.ok
	}
	c := &flightCall{done: make(chan struct{})}
	f.flight[hash] = c
	f.mu.Unlock()

	c.body, c.peer, c.ok = f.fetchOnce(hash, owners)

	f.mu.Lock()
	delete(f.flight, hash)
	f.mu.Unlock()
	close(c.done)
	return c.body, c.peer, c.ok
}

// fetchOnce walks the owner list once. 404 is a healthy miss (the peer
// answered; it just has not computed the run) and does not trip the
// breaker; anything else — connection failure, timeout, 5xx, a body
// that fails validation — counts as a peer failure.
func (f *Fetcher) fetchOnce(hash string, owners []string) ([]byte, string, bool) {
	f.fetches.Add(1)
	missed := false
	for _, peer := range owners {
		b := f.breaker(peer)
		if !b.Allow() {
			f.refusals.Add(1)
			continue
		}
		body, err := f.get(peer, hash)
		switch {
		case err == nil && body != nil:
			b.Success()
			f.hits.Add(1)
			return body, peer, true
		case err == nil: // clean 404
			b.Success()
			missed = true
		default:
			b.Failure()
			f.errors.Add(1)
		}
	}
	if missed {
		f.misses.Add(1)
	}
	return nil, "", false
}

// get performs one entry GET. It returns (nil, nil) for a clean 404.
func (f *Fetcher) get(peer, hash string) ([]byte, error) {
	resp, err := f.http.Get(entryPath(peer, hash))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s: %s", peer, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxEntryBytes {
		return nil, fmt.Errorf("cluster: %s: entry exceeds %d bytes", peer, maxEntryBytes)
	}
	if f.cfg.Validate != nil {
		if err := f.cfg.Validate(hash, body); err != nil {
			return nil, fmt.Errorf("cluster: %s: bad entry: %w", peer, err)
		}
	}
	return body, nil
}

// Push replicates an entry body to one peer (replication repair). It
// is breaker-gated and best-effort: a failed push is counted, the
// entry stays served locally, and a later read retries.
func (f *Fetcher) Push(peer, hash string, body []byte) error {
	b := f.breaker(peer)
	if !b.Allow() {
		f.refusals.Add(1)
		return fmt.Errorf("cluster: %s: breaker open", peer)
	}
	req, err := http.NewRequest(http.MethodPut, entryPath(peer, hash), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.http.Do(req)
	if err != nil {
		b.Failure()
		f.pushErrors.Add(1)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
	if resp.StatusCode/100 != 2 {
		b.Failure()
		f.pushErrors.Add(1)
		return fmt.Errorf("cluster: push %s: %s", peer, resp.Status)
	}
	b.Success()
	f.pushes.Add(1)
	return nil
}

// Stats snapshots the fetch counters.
func (f *Fetcher) Stats() FetcherStats {
	st := FetcherStats{
		Fetches:      f.fetches.Load(),
		Hits:         f.hits.Load(),
		Misses:       f.misses.Load(),
		Errors:       f.errors.Load(),
		Refusals:     f.refusals.Load(),
		SingleFlight: f.singleFlight.Load(),
		Pushes:       f.pushes.Load(),
		PushErrors:   f.pushErrors.Load(),
	}
	f.mu.Lock()
	for _, b := range f.breakers {
		st.BreakerOpens += b.Opens()
	}
	f.mu.Unlock()
	return st
}

// PeerStatuses reports every known peer's breaker position, sorted by
// peer name.
func (f *Fetcher) PeerStatuses() []PeerStatus {
	var out []PeerStatus
	for _, peer := range f.ring.Peers() {
		if peer == f.ring.Self() {
			continue
		}
		b := f.breaker(peer)
		out = append(out, PeerStatus{Peer: peer, Breaker: b.State().String(), Opens: b.Opens()})
	}
	return out
}
