package wireless

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/xrand"
)

func newTestChannel() (*Channel, *[]Message) {
	c := NewChannel(xrand.New(1))
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	return c, &got
}

func pump(c *Channel, from, to uint64) uint64 {
	for now := from; now <= to; now++ {
		c.Tick(now)
	}
	return to
}

func TestSingleTransmission(t *testing.T) {
	c, got := newTestChannel()
	doneAt := uint64(0)
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"},
		func(now uint64) { doneAt = now }, nil)
	pump(c, 1, 20)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d", len(*got))
	}
	if doneAt == 0 {
		t.Fatal("done never fired")
	}
	// Transfer + collision-detect cycles after the start.
	if doneAt < TransferCycles+CollisionDetectCycles {
		t.Fatalf("done too early at %d", doneAt)
	}
	if c.Successes.Value() != 1 || c.Collisions.Value() != 0 {
		t.Fatal("stats wrong")
	}
}

func TestCollisionThenBackoffResolves(t *testing.T) {
	c, got := newTestChannel()
	for i := 0; i < 4; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 500)
	if len(*got) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(*got))
	}
	if c.Collisions.Value() == 0 {
		t.Fatal("simultaneous starters did not collide")
	}
	if c.CollisionProbability() <= 0 || c.CollisionProbability() >= 1 {
		t.Fatalf("collision probability = %v", c.CollisionProbability())
	}
}

func TestSerialization(t *testing.T) {
	// At most one transmission may occupy the medium; deliveries are
	// therefore spaced by at least the packet length.
	c := NewChannel(xrand.New(7))
	var times []uint64
	c.SetBroadcast(func(now uint64, msg Message) { times = append(times, now) })
	for i := 0; i < 6; i++ {
		c.Transmit(Message{Sender: i, Line: 5, Payload: i}, nil, nil)
	}
	pump(c, 1, 2000)
	if len(times) != 6 {
		t.Fatalf("deliveries = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < TransferCycles+CollisionDetectCycles {
			t.Fatalf("overlapping transmissions: %v", times)
		}
	}
}

func TestJamAbortsUnprivileged(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	aborted := false
	jammedFlag := false
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"}, nil,
		func(now uint64, jammed bool) { aborted, jammedFlag = true, jammed })
	pump(c, 1, 50)
	if !aborted || !jammedFlag {
		t.Fatal("jammed transmission was not aborted")
	}
	if len(*got) != 0 {
		t.Fatal("jammed transmission delivered")
	}
	if c.Jams.Value() != 1 {
		t.Fatalf("jam count = %d", c.Jams.Value())
	}
}

func TestJamPassesPrivileged(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	c.Transmit(Message{Sender: 3, Line: 10, Payload: "dir", Privileged: true}, nil,
		func(uint64, bool) { t.Fatal("privileged broadcast aborted") })
	pump(c, 1, 50)
	if len(*got) != 1 {
		t.Fatal("privileged broadcast did not deliver")
	}
}

func TestJamOtherLinePasses(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	c.Transmit(Message{Sender: 1, Line: 11, Payload: "y"}, nil,
		func(uint64, bool) { t.Fatal("unrelated line aborted") })
	pump(c, 1, 50)
	if len(*got) != 1 {
		t.Fatal("unrelated line did not deliver")
	}
}

func TestJamRefcounting(t *testing.T) {
	c, _ := newTestChannel()
	c.Jam(10, 3)
	c.Jam(10, 3)
	c.Unjam(10, 3)
	if !c.JammedFor(10) {
		t.Fatal("jam released too early")
	}
	c.Unjam(10, 3)
	if c.JammedFor(10) {
		t.Fatal("jam not released")
	}
}

func TestJamTwoOwnersPanics(t *testing.T) {
	c, _ := newTestChannel()
	c.Jam(10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("second owner did not panic")
		}
	}()
	c.Jam(10, 4)
}

func TestUnjamUnownedPanics(t *testing.T) {
	c, _ := newTestChannel()
	defer func() {
		if recover() == nil {
			t.Fatal("unjam of free line did not panic")
		}
	}()
	c.Unjam(10, 1)
}

func TestToneAck(t *testing.T) {
	c, _ := newTestChannel()
	fired := uint64(0)
	c.RaiseTone()
	c.RaiseTone()
	c.WaitToneSilent(func(now uint64) { fired = now })
	pump(c, 1, 5)
	if fired != 0 {
		t.Fatal("tone waiter fired while held")
	}
	c.LowerTone()
	pump(c, 6, 10)
	if fired != 0 {
		t.Fatal("tone waiter fired with one holder left")
	}
	c.LowerTone()
	pump(c, 11, 15)
	if fired == 0 {
		t.Fatal("tone waiter never fired")
	}
}

func TestToneImmediateWhenSilent(t *testing.T) {
	c, _ := newTestChannel()
	fired := false
	c.WaitToneSilent(func(uint64) { fired = true })
	pump(c, 1, 2)
	if !fired {
		t.Fatal("waiter on silent channel did not fire")
	}
}

func TestToneUnderflowPanics(t *testing.T) {
	c, _ := newTestChannel()
	defer func() {
		if recover() == nil {
			t.Fatal("tone underflow did not panic")
		}
	}()
	c.LowerTone()
}

func TestCancelQueued(t *testing.T) {
	c, got := newTestChannel()
	// Occupy the medium so the second request stays queued.
	c.Transmit(Message{Sender: 0, Line: 1, Payload: "a"}, nil, nil)
	cancel := c.Transmit(Message{Sender: 1, Line: 2, Payload: "b"}, nil, nil)
	c.Tick(1) // first becomes active
	if !cancel() {
		t.Fatal("cancel of queued request failed")
	}
	pump(c, 2, 100)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want only the first", len(*got))
	}
}

func TestCancelActiveFails(t *testing.T) {
	c, got := newTestChannel()
	cancel := c.Transmit(Message{Sender: 0, Line: 1, Payload: "a"}, nil, nil)
	c.Tick(1) // becomes active
	if cancel() {
		t.Fatal("cancel of active transmission succeeded")
	}
	pump(c, 2, 20)
	if len(*got) != 1 {
		t.Fatal("active transmission did not deliver")
	}
}

func TestActiveOn(t *testing.T) {
	c, _ := newTestChannel()
	c.Transmit(Message{Sender: 0, Line: 42, Payload: "a"}, nil, nil)
	c.Tick(1)
	if !c.ActiveOn(42) {
		t.Fatal("ActiveOn missed the active line")
	}
	if c.ActiveOn(43) {
		t.Fatal("ActiveOn false positive")
	}
	pump(c, 2, 20)
	if c.ActiveOn(42) {
		t.Fatal("ActiveOn after completion")
	}
}

func TestIdle(t *testing.T) {
	c, _ := newTestChannel()
	if !c.Idle() {
		t.Fatal("fresh channel not idle")
	}
	c.Transmit(Message{Sender: 0, Line: 1}, nil, nil)
	if c.Idle() {
		t.Fatal("queued channel idle")
	}
	pump(c, 1, 20)
	if !c.Idle() {
		t.Fatal("drained channel not idle")
	}
	c.RaiseTone()
	if c.Idle() {
		t.Fatal("tone-held channel idle")
	}
	c.LowerTone()
}

func TestBusyCyclesCounted(t *testing.T) {
	c, _ := newTestChannel()
	c.Transmit(Message{Sender: 0, Line: 1}, nil, nil)
	pump(c, 1, 20)
	if c.BusyCycles.Value() == 0 {
		t.Fatal("busy cycles not counted")
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	c, got := newTestChannel()
	const n = 32
	for i := 0; i < n; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i % 4), Payload: i}, nil, nil)
	}
	pump(c, 1, 20000)
	if len(*got) != n {
		t.Fatalf("deliveries = %d, want %d", len(*got), n)
	}
	// Every sender delivered exactly once.
	seen := map[int]bool{}
	for _, m := range *got {
		if seen[m.Payload.(int)] {
			t.Fatal("duplicate delivery")
		}
		seen[m.Payload.(int)] = true
	}
}

func TestTokenMACDeliversWithoutCollisions(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 8
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	for i := 0; i < 8; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 2000)
	if len(got) != 8 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if c.Collisions.Value() != 0 {
		t.Fatalf("token MAC collided %d times", c.Collisions.Value())
	}
}

func TestTokenMACRespectsJam(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 4
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	c.Jam(10, 2)
	aborted := false
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"}, nil,
		func(uint64, bool) { aborted = true })
	pump(c, 1, 100)
	if !aborted || len(got) != 0 {
		t.Fatal("token MAC ignored jamming")
	}
}

func TestTokenMACRoundRobinFair(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 4
	var order []int
	c.SetBroadcast(func(now uint64, msg Message) { order = append(order, msg.Sender) })
	// All four nodes queue; the token visits them in index order.
	for i := 0; i < 4; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 200)
	if len(order) != 4 {
		t.Fatalf("deliveries = %d", len(order))
	}
	for i := 1; i < 4; i++ {
		if order[i] != (order[0]+i)%4 {
			t.Fatalf("token order not round-robin: %v", order)
		}
	}
}
