package wireless

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/xrand"
)

func newTestChannel() (*Channel, *[]Message) {
	c := NewChannel(xrand.New(1))
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	return c, &got
}

func pump(c *Channel, from, to uint64) uint64 {
	for now := from; now <= to; now++ {
		c.Tick(now)
	}
	return to
}

func TestSingleTransmission(t *testing.T) {
	c, got := newTestChannel()
	doneAt := uint64(0)
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"},
		func(now uint64) { doneAt = now }, nil)
	pump(c, 1, 20)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d", len(*got))
	}
	if doneAt == 0 {
		t.Fatal("done never fired")
	}
	// Transfer + collision-detect cycles after the start.
	if doneAt < TransferCycles+CollisionDetectCycles {
		t.Fatalf("done too early at %d", doneAt)
	}
	if c.Successes.Value() != 1 || c.Collisions.Value() != 0 {
		t.Fatal("stats wrong")
	}
}

func TestCollisionThenBackoffResolves(t *testing.T) {
	c, got := newTestChannel()
	for i := 0; i < 4; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 500)
	if len(*got) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(*got))
	}
	if c.Collisions.Value() == 0 {
		t.Fatal("simultaneous starters did not collide")
	}
	if c.CollisionProbability() <= 0 || c.CollisionProbability() >= 1 {
		t.Fatalf("collision probability = %v", c.CollisionProbability())
	}
}

func TestSerialization(t *testing.T) {
	// At most one transmission may occupy the medium; deliveries are
	// therefore spaced by at least the packet length.
	c := NewChannel(xrand.New(7))
	var times []uint64
	c.SetBroadcast(func(now uint64, msg Message) { times = append(times, now) })
	for i := 0; i < 6; i++ {
		c.Transmit(Message{Sender: i, Line: 5, Payload: i}, nil, nil)
	}
	pump(c, 1, 2000)
	if len(times) != 6 {
		t.Fatalf("deliveries = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < TransferCycles+CollisionDetectCycles {
			t.Fatalf("overlapping transmissions: %v", times)
		}
	}
}

func TestJamAbortsUnprivileged(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	aborted := false
	jammedFlag := false
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"}, nil,
		func(now uint64, jammed bool) { aborted, jammedFlag = true, jammed })
	pump(c, 1, 50)
	if !aborted || !jammedFlag {
		t.Fatal("jammed transmission was not aborted")
	}
	if len(*got) != 0 {
		t.Fatal("jammed transmission delivered")
	}
	if c.Jams.Value() != 1 {
		t.Fatalf("jam count = %d", c.Jams.Value())
	}
}

func TestJamPassesPrivileged(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	c.Transmit(Message{Sender: 3, Line: 10, Payload: "dir", Privileged: true}, nil,
		func(uint64, bool) { t.Fatal("privileged broadcast aborted") })
	pump(c, 1, 50)
	if len(*got) != 1 {
		t.Fatal("privileged broadcast did not deliver")
	}
}

func TestJamOtherLinePasses(t *testing.T) {
	c, got := newTestChannel()
	c.Jam(10, 3)
	c.Transmit(Message{Sender: 1, Line: 11, Payload: "y"}, nil,
		func(uint64, bool) { t.Fatal("unrelated line aborted") })
	pump(c, 1, 50)
	if len(*got) != 1 {
		t.Fatal("unrelated line did not deliver")
	}
}

func TestJamRefcounting(t *testing.T) {
	c, _ := newTestChannel()
	c.Jam(10, 3)
	c.Jam(10, 3)
	c.Unjam(10, 3)
	if !c.JammedFor(10) {
		t.Fatal("jam released too early")
	}
	c.Unjam(10, 3)
	if c.JammedFor(10) {
		t.Fatal("jam not released")
	}
}

func TestJamTwoOwnersPanics(t *testing.T) {
	c, _ := newTestChannel()
	c.Jam(10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("second owner did not panic")
		}
	}()
	c.Jam(10, 4)
}

func TestUnjamUnownedPanics(t *testing.T) {
	c, _ := newTestChannel()
	defer func() {
		if recover() == nil {
			t.Fatal("unjam of free line did not panic")
		}
	}()
	c.Unjam(10, 1)
}

func TestToneAck(t *testing.T) {
	c, _ := newTestChannel()
	fired := uint64(0)
	c.RaiseTone()
	c.RaiseTone()
	c.WaitToneSilent(func(now uint64) { fired = now })
	pump(c, 1, 5)
	if fired != 0 {
		t.Fatal("tone waiter fired while held")
	}
	c.LowerTone()
	pump(c, 6, 10)
	if fired != 0 {
		t.Fatal("tone waiter fired with one holder left")
	}
	c.LowerTone()
	pump(c, 11, 15)
	if fired == 0 {
		t.Fatal("tone waiter never fired")
	}
}

func TestToneImmediateWhenSilent(t *testing.T) {
	c, _ := newTestChannel()
	fired := false
	c.WaitToneSilent(func(uint64) { fired = true })
	pump(c, 1, 2)
	if !fired {
		t.Fatal("waiter on silent channel did not fire")
	}
}

func TestToneUnderflowPanics(t *testing.T) {
	c, _ := newTestChannel()
	defer func() {
		if recover() == nil {
			t.Fatal("tone underflow did not panic")
		}
	}()
	c.LowerTone()
}

func TestCancelQueued(t *testing.T) {
	c, got := newTestChannel()
	// Occupy the medium so the second request stays queued.
	c.Transmit(Message{Sender: 0, Line: 1, Payload: "a"}, nil, nil)
	cancel := c.Transmit(Message{Sender: 1, Line: 2, Payload: "b"}, nil, nil)
	c.Tick(1) // first becomes active
	if !cancel() {
		t.Fatal("cancel of queued request failed")
	}
	pump(c, 2, 100)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want only the first", len(*got))
	}
}

func TestCancelActiveFails(t *testing.T) {
	c, got := newTestChannel()
	cancel := c.Transmit(Message{Sender: 0, Line: 1, Payload: "a"}, nil, nil)
	c.Tick(1) // becomes active
	if cancel() {
		t.Fatal("cancel of active transmission succeeded")
	}
	pump(c, 2, 20)
	if len(*got) != 1 {
		t.Fatal("active transmission did not deliver")
	}
}

func TestActiveOn(t *testing.T) {
	c, _ := newTestChannel()
	c.Transmit(Message{Sender: 0, Line: 42, Payload: "a"}, nil, nil)
	c.Tick(1)
	if !c.ActiveOn(42) {
		t.Fatal("ActiveOn missed the active line")
	}
	if c.ActiveOn(43) {
		t.Fatal("ActiveOn false positive")
	}
	pump(c, 2, 20)
	if c.ActiveOn(42) {
		t.Fatal("ActiveOn after completion")
	}
}

func TestIdle(t *testing.T) {
	c, _ := newTestChannel()
	if !c.Idle() {
		t.Fatal("fresh channel not idle")
	}
	c.Transmit(Message{Sender: 0, Line: 1}, nil, nil)
	if c.Idle() {
		t.Fatal("queued channel idle")
	}
	pump(c, 1, 20)
	if !c.Idle() {
		t.Fatal("drained channel not idle")
	}
	c.RaiseTone()
	if c.Idle() {
		t.Fatal("tone-held channel idle")
	}
	c.LowerTone()
}

func TestBusyCyclesCounted(t *testing.T) {
	c, _ := newTestChannel()
	c.Transmit(Message{Sender: 0, Line: 1}, nil, nil)
	pump(c, 1, 20)
	if c.BusyCycles.Value() == 0 {
		t.Fatal("busy cycles not counted")
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	c, got := newTestChannel()
	const n = 32
	for i := 0; i < n; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i % 4), Payload: i}, nil, nil)
	}
	pump(c, 1, 20000)
	if len(*got) != n {
		t.Fatalf("deliveries = %d, want %d", len(*got), n)
	}
	// Every sender delivered exactly once.
	seen := map[int]bool{}
	for _, m := range *got {
		if seen[m.Payload.(int)] {
			t.Fatal("duplicate delivery")
		}
		seen[m.Payload.(int)] = true
	}
}

func TestTokenMACDeliversWithoutCollisions(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 8
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	for i := 0; i < 8; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 2000)
	if len(got) != 8 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if c.Collisions.Value() != 0 {
		t.Fatalf("token MAC collided %d times", c.Collisions.Value())
	}
}

func TestTokenMACRespectsJam(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 4
	var got []Message
	c.SetBroadcast(func(now uint64, msg Message) { got = append(got, msg) })
	c.Jam(10, 2)
	aborted := false
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"}, nil,
		func(uint64, bool) { aborted = true })
	pump(c, 1, 100)
	if !aborted || len(got) != 0 {
		t.Fatal("token MAC ignored jamming")
	}
}

// corruptFirstN returns a FaultCorrupt hook that corrupts the first n
// completed transmissions and passes the rest.
func corruptFirstN(n int) func(Message) bool {
	return func(Message) bool {
		n--
		return n >= 0
	}
}

func TestFaultCorruptRetriesThenDelivers(t *testing.T) {
	c, got := newTestChannel()
	c.FaultCorrupt = corruptFirstN(2)
	var faults []bool
	c.OnTxFault = func(now uint64, msg Message, exhausted bool) {
		faults = append(faults, exhausted)
	}
	doneCount := 0
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"},
		func(uint64) { doneCount++ }, nil)
	pump(c, 1, 500)
	if len(*got) != 1 || doneCount != 1 {
		t.Fatalf("deliveries = %d, done = %d, want 1/1", len(*got), doneCount)
	}
	if c.Corrupted.Value() != 2 || c.Successes.Value() != 1 {
		t.Fatalf("corrupted = %d, successes = %d", c.Corrupted.Value(), c.Successes.Value())
	}
	if len(faults) != 2 || faults[0] || faults[1] {
		t.Fatalf("OnTxFault calls = %v, want two non-exhausted", faults)
	}
	if c.TxFailures.Value() != 0 {
		t.Fatal("retryable faults counted as failures")
	}
}

func TestFaultExhaustionAborts(t *testing.T) {
	c, got := newTestChannel()
	c.FaultCorrupt = func(Message) bool { return true }
	c.MaxTries = 3
	sawExhausted := false
	c.OnTxFault = func(now uint64, msg Message, exhausted bool) {
		if exhausted {
			sawExhausted = true
		}
	}
	aborted, jammedFlag := false, true
	c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"},
		func(uint64) { t.Fatal("done fired on a corrupted transmission") },
		func(now uint64, jammed bool) { aborted, jammedFlag = true, jammed })
	pump(c, 1, 2000)
	if !aborted {
		t.Fatal("sender never gave up")
	}
	if jammedFlag {
		t.Fatal("fault abort reported as a jam")
	}
	if len(*got) != 0 {
		t.Fatal("corrupted transmission delivered")
	}
	if c.Corrupted.Value() != 3 || c.TxFailures.Value() != 1 {
		t.Fatalf("corrupted = %d, failures = %d, want 3/1",
			c.Corrupted.Value(), c.TxFailures.Value())
	}
	if !sawExhausted {
		t.Fatal("OnTxFault never reported exhaustion")
	}
}

func TestFaultPrivilegedRetriesUnbounded(t *testing.T) {
	c, got := newTestChannel()
	c.MaxTries = 2
	c.FaultCorrupt = corruptFirstN(10) // well past MaxTries
	c.Transmit(Message{Sender: 3, Line: 10, Payload: "dir", Privileged: true}, nil,
		func(uint64, bool) { t.Fatal("privileged broadcast gave up") })
	pump(c, 1, 5000)
	if len(*got) != 1 {
		t.Fatal("privileged broadcast never delivered through faults")
	}
	if c.Corrupted.Value() != 10 {
		t.Fatalf("corrupted = %d, want 10", c.Corrupted.Value())
	}
}

func TestFaultRequeuedCancelWorks(t *testing.T) {
	c, got := newTestChannel()
	c.FaultCorrupt = corruptFirstN(1)
	cancel := c.Transmit(Message{Sender: 1, Line: 10, Payload: "x"}, nil, nil)
	// Run until the corruption re-queues the request, then withdraw it.
	for now := uint64(1); c.Corrupted.Value() == 0; now++ {
		c.Tick(now)
		if now > 100 {
			t.Fatal("corruption never drawn")
		}
	}
	if !cancel() {
		t.Fatal("cancel of a fault-requeued request failed")
	}
	pump(c, 101, 300)
	if len(*got) != 0 {
		t.Fatal("cancelled request delivered")
	}
}

// TestJamNestedCompetingOwners covers nested jams with a competing
// owner: the loser panics at every nesting depth, and only full
// release by the first owner frees the line for the second.
func TestJamNestedCompetingOwners(t *testing.T) {
	c, _ := newTestChannel()
	c.Jam(10, 3)
	c.Jam(10, 3) // nested by the same owner: fine
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { c.Jam(10, 4) })   // competing jam while nested
	mustPanic(func() { c.Unjam(10, 4) }) // competing unjam while nested
	c.Unjam(10, 3)
	mustPanic(func() { c.Jam(10, 4) }) // still one reference held
	c.Unjam(10, 3)
	c.Jam(10, 4) // fully released: new owner may protect the line
	if !c.JammedFor(10) {
		t.Fatal("second owner's jam not in effect")
	}
	c.Unjam(10, 4)
}

// TestWaitToneSilentAlreadySilent pins the already-silent fast path:
// waiters registered on a silent channel fire on the next Tick, in
// registration order, and a waiter registered inside a firing callback
// waits for the following Tick rather than running recursively.
func TestWaitToneSilentAlreadySilent(t *testing.T) {
	c, _ := newTestChannel()
	var order []int
	c.WaitToneSilent(func(uint64) { order = append(order, 1) })
	c.WaitToneSilent(func(now uint64) {
		order = append(order, 2)
		c.WaitToneSilent(func(uint64) { order = append(order, 3) })
	})
	c.Tick(1)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("first Tick fired %v, want [1 2]", order)
	}
	c.Tick(2)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("nested waiter outcome %v, want [1 2 3]", order)
	}
}

// TestFaultCollisionJamInteraction drives colliding senders, a jammed
// line, and injected corruption at once: the jammed sender must abort
// with jammed=true, everyone else must eventually deliver exactly
// once, and the collision/corruption retries must not duplicate or
// lose any transmission.
func TestFaultCollisionJamInteraction(t *testing.T) {
	c, got := newTestChannel()
	c.FaultCorrupt = corruptFirstN(3)
	c.Jam(99, 7)
	jamAborts := 0
	c.Transmit(Message{Sender: 0, Line: 99, Payload: "jammed"}, nil,
		func(now uint64, jammed bool) {
			if !jammed {
				t.Fatal("jam abort flagged as fault")
			}
			jamAborts++
		})
	for i := 1; i <= 4; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil,
			func(uint64, bool) { t.Fatal("clean-line sender aborted") })
	}
	pump(c, 1, 5000)
	if jamAborts != 1 {
		t.Fatalf("jam aborts = %d, want 1", jamAborts)
	}
	if len(*got) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(*got))
	}
	seen := map[int]bool{}
	for _, m := range *got {
		if m.Line == 99 {
			t.Fatal("jammed line delivered")
		}
		if seen[m.Payload.(int)] {
			t.Fatal("duplicate delivery")
		}
		seen[m.Payload.(int)] = true
	}
	if c.Collisions.Value() == 0 {
		t.Fatal("same-cycle starters did not collide")
	}
	if c.Corrupted.Value() != 3 {
		t.Fatalf("corrupted = %d, want 3", c.Corrupted.Value())
	}
}

func TestTokenMACRoundRobinFair(t *testing.T) {
	c := NewChannel(xrand.New(3))
	c.Mac = MACToken
	c.Nodes = 4
	var order []int
	c.SetBroadcast(func(now uint64, msg Message) { order = append(order, msg.Sender) })
	// All four nodes queue; the token visits them in index order.
	for i := 0; i < 4; i++ {
		c.Transmit(Message{Sender: i, Line: addrspace.Line(i), Payload: i}, nil, nil)
	}
	pump(c, 1, 200)
	if len(order) != 4 {
		t.Fatalf("deliveries = %d", len(order))
	}
	for i := 1; i < 4; i++ {
		if order[i] != (order[0]+i)%4 {
			t.Fatalf("token order not round-robin: %v", order)
		}
	}
}
