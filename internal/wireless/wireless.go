// Package wireless implements the Wireless NoC: a single shared data
// channel with the BRS MAC protocol (carrier sense, one preamble cycle,
// one collision-detection cycle, exponential backoff on collision) plus
// the two WiDir protocol primitives — Selective Data-Channel Jamming and
// the Tone-Channel Acknowledgment — and the collision statistics the
// paper reports in Table VI.
//
// Timing follows Table III: a successful data-channel packet occupies
// the medium for TransferCycles+CollisionDetectCycles cycles (4+1); the
// tone channel has a 1-cycle latency. A collision or a jam wastes the
// preamble and detection cycles, after which each loser retries after a
// random exponential backoff.
package wireless

import (
	"repro/internal/addrspace"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Channel timing (Table III).
const (
	TransferCycles        = 4
	CollisionDetectCycles = 1
	AbortCycles           = 2 // preamble + collision-detect on a failed start
	ToneLatency           = 1
)

// Message is one broadcast on the data channel. Line identifies the
// cache line the message concerns (used by jamming); Payload carries the
// protocol message.
type Message struct {
	Sender  int
	Line    addrspace.Line
	Payload any
	// Privileged marks a directory's own protocol broadcast (BrWirUpgr,
	// WirDwgr, WirInv): it passes through that directory's jam on the
	// line. A node's core traffic is never privileged.
	Privileged bool
}

// BroadcastFunc delivers a successful transmission to every node. It is
// called once per transmission; the machine fans it out.
type BroadcastFunc func(now uint64, msg Message)

// TxDoneFunc tells the sender its transmission is guaranteed to succeed
// (the collision-detect cycle passed clean). Per §IV-C this is the
// serialization point: local state changes only happen here.
type TxDoneFunc func(now uint64)

// TxAbortFunc tells the sender its transmission was jammed; the sender
// decides whether to keep retrying or fall back to the wired path.
type TxAbortFunc func(now uint64, jammed bool)

type txRequest struct {
	msg     Message
	done    TxDoneFunc
	abort   TxAbortFunc
	retryAt uint64 // earliest cycle this node may attempt again
	tries   int
	seq     uint64
}

// MAC selects the medium-access protocol of the data channel.
type MAC uint8

// The MAC protocols. BRS (the paper's default) is carrier-sense with a
// collision-detect cycle and exponential backoff; Token passes a
// virtual token round-robin — collision-free, but a waiting sender pays
// up to a full token rotation of latency. The paper notes "practically
// any other WNoC MAC protocol could be used"; the ablation benchmark
// compares the two.
const (
	MACBRS MAC = iota
	MACToken
)

// String names the protocol.
func (m MAC) String() string {
	if m == MACToken {
		return "Token"
	}
	return "BRS"
}

// Channel is the shared wireless medium for one machine.
type Channel struct {
	rng   *xrand.Source
	onAir BroadcastFunc

	// MAC protocol; BRS by default. Nodes must be set for MACToken.
	Mac   MAC
	Nodes int
	token int // current token holder (MACToken)

	busyUntil uint64
	queue     []*txRequest // pending requests across all nodes
	seq       uint64
	starters  []*txRequest // Tick scratch: same-cycle starters, queue order

	// Active transmission (already started, completes at busyUntil).
	active *txRequest

	// Jamming registry: lines the directory controllers are currently
	// protecting. A transmission for a jammed line is aborted in its
	// collision-detect cycle exactly as if a collision occurred — except
	// transmissions by the jamming node itself (the directory's own
	// protocol broadcasts must get through).
	jammed map[addrspace.Line]*jamInfo

	// Tone channel: count of nodes currently holding the tone.
	toneHolds   int
	toneWaiters []toneWaiter

	// Trace receives MAC-level events (slot grants, collisions, jams,
	// tone silence); nil disables emission.
	Trace obs.Sink

	// FaultCorrupt, when non-nil, draws whether one completed
	// transmission was corrupted in flight (injected channel faults,
	// modeled BER): every receiver's CRC fails, nobody merges the
	// payload, and the sender — which observed no acknowledgment —
	// retries after an exponential backoff. Called once per completed
	// transmission, in completion order, so a seeded drawer keeps the
	// faulty run deterministic.
	FaultCorrupt func(msg Message) bool

	// OnTxFault observes every corrupted transmission (after the retry
	// decision): exhausted reports that the sender gave up. The machine
	// routes these to the line's home directory, which demotes W lines
	// after sustained failures.
	OnTxFault func(now uint64, msg Message, exhausted bool)

	// MaxTries bounds an unprivileged sender's attempts (collisions and
	// corruptions combined) before it aborts and falls back to the wired
	// path. Privileged directory broadcasts retry without bound: the
	// protocol cannot abandon them without wedging the transaction.
	MaxTries int

	// Stats for Table VI and Fig. 9.
	Attempts   stats.Counter // transmission starts (first cycle sent)
	Collisions stats.Counter // starts aborted by a same-cycle collision
	Jams       stats.Counter // starts aborted by jamming
	Successes  stats.Counter
	BusyCycles stats.Counter // medium-occupied cycles (energy: TX+RX)
	ToneCycles stats.Counter // cycles with at least one tone holder
	Corrupted  stats.Counter // transmissions lost to injected faults
	TxFailures stats.Counter // senders that exhausted their retries
}

type toneWaiter struct {
	fn  func(now uint64)
	seq uint64
}

// NewChannel returns an idle channel using rng for backoff draws.
func NewChannel(rng *xrand.Source) *Channel {
	return &Channel{
		rng:      rng,
		jammed:   make(map[addrspace.Line]*jamInfo),
		MaxTries: 8,
	}
}

// Transmit queues a broadcast from a node. done fires when the
// transmission is guaranteed to succeed (the serialization point);
// abort fires if the message is jammed (collisions retry internally and
// are invisible to the caller). The returned cancel function withdraws
// the request; it reports false when the transmission has already won
// the medium (or completed), in which case it will deliver.
func (c *Channel) Transmit(msg Message, done TxDoneFunc, abort TxAbortFunc) (cancel func() bool) {
	c.seq++
	req := &txRequest{msg: msg, done: done, abort: abort, seq: c.seq}
	c.queue = append(c.queue, req)
	return func() bool {
		if c.active == req {
			return false
		}
		for i, q := range c.queue {
			if q == req {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				return true
			}
		}
		return false
	}
}

// SetBroadcast registers the delivery fan-out callback.
func (c *Channel) SetBroadcast(fn BroadcastFunc) { c.onAir = fn }

type jamInfo struct {
	owner int
	refs  int
}

// Jam begins protecting a line on behalf of owner (the node whose
// directory is running a transaction): any transmission for it from
// another node is rejected with a forced negative-ack. Jams nest; each
// Jam needs an Unjam. Only one owner may protect a line at a time,
// which holds by construction — a line has one home directory.
func (c *Channel) Jam(l addrspace.Line, owner int) {
	j := c.jammed[l]
	if j == nil {
		c.jammed[l] = &jamInfo{owner: owner, refs: 1}
		return
	}
	if j.owner != owner {
		panic("wireless: line jammed by two owners")
	}
	j.refs++
}

// Unjam releases one jamming reference for the line.
func (c *Channel) Unjam(l addrspace.Line, owner int) {
	j := c.jammed[l]
	if j == nil || j.owner != owner {
		panic("wireless: unjam of line that is not jammed by this owner")
	}
	j.refs--
	if j.refs == 0 {
		delete(c.jammed, l)
	}
}

// JammedFor reports whether an unprivileged transmission for the line
// would be rejected.
func (c *Channel) JammedFor(l addrspace.Line) bool {
	return c.jammed[l] != nil
}

// RaiseTone adds one tone holder (a node that has not finished its part
// of a global acknowledgment).
func (c *Channel) RaiseTone() { c.toneHolds++ }

// LowerTone removes one tone holder.
func (c *Channel) LowerTone() {
	if c.toneHolds == 0 {
		panic("wireless: tone lowered below zero")
	}
	c.toneHolds--
}

// ToneHolds returns the current number of holders.
//
//vet:pure
func (c *Channel) ToneHolds() int { return c.toneHolds }

// WaitToneSilent registers fn to run one tone-latency cycle after the
// tone channel next falls silent (or immediately next Tick if already
// silent). Used by the initiating directory in a ToneAck operation.
func (c *Channel) WaitToneSilent(fn func(now uint64)) {
	c.seq++
	c.toneWaiters = append(c.toneWaiters, toneWaiter{fn: fn, seq: c.seq})
}

// Busy reports whether the data channel is occupied at cycle now.
func (c *Channel) Busy(now uint64) bool { return now < c.busyUntil }

// ActiveOn reports whether a transmission concerning the line is
// currently on the air (past its collision-detect cycle, guaranteed to
// deliver). Directories must not snapshot or transfer the line's data
// while this holds, since the in-flight update will merge imminently.
func (c *Channel) ActiveOn(l addrspace.Line) bool {
	return c.active != nil && c.active.msg.Line == l
}

// Idle reports whether the channel has no queued or active work and no
// tone activity; the machine uses it to skip work.
//
//vet:pure
func (c *Channel) Idle() bool {
	return c.active == nil && len(c.queue) == 0 && c.toneHolds == 0 && len(c.toneWaiters) == 0
}

// never is the NextWake sentinel for "no self-scheduled progress".
const never = ^uint64(0)

// NextWake returns the earliest cycle > now at which Tick would do
// something beyond statistics accrual: complete the active
// transmission, fire tone waiters, or attempt a transmission start.
// Statistics for skipped cycles are settled by FastForward. Returns
// never when the channel cannot make progress without external input.
//
//vet:pure
func (c *Channel) NextWake(now uint64) uint64 {
	wake := never
	if c.active != nil {
		// Completion fires on the first tick with now >= busyUntil.
		wake = c.busyUntil
		if wake <= now {
			wake = now + 1
		}
	}
	if c.toneHolds == 0 && len(c.toneWaiters) > 0 {
		return now + 1
	}
	if c.active == nil && len(c.queue) > 0 {
		// A start attempt happens once the medium frees up and (BRS)
		// some sender's backoff has expired; Token arbitration ignores
		// retryAt and always rotates to a winner in one tick.
		start := now + 1
		if c.busyUntil > start {
			start = c.busyUntil
		}
		if c.Mac != MACToken {
			minRetry := never
			for _, r := range c.queue {
				if r.retryAt < minRetry {
					minRetry = r.retryAt
				}
			}
			if minRetry > start {
				start = minRetry
			}
		}
		if start < wake {
			wake = start
		}
	}
	return wake
}

// FastForward settles per-cycle statistics for the skipped cycles in
// the open interval (from, to): the machine ticked cycle from, will
// tick cycle to, and jumped over everything between. Mirrors exactly
// the counters Tick accrues on cycles where nothing completes, starts,
// or fires. Call only when the machine would have ticked those cycles
// (i.e. the channel is not Idle), matching the run loop's gate.
func (c *Channel) FastForward(from, to uint64) {
	if to <= from+1 {
		return
	}
	skipped := to - from - 1
	if c.busyUntil > from+1 {
		busy := c.busyUntil - from - 1
		if busy > skipped {
			busy = skipped
		}
		c.BusyCycles.Add(busy)
	}
	if c.toneHolds > 0 {
		c.ToneCycles.Add(skipped)
	}
}

// Tick advances the channel one cycle. It resolves the active
// transmission's completion, starts new transmissions when the medium
// is free (detecting collisions among same-cycle starters), and fires
// tone waiters.
func (c *Channel) Tick(now uint64) {
	if now < c.busyUntil {
		c.BusyCycles.Inc()
	}
	if c.toneHolds > 0 {
		c.ToneCycles.Inc()
	}

	// Complete the active transmission: the collision-detect cycle is
	// the first cycle after the preamble; once we are past it the
	// transmission is guaranteed. We deliver at busyUntil (transfer
	// finished).
	if c.active != nil && now >= c.busyUntil {
		req := c.active
		c.active = nil
		if c.FaultCorrupt != nil && c.FaultCorrupt(req.msg) {
			c.corrupt(now, req)
		} else {
			c.Successes.Inc()
			if req.done != nil {
				req.done(now)
			}
			if c.onAir != nil {
				c.onAir(now, req.msg)
			}
		}
	}

	// Fire tone waiters if silent. The 1-cycle latency is folded into
	// "fires on the Tick after silence is observed".
	if c.toneHolds == 0 && len(c.toneWaiters) > 0 {
		ws := c.toneWaiters
		c.toneWaiters = nil
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvToneQuiet,
				Node: obs.NoNode, Other: obs.NoNode, Line: obs.NoLine,
				A: uint64(len(ws))})
		}
		for _, w := range ws {
			w.fn(now)
		}
	}

	// Try to start a new transmission.
	if c.active != nil || now < c.busyUntil || len(c.queue) == 0 {
		return
	}
	if c.Mac == MACToken {
		c.tickToken(now)
		return
	}
	// BRS: collect the requests whose backoff has expired — they
	// carrier-sense a free medium this cycle and start together. A node
	// has a single transceiver, so at most one of its queued requests
	// (the oldest) can start; same-sender packets serialize without
	// colliding. The per-sender dedup scans the starter list directly:
	// the queue is walked in arrival order, so the oldest request per
	// sender wins deterministically, and the scratch slice avoids the
	// per-Tick map allocation the old map[int]bool bookkeeping paid.
	starters := c.starters[:0]
queue:
	for _, r := range c.queue {
		if r.retryAt > now {
			continue
		}
		for _, s := range starters {
			if s.msg.Sender == r.msg.Sender {
				continue queue
			}
		}
		starters = append(starters, r)
	}
	c.starters = starters[:0]
	if len(starters) == 0 {
		return
	}
	for range starters {
		c.Attempts.Inc()
	}
	if len(starters) > 1 {
		// Collision: every starter aborts after the detect cycle and
		// backs off exponentially (BRS).
		c.busyUntil = now + AbortCycles
		for _, r := range starters {
			c.Collisions.Inc()
			r.tries++
			r.retryAt = now + uint64(AbortCycles) + c.backoff(r.tries)
			if c.Trace != nil {
				c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvCollision,
					Node: int32(r.msg.Sender), Other: obs.NoNode,
					Line: r.msg.Line, A: uint64(r.tries)})
			}
		}
		return
	}
	winner := starters[0]
	if !winner.msg.Privileged && c.JammedFor(winner.msg.Line) {
		// The jamming transceiver negative-acks in the detect cycle.
		c.Jams.Inc()
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvJam,
				Node: int32(winner.msg.Sender), Other: int32(c.jammed[winner.msg.Line].owner),
				Line: winner.msg.Line, A: uint64(winner.tries)})
		}
		c.busyUntil = now + AbortCycles
		c.removeRequest(winner)
		if winner.abort != nil {
			winner.abort(now+AbortCycles, true)
		}
		return
	}
	// Clean start: transmission occupies transfer + detect cycles.
	c.removeRequest(winner)
	c.active = winner
	c.busyUntil = now + TransferCycles + CollisionDetectCycles
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvSlotGrant,
			Node: int32(winner.msg.Sender), Other: obs.NoNode,
			Line: winner.msg.Line, A: c.busyUntil})
	}
}

// corrupt handles a transmission lost to an injected channel fault.
// The transfer occupied the medium but no receiver accepted it, so the
// serialization point (done) never fires. An unprivileged sender that
// has burned MaxTries attempts gives up with abort(now, false) — the
// jammed=false discriminates a fault abort from a jam — otherwise the
// request re-queues behind an exponential backoff and contends again.
func (c *Channel) corrupt(now uint64, req *txRequest) {
	c.Corrupted.Inc()
	req.tries++
	exhausted := !req.msg.Privileged && c.MaxTries > 0 && req.tries >= c.MaxTries
	if c.Trace != nil {
		var b uint64
		if exhausted {
			b = 1
		}
		c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvTxCorrupt,
			Node: int32(req.msg.Sender), Other: obs.NoNode,
			Line: req.msg.Line, A: uint64(req.tries), B: b})
	}
	if c.OnTxFault != nil {
		c.OnTxFault(now, req.msg, exhausted)
	}
	if exhausted {
		c.TxFailures.Inc()
		if req.abort != nil {
			req.abort(now, false)
		}
		return
	}
	req.retryAt = now + c.backoff(req.tries)
	c.queue = append(c.queue, req)
}

func (c *Channel) removeRequest(r *txRequest) {
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// backoff returns a uniform draw from the BRS exponential window for the
// given retry count, in cycles.
func (c *Channel) backoff(tries int) uint64 {
	exp := tries
	if exp > 6 {
		exp = 6
	}
	window := 1 << exp // slots
	const slot = TransferCycles + CollisionDetectCycles
	return uint64(c.rng.Intn(window) * slot)
}

// CollisionProbability returns collisions / attempts (Table VI metric).
func (c *Channel) CollisionProbability() float64 {
	a := c.Attempts.Value()
	if a == 0 {
		return 0
	}
	return float64(c.Collisions.Value()) / float64(a)
}

// tickToken arbitrates the medium by rotating a virtual token: one node
// may transmit per rotation stop; everyone else waits. Collision-free
// by construction, so jamming is the only abort source.
func (c *Channel) tickToken(now uint64) {
	for hops := 0; hops < c.Nodes; hops++ {
		var winner *txRequest
		for _, r := range c.queue {
			if r.msg.Sender == c.token {
				winner = r
				break
			}
		}
		c.token = (c.token + 1) % c.Nodes
		if winner == nil {
			continue // pass the token on (one hop per cycle folded in)
		}
		c.Attempts.Inc()
		if !winner.msg.Privileged && c.JammedFor(winner.msg.Line) {
			c.Jams.Inc()
			if c.Trace != nil {
				c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvJam,
					Node: int32(winner.msg.Sender), Other: int32(c.jammed[winner.msg.Line].owner),
					Line: winner.msg.Line, A: uint64(winner.tries)})
			}
			c.busyUntil = now + AbortCycles
			c.removeRequest(winner)
			if winner.abort != nil {
				winner.abort(now+AbortCycles, true)
			}
			return
		}
		c.removeRequest(winner)
		c.active = winner
		// Token handover costs one cycle per hop skipped.
		c.busyUntil = now + uint64(hops) + TransferCycles + CollisionDetectCycles
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Cycle: now, Kind: obs.EvSlotGrant,
				Node: int32(winner.msg.Sender), Other: obs.NoNode,
				Line: winner.msg.Line, A: c.busyUntil})
		}
		return
	}
}
