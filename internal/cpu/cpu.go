// Package cpu models one out-of-order core at the fidelity the paper's
// metrics need: a 4-wide issue front end, a reorder buffer with in-order
// retirement, a load queue that exposes memory-level parallelism, a
// write buffer that absorbs stores at retirement, and the cycle
// attribution (memory stall vs. rest) that Figure 8 reports. Memory
// instructions carry real data values, so synchronization in the
// workloads (spin locks, barriers) executes rather than being modeled.
package cpu

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/obs"
)

// InstrKind classifies one instruction handed to the core.
type InstrKind uint8

// The instruction vocabulary the workload generators emit.
const (
	KCompute InstrKind = iota // N back-to-back non-memory instructions
	KLoad
	KStore
	KRMW
	// KPause models a timed low-power wait (x86 PAUSE / backoff loop):
	// it occupies the pipeline for N cycles but retires as a single
	// instruction, so spin backoff neither inflates instruction counts
	// (MPKI denominators) nor dynamic energy.
	KPause
)

// Instr is one (or, for KCompute, a run of) instruction(s).
type Instr struct {
	Kind     InstrKind
	N        int // KCompute: run length
	Addr     addrspace.Addr
	Value    uint64 // store value / RMW operand
	Expected uint64 // RMW compare-and-swap comparand
	RMW      coherence.RMWKind
	// WantResult makes the instruction stream *data-dependent*: the
	// source's Next is not called again until this instruction's value
	// (load data / RMW old value) is available. Spin loops set it;
	// streaming accesses leave it unset so misses overlap.
	WantResult bool
}

// InstrSource produces a core's dynamic instruction stream. prevValid
// tells the source whether prev carries the result of the last
// WantResult instruction. Next returns ok=false when the thread has
// finished.
type InstrSource interface {
	Next(prev uint64, prevValid bool) (ins Instr, ok bool)
}

// MemPort is the core's path into the memory hierarchy (its L1
// controller).
type MemPort interface {
	Access(r *coherence.MemRequest)
}

// Config sizes the core (Table III).
type Config struct {
	IssueWidth  int // 4
	ROBSize     int // 180
	LoadQueue   int // 64
	WriteBuffer int // 64

	// Trace receives one EvROBStall per completed memory-stall episode;
	// nil disables emission. Excluded from JSON config round-trips.
	Trace obs.Sink `json:"-"`
}

// DefaultConfig returns the Table III core.
func DefaultConfig() Config {
	return Config{IssueWidth: 4, ROBSize: 180, LoadQueue: 64, WriteBuffer: 64}
}

func (c *Config) fill() {
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.ROBSize == 0 {
		c.ROBSize = 180
	}
	if c.LoadQueue == 0 {
		c.LoadQueue = 64
	}
	if c.WriteBuffer == 0 {
		c.WriteBuffer = 64
	}
}

type robEntry struct {
	kind       InstrKind
	done       bool
	issuedMem  bool
	count      int // instructions this entry stands for (KCompute batches)
	issueCycle uint64
	readyAt    uint64 // compute completion
	ins        Instr
	value      uint64 // load/RMW result once done
}

// never marks a wake-up that depends purely on an external completion
// (a memory response, a write-buffer drain): the core cannot make
// progress on its own at any future cycle.
const never = ^uint64(0)

// storeToken carries one retired store through the memory hierarchy.
// The ROB slot is recycled the cycle the store retires, so the request
// cannot live in the slot; tokens are pooled per core and returned to
// the free list by their own completion callback, keeping the store
// drain path allocation-free.
type storeToken struct {
	req   coherence.MemRequest
	start uint64
}

// Stats collects the per-core measurements of the evaluation.
type Stats struct {
	Cycles          uint64
	Retired         uint64 // instructions retired (MPKI denominator)
	MemStallCycles  uint64 // Fig. 8 "Memory stall"
	Loads           uint64
	Stores          uint64
	RMWs            uint64
	LoadROBLatency  uint64 // Fig. 7: sum of ROB-entry -> retire cycles
	StoreROBLatency uint64
	StoreDrainLat   uint64 // extra: retirement -> memory completion
}

// Core is one simulated core.
type Core struct {
	id  int
	cfg Config
	mem MemPort
	src InstrSource

	rob     []robEntry
	robHead int
	robTail int
	// robCount counts instructions (the architectural ROB occupancy);
	// entryCount counts ring slots. They differ because back-to-back
	// compute instructions issued in the same cycle share one entry —
	// they carry identical readyAt timestamps, so batch retirement is
	// indistinguishable from retiring them one by one. entryCount <=
	// robCount always, so the ring cannot overflow.
	robCount   int
	entryCount int

	computeRun    int // remaining instructions of the current KCompute run
	fetched       Instr
	hasFetched    bool
	srcDone       bool
	awaiting      *robEntry // WantResult instruction we owe a value from
	haveResult    bool
	lastResult    uint64
	loadsInFlight int
	wbInFlight    int

	finished bool

	// Memory-stall episode tracking for EvROBStall (only maintained
	// when cfg.Trace is set, so tracing-off runs take one extra branch
	// per cycle and nothing else).
	stalled    bool
	stallStart uint64

	// Sleep/wake state for the machine's quiescence fast-forward. wake
	// is the earliest cycle Tick can make progress on its own (never =
	// external input required); extEvent flags that a memory completion
	// arrived since the last Tick; lastTick lets Tick catch up the
	// analytic stall accounting for skipped cycles; sleepStall caches
	// whether a skipped cycle counts as a memory stall (the verdict is
	// state-dependent and the state cannot change while asleep).
	wake       uint64
	extEvent   bool
	lastTick   uint64
	sleepStall bool

	// Allocation-free memory requests: slotReqs[i] is the request for
	// ROB slot i (loads and RMWs complete before their slot retires, so
	// the request is never live across a slot reuse); storeFree pools
	// the tokens that carry retired stores through the write buffer.
	slotReqs  []coherence.MemRequest
	storeFree []*storeToken

	Stats Stats
}

// New builds a core reading instructions from src and accessing memory
// through mem.
func New(id int, cfg Config, src InstrSource, mem MemPort) *Core {
	cfg.fill()
	c := &Core{
		id:       id,
		cfg:      cfg,
		mem:      mem,
		src:      src,
		rob:      make([]robEntry, cfg.ROBSize),
		slotReqs: make([]coherence.MemRequest, cfg.ROBSize),
	}
	// One completion closure per ROB slot, built once: the rob and
	// slotReqs arrays are never reallocated, so slot pointers are
	// stable and the steady-state load/RMW path allocates nothing.
	for i := range c.slotReqs {
		e := &c.rob[i]
		c.slotReqs[i].Done = func(at uint64, v uint64) {
			e.done = true
			e.value = v
			c.extEvent = true
		}
	}
	return c
}

// ID returns the core's node id.
func (c *Core) ID() int { return c.id }

// Done reports whether the thread has finished and all its memory
// operations have drained.
func (c *Core) Done() bool { return c.finished }

// Describe renders the core's stall state for diagnostics.
func (c *Core) Describe() string {
	head := "empty"
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		head = fmt.Sprintf("kind=%d done=%v issuedMem=%v addr=%#x age=%d",
			h.kind, h.done, h.issuedMem, h.ins.Addr, c.Stats.Cycles-h.issueCycle)
	}
	return fmt.Sprintf("rob=%d head={%s} loadsInFlight=%d wb=%d awaiting=%v srcDone=%v",
		c.robCount, head, c.loadsInFlight, c.wbInFlight, c.awaiting != nil, c.srcDone)
}

// Tick advances the core one cycle: retire, then issue (retire-first
// frees ROB slots the same cycle, a common simplification). Ticks may
// skip cycles in which the core provably cannot make progress (see
// NeedsTick); the gap's stall accounting is settled analytically here,
// so a skipping schedule is byte-identical to a cycle-by-cycle one.
func (c *Core) Tick(now uint64) {
	if c.finished {
		return
	}
	if now > c.lastTick {
		c.catchUp(now - 1)
	}
	c.lastTick = now
	c.Stats.Cycles = now
	c.extEvent = false

	retired := c.retire(now)
	c.issue(now)

	stalledNow := false
	if retired == 0 && !c.idleDone() {
		if c.memoryBound(now) {
			c.Stats.MemStallCycles++
			stalledNow = true
		}
	}
	if c.cfg.Trace != nil {
		if stalledNow && !c.stalled {
			c.stalled, c.stallStart = true, now
		} else if !stalledNow && c.stalled {
			c.stalled = false
			c.cfg.Trace.Emit(obs.Event{Cycle: c.stallStart, Kind: obs.EvROBStall,
				Node: int32(c.id), Other: obs.NoNode, Line: obs.NoLine,
				A: now - c.stallStart})
		}
	}

	if c.srcDone && !c.hasFetched && c.computeRun == 0 && c.robCount == 0 && c.wbInFlight == 0 {
		c.finished = true
	}
	c.wake = c.nextWake(now)
	if c.wake > now+1 {
		// The stall verdict for a cycle with no retirement depends only
		// on state that cannot change while asleep (memoryBound ignores
		// the cycle number), so one evaluation covers every skipped
		// cycle.
		c.sleepStall = !c.idleDone() && c.memoryBound(now)
	} else if c.wake == now+1 {
		if k := c.computeJump(now); k > 0 {
			c.wake = now + 1 + k
			c.sleepStall = false // every jumped cycle retires; none stall
		}
	}
}

// minComputeJump is the smallest analytic compute drain worth the ROB
// scan that validates it.
const minComputeJump = 4

// computeJump detects the pure-compute steady state — every ROB entry
// is a ready compute batch, no memory operation is in flight, and the
// front end is feeding from an open compute run — and drains it
// analytically. In that state each upcoming cycle is fully determined:
// retirement takes exactly IssueWidth instructions off the head and
// issue refills exactly IssueWidth from the run, with nothing
// observable outside the core. computeJump settles k such cycles at
// once (Retired += k*width, computeRun -= k*width) and returns k so
// Tick can sleep through them; the machine's quiescence fast-forward
// then skips the cycles entirely. The ROB ring is left untouched: its
// entries stand for different (but indistinguishable) compute
// instructions of the same run, and their readyAt stamps are already
// in the past, which retirement treats identically. k leaves at least
// one width's worth of run behind, so the drain endgame — the final
// partial retire and the fetch of the next instruction — always plays
// out cycle-by-cycle, exactly as an unjumped run would.
func (c *Core) computeJump(now uint64) uint64 {
	width := c.cfg.IssueWidth
	if c.computeRun < width*(minComputeJump+1) || c.robCount < width ||
		c.loadsInFlight > 0 || c.wbInFlight > 0 || c.awaiting != nil || c.hasFetched {
		return 0
	}
	i := c.robHead
	for n := 0; n < c.entryCount; n++ {
		if e := &c.rob[i]; e.kind != KCompute || e.readyAt > now+1 {
			return 0
		}
		if i++; i == c.cfg.ROBSize {
			i = 0
		}
	}
	k := c.computeRun/width - 1
	c.computeRun -= k * width
	c.Stats.Retired += uint64(k) * uint64(width)
	return uint64(k)
}

// catchUp settles the analytic per-cycle accounting for the skipped
// cycles (lastTick, upto]: while asleep the core retires nothing and
// its state is frozen, so each skipped cycle contributes sleepStall to
// the memory-stall counter. With tracing on, a stall episode that
// begins inside the gap is opened retroactively at its true start
// cycle; opening emits nothing, so traced event order is unchanged.
func (c *Core) catchUp(upto uint64) {
	if upto <= c.lastTick {
		return
	}
	k := upto - c.lastTick
	if c.sleepStall {
		c.Stats.MemStallCycles += k
		if c.cfg.Trace != nil && !c.stalled {
			c.stalled, c.stallStart = true, c.lastTick+1
		}
	}
	c.lastTick = upto
	c.Stats.Cycles = upto
}

// CatchUp brings a sleeping core's per-cycle statistics up to date
// without advancing its pipeline, so diagnostics rendered mid-run
// (watchdog dumps) read exactly as they would under a cycle-by-cycle
// schedule. A core that ticked at now is unaffected.
func (c *Core) CatchUp(now uint64) {
	if c.finished {
		return
	}
	c.catchUp(now)
}

// NeedsTick reports whether Tick(now) can change any state: an
// external completion arrived, or the core's own wake-up cycle has
// been reached. The machine skips the call otherwise.
func (c *Core) NeedsTick(now uint64) bool {
	return !c.finished && (c.extEvent || c.wake <= now)
}

// NextWake returns the earliest cycle at which this core needs a Tick
// absent external events (never if it is blocked purely on memory);
// the machine folds it into the event horizon for fast-forwarding.
func (c *Core) NextWake() uint64 {
	if c.finished {
		return never
	}
	if c.extEvent {
		return c.lastTick + 1
	}
	return c.wake
}

// nextWake computes the wake-up cycle after a Tick at now. The default
// for any state where progress is possible (or merely not provably
// impossible) is now+1; readyAt timers sleep until they expire; states
// blocked purely on memory responses or write-buffer drain return
// never and rely on the completion callbacks setting extEvent.
func (c *Core) nextWake(now uint64) uint64 {
	if c.finished {
		return never
	}
	wake := never
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		switch h.kind {
		case KCompute, KPause:
			if h.readyAt <= now {
				return now + 1
			}
			wake = h.readyAt
		case KLoad:
			if h.done {
				return now + 1
			}
		case KRMW:
			if !h.issuedMem || h.done {
				return now + 1
			}
		case KStore:
			if c.wbInFlight < c.cfg.WriteBuffer {
				return now + 1
			}
		}
	}
	if c.robCount < c.cfg.ROBSize {
		if c.computeRun > 0 {
			return now + 1
		}
		if c.hasFetched {
			if c.fetched.Kind != KLoad || c.loadsInFlight < c.cfg.LoadQueue {
				return now + 1
			}
			// A fetched load blocked on a full load queue frees up only
			// when an earlier load retires, which the retire side above
			// already accounts for.
		} else if !c.srcDone && (c.awaiting == nil || c.haveResult) {
			return now + 1 // the source may produce anything; must tick
		}
	}
	return wake
}

// idleDone reports that there is genuinely nothing left to do.
func (c *Core) idleDone() bool {
	return c.srcDone && !c.hasFetched && c.computeRun == 0 && c.robCount == 0 && c.wbInFlight == 0
}

// memoryBound attributes a zero-retirement cycle: true when the head of
// the ROB is an incomplete memory instruction, when retirement is
// blocked on a full write buffer, or when the front end is starved
// waiting for a load value (spin loops).
func (c *Core) memoryBound(now uint64) bool {
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		switch h.kind {
		case KLoad, KRMW:
			return !h.done
		case KStore:
			return c.wbInFlight >= c.cfg.WriteBuffer
		case KCompute, KPause:
			return false
		}
	}
	// Empty ROB: stalled on a data-dependent fetch.
	return c.awaiting != nil && !c.haveResult
}

// retire commits up to IssueWidth completed instructions in order.
func (c *Core) retire(now uint64) int {
	n := 0
	width := c.cfg.IssueWidth
	for n < width && c.robCount > 0 {
		h := &c.rob[c.robHead]
		switch h.kind {
		case KCompute:
			if h.readyAt > now {
				return n
			}
			// Batch: every instruction in the entry shares readyAt, so
			// retire as many as the width allows in one step.
			take := width - n
			if take > h.count {
				take = h.count
			}
			c.Stats.Retired += uint64(take)
			c.robCount -= take
			h.count -= take
			n += take
			if h.count > 0 {
				return n // retire width exhausted mid-batch
			}
			c.advanceHead()
			continue
		case KPause:
			if h.readyAt > now {
				return n
			}
		case KLoad:
			if !h.done {
				return n
			}
			c.Stats.LoadROBLatency += now - h.issueCycle
			c.loadsInFlight--
		case KRMW:
			if !h.issuedMem {
				// RMWs execute when they reach their turn in the
				// consistency order (§IV-C): issue at ROB head.
				c.issueRMW(h, c.robHead)
				return n
			}
			if !h.done {
				return n
			}
			c.Stats.LoadROBLatency += now - h.issueCycle
		case KStore:
			if c.wbInFlight >= c.cfg.WriteBuffer {
				return n // write buffer full: retirement stalls
			}
			c.Stats.StoreROBLatency += now - h.issueCycle
			c.issueStore(now, h)
		}
		if (h.kind == KLoad || h.kind == KRMW) && h.ins.WantResult {
			c.lastResult = h.value
			c.haveResult = true
			c.awaiting = nil
		}
		c.Stats.Retired++
		c.advanceHead()
		c.robCount--
		n++
	}
	return n
}

func (c *Core) advanceHead() {
	c.robHead++
	if c.robHead == c.cfg.ROBSize {
		c.robHead = 0
	}
	c.entryCount--
}

// issue brings up to IssueWidth new instructions into the ROB.
func (c *Core) issue(now uint64) {
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if c.robCount >= c.cfg.ROBSize {
			return
		}
		// Continue an open compute run without consulting the source.
		if c.computeRun > 0 {
			c.pushCompute(now)
			c.computeRun--
			continue
		}
		if !c.ensureFetched() {
			return
		}
		ins := c.fetched
		switch ins.Kind {
		case KCompute:
			if ins.N <= 0 {
				c.hasFetched = false
				i-- // zero-length run consumes no slot
				continue
			}
			c.computeRun = ins.N - 1
			c.hasFetched = false
			c.pushCompute(now)
		case KPause:
			n := uint64(ins.N)
			if n == 0 {
				n = 1
			}
			c.hasFetched = false
			c.pushTimed(KPause, now, now+n)
		case KLoad:
			if c.loadsInFlight >= c.cfg.LoadQueue {
				return
			}
			c.hasFetched = false
			c.pushLoad(now, ins)
		case KStore:
			c.hasFetched = false
			c.pushStore(now, ins)
		case KRMW:
			c.hasFetched = false
			c.pushRMW(now, ins)
		}
	}
}

// ensureFetched pulls the next instruction from the source unless a
// data dependency blocks the front end.
func (c *Core) ensureFetched() bool {
	if c.hasFetched {
		return true
	}
	if c.srcDone {
		return false
	}
	if c.awaiting != nil && !c.haveResult {
		return false // stalled on a WantResult value
	}
	prev, prevValid := c.lastResult, c.haveResult
	ins, ok := c.src.Next(prev, prevValid)
	c.haveResult = false
	if !ok {
		c.srcDone = true
		return false
	}
	c.fetched = ins
	c.hasFetched = true
	return true
}

func (c *Core) push(e robEntry) *robEntry {
	e.count = 1
	slot := &c.rob[c.robTail]
	*slot = e
	c.robTail = (c.robTail + 1) % c.cfg.ROBSize
	c.robCount++
	c.entryCount++
	return slot
}

// pushTimed appends a compute or pause entry by writing only the
// fields those kinds (and the diagnostics dump) ever read, instead of
// copying a whole zeroed robEntry through push — compute runs are the
// bulk of the instruction stream, and the full-struct store was the
// issue loop's largest cost.
func (c *Core) pushTimed(kind InstrKind, now, readyAt uint64) {
	slot := &c.rob[c.robTail]
	slot.kind = kind
	slot.done = false
	slot.issuedMem = false
	slot.count = 1
	slot.readyAt = readyAt
	slot.issueCycle = now
	slot.ins.Addr = 0
	c.robTail++
	if c.robTail == c.cfg.ROBSize {
		c.robTail = 0
	}
	c.robCount++
	c.entryCount++
}

// pushCompute appends one compute instruction, folding it into the
// tail entry when that entry is a compute batch issued this same cycle
// (identical readyAt — retirement cannot tell the difference).
func (c *Core) pushCompute(now uint64) {
	if c.entryCount > 0 {
		i := c.robTail - 1
		if i < 0 {
			i = c.cfg.ROBSize - 1
		}
		if t := &c.rob[i]; t.kind == KCompute && t.readyAt == now+1 {
			t.count++
			c.robCount++
			return
		}
	}
	c.pushTimed(KCompute, now, now+1)
}

func (c *Core) pushLoad(now uint64, ins Instr) {
	c.Stats.Loads++
	idx := c.robTail
	e := c.push(robEntry{kind: KLoad, issueCycle: now, ins: ins})
	if ins.WantResult {
		c.awaiting = e
	}
	c.loadsInFlight++
	r := &c.slotReqs[idx]
	r.IsWrite, r.IsRMW = false, false
	r.Addr = ins.Addr
	c.mem.Access(r)
}

func (c *Core) pushStore(now uint64, ins Instr) {
	c.Stats.Stores++
	e := c.push(robEntry{kind: KStore, issueCycle: now, ins: ins, done: true})
	if ins.WantResult {
		// A store's "result" is its own value, known at issue.
		e.value = ins.Value
		c.lastResult = ins.Value
		c.haveResult = true
	}
}

func (c *Core) pushRMW(now uint64, ins Instr) {
	c.Stats.RMWs++
	e := c.push(robEntry{kind: KRMW, issueCycle: now, ins: ins})
	if ins.WantResult {
		c.awaiting = e
	}
}

// issueRMW launches the atomic once the RMW reaches the ROB head.
func (c *Core) issueRMW(e *robEntry, idx int) {
	e.issuedMem = true
	r := &c.slotReqs[idx]
	r.IsWrite, r.IsRMW = false, true
	r.RMW = e.ins.RMW
	r.Addr = e.ins.Addr
	r.Value = e.ins.Value
	r.Expected = e.ins.Expected
	c.mem.Access(r)
}

// issueStore moves a retiring store into the write buffer; completion
// frees the slot asynchronously. Stores outlive their ROB slot, so
// they draw from the storeToken pool instead of the per-slot request
// array; the token's Done closure recycles it.
func (c *Core) issueStore(now uint64, e *robEntry) {
	c.wbInFlight++
	t := c.takeStoreToken()
	t.start = now
	t.req.IsWrite, t.req.IsRMW = true, false
	t.req.Addr = e.ins.Addr
	t.req.Value = e.ins.Value
	c.mem.Access(&t.req)
}

func (c *Core) takeStoreToken() *storeToken {
	if n := len(c.storeFree); n > 0 {
		t := c.storeFree[n-1]
		c.storeFree[n-1] = nil
		c.storeFree = c.storeFree[:n-1]
		return t
	}
	t := &storeToken{}
	t.req.Done = func(at uint64, _ uint64) {
		c.wbInFlight--
		c.Stats.StoreDrainLat += at - t.start
		c.extEvent = true
		c.storeFree = append(c.storeFree, t)
	}
	return t
}
