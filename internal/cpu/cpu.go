// Package cpu models one out-of-order core at the fidelity the paper's
// metrics need: a 4-wide issue front end, a reorder buffer with in-order
// retirement, a load queue that exposes memory-level parallelism, a
// write buffer that absorbs stores at retirement, and the cycle
// attribution (memory stall vs. rest) that Figure 8 reports. Memory
// instructions carry real data values, so synchronization in the
// workloads (spin locks, barriers) executes rather than being modeled.
package cpu

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/obs"
)

// InstrKind classifies one instruction handed to the core.
type InstrKind uint8

// The instruction vocabulary the workload generators emit.
const (
	KCompute InstrKind = iota // N back-to-back non-memory instructions
	KLoad
	KStore
	KRMW
	// KPause models a timed low-power wait (x86 PAUSE / backoff loop):
	// it occupies the pipeline for N cycles but retires as a single
	// instruction, so spin backoff neither inflates instruction counts
	// (MPKI denominators) nor dynamic energy.
	KPause
)

// Instr is one (or, for KCompute, a run of) instruction(s).
type Instr struct {
	Kind     InstrKind
	N        int // KCompute: run length
	Addr     addrspace.Addr
	Value    uint64 // store value / RMW operand
	Expected uint64 // RMW compare-and-swap comparand
	RMW      coherence.RMWKind
	// WantResult makes the instruction stream *data-dependent*: the
	// source's Next is not called again until this instruction's value
	// (load data / RMW old value) is available. Spin loops set it;
	// streaming accesses leave it unset so misses overlap.
	WantResult bool
}

// InstrSource produces a core's dynamic instruction stream. prevValid
// tells the source whether prev carries the result of the last
// WantResult instruction. Next returns ok=false when the thread has
// finished.
type InstrSource interface {
	Next(prev uint64, prevValid bool) (ins Instr, ok bool)
}

// MemPort is the core's path into the memory hierarchy (its L1
// controller).
type MemPort interface {
	Access(r *coherence.MemRequest)
}

// Config sizes the core (Table III).
type Config struct {
	IssueWidth  int // 4
	ROBSize     int // 180
	LoadQueue   int // 64
	WriteBuffer int // 64

	// Trace receives one EvROBStall per completed memory-stall episode;
	// nil disables emission. Excluded from JSON config round-trips.
	Trace obs.Sink `json:"-"`
}

// DefaultConfig returns the Table III core.
func DefaultConfig() Config {
	return Config{IssueWidth: 4, ROBSize: 180, LoadQueue: 64, WriteBuffer: 64}
}

func (c *Config) fill() {
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.ROBSize == 0 {
		c.ROBSize = 180
	}
	if c.LoadQueue == 0 {
		c.LoadQueue = 64
	}
	if c.WriteBuffer == 0 {
		c.WriteBuffer = 64
	}
}

type robEntry struct {
	kind       InstrKind
	done       bool
	issuedMem  bool
	issueCycle uint64
	readyAt    uint64 // compute completion
	ins        Instr
	value      uint64 // load/RMW result once done
}

// Stats collects the per-core measurements of the evaluation.
type Stats struct {
	Cycles          uint64
	Retired         uint64 // instructions retired (MPKI denominator)
	MemStallCycles  uint64 // Fig. 8 "Memory stall"
	Loads           uint64
	Stores          uint64
	RMWs            uint64
	LoadROBLatency  uint64 // Fig. 7: sum of ROB-entry -> retire cycles
	StoreROBLatency uint64
	StoreDrainLat   uint64 // extra: retirement -> memory completion
}

// Core is one simulated core.
type Core struct {
	id  int
	cfg Config
	mem MemPort
	src InstrSource

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	computeRun    int // remaining instructions of the current KCompute run
	fetched       Instr
	hasFetched    bool
	srcDone       bool
	awaiting      *robEntry // WantResult instruction we owe a value from
	haveResult    bool
	lastResult    uint64
	loadsInFlight int
	wbInFlight    int

	finished bool

	// Memory-stall episode tracking for EvROBStall (only maintained
	// when cfg.Trace is set, so tracing-off runs take one extra branch
	// per cycle and nothing else).
	stalled    bool
	stallStart uint64

	Stats Stats
}

// New builds a core reading instructions from src and accessing memory
// through mem.
func New(id int, cfg Config, src InstrSource, mem MemPort) *Core {
	cfg.fill()
	return &Core{
		id:  id,
		cfg: cfg,
		mem: mem,
		src: src,
		rob: make([]robEntry, cfg.ROBSize),
	}
}

// ID returns the core's node id.
func (c *Core) ID() int { return c.id }

// Done reports whether the thread has finished and all its memory
// operations have drained.
func (c *Core) Done() bool { return c.finished }

// Describe renders the core's stall state for diagnostics.
func (c *Core) Describe() string {
	head := "empty"
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		head = fmt.Sprintf("kind=%d done=%v issuedMem=%v addr=%#x age=%d",
			h.kind, h.done, h.issuedMem, h.ins.Addr, c.Stats.Cycles-h.issueCycle)
	}
	return fmt.Sprintf("rob=%d head={%s} loadsInFlight=%d wb=%d awaiting=%v srcDone=%v",
		c.robCount, head, c.loadsInFlight, c.wbInFlight, c.awaiting != nil, c.srcDone)
}

// Tick advances the core one cycle: retire, then issue (retire-first
// frees ROB slots the same cycle, a common simplification).
func (c *Core) Tick(now uint64) {
	if c.finished {
		return
	}
	c.Stats.Cycles = now

	retired := c.retire(now)
	c.issue(now)

	stalledNow := false
	if retired == 0 && !c.idleDone() {
		if c.memoryBound(now) {
			c.Stats.MemStallCycles++
			stalledNow = true
		}
	}
	if c.cfg.Trace != nil {
		if stalledNow && !c.stalled {
			c.stalled, c.stallStart = true, now
		} else if !stalledNow && c.stalled {
			c.stalled = false
			c.cfg.Trace.Emit(obs.Event{Cycle: c.stallStart, Kind: obs.EvROBStall,
				Node: int32(c.id), Other: obs.NoNode, Line: obs.NoLine,
				A: now - c.stallStart})
		}
	}

	if c.srcDone && !c.hasFetched && c.computeRun == 0 && c.robCount == 0 && c.wbInFlight == 0 {
		c.finished = true
	}
}

// idleDone reports that there is genuinely nothing left to do.
func (c *Core) idleDone() bool {
	return c.srcDone && !c.hasFetched && c.computeRun == 0 && c.robCount == 0 && c.wbInFlight == 0
}

// memoryBound attributes a zero-retirement cycle: true when the head of
// the ROB is an incomplete memory instruction, when retirement is
// blocked on a full write buffer, or when the front end is starved
// waiting for a load value (spin loops).
func (c *Core) memoryBound(now uint64) bool {
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		switch h.kind {
		case KLoad, KRMW:
			return !h.done
		case KStore:
			return c.wbInFlight >= c.cfg.WriteBuffer
		case KCompute, KPause:
			return false
		}
	}
	// Empty ROB: stalled on a data-dependent fetch.
	return c.awaiting != nil && !c.haveResult
}

// retire commits up to IssueWidth completed instructions in order.
func (c *Core) retire(now uint64) int {
	n := 0
	for n < c.cfg.IssueWidth && c.robCount > 0 {
		h := &c.rob[c.robHead]
		switch h.kind {
		case KCompute, KPause:
			if h.readyAt > now {
				return n
			}
		case KLoad:
			if !h.done {
				return n
			}
			c.Stats.LoadROBLatency += now - h.issueCycle
			c.loadsInFlight--
		case KRMW:
			if !h.issuedMem {
				// RMWs execute when they reach their turn in the
				// consistency order (§IV-C): issue at ROB head.
				c.issueRMW(now, h)
				return n
			}
			if !h.done {
				return n
			}
			c.Stats.LoadROBLatency += now - h.issueCycle
		case KStore:
			if c.wbInFlight >= c.cfg.WriteBuffer {
				return n // write buffer full: retirement stalls
			}
			c.Stats.StoreROBLatency += now - h.issueCycle
			c.issueStore(now, h)
		}
		if h.ins.WantResult && (h.kind == KLoad || h.kind == KRMW) {
			c.lastResult = h.value
			c.haveResult = true
			c.awaiting = nil
		}
		c.Stats.Retired++
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
		n++
	}
	return n
}

// issue brings up to IssueWidth new instructions into the ROB.
func (c *Core) issue(now uint64) {
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if c.robCount >= c.cfg.ROBSize {
			return
		}
		// Continue an open compute run without consulting the source.
		if c.computeRun > 0 {
			c.pushCompute(now)
			c.computeRun--
			continue
		}
		if !c.ensureFetched() {
			return
		}
		ins := c.fetched
		switch ins.Kind {
		case KCompute:
			if ins.N <= 0 {
				c.hasFetched = false
				i-- // zero-length run consumes no slot
				continue
			}
			c.computeRun = ins.N - 1
			c.hasFetched = false
			c.pushCompute(now)
		case KPause:
			n := uint64(ins.N)
			if n == 0 {
				n = 1
			}
			c.hasFetched = false
			c.push(robEntry{kind: KPause, readyAt: now + n, issueCycle: now})
		case KLoad:
			if c.loadsInFlight >= c.cfg.LoadQueue {
				return
			}
			c.hasFetched = false
			c.pushLoad(now, ins)
		case KStore:
			c.hasFetched = false
			c.pushStore(now, ins)
		case KRMW:
			c.hasFetched = false
			c.pushRMW(now, ins)
		}
	}
}

// ensureFetched pulls the next instruction from the source unless a
// data dependency blocks the front end.
func (c *Core) ensureFetched() bool {
	if c.hasFetched {
		return true
	}
	if c.srcDone {
		return false
	}
	if c.awaiting != nil && !c.haveResult {
		return false // stalled on a WantResult value
	}
	prev, prevValid := c.lastResult, c.haveResult
	ins, ok := c.src.Next(prev, prevValid)
	c.haveResult = false
	if !ok {
		c.srcDone = true
		return false
	}
	c.fetched = ins
	c.hasFetched = true
	return true
}

func (c *Core) push(e robEntry) *robEntry {
	slot := &c.rob[c.robTail]
	*slot = e
	c.robTail = (c.robTail + 1) % c.cfg.ROBSize
	c.robCount++
	return slot
}

func (c *Core) pushCompute(now uint64) {
	c.push(robEntry{kind: KCompute, readyAt: now + 1, issueCycle: now})
}

func (c *Core) pushLoad(now uint64, ins Instr) {
	c.Stats.Loads++
	e := c.push(robEntry{kind: KLoad, issueCycle: now, ins: ins})
	if ins.WantResult {
		c.awaiting = e
	}
	c.loadsInFlight++
	c.mem.Access(&coherence.MemRequest{
		Addr: ins.Addr,
		Done: func(at uint64, v uint64) {
			e.done = true
			e.value = v
		},
	})
}

func (c *Core) pushStore(now uint64, ins Instr) {
	c.Stats.Stores++
	e := c.push(robEntry{kind: KStore, issueCycle: now, ins: ins, done: true})
	if ins.WantResult {
		// A store's "result" is its own value, known at issue.
		e.value = ins.Value
		c.lastResult = ins.Value
		c.haveResult = true
	}
}

func (c *Core) pushRMW(now uint64, ins Instr) {
	c.Stats.RMWs++
	e := c.push(robEntry{kind: KRMW, issueCycle: now, ins: ins})
	if ins.WantResult {
		c.awaiting = e
	}
}

// issueRMW launches the atomic once the RMW reaches the ROB head.
func (c *Core) issueRMW(now uint64, e *robEntry) {
	e.issuedMem = true
	c.mem.Access(&coherence.MemRequest{
		IsRMW:    true,
		RMW:      e.ins.RMW,
		Addr:     e.ins.Addr,
		Value:    e.ins.Value,
		Expected: e.ins.Expected,
		Done: func(at uint64, old uint64) {
			e.done = true
			e.value = old
		},
	})
}

// issueStore moves a retiring store into the write buffer; completion
// frees the slot asynchronously.
func (c *Core) issueStore(now uint64, e *robEntry) {
	c.wbInFlight++
	start := now
	c.mem.Access(&coherence.MemRequest{
		IsWrite: true,
		Addr:    e.ins.Addr,
		Value:   e.ins.Value,
		Done: func(at uint64, _ uint64) {
			c.wbInFlight--
			c.Stats.StoreDrainLat += at - start
		},
	})
}
