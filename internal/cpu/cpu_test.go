package cpu

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/coherence"
)

// scriptSource feeds a fixed instruction list.
type scriptSource struct {
	ins  []Instr
	next int
	// lastPrev records what the core handed back (WantResult results).
	lastPrev      uint64
	lastPrevValid bool
}

func (s *scriptSource) Next(prev uint64, prevValid bool) (Instr, bool) {
	if prevValid {
		s.lastPrev, s.lastPrevValid = prev, prevValid
	}
	if s.next >= len(s.ins) {
		return Instr{}, false
	}
	i := s.ins[s.next]
	s.next++
	return i, true
}

// fakeMem completes loads with a fixed latency and records traffic.
type fakeMem struct {
	now      *uint64
	latency  uint64
	pending  []func()
	pendAt   []uint64
	values   map[addrspace.Addr]uint64
	accesses int
	rmws     int
}

func newFakeMem(now *uint64, lat uint64) *fakeMem {
	return &fakeMem{now: now, latency: lat, values: map[addrspace.Addr]uint64{}}
}

func (f *fakeMem) Access(r *coherence.MemRequest) {
	f.accesses++
	at := *f.now + f.latency
	req := r
	fn := func() {
		switch {
		case req.IsRMW:
			f.rmws++
			old := f.values[req.Addr]
			f.values[req.Addr] = req.RMW.Apply(old, req.Value, req.Expected)
			req.Done(at, old)
		case req.IsWrite:
			f.values[req.Addr] = req.Value
			req.Done(at, req.Value)
		default:
			req.Done(at, f.values[req.Addr])
		}
	}
	f.pending = append(f.pending, fn)
	f.pendAt = append(f.pendAt, at)
}

func (f *fakeMem) tick() {
	for i := 0; i < len(f.pending); {
		if f.pendAt[i] <= *f.now {
			fn := f.pending[i]
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			f.pendAt = append(f.pendAt[:i], f.pendAt[i+1:]...)
			fn()
			continue
		}
		i++
	}
}

// runCore drives the core to completion, returning the cycle count.
func runCore(t *testing.T, src InstrSource, mem *fakeMem, now *uint64) uint64 {
	t.Helper()
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		*now++
		if *now > 1_000_000 {
			t.Fatalf("core did not finish: %s", c.Describe())
		}
		mem.tick()
		c.Tick(*now)
	}
	return *now
}

func TestComputeThroughput(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{ins: []Instr{{Kind: KCompute, N: 400}}}
	cycles := runCore(t, src, mem, &now)
	// 4-wide issue and retire: ~100 cycles for 400 instructions.
	if cycles > 120 {
		t.Fatalf("400 compute instructions took %d cycles", cycles)
	}
}

func TestRetiredCount(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{ins: []Instr{
		{Kind: KCompute, N: 10},
		{Kind: KLoad, Addr: 0x40},
		{Kind: KStore, Addr: 0x80, Value: 7},
	}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if c.Stats.Retired != 12 {
		t.Fatalf("retired = %d, want 12", c.Stats.Retired)
	}
	if c.Stats.Loads != 1 || c.Stats.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", c.Stats.Loads, c.Stats.Stores)
	}
}

func TestLoadBlocksRetirement(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 200)
	src := &scriptSource{ins: []Instr{{Kind: KLoad, Addr: 0x40}}}
	cycles := runCore(t, src, mem, &now)
	if cycles < 200 {
		t.Fatalf("load retired before memory responded: %d cycles", cycles)
	}
}

func TestMemStallAttribution(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 100)
	src := &scriptSource{ins: []Instr{{Kind: KLoad, Addr: 0x40}}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if c.Stats.MemStallCycles < 90 {
		t.Fatalf("memory stall cycles = %d, want ~100", c.Stats.MemStallCycles)
	}
}

func TestComputeNotMemStalled(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{ins: []Instr{{Kind: KCompute, N: 100}}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if c.Stats.MemStallCycles > 2 {
		t.Fatalf("pure compute charged %d memory-stall cycles", c.Stats.MemStallCycles)
	}
}

func TestLoadsOverlap(t *testing.T) {
	// Independent loads (no WantResult) must overlap: N loads at
	// latency L should take ~L + N, not N*L.
	var now uint64
	mem := newFakeMem(&now, 100)
	var ins []Instr
	for i := 0; i < 20; i++ {
		ins = append(ins, Instr{Kind: KLoad, Addr: addrspace.Addr(i * 64)})
	}
	src := &scriptSource{ins: ins}
	cycles := runCore(t, src, mem, &now)
	if cycles > 200 {
		t.Fatalf("independent loads did not overlap: %d cycles", cycles)
	}
}

func TestWantResultSerializes(t *testing.T) {
	// Dependent loads must serialize: each waits for the previous.
	var now uint64
	mem := newFakeMem(&now, 50)
	var ins []Instr
	for i := 0; i < 5; i++ {
		ins = append(ins, Instr{Kind: KLoad, Addr: addrspace.Addr(i * 64), WantResult: true})
	}
	src := &scriptSource{ins: ins}
	cycles := runCore(t, src, mem, &now)
	if cycles < 5*50 {
		t.Fatalf("dependent loads overlapped: %d cycles", cycles)
	}
}

func TestWantResultValueDelivered(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 5)
	mem.values[0x40] = 99
	src := &scriptSource{ins: []Instr{
		{Kind: KLoad, Addr: 0x40, WantResult: true},
		{Kind: KCompute, N: 1},
	}}
	runCore(t, src, mem, &now)
	if !src.lastPrevValid || src.lastPrev != 99 {
		t.Fatalf("source received prev=%d valid=%v, want 99", src.lastPrev, src.lastPrevValid)
	}
}

func TestRMWExecutesAtHead(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 10)
	mem.values[0x40] = 5
	src := &scriptSource{ins: []Instr{
		{Kind: KRMW, RMW: coherence.RMWFetchAdd, Addr: 0x40, Value: 3, WantResult: true},
		{Kind: KCompute, N: 1},
	}}
	runCore(t, src, mem, &now)
	if mem.rmws != 1 {
		t.Fatalf("rmws = %d", mem.rmws)
	}
	if mem.values[0x40] != 8 {
		t.Fatalf("fetch-add result = %d", mem.values[0x40])
	}
	if src.lastPrev != 5 {
		t.Fatalf("RMW old value = %d, want 5", src.lastPrev)
	}
}

func TestStoresDrainThroughWriteBuffer(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 30)
	src := &scriptSource{ins: []Instr{
		{Kind: KStore, Addr: 0x40, Value: 1},
		{Kind: KCompute, N: 8},
	}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if mem.values[0x40] != 1 {
		t.Fatal("store never reached memory")
	}
	// The store retires into the write buffer; compute continues while
	// it drains, so total time is near the store latency, not beyond.
	if now > 60 {
		t.Fatalf("store drain serialized execution: %d cycles", now)
	}
}

func TestWriteBufferCapacityStalls(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 10_000) // stores never complete in time
	cfg := DefaultConfig()
	cfg.WriteBuffer = 4
	var ins []Instr
	for i := 0; i < 8; i++ {
		ins = append(ins, Instr{Kind: KStore, Addr: addrspace.Addr(i * 64), Value: 1})
	}
	src := &scriptSource{ins: ins}
	c := New(0, cfg, src, mem)
	for i := 0; i < 2000; i++ {
		now++
		mem.tick()
		c.Tick(now)
	}
	// Only 4 stores fit the write buffer; retirement must have stalled.
	if c.Stats.Retired > 4 {
		t.Fatalf("retired %d stores past a full write buffer", c.Stats.Retired)
	}
	if c.Stats.MemStallCycles == 0 {
		t.Fatal("write-buffer stall not attributed to memory")
	}
}

func TestLoadQueueCapacity(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 10_000)
	cfg := DefaultConfig()
	cfg.LoadQueue = 2
	var ins []Instr
	for i := 0; i < 6; i++ {
		ins = append(ins, Instr{Kind: KLoad, Addr: addrspace.Addr(i * 64)})
	}
	src := &scriptSource{ins: ins}
	c := New(0, cfg, src, mem)
	for i := 0; i < 100; i++ {
		now++
		c.Tick(now)
	}
	if mem.accesses > 2 {
		t.Fatalf("issued %d loads past the load queue", mem.accesses)
	}
}

func TestROBCapacity(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 10_000) // the first load never completes
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	src := &scriptSource{ins: []Instr{
		{Kind: KLoad, Addr: 0x40},
		{Kind: KCompute, N: 100},
	}}
	c := New(0, cfg, src, mem)
	for i := 0; i < 100; i++ {
		now++
		c.Tick(now)
	}
	if c.Stats.Retired != 0 {
		t.Fatal("retired past a blocked head")
	}
	// ROB holds at most 8 entries; the compute run must be throttled.
	if got := c.Describe(); got == "" {
		t.Fatal("describe empty")
	}
}

func TestDoneLifecycle(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{}
	c := New(0, DefaultConfig(), src, mem)
	if c.Done() {
		t.Fatal("done before first tick")
	}
	now++
	c.Tick(now)
	if !c.Done() {
		t.Fatal("empty program not done after a tick")
	}
	c.Tick(now + 1) // ticking a finished core is a no-op
}

func TestZeroLengthComputeSkipped(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{ins: []Instr{
		{Kind: KCompute, N: 0},
		{Kind: KStore, Addr: 0x40, Value: 9},
	}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
		if now > 10000 {
			t.Fatal("stuck on zero-length compute")
		}
	}
	if mem.values[0x40] != 9 {
		t.Fatal("store after empty compute lost")
	}
}

func TestFig7LatencyAccounting(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 40)
	src := &scriptSource{ins: []Instr{{Kind: KLoad, Addr: 0x40}}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if c.Stats.LoadROBLatency < 40 {
		t.Fatalf("load ROB latency = %d, want >= 40", c.Stats.LoadROBLatency)
	}
}

func TestPauseOccupiesTimeNotInstructions(t *testing.T) {
	var now uint64
	mem := newFakeMem(&now, 2)
	src := &scriptSource{ins: []Instr{{Kind: KPause, N: 50}}}
	c := New(0, DefaultConfig(), src, mem)
	for !c.Done() {
		now++
		mem.tick()
		c.Tick(now)
	}
	if c.Stats.Retired != 1 {
		t.Fatalf("pause retired %d instructions, want 1", c.Stats.Retired)
	}
	if now < 50 {
		t.Fatalf("pause finished in %d cycles, want >= 50", now)
	}
	if c.Stats.MemStallCycles > 2 {
		t.Fatalf("pause charged %d memory-stall cycles", c.Stats.MemStallCycles)
	}
}
