package protomodel

import (
	"go/ast"
	"go/types"
	"strings"
)

// handleAssign applies an assignment's machine-state effects: state
// field writes, transient-transaction installs, and tracked-variable
// updates.
func (w *walker) handleAssign(s *ast.AssignStmt, c *ctx) {
	for _, r := range s.Rhs {
		w.walkExpr(r, c)
	}

	// `v, ok := payload.(T)`: a later `if ok` (or `if !ok`) confirms
	// the payload event.
	if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
		if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok && ta.Type != nil {
			if name := w.typeName(ta.Type); name != "" {
				if ev, mapped := w.me.cfg.Payloads[name]; mapped {
					if id, ok := s.Lhs[1].(*ast.Ident); ok {
						if obj := w.info().ObjectOf(id); obj != nil {
							c.vars[obj] = "ok:" + ev
						}
					}
				}
			}
			return
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		w.assignOne(lhs, s.Rhs[i], c)
	}
}

func (w *walker) assignOne(lhs, rhs ast.Expr, c *ctx) {
	me := w.me

	// <entry>.State = <state>
	if w.isStateExpr(lhs) {
		next := w.resolveStateValue(rhs, c)
		w.recordTransition(c, next, lhs.Pos())
		if next == "?" {
			c.states = nil
		} else {
			c.states = []string{next}
		}
		return
	}

	// <entry>.busy = &txn{kind: ...} / tracked var / nil
	if me.cfg.Busy != nil && w.isBusyField(lhs) {
		if w.info().Types[rhs].IsNil() {
			// Clearing busy keeps the context in the transient state:
			// the transition out of it is the State write (or entry
			// delete) that follows on the same path.
			return
		}
		if name, ok := w.resolveBusyValue(rhs, c); ok {
			w.recordTransition(c, name, lhs.Pos())
			c.states = []string{name}
		}
		return
	}

	// Local variable tracking: state-typed and transaction-typed
	// temporaries.
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := w.info().ObjectOf(id)
		if obj == nil {
			return
		}
		if types.Identical(obj.Type(), me.states.typ) {
			if name := w.resolveStateValue(rhs, c); name != "?" {
				c.vars[obj] = name
			} else {
				delete(c.vars, obj)
			}
			return
		}
		if me.cfg.Busy != nil && w.isBusyStructPtr(obj.Type()) {
			if name, ok := w.resolveBusyValue(rhs, c); ok {
				c.vars[obj] = name
			} else {
				delete(c.vars, obj)
			}
		}
	}
}

// resolveStateValue resolves rhs to a stable-state display name, or
// "?" when the walker cannot see the value.
func (w *walker) resolveStateValue(rhs ast.Expr, c *ctx) string {
	if name, ok := w.enumConst(rhs, w.me.states); ok {
		return name
	}
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if obj := w.info().ObjectOf(id); obj != nil {
			if v, tracked := c.vars[obj]; tracked && !strings.HasPrefix(v, "ok:") {
				return v
			}
		}
	}
	return "?"
}

// resolveBusyValue resolves rhs to a busy:<kind> display name: either
// a &txn{kind: ...} literal or a tracked transaction variable.
func (w *walker) resolveBusyValue(rhs ast.Expr, c *ctx) (string, bool) {
	me := w.me
	if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
		if cl, ok := u.X.(*ast.CompositeLit); ok && w.isBusyStructPtr(w.info().TypeOf(rhs)) {
			kind := "none"
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == me.cfg.Busy.KindField {
					if name, ok := w.enumConst(kv.Value, me.kinds); ok {
						kind = name
					}
				}
			}
			return me.cfg.Busy.Prefix + kind, true
		}
	}
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if obj := w.info().ObjectOf(id); obj != nil {
			if v, tracked := c.vars[obj]; tracked && strings.HasPrefix(v, me.cfg.Busy.Prefix) {
				return v, true
			}
		}
	}
	return "", false
}

// isBusyField reports whether lhs is the entry's transaction field.
func (w *walker) isBusyField(lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != w.me.cfg.Busy.Field {
		return false
	}
	return w.isBusyStructPtr(w.info().TypeOf(lhs))
}

func (w *walker) isBusyStructPtr(t types.Type) bool {
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	named := namedOf(t)
	return named != nil && named.Obj().Name() == w.me.cfg.Busy.Struct &&
		named.Obj().Pkg() == w.me.x.pkg.Types
}

// handleDecl tracks `var st StateType` declarations (zero value).
func (w *walker) handleDecl(s *ast.DeclStmt, c *ctx) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.walkExpr(v, c)
		}
		if len(vs.Values) > 0 {
			continue
		}
		for _, name := range vs.Names {
			obj := w.info().ObjectOf(name)
			if obj == nil || !types.Identical(obj.Type(), w.me.states.typ) {
				continue
			}
			if zero, ok := w.me.states.nameOf(0); ok {
				c.vars[obj] = zero
			}
		}
	}
}

// walkExpr visits an expression for machine-relevant calls and walks
// function literals (protocol continuations) under the current
// context.
func (w *walker) walkExpr(e ast.Expr, c *ctx) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cc := c.clone()
			w.walkStmts(n.Body.List, &cc, true)
			return false
		case *ast.CallExpr:
			w.handleCall(n, c)
		}
		return true
	})
}

// handleCall classifies one call: entry deletion, cache invalidation,
// line installs, protocol-error reports, and interprocedural descent
// into same-package functions.
func (w *walker) handleCall(call *ast.CallExpr, c *ctx) {
	me := w.me
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		obj := w.info().ObjectOf(fn)
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin && fn.Name == "delete" {
			w.handleDelete(call, c)
			return
		}
		if fi := me.x.funcs[obj]; fi != nil {
			w.walkFunc(fi, *c, w.bindArgs(fi, call, c))
		}
	case *ast.SelectorExpr:
		obj, _ := w.info().ObjectOf(fn.Sel).(*types.Func)
		if obj == nil {
			return
		}
		sig, _ := obj.Type().(*types.Signature)
		if me.cfg.ErrorMethod != "" && obj.Name() == me.cfg.ErrorMethod &&
			obj.Pkg() == me.x.pkg.Types && sig != nil && sig.Recv() != nil {
			w.recordTransition(c, "error", call.Pos())
			return
		}
		if w.matchesTableDelete(obj) {
			w.recordTransition(c, me.cfg.Invalid, call.Pos())
			c.states = []string{me.cfg.Invalid}
			return
		}
		if w.matchesTarget(obj, me.cfg.InvalidatePkg, me.cfg.InvalidateRecv, me.cfg.InvalidateMethod) {
			w.recordTransition(c, me.cfg.Invalid, call.Pos())
			c.states = []string{me.cfg.Invalid}
			return
		}
		if w.matchesTarget(obj, me.cfg.InstallPkg, me.cfg.InstallRecv, me.cfg.InstallMethod) {
			next := "?"
			if me.cfg.InstallStateArg < len(call.Args) {
				next = w.resolveStateValue(call.Args[me.cfg.InstallStateArg], c)
			}
			w.recordTransition(c, next, call.Pos())
			if next == "?" {
				c.states = nil
			} else {
				c.states = []string{next}
			}
			return
		}
		if fi := me.x.funcs[obj]; fi != nil {
			w.walkFunc(fi, *c, w.bindArgs(fi, call, c))
		}
	}
}

// matchesTarget reports whether the function is <pkg>.<recv>.<method>.
func (w *walker) matchesTarget(obj *types.Func, pkg, recv, method string) bool {
	if method == "" || obj.Name() != method {
		return false
	}
	if obj.Pkg() == nil || obj.Pkg().Path() != pkg {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == recv
}

// matchesTableDelete reports whether the method call is the flat
// table's delete — `t.del(line)` on a lineTable whose element type is
// *DeleteElem — which drops the entry exactly like a map delete.
func (w *walker) matchesTableDelete(obj *types.Func) bool {
	me := w.me
	if me.cfg.DeleteElem == "" || me.cfg.DeleteTableMethod == "" ||
		obj.Name() != me.cfg.DeleteTableMethod || obj.Pkg() != w.me.x.pkg.Types {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil || recv.Obj().Name() != me.cfg.DeleteTableRecv {
		return false
	}
	args := recv.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	elem := namedOf(args.At(0))
	return elem != nil && elem.Obj().Name() == me.cfg.DeleteElem &&
		elem.Obj().Pkg() == me.x.pkg.Types
}

// handleDelete treats `delete(entries, line)` on the entry map as the
// transition to Invalid.
func (w *walker) handleDelete(call *ast.CallExpr, c *ctx) {
	me := w.me
	if me.cfg.DeleteElem == "" || len(call.Args) != 2 {
		return
	}
	mt, ok := w.info().TypeOf(call.Args[0]).Underlying().(*types.Map)
	if !ok {
		return
	}
	named := namedOf(mt.Elem())
	if named == nil || named.Obj().Name() != me.cfg.DeleteElem ||
		named.Obj().Pkg() != me.x.pkg.Types {
		return
	}
	w.recordTransition(c, me.cfg.Invalid, call.Pos())
	c.states = []string{me.cfg.Invalid}
}

// bindArgs maps constant or tracked argument values onto the callee's
// parameters so intraprocedural narrowing continues across the call.
func (w *walker) bindArgs(fi *funcInfo, call *ast.CallExpr, c *ctx) map[types.Object]string {
	var params []types.Object
	if fi.decl.Type.Params != nil {
		for _, f := range fi.decl.Type.Params.List {
			for _, name := range f.Names {
				params = append(params, w.info().ObjectOf(name))
			}
		}
	}
	bind := map[types.Object]string{}
	for i, arg := range call.Args {
		if i >= len(params) || params[i] == nil {
			continue
		}
		if name, ok := w.enumConst(arg, w.me.states); ok {
			bind[params[i]] = name
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := w.info().ObjectOf(id); obj != nil {
				if v, tracked := c.vars[obj]; tracked && !strings.HasPrefix(v, "ok:") {
					bind[params[i]] = v
				}
			}
		}
	}
	return bind
}
