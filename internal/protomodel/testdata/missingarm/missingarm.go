// Package missingarm is the conformant fixture with the directory's
// `DO GetS -> DS` arm deliberately removed: `widir-model -check` must
// report the spec row as unimplemented (and the resulting fall-through
// self-loop as unspecified) and exit nonzero.
package missingarm

import "repro/internal/cache"

type DirState int

const (
	DirInvalid DirState = iota
	DirShared
	DirOwned
	DirWireless
)

type MsgType int

const (
	MsgGetS MsgType = iota
	MsgGetX
	MsgPutS
)

type txnKind int

const (
	txNone txnKind = iota
	txFetchMem
)

type txn struct{ kind txnKind }

type Msg struct {
	Type MsgType
	Src  int
}

type DirEntry struct {
	State DirState
	busy  *txn
}

type HomeCtrl struct {
	entries map[int]*DirEntry
}

func (h *HomeCtrl) fail(msg string) {}

func (h *HomeCtrl) HandleWired(m *Msg) {
	e := h.entries[m.Src]
	if e == nil {
		return
	}
	switch m.Type {
	case MsgGetS:
		switch e.State {
		case DirInvalid:
			e.busy = &txn{kind: txFetchMem}
		case DirShared:
			// sharer added; state unchanged
		// DELIBERATELY MISSING: case DirOwned (owner must downgrade
		// to DirShared on a read request).
		case DirWireless:
			// broadcast membership grows; state unchanged
		}
	case MsgGetX:
		switch e.State {
		case DirInvalid, DirShared:
			e.State = DirOwned
		case DirOwned:
			h.fail("ownership transfer not modeled")
		case DirWireless:
			e.State = DirWireless
		}
	case MsgPutS:
		if e.State == DirShared {
			e.State = DirInvalid
		}
	default:
		h.fail("unhandled message")
	}
}

type L1Ctrl struct{}

func (l *L1Ctrl) fail(msg string) {}

func (l *L1Ctrl) HandleWired(m *Msg, ln *cache.Line) {
	switch m.Type {
	case MsgGetS:
		if ln != nil {
			ln.State = cache.Shared
		}
	case MsgGetX:
		if ln != nil {
			ln.State = cache.Modified
		}
	default:
		l.fail("unhandled message")
	}
}
