package protomodel

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Extract loads the package at pkgDir (inside the module rooted at
// moduleDir) and extracts the configured state machines from its
// controller entry points.
func Extract(moduleDir, pkgDir string, cfg *Config) (*Model, error) {
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.Load(pkgDir)
	if err != nil {
		return nil, err
	}
	x := &extractor{
		loader:    loader,
		pkg:       pkg,
		moduleDir: moduleDir,
		funcs:     map[types.Object]*funcInfo{},
	}
	x.collectFuncs()
	if err := x.collectAnnotations(); err != nil {
		return nil, err
	}
	model := &Model{}
	for _, mcfg := range cfg.Machines {
		me, err := x.newMachineExtract(mcfg)
		if err != nil {
			return nil, err
		}
		if err := me.run(); err != nil {
			return nil, err
		}
		model.Machines = append(model.Machines, me.finish())
	}
	return model, nil
}

// funcInfo is one function or method declaration of the analyzed
// package, plus its //proto: function-level annotations.
type funcInfo struct {
	decl  *ast.FuncDecl
	stop  bool   // //proto:stop - do not enter from call sites
	event string // //proto:event E - walking this function sets the event
}

// annot is one parsed //proto:transition comment.
type annot struct {
	machine string
	from    string
	event   string
	next    string
	pos     token.Pos
}

type extractor struct {
	loader    *analysis.Loader
	pkg       *analysis.Package
	moduleDir string
	funcs     map[types.Object]*funcInfo
	annots    []annot
}

// position renders a module-relative file:line for provenance.
func (x *extractor) position(pos token.Pos) string {
	p := x.pkg.Fset.Position(pos)
	if rel, err := filepath.Rel(x.moduleDir, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		return fmt.Sprintf("%s:%d", filepath.ToSlash(rel), p.Line)
	}
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

func (x *extractor) collectFuncs() {
	for _, f := range x.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := x.pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text == "proto:stop" {
						fi.stop = true
					}
					if rest, ok := strings.CutPrefix(text, "proto:event "); ok {
						fi.event = strings.TrimSpace(rest)
					}
				}
			}
			x.funcs[obj] = fi
		}
	}
}

// collectAnnotations parses and validates every //proto: comment in
// the package. The grammar:
//
//	//proto:stop
//	//proto:event <E>
//	//proto:transition <machine> <from> <event> -> <next>
//
// Any other comment whose text begins with "proto:" — an unknown
// directive, a typo, a directive missing its argument — is an error
// with file:line provenance, not a silent no-op: an annotation the
// extractor skips quietly would let the model drift from the code it
// claims to describe.
func (x *extractor) collectAnnotations() error {
	for _, f := range x.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "proto:") {
					continue
				}
				if err := x.validateProtoComment(c, text); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// validateProtoComment checks one proto:-prefixed comment against the
// grammar and records transition annotations. proto:stop and
// proto:event are consumed by collectFuncs (they only have meaning in
// a function's doc comment); here they are validated for shape so a
// malformed one cannot be skipped silently.
func (x *extractor) validateProtoComment(c *ast.Comment, text string) error {
	directive, rest, _ := strings.Cut(text, " ")
	args := strings.Fields(rest)
	switch directive {
	case "proto:stop":
		if len(args) != 0 {
			return fmt.Errorf("%s: malformed annotation %q (proto:stop takes no argument)",
				x.position(c.Pos()), c.Text)
		}
	case "proto:event":
		if len(args) != 1 {
			return fmt.Errorf("%s: malformed annotation %q (want: proto:event <E>)",
				x.position(c.Pos()), c.Text)
		}
	case "proto:transition":
		if len(args) != 5 || args[3] != "->" {
			return fmt.Errorf("%s: malformed annotation %q (want: machine from event -> next)",
				x.position(c.Pos()), c.Text)
		}
		x.annots = append(x.annots, annot{
			machine: args[0], from: args[1], event: args[2],
			next: args[4], pos: c.Pos(),
		})
	default:
		return fmt.Errorf("%s: unknown annotation %q (want proto:stop, proto:event or proto:transition)",
			x.position(c.Pos()), c.Text)
	}
	return nil
}

// enumInfo is one resolved integer enum: its named type plus the
// display name of each member value.
type enumInfo struct {
	typ     *types.Named
	byVal   map[int64]string
	display []string // unique displays in ascending value order
}

func (e *enumInfo) nameOf(val int64) (string, bool) {
	s, ok := e.byVal[val]
	return s, ok
}

// resolveEnum enumerates the typed constants of ref's type.
func (x *extractor) resolveEnum(ref EnumRef) (*enumInfo, error) {
	tpkg := x.pkg.Types
	if ref.Pkg != "" {
		p, err := x.loader.Import(ref.Pkg)
		if err != nil {
			return nil, fmt.Errorf("protomodel: loading %s: %w", ref.Pkg, err)
		}
		tpkg = p
	}
	obj := tpkg.Scope().Lookup(ref.Type)
	named, _ := obj.Type().(*types.Named)
	if named == nil {
		return nil, fmt.Errorf("protomodel: %s.%s is not a defined type", tpkg.Path(), ref.Type)
	}
	info := &enumInfo{typ: named, byVal: map[int64]string{}}
	type member struct {
		val  int64
		name string
	}
	var members []member
	scope := tpkg.Scope()
	names := scope.Names() // sorted
	for _, name := range names {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || cn.Type() != named {
			continue
		}
		v, ok := exactInt(cn.Val().ExactString())
		if !ok {
			continue
		}
		display := name
		if r, ok := ref.Rename[name]; ok {
			display = r
		} else if ref.Prefix != "" {
			display = strings.TrimPrefix(name, ref.Prefix)
		}
		if prev, ok := info.byVal[v]; ok {
			// Alias: prefer an explicitly renamed name.
			if _, renamed := ref.Rename[name]; !renamed {
				display = prev
			}
			info.byVal[v] = display
			continue
		}
		info.byVal[v] = display
		members = append(members, member{v, display})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("protomodel: enum %s.%s has no members", tpkg.Path(), ref.Type)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].val < members[j].val })
	for i := range members {
		// Alias resolution above may have replaced the display.
		info.display = append(info.display, info.byVal[members[i].val])
	}
	return info, nil
}

func exactInt(s string) (int64, bool) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err == nil
}

// machineExtract is the per-machine extraction state.
type machineExtract struct {
	x   *extractor
	cfg *MachineCfg

	states *enumInfo // stable-state enum
	events *enumInfo // message-type enum
	kinds  *enumInfo // transient-kind enum (nil without Busy)

	stable    []string // stable state displays
	busyNames []string // busy:<kind> displays (txNone excluded)
	eventList []string // wire events + payload events + Extra

	transitions map[string]Transition // keyed by Transition.Key(), first wins
	pairs       map[string]Pair

	active   map[string]bool // in-progress walks (recursion guard)
	done     map[string]bool // completed (function, context) walks (memo)
	steps    int
	overflow bool
}

const maxSteps = 4_000_000

func (x *extractor) newMachineExtract(cfg *MachineCfg) (*machineExtract, error) {
	me := &machineExtract{
		x: x, cfg: cfg,
		transitions: map[string]Transition{},
		pairs:       map[string]Pair{},
		active:      map[string]bool{},
		done:        map[string]bool{},
	}
	var err error
	if me.states, err = x.resolveEnum(cfg.States); err != nil {
		return nil, err
	}
	if me.events, err = x.resolveEnum(cfg.Events); err != nil {
		return nil, err
	}
	me.stable = append(me.stable, me.states.display...)
	if cfg.Busy != nil {
		if me.kinds, err = x.resolveEnum(cfg.Busy.Kinds); err != nil {
			return nil, err
		}
		for _, k := range me.kinds.display {
			if k == "none" {
				continue
			}
			me.busyNames = append(me.busyNames, cfg.Busy.Prefix+k)
		}
	}
	me.eventList = append(me.eventList, me.events.display...)
	var payloadEvents []string
	for _, ev := range cfg.Payloads {
		payloadEvents = append(payloadEvents, ev)
	}
	sort.Strings(payloadEvents)
	me.eventList = append(me.eventList, payloadEvents...)
	me.eventList = append(me.eventList, cfg.Extra...)
	return me, nil
}

func (me *machineExtract) isState(s string) bool {
	for _, v := range me.stable {
		if v == s {
			return true
		}
	}
	for _, v := range me.busyNames {
		if v == s {
			return true
		}
	}
	return false
}

func (me *machineExtract) isEvent(ev string) bool {
	for _, v := range me.eventList {
		if v == ev {
			return true
		}
	}
	return false
}

// run walks the entry points and applies the machine's annotations.
func (me *machineExtract) run() error {
	for _, a := range me.x.annots {
		if a.machine != me.cfg.Name {
			continue
		}
		if a.from != "*" && !me.isState(a.from) {
			return fmt.Errorf("%s: unknown state %q in annotation", me.x.position(a.pos), a.from)
		}
		if !me.isEvent(a.event) {
			return fmt.Errorf("%s: unknown event %q in annotation", me.x.position(a.pos), a.event)
		}
		if a.next != "error" && !me.isState(a.next) {
			return fmt.Errorf("%s: unknown state %q in annotation", me.x.position(a.pos), a.next)
		}
		me.add(Transition{Machine: me.cfg.Name, From: a.from, Event: a.event,
			Next: a.next, Pos: me.x.position(a.pos), Source: "annot"})
	}
	found := false
	for _, ep := range me.cfg.EntryPoints {
		fi := me.lookupMethod(ep.Recv, ep.Method)
		if fi == nil {
			continue // fixture packages may implement a subset
		}
		found = true
		w := &walker{me: me}
		c := ctx{event: ep.Event, vars: map[types.Object]string{}}
		w.walkFunc(fi, c, nil)
	}
	if !found && len(me.cfg.EntryPoints) > 0 {
		return fmt.Errorf("protomodel: no entry point of machine %q found in %s",
			me.cfg.Name, me.x.pkg.Path)
	}
	if me.overflow {
		return fmt.Errorf("protomodel: machine %q: walk exceeded %d steps (path explosion; model would be incomplete)",
			me.cfg.Name, maxSteps)
	}
	return nil
}

func (me *machineExtract) lookupMethod(recv, method string) *funcInfo {
	for obj, fi := range me.x.funcs {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Name() != method {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Name() == recv {
			return fi
		}
	}
	return nil
}

func (me *machineExtract) add(t Transition) {
	if _, ok := me.transitions[t.Key()]; !ok {
		me.transitions[t.Key()] = t
	}
}

func (me *machineExtract) addPair(p Pair) {
	k := p.State + "\x00" + p.Event
	if _, ok := me.pairs[k]; !ok {
		me.pairs[k] = p
	}
}

func (me *machineExtract) finish() *Machine {
	mc := &Machine{
		Name:       me.cfg.Name,
		Stable:     append([]string(nil), me.stable...),
		Events:     append([]string(nil), me.eventList...),
		WireEvents: append([]string(nil), me.events.display...),
	}
	mc.States = append(append([]string(nil), me.stable...), me.busyNames...)
	for _, t := range me.transitions {
		mc.Transitions = append(mc.Transitions, t)
	}
	for _, p := range me.pairs {
		mc.Pairs = append(mc.Pairs, p)
	}
	mc.finalize()
	return mc
}

// ctx is the walker's abstract machine context along one path.
type ctx struct {
	states []string // possible model states, sorted; nil = any ("*")
	event  string   // current event; "" = unknown
	vars   map[types.Object]string
	pos    token.Pos // last visited statement, provenance fallback
}

func (c ctx) clone() ctx {
	nc := ctx{event: c.event, pos: c.pos}
	nc.states = append([]string(nil), c.states...)
	nc.vars = make(map[types.Object]string, len(c.vars))
	for k, v := range c.vars {
		nc.vars[k] = v
	}
	return nc
}

// key renders the context for the recursion guard.
func (c ctx) key() string {
	var vs []string
	for k, v := range c.vars {
		vs = append(vs, k.Name()+"="+v)
	}
	sort.Strings(vs)
	return c.event + "|" + strings.Join(c.states, ",") + "|" + strings.Join(vs, ",")
}

// narrow is the refinement a condition applies to one branch.
type narrow struct {
	states []string // nil = no information; else intersect with ctx
	event  string
	vars   map[types.Object]string
}

func intersect(a, b []string) []string {
	if a == nil {
		return append([]string(nil), b...)
	}
	if b == nil {
		return append([]string(nil), a...)
	}
	out := []string{}
	for _, v := range a {
		for _, w := range b {
			if v == w {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func union(a, b []string) []string {
	if a == nil || b == nil {
		return nil
	}
	out := append([]string(nil), a...)
	for _, w := range b {
		found := false
		for _, v := range out {
			if v == w {
				found = true
				break
			}
		}
		if !found {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

func subtract(universe []string, drop []string) []string {
	out := []string{}
	for _, v := range universe {
		hit := false
		for _, d := range drop {
			if v == d {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, v)
		}
	}
	return out
}

// andNarrow refines with both conditions (for the then-branch of &&).
func andNarrow(a, b narrow) narrow {
	n := narrow{states: intersect(a.states, b.states)}
	if a.states == nil && b.states == nil {
		n.states = nil
	}
	n.event = a.event
	if n.event == "" {
		n.event = b.event
	}
	if len(a.vars)+len(b.vars) > 0 {
		n.vars = map[types.Object]string{}
		for k, v := range a.vars {
			n.vars[k] = v
		}
		for k, v := range b.vars {
			n.vars[k] = v
		}
	}
	return n
}

// orNarrow keeps only what both alternatives imply (for the
// then-branch of ||): the state dimension unions, everything else
// drops unless identical.
func orNarrow(a, b narrow) narrow {
	n := narrow{states: union(a.states, b.states)}
	if a.event != "" && a.event == b.event {
		n.event = a.event
	}
	return n
}

// apply refines the context in place; reports false when the refined
// state set is empty (the branch is unreachable from this context).
func (me *machineExtract) apply(c *ctx, n narrow) bool {
	if n.states != nil {
		cur := c.states
		if cur == nil {
			cur = append(append([]string(nil), me.stable...), me.busyNames...)
		}
		c.states = intersect(cur, n.states)
		if len(c.states) == 0 {
			return false
		}
		sort.Strings(c.states)
	}
	if n.event != "" {
		c.event = n.event
	}
	for k, v := range n.vars {
		c.vars[k] = v
	}
	return true
}

// walker walks one machine's reachable code, one path at a time.
type walker struct {
	me    *machineExtract
	depth int
}

const maxDepth = 64

func (w *walker) info() *types.Info { return w.me.x.pkg.Info }

// walkFunc enters a function body under the given context, merging
// argument bindings into the tracked variables.
func (w *walker) walkFunc(fi *funcInfo, c ctx, bind map[types.Object]string) {
	if fi.stop || w.depth >= maxDepth {
		return
	}
	nc := c.clone()
	for k, v := range bind {
		nc.vars[k] = v
	}
	if fi.event != "" {
		// A new logical event begins here (Evict); the caller's state
		// narrowing concerned a different line, so reset it.
		nc.event = fi.event
		nc.states = nil
	}
	key := fmt.Sprintf("%p|%s", fi, nc.key())
	if w.me.active[key] || w.me.done[key] {
		return
	}
	w.me.active[key] = true
	defer delete(w.me.active, key)
	w.depth++
	defer func() { w.depth-- }()
	w.walkStmts(fi.decl.Body.List, &nc, true)
	// A repeat walk from an identical entry context records identical
	// facts; memoizing it keeps sequential-if path forking from going
	// exponential across call sites.
	w.me.done[key] = true
}

// terminates reports whether the statement list always leaves the
// enclosing function (syntactically: ends in return or panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkStmts walks a statement list under the context. Branching
// statements fork: each surviving arm walks its body and then the
// remainder of the list under the arm's refined context. tail marks
// lists whose exhaustion is the end of a path (function bodies and
// their forked continuations), where a handled-pair fact is recorded.
func (w *walker) walkStmts(list []ast.Stmt, c *ctx, tail bool) {
	me := w.me
	me.steps++
	if me.steps > maxSteps {
		me.overflow = true
		return
	}
	for i := 0; i < len(list); i++ {
		me.steps++
		if me.steps > maxSteps {
			me.overflow = true
			return
		}
		c.pos = list[i].Pos()
		switch s := list[i].(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				w.walkExpr(r, c)
			}
			w.recordPair(c, s.Pos())
			return
		case *ast.IfStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, c, false)
			}
			w.walkExpr(s.Cond, c)
			w.branchIf(s, list[i+1:], c, tail)
			return
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, c, false)
			}
			if s.Tag != nil {
				w.walkExpr(s.Tag, c)
			}
			w.branchSwitch(s, list[i+1:], c, tail)
			return
		case *ast.TypeSwitchStmt:
			w.branchTypeSwitch(s, list[i+1:], c, tail)
			return
		case *ast.AssignStmt:
			w.handleAssign(s, c)
		case *ast.DeclStmt:
			w.handleDecl(s, c)
		case *ast.ExprStmt:
			w.walkExpr(s.X, c)
		case *ast.DeferStmt:
			w.walkExpr(s.Call, c)
		case *ast.GoStmt:
			w.walkExpr(s.Call, c)
		case *ast.RangeStmt:
			w.walkExpr(s.X, c)
			bc := c.clone()
			w.walkStmts(s.Body.List, &bc, false)
		case *ast.ForStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, c, false)
			}
			if s.Cond != nil {
				w.walkExpr(s.Cond, c)
			}
			bc := c.clone()
			w.walkStmts(s.Body.List, &bc, false)
		case *ast.BlockStmt:
			w.walkStmts(s.List, c, false)
		case *ast.IncDecStmt, *ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
			// No machine-state effect.
		}
	}
	if tail {
		pos := c.pos
		if len(list) > 0 {
			pos = list[len(list)-1].End()
		}
		w.recordPair(c, pos)
	}
}

// branchIf forks the walk over an if statement: each reachable arm
// walks its body, then the remainder of the enclosing list under the
// arm's refined context.
func (w *walker) branchIf(s *ast.IfStmt, rest []ast.Stmt, c *ctx, tail bool) {
	truth, nThen, nElse := w.evalCond(s.Cond, c)

	if truth >= 0 {
		tc := c.clone()
		if w.me.apply(&tc, nThen) {
			w.walkStmts(s.Body.List, &tc, false)
			if !terminates(s.Body.List) {
				w.walkStmts(rest, &tc, tail)
			}
		} else if truth == 0 {
			truth = -1 // then-arm unreachable from this context
		}
	}
	if truth <= 0 {
		ec := c.clone()
		if !w.me.apply(&ec, nElse) {
			return
		}
		switch el := s.Else.(type) {
		case nil:
			w.walkStmts(rest, &ec, tail)
		case *ast.BlockStmt:
			w.walkStmts(el.List, &ec, false)
			if !terminates(el.List) {
				w.walkStmts(rest, &ec, tail)
			}
		case *ast.IfStmt:
			w.walkStmts(append([]ast.Stmt{el}, rest...), &ec, tail)
		}
	}
}

// branchSwitch forks over a switch statement. Switches over the
// current event select (or enumerate) event arms; switches over the
// state or transient-kind fields narrow the state set per clause.
func (w *walker) branchSwitch(s *ast.SwitchStmt, rest []ast.Stmt, c *ctx, tail bool) {
	me := w.me
	walkClause(s, func(cc *ast.CaseClause) {
		for _, e := range cc.List {
			w.walkExpr(e, c)
		}
	})

	runArm := func(body []ast.Stmt, ac ctx) {
		w.walkStmts(body, &ac, false)
		if !terminates(body) {
			w.walkStmts(rest, &ac, tail)
		}
	}

	if s.Tag == nil {
		// Condition-chain switch: treat each clause as an independent
		// guarded arm (conditions rarely narrow; single-condition
		// clauses reuse the if machinery).
		for _, cc := range clauses(s) {
			ac := c.clone()
			if len(cc.List) == 1 {
				_, nThen, _ := w.evalCond(cc.List[0], c)
				if !me.apply(&ac, nThen) {
					continue
				}
			}
			runArm(cc.Body, ac)
		}
		return
	}

	switch {
	case w.isEventExpr(s.Tag):
		w.branchEventSwitch(s, runArm, c)
	case w.isStateExpr(s.Tag):
		w.branchValueSwitch(s, runArm, c, me.states, "", me.stable)
	case me.kinds != nil && w.isKindExpr(s.Tag):
		w.branchValueSwitch(s, runArm, c, me.kinds, me.cfg.Busy.Prefix, me.busyNames)
	default:
		// Unknown tag (auxiliary enums): every clause is possible and
		// none narrows the context.
		for _, cc := range clauses(s) {
			runArm(cc.Body, c.clone())
		}
	}
}

func clauses(s *ast.SwitchStmt) []*ast.CaseClause {
	var out []*ast.CaseClause
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func walkClause(s *ast.SwitchStmt, fn func(*ast.CaseClause)) {
	for _, cc := range clauses(s) {
		fn(cc)
	}
}

// branchEventSwitch dispatches on the current message type: with a
// known event the matching clause runs; with an unknown event every
// case constant (and, through the default clause, every unhandled
// member) forks its own arm.
func (w *walker) branchEventSwitch(s *ast.SwitchStmt, runArm func([]ast.Stmt, ctx), c *ctx) {
	me := w.me
	var defaultClause *ast.CaseClause
	covered := map[string]bool{}
	matched := false
	for _, cc := range clauses(s) {
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			ev, ok := w.eventConst(e)
			if !ok {
				continue
			}
			covered[ev] = true
			if c.event != "" {
				if ev == c.event {
					matched = true
					runArm(cc.Body, c.clone())
				}
				continue
			}
			ac := c.clone()
			ac.event = ev
			runArm(cc.Body, ac)
		}
	}
	if c.event != "" {
		if !matched {
			if defaultClause != nil {
				runArm(defaultClause.Body, c.clone())
			}
			// No default and no match: fall through past the switch.
			if defaultClause == nil {
				runArm(nil, c.clone())
			}
		}
		return
	}
	if defaultClause != nil {
		for _, ev := range me.events.display {
			if covered[ev] {
				continue
			}
			ac := c.clone()
			ac.event = ev
			runArm(defaultClause.Body, ac)
		}
	}
}

// branchValueSwitch dispatches on the state or kind field: each clause
// narrows the context to its case set; a default (or fall-through)
// takes the complement.
func (w *walker) branchValueSwitch(s *ast.SwitchStmt, runArm func([]ast.Stmt, ctx), c *ctx, enum *enumInfo, prefix string, universe []string) {
	me := w.me
	var defaultClause *ast.CaseClause
	var covered []string
	for _, cc := range clauses(s) {
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		var set []string
		for _, e := range cc.List {
			if name, ok := w.enumConst(e, enum); ok {
				set = append(set, prefix+name)
			}
		}
		covered = append(covered, set...)
		ac := c.clone()
		if !me.apply(&ac, narrow{states: set}) {
			continue
		}
		runArm(cc.Body, ac)
	}
	leftover := subtract(universe, covered)
	if len(leftover) == 0 {
		return
	}
	ac := c.clone()
	if !me.apply(&ac, narrow{states: leftover}) {
		return
	}
	if defaultClause != nil {
		runArm(defaultClause.Body, ac)
	} else {
		runArm(nil, ac)
	}
}

// branchTypeSwitch dispatches on a wireless payload type switch: each
// clause whose type maps to a configured event forks with that event.
func (w *walker) branchTypeSwitch(s *ast.TypeSwitchStmt, rest []ast.Stmt, c *ctx, tail bool) {
	runArm := func(body []ast.Stmt, ac ctx) {
		w.walkStmts(body, &ac, false)
		if !terminates(body) {
			w.walkStmts(rest, &ac, tail)
		}
	}
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		ac := c.clone()
		ac.event = ""
		for _, te := range cc.List {
			if name := w.typeName(te); name != "" {
				if ev, ok := w.me.cfg.Payloads[name]; ok {
					ac.event = ev
				}
			}
		}
		runArm(cc.Body, ac)
	}
}

// typeName resolves a type expression in the analyzed package to its
// bare name.
func (w *walker) typeName(e ast.Expr) string {
	t := w.info().TypeOf(e)
	if named := namedOf(t); named != nil {
		return named.Obj().Name()
	}
	return ""
}

func (w *walker) recordPair(c *ctx, pos token.Pos) {
	if c.event == "" {
		return
	}
	states := c.states
	if states == nil {
		// The path completed without ever reading or writing the
		// state: the event is handled identically in every stable
		// state, leaving it unchanged.
		states = w.me.stable
	}
	for _, st := range states {
		w.me.addPair(Pair{Machine: w.me.cfg.Name, State: st, Event: c.event,
			Pos: w.me.x.position(pos)})
	}
}

func (w *walker) recordTransition(c *ctx, next string, pos token.Pos) {
	ev := c.event
	if ev == "" {
		ev = "?"
	}
	froms := c.states
	if froms == nil {
		froms = []string{"*"}
	}
	for _, from := range froms {
		w.me.add(Transition{Machine: w.me.cfg.Name, From: from, Event: ev,
			Next: next, Pos: w.me.x.position(pos), Source: "code"})
	}
}
