package protomodel

// EnumRef names an integer enum (a defined type plus its typed consts)
// the extractor treats as one dimension of a state machine.
type EnumRef struct {
	Pkg    string            // import path; "" = the analyzed package
	Type   string            // type name, e.g. "DirState"
	Prefix string            // const-name prefix stripped for display ("Msg")
	Rename map[string]string // const name -> display name overrides
}

// BusyCfg describes how a machine models its transient (busy) states:
// assigning `<entry>.<Field> = &<Struct>{<KindField>: <const>}` moves
// the machine into the transient state named Prefix+<kind display>.
type BusyCfg struct {
	Struct    string  // transaction struct type name ("txn")
	Field     string  // entry field holding the transaction ("busy")
	KindField string  // struct field selecting the kind ("kind")
	Kinds     EnumRef // the kind enum ("txnKind")
	Prefix    string  // display prefix for transient states ("busy:")
}

// EntryPoint is one "Recv.Method" root the walker starts from. Event
// names the annotation-only event delivered by the entry point ("" =
// the event is determined inside, by Msg.Type switching or payload
// type assertion).
type EntryPoint struct {
	Recv   string
	Method string
	Event  string
}

// MachineCfg describes one state machine to extract.
type MachineCfg struct {
	Name       string
	States     EnumRef           // stable-state enum
	Busy       *BusyCfg          // transient states (nil = none)
	Events     EnumRef           // message-type enum
	Payloads   map[string]string // wireless payload type name -> event name
	Extra      []string          // annotation-only events (Evict, CoreLoad, ...)
	StateField string            // field whose assignment changes state ("State")
	Invalid    string            // display name of the absent/invalid state

	// EventStruct/EventField: `<EventStruct>.<EventField>` is the
	// current event selector (Msg.Type). Other event-typed expressions
	// stay symbolic.
	EventStruct string
	EventField  string

	// ErrorMethod: a receiver method in the analyzed package that
	// reports a protocol error; calls become `-> error` transitions.
	ErrorMethod string

	// EntryType/EntryTypePkg: the entry/line pointer type whose
	// nil-ness encodes the Invalid state. EntryTypePkg "" = the
	// analyzed package. NotNilExcludesInvalid additionally narrows the
	// non-nil branch to the stable states minus Invalid (true for the
	// L1, whose lines exist iff non-Invalid; false for the directory,
	// whose entries are allocated in DI).
	EntryType             string
	EntryTypePkg          string
	NotNilExcludesInvalid bool

	// EntryPoints are the roots the walker starts from.
	EntryPoints []EntryPoint

	// DeleteElem: `delete(m, k)` on a map whose element is *DeleteElem
	// drops the entry, i.e. moves the machine to Invalid. The same
	// applies to `t.<DeleteTableMethod>(k)` on a *<DeleteTableRecv>[E]
	// whose type argument E is *DeleteElem — the flat-table form the
	// controllers use instead of Go maps.
	DeleteElem        string
	DeleteTableRecv   string
	DeleteTableMethod string
	// InvalidatePkg/InvalidateRecv/InvalidateMethod: a call
	// `<expr>.<Method>(...)` where <expr> has type *<Recv> from <Pkg>
	// moves the machine to Invalid (the L1's cache array Invalidate).
	InvalidatePkg    string
	InvalidateRecv   string
	InvalidateMethod string
	// InstallPkg/InstallRecv/InstallMethod/InstallStateArg: a call
	// installing a line at the state given by argument InstallStateArg
	// (the L1's cache array Install).
	InstallPkg      string
	InstallRecv     string
	InstallMethod   string
	InstallStateArg int
}

// Config is the full extraction configuration for one package.
type Config struct {
	Machines []*MachineCfg
}

// CoherencePkg is the package the WiDir protocol model is extracted from.
const CoherencePkg = "repro/internal/coherence"

// WiDirConfig returns the extraction configuration for the repo's
// MESI+W protocol: the directory FSM (home.go) and the private-cache
// FSM (l1.go).
func WiDirConfig() *Config {
	payloads := map[string]string{
		"BrWirUpgr": "BrWirUpgr",
		"WirUpd":    "WirUpd",
		"WirDwgr":   "WirDwgr",
		"WirInv":    "WirInv",
	}
	return &Config{Machines: []*MachineCfg{
		{
			Name: "dir",
			States: EnumRef{Type: "DirState", Rename: map[string]string{
				"DirInvalid": "DI", "DirShared": "DS", "DirOwned": "DO", "DirWireless": "DW",
			}},
			Busy: &BusyCfg{
				Struct: "txn", Field: "busy", KindField: "kind",
				Kinds: EnumRef{Type: "txnKind", Rename: map[string]string{
					// Mirrors txnKind.String() in errors.go; cross-checked
					// by TestBusyNamesMatchStringer.
					"txNone": "none", "txFetchMem": "fetch-mem",
					"txFwdGetS": "fwd-gets", "txFwdGetX": "fwd-getx",
					"txInvAll": "inv-all", "txSToW": "s-to-w",
					"txWAddSharer": "w-add-sharer", "txWToS": "w-to-s",
					"txEvict": "evict",
				}},
				Prefix: "busy:",
			},
			Events:      EnumRef{Type: "MsgType", Prefix: "Msg"},
			Payloads:    payloads,
			Extra:       []string{"Evict", "WirelessFault"},
			StateField:  "State",
			Invalid:     "DI",
			EventStruct: "Msg",
			EventField:  "Type",
			ErrorMethod: "fail",
			EntryType:   "DirEntry",
			EntryPoints: []EntryPoint{
				{Recv: "HomeCtrl", Method: "HandleWired"},
				{Recv: "HomeCtrl", Method: "HandleWireless"},
				{Recv: "HomeCtrl", Method: "NoteWirelessFault", Event: "WirelessFault"},
			},
			DeleteElem:        "DirEntry",
			DeleteTableRecv:   "lineTable",
			DeleteTableMethod: "del",
		},
		{
			Name: "l1",
			States: EnumRef{Pkg: "repro/internal/cache", Type: "State", Rename: map[string]string{
				"Invalid": "I", "Shared": "S", "Exclusive": "E", "Modified": "M", "Wireless": "W",
			}},
			Events:                EnumRef{Type: "MsgType", Prefix: "Msg"},
			Payloads:              payloads,
			Extra:                 []string{"Evict", "CoreLoad", "CoreStore", "CoreRMW"},
			StateField:            "State",
			Invalid:               "I",
			EventStruct:           "Msg",
			EventField:            "Type",
			ErrorMethod:           "fail",
			EntryType:             "Line",
			EntryTypePkg:          "repro/internal/cache",
			NotNilExcludesInvalid: true,
			EntryPoints: []EntryPoint{
				{Recv: "L1Ctrl", Method: "HandleWired"},
				{Recv: "L1Ctrl", Method: "HandleWireless"},
			},
			InvalidatePkg:    "repro/internal/cache",
			InvalidateRecv:   "Cache",
			InvalidateMethod: "Invalidate",
			InstallPkg:       "repro/internal/cache",
			InstallRecv:      "Cache",
			InstallMethod:    "Install",
			InstallStateArg:  1,
		},
	}}
}
