package protomodel

import (
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// annotFixture type-checks one in-memory file and runs the //proto:
// comment validation over it.
func annotFixture(t *testing.T, src string) error {
	t.Helper()
	cwd := "."
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadSource("repro/internal/coherence", "fixture.go", src)
	if err != nil {
		t.Fatalf("fixture did not parse: %v", err)
	}
	x := &extractor{
		loader: loader, pkg: p, moduleDir: moduleDir,
		funcs: map[types.Object]*funcInfo{},
	}
	return x.collectAnnotations()
}

// TestProtoAnnotationGrammar pins the //proto: comment grammar: every
// malformed directive is an error carrying file:line provenance, never
// a silent no-op.
func TestProtoAnnotationGrammar(t *testing.T) {
	cases := []struct {
		name, src, want string // want == "" means no error
	}{
		{"stop-ok", "//proto:stop\nfunc f() {}\n", ""},
		{"event-ok", "//proto:event Evict\nfunc g() {}\n", ""},
		{"transition-ok", "//proto:transition dir DI GetS -> DS\nfunc h() {}\n", ""},
		{"stop-with-arg", "//proto:stop reason\nfunc f() {}\n", "proto:stop takes no argument"},
		{"event-bare", "//proto:event\nfunc g() {}\n", "want: proto:event <E>"},
		{"event-two-args", "//proto:event A B\nfunc g() {}\n", "want: proto:event <E>"},
		{"transition-short", "//proto:transition dir DI GetS\nfunc h() {}\n", "machine from event -> next"},
		{"transition-no-arrow", "//proto:transition dir DI GetS to DS\nfunc h() {}\n", "machine from event -> next"},
		{"unknown-directive", "//proto:evnet Evict\nfunc g() {}\n", "unknown annotation"},
		{"prose-is-ignored", "// The proto:event below explains itself.\nfunc g() {}\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := annotFixture(t, "package coherence\n\n"+tc.src)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want no error, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed annotation accepted silently; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "fixture.go:3") {
				t.Errorf("error lacks file:line provenance: %v", err)
			}
		})
	}
}
