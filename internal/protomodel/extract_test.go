package protomodel

import (
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	repoOnce  sync.Once
	repoModel *Model
	repoErr   error
)

// extractRepo extracts the real internal/coherence protocol once per
// test binary.
func extractRepo(t *testing.T) *Model {
	t.Helper()
	repoOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			repoErr = err
			return
		}
		moduleDir, err := analysis.FindModuleRoot(cwd)
		if err != nil {
			repoErr = err
			return
		}
		repoModel, repoErr = Extract(moduleDir, moduleDir+"/internal/coherence", WiDirConfig())
	})
	if repoErr != nil {
		t.Fatalf("extracting internal/coherence: %v", repoErr)
	}
	return repoModel
}

// TestTableIISpotChecks pins known WiDir protocol transitions (paper
// Table I/II, DESIGN.md) to the extracted model, each with provenance
// in the file that implements it.
func TestTableIISpotChecks(t *testing.T) {
	model := extractRepo(t)
	checks := []struct {
		machine, from, event, next, file string
	}{
		// Directory: read sharing and the S->W upgrade decision.
		{"dir", "DI", "GetS", "busy:fetch-mem", "internal/coherence/home.go"},
		{"dir", "DS", "GetS", "busy:s-to-w", "internal/coherence/home.go"},
		// W-state wireless path: the broadcast upgrade commits DW.
		{"dir", "busy:s-to-w", "GetS", "DW", "internal/coherence/home.go"},
		// Fault recovery: repeated wireless faults demote W->S.
		{"dir", "DW", "WirelessFault", "busy:w-to-s", "internal/coherence/home.go"},
		{"dir", "busy:w-to-s", "WirDwgrAck", "DS", "internal/coherence/home.go"},
		// Ownership transfer.
		{"dir", "DO", "GetS", "busy:fwd-gets", "internal/coherence/home.go"},
		{"dir", "busy:fwd-gets", "CopyBack", "DS", "internal/coherence/home.go"},
		{"dir", "busy:fwd-getx", "XferAck", "DO", "internal/coherence/home.go"},
		// L1: joining a broadcast group, update decay, downgrade.
		{"l1", "S", "BrWirUpgr", "W", "internal/coherence/l1.go"},
		{"l1", "W", "WirUpd", "I", "internal/coherence/l1.go"},
		{"l1", "W", "WirDwgr", "S", "internal/coherence/l1.go"},
		{"l1", "S", "Inv", "I", "internal/coherence/l1.go"},
		{"l1", "E", "FwdGetX", "I", "internal/coherence/l1.go"},
	}
	for _, c := range checks {
		mc := model.Machine(c.machine)
		if mc == nil {
			t.Fatalf("machine %q missing", c.machine)
		}
		found := false
		for _, tr := range mc.Lookup(c.from, c.event) {
			if tr.Next != c.next {
				continue
			}
			found = true
			if !strings.HasPrefix(tr.Pos, c.file+":") {
				t.Errorf("%s: %s %s -> %s: provenance %q, want file %s",
					c.machine, c.from, c.event, c.next, tr.Pos, c.file)
			}
		}
		if !found {
			t.Errorf("%s: missing transition %s %s -> %s", c.machine, c.from, c.event, c.next)
		}
	}
}

// TestDirCoverageGrid requires the extracted directory FSM to cover
// every DirState x handled-message pair of home.go, with provenance on
// every row.
func TestDirCoverageGrid(t *testing.T) {
	model := extractRepo(t)
	mc := model.Machine("dir")
	if mc == nil {
		t.Fatal("dir machine missing")
	}
	handled := []string{
		"GetS", "GetX", "PutS", "PutE", "PutM", "PutW",
		"InvAck", "CopyBack", "XferAck", "RecallAck",
		"WirUpgrAck", "WirDwgrAck", "MemData",
	}
	for _, ev := range handled {
		for _, st := range mc.Stable {
			if !mc.Covered(st, ev) {
				t.Errorf("dir: (%s, %s) not covered", st, ev)
			}
		}
	}
	for _, tr := range mc.Transitions {
		if !strings.Contains(tr.Pos, ":") {
			t.Errorf("dir: %s %s -> %s has no provenance (%q)", tr.From, tr.Event, tr.Next, tr.Pos)
		}
	}
}

// TestRepoConformsToSpec gates the checked-in spec against the
// implementation, same as `widir-model -check`.
func TestRepoConformsToSpec(t *testing.T) {
	model := extractRepo(t)
	spec, err := EmbeddedSpec()
	if err != nil {
		t.Fatalf("embedded spec: %v", err)
	}
	for _, f := range Check(model, spec) {
		t.Errorf("conformance: %s", f)
	}
}

// TestBusyNamesMatchStringer pins the dir machine's state vocabulary;
// the busy:<kind> names mirror txnKind.String() in
// internal/coherence/errors.go (the config's Rename table).
func TestBusyNamesMatchStringer(t *testing.T) {
	model := extractRepo(t)
	mc := model.Machine("dir")
	if mc == nil {
		t.Fatal("dir machine missing")
	}
	want := []string{
		"DI", "DS", "DO", "DW",
		"busy:fetch-mem", "busy:fwd-gets", "busy:fwd-getx", "busy:inv-all",
		"busy:s-to-w", "busy:w-add-sharer", "busy:w-to-s", "busy:evict",
	}
	if got := strings.Join(mc.States, " "); got != strings.Join(want, " ") {
		t.Errorf("dir states = %q, want %q", got, strings.Join(want, " "))
	}
}

// TestModelDeterministic extracts twice and requires byte-identical
// renderings (text and dot).
func TestModelDeterministic(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Extract(moduleDir, moduleDir+"/internal/coherence", WiDirConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := extractRepo(t)
	if a.Text() != b.Text() {
		t.Error("two extractions render different text tables")
	}
	if a.Dot() != b.Dot() {
		t.Error("two extractions render different dot graphs")
	}
	if !strings.HasPrefix(a.Dot(), "digraph \"dir\"") {
		t.Errorf("dot output does not start with the dir digraph: %q", a.Dot()[:40])
	}
}
